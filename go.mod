module ironman

go 1.24
