// Command ppml-sim prices one private inference end to end: pick a
// framework, a model, a network, and an OT backend, and get the
// component breakdown (the Table 5 / Figure 1(a) machinery as a CLI).
//
//	ppml-sim -framework Cheetah -model ResNet50 -network lan -backend ironman
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"ironman/internal/ppml"
	"ironman/internal/sim/gpu"
	"ironman/internal/simnet"
)

func main() {
	fwName := flag.String("framework", "Cheetah", "CrypTFlow2 | Cheetah | Bolt | EzPC-SiRNN")
	modelName := flag.String("model", "ResNet50", "model zoo entry (e.g. ResNet50, BERT-Base)")
	netName := flag.String("network", "lan", "lan | wan")
	backend := flag.String("backend", "cpu", "cpu | gpu | ironman")
	ranks := flag.Int("ranks", 16, "Ironman rank count")
	cacheKB := flag.Int("cache", 1024, "Ironman cache size (KB)")
	flag.Parse()

	var fw ppml.Framework
	switch *fwName {
	case "CrypTFlow2":
		fw = ppml.CrypTFlow2
	case "Cheetah":
		fw = ppml.Cheetah
	case "Bolt":
		fw = ppml.Bolt
	case "EzPC-SiRNN":
		fw = ppml.SiRNN
	default:
		log.Fatalf("unknown framework %q", *fwName)
	}
	model, ok := ppml.ModelByName(*modelName)
	if !ok {
		log.Fatalf("unknown model %q", *modelName)
	}
	if !fw.Supports(model) {
		log.Fatalf("%s does not evaluate %s", fw.Name, model.Name)
	}
	var net simnet.Network
	switch strings.ToLower(*netName) {
	case "lan":
		net = simnet.LAN
	case "wan":
		net = simnet.WAN
	default:
		log.Fatalf("unknown network %q", *netName)
	}
	var ot ppml.OTBackend
	switch *backend {
	case "cpu":
		ot = ppml.DefaultCPUBaseline()
	case "gpu":
		cpuB := ppml.DefaultCPUBaseline()
		ot = ppml.GPUBackend{Host: cpuB.Model, GPU: gpu.A6000}
	case "ironman":
		ir := ppml.DefaultIronman()
		ir.Cfg.Ranks = *ranks
		ir.Cfg.CacheBytes = *cacheKB << 10
		ot = ir
	default:
		log.Fatalf("unknown backend %q", *backend)
	}

	lat := ppml.EndToEnd(fw, model, net, ot)
	fmt.Printf("%s / %s on %s with OT backend %s\n", fw.Name, model.Name, net.Name, ot.Name())
	fmt.Printf("  nonlinear elements: %.1f M, OT correlations: %.2f G\n",
		float64(model.TotalNonlinear())/1e6, float64(fw.OTCount(model))/1e9)
	fmt.Printf("  linear (HE)      %8.1f s\n", lat.Linear)
	fmt.Printf("  OT extension     %8.1f s\n", lat.OTE)
	fmt.Printf("  communication    %8.1f s\n", lat.OnlineComm)
	fmt.Printf("  other            %8.1f s\n", lat.Other)
	fmt.Printf("  total            %8.1f s  (OTE share %.1f%%)\n", lat.Total(), 100*lat.OTEFraction())
}
