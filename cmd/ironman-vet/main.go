// Command ironman-vet is the multichecker binary for the repo's
// protocol-invariant analysis suite (internal/analysis). It speaks the
// go vet unitchecker protocol, so it runs as
//
//	go build -o "$(go env GOPATH)/bin/ironman-vet" ./cmd/ironman-vet
//	go vet -vettool=$(which ironman-vet) ./...
//
// scripts/ci.sh builds and runs it on every CI pass. Suppress audited
// findings with //ironman:allow(<analyzer>) <reason>.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"ironman/internal/analysis"
)

func main() { unitchecker.Main(analysis.Analyzers...) }
