// Command ironman-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	ironman-bench [-quick] [-exp name]
//
// Experiment names: fig1a fig1b fig1c fig7 fig8 fig12 fig13 fig14
// fig15 fig16 table2 table4 table5 table6 all (default all).
package main

import (
	"flag"
	"fmt"
	"os"

	"ironman/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "reduced sample sizes")
	exp := flag.String("exp", "all", "experiment to run")
	flag.Parse()

	o := experiments.Options{Quick: *quick}
	run := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false

	if run("table2") {
		fmt.Print(experiments.RenderTable2())
		ran = true
	}
	if run("table4") {
		fmt.Print(experiments.RenderTable4())
		ran = true
	}
	if run("table6") {
		fmt.Print(experiments.RenderTable6())
		ran = true
	}
	if run("fig1a") {
		fmt.Print(experiments.RenderFig1a(experiments.Figure1a()))
		ran = true
	}
	if run("fig1b") {
		fmt.Print(experiments.RenderFig1b(experiments.Figure1b()))
		ran = true
	}
	if run("fig1c") {
		fmt.Print(experiments.RenderFig1c(experiments.Figure1c()))
		ran = true
	}
	if run("fig7") {
		fmt.Print(experiments.RenderFig7(experiments.Figure7(o)))
		ran = true
	}
	if run("fig8") {
		fmt.Print(experiments.RenderFig8(experiments.Figure8()))
		ran = true
	}
	if run("fig12") {
		fmt.Print(experiments.RenderFig12(experiments.Figure12(o)))
		ran = true
	}
	if run("fig13") {
		fmt.Print(experiments.RenderFig13(experiments.Figure13a(o), experiments.Figure13b(o)))
		ran = true
	}
	if run("fig14") {
		fmt.Print(experiments.RenderFig14(experiments.Figure14(o)))
		ran = true
	}
	if run("fig15") {
		fmt.Print(experiments.RenderFig15(experiments.Figure15(o)))
		ran = true
	}
	if run("fig16") {
		fmt.Print(experiments.RenderFig16(experiments.Figure16()))
		ran = true
	}
	if run("table5") {
		fmt.Print(experiments.RenderTable5(experiments.Table5(o)))
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
