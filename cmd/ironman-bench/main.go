// Command ironman-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	ironman-bench [-quick] [-exp name[,name...]] [-backend name[,name...]] [-json]
//
// Experiment names: fig1a fig1b fig1c fig7 fig8 fig12 fig13 fig14
// fig15 fig16 table2 table4 table5 table6 gmw arith extend circuit
// all (default all); -exp accepts a comma-separated list, and
// `-exp list` prints every experiment with its one-line description
// and exits. "gmw" runs the real bitsliced GMW engine (batched 64-bit
// comparison) and reports AND-gates/sec and wire bytes per AND gate;
// "arith" runs the real arithmetic engine (COT-backed Beaver triples,
// fixed-point matmul) and reports triples/sec and measured bytes per
// triple; "extend" runs the real multicore Extend pipeline at
// workers=1,2,4,8 — once per backend named by -backend (default: the
// default extension backend) — and reports comparable COT/s scaling
// curves with each backend's (constant) bytes per COT; "circuit"
// evaluates the embedded Bristol circuits (AES-128, SHA-256, 64-bit
// divide) SIMD-packed through the level-scheduling compiler and
// cross-checks the exact cost model against the measured counters.
//
// With -json the selected experiments are emitted as one JSON
// document on stdout — {"meta": {...}, "experiments": {name:
// {"seconds": wall, "data": rows}}} — so successive runs can be
// archived (BENCH_*.json) and diffed to track the perf trajectory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"ironman/internal/experiments"
	"ironman/internal/extension"
	"ironman/internal/obs"
)

// experiment pairs a machine-readable result with its rendered view.
type experiment struct {
	name string
	desc string
	run  func(o experiments.Options) (data any, text string)
}

func both[T any](rows T, render func(T) string) (any, string) {
	return rows, render(rows)
}

var all = []experiment{
	{"table2", "protocol wire complexity per primitive", func(experiments.Options) (any, string) {
		return experiments.Table2Data(), experiments.RenderTable2()
	}},
	{"table4", "Ferret LPN parameter sets", func(experiments.Options) (any, string) {
		return experiments.Table4Data(), experiments.RenderTable4()
	}},
	{"table6", "NMP hardware area/power budget", func(experiments.Options) (any, string) {
		return experiments.Table6Data(), experiments.RenderTable6()
	}},
	{"fig1a", "motivational OT share of 2PC runtime", func(experiments.Options) (any, string) {
		return both(experiments.Figure1a(), experiments.RenderFig1a)
	}},
	{"fig1b", "motivational memory-boundedness of OTE", func(experiments.Options) (any, string) {
		return both(experiments.Figure1b(), experiments.RenderFig1b)
	}},
	{"fig1c", "motivational roofline placement", func(experiments.Options) (any, string) {
		return both(experiments.Figure1c(), experiments.RenderFig1c)
	}},
	{"fig7", "LPN access locality histogram", func(o experiments.Options) (any, string) {
		return both(experiments.Figure7(o), experiments.RenderFig7)
	}},
	{"fig8", "SPCOT tree-expansion op counts", func(experiments.Options) (any, string) {
		return both(experiments.Figure8(), experiments.RenderFig8)
	}},
	{"fig12", "OTE latency: CPU vs GPU vs NMP sweep", func(o experiments.Options) (any, string) {
		return both(experiments.Figure12(o), experiments.RenderFig12)
	}},
	{"fig13", "SPCOT ablation and phase latency by ranks", func(o experiments.Options) (any, string) {
		a, b := experiments.Figure13a(o), experiments.Figure13b(o)
		return map[string]any{"a": a, "b": b}, experiments.RenderFig13(a, b)
	}},
	{"fig14", "memory-side cache capacity sweep", func(o experiments.Options) (any, string) {
		return both(experiments.Figure14(o), experiments.RenderFig14)
	}},
	{"fig15", "end-to-end 2PC application speedups", func(o experiments.Options) (any, string) {
		return both(experiments.Figure15(o), experiments.RenderFig15)
	}},
	{"fig16", "area/power breakdown", func(experiments.Options) (any, string) {
		return both(experiments.Figure16(), experiments.RenderFig16)
	}},
	{"table5", "2PC workload latency comparison", func(o experiments.Options) (any, string) {
		return both(experiments.Table5(o), experiments.RenderTable5)
	}},
	{"gmw", "real bitsliced GMW engine throughput", func(o experiments.Options) (any, string) {
		return both(experiments.GMWBench(o), experiments.RenderGMW)
	}},
	{"arith", "real arithmetic engine (Beaver triples, matmul)", func(o experiments.Options) (any, string) {
		return both(experiments.ArithBench(o), experiments.RenderArith)
	}},
	{"extend", "real Extend pipeline worker scaling per backend", func(o experiments.Options) (any, string) {
		return both(experiments.ExtendBench(o), experiments.RenderExtend)
	}},
	{"circuit", "Bristol circuit evaluation vs cost model", func(o experiments.Options) (any, string) {
		return both(experiments.CircuitBench(o), experiments.RenderCircuit)
	}},
	{"fleet", "sharded dispenser fleet under concurrent-session load", func(o experiments.Options) (any, string) {
		return both(experiments.FleetBench(o), experiments.RenderFleet)
	}},
}

// validNames lists every accepted -exp name (sorted, "all" and "list"
// included) for error messages.
func validNames() string {
	names := make([]string, 0, len(all)+2)
	for _, e := range all {
		names = append(names, e.name)
	}
	names = append(names, "all", "list")
	sort.Strings(names)
	return strings.Join(names, " ")
}

// splitList parses a comma-separated flag value.
func splitList(v string) []string {
	var out []string
	for _, name := range strings.Split(v, ",") {
		if name = strings.TrimSpace(name); name != "" {
			out = append(out, name)
		}
	}
	return out
}

func main() {
	quick := flag.Bool("quick", false, "reduced sample sizes")
	exp := flag.String("exp", "all", "experiment(s) to run, comma-separated; \"list\" prints them")
	backend := flag.String("backend", "", "extension backend(s) for the extend bench, comma-separated (default: the default backend)")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON instead of rendered tables")
	traceOut := flag.String("trace", "", "write phase spans from protocol benches as Chrome trace-event JSON (open in chrome://tracing or Perfetto)")
	flag.Parse()

	if *exp == "list" {
		// Machine-readable: one "name\tdescription" line per experiment.
		for _, e := range all {
			fmt.Printf("%s\t%s\n", e.name, e.desc)
		}
		return
	}

	sel := make(map[string]bool)
	for _, name := range splitList(*exp) {
		sel[name] = true
	}
	// Every requested name must exist: a typo in one list entry fails
	// the run instead of silently dropping that experiment's metrics.
	known := map[string]bool{"all": true}
	for _, e := range all {
		known[e.name] = true
	}
	for name := range sel {
		if !known[name] {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (valid: %s)\n", name, validNames())
			os.Exit(2)
		}
	}
	// Backend names are validated up front the same way, against the
	// extension registry.
	backends := splitList(*backend)
	for _, name := range backends {
		if _, err := extension.ByName(name); err != nil {
			fmt.Fprintf(os.Stderr, "unknown backend %q (valid: %s)\n", name, strings.Join(extension.Names(), " "))
			os.Exit(2)
		}
	}
	o := experiments.Options{Quick: *quick, Backends: backends}
	if *traceOut != "" {
		o.Trace = obs.NewTracer()
	}
	type result struct {
		Seconds float64 `json:"seconds"`
		Data    any     `json:"data"`
	}
	results := make(map[string]result)
	ran := false
	for _, e := range all {
		if !sel["all"] && !sel[e.name] {
			continue
		}
		ran = true
		start := time.Now()
		data, text := e.run(o)
		elapsed := time.Since(start).Seconds()
		if *jsonOut {
			results[e.name] = result{Seconds: elapsed, Data: data}
		} else {
			fmt.Print(text)
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "no experiment selected by %q (valid: %s)\n", *exp, validNames())
		os.Exit(2)
	}
	if o.Trace != nil {
		if err := o.Trace.WriteFile(*traceOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "trace: %d events -> %s\n", len(o.Trace.Events()), *traceOut)
	}
	if *jsonOut {
		doc := map[string]any{
			"meta": map[string]any{
				"quick":     *quick,
				"backends":  o.Backends,
				"generated": time.Now().UTC().Format(time.RFC3339),
			},
			"experiments": results,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
