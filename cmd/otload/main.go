// Command otload load-tests a dispenser fleet (or a single dispenser)
// over real TCP: it sustains many concurrent sessions across a bounded
// set of connections, alternates sender/receiver draws, and reports
// draw-latency percentiles, typed shed counts, and the per-shard
// session balance as JSON — the committed BENCH_fleet.json artifact.
//
// Usage:
//
//	otload -addr 127.0.0.1:7600 -sessions 1024 -conns 64 -out BENCH_fleet.json
//	otload -addr 127.0.0.1:7600 -quick          # CI smoke sizing
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"ironman/internal/otserv/loadgen"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7600", "fleet router or dispenser address")
		sessions = flag.Int("sessions", 1024, "concurrent sessions to sustain")
		conns    = flag.Int("conns", 64, "client connections to spread sessions over")
		draws    = flag.Int("draws", 8, "draws per session (alternating sender/receiver)")
		drawN    = flag.Int("n", 128, "correlated OTs per draw")
		params   = flag.String("params", "", "parameter set name (empty = server default)")
		depth    = flag.Int("depth", 256, "requested prefetch depth per session")
		tenants  = flag.Int("tenants", 4, "distinct tenant principals (0 = anonymous)")
		lease    = flag.Duration("lease", 0, "requested session lease (0 = server default)")
		timeout  = flag.Duration("timeout", 5*time.Minute, "whole-run deadline (hang fails the run)")
		quick    = flag.Bool("quick", false, "CI sizing: 96 sessions over 12 conns, 4 draws")
		out      = flag.String("out", "", "also write the JSON report to this file")
	)
	flag.Parse()

	cfg := loadgen.Config{
		Addr:            *addr,
		Sessions:        *sessions,
		Conns:           *conns,
		DrawsPerSession: *draws,
		DrawN:           *drawN,
		Params:          *params,
		Depth:           *depth,
		Tenants:         *tenants,
		Lease:           *lease,
		Timeout:         *timeout,
	}
	if *quick {
		cfg.Sessions = 96
		cfg.Conns = 12
		cfg.DrawsPerSession = 4
	}

	rep, err := loadgen.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "otload: %v\n", err)
		os.Exit(1)
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "otload: encode report: %v\n", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	os.Stdout.Write(blob)
	if *out != "" {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "otload: write %s: %v\n", *out, err)
			os.Exit(1)
		}
	}
	// A run that opened nothing is a failed run even if nothing hung.
	if rep.SessionsOpened == 0 {
		fmt.Fprintln(os.Stderr, "otload: no session opened")
		os.Exit(1)
	}
}
