// Command otgen runs the real PCG-style OT-extension protocol and
// reports throughput and traffic. It can run both parties in one
// process (-inproc) or as two networked peers:
//
//	otgen -role sender   -listen :7000  -params 2^20 -iters 2
//	otgen -role receiver -connect host:7000 -params 2^20 -iters 2
//
// The sender prints Δ-verified statistics in in-process mode; across
// the network each side prints its own timing and traffic.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"time"

	"ironman"
)

func main() {
	role := flag.String("role", "", "sender or receiver (network mode)")
	listen := flag.String("listen", "", "address to listen on (network mode)")
	connect := flag.String("connect", "", "address to dial (network mode)")
	paramName := flag.String("params", "2^20", "Table 4 parameter set")
	iters := flag.Int("iters", 1, "Extend iterations")
	inproc := flag.Bool("inproc", false, "run both parties in-process")
	binary := flag.Bool("binary-aes", false, "use the classic 2-ary AES GGM construction")
	flag.Parse()

	params, err := ironman.ParamsByName(*paramName)
	if err != nil {
		log.Fatal(err)
	}
	opts := ironman.DefaultOptions()
	opts.FourAryChaCha = !*binary

	if *inproc {
		runInProcess(params, opts, *iters)
		return
	}

	var nc net.Conn
	switch {
	case *listen != "":
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			log.Fatal(err)
		}
		defer ln.Close()
		fmt.Printf("listening on %s\n", ln.Addr())
		nc, err = ln.Accept()
		if err != nil {
			log.Fatal(err)
		}
	case *connect != "":
		var err error
		nc, err = net.Dial("tcp", *connect)
		if err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatal("need -inproc, -listen or -connect")
	}
	defer nc.Close()
	conn := ironman.NewTCPConn(nc)

	switch *role {
	case "sender":
		delta, err := ironman.RandomDelta()
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		s, err := ironman.NewSender(conn, delta, params, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("init done in %v\n", time.Since(start))
		for i := 0; i < *iters; i++ {
			t := time.Now()
			z, err := s.COTs(params.Usable())
			if err != nil {
				log.Fatal(err)
			}
			d := time.Since(t)
			fmt.Printf("iter %d: %d COTs in %v (%.2f M COT/s)\n",
				i, len(z), d, float64(len(z))/d.Seconds()/1e6)
		}
		fmt.Printf("traffic: %v\n", conn.Stats())
	case "receiver":
		start := time.Now()
		r, err := ironman.NewReceiver(conn, params, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("init done in %v\n", time.Since(start))
		for i := 0; i < *iters; i++ {
			t := time.Now()
			bits, _, err := r.COTs(params.Usable())
			if err != nil {
				log.Fatal(err)
			}
			d := time.Since(t)
			fmt.Printf("iter %d: %d COTs in %v (%.2f M COT/s)\n",
				i, len(bits), d, float64(len(bits))/d.Seconds()/1e6)
		}
		fmt.Printf("traffic: %v\n", conn.Stats())
	default:
		log.Fatal("network mode needs -role sender|receiver")
	}
}

func runInProcess(params ironman.Params, opts ironman.Options, iters int) {
	a, b := ironman.Pipe()
	delta, err := ironman.RandomDelta()
	if err != nil {
		log.Fatal(err)
	}
	s, r, err := ironman.NewDealtPair(a, b, delta, params, opts)
	if err != nil {
		log.Fatal(err)
	}
	n := params.Usable()
	for i := 0; i < iters; i++ {
		start := time.Now()
		type sres struct {
			z   []ironman.Block
			err error
		}
		ch := make(chan sres, 1)
		go func() {
			z, err := s.COTs(n)
			ch <- sres{z, err}
		}()
		bits, blocks, err := r.COTs(n)
		if err != nil {
			log.Fatal(err)
		}
		sr := <-ch
		if sr.err != nil {
			log.Fatal(sr.err)
		}
		d := time.Since(start)
		if err := ironman.VerifyCOTs(delta, sr.z, bits, blocks); err != nil {
			log.Fatalf("verification failed: %v", err)
		}
		fmt.Printf("iter %d: %d COTs verified in %v (%.2f M COT/s per side)\n",
			i, n, d, float64(n)/d.Seconds()/1e6)
	}
	fmt.Printf("sender traffic: %v\n", a.Stats())
}
