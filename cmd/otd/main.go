// Command otd is the OT dispenser daemon: it serves correlated-OT
// streams to many concurrent client sessions, generating correlations
// ahead of demand with per-session prefetching pools.
//
//	otd -listen :7117 -params 2^20 -prefetch 2 -max-sessions 64
//
// A fleet runs N otd shards plus one otd router in front:
//
//	otd -listen :7601 -shard-id 1 &
//	otd -listen :7602 -shard-id 2 &
//	otd -listen :7603 -shard-id 3 &
//	otd -route -listen :7600 -shards 127.0.0.1:7601,127.0.0.1:7602,127.0.0.1:7603
//
// Clients open sessions with internal/otserv.Client against either a
// standalone daemon or the router — the protocol is identical. Query a
// running daemon's counters with:
//
//	otd -stats -connect host:7117
//
// An opt-in admin listener serves Prometheus metrics, a JSON session
// dump, and pprof profiles (keep it on loopback or a scrape network):
//
//	otd -listen :7117 -admin 127.0.0.1:9090
//
// In router mode the admin listener serves the fleet surface instead
// (/metrics /healthz /shards /shards/add /shards/drain).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ironman/internal/extension"
	"ironman/internal/ferret"
	"ironman/internal/otserv"
	"ironman/internal/otserv/router"
)

func main() {
	listen := flag.String("listen", ":7117", "address to serve on")
	params := flag.String("params", "2^20", "default Table 4 parameter set for sessions")
	backends := flag.String("backends", "", "extension backends to serve, comma-separated (default: all registered)")
	prefetch := flag.Int("prefetch", 2, "default per-session prefetch depth (Extend batches)")
	maxDepth := flag.Int("max-depth", 8, "cap on client-requested prefetch depth")
	maxSessions := flag.Int("max-sessions", 64, "concurrent session limit")
	workers := flag.Int("workers", 0, "per-session Extend worker goroutines (0 = GOMAXPROCS)")
	shardID := flag.Uint64("shard-id", 0, "fleet shard id stamped into session ids (0 = standalone)")
	lease := flag.Duration("lease", 0, "default session lease for orphaned sessions (0 = server default)")
	tiny := flag.Bool("tiny", false, "also serve the test-scale parameter sets tiny/small (CI fleets)")
	route := flag.Bool("route", false, "run as the fleet router instead of a dispenser shard")
	shards := flag.String("shards", "", "router mode: comma-separated shard addresses")
	drainWait := flag.Duration("drain", 10*time.Second, "graceful shutdown budget on SIGTERM before forcing connections closed")
	stats := flag.Bool("stats", false, "dump a running daemon's stats and exit")
	connect := flag.String("connect", "", "daemon address for -stats")
	admin := flag.String("admin", "", "admin HTTP address for /metrics, /healthz, /sessions, pprof (e.g. 127.0.0.1:9090)")
	flag.Parse()

	if *stats {
		if *connect == "" {
			log.Fatal("-stats needs -connect host:port")
		}
		dumpStats(*connect)
		return
	}
	if *route {
		runRouter(*listen, *shards, *admin)
		return
	}

	// Validate the backend allowlist at startup, not at first HELLO.
	var backendList []string
	for _, name := range strings.Split(*backends, ",") {
		if name = strings.TrimSpace(name); name == "" {
			continue
		}
		if _, err := extension.ByName(name); err != nil {
			log.Fatalf("otd: -backends: unknown backend %q (valid: %s)", name, strings.Join(extension.Names(), " "))
		}
		backendList = append(backendList, name)
	}

	cfg := otserv.Config{
		DefaultParams: *params,
		Depth:         *prefetch,
		MaxDepth:      *maxDepth,
		MaxSessions:   *maxSessions,
		Workers:       *workers,
		Backends:      backendList,
		ShardID:       *shardID,
		Lease:         *lease,
	}
	if *tiny {
		cfg.Resolve = testScaleResolve
	}
	srv := otserv.NewServer(cfg)
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	served := backendList
	if len(served) == 0 {
		served = extension.Names()
	}
	log.Printf("otd: dispensing on %s (shard %d, params %s, backends %s, prefetch %d, max %d sessions)",
		ln.Addr(), *shardID, *params, strings.Join(served, ","), *prefetch, *maxSessions)

	if *admin != "" {
		aln, err := net.Listen("tcp", *admin)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("otd: admin endpoint on http://%s (/metrics /healthz /sessions /drain /debug/pprof)", aln.Addr())
		go func() {
			if err := http.Serve(aln, srv.AdminHandler()); err != nil {
				log.Printf("otd: admin listener: %v", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		// Drain first: stop accepting, let in-flight requests finish,
		// tear sessions down in order, then exit. A second signal (or
		// the drain budget running out) forces the remaining
		// connections closed.
		log.Printf("otd: draining (budget %s)", *drainWait)
		if err := srv.Shutdown(*drainWait); err != nil {
			log.Printf("otd: shutdown: %v", err)
		}
		os.Exit(0)
	}()
	if err := srv.Serve(ln); err != nil {
		log.Fatal(err)
	}
}

// testScaleResolve layers the CI-scale parameter sets over the paper's
// Table 4 names so a laptop fleet can open hundreds of sessions.
func testScaleResolve(name string) (ferret.Params, error) {
	switch name {
	case "tiny":
		return ferret.TestParams(600, 32, 128, 8), nil
	case "small":
		return ferret.TestParams(3000, 32, 512, 16), nil
	}
	return ferret.ParamsByName(name)
}

// runRouter serves the fleet-router mode of otd.
func runRouter(listen, shardCSV, admin string) {
	var addrs []string
	for _, a := range strings.Split(shardCSV, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		log.Fatal("otd: -route needs -shards host:port,host:port,...")
	}
	r := router.New(router.Config{Shards: addrs})
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("otd: routing on %s across %d shards (%s)", ln.Addr(), len(addrs), strings.Join(addrs, ","))

	if admin != "" {
		aln, err := net.Listen("tcp", admin)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("otd: router admin on http://%s (/metrics /healthz /shards)", aln.Addr())
		go func() {
			if err := http.Serve(aln, r.AdminHandler()); err != nil {
				log.Printf("otd: admin listener: %v", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Print("otd: router shutting down")
		if err := r.Close(); err != nil {
			log.Printf("otd: close: %v", err)
		}
		os.Exit(0)
	}()
	if err := r.Serve(ln); err != nil {
		log.Fatal(err)
	}
}

func dumpStats(addr string) {
	c, err := otserv.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := c.Close(); err != nil {
			log.Printf("otd: close: %v", err)
		}
	}()
	dump, err := c.ServerStats()
	if err != nil {
		log.Fatal(err)
	}
	out, err := json.MarshalIndent(dump, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(out))
}
