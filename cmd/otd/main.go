// Command otd is the OT dispenser daemon: it serves correlated-OT
// streams to many concurrent client sessions, generating correlations
// ahead of demand with per-session prefetching pools.
//
//	otd -listen :7117 -params 2^20 -prefetch 2 -max-sessions 64
//
// Clients open sessions with internal/otserv.Client. Query a running
// daemon's counters with:
//
//	otd -stats -connect host:7117
//
// An opt-in admin listener serves Prometheus metrics, a JSON session
// dump, and pprof profiles (keep it on loopback or a scrape network):
//
//	otd -listen :7117 -admin 127.0.0.1:9090
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"ironman/internal/extension"
	"ironman/internal/otserv"
)

func main() {
	listen := flag.String("listen", ":7117", "address to serve on")
	params := flag.String("params", "2^20", "default Table 4 parameter set for sessions")
	backends := flag.String("backends", "", "extension backends to serve, comma-separated (default: all registered)")
	prefetch := flag.Int("prefetch", 2, "default per-session prefetch depth (Extend batches)")
	maxDepth := flag.Int("max-depth", 8, "cap on client-requested prefetch depth")
	maxSessions := flag.Int("max-sessions", 64, "concurrent session limit")
	workers := flag.Int("workers", 0, "per-session Extend worker goroutines (0 = GOMAXPROCS)")
	stats := flag.Bool("stats", false, "dump a running daemon's stats and exit")
	connect := flag.String("connect", "", "daemon address for -stats")
	admin := flag.String("admin", "", "admin HTTP address for /metrics, /healthz, /sessions, pprof (e.g. 127.0.0.1:9090)")
	flag.Parse()

	if *stats {
		if *connect == "" {
			log.Fatal("-stats needs -connect host:port")
		}
		dumpStats(*connect)
		return
	}

	// Validate the backend allowlist at startup, not at first HELLO.
	var backendList []string
	for _, name := range strings.Split(*backends, ",") {
		if name = strings.TrimSpace(name); name == "" {
			continue
		}
		if _, err := extension.ByName(name); err != nil {
			log.Fatalf("otd: -backends: unknown backend %q (valid: %s)", name, strings.Join(extension.Names(), " "))
		}
		backendList = append(backendList, name)
	}

	srv := otserv.NewServer(otserv.Config{
		DefaultParams: *params,
		Depth:         *prefetch,
		MaxDepth:      *maxDepth,
		MaxSessions:   *maxSessions,
		Workers:       *workers,
		Backends:      backendList,
	})
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	served := backendList
	if len(served) == 0 {
		served = extension.Names()
	}
	log.Printf("otd: dispensing on %s (params %s, backends %s, prefetch %d, max %d sessions)",
		ln.Addr(), *params, strings.Join(served, ","), *prefetch, *maxSessions)

	if *admin != "" {
		aln, err := net.Listen("tcp", *admin)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("otd: admin endpoint on http://%s (/metrics /healthz /sessions /debug/pprof)", aln.Addr())
		go func() {
			if err := http.Serve(aln, srv.AdminHandler()); err != nil {
				log.Printf("otd: admin listener: %v", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Print("otd: shutting down")
		if err := srv.Close(); err != nil {
			log.Printf("otd: close: %v", err)
		}
	}()
	if err := srv.Serve(ln); err != nil {
		log.Fatal(err)
	}
}

func dumpStats(addr string) {
	c, err := otserv.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer func() {
		if err := c.Close(); err != nil {
			log.Printf("otd: close: %v", err)
		}
	}()
	dump, err := c.ServerStats()
	if err != nil {
		log.Fatal(err)
	}
	out, err := json.MarshalIndent(dump, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(out))
}
