// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (see DESIGN.md's per-experiment index). Each benchmark
// regenerates its experiment through internal/experiments — the same
// code path as cmd/ironman-bench — and reports the headline quantity
// as a custom metric so `go test -bench=.` reproduces the whole
// evaluation. EXPERIMENTS.md records paper-vs-measured values.
package ironman

import (
	"fmt"
	"testing"

	"ironman/internal/experiments"
	"ironman/internal/ferret"
	"ironman/internal/lpn"
	"ironman/internal/transport"
)

var quick = experiments.Options{Quick: true}

// BenchmarkFig1aBreakdown regenerates the execution-time breakdown and
// reports the mean OT-extension share (paper: 51-69%).
func BenchmarkFig1aBreakdown(b *testing.B) {
	var share float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure1a()
		share = 0
		for _, r := range rows {
			share += r.Lat.OTE / r.Lat.Total()
		}
		share /= float64(len(rows))
	}
	b.ReportMetric(share*100, "OTE-%")
}

// BenchmarkFig1bCPULatency regenerates the CPU latency curve; metric is
// the 2^24 single-execution total (paper: a few seconds).
func BenchmarkFig1bCPULatency(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure1b()
		last := rows[len(rows)-1]
		total = last.Init + last.SPCOT + last.LPN
	}
	b.ReportMetric(total, "s@2^24")
}

// BenchmarkFig1cRoofline reports the LPN/SPCOT attainable-throughput
// gap (paper: LPN far below the compute roof).
func BenchmarkFig1cRoofline(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		pts := experiments.Figure1c()
		gap = pts[0].Attainable / pts[len(pts)-1].Attainable
	}
	b.ReportMetric(gap, "spcot/lpn-x")
}

// BenchmarkTable2PRG reports the ChaCha8 perf/area advantage
// (paper: 4.49x).
func BenchmarkTable2PRG(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.RenderTable2()
	}
	_ = out
}

// BenchmarkFig7MAry regenerates the m-ary sweep; metric is the m=4 op
// reduction over m=2 (paper: 2.99x).
func BenchmarkFig7MAry(b *testing.B) {
	var red float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure7(quick)
		red = float64(rows[0].Ops) / float64(rows[1].Ops)
	}
	b.ReportMetric(red, "m4-op-reduction")
}

// BenchmarkFig8Schedules reports hybrid-schedule utilization at 16
// trees (paper: 100%).
func BenchmarkFig8Schedules(b *testing.B) {
	var util float64
	for i := 0; i < b.N; i++ {
		for _, r := range experiments.Figure8() {
			if r.Schedule == "hybrid" && r.Trees == 16 {
				util = r.Utilization
			}
		}
	}
	b.ReportMetric(util*100, "hybrid-util-%")
}

// BenchmarkFig12Speedup regenerates the headline sweep; metric is the
// peak Ironman-over-CPU speedup at 16 ranks / 1 MB (paper: 237x; our
// more conservative memory model lands lower — see EXPERIMENTS.md).
func BenchmarkFig12Speedup(b *testing.B) {
	var hi float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure12(quick)
		_, hi = experiments.SpeedupRange(rows, 1024, 16)
	}
	b.ReportMetric(hi, "peak-speedup-x")
}

// BenchmarkFig13aAblation reports the combined 4-ary+ChaCha SPCOT gain
// (paper: 6x).
func BenchmarkFig13aAblation(b *testing.B) {
	var sp float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure13a(quick)
		sp = rows[3].Speedup
	}
	b.ReportMetric(sp, "spcot-6x")
}

// BenchmarkFig13bOverlap reports the SPCOT/LPN ratio of the optimized
// design at 16 ranks (paper: below 1, so LPN bounds the pipeline).
func BenchmarkFig13bOverlap(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure13b(quick)
		last := rows[len(rows)-1]
		ratio = last.SPCOTSec["ChaChax4"] / last.LPNSec
	}
	b.ReportMetric(ratio, "spcot/lpn")
}

// BenchmarkFig14CacheSweep reports the 2^20-set hit rate at the 1 MB
// design point.
func BenchmarkFig14CacheSweep(b *testing.B) {
	var hit float64
	for i := 0; i < b.N; i++ {
		for _, r := range experiments.Figure14(quick) {
			if r.CacheKB == 1024 && r.ParamSet == "2^20" {
				hit = r.HitRate
			}
		}
	}
	b.ReportMetric(hit*100, "hit-%@1MB")
}

// BenchmarkFig15Nonlinear reports the mean operator speedup
// (paper: 3.9-4.4x).
func BenchmarkFig15Nonlinear(b *testing.B) {
	var mean float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure15(quick)
		mean = 0
		for _, r := range rows {
			mean += r.Speedup
		}
		mean /= float64(len(rows))
	}
	b.ReportMetric(mean, "op-speedup-x")
}

// BenchmarkFig16UnifiedMatMul reports the unified-architecture latency
// gain (paper: ~1.4x at 2x communication reduction).
func BenchmarkFig16UnifiedMatMul(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Figure16()
		ratio = rows[0].LatBase / rows[0].LatUni
	}
	b.ReportMetric(ratio, "latency-x")
}

// BenchmarkTable5EndToEnd reports the best end-to-end LAN speedup
// (paper: up to 3.40x on BERT-Large).
func BenchmarkTable5EndToEnd(b *testing.B) {
	var best float64
	for i := 0; i < b.N; i++ {
		best = 0
		for _, r := range experiments.Table5(quick) {
			if r.Speedup > best {
				best = r.Speedup
			}
		}
	}
	b.ReportMetric(best, "best-e2e-x")
}

// BenchmarkTable6Area renders the overhead table.
func BenchmarkTable6Area(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.RenderTable6()
	}
	_ = out
}

// BenchmarkGMWAndThroughput measures the bitsliced GMW engine: a
// 64-bit x 1024-element batched comparison through real bit-packed
// chosen OTs over a pipe. Metrics: AND gates per second, wire bytes
// per AND gate, and the reduction over the seed block-payload path.
func BenchmarkGMWAndThroughput(b *testing.B) {
	var r experiments.GMWResult
	for i := 0; i < b.N; i++ {
		r = experiments.GMWBench(quick)
	}
	b.ReportMetric(r.GatesPerSec, "AND/s")
	b.ReportMetric(r.BytesPerAND, "B/AND")
	b.ReportMetric(r.WireReduction, "wire-reduction-x")
}

// BenchmarkArithTripleThroughput measures the arithmetic engine:
// COT-backed Beaver-triple generation (Gilboa word OTs over a pipe)
// plus a fixed-point secure matmul. Metrics: triples per second, wire
// bytes per triple, and matmul GFLOP-equivalent throughput.
func BenchmarkArithTripleThroughput(b *testing.B) {
	var r experiments.ArithResult
	for i := 0; i < b.N; i++ {
		r = experiments.ArithBench(quick)
	}
	b.ReportMetric(r.TriplesPerSec, "triples/s")
	b.ReportMetric(r.BytesPerTriple, "B/triple")
	b.ReportMetric(r.MatMulGFLOPs, "matmul-GFLOP/s")
}

// BenchmarkExtendThroughput measures the multicore Extend pipeline on
// the paper's 2^22 parameter set at workers=1,2,4,8: COT/s scaling
// (rank-parallel LPN encode + concurrent GGM expansion) at identical
// wire bytes per COT. On a multi-core host workers=4 should land at
// >= 2x the workers=1 throughput; a single-core container shows ~1x.
func BenchmarkExtendThroughput(b *testing.B) {
	params, err := ferret.ParamsByName("2^22")
	if err != nil {
		b.Fatal(err)
	}
	code := lpn.New(ferret.DefaultCodeSeed, params.N, params.K, params.D)
	delta := Block{Lo: 3, Hi: 4}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			connS, connR := transport.Pipe()
			defer connS.Close()
			defer connR.Close()
			opts := ferret.Options{Workers: workers, Code: code,
				Seed: Block{Lo: 0xbe7c4, Hi: uint64(workers)}}
			s, r, err := ferret.DealPools(connS, connR, delta, params, opts)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(params.Usable()) * 16)
			b.ResetTimer()
			var wire int64
			for i := 0; i < b.N; i++ {
				base := connS.Stats().TotalBytes()
				if _, _, err := ferret.ExtendLockstep(s, r); err != nil {
					b.Fatal(err)
				}
				wire = connS.Stats().TotalBytes() - base
			}
			b.ReportMetric(float64(params.Usable())*float64(b.N)/b.Elapsed().Seconds(), "COT/s")
			b.ReportMetric(float64(wire)/float64(params.Usable()), "B/COT")
		})
	}
}

// BenchmarkProtocolExtend2to20 measures the real Go protocol — both
// parties in-process — on the smallest Table 4 row. This is the
// software datapoint behind the Figure 1(b)/12 baselines.
func BenchmarkProtocolExtend2to20(b *testing.B) {
	params, err := ferret.ParamsByName("2^20")
	if err != nil {
		b.Fatal(err)
	}
	a, c := transport.Pipe()
	delta := Block{Lo: 1, Hi: 2}
	s, r, err := NewDealtPair(a, c, delta, params, DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(params.Usable()) * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := make(chan struct{})
		go func() {
			if _, err := s.COTs(params.Usable()); err != nil {
				b.Error(err)
			}
			close(done)
		}()
		if _, _, err := r.COTs(params.Usable()); err != nil {
			b.Fatal(err)
		}
		<-done
	}
}
