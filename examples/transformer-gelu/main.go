// Transformer nonlinear budget: size the OT preprocessing a Bolt-style
// private BERT-Base inference needs for its GELU/Softmax/LayerNorm
// layers (§2.2, Figure 15 of the Ironman paper), generate a slice of
// that budget with the real protocol, and then evaluate one GELU-row
// sign layer with the real bitsliced GMW engine — the online nonlinear
// phase those correlations exist to power.
//
//	go run ./examples/transformer-gelu
package main

import (
	"fmt"
	"log"
	"time"

	"ironman"
	"ironman/internal/cot"
	"ironman/internal/gmw"
	"ironman/internal/ppml"
	"ironman/internal/transport"
)

func main() {
	model := ppml.BERTBase
	fw := ppml.Bolt

	fmt.Printf("Model %s under %s:\n", model.Name, fw.Name)
	for _, op := range []ppml.Op{ppml.GELU, ppml.Softmax, ppml.LayerNorm} {
		fmt.Printf("  %-10s %8.1f M elements\n", op, float64(model.Elems[op])/1e6)
	}
	totalOTs := fw.OTCount(model)
	fmt.Printf("  -> %0.2f G COT correlations to preprocess\n", float64(totalOTs)/1e9)

	// Project preprocessing time on the two backends.
	cpuB := ppml.DefaultCPUBaseline()
	ironB := ppml.DefaultIronman()
	cpuSec := cpuB.Seconds(totalOTs)
	ironSec := ironB.Seconds(totalOTs)
	fmt.Printf("  CPU backend:     %8.1f s\n", cpuSec)
	fmt.Printf("  Ironman backend: %8.1f s  (%.1fx faster)\n", ironSec, cpuSec/ironSec)

	// Now actually run a slice of that budget with the real protocol:
	// one GELU activation row (3072 elements x OTs/elem).
	perRow := int(float64(3072) * fw.Costs[ppml.GELU].OTs)
	params, err := ironman.ParamsByName("2^20")
	if err != nil {
		log.Fatal(err)
	}
	connS, connR := ironman.Pipe()
	delta, err := ironman.RandomDelta()
	if err != nil {
		log.Fatal(err)
	}
	s, r, err := ironman.NewDealtPair(connS, connR, delta, params, ironman.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	type sres struct {
		z   []ironman.Block
		err error
	}
	ch := make(chan sres, 1)
	go func() {
		z, err := s.COTs(perRow)
		ch <- sres{z, err}
	}()
	bits, blocks, err := r.COTs(perRow)
	if err != nil {
		log.Fatal(err)
	}
	sr := <-ch
	if sr.err != nil {
		log.Fatal(sr.err)
	}
	if err := ironman.VerifyCOTs(delta, sr.z, bits, blocks); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d real COTs (one GELU row) in %v\n", perRow, time.Since(start))

	// Online phase: the comparison+mux at the heart of every
	// ReLU/GELU-style nonlinearity, evaluated with the bitsliced GMW
	// engine over one activation row: element-wise max of two private
	// rows. One batched parallel-prefix comparison handles all 3072
	// elements in O(log w) OT exchanges, then one MuxVec selects.
	const elems, width = 3072, 16
	maxLayer(elems, width)
}

// maxLayer runs GreaterThanVec + MuxVec (the compare+select pair
// modeled by ppml.GMWReLUCost) over two private activation rows and
// reports the measured wire cost next to the model.
func maxLayer(elems, width int) {
	modeled := ppml.GMWReLUCost(int64(elems), width)
	budget := int(modeled.ANDGates) // one COT per AND gate per direction

	// A dealer stands in for two role-switched Ferret instances (as in
	// examples/millionaires).
	connA, connB := transport.Pipe()
	sAB, rAB, err := cot.RandomPools(budget)
	if err != nil {
		log.Fatal(err)
	}
	sBA, rBA, err := cot.RandomPools(budget)
	if err != nil {
		log.Fatal(err)
	}

	// Fixed-point activation rows, one private to each party.
	xs := make([]uint64, elems)
	ys := make([]uint64, elems)
	for i := range xs {
		xs[i] = uint64((i*2654435761 + 12345) % (1 << width))
		ys[i] = uint64((i*1013904223 + 98765) % (1 << width))
	}

	start := time.Now()
	type res struct {
		vals []uint64
		p    *gmw.Party
		err  error
	}
	ch := make(chan res, 1)
	eval := func(conn transport.Conn, out *cot.SenderPool, in *cot.ReceiverPool, first bool) res {
		p, err := gmw.NewParty(conn, out, in, first)
		if err != nil {
			return res{err: err}
		}
		x := p.NewPrivateVec(xs, width, first)
		y := p.NewPrivateVec(ys, width, !first)
		gt, err := p.GreaterThanVec(x, y)
		if err != nil {
			return res{err: err}
		}
		max, err := p.MuxVec(gt, x, y)
		if err != nil {
			return res{err: err}
		}
		vals, err := p.RevealVec(max)
		return res{vals: vals, p: p, err: err}
	}
	go func() { ch <- eval(connA, sAB, rBA, true) }()
	rb := eval(connB, sBA, rAB, false)
	if rb.err != nil {
		log.Fatal(rb.err)
	}
	ra := <-ch
	if ra.err != nil {
		log.Fatal(ra.err)
	}
	elapsed := time.Since(start)

	for i, v := range ra.vals {
		want := max(xs[i], ys[i])
		if v != want || rb.vals[i] != want {
			log.Fatalf("max layer wrong at element %d: %x/%x != %x", i, v, rb.vals[i], want)
		}
	}
	stats := connA.Stats()
	fmt.Printf("GMW max layer over %d activations (width %d): %d AND gates, %d exchanges, %v\n",
		elems, width, ra.p.ANDGates, ra.p.Exchanges, elapsed)
	fmt.Printf("  modeled: %d ANDs, %d exchanges, %.2f B/AND — measured %.2f B/AND\n",
		modeled.ANDGates, modeled.Exchanges, modeled.BytesPerAND(),
		float64(stats.TotalBytes())/float64(ra.p.ANDGates))
}
