// Transformer nonlinear budget: size the OT preprocessing a Bolt-style
// private BERT-Base inference needs for its GELU/Softmax/LayerNorm
// layers (§2.2, Figure 15 of the Ironman paper), generate a slice of
// that budget with the real protocol, and compare the projected
// preprocessing times of the CPU baseline and the Ironman NMP design.
//
//	go run ./examples/transformer-gelu
package main

import (
	"fmt"
	"log"
	"time"

	"ironman"
	"ironman/internal/ppml"
)

func main() {
	model := ppml.BERTBase
	fw := ppml.Bolt

	fmt.Printf("Model %s under %s:\n", model.Name, fw.Name)
	for _, op := range []ppml.Op{ppml.GELU, ppml.Softmax, ppml.LayerNorm} {
		fmt.Printf("  %-10s %8.1f M elements\n", op, float64(model.Elems[op])/1e6)
	}
	totalOTs := fw.OTCount(model)
	fmt.Printf("  -> %0.2f G COT correlations to preprocess\n", float64(totalOTs)/1e9)

	// Project preprocessing time on the two backends.
	cpuB := ppml.DefaultCPUBaseline()
	ironB := ppml.DefaultIronman()
	cpuSec := cpuB.Seconds(totalOTs)
	ironSec := ironB.Seconds(totalOTs)
	fmt.Printf("  CPU backend:     %8.1f s\n", cpuSec)
	fmt.Printf("  Ironman backend: %8.1f s  (%.1fx faster)\n", ironSec, cpuSec/ironSec)

	// Now actually run a slice of that budget with the real protocol:
	// one GELU activation row (3072 elements x OTs/elem).
	perRow := int(float64(3072) * fw.Costs[ppml.GELU].OTs)
	params, err := ironman.ParamsByName("2^20")
	if err != nil {
		log.Fatal(err)
	}
	connS, connR := ironman.Pipe()
	delta, err := ironman.RandomDelta()
	if err != nil {
		log.Fatal(err)
	}
	s, r, err := ironman.NewDealtPair(connS, connR, delta, params, ironman.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	type sres struct {
		z   []ironman.Block
		err error
	}
	ch := make(chan sres, 1)
	go func() {
		z, err := s.COTs(perRow)
		ch <- sres{z, err}
	}()
	bits, blocks, err := r.COTs(perRow)
	if err != nil {
		log.Fatal(err)
	}
	sr := <-ch
	if sr.err != nil {
		log.Fatal(sr.err)
	}
	if err := ironman.VerifyCOTs(delta, sr.z, bits, blocks); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d real COTs (one GELU row) in %v\n", perRow, time.Since(start))
}
