// Role switching: both parties act as OT sender in one direction and
// receiver in the other, concurrently over the same link — the workload
// pattern of §5.2 that motivates the unified Ironman-NMP unit, and the
// PrivQuant-style MatMul communication optimization of Figure 16.
//
//	go run ./examples/roleswitch
package main

import (
	"fmt"
	"log"
	"time"

	"ironman"
	"ironman/internal/ppml"
	"ironman/internal/simnet"
)

func main() {
	params, err := ironman.ParamsByName("2^20")
	if err != nil {
		log.Fatal(err)
	}
	opts := ironman.DefaultOptions()

	// Direction 1: A sends, B receives. Direction 2: roles swapped.
	// Two connection pairs model the duplex link.
	a1, b1 := ironman.Pipe()
	a2, b2 := ironman.Pipe()
	dAB, _ := ironman.RandomDelta()
	dBA, _ := ironman.RandomDelta()
	sAB, rAB, err := ironman.NewDealtPair(a1, b1, dAB, params, opts)
	if err != nil {
		log.Fatal(err)
	}
	sBA, rBA, err := ironman.NewDealtPair(b2, a2, dBA, params, opts)
	if err != nil {
		log.Fatal(err)
	}

	// Party A runs sender(AB) and receiver(BA) concurrently; party B
	// the mirror image. A unified accelerator serves both roles with
	// one XOR-tree datapath (Figure 10).
	const n = 1 << 18
	start := time.Now()
	errs := make(chan error, 4)
	var zAB []ironman.Block
	var outBA struct {
		bits []bool
		blks []ironman.Block
	}
	go func() { // party A, sender role
		var err error
		zAB, err = sAB.COTs(n)
		errs <- err
	}()
	go func() { // party A, receiver role
		var err error
		outBA.bits, outBA.blks, err = rBA.COTs(n)
		errs <- err
	}()
	go func() { // party B, receiver role
		_, _, err := rAB.COTs(n)
		errs <- err
	}()
	go func() { // party B, sender role
		_, err := sBA.COTs(n)
		errs <- err
	}()
	for i := 0; i < 4; i++ {
		if err := <-errs; err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("both directions produced %d COTs each in %v (parallel role switch)\n",
		n, time.Since(start))
	if err := ironman.VerifyCOTs(dBA, zOf(outBA.blks, outBA.bits, dBA), outBA.bits, outBA.blks); err == nil {
		fmt.Println("direction B->A verified")
	}
	_ = zAB

	// Figure 16: the communication effect of role switching on
	// OT-based MatMul.
	fmt.Println("\nMatMul communication (Figure 16 model):")
	for _, mm := range []ppml.MatMul{{M: 64, K: 768, N: 768}, {M: 64, K: 768, N: 64}, {M: 64, K: 4096, N: 64}} {
		without := mm.CommBytes(false)
		with := mm.CommBytes(true)
		fmt.Printf("  dims (%4d,%4d,%4d): %6.2f MB -> %6.2f MB (%.1fx), latency %.2f ms -> %.2f ms (%.2fx)\n",
			mm.M, mm.K, mm.N,
			float64(without)/1e6, float64(with)/1e6, float64(without)/float64(with),
			mm.Latency(simnet.LAN, false)*1e3, mm.Latency(simnet.LAN, true)*1e3,
			mm.Latency(simnet.LAN, false)/mm.Latency(simnet.LAN, true))
	}
}

// zOf reconstructs the sender-side view for verification display: z =
// y ⊕ x·Δ (demo only; a real receiver cannot do this).
func zOf(y []ironman.Block, x []bool, delta ironman.Block) []ironman.Block {
	z := make([]ironman.Block, len(y))
	for i := range y {
		z[i] = y[i]
		if x[i] {
			z[i] = z[i].Xor(delta)
		}
	}
	return z
}
