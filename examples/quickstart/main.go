// Quickstart: generate correlated OTs with the Ironman library, convert
// a few to chosen-message OTs, and verify everything.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"ironman"
)

func main() {
	// Two in-process endpoints; real deployments use NewTCPConn.
	connS, connR := ironman.Pipe()

	params, err := ironman.ParamsByName("2^20")
	if err != nil {
		log.Fatal(err)
	}
	delta, err := ironman.RandomDelta()
	if err != nil {
		log.Fatal(err)
	}

	// NewDealtPair skips the base-OT init (single-process demo); use
	// NewSender/NewReceiver across a network for the real handshake.
	sender, receiver, err := ironman.NewDealtPair(connS, connR, delta, params, ironman.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// Draw one million correlated OTs.
	const n = 1 << 20
	start := time.Now()
	type sres struct {
		z   []ironman.Block
		err error
	}
	ch := make(chan sres, 1)
	go func() {
		z, err := sender.COTs(n)
		ch <- sres{z, err}
	}()
	bits, blocks, err := receiver.COTs(n)
	if err != nil {
		log.Fatal(err)
	}
	sr := <-ch
	if sr.err != nil {
		log.Fatal(sr.err)
	}
	elapsed := time.Since(start)

	if err := ironman.VerifyCOTs(delta, sr.z, bits, blocks); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated and verified %d COTs in %v (%.2f M COT/s)\n",
		n, elapsed, float64(n)/elapsed.Seconds()/1e6)
	fmt.Printf("sender traffic: %v\n", connS.Stats())

	// Chosen-message OT on top: the receiver picks message 1 of pair 0
	// and message 0 of pair 1.
	msgs := [][2]ironman.Block{
		{blockOf(100), blockOf(101)},
		{blockOf(200), blockOf(201)},
	}
	choices := []bool{true, false}
	errCh := make(chan error, 1)
	go func() { errCh <- sender.SendChosen(connS, msgs) }()
	got, err := receiver.ReceiveChosen(connR, choices)
	if err != nil {
		log.Fatal(err)
	}
	if err := <-errCh; err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chosen OT results: %v %v (want %v %v)\n",
		got[0], got[1], msgs[0][1], msgs[1][0])
}

func blockOf(v uint64) ironman.Block {
	var b ironman.Block
	b.Lo = v
	return b
}
