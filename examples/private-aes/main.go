// Private AES / two-party threshold encryption over real TCP.
//
// The AES-128 key is XOR-split between two parties — K = kA ^ kB,
// neither side ever holds K — and party A additionally holds the
// plaintext blocks. The parties jointly evaluate the embedded AES-128
// Bristol circuit (key schedule included, so the split key enters the
// circuit as shares) under GMW, and both learn only the ciphertexts.
// This is the classic distributed-HSM / threshold-signing workload:
// no single machine is a key-theft target.
//
// Four blocks are encrypted in ONE evaluation: the circuit frontend
// packs K independent instances across the engine's word lanes, so
// the exchange count stays at the circuit's AND depth (40) no matter
// how many blocks ride along. The two parties run as goroutines
// connected by a real TCP loopback socket.
//
//	go run ./examples/private-aes
package main

import (
	"bytes"
	"crypto/aes"
	"fmt"
	"log"
	"net"

	"ironman"

	"ironman/internal/cot"
)

// blocks is the SIMD instance count: plaintext blocks encrypted per
// evaluation.
const blocks = 4

func main() {
	circ := ironman.CircuitAES128()
	prog, err := ironman.CompileCircuit(circ)
	if err != nil {
		log.Fatal(err)
	}

	// Demo inputs: the key shares XOR to K, only ever reconstructed
	// here in main for the final cross-check.
	var kA, kB [16]byte
	for i := range kA {
		kA[i] = byte(0x5a + 13*i)
		kB[i] = byte(0xc3 ^ 7*i)
	}
	pts := make([][]byte, blocks)
	for k := range pts {
		pts[k] = make([]byte, 16)
		for i := range pts[k] {
			pts[k][i] = byte(17*k + 3*i + 1)
		}
	}

	// Each OT direction needs one correlation stream; a local dealer
	// stands in for the two opposite-role Ferret sessions (see
	// examples/millionaires for the full Extend pipeline).
	budget := prog.ANDs * blocks
	sAB, rAB, err := cot.RandomPools(budget)
	if err != nil {
		log.Fatal(err)
	}
	sBA, rBA, err := cot.RandomPools(budget)
	if err != nil {
		log.Fatal(err)
	}

	// A real TCP loopback link between the two parties.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	connB := make(chan ironman.Conn, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			log.Fatal(err)
		}
		connB <- ironman.NewTCPConn(nc)
	}()
	ncA, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	connA := ironman.NewTCPConn(ncA)

	type result struct {
		cts  [][]bool
		wire int64
	}
	resA := make(chan result, 1)
	go func() { // party A: plaintexts + key share kA
		party, err := ironman.NewGMWParty(connA, sAB, rBA, true)
		if err != nil {
			log.Fatal(err)
		}
		base := connA.Stats().TotalBytes()
		ptBits := make([][]bool, blocks)
		keyBits := make([][]bool, blocks)
		for k := range ptBits {
			ptBits[k] = ironman.BytesBits(pts[k])
			keyBits[k] = ironman.BytesBits(kA[:]) // same share every instance
		}
		ptPlanes, err := ironman.ShareCircuitInputs(ptBits, 128, true)
		if err != nil {
			log.Fatal(err)
		}
		// Threshold input: BOTH parties pass their key share with
		// mine=true; the circuit sees the XOR, i.e. K itself.
		keyPlanes, err := ironman.ShareCircuitInputs(keyBits, 128, true)
		if err != nil {
			log.Fatal(err)
		}
		out, err := ironman.EvalCircuit(party, prog, append(ptPlanes, keyPlanes...))
		if err != nil {
			log.Fatal(err)
		}
		cts, err := ironman.RevealCircuitOutputs(party, out)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("party A: %d AND gates in %d exchanges\n", party.ANDGates, party.Exchanges)
		resA <- result{cts, connA.Stats().TotalBytes() - base}
	}()

	// Party B: no plaintext (zero shares), key share kB.
	party, err := ironman.NewGMWParty(<-connB, sBA, rAB, false)
	if err != nil {
		log.Fatal(err)
	}
	ptPlanes, err := ironman.ShareCircuitInputs(make([][]bool, blocks), 128, false)
	if err != nil {
		log.Fatal(err)
	}
	keyBits := make([][]bool, blocks)
	for k := range keyBits {
		keyBits[k] = ironman.BytesBits(kB[:])
	}
	keyPlanes, err := ironman.ShareCircuitInputs(keyBits, 128, true)
	if err != nil {
		log.Fatal(err)
	}
	out, err := ironman.EvalCircuit(party, prog, append(ptPlanes, keyPlanes...))
	if err != nil {
		log.Fatal(err)
	}
	ctsB, err := ironman.RevealCircuitOutputs(party, out)
	if err != nil {
		log.Fatal(err)
	}
	ra := <-resA

	// Cross-check: reconstruct K (demo only!) and compare both
	// parties' opened ciphertexts against crypto/aes.
	var key [16]byte
	for i := range key {
		key[i] = kA[i] ^ kB[i]
	}
	cipher, err := aes.NewCipher(key[:])
	if err != nil {
		log.Fatal(err)
	}
	for k := range pts {
		want := make([]byte, 16)
		cipher.Encrypt(want, pts[k])
		gotA := ironman.BitsBytes(ra.cts[k])
		gotB := ironman.BitsBytes(ctsB[k])
		if !bytes.Equal(gotA, want) || !bytes.Equal(gotB, want) {
			log.Fatalf("block %d: threshold ciphertext mismatch", k)
		}
		fmt.Printf("block %d: %x\n", k, gotA)
	}
	fmt.Printf("%d blocks, %d wire bytes over TCP, key never reconstructed inside the protocol\n",
		blocks, ra.wire)
}
