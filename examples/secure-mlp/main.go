// Secure two-party inference of a 2-layer fixed-point MLP — the
// end-to-end workload the Ironman paper's preprocessing exists to
// power (§2.2): party A holds the model (W1, b1, W2, b2), party B
// holds the input vector, and neither learns the other's data. Linear
// layers run on additive shares via Beaver matrix triples generated
// from correlated OT (Gilboa), activations cross into the packed GMW
// engine through A2B, run ReLU Boolean, and return through B2A:
//
//	x -> W1·x + b1 -> truncate -> A2B -> ReLU -> B2A -> W2·h + b2 -> reveal
//
// Both parties' revealed outputs are cross-checked against the
// plaintext model within the documented truncation error bound.
//
//	go run ./examples/secure-mlp
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"ironman/internal/arith"
	"ironman/internal/cot"
	"ironman/internal/ppml"
	"ironman/internal/transport"
)

// Network shape: d inputs -> h hidden (ReLU) -> o outputs.
const (
	d = 16
	h = 32
	o = 10
)

var fixed = arith.Fixed{Frac: 12}

func main() {
	// Deterministic pseudo-random model and input, so runs are
	// reproducible; weights in [-1, 1).
	seed := uint64(0x9E3779B97F4A7C15)
	next := func() float64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return float64(int64(seed)>>40) / float64(int64(1)<<23)
	}
	w1 := vecf(h*d, next)
	b1 := vecf(h, next)
	w2 := vecf(o*h, next)
	b2 := vecf(o, next)
	x := vecf(d, next)

	// Size the correlation budget from the operator cost models — the
	// same arithmetic the paper uses to provision preprocessing.
	layer1 := ppml.ArithMatTripleCost(h, d, 1)
	layer2 := ppml.ArithMatTripleCost(o, h, 1)
	a2b := ppml.ArithA2BCost(h, 64)
	relu := ppml.GMWMuxCost(h, 64)
	b2a := ppml.ArithB2ACost(h, 64)
	budget := int(layer1.COTs/2+layer2.COTs/2) + int(a2b.OTs/2+relu.OTs/2) + int(b2a.COTs)
	fmt.Printf("secure-mlp: %d-%d-%d MLP, fixed point 1/%d\n", d, h, o, int64(1)<<fixed.Frac)
	fmt.Printf("  modeled budget: %d COTs per direction (%d B triple wire modeled)\n",
		budget, layer1.WireBytes+layer2.WireBytes)

	// A dealer stands in for two role-switched Ferret endpoint pairs
	// (run NewSender/NewReceiver across a network for the real
	// interactive protocol; see DESIGN.md's dealt-pair caveat).
	connA, connB := transport.Pipe()
	sAB, rAB, err := cot.RandomPools(budget)
	if err != nil {
		log.Fatal(err)
	}
	sBA, rBA, err := cot.RandomPools(budget)
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	type res struct {
		out   []float64
		party *arith.Party
		err   error
	}
	ch := make(chan res, 1)
	go func() {
		out, p, err := infer(connA, sAB, rBA, true, w1, b1, w2, b2, x)
		ch <- res{out, p, err}
	}()
	outB, _, errB := infer(connB, sBA, rAB, false, w1, b1, w2, b2, x)
	if errB != nil {
		log.Fatal(errB)
	}
	ra := <-ch
	if ra.err != nil {
		log.Fatal(ra.err)
	}
	elapsed := time.Since(start)

	// Plaintext reference on the quantized model (the protocol computes
	// on encodings, so that is the right comparison point); tolerance
	// is the truncation error bound from DESIGN.md: ±1 ulp per
	// truncation plus quantized-operand rounding across the fan-in.
	want := plaintext(w1, b1, w2, b2, x)
	tol := float64(d+h+4) / float64(int64(1)<<fixed.Frac)
	worst := 0.0
	for i := range want {
		errA := math.Abs(ra.out[i] - want[i])
		errBv := math.Abs(outB[i] - want[i])
		worst = math.Max(worst, math.Max(errA, errBv))
		if errA > tol || errBv > tol {
			log.Fatalf("output %d outside error bound: %g/%g want %g (tol %g)",
				i, ra.out[i], outB[i], want[i], tol)
		}
	}
	stats := connA.Stats()
	fmt.Printf("  output matches plaintext model: max |err| %.2e (bound %.2e)\n", worst, tol)
	fmt.Printf("  logits: %s\n", fmtVec(ra.out))
	fmt.Printf("%d triples, %d exchanges, %d B on the wire, %v\n",
		ra.party.Triples, ra.party.Exchanges, stats.TotalBytes(), elapsed)
}

// infer runs one party's side of the pipeline. Party A (first=true)
// privately inputs the model, party B the input vector.
func infer(conn transport.Conn, out *cot.SenderPool, in *cot.ReceiverPool, modelOwner bool,
	w1, b1, w2, b2, x []float64) ([]float64, *arith.Party, error) {
	p, err := arith.NewParty(conn, out, in, modelOwner)
	if err != nil {
		return nil, nil, err
	}
	// Layer 1: z1 = W1·x + b1, rescaled back to Frac fractional bits.
	tr1, err := p.NewMatTriple(h, d, 1)
	if err != nil {
		return nil, nil, err
	}
	w1s := p.NewPrivate(fixed.EncodeVec(w1), modelOwner)
	b1s := p.NewPrivate(fixed.EncodeVec(b1), modelOwner)
	xs := p.NewPrivate(fixed.EncodeVec(x), !modelOwner)
	z1, err := p.MatVec(w1s, xs, tr1)
	if err != nil {
		return nil, nil, err
	}
	z1, err = arith.Add(p.TruncVec(z1, fixed.Frac), b1s)
	if err != nil {
		return nil, nil, err
	}
	// Nonlinearity: cross into the Boolean engine, ReLU, cross back.
	planes, err := p.A2B(z1, 64)
	if err != nil {
		return nil, nil, err
	}
	kept, err := p.Bool.ReLUVec(planes)
	if err != nil {
		return nil, nil, err
	}
	h1, err := p.B2A(kept)
	if err != nil {
		return nil, nil, err
	}
	// Layer 2: logits = W2·h1 + b2.
	tr2, err := p.NewMatTriple(o, h, 1)
	if err != nil {
		return nil, nil, err
	}
	w2s := p.NewPrivate(fixed.EncodeVec(w2), modelOwner)
	b2s := p.NewPrivate(fixed.EncodeVec(b2), modelOwner)
	z2, err := p.MatVec(w2s, h1, tr2)
	if err != nil {
		return nil, nil, err
	}
	z2, err = arith.Add(p.TruncVec(z2, fixed.Frac), b2s)
	if err != nil {
		return nil, nil, err
	}
	open, err := p.Reveal(z2)
	if err != nil {
		return nil, nil, err
	}
	return fixed.DecodeVec(open), p, nil
}

// plaintext evaluates the MLP on the quantized parameters.
func plaintext(w1, b1, w2, b2, x []float64) []float64 {
	q := func(v []float64) []float64 { return fixed.DecodeVec(fixed.EncodeVec(v)) }
	w1q, b1q, w2q, b2q, xq := q(w1), q(b1), q(w2), q(b2), q(x)
	h1 := make([]float64, h)
	for i := 0; i < h; i++ {
		s := b1q[i]
		for l := 0; l < d; l++ {
			s += w1q[i*d+l] * xq[l]
		}
		h1[i] = math.Max(s, 0)
	}
	out := make([]float64, o)
	for i := 0; i < o; i++ {
		s := b2q[i]
		for l := 0; l < h; l++ {
			s += w2q[i*h+l] * h1[l]
		}
		out[i] = s
	}
	return out
}

func vecf(n int, next func() float64) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = next()
	}
	return v
}

func fmtVec(v []float64) string {
	s := "["
	for i, x := range v {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.3f", x)
	}
	return s + "]"
}
