// Dispenser example: run an OT-dispenser server in-process, open four
// concurrent sessions against it, draw correlated OTs from each, and
// verify every batch under its session's Δ.
//
// In a real deployment the server side is the otd daemon
// (cmd/otd) and each client is a separate process:
//
//	otd -listen :7117 -params 2^20 &
//	... otserv.Dial("localhost:7117") ...
//
//	go run ./examples/dispenser
package main

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"ironman"
	"ironman/internal/otserv"
)

func main() {
	// An in-process dispenser on a loopback port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := otserv.NewServer(otserv.Config{DefaultParams: "2^20", Depth: 2})
	go srv.Serve(ln)
	defer srv.Close()
	addr := ln.Addr().String()
	fmt.Printf("dispenser on %s\n", addr)

	const sessions = 4
	const n = 1 << 18 // draws per session
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := otserv.Dial(addr)
			if err != nil {
				log.Fatal(err)
			}
			defer c.Close()
			sess, err := c.NewSession(otserv.SessionConfig{Depth: 2})
			if err != nil {
				log.Fatal(err)
			}
			delta, _ := sess.Delta()

			start := time.Now()
			z, err := sess.Sender().COTs(n)
			if err != nil {
				log.Fatal(err)
			}
			bits, y, err := sess.Receiver().COTs(n)
			if err != nil {
				log.Fatal(err)
			}
			elapsed := time.Since(start)
			if err := ironman.VerifyCOTs(delta, z, bits, y); err != nil {
				log.Fatalf("session %d: %v", i, err)
			}
			st, err := sess.Stats()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("session %d (id %d): %d COTs verified in %v (%.2f M COT/s), "+
				"%d refills, %d blocked draws\n",
				i, sess.ID(), n, elapsed, float64(n)/elapsed.Seconds()/1e6,
				st.Sender.Refills, st.Sender.BlockedDraws)
		}(i)
	}
	wg.Wait()
}
