// Dispenser example: run an OT-dispenser server in-process, open four
// concurrent sessions against it, draw correlated OTs from each, and
// verify every batch under its session's Δ.
//
// In a real deployment the server side is the otd daemon
// (cmd/otd) and each client is a separate process:
//
//	otd -listen :7117 -params 2^20 &
//	... otserv.Dial("localhost:7117") ...
//
//	go run ./examples/dispenser
package main

import (
	"fmt"
	"log"
	"net"
	"strings"
	"sync"
	"time"

	"ironman"
	"ironman/internal/obs"
	"ironman/internal/otserv"
)

func main() {
	// An in-process dispenser on a loopback port, sharing a metrics
	// registry with this process — the same registry otd exposes on
	// its -admin /metrics endpoint.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	reg := obs.NewRegistry()
	srv := otserv.NewServer(otserv.Config{DefaultParams: "2^20", Depth: 2, Registry: reg})
	go func() {
		// Serve returns nil once Close shuts the listener down.
		if err := srv.Serve(ln); err != nil {
			log.Fatal(err)
		}
	}()
	defer func() {
		if err := srv.Close(); err != nil {
			log.Printf("dispenser: close: %v", err)
		}
	}()
	addr := ln.Addr().String()
	fmt.Printf("dispenser on %s\n", addr)

	const sessions = 4
	const n = 1 << 18 // draws per session
	var wg sync.WaitGroup
	var clients []*otserv.Client
	defer func() {
		for _, c := range clients {
			if err := c.Close(); err != nil {
				log.Printf("dispenser: client close: %v", err)
			}
		}
	}()
	for i := 0; i < sessions; i++ {
		c, err := otserv.Dial(addr)
		if err != nil {
			log.Fatal(err)
		}
		clients = append(clients, c)
		wg.Add(1)
		go func(i int, c *otserv.Client) {
			defer wg.Done()
			sess, err := c.NewSession(otserv.SessionConfig{Depth: 2})
			if err != nil {
				log.Fatal(err)
			}
			delta, _ := sess.Delta()

			start := time.Now()
			z, err := sess.Sender().COTs(n)
			if err != nil {
				log.Fatal(err)
			}
			bits, y, err := sess.Receiver().COTs(n)
			if err != nil {
				log.Fatal(err)
			}
			elapsed := time.Since(start)
			if err := ironman.VerifyCOTs(delta, z, bits, y); err != nil {
				log.Fatalf("session %d: %v", i, err)
			}
			st, err := sess.Stats()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("session %d (id %d): %d COTs verified in %v (%.2f M COT/s), "+
				"%d refills, %d blocked draws\n",
				i, sess.ID(), n, elapsed, float64(n)/elapsed.Seconds()/1e6,
				st.Sender.Refills, st.Sender.BlockedDraws)
		}(i, c)
	}
	wg.Wait()

	// Fleet-era session semantics: sessions carry a tenant (the quota
	// principal) and a routing token. A dropped connection orphans its
	// sessions into a lease window instead of tearing them down — a new
	// connection resumes the SAME session, and the same pool position,
	// with AttachToken. Against the fleet router the token also pins
	// the session's shard, so the reconnect lands where the state lives.
	c1, err := otserv.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	sess, err := c1.NewSession(otserv.SessionConfig{
		Depth:  2,
		Tenant: "acme",
		Lease:  30 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	token, senderTok, receiverTok := sess.Token(), sess.SenderToken(), sess.ReceiverToken()
	delta, _ := sess.Delta()
	z1, err := sess.SenderCOTs(4096)
	if err != nil {
		log.Fatal(err)
	}
	// Simulate a crash: drop the connection without closing the session.
	if err := c1.Close(); err != nil {
		log.Fatal(err)
	}

	c2, err := otserv.Dial(addr)
	if err != nil {
		log.Fatal(err)
	}
	clients = append(clients, c2)
	re, err := c2.AttachToken(token, senderTok)
	if err != nil {
		log.Fatal(err)
	}
	z2, err := re.SenderCOTs(4096)
	if err != nil {
		log.Fatal(err)
	}
	rx, err := c2.AttachToken(token, receiverTok)
	if err != nil {
		log.Fatal(err)
	}
	bits, y, err := rx.ReceiverCOTs(8192)
	if err != nil {
		log.Fatal(err)
	}
	// The receiver stream spans both halves of the sender's draws: the
	// reconnect resumed the pool mid-stream, byte-identically.
	if err := ironman.VerifyCOTs(delta, append(z1, z2...), bits, y); err != nil {
		log.Fatalf("reconnect: %v", err)
	}
	fmt.Printf("\ntenant %q session %d: reconnect-with-token resumed mid-stream, 8192 COTs verified across the drop\n",
		"acme", re.ID())
	if err := re.Close(); err != nil {
		log.Fatal(err)
	}

	// On exit, dump the registry the server maintained: the server-wide
	// lifecycle series plus every live session's pool counters and
	// draw-latency quantiles — the in-process view of what a Prometheus
	// scrape of `otd -admin` would collect.
	fmt.Println("\nregistry metrics at exit:")
	for _, m := range reg.Snapshot() {
		switch {
		case m.Type == "histogram":
			fmt.Printf("  %-72s count=%d p50=%.6fs p99=%.6fs\n",
				m.Name, m.Hist.Count, m.Hist.P50, m.Hist.P99)
		case strings.Contains(m.Name, "_draws_total") ||
			strings.Contains(m.Name, "_dispensed_total") ||
			strings.HasPrefix(m.Name, "ironman_otserv_"):
			fmt.Printf("  %-72s %.0f\n", m.Name, m.Value)
		}
	}
}
