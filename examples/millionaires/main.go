// Millionaires / private comparison: the building block of every ReLU
// in CrypTFlow2-style private inference (§2.2 of the Ironman paper).
//
// Two parties hold private 32-bit values x and y. Using GMW over
// XOR-shared bits — with every AND gate powered by OT correlations from
// two Ferret instances running in opposite directions (the paper's
// role-switching scenario, §5.2) — they learn only whether x > y. The
// comparator is the engine's parallel-prefix network: 1+ceil(log2 32)
// batched OT exchanges instead of one exchange per bit, with every
// exchange shipping bit-packed OT frames.
//
//	go run ./examples/millionaires
package main

import (
	"fmt"
	"log"

	"ironman/internal/block"
	"ironman/internal/cot"
	"ironman/internal/ferret"
	"ironman/internal/gmw"
	"ironman/internal/transport"
)

const bitWidth = 32

func main() {
	x := uint64(1_000_000) // party A's net worth
	y := uint64(999_999)   // party B's net worth

	// Each direction of AND cross terms needs its own COT stream:
	// A->B (A is OT sender) and B->A. In production both run Ferret
	// with swapped roles over the same link — exactly what the unified
	// Ironman-NMP unit accelerates. Here a dealer stands in for the
	// two Ferret initializations.
	params := ferret.TestParams(4000, 32, 256, 16)
	connA, connB := transport.Pipe()

	deltaAB := block.New(0xA, 0xB)
	sAB, rAB, err := ferret.DealPools(connA, connB, deltaAB, params, ferret.Options{})
	if err != nil {
		log.Fatal(err)
	}
	deltaBA := block.New(0xB, 0xA)
	sBA, rBA, err := ferret.DealPools(connB, connA, deltaBA, params, ferret.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Run one Extend per instance to materialize COT pools. Party A
	// drives its sender instance first while party B serves its
	// receiver side, then the roles flip — the protocol interleaving
	// the unified hardware unit handles without idling.
	poolsA := make(chan pools, 1)
	poolsB := make(chan pools, 1)
	go func() {
		out := extendSender(sAB)
		in := extendReceiver(rBA)
		poolsA <- pools{out: out, in: in}
	}()
	go func() {
		in := extendReceiver(rAB)
		out := extendSender(sBA)
		poolsB <- pools{out: out, in: in}
	}()
	pa, pb := <-poolsA, <-poolsB

	base := connA.Stats()

	// The NewParty handshake is interactive: both constructors (and
	// the protocol that follows) run concurrently, one per goroutine.
	resA := make(chan []bool, 1)
	go func() {
		partyA, err := gmw.NewParty(connA, pa.out, pa.in, true)
		if err != nil {
			log.Fatal(err)
		}
		xs := partyA.NewPrivate(gmw.Uint64Bits(x, bitWidth), true)
		ys := partyA.NewPrivate(nil2(bitWidth), false)
		gt, err := partyA.GreaterThan(xs, ys)
		if err != nil {
			log.Fatal(err)
		}
		open, err := partyA.Reveal(gt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("party A consumed %d AND gates (%d OTs) in %d batched exchanges\n",
			partyA.ANDGates, 2*partyA.ANDGates, partyA.Exchanges)
		resA <- open
	}()

	partyB, err := gmw.NewParty(connB, pb.out, pb.in, false)
	if err != nil {
		log.Fatal(err)
	}
	xsB := partyB.NewPrivate(nil2(bitWidth), false)
	ysB := partyB.NewPrivate(gmw.Uint64Bits(y, bitWidth), true)
	gtB, err := partyB.GreaterThan(xsB, ysB)
	if err != nil {
		log.Fatal(err)
	}
	openB, err := partyB.Reveal(gtB)
	if err != nil {
		log.Fatal(err)
	}
	openA := <-resA

	stats := connA.Stats()
	fmt.Printf("online phase: %d wire bytes, %d flights (comparator budget: %d exchanges)\n",
		stats.TotalBytes()-base.TotalBytes(), stats.Flights-base.Flights, gmw.ComparatorExchanges(bitWidth))
	fmt.Printf("x > y: A sees %v, B sees %v (truth: %v)\n", openA[0], openB[0], x > y)
	if openA[0] != (x > y) || openB[0] != (x > y) {
		log.Fatal("comparison result wrong")
	}
}

type pools struct {
	out *cot.SenderPool
	in  *cot.ReceiverPool
}

// extendSender and extendReceiver run one Ferret iteration each and
// wrap the outputs as pools. The two directions run concurrently (the
// goroutines in main), which is the parallel dual-execution pattern of
// §1 the unified architecture exists for.
func extendSender(s *ferret.Sender) *cot.SenderPool {
	z, err := s.Extend()
	if err != nil {
		log.Fatal(err)
	}
	return cot.NewSenderPool(s.Delta, z)
}

func extendReceiver(r *ferret.Receiver) *cot.ReceiverPool {
	out, err := r.Extend()
	if err != nil {
		log.Fatal(err)
	}
	pool, err := cot.NewReceiverPool(out.Bits, out.Blocks)
	if err != nil {
		log.Fatal(err)
	}
	return pool
}

func nil2(n int) []bool { return make([]bool, n) }
