package ironman

import (
	"testing"

	"ironman/internal/ferret"
)

func dealtPair(t testing.TB, params Params) (Conn, Conn, Block, *Sender, *Receiver) {
	t.Helper()
	a, b := Pipe()
	delta, err := RandomDelta()
	if err != nil {
		t.Fatal(err)
	}
	s, r, err := NewDealtPair(a, b, delta, params, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return a, b, delta, s, r
}

func smallParams() Params { return ferret.TestParams(600, 32, 128, 8) }

func TestCOTsAcrossIterations(t *testing.T) {
	_, _, delta, s, r := dealtPair(t, smallParams())
	// Draw more than one iteration's Usable() to force buffering.
	n := smallParams().Usable() + 100
	type sres struct {
		z   []Block
		err error
	}
	ch := make(chan sres, 1)
	go func() {
		z, err := s.COTs(n)
		ch <- sres{z, err}
	}()
	bits, blocks, err := r.COTs(n)
	if err != nil {
		t.Fatal(err)
	}
	sr := <-ch
	if sr.err != nil {
		t.Fatal(sr.err)
	}
	if err := VerifyCOTs(delta, sr.z, bits, blocks); err != nil {
		t.Fatal(err)
	}
	if s.Delta() != delta {
		t.Fatal("Delta accessor wrong")
	}
}

func TestRandomOTsConsistent(t *testing.T) {
	_, _, _, s, r := dealtPair(t, smallParams())
	const n = 64
	type sres struct {
		pairs [][2]Block
		err   error
	}
	ch := make(chan sres, 1)
	go func() {
		p, err := s.RandomOTs(n)
		ch <- sres{p, err}
	}()
	bits, keys, err := r.RandomOTs(n)
	if err != nil {
		t.Fatal(err)
	}
	sr := <-ch
	if sr.err != nil {
		t.Fatal(sr.err)
	}
	for i := 0; i < n; i++ {
		want := sr.pairs[i][0]
		if bits[i] {
			want = sr.pairs[i][1]
		}
		if keys[i] != want {
			t.Fatalf("random OT %d: key mismatch", i)
		}
		other := sr.pairs[i][1]
		if bits[i] {
			other = sr.pairs[i][0]
		}
		if keys[i] == other {
			t.Fatalf("random OT %d: both keys equal", i)
		}
	}
}

func TestChosenOTEndToEnd(t *testing.T) {
	connS, connR, _, s, r := dealtPair(t, smallParams())
	msgs := make([][2]Block, 16)
	choices := make([]bool, 16)
	for i := range msgs {
		msgs[i][0] = Block{Lo: uint64(i), Hi: 0}
		msgs[i][1] = Block{Lo: uint64(i), Hi: 1}
		choices[i] = i%3 == 0
	}
	errCh := make(chan error, 1)
	go func() { errCh <- s.SendChosen(connS, msgs) }()
	got, err := r.ReceiveChosen(connR, choices)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	for i := range got {
		want := msgs[i][0]
		if choices[i] {
			want = msgs[i][1]
		}
		if got[i] != want {
			t.Fatalf("chosen OT %d wrong", i)
		}
	}
}

func TestPrefetchOption(t *testing.T) {
	// With Prefetch > 0 both endpoints generate on background workers;
	// the draw API and the correlations are unchanged.
	a, b := Pipe()
	delta, err := RandomDelta()
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Prefetch = 2
	s, r, err := NewDealtPair(a, b, delta, smallParams(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	defer r.Close()
	defer a.Close()
	defer b.Close()
	// Draw well past the prefetch window (4 batches vs Prefetch 2),
	// sequentially: a dealt pair shares one lockstep generator, so a
	// one-sided draw can never wedge waiting for the peer's worker.
	n := 4 * smallParams().Usable()
	z, err := s.COTs(n)
	if err != nil {
		t.Fatal(err)
	}
	bits, blocks, err := r.COTs(n)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyCOTs(delta, z, bits, blocks); err != nil {
		t.Fatal(err)
	}
	st := s.PoolStats()
	if st.Dispensed != uint64(n) || st.Generated < st.Dispensed || st.Refills < 4 {
		t.Fatalf("pool stats: %+v", st)
	}
}

func TestParamSets(t *testing.T) {
	sets := ParamSets()
	if len(sets) != 5 {
		t.Fatalf("want 5 sets, got %d", len(sets))
	}
	if _, err := ParamsByName("2^21"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParamsByName("2^99"); err == nil {
		t.Fatal("expected error")
	}
}

func TestVerifyCOTsRejects(t *testing.T) {
	delta := Block{Lo: 1}
	z := []Block{{Lo: 5}}
	if err := VerifyCOTs(delta, z, []bool{false}, []Block{{Lo: 5}}); err != nil {
		t.Fatal(err)
	}
	if err := VerifyCOTs(delta, z, []bool{false}, []Block{{Lo: 6}}); err == nil {
		t.Fatal("corruption must fail")
	}
	if err := VerifyCOTs(delta, z, []bool{}, nil); err == nil {
		t.Fatal("length mismatch must fail")
	}
}

func TestBinaryAESOption(t *testing.T) {
	a, b := Pipe()
	delta, _ := RandomDelta()
	opts := Options{FourAryChaCha: false}
	s, r, err := NewDealtPair(a, b, delta, smallParams(), opts)
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan []Block, 1)
	go func() {
		z, err := s.COTs(100)
		if err != nil {
			t.Error(err)
		}
		ch <- z
	}()
	bits, blocks, err := r.COTs(100)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyCOTs(delta, <-ch, bits, blocks); err != nil {
		t.Fatal(err)
	}
}
