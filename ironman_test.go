package ironman

import (
	"testing"

	"ironman/internal/ferret"
	"ironman/internal/gmw"
)

func dealtPair(t testing.TB, params Params) (Conn, Conn, Block, *Sender, *Receiver) {
	t.Helper()
	a, b := Pipe()
	delta, err := RandomDelta()
	if err != nil {
		t.Fatal(err)
	}
	s, r, err := NewDealtPair(a, b, delta, params, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return a, b, delta, s, r
}

func smallParams() Params { return ferret.TestParams(600, 32, 128, 8) }

func TestCOTsAcrossIterations(t *testing.T) {
	_, _, delta, s, r := dealtPair(t, smallParams())
	// Draw more than one iteration's Usable() to force buffering.
	n := smallParams().Usable() + 100
	type sres struct {
		z   []Block
		err error
	}
	ch := make(chan sres, 1)
	go func() {
		z, err := s.COTs(n)
		ch <- sres{z, err}
	}()
	bits, blocks, err := r.COTs(n)
	if err != nil {
		t.Fatal(err)
	}
	sr := <-ch
	if sr.err != nil {
		t.Fatal(sr.err)
	}
	if err := VerifyCOTs(delta, sr.z, bits, blocks); err != nil {
		t.Fatal(err)
	}
	if s.Delta() != delta {
		t.Fatal("Delta accessor wrong")
	}
}

func TestRandomOTsConsistent(t *testing.T) {
	_, _, _, s, r := dealtPair(t, smallParams())
	const n = 64
	type sres struct {
		pairs [][2]Block
		err   error
	}
	ch := make(chan sres, 1)
	go func() {
		p, err := s.RandomOTs(n)
		ch <- sres{p, err}
	}()
	bits, keys, err := r.RandomOTs(n)
	if err != nil {
		t.Fatal(err)
	}
	sr := <-ch
	if sr.err != nil {
		t.Fatal(sr.err)
	}
	for i := 0; i < n; i++ {
		want := sr.pairs[i][0]
		if bits[i] {
			want = sr.pairs[i][1]
		}
		if keys[i] != want {
			t.Fatalf("random OT %d: key mismatch", i)
		}
		other := sr.pairs[i][1]
		if bits[i] {
			other = sr.pairs[i][0]
		}
		if keys[i] == other {
			t.Fatalf("random OT %d: both keys equal", i)
		}
	}
}

func TestChosenOTEndToEnd(t *testing.T) {
	connS, connR, _, s, r := dealtPair(t, smallParams())
	msgs := make([][2]Block, 16)
	choices := make([]bool, 16)
	for i := range msgs {
		msgs[i][0] = Block{Lo: uint64(i), Hi: 0}
		msgs[i][1] = Block{Lo: uint64(i), Hi: 1}
		choices[i] = i%3 == 0
	}
	errCh := make(chan error, 1)
	go func() { errCh <- s.SendChosen(connS, msgs) }()
	got, err := r.ReceiveChosen(connR, choices)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	for i := range got {
		want := msgs[i][0]
		if choices[i] {
			want = msgs[i][1]
		}
		if got[i] != want {
			t.Fatalf("chosen OT %d wrong", i)
		}
	}
}

func TestPrefetchOption(t *testing.T) {
	// With Prefetch > 0 both endpoints generate on background workers;
	// the draw API and the correlations are unchanged.
	a, b := Pipe()
	delta, err := RandomDelta()
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Prefetch = 2
	s, r, err := NewDealtPair(a, b, delta, smallParams(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	defer r.Close()
	defer a.Close()
	defer b.Close()
	// Draw well past the prefetch window (4 batches vs Prefetch 2),
	// sequentially: a dealt pair shares one lockstep generator, so a
	// one-sided draw can never wedge waiting for the peer's worker.
	n := 4 * smallParams().Usable()
	z, err := s.COTs(n)
	if err != nil {
		t.Fatal(err)
	}
	bits, blocks, err := r.COTs(n)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyCOTs(delta, z, bits, blocks); err != nil {
		t.Fatal(err)
	}
	st := s.PoolStats()
	if st.Dispensed != uint64(n) || st.Generated < st.Dispensed || st.Refills < 4 {
		t.Fatalf("pool stats: %+v", st)
	}
}

// TestChosenOTRejectsBusyConn: chosen-OT calls on the conn a prefetch
// worker is generating on must fail with ErrConnBusy instead of
// silently interleaving frames with the background iteration. A second
// conn stays usable, and synchronous endpoints (Prefetch == 0) accept
// their protocol conn as before.
func TestChosenOTRejectsBusyConn(t *testing.T) {
	a, b := Pipe()
	delta, err := RandomDelta()
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Prefetch = 2
	s, r, err := NewDealtPair(a, b, delta, smallParams(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	defer r.Close()
	defer a.Close()
	defer b.Close()
	if err := s.SendChosen(a, make([][2]Block, 1)); err != ErrConnBusy {
		t.Fatalf("SendChosen on busy conn: err = %v, want ErrConnBusy", err)
	}
	if _, err := r.ReceiveChosen(b, make([]bool, 1)); err != ErrConnBusy {
		t.Fatalf("ReceiveChosen on busy conn: err = %v, want ErrConnBusy", err)
	}
	// A dealt pair's lockstep generator owns BOTH pipe ends, so the
	// peer's conn is just as off-limits.
	if err := s.SendChosen(b, make([][2]Block, 1)); err != ErrConnBusy {
		t.Fatalf("SendChosen on peer conn: err = %v, want ErrConnBusy", err)
	}
	if _, err := r.ReceiveChosen(a, make([]bool, 1)); err != ErrConnBusy {
		t.Fatalf("ReceiveChosen on peer conn: err = %v, want ErrConnBusy", err)
	}
	// A dedicated conn pair carries the chosen-OT exchange fine while
	// prefetching continues on the protocol conns.
	appS, appR := Pipe()
	msgs := [][2]Block{{{Lo: 1}, {Lo: 2}}}
	errCh := make(chan error, 1)
	go func() { errCh <- s.SendChosen(appS, msgs) }()
	got, err := r.ReceiveChosen(appR, []bool{true})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if got[0] != msgs[0][1] {
		t.Fatal("chosen OT over dedicated conn wrong")
	}
}

// TestWorkersOptionEndToEnd: a Workers > 1 pair yields correlations
// that verify and convert exactly like the sequential path.
func TestWorkersOptionEndToEnd(t *testing.T) {
	a, b := Pipe()
	delta, err := RandomDelta()
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Workers = 4
	s, r, err := NewDealtPair(a, b, delta, smallParams(), opts)
	if err != nil {
		t.Fatal(err)
	}
	n := smallParams().Usable() + 50 // cross an iteration boundary
	type sres struct {
		z   []Block
		err error
	}
	ch := make(chan sres, 1)
	go func() {
		z, err := s.COTs(n)
		ch <- sres{z, err}
	}()
	bits, blocks, err := r.COTs(n)
	if err != nil {
		t.Fatal(err)
	}
	sr := <-ch
	if sr.err != nil {
		t.Fatal(sr.err)
	}
	if err := VerifyCOTs(delta, sr.z, bits, blocks); err != nil {
		t.Fatal(err)
	}
	// The sharded hash conversion must agree across the two parties.
	// The batch exceeds hashShardMin so the parallel.Shard branch (not
	// the small-batch inline loop) is what runs — and runs under -race.
	const otBatch = hashShardMin + 512
	pch := make(chan sres, 1)
	go func() {
		p, err := s.RandomOTs(otBatch)
		if err != nil {
			pch <- sres{nil, err}
			return
		}
		flat := make([]Block, 0, 2*otBatch)
		for _, pair := range p {
			flat = append(flat, pair[0], pair[1])
		}
		pch <- sres{flat, nil}
	}()
	rb, keys, err := r.RandomOTs(otBatch)
	if err != nil {
		t.Fatal(err)
	}
	pr := <-pch
	if pr.err != nil {
		t.Fatal(pr.err)
	}
	for i := 0; i < otBatch; i++ {
		want := pr.z[2*i]
		if rb[i] {
			want = pr.z[2*i+1]
		}
		if keys[i] != want {
			t.Fatalf("random OT %d: sharded hash mismatch", i)
		}
	}
}

func TestParamSets(t *testing.T) {
	sets := ParamSets()
	if len(sets) != 5 {
		t.Fatalf("want 5 sets, got %d", len(sets))
	}
	if _, err := ParamsByName("2^21"); err != nil {
		t.Fatal(err)
	}
	if _, err := ParamsByName("2^99"); err == nil {
		t.Fatal("expected error")
	}
}

func TestVerifyCOTsRejects(t *testing.T) {
	delta := Block{Lo: 1}
	z := []Block{{Lo: 5}}
	if err := VerifyCOTs(delta, z, []bool{false}, []Block{{Lo: 5}}); err != nil {
		t.Fatal(err)
	}
	if err := VerifyCOTs(delta, z, []bool{false}, []Block{{Lo: 6}}); err == nil {
		t.Fatal("corruption must fail")
	}
	if err := VerifyCOTs(delta, z, []bool{}, nil); err == nil {
		t.Fatal("length mismatch must fail")
	}
}

func TestBinaryAESOption(t *testing.T) {
	a, b := Pipe()
	delta, _ := RandomDelta()
	opts := Options{FourAryChaCha: false}
	s, r, err := NewDealtPair(a, b, delta, smallParams(), opts)
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan []Block, 1)
	go func() {
		z, err := s.COTs(100)
		if err != nil {
			t.Error(err)
		}
		ch <- z
	}()
	bits, blocks, err := r.COTs(100)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyCOTs(delta, <-ch, bits, blocks); err != nil {
		t.Fatal(err)
	}
}

// TestGMWOverPublicAPI runs a batched comparison through the exported
// GMW surface: two dealt endpoint pairs with swapped roles supply the
// two OT directions, and the whole 16-bit x 32-element compare takes a
// logarithmic number of OT flights.
func TestGMWOverPublicAPI(t *testing.T) {
	const elems, width = 32, 16
	budget := (3*width - 2) * elems
	_, _, _, s1, r1 := dealtPair(t, smallParams())
	_, _, _, s2, r2 := dealtPair(t, smallParams())
	drawPair := func(s *Sender, r *Receiver) (*GMWSenderPool, *GMWReceiverPool) {
		t.Helper()
		ch := make(chan *GMWSenderPool, 1)
		go func() {
			sp, err := s.GMWPool(budget)
			if err != nil {
				t.Error(err)
			}
			ch <- sp
		}()
		rp, err := r.GMWPool(budget)
		if err != nil {
			t.Fatal(err)
		}
		return <-ch, rp
	}
	out1, in1 := drawPair(s1, r1)
	out2, in2 := drawPair(s2, r2)

	xs := make([]uint64, elems)
	ys := make([]uint64, elems)
	for i := range xs {
		xs[i] = uint64(i * 977 % (1 << width))
		ys[i] = uint64((elems - i) * 1013 % (1 << width))
	}
	connA, connB := Pipe()
	var openA []bool
	done := make(chan error, 1)
	go func() {
		pa, err := NewGMWParty(connA, out1, in2, true)
		if err != nil {
			done <- err
			return
		}
		gt, err := pa.GreaterThanVec(pa.NewPrivateVec(xs, width, true), pa.NewPrivateVec(make([]uint64, elems), width, false))
		if err != nil {
			done <- err
			return
		}
		openA, err = pa.RevealPacked(gt)
		done <- err
	}()
	pb, err := NewGMWParty(connB, out2, in1, false)
	if err != nil {
		t.Fatal(err)
	}
	gt, err := pb.GreaterThanVec(pb.NewPrivateVec(make([]uint64, elems), width, false), pb.NewPrivateVec(ys, width, true))
	if err != nil {
		t.Fatal(err)
	}
	openB, err := pb.RevealPacked(gt)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		want := xs[i] > ys[i]
		if openA[i] != want || openB[i] != want {
			t.Fatalf("elem %d: gt(%d,%d) = %v/%v", i, xs[i], ys[i], openA[i], openB[i])
		}
	}
	// Round budget: handshake + 1+ceil(log2 w) AND exchanges + reveal,
	// two flights each at most.
	if flights := connA.Stats().Flights; flights > 2*(gmw.ComparatorExchanges(width)+2) {
		t.Fatalf("comparison took %d flights, want O(log w)", flights)
	}
}
