// Package ironman is the public API of this repository: a Go
// implementation of PCG-style correlated-OT extension (Ferret) with the
// Ironman paper's hardware-aware m-ary GGM optimization, plus the
// simulation stack that reproduces the paper's evaluation (MICRO'25:
// "Ironman: Accelerating Oblivious Transfer Extension for
// Privacy-Preserving AI with Near-Memory Processing").
//
// The two-party protocol runs over any transport.Conn; this package
// re-exports in-process pipes and TCP framing, wraps the Ferret
// endpoints with buffering so callers can draw any number of
// correlations, and converts COTs into random and chosen-message OTs
// through the correlation-robust hash.
//
// Security model: semi-honest adversaries, 128-bit computational
// security. See DESIGN.md for scope notes.
package ironman

import (
	"fmt"
	"net"

	"ironman/internal/aesprg"
	"ironman/internal/block"
	"ironman/internal/cot"
	"ironman/internal/ferret"
	"ironman/internal/prg"
	"ironman/internal/transport"
)

// Block is the 128-bit unit of all OT payloads.
type Block = block.Block

// Conn is the two-party message channel.
type Conn = transport.Conn

// Stats re-exports traffic accounting.
type Stats = transport.Stats

// Pipe returns two connected in-process endpoints.
func Pipe() (Conn, Conn) { return transport.Pipe() }

// NewTCPConn frames an established network connection.
func NewTCPConn(nc net.Conn) Conn { return transport.NewTCP(nc) }

// Params is a Table 4 parameter set name: "2^20" .. "2^24".
type Params = ferret.Params

// ParamSets lists the five Table 4 rows.
func ParamSets() []Params { return append([]Params(nil), ferret.Table4...) }

// ParamsByName resolves a set by name.
func ParamsByName(name string) (Params, error) { return ferret.ParamsByName(name) }

// Options tunes a protocol endpoint.
type Options struct {
	// FourAryChaCha selects the Ironman tree construction (default);
	// set to false for the classic binary AES construction.
	FourAryChaCha bool
	// Dealer skips the base-OT/IKNP initialization using local
	// randomness — NOT secure, for tests and benchmarks only, and only
	// valid with endpoints created through NewDealtPair.
	dealt bool
}

func (o Options) ferretOpts() ferret.Options {
	var fo ferret.Options
	if !o.FourAryChaCha {
		fo.PRG = prg.New(prg.AES, 2)
	}
	return fo
}

// DefaultOptions is the Ironman design point.
func DefaultOptions() Options { return Options{FourAryChaCha: true} }

// Sender produces correlations r0/r1 = r0 ⊕ Δ and converts them to OTs.
type Sender struct {
	f    *ferret.Sender
	h    *aesprg.Hash
	buf  []Block
	otct uint64
}

// Receiver holds choice bits and r_b blocks.
type Receiver struct {
	f       *ferret.Receiver
	h       *aesprg.Hash
	bufBits []bool
	bufBlks []Block
	otct    uint64
}

// NewSender initializes the sending endpoint (runs base OTs and IKNP
// over conn; the peer must run NewReceiver concurrently). delta is the
// global correlation; use RandomDelta for a fresh secret.
func NewSender(conn Conn, delta Block, params Params, opts Options) (*Sender, error) {
	f, err := ferret.NewSender(conn, delta, params, opts.ferretOpts())
	if err != nil {
		return nil, err
	}
	return &Sender{f: f, h: aesprg.NewHash()}, nil
}

// NewReceiver initializes the receiving endpoint.
func NewReceiver(conn Conn, params Params, opts Options) (*Receiver, error) {
	f, err := ferret.NewReceiver(conn, params, opts.ferretOpts())
	if err != nil {
		return nil, err
	}
	return &Receiver{f: f, h: aesprg.NewHash()}, nil
}

// NewDealtPair returns an initialized pair whose first correlations
// come from a local trusted dealer instead of base OTs. Useful for
// single-process examples and benchmarks of post-init behaviour.
func NewDealtPair(connS, connR Conn, delta Block, params Params, opts Options) (*Sender, *Receiver, error) {
	fs, fr, err := ferret.DealPools(connS, connR, delta, params, opts.ferretOpts())
	if err != nil {
		return nil, nil, err
	}
	return &Sender{f: fs, h: aesprg.NewHash()}, &Receiver{f: fr, h: aesprg.NewHash()}, nil
}

// RandomDelta samples a fresh global correlation.
func RandomDelta() (Block, error) {
	sp, _, err := cot.RandomPools(0)
	if err != nil {
		return Block{}, err
	}
	return sp.Delta, nil
}

// Delta returns the sender's global correlation.
func (s *Sender) Delta() Block { return s.f.Delta }

// COTs returns n correlations' r0 blocks (r1 = r0 ⊕ Δ implied),
// running protocol iterations with the peer as needed.
func (s *Sender) COTs(n int) ([]Block, error) {
	for len(s.buf) < n {
		z, err := s.f.Extend()
		if err != nil {
			return nil, err
		}
		s.buf = append(s.buf, z...)
	}
	out := s.buf[:n]
	s.buf = s.buf[n:]
	return out, nil
}

// COTs returns n correlations: choice bits and r_b blocks.
func (r *Receiver) COTs(n int) ([]bool, []Block, error) {
	for len(r.bufBits) < n {
		out, err := r.f.Extend()
		if err != nil {
			return nil, nil, err
		}
		r.bufBits = append(r.bufBits, out.Bits...)
		r.bufBlks = append(r.bufBlks, out.Blocks...)
	}
	bits, blks := r.bufBits[:n], r.bufBlks[:n]
	r.bufBits, r.bufBlks = r.bufBits[n:], r.bufBlks[n:]
	return bits, blks, nil
}

// RandomOTs converts n COTs into random OTs: the sender gets message
// pairs (H(r0), H(r1)); the matching Receiver.RandomOTs yields
// (choice, H(r_choice)). Figure 2's online conversion.
func (s *Sender) RandomOTs(n int) ([][2]Block, error) {
	r0, err := s.COTs(n)
	if err != nil {
		return nil, err
	}
	out := make([][2]Block, n)
	for i, r := range r0 {
		out[i][0] = s.h.Sum(r, s.otct)
		out[i][1] = s.h.Sum(r.Xor(s.f.Delta), s.otct)
		s.otct++
	}
	return out, nil
}

// RandomOTs is the receiver half of the conversion.
func (r *Receiver) RandomOTs(n int) ([]bool, []Block, error) {
	bits, blks, err := r.COTs(n)
	if err != nil {
		return nil, nil, err
	}
	out := make([]Block, n)
	for i, b := range blks {
		out[i] = r.h.Sum(b, r.otct)
		r.otct++
	}
	return bits, out, nil
}

// SendChosen runs chosen-message 1-of-2 OTs for the given pairs,
// consuming one fresh COT each (peer: ReceiveChosen).
func (s *Sender) SendChosen(conn Conn, msgs [][2]Block) error {
	pairs, err := s.RandomOTs(len(msgs))
	if err != nil {
		return err
	}
	// Beaver derandomization against the random OTs.
	ds, err := transport.RecvBits(conn, len(msgs))
	if err != nil {
		return err
	}
	cts := make([]Block, 2*len(msgs))
	for i := range msgs {
		p0, p1 := pairs[i][0], pairs[i][1]
		if ds[i] {
			p0, p1 = p1, p0
		}
		cts[2*i] = msgs[i][0].Xor(p0)
		cts[2*i+1] = msgs[i][1].Xor(p1)
	}
	return transport.SendBlocks(conn, cts)
}

// ReceiveChosen selects one message per pair.
func (r *Receiver) ReceiveChosen(conn Conn, choices []bool) ([]Block, error) {
	bits, keys, err := r.RandomOTs(len(choices))
	if err != nil {
		return nil, err
	}
	ds := make([]bool, len(choices))
	for i := range ds {
		ds[i] = choices[i] != bits[i]
	}
	if err := transport.SendBits(conn, ds); err != nil {
		return nil, err
	}
	cts, err := transport.RecvBlocks(conn, 2*len(choices))
	if err != nil {
		return nil, err
	}
	out := make([]Block, len(choices))
	for i := range out {
		ct := cts[2*i]
		if choices[i] {
			ct = cts[2*i+1]
		}
		out[i] = ct.Xor(keys[i])
	}
	return out, nil
}

// VerifyCOTs checks z = y ⊕ x·Δ for a batch (test/diagnostic helper —
// in a deployment the receiver never sees Δ).
func VerifyCOTs(delta Block, z []Block, bits []bool, y []Block) error {
	if len(z) != len(bits) || len(z) != len(y) {
		return fmt.Errorf("ironman: length mismatch")
	}
	return ferret.Check(delta, z, &ferret.ReceiverOutput{Bits: bits, Blocks: y})
}
