// Package ironman is the public API of this repository: a Go
// implementation of PCG-style correlated-OT extension (Ferret) with the
// Ironman paper's hardware-aware m-ary GGM optimization, plus the
// simulation stack that reproduces the paper's evaluation (MICRO'25:
// "Ironman: Accelerating Oblivious Transfer Extension for
// Privacy-Preserving AI with Near-Memory Processing").
//
// The two-party protocol runs over any transport.Conn; this package
// re-exports in-process pipes and TCP framing, wraps the Ferret
// endpoints with buffering so callers can draw any number of
// correlations, and converts COTs into random and chosen-message OTs
// through the correlation-robust hash.
//
// Security model: semi-honest adversaries, 128-bit computational
// security. See DESIGN.md for scope notes.
package ironman

import (
	"fmt"
	"net"
	"time"

	"ironman/internal/aesprg"
	"ironman/internal/arith"
	"ironman/internal/block"
	"ironman/internal/cot"
	"ironman/internal/ferret"
	"ironman/internal/gmw"
	"ironman/internal/pool"
	"ironman/internal/prg"
	"ironman/internal/transport"
)

// Block is the 128-bit unit of all OT payloads.
type Block = block.Block

// Conn is the two-party message channel.
type Conn = transport.Conn

// Stats re-exports traffic accounting.
type Stats = transport.Stats

// Pipe returns two connected in-process endpoints.
func Pipe() (Conn, Conn) { return transport.Pipe() }

// NewTCPConn frames an established network connection.
func NewTCPConn(nc net.Conn) Conn { return transport.NewTCP(nc) }

// Params is a Table 4 parameter set name: "2^20" .. "2^24".
type Params = ferret.Params

// ParamSets lists the five Table 4 rows.
func ParamSets() []Params { return append([]Params(nil), ferret.Table4...) }

// ParamsByName resolves a set by name.
func ParamsByName(name string) (Params, error) { return ferret.ParamsByName(name) }

// Options tunes a protocol endpoint.
type Options struct {
	// FourAryChaCha selects the Ironman tree construction (default);
	// set to false for the classic binary AES construction.
	FourAryChaCha bool
	// Prefetch is the number of Extend batches a background worker
	// keeps generated ahead of demand (see internal/pool). 0 — the
	// default — draws synchronously on the calling goroutine.
	//
	// With Prefetch > 0 protocol iterations run on a background
	// goroutine, so the conn must be dedicated to correlation
	// generation: do not run SendChosen/ReceiveChosen on the same conn
	// while the endpoint is open. Endpoints from NewDealtPair share
	// one lockstep generator, so any draw pattern is safe. Network
	// endpoints (NewSender/NewReceiver) prefetch independently: give
	// both peers the same Prefetch, and note that a single draw larger
	// than the prefetched window still needs the peer drawing
	// concurrently — exactly like the synchronous path, one side alone
	// cannot run the interactive protocol. To shut down, close the
	// conn first (interrupting any in-flight background iteration) and
	// then call Close.
	Prefetch int
	// LowWater overrides the refill trigger (in correlations) when
	// Prefetch > 0; 0 selects half the prefetched total.
	LowWater int
	// MaxBuffered caps how many correlations a dealt pair's undrawn
	// half may retain before one-sided draws fail with ErrRetained
	// (correlations are pairwise, so the lagging half keeps every
	// batch until drawn). 0 selects Prefetch+8 batches; negative
	// disables the cap. Only meaningful for NewDealtPair endpoints
	// with Prefetch > 0.
	MaxBuffered int
	// Dealer skips the base-OT/IKNP initialization using local
	// randomness — NOT secure, for tests and benchmarks only, and only
	// valid with endpoints created through NewDealtPair.
	dealt bool
}

func (o Options) ferretOpts() ferret.Options {
	var fo ferret.Options
	if !o.FourAryChaCha {
		fo.PRG = prg.New(prg.AES, 2)
	}
	return fo
}

func (o Options) poolCfg() pool.Config {
	return pool.Config{Depth: o.Prefetch, LowWater: o.LowWater, MaxBuffered: o.MaxBuffered}
}

// ErrRetained is returned by a dealt-pair draw whose paired half has
// hit Options.MaxBuffered: generating more would grow the undrawn
// half without bound. Drain the other endpoint or raise the cap.
var ErrRetained = pool.ErrRetained

// DefaultOptions is the Ironman design point.
func DefaultOptions() Options { return Options{FourAryChaCha: true} }

// PoolStats mirrors internal/pool.Stats for one endpoint's correlation
// buffer: how many correlations the protocol generated and dispensed,
// how many Extend refills ran, and how long draws spent blocked on
// generation.
type PoolStats struct {
	Generated    uint64
	Dispensed    uint64
	Refills      uint64
	Draws        uint64
	BlockedDraws uint64
	BlockedTime  time.Duration
	Buffered     int
}

func poolStats(s pool.Stats) PoolStats {
	return PoolStats{
		Generated:    s.Generated,
		Dispensed:    s.Dispensed,
		Refills:      s.Refills,
		Draws:        s.Draws,
		BlockedDraws: s.BlockedDraws,
		BlockedTime:  s.BlockedTime,
		Buffered:     s.Buffered,
	}
}

// senderDrawer is the sender half's buffer: a standalone pool.Sender
// for network endpoints, or one half of a shared lockstep pool.Dealt
// for dealt pairs.
type senderDrawer interface {
	COTs(n int) ([]Block, error)
	Stats() pool.Stats
	Close() error
}

type receiverDrawer interface {
	COTs(n int) ([]bool, []Block, error)
	Stats() pool.Stats
	Close() error
}

// dealtSenderHalf / dealtReceiverHalf adapt a shared pool.Dealt to the
// drawer interfaces. Close on either half closes the shared pool
// (idempotent).
type dealtSenderHalf struct{ d *pool.Dealt }

func (h dealtSenderHalf) COTs(n int) ([]Block, error) { return h.d.SenderCOTs(n) }
func (h dealtSenderHalf) Stats() pool.Stats           { s, _ := h.d.Stats(); return s }
func (h dealtSenderHalf) Close() error                { return h.d.Close() }

type dealtReceiverHalf struct{ d *pool.Dealt }

func (h dealtReceiverHalf) COTs(n int) ([]bool, []Block, error) { return h.d.ReceiverCOTs(n) }
func (h dealtReceiverHalf) Stats() pool.Stats                   { _, r := h.d.Stats(); return r }
func (h dealtReceiverHalf) Close() error                        { return h.d.Close() }

// Sender produces correlations r0/r1 = r0 ⊕ Δ and converts them to OTs.
type Sender struct {
	f    *ferret.Sender
	p    senderDrawer
	h    *aesprg.Hash
	otct uint64
}

// Receiver holds choice bits and r_b blocks.
type Receiver struct {
	f    *ferret.Receiver
	p    receiverDrawer
	h    *aesprg.Hash
	otct uint64
}

func newSender(f *ferret.Sender, opts Options) *Sender {
	return &Sender{f: f, p: pool.NewSender(f.Extend, opts.poolCfg()), h: aesprg.NewHash()}
}

func newReceiver(f *ferret.Receiver, opts Options) *Receiver {
	src := func() ([]bool, []Block, error) {
		out, err := f.Extend()
		if err != nil {
			return nil, nil, err
		}
		return out.Bits, out.Blocks, nil
	}
	return &Receiver{f: f, p: pool.NewReceiver(src, opts.poolCfg()), h: aesprg.NewHash()}
}

// NewSender initializes the sending endpoint (runs base OTs and IKNP
// over conn; the peer must run NewReceiver concurrently). delta is the
// global correlation; use RandomDelta for a fresh secret.
func NewSender(conn Conn, delta Block, params Params, opts Options) (*Sender, error) {
	f, err := ferret.NewSender(conn, delta, params, opts.ferretOpts())
	if err != nil {
		return nil, err
	}
	return newSender(f, opts), nil
}

// NewReceiver initializes the receiving endpoint.
func NewReceiver(conn Conn, params Params, opts Options) (*Receiver, error) {
	f, err := ferret.NewReceiver(conn, params, opts.ferretOpts())
	if err != nil {
		return nil, err
	}
	return newReceiver(f, opts), nil
}

// lockstepSource adapts ferret.ExtendLockstep to the pool.Dealt
// source shape.
func lockstepSource(fs *ferret.Sender, fr *ferret.Receiver) pool.DealtSource {
	return func() ([]Block, []bool, []Block, error) {
		z, out, err := ferret.ExtendLockstep(fs, fr)
		if err != nil {
			return nil, nil, nil, err
		}
		return z, out.Bits, out.Blocks, nil
	}
}

// NewDealtPair returns an initialized pair whose first correlations
// come from a local trusted dealer instead of base OTs. Useful for
// single-process examples and benchmarks of post-init behaviour.
//
// With Options.Prefetch > 0 the pair shares a single lockstep
// generator (pool.Dealt): draws in any order are deadlock-free, and a
// one-sided draw is bounded only by Options.MaxBuffered (the undrawn
// half retains every generated batch; past the cap the draw fails
// with ErrRetained instead of exhausting memory). Because the
// generator is shared, Close on either endpoint stops prefetching for
// both.
func NewDealtPair(connS, connR Conn, delta Block, params Params, opts Options) (*Sender, *Receiver, error) {
	fs, fr, err := ferret.DealPools(connS, connR, delta, params, opts.ferretOpts())
	if err != nil {
		return nil, nil, err
	}
	if opts.Prefetch > 0 {
		d := pool.NewDealt(lockstepSource(fs, fr), opts.poolCfg())
		s := &Sender{f: fs, p: dealtSenderHalf{d}, h: aesprg.NewHash()}
		r := &Receiver{f: fr, p: dealtReceiverHalf{d}, h: aesprg.NewHash()}
		return s, r, nil
	}
	return newSender(fs, opts), newReceiver(fr, opts), nil
}

// RandomDelta samples a fresh global correlation.
func RandomDelta() (Block, error) {
	sp, _, err := cot.RandomPools(0)
	if err != nil {
		return Block{}, err
	}
	return sp.Delta, nil
}

// Delta returns the sender's global correlation.
func (s *Sender) Delta() Block { return s.f.Delta }

// COTs returns n correlations' r0 blocks (r1 = r0 ⊕ Δ implied),
// running protocol iterations with the peer as needed. With
// Options.Prefetch > 0 iterations run ahead of demand on a background
// worker and warm draws return without touching the network.
func (s *Sender) COTs(n int) ([]Block, error) { return s.p.COTs(n) }

// PoolStats reports the endpoint's correlation-pool counters.
func (s *Sender) PoolStats() PoolStats { return poolStats(s.p.Stats()) }

// Close stops the endpoint's prefetch worker (a no-op for synchronous
// endpoints). Dealt-pair endpoints share their generator, so closing
// either endpoint stops draws on both — close only when the pair is
// done. It does not close the conn; for network endpoints close the
// conn FIRST when a background iteration may be in flight, or Close
// waits for an iteration the stopped peer will never answer.
func (s *Sender) Close() error { return s.p.Close() }

// COTs returns n correlations: choice bits and r_b blocks.
func (r *Receiver) COTs(n int) ([]bool, []Block, error) { return r.p.COTs(n) }

// PoolStats reports the endpoint's correlation-pool counters.
func (r *Receiver) PoolStats() PoolStats { return poolStats(r.p.Stats()) }

// Close stops the endpoint's prefetch worker (a no-op for synchronous
// endpoints); the same shared-generator and conn-first caveats as
// Sender.Close apply.
func (r *Receiver) Close() error { return r.p.Close() }

// RandomOTs converts n COTs into random OTs: the sender gets message
// pairs (H(r0), H(r1)); the matching Receiver.RandomOTs yields
// (choice, H(r_choice)). Figure 2's online conversion.
func (s *Sender) RandomOTs(n int) ([][2]Block, error) {
	r0, err := s.COTs(n)
	if err != nil {
		return nil, err
	}
	out := make([][2]Block, n)
	for i, r := range r0 {
		out[i][0] = s.h.Sum(r, s.otct)
		out[i][1] = s.h.Sum(r.Xor(s.f.Delta), s.otct)
		s.otct++
	}
	return out, nil
}

// RandomOTs is the receiver half of the conversion.
func (r *Receiver) RandomOTs(n int) ([]bool, []Block, error) {
	bits, blks, err := r.COTs(n)
	if err != nil {
		return nil, nil, err
	}
	out := make([]Block, n)
	for i, b := range blks {
		out[i] = r.h.Sum(b, r.otct)
		r.otct++
	}
	return bits, out, nil
}

// SendChosen runs chosen-message 1-of-2 OTs for the given pairs,
// consuming one fresh COT each (peer: ReceiveChosen).
func (s *Sender) SendChosen(conn Conn, msgs [][2]Block) error {
	pairs, err := s.RandomOTs(len(msgs))
	if err != nil {
		return err
	}
	// Beaver derandomization against the random OTs.
	ds, err := transport.RecvBits(conn, len(msgs))
	if err != nil {
		return err
	}
	cts := make([]Block, 2*len(msgs))
	for i := range msgs {
		p0, p1 := pairs[i][0], pairs[i][1]
		if ds[i] {
			p0, p1 = p1, p0
		}
		cts[2*i] = msgs[i][0].Xor(p0)
		cts[2*i+1] = msgs[i][1].Xor(p1)
	}
	return transport.SendBlocks(conn, cts)
}

// ReceiveChosen selects one message per pair.
func (r *Receiver) ReceiveChosen(conn Conn, choices []bool) ([]Block, error) {
	bits, keys, err := r.RandomOTs(len(choices))
	if err != nil {
		return nil, err
	}
	ds := make([]bool, len(choices))
	for i := range ds {
		ds[i] = choices[i] != bits[i]
	}
	if err := transport.SendBits(conn, ds); err != nil {
		return nil, err
	}
	cts, err := transport.RecvBlocks(conn, 2*len(choices))
	if err != nil {
		return nil, err
	}
	out := make([]Block, len(choices))
	for i := range out {
		ct := cts[2*i]
		if choices[i] {
			ct = cts[2*i+1]
		}
		out[i] = ct.Xor(keys[i])
	}
	return out, nil
}

// GMW engine re-exports: the bitsliced two-party Boolean engine layered
// on chosen OTs (internal/gmw; see the GMW section of DESIGN.md for the
// round model and the level-batching contract). A GMWParty needs a
// correlation pool per OT direction, so a two-party deployment runs two
// endpoint pairs with swapped roles — the paper's §5.2 role-switching
// scenario.
type (
	// GMWParty is one side of a GMW evaluation.
	GMWParty = gmw.Party
	// GMWShare is the legacy bool-vector share layout.
	GMWShare = gmw.Share
	// GMWPacked is the word-packed (bitsliced) share layout.
	GMWPacked = gmw.PackedShare
	// GMWSenderPool / GMWReceiverPool hold materialized correlations
	// for one OT direction of a GMW party.
	GMWSenderPool   = cot.SenderPool
	GMWReceiverPool = cot.ReceiverPool
)

// ErrRoleConflict is returned by NewGMWParty when both parties claim
// (or both disclaim) the initiator role.
var ErrRoleConflict = gmw.ErrRoleConflict

// NewGMWParty assembles a GMW party from one pool per OT direction and
// runs the role handshake over conn (the peer must call it
// concurrently with the opposite first flag). Draw the pools with
// Sender.GMWPool / Receiver.GMWPool.
func NewGMWParty(conn Conn, out *GMWSenderPool, in *GMWReceiverPool, first bool) (*GMWParty, error) {
	return gmw.NewParty(conn, out, in, first)
}

// GMWPool materializes n correlations from this endpoint into a pool
// the GMW engine can consume (this party as OT sender).
func (s *Sender) GMWPool(n int) (*GMWSenderPool, error) {
	r0, err := s.COTs(n)
	if err != nil {
		return nil, err
	}
	return cot.NewSenderPool(s.f.Delta, r0), nil
}

// GMWPool materializes n correlations from this endpoint into a pool
// the GMW engine can consume (this party as OT receiver).
func (r *Receiver) GMWPool(n int) (*GMWReceiverPool, error) {
	bits, blocks, err := r.COTs(n)
	if err != nil {
		return nil, err
	}
	return cot.NewReceiverPool(bits, blocks)
}

// Arithmetic engine re-exports: additive secret sharing over Z_2^64
// with COT-backed Beaver triples and A2B/B2A bridges into the GMW
// engine (internal/arith; see the arith section of DESIGN.md). An
// ArithParty consumes the same two-directional pools as a GMWParty —
// in fact it embeds one (the Bool field) on the same conn, so one
// session mixes linear algebra and Boolean nonlinearities.
type (
	// ArithParty is one side of an arithmetic evaluation.
	ArithParty = arith.Party
	// ArithShare is an additively-shared vector over Z_2^64.
	ArithShare = arith.Share
	// ArithTriples is a batch of Beaver triples consumed by MulVec.
	ArithTriples = arith.Triples
	// ArithMatTriple is a Beaver matrix triple consumed by MatMul.
	ArithMatTriple = arith.MatTriple
	// FixedPoint is the two's-complement fixed-point encoding used by
	// the arithmetic layer's ML-shaped workloads.
	FixedPoint = arith.Fixed
)

// NewArithParty assembles an arithmetic party from one pool per OT
// direction and runs the role handshake over conn (the peer must call
// it concurrently with the opposite first flag). Draw the pools with
// Sender.GMWPool / Receiver.GMWPool — arithmetic word OTs and GMW bit
// OTs share the same correlations.
func NewArithParty(conn Conn, out *GMWSenderPool, in *GMWReceiverPool, first bool) (*ArithParty, error) {
	return arith.NewParty(conn, out, in, first)
}

// VerifyCOTs checks z = y ⊕ x·Δ for a batch (test/diagnostic helper —
// in a deployment the receiver never sees Δ).
func VerifyCOTs(delta Block, z []Block, bits []bool, y []Block) error {
	if len(z) != len(bits) || len(z) != len(y) {
		return fmt.Errorf("ironman: length mismatch")
	}
	return ferret.Check(delta, z, &ferret.ReceiverOutput{Bits: bits, Blocks: y})
}
