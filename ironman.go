// Package ironman is the public API of this repository: a Go
// implementation of PCG-style correlated-OT extension (Ferret) with the
// Ironman paper's hardware-aware m-ary GGM optimization, plus the
// simulation stack that reproduces the paper's evaluation (MICRO'25:
// "Ironman: Accelerating Oblivious Transfer Extension for
// Privacy-Preserving AI with Near-Memory Processing").
//
// The two-party protocol runs over any transport.Conn; this package
// re-exports in-process pipes and TCP framing, wraps the Ferret
// endpoints with buffering so callers can draw any number of
// correlations, and converts COTs into random and chosen-message OTs
// through the correlation-robust hash.
//
// Security model: semi-honest adversaries, 128-bit computational
// security. See DESIGN.md for scope notes.
package ironman

import (
	"errors"
	"fmt"
	"io"
	"net"
	"reflect"
	"sync/atomic"
	"time"

	"ironman/internal/aesprg"
	"ironman/internal/arith"
	"ironman/internal/block"
	"ironman/internal/circuit"
	"ironman/internal/cot"
	"ironman/internal/extension"
	"ironman/internal/ferret"
	"ironman/internal/gmw"
	"ironman/internal/obs"
	"ironman/internal/parallel"
	"ironman/internal/pool"
	"ironman/internal/transport"
)

// Block is the 128-bit unit of all OT payloads.
type Block = block.Block

// Conn is the two-party message channel.
type Conn = transport.Conn

// Stats re-exports traffic accounting.
type Stats = transport.Stats

// Pipe returns two connected in-process endpoints.
func Pipe() (Conn, Conn) { return transport.Pipe() }

// Tracer re-exports the phase-trace recorder (internal/obs) so callers
// outside the module can drive Options.Trace.
type Tracer = obs.Tracer

// NewTracer returns an enabled trace recorder; hand it to
// Options.Trace on any number of endpoints (thread ids keep the two
// protocol roles apart) and serialize with Tracer.WriteFile.
func NewTracer() *Tracer { return obs.NewTracer() }

// NewTCPConn frames an established network connection.
func NewTCPConn(nc net.Conn) Conn { return transport.NewTCP(nc) }

// Params is a Table 4 parameter set name: "2^20" .. "2^24".
type Params = ferret.Params

// ParamSets lists the five Table 4 rows.
func ParamSets() []Params { return append([]Params(nil), ferret.Table4...) }

// ParamsByName resolves a set by name.
func ParamsByName(name string) (Params, error) { return ferret.ParamsByName(name) }

// Options tunes a protocol endpoint.
type Options struct {
	// Backend selects the OT-extension protocol family by name:
	// "ferret" (PCG-style LPN, the paper's design point and the
	// default) or "softspoken" (small-field subfield-VOLE, one message
	// flight per batch). "" selects the default. Both peers must pick
	// the same backend; see the "Extension backends" section of
	// DESIGN.md for the trade-offs and internal/extension for the
	// contract.
	Backend string
	// FourAryChaCha selects the Ironman tree construction (default);
	// set to false for the classic binary AES construction (on the
	// softspoken backend trees are always binary AES and this is
	// ignored).
	FourAryChaCha bool
	// Workers caps the goroutines the Extend hot path's local phases
	// use — the rank-parallel LPN encode, concurrent GGM tree
	// expansion, and the batched correlation-robust hash of the
	// OT-conversion helpers. 0 — the default — selects
	// runtime.GOMAXPROCS; 1 is the strictly sequential path. The wire
	// transcript is byte-identical for every value, so the two peers
	// may use different worker counts.
	Workers int
	// Prefetch is the number of Extend batches a background worker
	// keeps generated ahead of demand (see internal/pool). 0 — the
	// default — draws synchronously on the calling goroutine.
	//
	// With Prefetch > 0 protocol iterations run on a background
	// goroutine, so the conn must be dedicated to correlation
	// generation: SendChosen/ReceiveChosen on the same conn while the
	// endpoint is open would interleave frames with an in-flight
	// iteration, and are rejected with ErrConnBusy (use a second conn
	// for the chosen-OT exchange). Endpoints from NewDealtPair share
	// one lockstep generator, so any draw pattern is safe. Network
	// endpoints (NewSender/NewReceiver) prefetch independently: give
	// both peers the same Prefetch, and note that a single draw larger
	// than the prefetched window still needs the peer drawing
	// concurrently — exactly like the synchronous path, one side alone
	// cannot run the interactive protocol. To shut down, close the
	// conn first (interrupting any in-flight background iteration) and
	// then call Close.
	Prefetch int
	// LowWater overrides the refill trigger (in correlations) when
	// Prefetch > 0; 0 selects half the prefetched total.
	LowWater int
	// MaxBuffered caps how many correlations a dealt pair's undrawn
	// half may retain before one-sided draws fail with ErrRetained
	// (correlations are pairwise, so the lagging half keeps every
	// batch until drawn). 0 selects Prefetch+8 batches; negative
	// disables the cap. Only meaningful for NewDealtPair endpoints
	// with Prefetch > 0.
	MaxBuffered int
	// Trace, when non-nil, records the Extend phase timeline (GGM
	// expansion, puncture flights, LPN encode) plus the conversion
	// hash ("crhf.hash") of this endpoint into a Chrome trace-event
	// document (internal/obs; write it with Tracer.WriteFile and open
	// in chrome://tracing or Perfetto). Tracing never touches the wire
	// transcript; nil — the default — compiles down to a nil check on
	// the hot paths.
	Trace *obs.Tracer
	// Seed, when non-zero, derives every endpoint-local random draw
	// from deterministic streams — NOT secure; the backend-parity and
	// determinism tests and the benchmark harness use it to make a
	// dealt run a pure function of (delta, params, options).
	Seed Block
}

func (o Options) extOpts() extension.Options {
	return extension.Options{
		Workers: o.Workers, Trace: o.Trace, Seed: o.Seed,
		BinaryAES: !o.FourAryChaCha,
	}
}

// backend resolves Options.Backend against the registry.
func (o Options) backend() (extension.Backend, error) {
	return extension.ByName(o.Backend)
}

func (o Options) poolCfg() pool.Config {
	return pool.Config{Depth: o.Prefetch, LowWater: o.LowWater, MaxBuffered: o.MaxBuffered}
}

// ErrRetained is returned by a dealt-pair draw whose paired half has
// hit Options.MaxBuffered: generating more would grow the undrawn
// half without bound. Drain the other endpoint or raise the cap.
var ErrRetained = pool.ErrRetained

// DefaultOptions is the Ironman design point.
func DefaultOptions() Options { return Options{FourAryChaCha: true} }

// PoolStats mirrors internal/pool.Stats for one endpoint's correlation
// buffer: how many correlations the protocol generated and dispensed,
// how many Extend refills ran, and how long draws spent blocked on
// generation.
type PoolStats struct {
	Generated    uint64
	Dispensed    uint64
	Refills      uint64
	Draws        uint64
	BlockedDraws uint64
	BlockedTime  time.Duration
	Buffered     int
}

func poolStats(s pool.Stats) PoolStats {
	return PoolStats{
		Generated:    s.Generated,
		Dispensed:    s.Dispensed,
		Refills:      s.Refills,
		Draws:        s.Draws,
		BlockedDraws: s.BlockedDraws,
		BlockedTime:  s.BlockedTime,
		Buffered:     s.Buffered,
	}
}

// Sender produces correlations r0/r1 = r0 ⊕ Δ and converts them to OTs.
// Its buffer is any pool.SenderSource: a standalone prefetching pool
// for network endpoints, or one half of a shared lockstep pool.Dealt
// for dealt pairs.
type Sender struct {
	ext  extension.Sender
	p    pool.SenderSource
	h    *aesprg.Hash
	otct uint64
	// conn is the endpoint's protocol conn; busy marks it off-limits to
	// chosen-OT calls while a prefetch worker puts traffic on it
	// (atomic: Close clears it concurrently with chosen-OT calls).
	// peerConn is additionally set on dealt-pair endpoints, whose
	// shared lockstep generator owns BOTH pipe ends — the pair then
	// shares one busy flag, since closing either half stops the
	// generator for both.
	conn     Conn
	peerConn Conn
	busy     *atomic.Bool
	workers  int
	trace    *obs.Tracer
}

// Receiver holds choice bits and r_b blocks.
type Receiver struct {
	ext      extension.Receiver
	p        pool.ReceiverSource
	h        *aesprg.Hash
	otct     uint64
	conn     Conn
	peerConn Conn
	busy     *atomic.Bool
	workers  int
	trace    *obs.Tracer
}

func newSender(ext extension.Sender, conn Conn, opts Options) *Sender {
	s := &Sender{
		ext: ext, p: pool.NewSender(ext.Extend, opts.poolCfg()), h: aesprg.NewHash(),
		conn: conn, busy: new(atomic.Bool), workers: opts.Workers, trace: opts.Trace,
	}
	s.busy.Store(opts.Prefetch > 0)
	return s
}

func newReceiver(ext extension.Receiver, conn Conn, opts Options) *Receiver {
	r := &Receiver{
		ext: ext, p: pool.NewReceiver(ext.Extend, opts.poolCfg()), h: aesprg.NewHash(),
		conn: conn, busy: new(atomic.Bool), workers: opts.Workers, trace: opts.Trace,
	}
	r.busy.Store(opts.Prefetch > 0)
	return r
}

// NewSender initializes the sending endpoint (runs the selected
// backend's setup — base OTs plus its extension bootstrap — over conn;
// the peer must run NewReceiver concurrently with the same
// Options.Backend). delta is the global correlation; use RandomDelta
// for a fresh secret.
func NewSender(conn Conn, delta Block, params Params, opts Options) (*Sender, error) {
	b, err := opts.backend()
	if err != nil {
		return nil, err
	}
	ext, err := b.NewSender(conn, delta, params, opts.extOpts())
	if err != nil {
		return nil, err
	}
	return newSender(ext, conn, opts), nil
}

// NewReceiver initializes the receiving endpoint.
func NewReceiver(conn Conn, params Params, opts Options) (*Receiver, error) {
	b, err := opts.backend()
	if err != nil {
		return nil, err
	}
	ext, err := b.NewReceiver(conn, params, opts.extOpts())
	if err != nil {
		return nil, err
	}
	return newReceiver(ext, conn, opts), nil
}

// lockstepSource adapts extension.ExtendLockstep to the pool.Dealt
// refill shape.
func lockstepSource(es extension.Sender, er extension.Receiver) pool.DealtRefill {
	return func() ([]Block, []bool, []Block, error) {
		return extension.ExtendLockstep(es, er)
	}
}

// NewDealtPair returns an initialized pair whose first correlations
// come from a local trusted dealer instead of base OTs. Useful for
// single-process examples and benchmarks of post-init behaviour.
//
// With Options.Prefetch > 0 the pair shares a single lockstep
// generator (pool.Dealt): draws in any order are deadlock-free, and a
// one-sided draw is bounded only by Options.MaxBuffered (the undrawn
// half retains every generated batch; past the cap the draw fails
// with ErrRetained instead of exhausting memory). Because the
// generator is shared, Close on either endpoint stops prefetching for
// both.
func NewDealtPair(connS, connR Conn, delta Block, params Params, opts Options) (*Sender, *Receiver, error) {
	b, err := opts.backend()
	if err != nil {
		return nil, nil, err
	}
	es, er, err := b.DealPair(connS, connR, delta, params, opts.extOpts())
	if err != nil {
		return nil, nil, err
	}
	if opts.Prefetch > 0 {
		d := pool.NewDealt(lockstepSource(es, er), opts.poolCfg())
		// One flag for the pair: closing either half stops the shared
		// generator, so both conns become idle together.
		busy := new(atomic.Bool)
		busy.Store(true)
		s := &Sender{ext: es, p: d.SenderHalf(), h: aesprg.NewHash(),
			conn: connS, peerConn: connR, busy: busy, workers: opts.Workers, trace: opts.Trace}
		r := &Receiver{ext: er, p: d.ReceiverHalf(), h: aesprg.NewHash(),
			conn: connR, peerConn: connS, busy: busy, workers: opts.Workers, trace: opts.Trace}
		return s, r, nil
	}
	return newSender(es, connS, opts), newReceiver(er, connR, opts), nil
}

// RandomDelta samples a fresh global correlation.
func RandomDelta() (Block, error) {
	sp, _, err := cot.RandomPools(0)
	if err != nil {
		return Block{}, err
	}
	return sp.Delta, nil
}

// Delta returns the sender's global correlation.
func (s *Sender) Delta() Block { return s.ext.Delta() }

// COTs returns n correlations' r0 blocks (r1 = r0 ⊕ Δ implied),
// running protocol iterations with the peer as needed. With
// Options.Prefetch > 0 iterations run ahead of demand on a background
// worker and warm draws return without touching the network.
func (s *Sender) COTs(n int) ([]Block, error) { return s.p.COTs(n) }

// PoolStats reports the endpoint's correlation-pool counters.
func (s *Sender) PoolStats() PoolStats { return poolStats(s.p.Stats()) }

// Close stops the endpoint's prefetch worker (a no-op for synchronous
// endpoints). Dealt-pair endpoints share their generator, so closing
// either endpoint stops draws on both — close only when the pair is
// done. It does not close the conn; for network endpoints close the
// conn FIRST when a background iteration may be in flight, or Close
// waits for an iteration the stopped peer will never answer.
func (s *Sender) Close() error {
	err := s.p.Close()
	// The worker is gone; the protocol conn is no longer off-limits
	// (chosen-OT calls now fail with the pool's closed error instead
	// of a stale ErrConnBusy).
	s.busy.Store(false)
	return err
}

// COTs returns n correlations: choice bits and r_b blocks.
func (r *Receiver) COTs(n int) ([]bool, []Block, error) { return r.p.COTs(n) }

// PoolStats reports the endpoint's correlation-pool counters.
func (r *Receiver) PoolStats() PoolStats { return poolStats(r.p.Stats()) }

// Close stops the endpoint's prefetch worker (a no-op for synchronous
// endpoints); the same shared-generator and conn-first caveats as
// Sender.Close apply.
func (r *Receiver) Close() error {
	err := r.p.Close()
	r.busy.Store(false)
	return err
}

// ErrConnBusy is returned by chosen-OT calls handed the conn of an
// endpoint whose prefetch worker is generating correlations on it: a
// background Extend iteration would interleave its frames with the
// chosen-OT exchange and corrupt both streams. Run chosen OTs on a
// second conn (or open the endpoint with Prefetch == 0). The guard
// compares conn identity, so it cannot see through wrappers — handing
// it the busy conn inside an adapter still corrupts the stream.
var ErrConnBusy = errors.New("ironman: conn carries background prefetch traffic; use a dedicated conn for chosen OTs")

// sameConn reports whether two Conn interface values are the same
// endpoint, without panicking when a caller-supplied adapter has an
// uncomparable dynamic type (such a value can never be one of this
// package's own conns, which are all pointers).
func sameConn(a, b Conn) bool {
	if t := reflect.TypeOf(a); t == nil || !t.Comparable() {
		return false
	}
	return a == b
}

// hashShardMin is the batch size below which the conversion hash runs
// inline: fanning goroutines out costs more than a few thousand
// fixed-key AES calls.
const hashShardMin = 4096

// hashWorkers resolves the worker count for an n-instance hash batch.
func hashWorkers(workers, n int) int {
	if n < hashShardMin {
		return 1
	}
	return workers
}

// RandomOTs converts n COTs into random OTs: the sender gets message
// pairs (H(r0), H(r1)); the matching Receiver.RandomOTs yields
// (choice, H(r_choice)). Figure 2's online conversion. Large batches
// shard the correlation-robust hash over worker-local chunks
// (Options.Workers).
func (s *Sender) RandomOTs(n int) ([][2]Block, error) {
	r0, err := s.COTs(n)
	if err != nil {
		return nil, err
	}
	out := make([][2]Block, n)
	base := s.otct
	s.otct += uint64(n)
	hash := s.trace.Span("crhf.hash", "convert", ferret.SenderTID)
	parallel.ShardIndexed(hashWorkers(s.workers, n), n, func(shard, lo, hi int) {
		sp := s.trace.Span("crhf.hash", "convert.worker", ferret.SenderTID+1+shard)
		for i := lo; i < hi; i++ {
			tweak := base + uint64(i)
			out[i][0] = s.h.Sum(r0[i], tweak)
			out[i][1] = s.h.Sum(r0[i].Xor(s.ext.Delta()), tweak)
		}
		if sp.Live() {
			sp.EndArgs(map[string]any{"ots": hi - lo})
		}
	})
	if hash.Live() {
		hash.EndArgs(map[string]any{"ots": n})
	}
	return out, nil
}

// RandomOTs is the receiver half of the conversion.
func (r *Receiver) RandomOTs(n int) ([]bool, []Block, error) {
	bits, blks, err := r.COTs(n)
	if err != nil {
		return nil, nil, err
	}
	out := make([]Block, n)
	base := r.otct
	r.otct += uint64(n)
	hash := r.trace.Span("crhf.hash", "convert", ferret.ReceiverTID)
	parallel.ShardIndexed(hashWorkers(r.workers, n), n, func(shard, lo, hi int) {
		sp := r.trace.Span("crhf.hash", "convert.worker", ferret.ReceiverTID+1+shard)
		for i := lo; i < hi; i++ {
			out[i] = r.h.Sum(blks[i], base+uint64(i))
		}
		if sp.Live() {
			sp.EndArgs(map[string]any{"ots": hi - lo})
		}
	})
	if hash.Live() {
		hash.EndArgs(map[string]any{"ots": n})
	}
	return bits, out, nil
}

// SendChosen runs chosen-message 1-of-2 OTs for the given pairs,
// consuming one fresh COT each (peer: ReceiveChosen). While the
// endpoint prefetches (Options.Prefetch > 0) its protocol conn is
// rejected with ErrConnBusy — background iterations own that stream.
func (s *Sender) SendChosen(conn Conn, msgs [][2]Block) error {
	if s.busy.Load() && (sameConn(conn, s.conn) || sameConn(conn, s.peerConn)) {
		return ErrConnBusy
	}
	pairs, err := s.RandomOTs(len(msgs))
	if err != nil {
		return err
	}
	// Beaver derandomization against the random OTs.
	ds, err := transport.RecvBits(conn, len(msgs))
	if err != nil {
		return err
	}
	cts := make([]Block, 2*len(msgs))
	for i := range msgs {
		p0, p1 := pairs[i][0], pairs[i][1]
		if ds[i] {
			p0, p1 = p1, p0
		}
		cts[2*i] = msgs[i][0].Xor(p0)
		cts[2*i+1] = msgs[i][1].Xor(p1)
	}
	return transport.SendBlocks(conn, cts)
}

// ReceiveChosen selects one message per pair. The same ErrConnBusy
// guard as SendChosen applies to prefetching endpoints.
func (r *Receiver) ReceiveChosen(conn Conn, choices []bool) ([]Block, error) {
	if r.busy.Load() && (sameConn(conn, r.conn) || sameConn(conn, r.peerConn)) {
		return nil, ErrConnBusy
	}
	bits, keys, err := r.RandomOTs(len(choices))
	if err != nil {
		return nil, err
	}
	ds := make([]bool, len(choices))
	for i := range ds {
		ds[i] = choices[i] != bits[i]
	}
	if err := transport.SendBits(conn, ds); err != nil {
		return nil, err
	}
	cts, err := transport.RecvBlocks(conn, 2*len(choices))
	if err != nil {
		return nil, err
	}
	out := make([]Block, len(choices))
	for i := range out {
		ct := cts[2*i]
		if choices[i] {
			ct = cts[2*i+1]
		}
		out[i] = ct.Xor(keys[i])
	}
	return out, nil
}

// GMW engine re-exports: the bitsliced two-party Boolean engine layered
// on chosen OTs (internal/gmw; see the GMW section of DESIGN.md for the
// round model and the level-batching contract). A GMWParty needs a
// correlation pool per OT direction, so a two-party deployment runs two
// endpoint pairs with swapped roles — the paper's §5.2 role-switching
// scenario.
type (
	// GMWParty is one side of a GMW evaluation.
	GMWParty = gmw.Party
	// GMWShare is the legacy bool-vector share layout.
	GMWShare = gmw.Share
	// GMWPacked is the word-packed (bitsliced) share layout.
	GMWPacked = gmw.PackedShare
	// GMWSenderPool / GMWReceiverPool hold materialized correlations
	// for one OT direction of a GMW party.
	GMWSenderPool   = cot.SenderPool
	GMWReceiverPool = cot.ReceiverPool
)

// ErrRoleConflict is returned by NewGMWParty when both parties claim
// (or both disclaim) the initiator role.
var ErrRoleConflict = gmw.ErrRoleConflict

// NewGMWParty assembles a GMW party from one pool per OT direction and
// runs the role handshake over conn (the peer must call it
// concurrently with the opposite first flag). Draw the pools with
// Sender.GMWPool / Receiver.GMWPool.
func NewGMWParty(conn Conn, out *GMWSenderPool, in *GMWReceiverPool, first bool) (*GMWParty, error) {
	return gmw.NewParty(conn, out, in, first)
}

// GMWPool materializes n correlations from this endpoint into a pool
// the GMW engine can consume (this party as OT sender).
func (s *Sender) GMWPool(n int) (*GMWSenderPool, error) {
	r0, err := s.COTs(n)
	if err != nil {
		return nil, err
	}
	return cot.NewSenderPool(s.ext.Delta(), r0), nil
}

// GMWPool materializes n correlations from this endpoint into a pool
// the GMW engine can consume (this party as OT receiver).
func (r *Receiver) GMWPool(n int) (*GMWReceiverPool, error) {
	bits, blocks, err := r.COTs(n)
	if err != nil {
		return nil, err
	}
	return cot.NewReceiverPool(bits, blocks)
}

// Circuit frontend re-exports: the Bristol-fashion frontend of the GMW
// engine (internal/circuit; see the "Circuit frontend" section of
// DESIGN.md). Load or build a circuit, compile it once into a level
// schedule, then evaluate any number of SIMD-packed instance batches:
// each AND level of the schedule is ONE batched OT exchange regardless
// of the instance count.
type (
	// Circuit is a parsed Bristol-fashion Boolean circuit.
	Circuit = circuit.Circuit
	// CircuitProgram is a compiled level schedule over a recycled
	// register file; safe for concurrent Eval calls on different
	// parties.
	CircuitProgram = circuit.Program
)

// LoadCircuit parses a Bristol circuit ("Bristol Fashion" or legacy
// "Bristol Format" headers; gzip is detected transparently).
func LoadCircuit(r io.Reader) (*Circuit, error) { return circuit.Load(r) }

// LoadCircuitFile is LoadCircuit over a file path.
func LoadCircuitFile(path string) (*Circuit, error) { return circuit.LoadFile(path) }

// CompileCircuit levels the gate DAG into a batched exchange schedule
// and allocates wires into recycled registers (memory scales with the
// maximum live-wire frontier, not the wire count).
func CompileCircuit(c *Circuit) (*CircuitProgram, error) { return circuit.Compile(c) }

// EvalCircuit securely evaluates a compiled circuit: inputs is one
// K-bit plane per circuit input wire (K = SIMD instance count; build
// the planes with ShareCircuitInputs), the result one K-bit plane per
// output wire. The peer must run EvalCircuit concurrently on the same
// program. The whole OT budget is preflighted against the party's
// pools before the first flight.
func EvalCircuit(p *GMWParty, prog *CircuitProgram, inputs []GMWPacked) ([]GMWPacked, error) {
	return prog.Eval(p, inputs, nil)
}

// ShareCircuitInputs XOR-shares K instances of one circuit input
// value: the owner passes its per-instance plaintext bits, the peer
// passes mine=false with the instance count (len(instances)) and nil
// bit vectors. For threshold inputs neither party knows, both pass
// their local share with mine=true.
func ShareCircuitInputs(instances [][]bool, bits int, mine bool) ([]GMWPacked, error) {
	return circuit.SharePlanes(instances, bits, mine)
}

// RevealCircuitOutputs opens output planes to both parties (one
// exchange) and unpacks them into K per-instance bit vectors.
func RevealCircuitOutputs(p *GMWParty, planes []GMWPacked) ([][]bool, error) {
	return circuit.Reveal(p, planes)
}

// CircuitAES128 returns the embedded AES-128 encryption circuit
// (plaintext, key -> ciphertext, 51200 ANDs, depth 40); inputs and
// outputs use the BytesBits layout. Treat as read-only.
func CircuitAES128() *Circuit { return circuit.AES128() }

// CircuitSHA256 returns the embedded SHA-256 compression circuit
// (padded block, chaining value -> new chaining value). Treat as
// read-only.
func CircuitSHA256() *Circuit { return circuit.SHA256() }

// CircuitDivide64 returns the embedded 64-bit unsigned divider
// (dividend, divisor -> quotient, remainder). Treat as read-only.
func CircuitDivide64() *Circuit { return circuit.Divide64() }

// BytesBits explodes a byte string into the LSB-first-per-byte bit
// layout the embedded byte-oriented circuits use; BitsBytes inverts.
func BytesBits(p []byte) []bool { return circuit.BytesBits(p) }

// BitsBytes recomposes BytesBits output into a byte string.
func BitsBytes(bits []bool) []byte { return circuit.BitsBytes(bits) }

// Arithmetic engine re-exports: additive secret sharing over Z_2^64
// with COT-backed Beaver triples and A2B/B2A bridges into the GMW
// engine (internal/arith; see the arith section of DESIGN.md). An
// ArithParty consumes the same two-directional pools as a GMWParty —
// in fact it embeds one (the Bool field) on the same conn, so one
// session mixes linear algebra and Boolean nonlinearities.
type (
	// ArithParty is one side of an arithmetic evaluation.
	ArithParty = arith.Party
	// ArithShare is an additively-shared vector over Z_2^64.
	ArithShare = arith.Share
	// ArithTriples is a batch of Beaver triples consumed by MulVec.
	ArithTriples = arith.Triples
	// ArithMatTriple is a Beaver matrix triple consumed by MatMul.
	ArithMatTriple = arith.MatTriple
	// FixedPoint is the two's-complement fixed-point encoding used by
	// the arithmetic layer's ML-shaped workloads.
	FixedPoint = arith.Fixed
)

// NewArithParty assembles an arithmetic party from one pool per OT
// direction and runs the role handshake over conn (the peer must call
// it concurrently with the opposite first flag). Draw the pools with
// Sender.GMWPool / Receiver.GMWPool — arithmetic word OTs and GMW bit
// OTs share the same correlations.
func NewArithParty(conn Conn, out *GMWSenderPool, in *GMWReceiverPool, first bool) (*ArithParty, error) {
	return arith.NewParty(conn, out, in, first)
}

// VerifyCOTs checks z = y ⊕ x·Δ for a batch (test/diagnostic helper —
// in a deployment the receiver never sees Δ).
func VerifyCOTs(delta Block, z []Block, bits []bool, y []Block) error {
	if len(z) != len(bits) || len(z) != len(y) {
		return fmt.Errorf("ironman: length mismatch")
	}
	return ferret.Check(delta, z, &ferret.ReceiverOutput{Bits: bits, Blocks: y})
}
