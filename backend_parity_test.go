package ironman

import (
	"math"
	"reflect"
	"testing"

	"ironman/internal/circuit"
	"ironman/internal/extension"
	"ironman/internal/ferret"
)

// The backend-parity suite runs identical seeded workloads through
// NewDealtPair on every registered extension backend and requires
// plaintext-identical results: the GMW comparison engine, the
// arithmetic fixed-point pipeline, and the Bristol circuit frontend
// must not be able to tell the backends apart.

func parityParams() Params { return ferret.TestParams(60_000, 1024, 6000, 32) }

func parityOpts(backend string, seed uint64) Options {
	o := DefaultOptions()
	o.Backend = backend
	o.Seed = Block{Lo: 0x706172697479, Hi: seed} // "parity"
	// Prefetch > 0 gives the dealt pair its shared lockstep generator,
	// so the workloads below may draw the two halves in any order.
	o.Prefetch = 2
	return o
}

// parityPools deals one seeded pair on the named backend and
// materializes both halves into GMW-consumable pools.
func parityPools(t *testing.T, backend string, seed uint64, budget int) (*GMWSenderPool, *GMWReceiverPool) {
	t.Helper()
	connS, connR := Pipe()
	delta := Block{Lo: 0xdead0000 + seed, Hi: 0xbeef}
	s, r, err := NewDealtPair(connS, connR, delta, parityParams(), parityOpts(backend, seed))
	if err != nil {
		t.Fatalf("%s: %v", backend, err)
	}
	t.Cleanup(func() { s.Close() })
	sp, err := s.GMWPool(budget)
	if err != nil {
		t.Fatalf("%s: %v", backend, err)
	}
	rp, err := r.GMWPool(budget)
	if err != nil {
		t.Fatalf("%s: %v", backend, err)
	}
	return sp, rp
}

// TestSeededDrawsDeterministicPerBackend: with Options.Seed set, a
// dealt pair's drawn correlations are a pure function of
// (delta, params, options) on every backend.
func TestSeededDrawsDeterministicPerBackend(t *testing.T) {
	for _, backend := range extension.Names() {
		draw := func() ([]Block, []bool, []Block) {
			connS, connR := Pipe()
			delta := Block{Lo: 0xd17a, Hi: 0x5eed}
			s, r, err := NewDealtPair(connS, connR, delta, parityParams(), parityOpts(backend, 42))
			if err != nil {
				t.Fatalf("%s: %v", backend, err)
			}
			defer s.Close()
			z, err := s.COTs(256)
			if err != nil {
				t.Fatal(err)
			}
			bits, y, err := r.COTs(256)
			if err != nil {
				t.Fatal(err)
			}
			if err := VerifyCOTs(delta, z, bits, y); err != nil {
				t.Fatalf("%s: %v", backend, err)
			}
			return z, bits, y
		}
		z1, b1, y1 := draw()
		z2, b2, y2 := draw()
		if !reflect.DeepEqual(z1, z2) || !reflect.DeepEqual(b1, b2) || !reflect.DeepEqual(y1, y2) {
			t.Fatalf("%s: seeded draws differ between identical runs", backend)
		}
	}
}

// gmwCompareWorkload runs the batched 16-bit comparison of the public
// GMW surface on the given backend and returns both parties' opened
// results.
func gmwCompareWorkload(t *testing.T, backend string) []bool {
	t.Helper()
	const elems, width = 32, 16
	budget := (3*width - 2) * elems
	sAB, rAB := parityPools(t, backend, 1, budget)
	sBA, rBA := parityPools(t, backend, 2, budget)

	xs := make([]uint64, elems)
	ys := make([]uint64, elems)
	for i := range xs {
		xs[i] = uint64(i * 977 % (1 << width))
		ys[i] = uint64((elems - i) * 1013 % (1 << width))
	}
	connA, connB := Pipe()
	var openA []bool
	done := make(chan error, 1)
	go func() {
		pa, err := NewGMWParty(connA, sAB, rBA, true)
		if err != nil {
			done <- err
			return
		}
		gt, err := pa.GreaterThanVec(pa.NewPrivateVec(xs, width, true), pa.NewPrivateVec(make([]uint64, elems), width, false))
		if err != nil {
			done <- err
			return
		}
		openA, err = pa.RevealPacked(gt)
		done <- err
	}()
	pb, err := NewGMWParty(connB, sBA, rAB, false)
	if err != nil {
		t.Fatal(err)
	}
	gt, err := pb.GreaterThanVec(pb.NewPrivateVec(make([]uint64, elems), width, false), pb.NewPrivateVec(ys, width, true))
	if err != nil {
		t.Fatal(err)
	}
	openB, err := pb.RevealPacked(gt)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		want := xs[i] > ys[i]
		if openA[i] != want || openB[i] != want {
			t.Fatalf("%s: elem %d: gt(%d,%d) = %v/%v", backend, i, xs[i], ys[i], openA[i], openB[i])
		}
	}
	return openA
}

// arithWorkload runs the fixed-point matvec pipeline on the given
// backend and returns the revealed pre-truncation words. (Truncation
// is deliberately left out: TruncVec's ±1 LSB error depends on the
// share randomness, which legitimately differs between backends — the
// Beaver product itself is exact and must be plaintext-identical.)
func arithWorkload(t *testing.T, backend string) []uint64 {
	t.Helper()
	const m, k = 6, 10
	f := FixedPoint{Frac: 12}
	budget := 64*m*k + 900*m
	sAB, rAB := parityPools(t, backend, 3, budget)
	sBA, rBA := parityPools(t, backend, 4, budget)

	w := make([]float64, m*k)
	x := make([]float64, k)
	for i := range w {
		w[i] = math.Sin(float64(i + 1))
	}
	for i := range x {
		x[i] = math.Cos(float64(3 * i))
	}
	eval := func(conn Conn, out *GMWSenderPool, in *GMWReceiverPool, first bool) ([]uint64, error) {
		p, err := NewArithParty(conn, out, in, first)
		if err != nil {
			return nil, err
		}
		tr, err := p.NewMatTriple(m, k, 1)
		if err != nil {
			return nil, err
		}
		ws := p.NewPrivate(f.EncodeVec(w), first)
		xs := p.NewPrivate(f.EncodeVec(x), !first)
		z, err := p.MatVec(ws, xs, tr)
		if err != nil {
			return nil, err
		}
		return p.Reveal(z)
	}
	connA, connB := Pipe()
	type res struct {
		vals []uint64
		err  error
	}
	ch := make(chan res, 1)
	go func() {
		vals, err := eval(connA, sAB, rBA, true)
		ch <- res{vals, err}
	}()
	gotB, errB := eval(connB, sBA, rAB, false)
	if errB != nil {
		t.Fatal(errB)
	}
	ra := <-ch
	if ra.err != nil {
		t.Fatal(ra.err)
	}
	// The Beaver product is exact modular arithmetic on the encoded
	// words: check against the plaintext computation, word for word.
	ew, ex := f.EncodeVec(w), f.EncodeVec(x)
	for i := 0; i < m; i++ {
		var want uint64
		for l := 0; l < k; l++ {
			want += ew[i*k+l] * ex[l]
		}
		if ra.vals[i] != want || gotB[i] != want {
			t.Fatalf("%s: matvec wrong at %d: %d/%d want %d", backend, i, ra.vals[i], gotB[i], want)
		}
	}
	return ra.vals
}

// circuitWorkload evaluates the embedded 64-bit divider (two SIMD
// instances) on the given backend and returns the opened output bits.
func circuitWorkload(t *testing.T, backend string) [][]bool {
	t.Helper()
	prog, err := CompileCircuit(CircuitDivide64())
	if err != nil {
		t.Fatal(err)
	}
	vecs := [][2]uint64{{0xdeadbeefcafebabe, 0x1337}, {7, 0}}
	budget := prog.ANDs * len(vecs)
	sAB, rAB := parityPools(t, backend, 5, budget)
	sBA, rBA := parityPools(t, backend, 6, budget)

	planes := func(mine bool) []GMWPacked {
		dividends := make([][]bool, len(vecs))
		divisors := make([][]bool, len(vecs))
		if mine {
			for i, v := range vecs {
				dividends[i] = circuit.Uint64Bits(v[0], 64)
				divisors[i] = circuit.Uint64Bits(v[1], 64)
			}
		}
		dp, err := ShareCircuitInputs(dividends, 64, mine)
		if err != nil {
			t.Fatal(err)
		}
		vp, err := ShareCircuitInputs(divisors, 64, mine)
		if err != nil {
			t.Fatal(err)
		}
		return append(dp, vp...)
	}

	connA, connB := Pipe()
	type res struct {
		outs [][]bool
		err  error
	}
	ch := make(chan res, 1)
	go func() {
		pa, err := NewGMWParty(connA, sAB, rBA, true)
		if err != nil {
			ch <- res{nil, err}
			return
		}
		out, err := EvalCircuit(pa, prog, planes(true))
		if err != nil {
			ch <- res{nil, err}
			return
		}
		outs, err := RevealCircuitOutputs(pa, out)
		ch <- res{outs, err}
	}()
	pb, err := NewGMWParty(connB, sBA, rAB, false)
	if err != nil {
		t.Fatal(err)
	}
	out, err := EvalCircuit(pb, prog, planes(false))
	if err != nil {
		t.Fatal(err)
	}
	outsB, err := RevealCircuitOutputs(pb, out)
	if err != nil {
		t.Fatal(err)
	}
	ra := <-ch
	if ra.err != nil {
		t.Fatal(ra.err)
	}
	for i, v := range vecs {
		x, d := v[0], v[1]
		wantQ, wantR := ^uint64(0), x
		if d != 0 {
			wantQ, wantR = x/d, x%d
		}
		gotQ := circuit.BitsUint64(ra.outs[i][:64])
		gotR := circuit.BitsUint64(ra.outs[i][64:])
		if gotQ != wantQ || gotR != wantR {
			t.Fatalf("%s: %d/%d: got q=%d r=%d, want q=%d r=%d", backend, x, d, gotQ, gotR, wantQ, wantR)
		}
		if !reflect.DeepEqual(ra.outs[i], outsB[i]) {
			t.Fatalf("%s: instance %d: the two parties opened different outputs", backend, i)
		}
	}
	return ra.outs
}

// TestBackendParity is the cross-backend acceptance suite: every
// registered backend feeds the same three seeded workloads and the
// opened plaintext results must be identical across backends.
func TestBackendParity(t *testing.T) {
	backends := extension.Names()
	if len(backends) < 2 {
		t.Fatalf("parity needs at least two registered backends, have %v", backends)
	}
	var gmwRef []bool
	var arithRef []uint64
	var circRef [][]bool
	for i, backend := range backends {
		gmwRes := gmwCompareWorkload(t, backend)
		arithRes := arithWorkload(t, backend)
		circRes := circuitWorkload(t, backend)
		if i == 0 {
			gmwRef, arithRef, circRef = gmwRes, arithRes, circRes
			continue
		}
		if !reflect.DeepEqual(gmwRes, gmwRef) {
			t.Errorf("gmw results differ: %s vs %s", backend, backends[0])
		}
		if !reflect.DeepEqual(arithRes, arithRef) {
			t.Errorf("arith results differ: %s vs %s", backend, backends[0])
		}
		if !reflect.DeepEqual(circRes, circRef) {
			t.Errorf("circuit results differ: %s vs %s", backend, backends[0])
		}
	}
}
