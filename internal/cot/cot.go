// Package cot defines correlated-OT stores and the oblivious-transfer
// sub-protocols built on them.
//
// A COT correlation (Figure 2 of the paper) gives the sender random
// blocks r0 with a global Δ (r1 = r0 ⊕ Δ implied) and the receiver a
// random bit b with r_b = r0 ⊕ b·Δ. The package converts pools of such
// correlations into:
//
//   - chosen-message 1-out-of-2 OT (SendChosen/ReceiveChosen), the
//     classic Beaver derandomization plus a correlation-robust hash;
//   - (m-1)-out-of-m OT (SendAllButOne/ReceiveAllButOne), realized with
//     an m-leaf GGM tree at a cost of only log2(m) COTs (§4.2), which is
//     what makes m-ary SPCOT correlation-neutral.
package cot

import (
	"crypto/rand"
	"errors"
	"fmt"
	"math/bits"

	"ironman/internal/aesprg"
	"ironman/internal/block"
	"ironman/internal/ggm"
	"ironman/internal/prg"
	"ironman/internal/transport"
)

// ErrExhausted is returned when a pool has fewer correlations left than
// a protocol step needs.
var ErrExhausted = errors.New("cot: correlation pool exhausted")

// SenderPool holds the sender's side of a batch of COT correlations.
type SenderPool struct {
	Delta block.Block
	r0    []block.Block
	used  int
}

// ReceiverPool holds the receiver's side of a batch of COT correlations.
type ReceiverPool struct {
	bits   []bool
	blocks []block.Block
	used   int
}

// NewSenderPool wraps correlations (r0 values) under the global Delta.
func NewSenderPool(delta block.Block, r0 []block.Block) *SenderPool {
	return &SenderPool{Delta: delta, r0: r0}
}

// NewReceiverPool wraps correlations (choice bits and r_b values). A
// bits/blocks length mismatch is reported as an error, matching the
// error discipline of the pool-exhaustion paths.
func NewReceiverPool(bits []bool, blocks []block.Block) (*ReceiverPool, error) {
	if len(bits) != len(blocks) {
		return nil, fmt.Errorf("cot: bits/blocks length mismatch: %d bits, %d blocks", len(bits), len(blocks))
	}
	return &ReceiverPool{bits: bits, blocks: blocks}, nil
}

// Remaining reports how many unconsumed correlations are left.
func (p *SenderPool) Remaining() int   { return len(p.r0) - p.used }
func (p *ReceiverPool) Remaining() int { return len(p.bits) - p.used }

// Used reports how many correlations have been consumed; both parties
// consume in lockstep, so Used doubles as the hash-tweak base.
func (p *SenderPool) Used() int   { return p.used }
func (p *ReceiverPool) Used() int { return p.used }

// TakeBlocks consumes n correlations, returning their r0 blocks. Used
// when correlations feed a local computation (the LPN input) rather
// than an OT sub-protocol.
func (p *SenderPool) TakeBlocks(n int) ([]block.Block, error) {
	_, blocks, err := p.take(n)
	return blocks, err
}

// Take consumes n correlations, returning choice bits and r_b blocks.
func (p *ReceiverPool) Take(n int) ([]bool, []block.Block, error) {
	_, bits, blocks, err := p.take(n)
	return bits, blocks, err
}

// take advances the pool cursor by n, returning the starting offset.
func (p *SenderPool) take(n int) (int, []block.Block, error) {
	if p.Remaining() < n {
		return 0, nil, fmt.Errorf("%w: need %d, have %d", ErrExhausted, n, p.Remaining())
	}
	off := p.used
	p.used += n
	return off, p.r0[off : off+n], nil
}

func (p *ReceiverPool) take(n int) (int, []bool, []block.Block, error) {
	if p.Remaining() < n {
		return 0, nil, nil, fmt.Errorf("%w: need %d, have %d", ErrExhausted, n, p.Remaining())
	}
	off := p.used
	p.used += n
	return off, p.bits[off : off+n], p.blocks[off : off+n], nil
}

// SendChosen runs the sender side of len(msgs) chosen-message 1-of-2
// OTs, consuming one COT each. msgs[i] is the pair (m_i^0, m_i^1).
//
// Wire format: receiver sends the correction bits d_i = c_i ⊕ b_i; the
// sender replies with (m0 ⊕ H(r_{d}), m1 ⊕ H(r_{1-d})) per instance,
// where H is tweaked by the pool offset so every instance gets an
// independent oracle.
func SendChosen(conn transport.Conn, pool *SenderPool, h *aesprg.Hash, msgs [][2]block.Block) error {
	n := len(msgs)
	off, r0, err := pool.take(n)
	if err != nil {
		return err
	}
	ds, err := transport.RecvBits(conn, n)
	if err != nil {
		return err
	}
	cts := make([]block.Block, 2*n)
	for i := 0; i < n; i++ {
		rd := r0[i]
		rnd := r0[i].Xor(pool.Delta)
		if ds[i] {
			rd, rnd = rnd, rd
		}
		tweak := uint64(off + i)
		cts[2*i] = msgs[i][0].Xor(h.Sum(rd, tweak))
		cts[2*i+1] = msgs[i][1].Xor(h.Sum(rnd, tweak))
	}
	return transport.SendBlocks(conn, cts)
}

// ReceiveChosen runs the receiver side; choices[i] selects which of the
// sender's two messages instance i yields.
func ReceiveChosen(conn transport.Conn, pool *ReceiverPool, h *aesprg.Hash, choices []bool) ([]block.Block, error) {
	n := len(choices)
	off, bits, rb, err := pool.take(n)
	if err != nil {
		return nil, err
	}
	ds := make([]bool, n)
	for i := range ds {
		ds[i] = choices[i] != bits[i]
	}
	if err := transport.SendBits(conn, ds); err != nil {
		return nil, err
	}
	cts, err := transport.RecvBlocks(conn, 2*n)
	if err != nil {
		return nil, err
	}
	out := make([]block.Block, n)
	for i := 0; i < n; i++ {
		ct := cts[2*i]
		if choices[i] {
			ct = cts[2*i+1]
		}
		out[i] = ct.Xor(h.Sum(rb[i], uint64(off+i)))
	}
	return out, nil
}

// bit reads bit i of a limb-packed vector.
func bit(limbs []uint64, i int) uint64 { return limbs[i/64] >> (uint(i) % 64) & 1 }

// setBit ORs v (0 or 1) into bit i of a limb-packed vector.
func setBit(limbs []uint64, i int, v uint64) { limbs[i/64] |= v << (uint(i) % 64) }

// SendChosenBits runs the sender side of n chosen-message 1-of-2 OTs
// whose messages are single bits, consuming one COT each. m0 and m1
// are limb-packed bit vectors (64 bits per uint64, LSB-first): bit i
// of m0/m1 is the message pair of instance i.
//
// Wire format (the bit-packed chosen-OT frame): the receiver sends
// packed correction bits d_i = c_i ⊕ b_i (⌈n/8⌉ bytes); the sender
// replies with a single 2·⌈n/8⌉-byte frame ct0 || ct1 where
//
//	ct0_i = m0_i ⊕ lsb(H(r_{d_i}))    ct1_i = m1_i ⊕ lsb(H(r_{1-d_i}))
//
// and H is tweaked by the pool offset exactly as in SendChosen. Versus
// SendChosen's two 16-byte blocks per instance the reply carries 2
// bits, a 128x payload reduction — this is what makes GMW AND gates
// (1-bit secrets) cheap on the wire.
func SendChosenBits(conn transport.Conn, pool *SenderPool, h *aesprg.Hash, m0, m1 []uint64, n int) error {
	if limbs := transport.PackedLimbs(n); len(m0) < limbs || len(m1) < limbs {
		return fmt.Errorf("cot: SendChosenBits needs %d limbs for %d bits, got %d/%d", limbs, n, len(m0), len(m1))
	}
	off, r0, err := pool.take(n)
	if err != nil {
		return err
	}
	msg, err := conn.Recv()
	if err != nil {
		return err
	}
	ds, err := transport.WireToPacked(msg, n)
	if err != nil {
		return err
	}
	ct0 := make([]uint64, transport.PackedLimbs(n))
	ct1 := make([]uint64, transport.PackedLimbs(n))
	for i := 0; i < n; i++ {
		rd := r0[i]
		rnd := r0[i].Xor(pool.Delta)
		if bit(ds, i) == 1 {
			rd, rnd = rnd, rd
		}
		tweak := uint64(off + i)
		setBit(ct0, i, bit(m0, i)^h.Sum(rd, tweak).Lo&1)
		setBit(ct1, i, bit(m1, i)^h.Sum(rnd, tweak).Lo&1)
	}
	frame := append(transport.PackedToWire(ct0, n), transport.PackedToWire(ct1, n)...)
	// Both peers compute the frame size from n, so the chunked byte
	// framing reassembles oversized batches transparently.
	return transport.SendBytes(conn, frame)
}

// ReceiveChosenBits runs the receiver side of SendChosenBits: choices
// is a limb-packed choice-bit vector, and the result is the selected
// message bits in the same packing (trailing bits past n are zero).
func ReceiveChosenBits(conn transport.Conn, pool *ReceiverPool, h *aesprg.Hash, choices []uint64, n int) ([]uint64, error) {
	limbs := transport.PackedLimbs(n)
	if len(choices) < limbs {
		return nil, fmt.Errorf("cot: ReceiveChosenBits needs %d limbs for %d bits, got %d", limbs, n, len(choices))
	}
	off, bits, rb, err := pool.take(n)
	if err != nil {
		return nil, err
	}
	ds := make([]uint64, limbs)
	for i := 0; i < n; i++ {
		c := bit(choices, i)
		b := uint64(0)
		if bits[i] {
			b = 1
		}
		setBit(ds, i, c^b)
	}
	if err := conn.Send(transport.PackedToWire(ds, n)); err != nil {
		return nil, err
	}
	half := (n + 7) / 8
	frame, err := transport.RecvBytes(conn, 2*half)
	if err != nil {
		return nil, fmt.Errorf("cot: bit-OT frame: %w", err)
	}
	ct0, err := transport.WireToPacked(frame[:half], n)
	if err != nil {
		return nil, err
	}
	ct1, err := transport.WireToPacked(frame[half:], n)
	if err != nil {
		return nil, err
	}
	out := make([]uint64, limbs)
	for i := 0; i < n; i++ {
		ct := bit(ct0, i)
		if bit(choices, i) == 1 {
			ct = bit(ct1, i)
		}
		setBit(out, i, ct^h.Sum(rb[i], uint64(off+i)).Lo&1)
	}
	return out, nil
}

// bitWriter tightly packs variable-width bit fields, LSB-first — the
// wire layout of the word-payload chosen-OT ciphertext frame, where
// instance i contributes exactly widths[i] bits per ciphertext.
type bitWriter struct {
	buf  []byte
	nbit int
}

func (w *bitWriter) write(v uint64, width int) {
	for width > 0 {
		if w.nbit%8 == 0 {
			w.buf = append(w.buf, 0)
		}
		off := uint(w.nbit % 8)
		take := 8 - int(off)
		if take > width {
			take = width
		}
		w.buf[len(w.buf)-1] |= byte(v&(1<<uint(take)-1)) << off
		v >>= uint(take)
		width -= take
		w.nbit += take
	}
}

// bitReader is the inverse of bitWriter.
type bitReader struct {
	buf  []byte
	nbit int
}

func (r *bitReader) read(width int) (uint64, error) {
	var v uint64
	shift := uint(0)
	for width > 0 {
		if r.nbit/8 >= len(r.buf) {
			return 0, fmt.Errorf("cot: word-OT frame truncated at bit %d", r.nbit)
		}
		off := uint(r.nbit % 8)
		take := 8 - int(off)
		if take > width {
			take = width
		}
		v |= uint64(r.buf[r.nbit/8]>>off&(1<<uint(take)-1)) << shift
		shift += uint(take)
		width -= take
		r.nbit += take
	}
	return v, nil
}

// wordMask returns the low-w-bit mask (w in [0, 64]).
func wordMask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(w) - 1
}

// wordFrameBytes is the ciphertext frame size of n word OTs: 2·widths[i]
// bits per instance, rounded up to whole bytes once.
func wordFrameBytes(widths []int) int {
	total := 0
	for _, w := range widths {
		total += 2 * w
	}
	return (total + 7) / 8
}

// SendChosenWords runs the sender side of len(widths) chosen-message
// 1-of-2 OTs whose messages are uint64 words taken mod 2^widths[i],
// consuming one COT each. The reply frame packs each ciphertext to
// exactly widths[i] bits, so callers whose high message bits are
// irrelevant (Gilboa multiplication: bit i of the multiplier only
// needs the product mod 2^(64-i)) pay only for the bits that matter —
// at widths 64..1 that is 2x less payload than fixed 64-bit words and
// 3.9x less than riding SendChosen's two 128-bit blocks.
//
// Wire format: the receiver sends packed correction bits d_i = c_i ⊕
// b_i (⌈n/8⌉ bytes); the sender replies with one tightly bit-packed
// frame of pairs (ct0_i, ct1_i), widths[i] bits each, where
//
//	ct0_i = (m0_i ⊕ lo64(H(r_{d_i})))   mod 2^widths[i]
//	ct1_i = (m1_i ⊕ lo64(H(r_{1-d_i}))) mod 2^widths[i]
//
// and H is tweaked by the pool offset exactly as in SendChosen. A
// width of 0 is legal: the instance consumes its COT (keeping both
// pools in lockstep) but ships no ciphertext bits.
func SendChosenWords(conn transport.Conn, pool *SenderPool, h *aesprg.Hash, m0, m1 []uint64, widths []int) error {
	n := len(widths)
	if len(m0) != n || len(m1) != n {
		return fmt.Errorf("cot: SendChosenWords needs %d messages per side, got %d/%d", n, len(m0), len(m1))
	}
	off, r0, err := pool.take(n)
	if err != nil {
		return err
	}
	msg, err := conn.Recv()
	if err != nil {
		return err
	}
	ds, err := transport.WireToPacked(msg, n)
	if err != nil {
		return err
	}
	w := bitWriter{buf: make([]byte, 0, wordFrameBytes(widths))}
	for i := 0; i < n; i++ {
		rd := r0[i]
		rnd := r0[i].Xor(pool.Delta)
		if bit(ds, i) == 1 {
			rd, rnd = rnd, rd
		}
		tweak := uint64(off + i)
		mask := wordMask(widths[i])
		w.write((m0[i]^h.Sum(rd, tweak).Lo)&mask, widths[i])
		w.write((m1[i]^h.Sum(rnd, tweak).Lo)&mask, widths[i])
	}
	// A large Gilboa batch (>~127k triples, or one big matmul's flattened
	// products) exceeds MaxMessage; both peers derive the frame size
	// from widths, so the chunked byte framing keeps them in sync.
	return transport.SendBytes(conn, w.buf)
}

// ReceiveChosenWords runs the receiver side of SendChosenWords:
// choices is a limb-packed choice-bit vector (bit i selects instance
// i's message) and the result is the selected words, each reduced mod
// 2^widths[i].
func ReceiveChosenWords(conn transport.Conn, pool *ReceiverPool, h *aesprg.Hash, choices []uint64, widths []int) ([]uint64, error) {
	n := len(widths)
	if limbs := transport.PackedLimbs(n); len(choices) < limbs {
		return nil, fmt.Errorf("cot: ReceiveChosenWords needs %d limbs for %d choices, got %d", limbs, n, len(choices))
	}
	off, bits, rb, err := pool.take(n)
	if err != nil {
		return nil, err
	}
	ds := make([]uint64, transport.PackedLimbs(n))
	for i := 0; i < n; i++ {
		b := uint64(0)
		if bits[i] {
			b = 1
		}
		setBit(ds, i, bit(choices, i)^b)
	}
	if err := conn.Send(transport.PackedToWire(ds, n)); err != nil {
		return nil, err
	}
	frame, err := transport.RecvBytes(conn, wordFrameBytes(widths))
	if err != nil {
		return nil, fmt.Errorf("cot: word-OT frame: %w", err)
	}
	r := bitReader{buf: frame}
	out := make([]uint64, n)
	for i := 0; i < n; i++ {
		ct0, err := r.read(widths[i])
		if err != nil {
			return nil, err
		}
		ct1, err := r.read(widths[i])
		if err != nil {
			return nil, err
		}
		ct := ct0
		if bit(choices, i) == 1 {
			ct = ct1
		}
		out[i] = (ct ^ h.Sum(rb[i], uint64(off+i)).Lo) & wordMask(widths[i])
	}
	return out, nil
}

// abOnePRG is the fixed PRG used inside the all-but-one GGM gadget.
// A binary AES PRG keeps the gadget independent of the caller's choice
// of tree PRG (it is a different, tiny tree).
func abOnePRG() prg.PRG { return prg.New(prg.AES, 2) }

// SendAllButOne transfers len(msgs) messages such that the receiver
// learns every message except the one at its secret index. len(msgs)
// must be a power of two >= 2. Consumes log2(len(msgs)) COTs.
func SendAllButOne(conn transport.Conn, pool *SenderPool, h *aesprg.Hash, msgs []block.Block) error {
	var seedBytes [block.Size]byte
	//ironman:allow(randsrc) the gadget tree root must be fresh system entropy per transfer; the deterministic variant is SendAllButOneSeeded
	if _, err := rand.Read(seedBytes[:]); err != nil {
		return err
	}
	return SendAllButOneSeeded(conn, pool, h, msgs, block.FromBytes(seedBytes[:]))
}

// SendAllButOneSeeded is SendAllButOne with a caller-provided gadget
// tree seed. The seed must be secret and fresh per call (SendAllButOne
// draws it from crypto/rand; spcot derives it from each execution's
// secret GGM root so a whole sender flight is a deterministic function
// of that root — what the parallel-vs-sequential transcript
// cross-checks rely on).
func SendAllButOneSeeded(conn transport.Conn, pool *SenderPool, h *aesprg.Hash, msgs []block.Block, seed block.Block) error {
	m := len(msgs)
	if m < 2 || bits.OnesCount(uint(m)) != 1 {
		return fmt.Errorf("cot: all-but-one needs a power-of-two message count, got %d", m)
	}
	p := abOnePRG()
	arities := ggm.LevelArities(m, 2)
	tree := ggm.Expand(p, seed, arities)

	// Per level, offer (K0, K1) through a chosen OT; the receiver takes
	// the sum opposite its path digit.
	for level := 1; level <= tree.Depth(); level++ {
		sums := tree.LevelSums(level)
		if err := SendChosen(conn, pool, h, [][2]block.Block{{sums[0], sums[1]}}); err != nil {
			return err
		}
	}
	// Mask each message with a hash of its leaf.
	leaves := tree.Leaves()
	cts := make([]block.Block, m)
	base := uint64(pool.Used()) << 32 // domain-separate from the OT tweaks
	for j := 0; j < m; j++ {
		cts[j] = msgs[j].Xor(h.Sum(leaves[j], base+uint64(j)))
	}
	return transport.SendBlocks(conn, cts)
}

// ReceiveAllButOne receives every message except msgs[alpha]. The
// returned slice has the punctured slot zeroed.
func ReceiveAllButOne(conn transport.Conn, pool *ReceiverPool, h *aesprg.Hash, m, alpha int) ([]block.Block, error) {
	if m < 2 || bits.OnesCount(uint(m)) != 1 {
		return nil, fmt.Errorf("cot: all-but-one needs a power-of-two message count, got %d", m)
	}
	if alpha < 0 || alpha >= m {
		return nil, fmt.Errorf("cot: alpha %d out of range [0,%d)", alpha, m)
	}
	p := abOnePRG()
	arities := ggm.LevelArities(m, 2)
	digits := ggm.Digits(alpha, arities)

	sums := make([][]block.Block, len(arities))
	for i := range arities {
		// Binary level: ask for the sum at position 1-digit.
		want := digits[i] == 0 // true selects message index 1
		got, err := ReceiveChosen(conn, pool, h, []bool{want})
		if err != nil {
			return nil, err
		}
		sums[i] = make([]block.Block, 2)
		sums[i][1-digits[i]] = got[0]
	}
	rec := ggm.Reconstruct(p, arities, alpha, sums)

	cts, err := transport.RecvBlocks(conn, m)
	if err != nil {
		return nil, err
	}
	out := make([]block.Block, m)
	base := uint64(pool.Used()) << 32
	for j := 0; j < m; j++ {
		if j == alpha {
			continue
		}
		out[j] = cts[j].Xor(h.Sum(rec.Leaves[j], base+uint64(j)))
	}
	return out, nil
}

// RandomPools deals a correlated pair of pools from crypto/rand under a
// fresh random Δ. This is the "trusted dealer" shortcut used by tests
// and benchmarks that focus on post-init behaviour; production
// initialization goes through internal/iknp (see ferret.NewSender).
func RandomPools(n int) (*SenderPool, *ReceiverPool, error) {
	var deltaBytes [block.Size]byte
	//ironman:allow(randsrc) trusted-dealer shortcut for tests and benchmarks; production initialization flows through internal/iknp setup
	if _, err := rand.Read(deltaBytes[:]); err != nil {
		return nil, nil, err
	}
	return RandomPoolsWithDelta(block.FromBytes(deltaBytes[:]), n)
}

// RandomPoolsWithDelta is RandomPools under a caller-chosen Δ.
func RandomPoolsWithDelta(delta block.Block, n int) (*SenderPool, *ReceiverPool, error) {
	buf := make([]byte, block.Size*n+(n+7)/8)
	//ironman:allow(randsrc) trusted-dealer shortcut for tests and benchmarks; production initialization flows through internal/iknp setup
	if _, err := rand.Read(buf); err != nil {
		return nil, nil, err
	}
	return poolsFromBytes(buf, delta, n)
}

// PoolsFromStream is RandomPoolsWithDelta with the randomness drawn
// from a deterministic stream — the dealer behind ferret.Options.Seed.
// Correlations derived from a known seed are NOT secure; tests and
// benchmarks only.
func PoolsFromStream(s *aesprg.Stream, delta block.Block, n int) (*SenderPool, *ReceiverPool, error) {
	buf := make([]byte, block.Size*n+(n+7)/8)
	s.Fill(buf)
	return poolsFromBytes(buf, delta, n)
}

func poolsFromBytes(buf []byte, delta block.Block, n int) (*SenderPool, *ReceiverPool, error) {
	r0 := block.SliceFromBytes(buf[:block.Size*n])
	bitsBuf := buf[block.Size*n:]
	bits := make([]bool, n)
	rb := make([]block.Block, n)
	for i := 0; i < n; i++ {
		bits[i] = bitsBuf[i/8]>>uint(i%8)&1 == 1
		rb[i] = r0[i]
		if bits[i] {
			rb[i] = rb[i].Xor(delta)
		}
	}
	rp, err := NewReceiverPool(bits, rb)
	if err != nil {
		return nil, nil, err
	}
	return NewSenderPool(delta, r0), rp, nil
}
