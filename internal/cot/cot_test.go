package cot

import (
	"errors"
	"math/rand"
	"testing"

	"ironman/internal/aesprg"
	"ironman/internal/block"
	"ironman/internal/transport"
)

func pools(t *testing.T, n int) (*SenderPool, *ReceiverPool) {
	t.Helper()
	s, r, err := RandomPools(n)
	if err != nil {
		t.Fatal(err)
	}
	return s, r
}

func TestRandomPoolsCorrelation(t *testing.T) {
	s, r, err := RandomPools(64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		want := s.r0[i]
		if r.bits[i] {
			want = want.Xor(s.Delta)
		}
		if r.blocks[i] != want {
			t.Fatalf("correlation broken at %d", i)
		}
	}
	if s.Remaining() != 64 || r.Remaining() != 64 {
		t.Fatal("remaining wrong")
	}
}

func TestChosenOT(t *testing.T) {
	sp, rp := pools(t, 32)
	h := aesprg.NewHash()
	rng := rand.New(rand.NewSource(2))
	msgs := make([][2]block.Block, 32)
	choices := make([]bool, 32)
	for i := range msgs {
		msgs[i][0] = block.New(rng.Uint64(), rng.Uint64())
		msgs[i][1] = block.New(rng.Uint64(), rng.Uint64())
		choices[i] = rng.Intn(2) == 1
	}
	a, b := transport.Pipe()
	errCh := make(chan error, 1)
	go func() { errCh <- SendChosen(a, sp, h, msgs) }()
	got, err := ReceiveChosen(b, rp, h, choices)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	for i := range got {
		want := msgs[i][0]
		if choices[i] {
			want = msgs[i][1]
		}
		if got[i] != want {
			t.Fatalf("OT %d wrong message", i)
		}
	}
	if sp.Used() != 32 || rp.Used() != 32 {
		t.Fatal("pools must advance by one per OT")
	}
}

func TestChosenOTSequentialBatches(t *testing.T) {
	// Two batches over the same pool must keep tweaks aligned.
	sp, rp := pools(t, 8)
	h := aesprg.NewHash()
	a, b := transport.Pipe()
	for batch := 0; batch < 2; batch++ {
		msgs := [][2]block.Block{
			{block.New(uint64(batch), 1), block.New(uint64(batch), 2)},
			{block.New(uint64(batch), 3), block.New(uint64(batch), 4)},
		}
		choices := []bool{batch == 0, batch == 1}
		errCh := make(chan error, 1)
		go func() { errCh <- SendChosen(a, sp, h, msgs) }()
		got, err := ReceiveChosen(b, rp, h, choices)
		if err != nil {
			t.Fatal(err)
		}
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
		for i := range got {
			want := msgs[i][0]
			if choices[i] {
				want = msgs[i][1]
			}
			if got[i] != want {
				t.Fatalf("batch %d OT %d wrong", batch, i)
			}
		}
	}
}

func TestPoolExhaustion(t *testing.T) {
	sp, rp := pools(t, 1)
	h := aesprg.NewHash()
	a, b := transport.Pipe()
	msgs := make([][2]block.Block, 2)
	go func() {
		// Receiver side will fail before sending; unblock the sender by
		// closing the pipe.
		_, _ = ReceiveChosen(b, rp, h, make([]bool, 2))
		b.Close()
		a.Close()
	}()
	err := SendChosen(a, sp, h, msgs)
	if !errors.Is(err, ErrExhausted) && err == nil {
		t.Fatalf("err = %v, want exhaustion or closed pipe", err)
	}
}

func TestAllButOne(t *testing.T) {
	for _, m := range []int{2, 4, 8, 16} {
		for alpha := 0; alpha < m; alpha++ {
			sp, rp := pools(t, 16)
			h := aesprg.NewHash()
			msgs := make([]block.Block, m)
			for j := range msgs {
				msgs[j] = block.New(uint64(j)+100, uint64(m))
			}
			a, b := transport.Pipe()
			errCh := make(chan error, 1)
			go func() { errCh <- SendAllButOne(a, sp, h, msgs) }()
			got, err := ReceiveAllButOne(b, rp, h, m, alpha)
			if err != nil {
				t.Fatal(err)
			}
			if err := <-errCh; err != nil {
				t.Fatal(err)
			}
			for j := 0; j < m; j++ {
				if j == alpha {
					if !got[j].IsZero() {
						t.Fatalf("m=%d alpha=%d: punctured slot not zero", m, alpha)
					}
					continue
				}
				if got[j] != msgs[j] {
					t.Fatalf("m=%d alpha=%d: message %d mismatch", m, alpha, j)
				}
			}
			// COT budget: exactly log2(m).
			wantUsed := 0
			for v := m; v > 1; v >>= 1 {
				wantUsed++
			}
			if sp.Used() != wantUsed {
				t.Fatalf("m=%d: consumed %d COTs, want %d", m, sp.Used(), wantUsed)
			}
		}
	}
}

func TestAllButOneRejectsBadArgs(t *testing.T) {
	sp, rp := pools(t, 8)
	h := aesprg.NewHash()
	a, _ := transport.Pipe()
	if err := SendAllButOne(a, sp, h, make([]block.Block, 3)); err == nil {
		t.Fatal("expected error for non-power-of-two count")
	}
	if _, err := ReceiveAllButOne(a, rp, h, 4, 4); err == nil {
		t.Fatal("expected error for alpha out of range")
	}
	if _, err := ReceiveAllButOne(a, rp, h, 0, 0); err == nil {
		t.Fatal("expected error for m=0")
	}
}

func BenchmarkChosenOT(b *testing.B) {
	h := aesprg.NewHash()
	const batch = 128
	msgs := make([][2]block.Block, batch)
	choices := make([]bool, batch)
	for i := 0; i < b.N; i++ {
		sp, rp, _ := RandomPools(batch)
		x, y := transport.Pipe()
		go func() { _ = SendChosen(x, sp, h, msgs) }()
		if _, err := ReceiveChosen(y, rp, h, choices); err != nil {
			b.Fatal(err)
		}
	}
}
