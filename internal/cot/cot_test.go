package cot

import (
	"errors"
	"math/rand"
	"testing"

	"ironman/internal/aesprg"
	"ironman/internal/block"
	"ironman/internal/transport"
)

func pools(t *testing.T, n int) (*SenderPool, *ReceiverPool) {
	t.Helper()
	s, r, err := RandomPools(n)
	if err != nil {
		t.Fatal(err)
	}
	return s, r
}

func TestRandomPoolsCorrelation(t *testing.T) {
	s, r, err := RandomPools(64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		want := s.r0[i]
		if r.bits[i] {
			want = want.Xor(s.Delta)
		}
		if r.blocks[i] != want {
			t.Fatalf("correlation broken at %d", i)
		}
	}
	if s.Remaining() != 64 || r.Remaining() != 64 {
		t.Fatal("remaining wrong")
	}
}

func TestChosenOT(t *testing.T) {
	sp, rp := pools(t, 32)
	h := aesprg.NewHash()
	rng := rand.New(rand.NewSource(2))
	msgs := make([][2]block.Block, 32)
	choices := make([]bool, 32)
	for i := range msgs {
		msgs[i][0] = block.New(rng.Uint64(), rng.Uint64())
		msgs[i][1] = block.New(rng.Uint64(), rng.Uint64())
		choices[i] = rng.Intn(2) == 1
	}
	a, b := transport.Pipe()
	errCh := make(chan error, 1)
	go func() { errCh <- SendChosen(a, sp, h, msgs) }()
	got, err := ReceiveChosen(b, rp, h, choices)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	for i := range got {
		want := msgs[i][0]
		if choices[i] {
			want = msgs[i][1]
		}
		if got[i] != want {
			t.Fatalf("OT %d wrong message", i)
		}
	}
	if sp.Used() != 32 || rp.Used() != 32 {
		t.Fatal("pools must advance by one per OT")
	}
}

func TestChosenOTSequentialBatches(t *testing.T) {
	// Two batches over the same pool must keep tweaks aligned.
	sp, rp := pools(t, 8)
	h := aesprg.NewHash()
	a, b := transport.Pipe()
	for batch := 0; batch < 2; batch++ {
		msgs := [][2]block.Block{
			{block.New(uint64(batch), 1), block.New(uint64(batch), 2)},
			{block.New(uint64(batch), 3), block.New(uint64(batch), 4)},
		}
		choices := []bool{batch == 0, batch == 1}
		errCh := make(chan error, 1)
		go func() { errCh <- SendChosen(a, sp, h, msgs) }()
		got, err := ReceiveChosen(b, rp, h, choices)
		if err != nil {
			t.Fatal(err)
		}
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
		for i := range got {
			want := msgs[i][0]
			if choices[i] {
				want = msgs[i][1]
			}
			if got[i] != want {
				t.Fatalf("batch %d OT %d wrong", batch, i)
			}
		}
	}
}

func TestPoolExhaustion(t *testing.T) {
	sp, rp := pools(t, 1)
	h := aesprg.NewHash()
	a, b := transport.Pipe()
	msgs := make([][2]block.Block, 2)
	go func() {
		// Receiver side will fail before sending; unblock the sender by
		// closing the pipe.
		_, _ = ReceiveChosen(b, rp, h, make([]bool, 2))
		b.Close()
		a.Close()
	}()
	err := SendChosen(a, sp, h, msgs)
	if !errors.Is(err, ErrExhausted) && err == nil {
		t.Fatalf("err = %v, want exhaustion or closed pipe", err)
	}
}

func TestChosenBitsOT(t *testing.T) {
	for _, n := range []int{1, 7, 64, 100, 1000} {
		sp, rp := pools(t, n)
		h := aesprg.NewHash()
		rng := rand.New(rand.NewSource(int64(n)))
		limbs := (n + 63) / 64
		m0 := make([]uint64, limbs)
		m1 := make([]uint64, limbs)
		choices := make([]uint64, limbs)
		for i := range m0 {
			m0[i] = rng.Uint64()
			m1[i] = rng.Uint64()
			choices[i] = rng.Uint64()
		}
		if r := uint(n % 64); r != 0 {
			m0[limbs-1] &= 1<<r - 1
			m1[limbs-1] &= 1<<r - 1
			choices[limbs-1] &= 1<<r - 1
		}
		a, b := transport.Pipe()
		errCh := make(chan error, 1)
		go func() { errCh <- SendChosenBits(a, sp, h, m0, m1, n) }()
		got, err := ReceiveChosenBits(b, rp, h, choices, n)
		if err != nil {
			t.Fatal(err)
		}
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			want := bit(m0, i)
			if bit(choices, i) == 1 {
				want = bit(m1, i)
			}
			if bit(got, i) != want {
				t.Fatalf("n=%d: bit OT %d wrong", n, i)
			}
		}
		if sp.Used() != n || rp.Used() != n {
			t.Fatalf("n=%d: pools must advance by one per OT", n)
		}
		// Wire budget: d frame + ct0||ct1 frame, ~3 bits per OT.
		wantBytes := int64(3 * ((n + 7) / 8))
		if got := a.Stats().TotalBytes(); got != wantBytes {
			t.Fatalf("n=%d: moved %d wire bytes, want %d", n, got, wantBytes)
		}
	}
}

// TestChosenBitsInterleavedWithBlocks runs a block-payload batch and a
// bit-payload batch back to back over the SAME pool: the shared cursor
// must keep the hash tweaks aligned across mixed use, as the GMW
// engine mixes legacy And (blocks) and AndPacked (bits) on one pool.
func TestChosenBitsInterleavedWithBlocks(t *testing.T) {
	sp, rp := pools(t, 128)
	h := aesprg.NewHash()
	a, b := transport.Pipe()

	msgs := [][2]block.Block{{block.New(1, 2), block.New(3, 4)}, {block.New(5, 6), block.New(7, 8)}}
	errCh := make(chan error, 1)
	go func() { errCh <- SendChosen(a, sp, h, msgs) }()
	gotBlocks, err := ReceiveChosen(b, rp, h, []bool{true, false})
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if gotBlocks[0] != msgs[0][1] || gotBlocks[1] != msgs[1][0] {
		t.Fatal("block batch wrong")
	}

	const n = 100
	rng := rand.New(rand.NewSource(4))
	m0 := []uint64{rng.Uint64(), rng.Uint64() & (1<<36 - 1)}
	m1 := []uint64{rng.Uint64(), rng.Uint64() & (1<<36 - 1)}
	choices := []uint64{rng.Uint64(), rng.Uint64() & (1<<36 - 1)}
	go func() { errCh <- SendChosenBits(a, sp, h, m0, m1, n) }()
	got, err := ReceiveChosenBits(b, rp, h, choices, n)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := bit(m0, i)
		if bit(choices, i) == 1 {
			want = bit(m1, i)
		}
		if bit(got, i) != want {
			t.Fatalf("bit %d wrong after block batch", i)
		}
	}
	if sp.Used() != 2+n || rp.Used() != 2+n {
		t.Fatal("pool cursor out of lockstep")
	}
}

func TestChosenBitsExhaustionAndShape(t *testing.T) {
	sp, rp := pools(t, 1)
	h := aesprg.NewHash()
	a, b := transport.Pipe()
	go func() {
		_, _ = ReceiveChosenBits(b, rp, h, make([]uint64, 1), 2)
		b.Close()
		a.Close()
	}()
	err := SendChosenBits(a, sp, h, make([]uint64, 1), make([]uint64, 1), 2)
	if !errors.Is(err, ErrExhausted) && err == nil {
		t.Fatalf("err = %v, want exhaustion or closed pipe", err)
	}
	if err := SendChosenBits(a, sp, h, nil, nil, 64); err == nil {
		t.Fatal("short limb slice must be rejected")
	}
	if _, err := ReceiveChosenBits(a, rp, h, nil, 64); err == nil {
		t.Fatal("short choice slice must be rejected")
	}
}

func TestAllButOne(t *testing.T) {
	for _, m := range []int{2, 4, 8, 16} {
		for alpha := 0; alpha < m; alpha++ {
			sp, rp := pools(t, 16)
			h := aesprg.NewHash()
			msgs := make([]block.Block, m)
			for j := range msgs {
				msgs[j] = block.New(uint64(j)+100, uint64(m))
			}
			a, b := transport.Pipe()
			errCh := make(chan error, 1)
			go func() { errCh <- SendAllButOne(a, sp, h, msgs) }()
			got, err := ReceiveAllButOne(b, rp, h, m, alpha)
			if err != nil {
				t.Fatal(err)
			}
			if err := <-errCh; err != nil {
				t.Fatal(err)
			}
			for j := 0; j < m; j++ {
				if j == alpha {
					if !got[j].IsZero() {
						t.Fatalf("m=%d alpha=%d: punctured slot not zero", m, alpha)
					}
					continue
				}
				if got[j] != msgs[j] {
					t.Fatalf("m=%d alpha=%d: message %d mismatch", m, alpha, j)
				}
			}
			// COT budget: exactly log2(m).
			wantUsed := 0
			for v := m; v > 1; v >>= 1 {
				wantUsed++
			}
			if sp.Used() != wantUsed {
				t.Fatalf("m=%d: consumed %d COTs, want %d", m, sp.Used(), wantUsed)
			}
		}
	}
}

func TestAllButOneRejectsBadArgs(t *testing.T) {
	sp, rp := pools(t, 8)
	h := aesprg.NewHash()
	a, _ := transport.Pipe()
	if err := SendAllButOne(a, sp, h, make([]block.Block, 3)); err == nil {
		t.Fatal("expected error for non-power-of-two count")
	}
	if _, err := ReceiveAllButOne(a, rp, h, 4, 4); err == nil {
		t.Fatal("expected error for alpha out of range")
	}
	if _, err := ReceiveAllButOne(a, rp, h, 0, 0); err == nil {
		t.Fatal("expected error for m=0")
	}
}

func BenchmarkChosenOT(b *testing.B) {
	h := aesprg.NewHash()
	const batch = 128
	msgs := make([][2]block.Block, batch)
	choices := make([]bool, batch)
	for i := 0; i < b.N; i++ {
		sp, rp, _ := RandomPools(batch)
		x, y := transport.Pipe()
		go func() { _ = SendChosen(x, sp, h, msgs) }()
		if _, err := ReceiveChosen(y, rp, h, choices); err != nil {
			b.Fatal(err)
		}
	}
}

func TestNewReceiverPoolMismatch(t *testing.T) {
	if _, err := NewReceiverPool(make([]bool, 3), make([]block.Block, 2)); err == nil {
		t.Fatal("NewReceiverPool must reject a bits/blocks length mismatch")
	}
}

func TestChosenWordOT(t *testing.T) {
	const n = 130 // not a multiple of 64: exercises partial limbs
	sp, rp := pools(t, n)
	h := aesprg.NewHash()
	rng := rand.New(rand.NewSource(7))
	m0 := make([]uint64, n)
	m1 := make([]uint64, n)
	widths := make([]int, n)
	choices := make([]uint64, transport.PackedLimbs(n))
	for i := 0; i < n; i++ {
		m0[i] = rng.Uint64()
		m1[i] = rng.Uint64()
		widths[i] = i % 65 // 0..64, including the no-payload degenerate case
		if rng.Intn(2) == 1 {
			choices[i/64] |= 1 << uint(i%64)
		}
	}
	a, b := transport.Pipe()
	errCh := make(chan error, 1)
	go func() { errCh <- SendChosenWords(a, sp, h, m0, m1, widths) }()
	got, err := ReceiveChosenWords(b, rp, h, choices, widths)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := m0[i]
		if choices[i/64]>>uint(i%64)&1 == 1 {
			want = m1[i]
		}
		want &= wordMask(widths[i])
		if got[i] != want {
			t.Fatalf("word OT wrong at %d (width %d): got %x want %x", i, widths[i], got[i], want)
		}
	}
	if sp.Remaining() != 0 || rp.Remaining() != 0 {
		t.Fatal("word OT must consume one COT per instance, width 0 included")
	}
}

func TestChosenWordOTInterleavesWithBlocksAndBits(t *testing.T) {
	// One pool pair serves a block-payload batch, a word-payload batch,
	// and a bit-payload batch back to back: the shared tweak sequence
	// must keep every payload flavour decryptable.
	sp, rp := pools(t, 3*8)
	h := aesprg.NewHash()
	a, b := transport.Pipe()
	errCh := make(chan error, 1)
	go func() {
		msgs := make([][2]block.Block, 8)
		for i := range msgs {
			msgs[i][0] = block.New(uint64(i), 0)
			msgs[i][1] = block.New(uint64(i)*3+1, 0)
		}
		if err := SendChosen(a, sp, h, msgs); err != nil {
			errCh <- err
			return
		}
		m0 := []uint64{10, 20, 30, 40, 50, 60, 70, 80}
		m1 := []uint64{11, 21, 31, 41, 51, 61, 71, 81}
		widths := []int{7, 7, 7, 7, 7, 7, 7, 7}
		if err := SendChosenWords(a, sp, h, m0, m1, widths); err != nil {
			errCh <- err
			return
		}
		errCh <- SendChosenBits(a, sp, h, []uint64{0x0f}, []uint64{0xf0}, 8)
	}()
	blocks, err := ReceiveChosen(b, rp, h, make([]bool, 8))
	if err != nil {
		t.Fatal(err)
	}
	words, err := ReceiveChosenWords(b, rp, h, []uint64{0xff}, []int{7, 7, 7, 7, 7, 7, 7, 7})
	if err != nil {
		t.Fatal(err)
	}
	bits, err := ReceiveChosenBits(b, rp, h, []uint64{0x00}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if blocks[i] != block.New(uint64(i), 0) {
			t.Fatalf("block batch wrong at %d", i)
		}
		if words[i] != uint64(i)*10+11 {
			t.Fatalf("word batch wrong at %d: got %d", i, words[i])
		}
	}
	if bits[0] != 0x0f {
		t.Fatalf("bit batch wrong: got %x", bits[0])
	}
}
