package ggm

import "testing"

// TestFigure8aDepthFirstBubbles reproduces Figure 8(a): a single
// two-level binary tree on an 8-stage pipeline leaves 7 bubbles between
// the root expansion and its children's expansions.
func TestFigure8aDepthFirstBubbles(t *testing.T) {
	cfg := PipelineConfig{Stages: 8, Arities: []int{2, 2}, Trees: 1}
	st := SimulateSchedule(cfg, DepthFirst)
	if st.Ops != 3 {
		t.Fatalf("Ops = %d, want 3", st.Ops)
	}
	if st.Bubbles != 7 {
		t.Fatalf("Bubbles = %d, want 7", st.Bubbles)
	}
}

// TestFigure8bHybridBubbles reproduces Figure 8(b): four two-level
// binary trees under the hybrid schedule leave only 4 bubbles (the gap
// between issuing the 4 roots and the first root completing).
func TestFigure8bHybridBubbles(t *testing.T) {
	cfg := PipelineConfig{Stages: 8, Arities: []int{2, 2}, Trees: 4}
	st := SimulateSchedule(cfg, Hybrid)
	if st.Ops != 12 {
		t.Fatalf("Ops = %d, want 12", st.Ops)
	}
	if st.Bubbles != 4 {
		t.Fatalf("Bubbles = %d, want 4", st.Bubbles)
	}
}

// TestHybridFullUtilizationWithEnoughTrees: with >= Stages trees the
// hybrid schedule reaches 100% pipeline utilization (§4.3).
func TestHybridFullUtilizationWithEnoughTrees(t *testing.T) {
	cfg := PipelineConfig{Stages: 8, Arities: []int{4, 4, 4}, Trees: 8}
	st := SimulateSchedule(cfg, Hybrid)
	if st.Bubbles != 0 {
		t.Fatalf("Bubbles = %d, want 0", st.Bubbles)
	}
	if st.Utilization != 1.0 {
		t.Fatalf("Utilization = %f, want 1.0", st.Utilization)
	}
}

func TestScheduleOrdering(t *testing.T) {
	// Depth-first must beat breadth-first on buffer, lose on bubbles for
	// a deep single tree.
	cfg := PipelineConfig{Stages: 8, Arities: []int{2, 2, 2, 2, 2, 2, 2, 2}, Trees: 1}
	df := SimulateSchedule(cfg, DepthFirst)
	bf := SimulateSchedule(cfg, BreadthFirst)
	if df.PeakBuffer >= bf.PeakBuffer {
		t.Fatalf("DFS buffer (%d) should be below BFS buffer (%d)", df.PeakBuffer, bf.PeakBuffer)
	}
	if bf.Bubbles >= df.Bubbles {
		t.Fatalf("BFS bubbles (%d) should be below DFS bubbles (%d)", bf.Bubbles, df.Bubbles)
	}
}

func TestHybridBuffersBelowBFS(t *testing.T) {
	// For a batch of trees, hybrid utilization must be >= breadth-first
	// per-tree-sequential utilization, with far fewer bubbles than DFS.
	cfg := PipelineConfig{Stages: 8, Arities: []int{4, 4, 4, 4}, Trees: 16}
	hy := SimulateSchedule(cfg, Hybrid)
	df := SimulateSchedule(cfg, DepthFirst)
	if hy.Bubbles >= df.Bubbles {
		t.Fatalf("hybrid bubbles (%d) should be below DFS bubbles (%d)", hy.Bubbles, df.Bubbles)
	}
	if hy.Utilization < 0.99 {
		t.Fatalf("hybrid utilization = %f, want ~1", hy.Utilization)
	}
}

func TestOpsCountInvariant(t *testing.T) {
	// All schedules perform exactly the same number of expansions.
	cfg := PipelineConfig{Stages: 8, Arities: []int{4, 4, 2}, Trees: 3}
	want := 3 * (1 + 4 + 16)
	for _, s := range []Schedule{DepthFirst, BreadthFirst, Hybrid} {
		st := SimulateSchedule(cfg, s)
		if st.Ops != want {
			t.Fatalf("%v: Ops = %d, want %d", s, st.Ops, want)
		}
	}
}

func TestScheduleString(t *testing.T) {
	if DepthFirst.String() != "depth-first" || Hybrid.String() != "hybrid" {
		t.Fatal("Schedule.String broken")
	}
	if Schedule(42).String() != "Schedule(42)" {
		t.Fatal("unknown Schedule.String broken")
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SimulateSchedule(PipelineConfig{Stages: 0, Arities: []int{2}, Trees: 1}, Hybrid)
}
