// GGM-tree expansion scheduling on a pipelined PRG core (Figure 8 of
// the paper). A fully pipelined ChaCha8 core accepts one expansion per
// cycle and delivers the result Stages cycles later; an expansion can
// only be issued once its parent's expansion has completed. The three
// schedules differ in the order expansions are issued:
//
//   - DepthFirst: classic DFS, minimal O(m·depth) buffer but the pipeline
//     drains whenever the next op waits on its own parent.
//   - BreadthFirst: level order, fills the pipeline once a level is wide
//     enough but needs O(ℓ) buffering and delays leaf readiness.
//   - Hybrid: the paper's strategy — breadth-first within a level plus
//     inter-tree parallelism, so bubbles are filled with other trees'
//     ops while keeping per-tree buffering shallow.
package ggm

import "fmt"

// Schedule selects the expansion order.
type Schedule int

const (
	DepthFirst Schedule = iota
	BreadthFirst
	Hybrid
)

func (s Schedule) String() string {
	switch s {
	case DepthFirst:
		return "depth-first"
	case BreadthFirst:
		return "breadth-first"
	case Hybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("Schedule(%d)", int(s))
	}
}

// PipelineConfig describes the hardware and workload of a schedule run.
type PipelineConfig struct {
	Stages  int   // pipeline depth of the PRG core (8 for ChaCha8)
	Arities []int // per-level arities of each tree
	Trees   int   // number of trees expanded in the batch
}

// PipelineStats reports the outcome of a schedule simulation.
type PipelineStats struct {
	Ops         int     // expansions issued
	Cycles      int     // total cycles until the last result is produced
	Bubbles     int     // idle issue slots before the last issue
	Utilization float64 // Ops / issue window
	PeakBuffer  int     // max simultaneously-live node blocks
}

// op is one PRG expansion: (tree, level, node index within level).
type op struct {
	tree, level, node int
}

// SimulateSchedule runs an in-order issue simulation of the given
// schedule and returns its pipeline statistics. The model: one op may
// issue per cycle; an op's parent must have completed (issue + Stages
// cycles) before the op can issue; ops issue strictly in schedule
// order, so a stalled op blocks everything behind it (in-order issue,
// matching a hardware FIFO in front of the core).
func SimulateSchedule(cfg PipelineConfig, s Schedule) PipelineStats {
	if cfg.Stages < 1 || cfg.Trees < 1 || len(cfg.Arities) == 0 {
		panic("ggm: bad pipeline config")
	}
	order := scheduleOrder(cfg, s)

	// Completion time of each op, keyed by op. Roots are available at
	// time 0 (seeds arrive from the host).
	done := make(map[op]int, len(order))
	now := 0
	lastDone := 0
	firstIssue := -1
	var lastIssue int
	for _, o := range order {
		ready := 0
		if o.level > 0 {
			// o expands a node at level o.level whose block was produced
			// by its parent's expansion at level o.level-1.
			ready = done[op{o.tree, o.level - 1, o.node / cfg.Arities[o.level-1]}]
		}
		if now < ready {
			now = ready
		}
		if firstIssue < 0 {
			firstIssue = now
		}
		done[op{o.tree, o.level, o.node}] = now + cfg.Stages
		if now+cfg.Stages > lastDone {
			lastDone = now + cfg.Stages
		}
		lastIssue = now
		now++
	}
	ops := len(order)
	window := lastIssue - firstIssue + 1
	stats := PipelineStats{
		Ops:         ops,
		Cycles:      lastDone,
		Bubbles:     window - ops,
		Utilization: float64(ops) / float64(window),
		PeakBuffer:  peakBuffer(cfg, order),
	}
	return stats
}

// scheduleOrder produces the issue order of expansions. An op at level l
// expands node (l, node) producing that node's children; level 0 expands
// the root.
func scheduleOrder(cfg PipelineConfig, s Schedule) []op {
	var order []op
	switch s {
	case DepthFirst:
		for t := 0; t < cfg.Trees; t++ {
			order = append(order, dfsOrder(cfg.Arities, t, 0, 0)...)
		}
	case BreadthFirst:
		for t := 0; t < cfg.Trees; t++ {
			width := 1
			for l := range cfg.Arities {
				for n := 0; n < width; n++ {
					order = append(order, op{t, l, n})
				}
				width *= cfg.Arities[l]
			}
		}
	case Hybrid:
		// Inter-tree parallelism: at each level, round-robin the ops of
		// all trees, so another tree's ops fill the bubbles left by data
		// dependencies within one tree (Figure 8(b)).
		width := 1
		for l := range cfg.Arities {
			for n := 0; n < width; n++ {
				for t := 0; t < cfg.Trees; t++ {
					order = append(order, op{t, l, n})
				}
			}
			width *= cfg.Arities[l]
		}
	default:
		panic("ggm: unknown schedule")
	}
	return order
}

func dfsOrder(arities []int, tree, level, node int) []op {
	order := []op{{tree, level, node}}
	if level+1 < len(arities) {
		a := arities[level]
		for c := 0; c < a; c++ {
			order = append(order, dfsOrder(arities, tree, level+1, node*a+c)...)
		}
	}
	return order
}

// peakBuffer computes the maximum number of live node blocks under the
// given issue order: a node becomes live when produced and dies when its
// own expansion issues (internal nodes) or immediately streams out
// (leaves, which pair with LPN output in PCG OTE and need no buffering
// beyond the level itself in this model).
func peakBuffer(cfg PipelineConfig, order []op) int {
	live := 0
	peak := 0
	// Each expansion consumes one parent block and produces arity
	// children; leaves stream out so only internal children count.
	lastLevel := len(cfg.Arities) - 1
	for _, o := range order {
		if o.level > 0 {
			live-- // parent consumed
		}
		if o.level < lastLevel {
			live += cfg.Arities[o.level]
		}
		if live > peak {
			peak = live
		}
	}
	return peak
}
