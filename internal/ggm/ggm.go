// Package ggm implements Goldreich-Goldwasser-Micali puncturable
// pseudorandom trees, the core data structure of SPCOT (§2.3.1 of the
// Ironman paper), generalized to the hardware-aware m-ary expansion of
// §4.1.
//
// A tree with ℓ leaves is expanded level by level from a secret root
// seed. The sender computes the whole tree. The receiver, holding an
// index α it wants punctured, obtains for every level the XOR sums of
// all nodes in each child position except the position on the path to
// α; from those sums it reconstructs every leaf except leaf α.
//
// Levels may have different arities (mixed radix): ℓ = 8192 under a
// 4-ary PRG uses six 4-ary levels and one final binary level. The COT
// budget of the puncturing protocol is Σ log2(arity_i) = log2(ℓ)
// regardless of m, which is why m-ary expansion is free in correlations.
package ggm

import (
	"math/bits"

	"ironman/internal/block"
	"ironman/internal/prg"
)

// LevelArities decomposes a leaf count into per-level arities for a
// maximum arity m. Both leaves and m must be powers of two, leaves >= 2,
// m >= 2. All levels use arity m except possibly the last, which uses
// the remaining power of two.
func LevelArities(leaves, m int) []int {
	if leaves < 2 || bits.OnesCount(uint(leaves)) != 1 {
		panic("ggm: leaves must be a power of two >= 2")
	}
	if m < 2 || bits.OnesCount(uint(m)) != 1 {
		panic("ggm: arity must be a power of two >= 2")
	}
	logL := bits.TrailingZeros(uint(leaves))
	logM := bits.TrailingZeros(uint(m))
	var arities []int
	for logL > 0 {
		if logL >= logM {
			arities = append(arities, m)
			logL -= logM
		} else {
			arities = append(arities, 1<<uint(logL))
			logL = 0
		}
	}
	return arities
}

// Digits returns the mixed-radix digits of alpha for the given per-level
// arities, most significant (root level) first. alpha must lie in
// [0, Π arities).
func Digits(alpha int, arities []int) []int {
	total := 1
	for _, a := range arities {
		total *= a
	}
	if alpha < 0 || alpha >= total {
		panic("ggm: alpha out of range")
	}
	digits := make([]int, len(arities))
	for i := len(arities) - 1; i >= 0; i-- {
		digits[i] = alpha % arities[i]
		alpha /= arities[i]
	}
	return digits
}

// Tree is a fully expanded GGM tree held by the sender.
type Tree struct {
	prg     prg.PRG
	arities []int
	// levels[0] is the root (1 node); levels[i] has Π_{j<i} arities[j]
	// * arities[i-1]... i.e. levels[i] holds the nodes at depth i.
	levels [][]block.Block
}

// Expand computes the full tree from seed with the given per-level
// arities. Every arity must be <= p.Arity().
func Expand(p prg.PRG, seed block.Block, arities []int) *Tree {
	t := &Tree{prg: p, arities: arities}
	t.levels = make([][]block.Block, len(arities)+1)
	t.levels[0] = []block.Block{seed}
	width := 1
	for i, a := range arities {
		if a > p.Arity() {
			panic("ggm: level arity exceeds PRG arity")
		}
		width *= a
		next := make([]block.Block, width)
		parents := t.levels[i]
		for j, parent := range parents {
			p.Expand(parent, next[j*a:(j+1)*a])
		}
		t.levels[i+1] = next
	}
	return t
}

// Depth returns the number of expansion levels.
func (t *Tree) Depth() int { return len(t.arities) }

// Arities returns the per-level arities.
func (t *Tree) Arities() []int { return t.arities }

// Leaves returns the final level of the tree. The slice is shared with
// the tree; callers must not modify it.
func (t *Tree) Leaves() []block.Block { return t.levels[len(t.levels)-1] }

// Level returns the nodes at depth i (0 = root).
func (t *Tree) Level(i int) []block.Block { return t.levels[i] }

// LevelSums computes the position-wise XOR sums of level i (1-based:
// the children produced by expansion level i-1). sums[c] is the XOR of
// every node at depth i whose child-position within its parent is c.
// For a binary level these are the "even" and "odd" sums K^i_0, K^i_1
// of §2.3.1.
func (t *Tree) LevelSums(level int) []block.Block {
	if level < 1 || level > t.Depth() {
		panic("ggm: level out of range")
	}
	a := t.arities[level-1]
	nodes := t.levels[level]
	sums := make([]block.Block, a)
	for j, n := range nodes {
		c := j % a
		sums[c] = sums[c].Xor(n)
	}
	return sums
}

// AllLevelSums returns LevelSums for every level 1..Depth.
func (t *Tree) AllLevelSums() [][]block.Block {
	out := make([][]block.Block, t.Depth())
	for i := 1; i <= t.Depth(); i++ {
		out[i-1] = t.LevelSums(i)
	}
	return out
}

// Ops returns the number of primitive PRG core invocations the
// expansion consumed — the quantity Figures 6 and 7(a) count.
func (t *Tree) Ops() int {
	ops := 0
	width := 1
	for _, a := range t.arities {
		ops += width * t.prg.OpsFor(a)
		width *= a
	}
	return ops
}

// OpsForTree computes the primitive op count of expanding a tree with
// the given number of leaves using p, without expanding it.
func OpsForTree(p prg.PRG, leaves int) int {
	ops := 0
	width := 1
	for _, a := range LevelArities(leaves, p.Arity()) {
		ops += width * p.OpsFor(a)
		width *= a
	}
	return ops
}

// Punctured is the receiver's view of a GGM tree: every leaf except the
// one at index Alpha, whose slot holds the zero block.
type Punctured struct {
	Alpha  int
	Leaves []block.Block
}

// Reconstruct rebuilds all leaves except leaf alpha. sums must contain,
// for every level i (0-based here), the arity_i position sums of that
// level; the entry at the path digit position is never read and may be
// anything (the puncturing protocol does not transfer it). This is the
// receiver computation of steps ③ in Figure 3(b).
func Reconstruct(p prg.PRG, arities []int, alpha int, sums [][]block.Block) *Punctured {
	if len(sums) != len(arities) {
		panic("ggm: sums/arities length mismatch")
	}
	digits := Digits(alpha, arities)

	// known holds the current level's nodes; hole is the index of the
	// punctured node (unknown, kept zero).
	known := []block.Block{{}}
	hole := 0
	for i, a := range arities {
		width := len(known) * a
		next := make([]block.Block, width)
		// Expand every known parent.
		for j := range known {
			if j == hole {
				continue
			}
			p.Expand(known[j], next[j*a:(j+1)*a])
		}
		// Recover the hole's children at every position except the next
		// path digit: missing = sums[i][c] ⊕ XOR of known children at
		// position c.
		d := digits[i]
		for c := 0; c < a; c++ {
			if c == d {
				continue
			}
			acc := sums[i][c]
			for j := 0; j < len(known); j++ {
				if j == hole {
					continue
				}
				acc = acc.Xor(next[j*a+c])
			}
			next[hole*a+c] = acc
		}
		hole = hole*a + d
		known = next
	}
	return &Punctured{Alpha: hole, Leaves: known}
}

// XorKnownLeaves returns the XOR of every reconstructed leaf (the
// punctured slot is zero so it does not contribute).
func (r *Punctured) XorKnownLeaves() block.Block {
	return block.XorAll(r.Leaves)
}
