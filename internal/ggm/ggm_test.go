package ggm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ironman/internal/block"
	"ironman/internal/prg"
)

func TestLevelArities(t *testing.T) {
	cases := []struct {
		leaves, m int
		want      []int
	}{
		{4096, 2, []int{2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2}},
		{4096, 4, []int{4, 4, 4, 4, 4, 4}},
		{8192, 4, []int{4, 4, 4, 4, 4, 4, 2}},
		{8192, 2, repeat(2, 13)},
		{4096, 8, []int{8, 8, 8, 8}},
		{4096, 32, []int{32, 32, 4}},
		{2, 4, []int{2}},
	}
	for _, c := range cases {
		got := LevelArities(c.leaves, c.m)
		if !equalInts(got, c.want) {
			t.Errorf("LevelArities(%d,%d) = %v, want %v", c.leaves, c.m, got, c.want)
		}
		prod := 1
		for _, a := range got {
			prod *= a
		}
		if prod != c.leaves {
			t.Errorf("LevelArities(%d,%d) product = %d", c.leaves, c.m, prod)
		}
	}
}

func TestLevelAritiesPanics(t *testing.T) {
	for _, f := range []func(){
		func() { LevelArities(3, 2) },
		func() { LevelArities(0, 2) },
		func() { LevelArities(8, 3) },
		func() { LevelArities(8, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestDigitsRoundTrip(t *testing.T) {
	arities := []int{4, 4, 2}
	for alpha := 0; alpha < 32; alpha++ {
		d := Digits(alpha, arities)
		back := 0
		for i, a := range arities {
			back = back*a + d[i]
		}
		if back != alpha {
			t.Fatalf("Digits(%d) = %v does not round-trip (got %d)", alpha, d, back)
		}
	}
}

func TestExpandShapeAndDeterminism(t *testing.T) {
	p := prg.New(prg.ChaCha8, 4)
	arities := []int{4, 4, 2}
	seed := block.New(1, 2)
	tr := Expand(p, seed, arities)
	if tr.Depth() != 3 {
		t.Fatalf("Depth = %d", tr.Depth())
	}
	if len(tr.Leaves()) != 32 {
		t.Fatalf("leaves = %d, want 32", len(tr.Leaves()))
	}
	if len(tr.Level(0)) != 1 || len(tr.Level(1)) != 4 || len(tr.Level(2)) != 16 {
		t.Fatal("level widths wrong")
	}
	tr2 := Expand(p, seed, arities)
	if !block.Equal(tr.Leaves(), tr2.Leaves()) {
		t.Fatal("expansion not deterministic")
	}
}

func TestLevelSumsDefinition(t *testing.T) {
	p := prg.New(prg.AES, 2)
	tr := Expand(p, block.New(3, 4), []int{2, 2, 2})
	for level := 1; level <= 3; level++ {
		sums := tr.LevelSums(level)
		nodes := tr.Level(level)
		var even, odd block.Block
		for j, n := range nodes {
			if j%2 == 0 {
				even = even.Xor(n)
			} else {
				odd = odd.Xor(n)
			}
		}
		if sums[0] != even || sums[1] != odd {
			t.Fatalf("level %d sums mismatch", level)
		}
	}
}

// TestReconstructAllAlphas is the central GGM correctness property: for
// every punctured index, the receiver reconstructs exactly the sender's
// leaves everywhere except at alpha.
func TestReconstructAllAlphas(t *testing.T) {
	configs := []struct {
		p       prg.PRG
		arities []int
	}{
		{prg.New(prg.AES, 2), []int{2, 2, 2, 2}},
		{prg.New(prg.ChaCha8, 4), []int{4, 4}},
		{prg.New(prg.ChaCha8, 4), []int{4, 4, 2}},
		{prg.New(prg.AES, 4), []int{4, 2}},
		{prg.New(prg.ChaCha8, 8), []int{8, 4}},
	}
	for _, cfg := range configs {
		leaves := 1
		for _, a := range cfg.arities {
			leaves *= a
		}
		tr := Expand(cfg.p, block.New(7, 8), cfg.arities)
		sums := tr.AllLevelSums()
		for alpha := 0; alpha < leaves; alpha++ {
			rec := Reconstruct(cfg.p, cfg.arities, alpha, sums)
			if rec.Alpha != alpha {
				t.Fatalf("%s %v: Alpha = %d, want %d", cfg.p.Name(), cfg.arities, rec.Alpha, alpha)
			}
			for i := range rec.Leaves {
				if i == alpha {
					if !rec.Leaves[i].IsZero() {
						t.Fatalf("punctured slot %d not zero", i)
					}
					continue
				}
				if rec.Leaves[i] != tr.Leaves()[i] {
					t.Fatalf("%s %v alpha=%d: leaf %d mismatch", cfg.p.Name(), cfg.arities, alpha, i)
				}
			}
		}
	}
}

// TestReconstructDoesNotNeedPathSums verifies the security-relevant
// structural property: the sums at the path-digit positions are never
// read, so a malicious-sum there cannot change the reconstruction.
func TestReconstructDoesNotNeedPathSums(t *testing.T) {
	p := prg.New(prg.ChaCha8, 4)
	arities := []int{4, 4}
	tr := Expand(p, block.New(9, 10), arities)
	alpha := 7
	digits := Digits(alpha, arities)
	sums := tr.AllLevelSums()
	// Corrupt the path-digit entries.
	for i := range sums {
		sums[i][digits[i]] = block.New(0xdead, 0xbeef)
	}
	rec := Reconstruct(p, arities, alpha, sums)
	for i, leaf := range rec.Leaves {
		if i == alpha {
			continue
		}
		if leaf != tr.Leaves()[i] {
			t.Fatal("corrupting unused sums changed the reconstruction")
		}
	}
}

func TestXorKnownLeaves(t *testing.T) {
	p := prg.New(prg.AES, 2)
	arities := []int{2, 2, 2}
	tr := Expand(p, block.New(11, 12), arities)
	alpha := 5
	rec := Reconstruct(p, arities, alpha, tr.AllLevelSums())
	want := block.XorAll(tr.Leaves()).Xor(tr.Leaves()[alpha])
	if rec.XorKnownLeaves() != want {
		t.Fatal("XorKnownLeaves mismatch")
	}
}

func TestOpsMatchesFigure6(t *testing.T) {
	cases := []struct {
		p      prg.PRG
		leaves int
		want   int
	}{
		{prg.New(prg.AES, 2), 4, 6},     // Fig 6(a)
		{prg.New(prg.AES, 4), 4, 4},     // Fig 6(b)
		{prg.New(prg.ChaCha8, 2), 4, 3}, // Fig 6(c)
		{prg.New(prg.ChaCha8, 4), 4, 1}, // Fig 6(d)
	}
	for _, c := range cases {
		if got := OpsForTree(c.p, c.leaves); got != c.want {
			t.Errorf("%s: OpsForTree(%d) = %d, want %d", c.p.Name(), c.leaves, got, c.want)
		}
		tr := Expand(c.p, block.Zero, LevelArities(c.leaves, c.p.Arity()))
		if got := tr.Ops(); got != c.want {
			t.Errorf("%s: Tree.Ops = %d, want %d", c.p.Name(), got, c.want)
		}
	}
}

// TestFigure7ReductionRates reproduces §4.1: with ChaCha PRGs and
// ℓ=4096, 4-ary expansion cuts ops ~2.99x vs 2-ary, 32-ary only ~3.86x.
func TestFigure7ReductionRates(t *testing.T) {
	l := 4096
	base := float64(OpsForTree(prg.New(prg.ChaCha8, 2), l))
	r4 := base / float64(OpsForTree(prg.New(prg.ChaCha8, 4), l))
	// The asymptotic 32-ary rate needs an exact power of 32 (otherwise
	// the mixed-radix tail level inflates the op count).
	l32 := 32768
	r32 := float64(OpsForTree(prg.New(prg.ChaCha8, 2), l32)) /
		float64(OpsForTree(prg.New(prg.ChaCha8, 32), l32))
	if r4 < 2.9 || r4 > 3.1 {
		t.Errorf("4-ary reduction = %.2f, want ~3.0", r4)
	}
	if r32 < 3.7 || r32 > 4.0 {
		t.Errorf("32-ary reduction = %.2f, want ~3.86", r32)
	}
}

func TestReconstructProperty(t *testing.T) {
	p := prg.New(prg.ChaCha8, 4)
	arities := []int{4, 4, 4}
	f := func(seedLo, seedHi uint64, alphaRaw uint16) bool {
		alpha := int(alphaRaw) % 64
		tr := Expand(p, block.New(seedLo, seedHi), arities)
		rec := Reconstruct(p, arities, alpha, tr.AllLevelSums())
		for i := range rec.Leaves {
			if i == alpha {
				continue
			}
			if rec.Leaves[i] != tr.Leaves()[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomizedLargeTree(t *testing.T) {
	p := prg.New(prg.ChaCha8, 4)
	arities := LevelArities(4096, 4)
	rng := rand.New(rand.NewSource(42))
	tr := Expand(p, block.New(rng.Uint64(), rng.Uint64()), arities)
	sums := tr.AllLevelSums()
	for trial := 0; trial < 16; trial++ {
		alpha := rng.Intn(4096)
		rec := Reconstruct(p, arities, alpha, sums)
		if rec.Leaves[alpha] != block.Zero {
			t.Fatal("hole not zero")
		}
		// Spot-check a few positions plus the full XOR.
		for _, i := range []int{0, 1, alpha ^ 1, 4095} {
			if i == alpha {
				continue
			}
			if rec.Leaves[i] != tr.Leaves()[i] {
				t.Fatalf("alpha=%d: leaf %d mismatch", alpha, i)
			}
		}
	}
}

func repeat(v, n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = v
	}
	return s
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkExpand4096(b *testing.B) {
	for _, p := range []prg.PRG{prg.New(prg.AES, 2), prg.New(prg.ChaCha8, 4)} {
		p := p
		b.Run(p.Name(), func(b *testing.B) {
			arities := LevelArities(4096, p.Arity())
			b.SetBytes(4096 * 16)
			for i := 0; i < b.N; i++ {
				Expand(p, block.New(1, uint64(i)), arities)
			}
		})
	}
}

func BenchmarkReconstruct4096(b *testing.B) {
	p := prg.New(prg.ChaCha8, 4)
	arities := LevelArities(4096, 4)
	tr := Expand(p, block.New(1, 2), arities)
	sums := tr.AllLevelSums()
	b.SetBytes(4096 * 16)
	for i := 0; i < b.N; i++ {
		Reconstruct(p, arities, i%4096, sums)
	}
}
