// Package arith is a two-party additive secret-sharing engine over
// Z_2^64 — the arithmetic half of the compute model the Ironman paper
// assumes (§2.2): PPML frameworks run linear layers (matrix products)
// on additive shares whose Beaver multiplication triples are the main
// consumer of COT-derived preprocessing, and bridge to Boolean (GMW)
// sharing for the comparisons inside ReLU-style nonlinearities.
//
// A value x is shared as x = x_A + x_B (mod 2^64). Addition and
// scaling by public constants are local; multiplication consumes
// Beaver triples generated from correlated OT via Gilboa's
// bit-decomposition product (gilboa.go), so triple preprocessing draws
// on the same correlation pools — and the same two-directional
// role-switched OT layout (§5.2) — as the GMW engine. Share
// conversions A2B/B2A (convert.go) bridge into internal/gmw over the
// SAME conn and the SAME pools, so one session runs linear algebra
// arithmetic and nonlinearities Boolean without a second transport.
//
// Like the GMW engine, the protocol is positional: both parties must
// issue calls in matching order with matching shapes, and every
// batched operation is a constant number of message flights regardless
// of element count.
package arith

import (
	"crypto/rand"
	"fmt"

	"ironman/internal/aesprg"
	"ironman/internal/block"
	"ironman/internal/cot"
	"ironman/internal/gmw"
	"ironman/internal/obs"
	"ironman/internal/transport"
)

// Share is an additively-shared vector over Z_2^64: each party holds
// one of these and the logical vector is the element-wise sum mod 2^64.
type Share []uint64

// Party is one side of an arithmetic evaluation. Like gmw.Party it
// holds a COT pool per OT direction; Bool is an embedded GMW party
// sharing the same conn and the same pools, so Boolean layers (via
// A2B/B2A) interleave with arithmetic ones on one session.
type Party struct {
	conn transport.Conn
	hash *aesprg.Hash
	// prg is the local randomness source for triple shares and Gilboa
	// masks: seeded once from crypto/rand so hot loops never syscall.
	prg *aesprg.Stream
	// Out: correlations where this party is the OT sender.
	Out *cot.SenderPool
	// In: correlations where this party is the OT receiver.
	In *cot.ReceiverPool
	// Bool evaluates Boolean layers on the same conn and pools; use it
	// with the planes returned by A2B.
	Bool *gmw.Party
	// first breaks message-ordering symmetry; exactly one party has it
	// set (verified by the gmw handshake at construction).
	first bool

	Triples   int // Beaver triples generated (scalar-product equivalents)
	Mults     int // Beaver multiplications consumed (scalar-product equivalents)
	Exchanges int // batched two-flight exchanges (triple gen, opens, B2A)

	// Observability hooks (Observe); all nil-safe and absent by default.
	trace      *obs.Tracer
	tid        int
	mOpens     *obs.Counter // ironman_arith_opens_total
	mOpenWords *obs.Counter // ironman_arith_open_words_total
	mTriples   *obs.Counter // ironman_arith_triples_total
}

// Observe attaches a metrics registry and/or phase tracer: every
// subsequent share open increments
// ironman_arith_{opens,open_words}_total{labels} and records one
// "arith.open" span (thread id 1 for the first party, 2 for the peer),
// and every generated Beaver triple counts toward
// ironman_arith_triples_total{labels}. The embedded Bool party is wired
// up too (gmw metric families, same labels). Either argument may be
// nil; call before the first protocol operation.
func (p *Party) Observe(reg *obs.Registry, tr *obs.Tracer, labels string) {
	p.trace = tr
	p.tid = 2
	if p.first {
		p.tid = 1
	}
	p.mOpens = reg.Counter(obs.Name("ironman_arith_opens_total", labels))
	p.mOpenWords = reg.Counter(obs.Name("ironman_arith_open_words_total", labels))
	p.mTriples = reg.Counter(obs.Name("ironman_arith_triples_total", labels))
	p.Bool.Observe(reg, tr, labels)
}

// NewParty assembles an arithmetic party from one COT pool per OT
// direction and runs the role handshake over conn (the peer must call
// it concurrently with the opposite first flag). The embedded Bool
// party shares conn and both pools: arithmetic word OTs, Boolean bit
// OTs and block OTs all consume the same correlations in lockstep.
func NewParty(conn transport.Conn, out *cot.SenderPool, in *cot.ReceiverPool, first bool) (*Party, error) {
	g, err := gmw.NewParty(conn, out, in, first)
	if err != nil {
		return nil, err
	}
	var seed [block.Size]byte
	if _, err := rand.Read(seed[:]); err != nil {
		return nil, err
	}
	return &Party{
		conn:  conn,
		hash:  aesprg.NewHash(),
		prg:   aesprg.NewStream(block.FromBytes(seed[:])),
		Out:   out,
		In:    in,
		Bool:  g,
		first: first,
	}, nil
}

// NewPrivate builds a share of this party's private input: this party
// holds the values, the peer's share is zero. Both parties must call
// it in matching order, with mine telling whose input it is.
func (p *Party) NewPrivate(vals []uint64, mine bool) Share {
	s := make(Share, len(vals))
	if mine {
		copy(s, vals)
	}
	return s
}

// NewPublic builds a share of a public constant: the first party holds
// the value, the other zero.
func (p *Party) NewPublic(vals []uint64) Share {
	s := make(Share, len(vals))
	if p.first {
		copy(s, vals)
	}
	return s
}

// randomVec draws a fresh local random vector from the party's PRG.
func (p *Party) randomVec(n int) []uint64 {
	v := make([]uint64, n)
	for i := range v {
		v[i] = p.prg.Uint64()
	}
	return v
}

// Add is a free local gate: out = a + b element-wise.
func Add(a, b Share) (Share, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("arith: Add length mismatch: %d vs %d", len(a), len(b))
	}
	out := make(Share, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out, nil
}

// Sub is a free local gate: out = a - b element-wise.
func Sub(a, b Share) (Share, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("arith: Sub length mismatch: %d vs %d", len(a), len(b))
	}
	out := make(Share, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out, nil
}

// AddPublic adds a public vector: only the first party shifts its
// share (the sum of a public constant is free).
func (p *Party) AddPublic(a Share, c []uint64) (Share, error) {
	if len(a) != len(c) {
		return nil, fmt.Errorf("arith: AddPublic length mismatch: %d vs %d", len(a), len(c))
	}
	out := make(Share, len(a))
	copy(out, a)
	if p.first {
		for i := range out {
			out[i] += c[i]
		}
	}
	return out, nil
}

// MulPublic scales by a public constant: both parties scale locally.
func MulPublic(a Share, c uint64) Share {
	out := make(Share, len(a))
	for i := range a {
		out[i] = a[i] * c
	}
	return out
}

// openWords exchanges share vectors (one flight per direction, ordered
// by the first flag) and returns the element-wise sums — the plaintext.
func (p *Party) openWords(mine []uint64) ([]uint64, error) {
	sp := p.trace.Span("arith.open", "arith", p.tid)
	p.mOpens.Inc()
	p.mOpenWords.Add(uint64(len(mine)))
	var peer []uint64
	if p.first {
		if err := transport.SendWords(p.conn, mine); err != nil {
			return nil, err
		}
		got, err := transport.RecvWords(p.conn, len(mine))
		if err != nil {
			return nil, err
		}
		peer = got
	} else {
		got, err := transport.RecvWords(p.conn, len(mine))
		if err != nil {
			return nil, err
		}
		if err := transport.SendWords(p.conn, mine); err != nil {
			return nil, err
		}
		peer = got
	}
	out := make([]uint64, len(mine))
	for i := range out {
		out[i] = mine[i] + peer[i]
	}
	if sp.Live() {
		sp.EndArgs(map[string]any{"words": len(mine)})
	}
	return out, nil
}

// Reveal opens a share to both parties in one exchange.
func (p *Party) Reveal(a Share) ([]uint64, error) {
	out, err := p.openWords(a)
	if err != nil {
		return nil, err
	}
	p.Exchanges++
	return out, nil
}
