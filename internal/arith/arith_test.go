package arith

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"ironman/internal/cot"
	"ironman/internal/transport"
)

// parties wires two arith parties with dealer COT pools in both
// directions; the handshake is interactive so construction runs
// concurrently.
func parties(t *testing.T, budget int) (*Party, *Party) {
	t.Helper()
	connA, connB := transport.Pipe()
	sAB, rAB, err := cot.RandomPools(budget)
	if err != nil {
		t.Fatal(err)
	}
	sBA, rBA, err := cot.RandomPools(budget)
	if err != nil {
		t.Fatal(err)
	}
	type res struct {
		p   *Party
		err error
	}
	ch := make(chan res, 1)
	go func() {
		p, err := NewParty(connA, sAB, rBA, true)
		ch <- res{p, err}
	}()
	b, err := NewParty(connB, sBA, rAB, false)
	if err != nil {
		t.Fatal(err)
	}
	ra := <-ch
	if ra.err != nil {
		t.Fatal(ra.err)
	}
	return ra.p, b
}

// run2 executes the two party closures concurrently.
func run2(t *testing.T, fa, fb func() error) {
	t.Helper()
	var wg sync.WaitGroup
	wg.Add(1)
	var errA error
	go func() {
		defer wg.Done()
		errA = fa()
	}()
	if err := fb(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if errA != nil {
		t.Fatal(errA)
	}
}

func TestLocalOpsAndReveal(t *testing.T) {
	a, b := parties(t, 0)
	xs := []uint64{1, 2, 3, ^uint64(0)}
	ys := []uint64{10, 20, 30, 40}
	eval := func(p *Party, mineX bool) ([]uint64, error) {
		x := p.NewPrivate(xs, mineX)
		y := p.NewPrivate(ys, !mineX)
		s, err := Add(x, y)
		if err != nil {
			return nil, err
		}
		s, err = p.AddPublic(s, []uint64{100, 100, 100, 100})
		if err != nil {
			return nil, err
		}
		s = MulPublic(s, 3)
		d, err := Sub(s, x)
		if err != nil {
			return nil, err
		}
		return p.Reveal(d)
	}
	var openA, openB []uint64
	run2(t, func() error { o, err := eval(a, true); openA = o; return err },
		func() error { o, err := eval(b, false); openB = o; return err })
	for i := range xs {
		want := 3*(xs[i]+ys[i]+100) - xs[i]
		if openA[i] != want || openB[i] != want {
			t.Fatalf("local ops wrong at %d: %d/%d want %d", i, openA[i], openB[i], want)
		}
	}
	if _, err := Add(Share{1}, Share{}); err == nil {
		t.Fatal("Add must reject length mismatch")
	}
	if _, err := Sub(Share{1}, Share{1, 2}); err == nil {
		t.Fatal("Sub must reject length mismatch")
	}
}

func TestTriplesAndMulVec(t *testing.T) {
	const n = 33
	rng := rand.New(rand.NewSource(11))
	xs := make([]uint64, n)
	ys := make([]uint64, n)
	for i := range xs {
		xs[i] = rng.Uint64()
		ys[i] = rng.Uint64()
	}
	a, b := parties(t, 64*n)
	eval := func(p *Party, mineX bool) ([]uint64, error) {
		tr, err := p.NewTriples(n)
		if err != nil {
			return nil, err
		}
		x := p.NewPrivate(xs, mineX)
		y := p.NewPrivate(ys, !mineX)
		z, err := p.MulVec(x, y, tr)
		if err != nil {
			return nil, err
		}
		return p.Reveal(z)
	}
	var openA, openB []uint64
	run2(t, func() error { o, err := eval(a, true); openA = o; return err },
		func() error { o, err := eval(b, false); openB = o; return err })
	for i := range xs {
		want := xs[i] * ys[i]
		if openA[i] != want || openB[i] != want {
			t.Fatalf("MulVec wrong at %d: %x/%x want %x", i, openA[i], openB[i], want)
		}
	}
	if a.Triples != n || a.Mults != n {
		t.Fatalf("counter wrong: %d triples, %d mults", a.Triples, a.Mults)
	}
}

func TestTriplesExhaustAndBudget(t *testing.T) {
	a, b := parties(t, 64*2)
	run2(t, func() error {
		tr, err := a.NewTriples(2)
		if err != nil {
			return err
		}
		if _, err := a.MulVec(make(Share, 3), make(Share, 3), tr); !errors.Is(err, cot.ErrExhausted) {
			t.Errorf("MulVec beyond triple batch: got %v", err)
		}
		// Pool budget exhausted before any traffic: symmetric local error.
		if _, err := a.NewTriples(1); !errors.Is(err, cot.ErrExhausted) {
			t.Errorf("NewTriples beyond pool: got %v", err)
		}
		return nil
	}, func() error {
		tr, err := b.NewTriples(2)
		if err != nil {
			return err
		}
		if _, err := b.MulVec(make(Share, 3), make(Share, 3), tr); !errors.Is(err, cot.ErrExhausted) {
			t.Errorf("MulVec beyond triple batch: got %v", err)
		}
		if _, err := b.NewTriples(1); !errors.Is(err, cot.ErrExhausted) {
			t.Errorf("NewTriples beyond pool: got %v", err)
		}
		return nil
	})
}

func TestMatMul(t *testing.T) {
	const m, k, n = 5, 7, 3
	rng := rand.New(rand.NewSource(21))
	xs := make([]uint64, m*k)
	ys := make([]uint64, k*n)
	for i := range xs {
		xs[i] = rng.Uint64()
	}
	for i := range ys {
		ys[i] = rng.Uint64()
	}
	a, b := parties(t, 64*m*k*n)
	eval := func(p *Party, mineX bool) ([]uint64, error) {
		tr, err := p.NewMatTriple(m, k, n)
		if err != nil {
			return nil, err
		}
		x := p.NewPrivate(xs, mineX)
		y := p.NewPrivate(ys, !mineX)
		z, err := p.MatMul(x, y, tr)
		if err != nil {
			return nil, err
		}
		return p.Reveal(z)
	}
	var openA, openB []uint64
	run2(t, func() error { o, err := eval(a, true); openA = o; return err },
		func() error { o, err := eval(b, false); openB = o; return err })
	want := matMulPlain(xs, ys, m, k, n)
	for i := range want {
		if openA[i] != want[i] || openB[i] != want[i] {
			t.Fatalf("MatMul wrong at %d: %x/%x want %x", i, openA[i], openB[i], want[i])
		}
	}
}

func TestMatTripleSingleUse(t *testing.T) {
	const m, k, n = 2, 3, 2
	a, b := parties(t, 64*m*k*n)
	check := func(p *Party) error {
		tr, err := p.NewMatTriple(m, k, n)
		if err != nil {
			return err
		}
		if _, err := p.MatMul(make(Share, m*k), make(Share, k*n), tr); err != nil {
			return err
		}
		// A second use would let the peer difference the two opened D
		// matrices and learn X1-X2; it must be rejected locally.
		if _, err := p.MatMul(make(Share, m*k), make(Share, k*n), tr); !errors.Is(err, cot.ErrExhausted) {
			t.Errorf("MatMul triple reuse: got %v", err)
		}
		return nil
	}
	run2(t, func() error { return check(a) }, func() error { return check(b) })
}

func TestFixedPointMulTrunc(t *testing.T) {
	f := Fixed{Frac: 16}
	xs := []float64{1.5, -2.25, 0.125, -100.0, 3.14159}
	ys := []float64{2.0, 0.5, -8.0, 0.01, -2.71828}
	n := len(xs)
	a, b := parties(t, 64*n)
	eval := func(p *Party, mineX bool) ([]float64, error) {
		tr, err := p.NewTriples(n)
		if err != nil {
			return nil, err
		}
		x := p.NewPrivate(f.EncodeVec(xs), mineX)
		y := p.NewPrivate(f.EncodeVec(ys), !mineX)
		z, err := p.MulVec(x, y, tr)
		if err != nil {
			return nil, err
		}
		z = p.TruncVec(z, f.Frac)
		open, err := p.Reveal(z)
		if err != nil {
			return nil, err
		}
		return f.DecodeVec(open), nil
	}
	var openA []float64
	run2(t, func() error { o, err := eval(a, true); openA = o; return err },
		func() error { _, err := eval(b, false); return err })
	tol := 2.5 / float64(int64(1)<<16) // decode rounding + trunc off-by-one
	for i := range xs {
		// The protocol computes on the quantized inputs, so compare
		// against the product of the encodings, not the exact reals.
		want := f.Decode(f.Encode(xs[i])) * f.Decode(f.Encode(ys[i]))
		if math.Abs(openA[i]-want) > tol {
			t.Fatalf("fixed mul wrong at %d: %g want %g", i, openA[i], want)
		}
	}
}

func TestA2BB2ARoundTrip(t *testing.T) {
	const n = 50
	rng := rand.New(rand.NewSource(31))
	xs := make([]uint64, n)
	for i := range xs {
		xs[i] = rng.Uint64()
	}
	// Budget: full-width adder ANDs + B2A word OTs.
	a, b := parties(t, 800*n)
	eval := func(p *Party, mineX bool) ([]uint64, error) {
		x := p.NewPrivate(xs, mineX)
		planes, err := p.A2B(x, 64)
		if err != nil {
			return nil, err
		}
		back, err := p.B2A(planes)
		if err != nil {
			return nil, err
		}
		return p.Reveal(back)
	}
	var openA, openB []uint64
	run2(t, func() error { o, err := eval(a, true); openA = o; return err },
		func() error { o, err := eval(b, false); openB = o; return err })
	for i := range xs {
		if openA[i] != xs[i] || openB[i] != xs[i] {
			t.Fatalf("A2B/B2A roundtrip wrong at %d: %x/%x want %x", i, openA[i], openB[i], xs[i])
		}
	}
}

func TestNarrowB2A(t *testing.T) {
	// Boolean-born shares (no A2B): 8-bit planes convert to additive
	// shares of the unsigned 8-bit values.
	const n = 16
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = uint64(i * 16)
	}
	a, b := parties(t, 8*n)
	eval := func(p *Party, mine bool) ([]uint64, error) {
		planes := p.Bool.NewPrivateVec(vals, 8, mine)
		back, err := p.B2A(planes)
		if err != nil {
			return nil, err
		}
		return p.Reveal(back)
	}
	var openA []uint64
	run2(t, func() error { o, err := eval(a, true); openA = o; return err },
		func() error { _, err := eval(b, false); return err })
	for i := range vals {
		if openA[i] != vals[i] {
			t.Fatalf("narrow B2A wrong at %d: %d want %d", i, openA[i], vals[i])
		}
	}
}

// TestArithBooleanPipeline runs the full hybrid flow on one session:
// fixed-point matvec -> truncate -> A2B -> packed GMW ReLU -> B2A ->
// reveal, cross-checked against the plaintext computation.
func TestArithBooleanPipeline(t *testing.T) {
	const h, d = 6, 8
	f := Fixed{Frac: 12}
	rng := rand.New(rand.NewSource(41))
	w := make([]float64, h*d)
	x := make([]float64, d)
	for i := range w {
		w[i] = rng.Float64()*2 - 1
	}
	for i := range x {
		x[i] = rng.Float64()*2 - 1
	}
	budget := 64*h*d + 900*h
	a, b := parties(t, budget)
	eval := func(p *Party, mineW bool) ([]float64, error) {
		tr, err := p.NewMatTriple(h, d, 1)
		if err != nil {
			return nil, err
		}
		ws := p.NewPrivate(f.EncodeVec(w), mineW)
		xs := p.NewPrivate(f.EncodeVec(x), !mineW)
		z, err := p.MatVec(ws, xs, tr)
		if err != nil {
			return nil, err
		}
		z = p.TruncVec(z, f.Frac)
		planes, err := p.A2B(z, 64)
		if err != nil {
			return nil, err
		}
		relu, err := p.Bool.ReLUVec(planes)
		if err != nil {
			return nil, err
		}
		back, err := p.B2A(relu)
		if err != nil {
			return nil, err
		}
		open, err := p.Reveal(back)
		if err != nil {
			return nil, err
		}
		return f.DecodeVec(open), nil
	}
	var openA, openB []float64
	run2(t, func() error { o, err := eval(a, true); openA = o; return err },
		func() error { o, err := eval(b, false); openB = o; return err })
	tol := float64(d+2) / float64(int64(1)<<12)
	for i := 0; i < h; i++ {
		want := 0.0
		for l := 0; l < d; l++ {
			want += w[i*d+l] * x[l]
		}
		if want < 0 {
			want = 0
		}
		if math.Abs(openA[i]-want) > tol || math.Abs(openB[i]-want) > tol {
			t.Fatalf("pipeline wrong at %d: %g/%g want %g", i, openA[i], openB[i], want)
		}
	}
}
