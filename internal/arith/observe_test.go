package arith

import (
	"testing"

	"ironman/internal/obs"
)

// TestObserveOpenAndTriples: the registry totals must track the
// party's Triples counter and every openWords exchange must leave a
// counter bump and a span. The embedded Bool party is wired by the
// same Observe call.
func TestObserveOpenAndTriples(t *testing.T) {
	a, b := parties(t, 64*8)
	reg := obs.NewRegistry()
	tr := obs.NewTracer()
	labels := obs.Labels("party", "a")
	a.Observe(reg, tr, labels)

	run2(t, func() error {
		ta, err := a.NewTriples(4)
		if err != nil {
			return err
		}
		x := a.NewPrivate([]uint64{3, 5, 7, 9}, true)
		y := a.NewPublic([]uint64{2, 2, 2, 2})
		z, err := a.MulVec(x, y, ta)
		if err != nil {
			return err
		}
		_, err = a.Reveal(z)
		return err
	}, func() error {
		tb, err := b.NewTriples(4)
		if err != nil {
			return err
		}
		x := b.NewPrivate([]uint64{0, 0, 0, 0}, false)
		y := b.NewPublic([]uint64{2, 2, 2, 2})
		z, err := b.MulVec(x, y, tb)
		if err != nil {
			return err
		}
		_, err = b.Reveal(z)
		return err
	})

	if got := reg.Counter(obs.Name("ironman_arith_triples_total", labels)).Value(); got != uint64(a.Triples) {
		t.Fatalf("triples counter %d != party total %d", got, a.Triples)
	}
	opens := reg.Counter(obs.Name("ironman_arith_opens_total", labels)).Value()
	words := reg.Counter(obs.Name("ironman_arith_open_words_total", labels)).Value()
	// MulVec opens [d|e] (8 words), Reveal opens z (4 words).
	if opens != 2 || words != 12 {
		t.Fatalf("open accounting: %d opens / %d words, want 2 / 12", opens, words)
	}
	spans := 0
	for _, e := range tr.Events() {
		if e.Name == "arith.open" {
			spans++
		}
	}
	if spans != 2 {
		t.Fatalf("got %d arith.open spans, want 2", spans)
	}
}
