package arith

import "math"

// Fixed is a two's-complement fixed-point encoding over Z_2^64 with
// Frac fractional bits: v encodes as round(v·2^Frac) mod 2^64. A
// product of two encodings carries 2·Frac fractional bits and must be
// rescaled by TruncVec(·, Frac) — the matmul → truncate idiom of
// every fixed-point PPML linear layer.
type Fixed struct {
	Frac int
}

// Encode quantizes a real value.
func (f Fixed) Encode(v float64) uint64 {
	return uint64(int64(math.Round(v * float64(int64(1)<<uint(f.Frac)))))
}

// Decode returns the real value of an encoding (two's complement).
func (f Fixed) Decode(u uint64) float64 {
	return float64(int64(u)) / float64(int64(1)<<uint(f.Frac))
}

// EncodeVec quantizes a vector.
func (f Fixed) EncodeVec(vs []float64) []uint64 {
	out := make([]uint64, len(vs))
	for i, v := range vs {
		out[i] = f.Encode(v)
	}
	return out
}

// DecodeVec decodes a vector.
func (f Fixed) DecodeVec(us []uint64) []float64 {
	out := make([]float64, len(us))
	for i, u := range us {
		out[i] = f.Decode(u)
	}
	return out
}

// TruncVec rescales shares by 2^frac with SecureML-style probabilistic
// local truncation — no communication: the first party logically
// shifts its share, the second negates, shifts, and negates back.
//
// Error bound: writing the shared value as x with |x| <= 2^l (two's
// complement), the result is floor(x/2^frac) + e with |e| <= 1,
// except with probability <= 2^(l+1-64) (over the share randomness)
// the no-wrap assumption fails and the result is off by ~±2^(64-frac).
// Callers must keep values well below 2^63 (fixed-point ML activations
// are <= 2^30 or so, giving failure odds <= 2^-33 per element) and
// must only truncate RANDOMIZED shares — outputs of MulVec/MatMul/B2A,
// not freshly-shared NewPrivate values whose peer share is zero.
func (p *Party) TruncVec(x Share, frac int) Share {
	out := make(Share, len(x))
	for i, v := range x {
		if p.first {
			out[i] = v >> uint(frac)
		} else {
			out[i] = -((-v) >> uint(frac))
		}
	}
	return out
}
