package arith

import (
	"fmt"

	"ironman/internal/cot"
	"ironman/internal/gmw"
	"ironman/internal/transport"
)

// Share conversions (convert.go): the bridges between the additive
// world of linear layers and the Boolean world of comparisons.
//
//   - A2B re-shares an arithmetic vector as XOR-shared bit-planes by
//     running the packed parallel-prefix adder (gmw.AddVec) over the
//     two parties' shares entered as private Boolean inputs: the sum
//     mod 2^width IS the value, so the adder's outputs are Boolean
//     shares of it. Cost: gmw.AdderANDGates(width) AND gates per
//     element in gmw.AdderExchanges(width) exchanges.
//
//   - B2A converts XOR-shared bit-planes back to additive shares with
//     one word OT per bit per element (single direction, the first
//     party sending): b = b_A ⊕ b_B = b_A + b_B - 2·b_A·b_B, and the
//     product b_A·b_B costs one OT with messages (s, s + b_A) mod
//     2^(width-j-1) for plane j — the top plane's product term
//     vanishes mod 2^64 when width = 64, costing no OT at all.
//
// Both directions consume the same pools as everything else; A2B
// draws on both directions (GMW AND gates), B2A only on the
// first-party→second-party pair.

// A2B converts an arithmetic share into XOR-shared bit-planes of the
// value mod 2^width (width = 64 for the full ring; smaller widths
// convert the low bits only, which is sound only when the shared
// values fit). The caller runs Boolean layers on the result via
// p.Bool, then returns with B2A.
func (p *Party) A2B(x Share, width int) ([]gmw.PackedShare, error) {
	if width < 1 || width > 64 {
		return nil, fmt.Errorf("arith: A2B width %d out of range [1,64]", width)
	}
	// Each party enters its own arithmetic share as a private Boolean
	// vector; NewPrivateVec ignores vals unless mine, so passing x for
	// both inputs shares each side's actual words.
	pa := p.Bool.NewPrivateVec(x, width, p.first)
	pb := p.Bool.NewPrivateVec(x, width, !p.first)
	return p.Bool.AddVec(pa, pb)
}

// b2aWidths returns the OT payload widths of one element's B2A: plane
// j's product term is scaled by 2^(j+1), so it only matters mod
// 2^(64-j-1); planes whose width hits zero cost no OT.
func b2aWidths(width int) []int {
	var ws []int
	for j := 0; j < width; j++ {
		if w := 64 - j - 1; w > 0 {
			ws = append(ws, w)
		}
	}
	return ws
}

// B2A converts XOR-shared bit-planes (width = len(planes) <= 64) into
// additive shares of the same values. One batched word-OT exchange,
// first party as sender.
func (p *Party) B2A(planes []gmw.PackedShare) (Share, error) {
	width := len(planes)
	if width < 1 || width > 64 {
		return nil, fmt.Errorf("arith: B2A needs 1..64 planes, got %d", width)
	}
	n := planes[0].Len()
	for j := range planes {
		if planes[j].Len() != n {
			return nil, fmt.Errorf("arith: B2A plane %d length mismatch", j)
		}
	}
	// vals[e] is this party's packed XOR share of element e.
	vals := gmw.UnpackVec(planes)
	perElem := b2aWidths(width)
	cnt := len(perElem)
	need := cnt * n
	if p.first {
		if p.Out.Remaining() < need {
			return nil, fmt.Errorf("arith: B2A of %d elements: %w (need %d COTs, out %d)",
				n, cot.ErrExhausted, need, p.Out.Remaining())
		}
	} else if p.In.Remaining() < need {
		return nil, fmt.Errorf("arith: B2A of %d elements: %w (need %d COTs, in %d)",
			n, cot.ErrExhausted, need, p.In.Remaining())
	}
	widths := make([]int, need)
	for e := 0; e < n; e++ {
		copy(widths[e*cnt:], perElem)
	}
	out := make(Share, n)
	if p.first {
		// Sender: messages (s, s + b_A) per instance; my share gains
		// b_A·2^j + s·2^(j+1) (the -2t split: t = v - s at the peer).
		m0 := make([]uint64, need)
		m1 := make([]uint64, need)
		for e := 0; e < n; e++ {
			var acc uint64
			idx := e * cnt
			for j := 0; j < width; j++ {
				bit := vals[e] >> uint(j) & 1
				acc += bit << uint(j)
				if 64-j-1 <= 0 {
					continue
				}
				s := p.prg.Uint64()
				m0[idx] = s
				m1[idx] = s + bit
				acc += s << uint(j+1)
				idx++
			}
			out[e] = acc
		}
		if err := cot.SendChosenWords(p.conn, p.Out, p.hash, m0, m1, widths); err != nil {
			return nil, err
		}
	} else {
		// Receiver: choice bits are my share bits; v = s + b_A·b_B, and
		// my share gains b_B·2^j - v·2^(j+1).
		choices := make([]uint64, transport.PackedLimbs(need))
		idx := 0
		for e := 0; e < n; e++ {
			for j := 0; j < width; j++ {
				if 64-j-1 <= 0 {
					continue
				}
				choices[idx/64] |= (vals[e] >> uint(j) & 1) << uint(idx%64)
				idx++
			}
		}
		vs, err := cot.ReceiveChosenWords(p.conn, p.In, p.hash, choices, widths)
		if err != nil {
			return nil, err
		}
		for e := 0; e < n; e++ {
			var acc uint64
			idx := e * cnt
			for j := 0; j < width; j++ {
				bit := vals[e] >> uint(j) & 1
				acc += bit << uint(j)
				if 64-j-1 <= 0 {
					continue
				}
				acc -= vs[idx] << uint(j+1)
				idx++
			}
			out[e] = acc
		}
	}
	p.Exchanges++
	return out, nil
}
