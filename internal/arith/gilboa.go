package arith

import (
	"fmt"

	"ironman/internal/cot"
)

// Gilboa bit-decomposition products (gilboa.go): the COT-to-triple
// conversion. A product x·y where this party holds x and the peer
// holds y decomposes as x·y = sum_i y_i·x·2^i: for every bit y_i of
// the peer's operand the parties run one chosen-message word OT
// (cot.SendChosenWords) whose messages are (s_i, s_i + x) mod
// 2^(64-i) under a fresh PRG mask s_i. The sender's product share is
// -sum_i s_i·2^i, the receiver's sum_i v_i·2^i — and because bit i of
// the product only matters mod 2^(64-i), instance i ships only 64-i
// bits per ciphertext (2080 of the naive 4096 bits per side).
//
// A Beaver triple (a, b, c = a·b) combines one Gilboa product per OT
// direction (the two cross terms a_A·b_B and a_B·b_A) with the local
// terms, consuming 64 COTs per direction per triple — the arithmetic
// mirror of the GMW AND gate's one-OT-per-direction cross terms.

// gilboaWidths returns the per-instance payload widths of n Gilboa
// products: 64 instances per product, instance i mod 2^(64-i).
func gilboaWidths(n int) []int {
	widths := make([]int, 64*n)
	for j := 0; j < n; j++ {
		for i := 0; i < 64; i++ {
			widths[64*j+i] = 64 - i
		}
	}
	return widths
}

// mulSend runs the OT-sender half of len(a) Gilboa products against
// the peer's mulRecv, returning this party's additive product shares.
func (p *Party) mulSend(a []uint64, widths []int) ([]uint64, error) {
	n := len(a)
	m0 := make([]uint64, 64*n)
	m1 := make([]uint64, 64*n)
	share := make([]uint64, n)
	for j, aj := range a {
		var acc uint64
		for i := 0; i < 64; i++ {
			s := p.prg.Uint64()
			m0[64*j+i] = s
			m1[64*j+i] = s + aj
			acc -= s << uint(i)
		}
		share[j] = acc
	}
	if err := cot.SendChosenWords(p.conn, p.Out, p.hash, m0, m1, widths); err != nil {
		return nil, err
	}
	return share, nil
}

// mulRecv runs the OT-receiver half of len(b) Gilboa products: the
// choice bits of product j are exactly the bits of b[j], so b itself
// is the limb-packed choice vector.
func (p *Party) mulRecv(b []uint64, widths []int) ([]uint64, error) {
	n := len(b)
	vs, err := cot.ReceiveChosenWords(p.conn, p.In, p.hash, b, widths)
	if err != nil {
		return nil, err
	}
	share := make([]uint64, n)
	for j := range share {
		var acc uint64
		for i := 0; i < 64; i++ {
			acc += vs[64*j+i] << uint(i)
		}
		share[j] = acc
	}
	return share, nil
}

// checkBudget fails a Gilboa layer of n products per direction before
// any traffic when the pools cannot cover it; pools advance in
// lockstep so both sides fail symmetrically (the gmw discipline).
func (p *Party) checkBudget(n int) error {
	need := 64 * n
	if p.Out.Remaining() < need || p.In.Remaining() < need {
		return fmt.Errorf("arith: Gilboa layer of %d products: %w (need %d COTs/direction, out %d, in %d)",
			n, cot.ErrExhausted, need, p.Out.Remaining(), p.In.Remaining())
	}
	return nil
}

// crossProducts runs both directions' Gilboa products in one exchange
// in the gmw sense — two OT passes serialized by the first flag, the
// same flight pattern (and the same Exchanges accounting) as a packed
// AND layer: this party's products of a (as OT sender) and of b (as
// OT receiver, against the peer's a). Returns the two share vectors
// summed element-wise.
func (p *Party) crossProducts(a, b []uint64) ([]uint64, error) {
	widths := gilboaWidths(len(a))
	var sendShare, recvShare []uint64
	send := func() error {
		s, err := p.mulSend(a, widths)
		sendShare = s
		return err
	}
	recv := func() error {
		r, err := p.mulRecv(b, widths)
		recvShare = r
		return err
	}
	var err error
	if p.first {
		if err = send(); err == nil {
			err = recv()
		}
	} else {
		if err = recv(); err == nil {
			err = send()
		}
	}
	if err != nil {
		return nil, err
	}
	out := make([]uint64, len(a))
	for i := range out {
		out[i] = sendShare[i] + recvShare[i]
	}
	p.Exchanges++
	return out, nil
}

// Triples is a batch of Beaver triples (a, b, c = a·b element-wise),
// consumed front to back by MulVec like a correlation pool.
type Triples struct {
	A, B, C Share
	used    int
}

// Remaining reports how many unconsumed triples are left.
func (t *Triples) Remaining() int { return len(t.A) - t.used }

func (t *Triples) take(n int) (a, b, c Share, err error) {
	if t.Remaining() < n {
		return nil, nil, nil, fmt.Errorf("arith: need %d triples, have %d: %w", n, t.Remaining(), cot.ErrExhausted)
	}
	off := t.used
	t.used += n
	return t.A[off : off+n], t.B[off : off+n], t.C[off : off+n], nil
}

// NewTriples generates n Beaver triples from correlated OT: both
// parties sample local random a and b shares, then one batched Gilboa
// exchange (64 COTs per direction per triple) yields shares of the
// cross terms a_A·b_B + a_B·b_A, completing c = a·b.
func (p *Party) NewTriples(n int) (*Triples, error) {
	if err := p.checkBudget(n); err != nil {
		return nil, err
	}
	a := p.randomVec(n)
	b := p.randomVec(n)
	c := make([]uint64, n)
	for i := range c {
		c[i] = a[i] * b[i]
	}
	if n > 0 {
		cross, err := p.crossProducts(a, b)
		if err != nil {
			return nil, err
		}
		for i := range c {
			c[i] += cross[i]
		}
	}
	p.Triples += n
	p.mTriples.Add(uint64(n))
	return &Triples{A: a, B: b, C: c}, nil
}

// MulVec multiplies two shared vectors element-wise, consuming len(x)
// Beaver triples and ONE open exchange: d = x-a and e = y-b are
// revealed together, then z = c + d·b + e·a (+ d·e at the first
// party) is local.
func (p *Party) MulVec(x, y Share, t *Triples) (Share, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("arith: MulVec length mismatch: %d vs %d", len(x), len(y))
	}
	n := len(x)
	a, b, c, err := t.take(n)
	if err != nil {
		return nil, err
	}
	// One concatenated open: [d | e].
	de := make([]uint64, 2*n)
	for i := 0; i < n; i++ {
		de[i] = x[i] - a[i]
		de[n+i] = y[i] - b[i]
	}
	open, err := p.openWords(de)
	if err != nil {
		return nil, err
	}
	d, e := open[:n], open[n:]
	z := make(Share, n)
	for i := 0; i < n; i++ {
		z[i] = c[i] + d[i]*b[i] + e[i]*a[i]
		if p.first {
			z[i] += d[i] * e[i]
		}
	}
	p.Mults += n
	p.Exchanges++
	return z, nil
}

// MatTriple is a Beaver matrix triple: random shared A (m×k), B
// (k×n) and shares of C = A·B, all row-major. One triple serves one
// MatMul of the same shape; MatMul enforces the single-use contract.
type MatTriple struct {
	M, K, N int
	A, B, C Share
	used    bool
}

// matMulPlain is the local row-major product a (m×k) · b (k×n).
func matMulPlain(a, b []uint64, m, k, n int) []uint64 {
	out := make([]uint64, m*n)
	for i := 0; i < m; i++ {
		for l := 0; l < k; l++ {
			ail := a[i*k+l]
			if ail == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				out[i*n+j] += ail * b[l*n+j]
			}
		}
	}
	return out
}

// NewMatTriple generates a Beaver matrix triple of shape (m×k)·(k×n)
// from correlated OT. The cross terms A_mine·B_peer and A_peer·B_mine
// are m·k·n scalar Gilboa products flattened into ONE batched
// exchange per direction (64·m·k·n COTs per direction), summed over
// the inner dimension locally — so the online MatMul only ever opens
// D = X-A and E = Y-B, never per-output-element masks.
func (p *Party) NewMatTriple(m, k, n int) (*MatTriple, error) {
	if m < 1 || k < 1 || n < 1 {
		return nil, fmt.Errorf("arith: MatTriple needs positive dims, got %dx%dx%d", m, k, n)
	}
	prods := m * k * n
	if err := p.checkBudget(prods); err != nil {
		return nil, err
	}
	a := p.randomVec(m * k)
	b := p.randomVec(k * n)
	c := matMulPlain(a, b, m, k, n)
	// Flatten the cross products: index (i, l, j) pairs my A[i,l]
	// (OT-sender operand) with the peer's B[l,j] (receiver choices are
	// my own B[l,j] for the mirrored product).
	aFlat := make([]uint64, prods)
	bFlat := make([]uint64, prods)
	idx := 0
	for i := 0; i < m; i++ {
		for l := 0; l < k; l++ {
			for j := 0; j < n; j++ {
				aFlat[idx] = a[i*k+l]
				bFlat[idx] = b[l*n+j]
				idx++
			}
		}
	}
	cross, err := p.crossProducts(aFlat, bFlat)
	if err != nil {
		return nil, err
	}
	idx = 0
	for i := 0; i < m; i++ {
		for l := 0; l < k; l++ {
			for j := 0; j < n; j++ {
				c[i*n+j] += cross[idx]
				idx++
			}
		}
	}
	p.Triples += prods
	p.mTriples.Add(uint64(prods))
	return &MatTriple{M: m, K: k, N: n, A: a, B: b, C: c}, nil
}

// MatMul multiplies shared row-major matrices x (m×k) and y (k×n)
// with a matching Beaver matrix triple, consuming ONE open exchange
// (D and E revealed together): Z = C + D·B + A·E (+ D·E at the first
// party). The triple is single-use — opening a second D = X'-A under
// the same A would reveal X-X' to the peer — so reuse is rejected,
// matching the scalar path's Triples cursor.
func (p *Party) MatMul(x, y Share, t *MatTriple) (Share, error) {
	m, k, n := t.M, t.K, t.N
	if t.used {
		return nil, fmt.Errorf("arith: MatMul triple already consumed: %w", cot.ErrExhausted)
	}
	if len(x) != m*k || len(y) != k*n {
		return nil, fmt.Errorf("arith: MatMul shape mismatch: got %d and %d elements for %dx%d·%dx%d",
			len(x), len(y), m, k, k, n)
	}
	t.used = true
	de := make([]uint64, m*k+k*n)
	for i := range x {
		de[i] = x[i] - t.A[i]
	}
	for i := range y {
		de[m*k+i] = y[i] - t.B[i]
	}
	open, err := p.openWords(de)
	if err != nil {
		return nil, err
	}
	d, e := open[:m*k], open[m*k:]
	z := Share(matMulPlain(d, t.B, m, k, n))
	ae := matMulPlain(t.A, e, m, k, n)
	for i := range z {
		z[i] += t.C[i] + ae[i]
	}
	if p.first {
		dePart := matMulPlain(d, e, m, k, n)
		for i := range z {
			z[i] += dePart[i]
		}
	}
	p.Mults += m * k * n
	p.Exchanges++
	return z, nil
}

// MatVec is MatMul specialized to a matrix–vector product (n = 1).
func (p *Party) MatVec(mat, vec Share, t *MatTriple) (Share, error) {
	if t.N != 1 {
		return nil, fmt.Errorf("arith: MatVec needs an n=1 triple, got n=%d", t.N)
	}
	return p.MatMul(mat, vec, t)
}
