// Package extension defines the pluggable correlated-OT extension
// backend API: the one contract a protocol family implements to plug
// into every consumer layer — the public ironman endpoints, the
// prefetching pools, the otserv dispenser's HELLO negotiation, and the
// benchmark harness. Two backends ship: "ferret" (internal/ferret,
// PCG-style LPN; the paper's design point, lowest bytes/COT) and
// "softspoken" (internal/softspoken, small-field subfield-VOLE; one
// message flight per batch, no LPN compute). DESIGN.md's "Extension
// backends" section has the selection guidance.
//
// A Backend is stateless and registered by name; endpoints produced by
// it carry all per-instance state. Every backend must uphold the two
// repo-wide guarantees its consumers rely on: a byte-identical wire
// transcript at any Options.Workers count, and an exact Cost model —
// the extend bench asserts measured transcripts against
// Cost().ExtendBytes byte-for-byte.
package extension

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"ironman/internal/block"
	"ironman/internal/ferret"
	"ironman/internal/lpn"
	"ironman/internal/obs"
	"ironman/internal/transport"
)

// Params re-exports the Table 4 parameter-set shape all backends are
// keyed on. Ferret consumes the full LPN geometry; SoftSpoken only the
// batch size (NumOTs), so one negotiated set drives either backend.
type Params = ferret.Params

// Options is the backend-independent endpoint configuration; each
// backend maps the fields it understands onto its own options and
// ignores the rest.
type Options struct {
	// Workers caps the goroutines of Extend's local phases. 0 selects
	// runtime.GOMAXPROCS. Never affects the wire transcript.
	Workers int
	// Seed, when non-zero, makes every endpoint-local random draw
	// deterministic (NOT secure; determinism tests and benchmarks).
	Seed block.Block
	// Trace records the backend's Extend phase spans when non-nil.
	Trace *obs.Tracer
	// BinaryAES selects the classic binary AES GGM construction on
	// backends with an m-ary tree choice (ferret; SoftSpoken's trees
	// are always binary AES).
	BinaryAES bool
	// Code injects a pre-derived LPN code on backends that use one
	// (ferret); callers opening many endpoints on one parameter set
	// share the derivation this way.
	Code *lpn.Code
	// FieldBits is the SoftSpoken subfield size k (1, 2, 4 or 8; 0
	// selects the backend default). Ignored by ferret.
	FieldBits int
}

// Cost is a backend's exact per-Extend wire model plus its setup
// profile, for routing sessions by workload and for the bench's
// model-vs-measured assertions.
type Cost struct {
	// ExtendBytes is the exact transcript size (both directions) of
	// one Extend batch.
	ExtendBytes int64 `json:"extend_bytes"`
	// BytesPerCOT is ExtendBytes amortized over the batch.
	BytesPerCOT float64 `json:"bytes_per_cot"`
	// Rounds is the number of one-way message flights per Extend.
	Rounds int `json:"rounds"`
	// BaseOTs is the number of public-key base OTs setup consumes.
	BaseOTs int `json:"base_ots"`
}

// Sender is an initialized extension sender: the holder of the global
// correlation Δ. Extend yields one batch of z blocks with
// z = y ⊕ x·Δ against the peer receiver's (x, y).
type Sender interface {
	Extend() ([]block.Block, error)
	Delta() block.Block
}

// Receiver is an initialized extension receiver; Extend yields one
// batch of choice bits x and blocks y.
type Receiver interface {
	Extend() ([]bool, []block.Block, error)
}

// Backend is one OT-extension protocol family. Implementations are
// stateless values safe for concurrent use; all per-instance state
// lives in the endpoints they construct.
type Backend interface {
	// Name is the registry key ("ferret", "softspoken").
	Name() string
	// Batch is the usable correlations one Extend yields under p.
	Batch(p Params) int
	// Cost is the exact wire model for one Extend under (p, o).
	Cost(p Params, o Options) Cost
	// NewSender initializes the sending endpoint over conn; the peer
	// must run NewReceiver concurrently (base OTs + setup flights).
	NewSender(conn transport.Conn, delta block.Block, p Params, o Options) (Sender, error)
	// NewReceiver initializes the receiving endpoint.
	NewReceiver(conn transport.Conn, p Params, o Options) (Receiver, error)
	// DealPair returns an initialized in-process pair whose setup
	// comes from a local trusted dealer instead of base OTs (NOT
	// secure; tests, benchmarks, and the dispenser's in-process
	// generator use it).
	DealPair(connS, connR transport.Conn, delta block.Block, p Params, o Options) (Sender, Receiver, error)
}

// Default is the backend used when no selection is made anywhere: the
// paper's design point.
const Default = "ferret"

// ErrUnknown is the sentinel wrapped by ByName for unregistered
// backend names; match with errors.Is.
var ErrUnknown = errors.New("extension: unknown backend")

var (
	mu       sync.RWMutex
	registry = map[string]Backend{}
)

// Register adds a backend under its Name; registering a duplicate
// name panics (two protocol families must not alias).
func Register(b Backend) {
	mu.Lock()
	defer mu.Unlock()
	name := b.Name()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("extension: backend %q registered twice", name))
	}
	registry[name] = b
}

// ByName resolves a backend; "" selects Default. Unknown names fail
// with an ErrUnknown-wrapping error naming the valid choices.
func ByName(name string) (Backend, error) {
	if name == "" {
		name = Default
	}
	mu.RLock()
	defer mu.RUnlock()
	if b, ok := registry[name]; ok {
		return b, nil
	}
	return nil, fmt.Errorf("%w %q (valid: %s)", ErrUnknown, name, namesLocked())
}

// Names lists the registered backends, sorted.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func namesLocked() string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return strings.Join(names, " ")
}

// ExtendLockstep runs one iteration of both endpoints of an
// in-process pair concurrently and joins the results; serving layers
// (pool.Dealt sources) use it to keep a dealt pair's iteration counts
// aligned under one driver.
func ExtendLockstep(s Sender, r Receiver) ([]block.Block, []bool, []block.Block, error) {
	var z []block.Block
	var serr error
	done := make(chan struct{})
	go func() {
		z, serr = s.Extend()
		close(done)
	}()
	bits, y, rerr := r.Extend()
	<-done
	if serr != nil {
		return nil, nil, nil, serr
	}
	if rerr != nil {
		return nil, nil, nil, rerr
	}
	return z, bits, y, nil
}
