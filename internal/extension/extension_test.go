package extension

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"

	"ironman/internal/block"
	"ironman/internal/ferret"
	"ironman/internal/transport"
)

func smallParams(t *testing.T) Params {
	t.Helper()
	p := ferret.TestParams(600, 32, 128, 8)
	return p
}

func TestRegistry(t *testing.T) {
	names := Names()
	if len(names) != 2 || names[0] != "ferret" || names[1] != "softspoken" {
		t.Fatalf("Names() = %v, want [ferret softspoken]", names)
	}
	b, err := ByName("")
	if err != nil || b.Name() != Default {
		t.Fatalf("ByName(\"\") = %v, %v; want the %q backend", b, err, Default)
	}
	if _, err := ByName("iknp-classic"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("unknown backend: got %v, want ErrUnknown", err)
	} else if !strings.Contains(err.Error(), "ferret softspoken") {
		t.Fatalf("unknown-backend error %q does not list the valid names", err)
	}
}

func checkCorrelation(t *testing.T, delta block.Block, z []block.Block, bits []bool, y []block.Block) {
	t.Helper()
	for i := range z {
		want := y[i]
		if bits[i] {
			want = want.Xor(delta)
		}
		if z[i] != want {
			t.Fatalf("correlation broken at %d", i)
		}
	}
}

// TestBackendsCorrectAndCostExact runs both backends through the same
// DealPair + lockstep path and asserts (a) the Δ-correlation on every
// output and (b) the measured wire transcript against Cost's
// ExtendBytes, byte for byte.
func TestBackendsCorrectAndCostExact(t *testing.T) {
	p := smallParams(t)
	delta := block.New(0x1d1d, 0x2e2e)
	o := Options{Seed: block.New(0xc0de, 0x5eed)}
	const iters = 3
	for _, name := range Names() {
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		connS, connR := transport.Pipe()
		s, r, err := b.DealPair(connS, connR, delta, p, o)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := s.Delta(); got != delta {
			t.Fatalf("%s: Delta() = %v, want %v", name, got, delta)
		}
		batch := b.Batch(p)
		for it := 0; it < iters; it++ {
			z, bits, y, err := ExtendLockstep(s, r)
			if err != nil {
				t.Fatalf("%s it=%d: %v", name, it, err)
			}
			if len(z) != batch {
				t.Fatalf("%s: Extend yielded %d, Batch says %d", name, len(z), batch)
			}
			checkCorrelation(t, delta, z, bits, y)
		}
		cost := b.Cost(p, o)
		if got, want := connS.Stats().TotalBytes(), iters*cost.ExtendBytes; got != want {
			t.Fatalf("%s: measured %d wire bytes over %d iterations, Cost models %d", name, got, iters, want)
		}
		if cost.BytesPerCOT != float64(cost.ExtendBytes)/float64(batch) {
			t.Fatalf("%s: BytesPerCOT inconsistent with ExtendBytes/Batch", name)
		}
		if cost.BaseOTs != 128 {
			t.Fatalf("%s: BaseOTs = %d, want 128", name, cost.BaseOTs)
		}
	}
}

// recordingConn logs sent frames for transcript comparison.
type recordingConn struct {
	transport.Conn
	log bytes.Buffer
}

func (c *recordingConn) Send(p []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(p)))
	c.log.Write(hdr[:])
	c.log.Write(p)
	return c.Conn.Send(p)
}

// TestTranscriptDeterminismPerBackend pins the workers-1-vs-N
// byte-identical transcript guarantee through the Backend API for
// every registered backend.
func TestTranscriptDeterminismPerBackend(t *testing.T) {
	p := smallParams(t)
	delta := block.New(0xaaaa, 0x5555)
	run := func(name string, workers int) []byte {
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		pS, pR := transport.Pipe()
		connS := &recordingConn{Conn: pS}
		connR := &recordingConn{Conn: pR}
		s, r, err := b.DealPair(connS, connR, delta, p, Options{Seed: block.New(0xde7, 0), Workers: workers})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for it := 0; it < 2; it++ {
			z, bits, y, err := ExtendLockstep(s, r)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			checkCorrelation(t, delta, z, bits, y)
		}
		return append(connS.log.Bytes(), connR.log.Bytes()...)
	}
	for _, name := range Names() {
		base := run(name, 1)
		for _, workers := range []int{2, 4} {
			if got := run(name, workers); !bytes.Equal(base, got) {
				t.Fatalf("%s: workers=%d changed the transcript", name, workers)
			}
		}
	}
}
