package extension

import (
	"math/bits"

	"ironman/internal/block"
	"ironman/internal/ferret"
	"ironman/internal/ggm"
	"ironman/internal/prg"
	"ironman/internal/transport"
)

func init() { Register(ferretBackend{}) }

// ferretBackend adapts internal/ferret (PCG-style LPN extension, the
// paper's design point) to the Backend contract.
type ferretBackend struct{}

func (ferretBackend) Name() string { return "ferret" }

// Batch: each Extend yields N outputs and re-reserves the tail for the
// next iteration.
func (ferretBackend) Batch(p Params) int { return p.Usable() }

func (ferretBackend) options(o Options) ferret.Options {
	fo := ferret.Options{Workers: o.Workers, Seed: o.Seed, Trace: o.Trace, Code: o.Code}
	if o.BinaryAES {
		fo.PRG = prg.New(prg.AES, 2)
	}
	return fo
}

// Per-gadget chosen-OT wire cost: one packed choice byte from the
// receiver plus two ciphertext blocks from the sender (cot.SendChosen
// with a single instance, which is how spcot's sequential per-tree
// flights always invoke it).
const chosenOTBytes = 1 + 2*block.Size

// Cost models one Extend's SPCOT puncturing traffic exactly: per tree,
// every binary GGM level is one direct chosen OT; every m-ary level is
// an all-but-one transfer (log2(m) gadget chosen OTs plus m masked
// leaf blocks); plus the tree's node-recovery block. The LPN encode is
// local. Verified byte-for-byte against the measured transcript by the
// extend bench.
func (b ferretBackend) Cost(p Params, o Options) Cost {
	arity := 4
	if o.BinaryAES {
		arity = 2
	}
	perTree := int64(block.Size) // node-recovery block
	flights := 0
	for _, a := range ggm.LevelArities(p.L, arity) {
		if a == 2 {
			perTree += chosenOTBytes
			flights += 2
		} else {
			lg := bits.TrailingZeros(uint(a))
			perTree += int64(lg)*chosenOTBytes + int64(a)*block.Size
			flights += 2 * lg
		}
	}
	extend := int64(p.T) * perTree
	return Cost{
		ExtendBytes: extend,
		BytesPerCOT: float64(extend) / float64(b.Batch(p)),
		Rounds:      p.T * flights,
		BaseOTs:     128, // IKNP init (skipped by DealPair)
	}
}

type ferretSender struct{ f *ferret.Sender }

func (s ferretSender) Extend() ([]block.Block, error) { return s.f.Extend() }
func (s ferretSender) Delta() block.Block             { return s.f.Delta }

type ferretReceiver struct{ f *ferret.Receiver }

func (r ferretReceiver) Extend() ([]bool, []block.Block, error) {
	out, err := r.f.Extend()
	if err != nil {
		return nil, nil, err
	}
	return out.Bits, out.Blocks, nil
}

func (b ferretBackend) NewSender(conn transport.Conn, delta block.Block, p Params, o Options) (Sender, error) {
	f, err := ferret.NewSender(conn, delta, p, b.options(o))
	if err != nil {
		return nil, err
	}
	return ferretSender{f}, nil
}

func (b ferretBackend) NewReceiver(conn transport.Conn, p Params, o Options) (Receiver, error) {
	f, err := ferret.NewReceiver(conn, p, b.options(o))
	if err != nil {
		return nil, err
	}
	return ferretReceiver{f}, nil
}

func (b ferretBackend) DealPair(connS, connR transport.Conn, delta block.Block, p Params, o Options) (Sender, Receiver, error) {
	fs, fr, err := ferret.DealPools(connS, connR, delta, p, b.options(o))
	if err != nil {
		return nil, nil, err
	}
	return ferretSender{fs}, ferretReceiver{fr}, nil
}
