package extension

import (
	"ironman/internal/block"
	"ironman/internal/softspoken"
	"ironman/internal/transport"
)

func init() { Register(softSpokenBackend{}) }

// softSpokenBackend adapts internal/softspoken (small-field
// subfield-VOLE, eprint 2022/192) to the Backend contract. The
// softspoken endpoints satisfy the Sender/Receiver interfaces
// directly; only construction needs adapting.
type softSpokenBackend struct{}

func (softSpokenBackend) Name() string { return "softspoken" }

// Batch: SoftSpoken has no LPN reserve — a parameter set's nominal
// NumOTs is produced wholesale. Parameter sets without a nominal count
// (tests) fall back to the ferret-comparable Usable(), rounded to the
// byte multiple the construction needs.
func (softSpokenBackend) Batch(p Params) int {
	if p.NumOTs > 0 {
		return p.NumOTs
	}
	return p.Usable() &^ 7
}

func (softSpokenBackend) options(o Options) softspoken.Options {
	return softspoken.Options{FieldBits: o.FieldBits, Workers: o.Workers, Seed: o.Seed, Trace: o.Trace}
}

func fieldBits(o Options) int {
	if o.FieldBits == 0 {
		return softspoken.DefaultFieldBits
	}
	return o.FieldBits
}

// Cost: one receiver→sender message per Extend, sized exactly by
// softspoken.WireBytes (asserted byte-for-byte by the extend bench).
func (b softSpokenBackend) Cost(p Params, o Options) Cost {
	n := b.Batch(p)
	extend := softspoken.WireBytes(n, fieldBits(o))
	return Cost{
		ExtendBytes: extend,
		BytesPerCOT: float64(extend) / float64(n),
		Rounds:      1,
		BaseOTs:     128, // Chou-Orlandi setup (skipped by DealPair)
	}
}

func (b softSpokenBackend) NewSender(conn transport.Conn, delta block.Block, p Params, o Options) (Sender, error) {
	s, err := softspoken.NewSender(conn, delta, b.Batch(p), b.options(o))
	if err != nil {
		return nil, err
	}
	return s, nil
}

func (b softSpokenBackend) NewReceiver(conn transport.Conn, p Params, o Options) (Receiver, error) {
	r, err := softspoken.NewReceiver(conn, b.Batch(p), b.options(o))
	if err != nil {
		return nil, err
	}
	return r, nil
}

func (b softSpokenBackend) DealPair(connS, connR transport.Conn, delta block.Block, p Params, o Options) (Sender, Receiver, error) {
	s, r, err := softspoken.DealPair(connS, connR, delta, b.Batch(p), b.options(o))
	if err != nil {
		return nil, nil, err
	}
	return s, r, nil
}
