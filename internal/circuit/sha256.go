package circuit

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

var sha256K = [64]uint64{
	0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
	0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
	0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
	0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
	0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
	0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
	0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
	0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
}

// BuildSHA256 constructs the SHA-256 compression-function circuit:
// inputs (512-bit message block, 256-bit chaining value), output (new
// 256-bit chaining value). Bytes use BytesBits layout; the chaining
// value is the big-endian digest encoding, so feeding the standard IV
// and a padded single-block message yields the message digest
// directly.
//
// Ch and Maj cost one AND per bit (Ch = g^(e&(f^g)), Maj =
// b^((a^b)&(c^b))); the Sigma rotations are free wire permutations.
// Multi-operand additions go through a carry-save tree into one
// Sklansky prefix add each, keeping the per-round AND depth at ~9
// instead of one ripple chain per addend.
//
// The circuit is self-checked against crypto/sha256 before it is
// returned.
func BuildSHA256() (*Circuit, error) {
	b := NewBuilder()
	blk := b.Input(512)
	chain := b.Input(256)

	// Message schedule.
	w := make([][]int32, 64)
	for t := 0; t < 16; t++ {
		w[t] = beWord(blk, t)
	}
	for t := 16; t < 64; t++ {
		s0 := b.XorVec(b.XorVec(rotr(w[t-15], 7), rotr(w[t-15], 18)), shr(b, w[t-15], 3))
		s1 := b.XorVec(b.XorVec(rotr(w[t-2], 17), rotr(w[t-2], 19)), shr(b, w[t-2], 10))
		w[t] = b.SumMany(s1, w[t-7], s0, w[t-16])
	}

	// Working variables a..h = v[0..7].
	var v [8][]int32
	for i := range v {
		v[i] = beWord(chain, i)
	}
	h0 := v
	for t := 0; t < 64; t++ {
		e, f, g := v[4], v[5], v[6]
		bigS1 := b.XorVec(b.XorVec(rotr(e, 6), rotr(e, 11)), rotr(e, 25))
		ch := make([]int32, 32)
		for i := range ch {
			ch[i] = b.Xor(g[i], b.And(e[i], b.Xor(f[i], g[i])))
		}
		t1 := b.SumMany(v[7], bigS1, ch, b.ConstVec(sha256K[t], 32), w[t])
		a, c := v[0], v[2]
		bigS0 := b.XorVec(b.XorVec(rotr(a, 2), rotr(a, 13)), rotr(a, 22))
		maj := make([]int32, 32)
		for i := range maj {
			maj[i] = b.Xor(v[1][i], b.And(b.Xor(a[i], v[1][i]), b.Xor(c[i], v[1][i])))
		}
		t2 := b.Add(bigS0, maj)
		v[7], v[6], v[5] = v[6], v[5], v[4]
		v[4] = b.Add(v[3], t1)
		v[3], v[2], v[1] = v[2], v[1], v[0]
		v[0] = b.Add(t1, t2)
	}

	out := make([]int32, 256)
	for i := range v {
		word := b.Add(h0[i], v[i])
		// Word i occupies output bytes 4i..4i+3 big-endian.
		for j := 0; j < 4; j++ {
			copy(out[8*(4*i+j):], word[(3-j)*8:(3-j)*8+8])
		}
	}
	c, err := b.Finish(out)
	if err != nil {
		return nil, err
	}
	if err := checkSHA256(c); err != nil {
		return nil, err
	}
	return c, nil
}

// beWord extracts 32-bit word t from a BytesBits vector, big-endian:
// bit i of the word is bit i%8 of byte 4t+3-i/8. Free relabeling.
func beWord(bits []int32, t int) []int32 {
	w := make([]int32, 32)
	for i := range w {
		w[i] = bits[8*(4*t+3-i/8)+i%8]
	}
	return w
}

// rotr is the free 32-bit rotate right.
func rotr(x []int32, r int) []int32 {
	out := make([]int32, 32)
	for i := range out {
		out[i] = x[(i+r)%32]
	}
	return out
}

// shr is the 32-bit logical shift right (zero fill).
func shr(b *Builder, x []int32, r int) []int32 {
	out := make([]int32, 32)
	for i := range out {
		if i+r < 32 {
			out[i] = x[i+r]
		} else {
			out[i] = b.Const(0)
		}
	}
	return out
}

// sha256IV is the standard initial chaining value in digest encoding.
func sha256IV() [32]byte {
	var iv [32]byte
	for i, h := range [8]uint32{
		0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
		0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
	} {
		binary.BigEndian.PutUint32(iv[4*i:], h)
	}
	return iv
}

// sha256PadBlock pads a message of at most 55 bytes into its single
// SHA-256 block.
func sha256PadBlock(msg []byte) ([64]byte, error) {
	var blk [64]byte
	if len(msg) > 55 {
		return blk, fmt.Errorf("circuit: sha256PadBlock: message %d bytes does not fit one block", len(msg))
	}
	copy(blk[:], msg)
	blk[len(msg)] = 0x80
	binary.BigEndian.PutUint64(blk[56:], uint64(len(msg))*8)
	return blk, nil
}

func checkSHA256(c *Circuit) error {
	long := bytes.Repeat([]byte{0xa5, 0x3c, 0x7e}, 19)[:55]
	for _, msg := range [][]byte{[]byte("abc"), {}, long} {
		blk, err := sha256PadBlock(msg)
		if err != nil {
			return err
		}
		iv := sha256IV()
		want := sha256.Sum256(msg)
		got, err := c.EvalPlain([][]bool{BytesBits(blk[:]), BytesBits(iv[:])})
		if err != nil {
			return fmt.Errorf("sha256 self-check: %w", err)
		}
		if !bytes.Equal(BitsBytes(got[0]), want[:]) {
			return fmt.Errorf("sha256 self-check: circuit disagrees with crypto/sha256 on %q", msg)
		}
	}
	return nil
}
