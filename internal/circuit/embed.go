package circuit

import (
	"bytes"
	_ "embed"
	"fmt"
	"sync"
)

// The embedded reference circuits are generated — not downloaded — by
// the deterministic builders in this package (see gen/main.go), each
// self-checked against the standard library at build time. Regenerate
// with `go run ./internal/circuit/gen` after changing a builder.
var (
	//go:embed testdata/aes128.btl.gz
	aes128Data []byte
	//go:embed testdata/sha256.btl.gz
	sha256Data []byte
	//go:embed testdata/div64.btl.gz
	div64Data []byte
)

func mustLoad(name string, data []byte) func() *Circuit {
	return sync.OnceValue(func() *Circuit {
		c, err := Load(bytes.NewReader(data))
		if err != nil {
			panic(fmt.Sprintf("circuit: embedded %s circuit corrupt: %v", name, err))
		}
		return c
	})
}

var (
	aes128Once = mustLoad("aes128", aes128Data)
	sha256Once = mustLoad("sha256", sha256Data)
	div64Once  = mustLoad("div64", div64Data)
)

// AES128 returns the embedded AES-128 encryption circuit: inputs
// (plaintext, key) of 128 bits each in BytesBits layout, output the
// 128-bit ciphertext. 51200 ANDs at AND depth 40. The returned
// circuit is shared — treat it as read-only.
func AES128() *Circuit { return aes128Once() }

// SHA256 returns the embedded SHA-256 compression circuit: inputs
// (512-bit padded message block, 256-bit chaining value), output the
// new 256-bit chaining value, byte-oriented big-endian encodings in
// BytesBits layout. The returned circuit is shared — treat it as
// read-only.
func SHA256() *Circuit { return sha256Once() }

// Divide64 returns the embedded 64-bit unsigned divider: inputs
// (dividend, divisor), outputs (quotient, remainder), LSB-first.
// Division by zero yields quotient all-ones and remainder = dividend.
// The returned circuit is shared — treat it as read-only.
func Divide64() *Circuit { return div64Once() }
