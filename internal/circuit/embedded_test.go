package circuit_test

import (
	"bytes"
	"crypto/aes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"testing"

	"ironman/internal/circuit"
)

// TestEmbeddedAES128TCP is the acceptance run for the embedded AES-128
// circuit: two SIMD-packed blocks over real TCP, instance 0 the
// FIPS-197 appendix C vector, every exchange counted against the AND
// depth. Party A owns the plaintext, party B the key.
func TestEmbeddedAES128TCP(t *testing.T) {
	c := circuit.AES128()
	prog, err := circuit.Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	if prog.ANDs != 51200 || prog.ANDLevels != 40 {
		t.Fatalf("aes128 compiled to %d ANDs at depth %d, want 51200 at 40", prog.ANDs, prog.ANDLevels)
	}

	var fipsKey, fipsPT [16]byte
	for i := range fipsKey {
		fipsKey[i] = byte(i)
		fipsPT[i] = byte(0x11 * i)
	}
	var key2, pt2 [16]byte
	for i := range key2 {
		key2[i] = byte(0xf0 - i)
		pt2[i] = byte(7 * i)
	}
	insts := [][][]bool{
		{circuit.BytesBits(fipsPT[:]), circuit.BytesBits(fipsKey[:])},
		{circuit.BytesBits(pt2[:]), circuit.BytesBits(key2[:])},
	}

	connA, connB := tcpPair(t)
	a, b := newParties(t, connA, connB, prog.ANDs*len(insts))
	outs, ex, _ := secureEval(t, prog, a, b, connA,
		splitPlanes(t, c, insts, true), splitPlanes(t, c, insts, false))
	if ex != prog.ANDLevels {
		t.Fatalf("%d exchanges, want AND depth %d", ex, prog.ANDLevels)
	}

	wantFIPS, err := hex.DecodeString("69c4e0d86a7b0430d8cdb78070b4c55a")
	if err != nil {
		t.Fatal(err)
	}
	if got := circuit.BitsBytes(outs[0]); !bytes.Equal(got, wantFIPS) {
		t.Fatalf("FIPS-197 vector: ciphertext %x, want %x", got, wantFIPS)
	}
	blk, err := aes.NewCipher(key2[:])
	if err != nil {
		t.Fatal(err)
	}
	var want2 [16]byte
	blk.Encrypt(want2[:], pt2[:])
	if got := circuit.BitsBytes(outs[1]); !bytes.Equal(got, want2[:]) {
		t.Fatalf("instance 1: ciphertext %x, want %x", got, want2)
	}
}

// shaIV is the standard initial chaining value in digest encoding.
func shaIV() [32]byte {
	var iv [32]byte
	for i, h := range [8]uint32{
		0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
		0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
	} {
		binary.BigEndian.PutUint32(iv[4*i:], h)
	}
	return iv
}

// shaPad pads a sub-55-byte message into its single SHA-256 block.
func shaPad(msg []byte) [64]byte {
	var blk [64]byte
	copy(blk[:], msg)
	blk[len(msg)] = 0x80
	binary.BigEndian.PutUint64(blk[56:], uint64(len(msg))*8)
	return blk
}

// TestEmbeddedSHA256TCP hashes two messages in one packed evaluation
// over real TCP and checks the digests against crypto/sha256. Party A
// owns the message blocks, party B the (public, but shared as B's
// input) chaining value.
func TestEmbeddedSHA256TCP(t *testing.T) {
	c := circuit.SHA256()
	prog, err := circuit.Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	msgs := [][]byte{[]byte("abc"), []byte("The quick brown fox jumps over the lazy dog")}
	iv := shaIV()
	insts := make([][][]bool, len(msgs))
	for i, m := range msgs {
		blk := shaPad(m)
		insts[i] = [][]bool{circuit.BytesBits(blk[:]), circuit.BytesBits(iv[:])}
	}

	connA, connB := tcpPair(t)
	a, b := newParties(t, connA, connB, prog.ANDs*len(insts))
	outs, ex, _ := secureEval(t, prog, a, b, connA,
		splitPlanes(t, c, insts, true), splitPlanes(t, c, insts, false))
	if ex != prog.ANDLevels {
		t.Fatalf("%d exchanges, want AND depth %d", ex, prog.ANDLevels)
	}
	for i, m := range msgs {
		want := sha256.Sum256(m)
		if got := circuit.BitsBytes(outs[i]); !bytes.Equal(got, want[:]) {
			t.Fatalf("message %q: digest %x, want %x", m, got, want)
		}
	}
}

// TestEmbeddedDivide64TCP exercises the deepest embedded schedule
// (513 AND levels) over real TCP, including the division-by-zero
// convention.
func TestEmbeddedDivide64TCP(t *testing.T) {
	c := circuit.Divide64()
	prog, err := circuit.Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	vecs := [][2]uint64{{0xdeadbeefcafebabe, 0x1337}, {7, 0}}
	insts := make([][][]bool, len(vecs))
	for i, v := range vecs {
		insts[i] = [][]bool{circuit.Uint64Bits(v[0], 64), circuit.Uint64Bits(v[1], 64)}
	}

	connA, connB := tcpPair(t)
	a, b := newParties(t, connA, connB, prog.ANDs*len(insts))
	outs, ex, _ := secureEval(t, prog, a, b, connA,
		splitPlanes(t, c, insts, true), splitPlanes(t, c, insts, false))
	if ex != prog.ANDLevels {
		t.Fatalf("%d exchanges, want AND depth %d", ex, prog.ANDLevels)
	}
	for i, v := range vecs {
		x, d := v[0], v[1]
		wantQ, wantR := ^uint64(0), x
		if d != 0 {
			wantQ, wantR = x/d, x%d
		}
		gotQ := circuit.BitsUint64(outs[i][:64])
		gotR := circuit.BitsUint64(outs[i][64:])
		if gotQ != wantQ || gotR != wantR {
			t.Fatalf("%d/%d: got q=%d r=%d, want q=%d r=%d", x, d, gotQ, gotR, wantQ, wantR)
		}
	}
}

// TestEmbeddedMatchesGenerator rebuilds each reference circuit from
// its deterministic builder (self-checking against the standard
// library on the way) and compares the canonical Bristol text against
// the embedded copy — the committed testdata cannot drift from the
// generators.
func TestEmbeddedMatchesGenerator(t *testing.T) {
	cases := []struct {
		name     string
		build    func() (*circuit.Circuit, error)
		embedded func() *circuit.Circuit
	}{
		{"aes128", circuit.BuildAES128, circuit.AES128},
		{"sha256", circuit.BuildSHA256, circuit.SHA256},
		{"div64", circuit.BuildDivide64, circuit.Divide64},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			built, err := tc.build()
			if err != nil {
				t.Fatal(err)
			}
			var want, got bytes.Buffer
			if err := built.Marshal(&want); err != nil {
				t.Fatal(err)
			}
			if err := tc.embedded().Marshal(&got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Fatalf("embedded %s circuit differs from its generator; run `go run ./internal/circuit/gen`", tc.name)
			}
		})
	}
}
