package circuit

import "fmt"

// BuildDivide64 constructs the 64-bit unsigned division circuit:
// inputs (dividend, divisor), outputs (quotient, remainder), all
// LSB-first (Uint64Bits layout).
//
// Restoring division, 64 iterations: the remainder register R keeps
// the invariant R < divisor, so R stays 64 bits wide and the shifted
// value 2R+b fits 65 bits with the overflow tracked as R's old top
// bit. Each iteration does one prefix subtraction (carry-out = "no
// borrow"), one OR folding the overflow bit into the quotient
// decision, and one 64-bit mux restoring R — about 450 ANDs and 9 AND
// levels, for ~29k ANDs at AND depth ~576 overall.
//
// Division by zero follows the hardware convention the comparison
// chain produces naturally: quotient all-ones, remainder = dividend.
//
// The circuit is self-checked against native division before it is
// returned.
func BuildDivide64() (*Circuit, error) {
	b := NewBuilder()
	x := b.Input(64) // dividend
	d := b.Input(64) // divisor

	r := make([]int32, 64)
	zero := b.Const(0)
	for i := range r {
		r[i] = zero
	}
	q := make([]int32, 64)
	for i := 63; i >= 0; i-- {
		// rsh = (R << 1) | x_i, low 64 bits; `top` is the shifted-out
		// bit. top=1 means 2R+b >= 2^64 > divisor, so the subtraction
		// is taken regardless of its borrow (and its mod-2^64 result is
		// exactly the true difference, since R < divisor bounds 2R+b
		// below 2*divisor).
		top := r[63]
		rsh := make([]int32, 64)
		rsh[0] = x[i]
		copy(rsh[1:], r[:63])
		diff, noBorrow := b.Sub(rsh, d)
		q[i] = b.Or(top, noBorrow)
		r = b.Mux(q[i], diff, rsh)
	}

	c, err := b.Finish(q, r)
	if err != nil {
		return nil, err
	}
	if err := checkDivide64(c); err != nil {
		return nil, err
	}
	return c, nil
}

func checkDivide64(c *Circuit) error {
	vecs := [][2]uint64{
		{0, 1}, {1, 1}, {17, 5}, {1 << 63, 3}, {^uint64(0), 1},
		{^uint64(0), ^uint64(0)}, {12345678901234567, 987654321},
		{42, 100}, {0x8000000000000000, 0x8000000000000000},
		{0xdeadbeefcafebabe, 0x1337}, {7, 0}, {0, 0},
	}
	for _, v := range vecs {
		x, d := v[0], v[1]
		var wantQ, wantR uint64
		if d == 0 {
			wantQ, wantR = ^uint64(0), x // circuit's div-by-zero convention
		} else {
			wantQ, wantR = x/d, x%d
		}
		got, err := c.EvalPlain([][]bool{Uint64Bits(x, 64), Uint64Bits(d, 64)})
		if err != nil {
			return fmt.Errorf("div64 self-check: %w", err)
		}
		if gq, gr := BitsUint64(got[0]), BitsUint64(got[1]); gq != wantQ || gr != wantR {
			return fmt.Errorf("div64 self-check: %d/%d: got q=%d r=%d, want q=%d r=%d", x, d, gq, gr, wantQ, wantR)
		}
	}
	return nil
}
