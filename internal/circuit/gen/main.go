// Command gen regenerates the embedded reference circuits under
// internal/circuit/testdata. The builders are deterministic and
// self-checked against the standard library, so the output is
// reproducible byte-for-byte; run this after changing a builder and
// commit the refreshed testdata.
//
//	go run ./internal/circuit/gen [dir]
package main

import (
	"compress/gzip"
	"fmt"
	"os"
	"path/filepath"

	"ironman/internal/circuit"
)

func main() {
	dir := "internal/circuit/testdata"
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}
	for _, e := range []struct {
		name  string
		build func() (*circuit.Circuit, error)
	}{
		{"aes128", circuit.BuildAES128},
		{"sha256", circuit.BuildSHA256},
		{"div64", circuit.BuildDivide64},
	} {
		if err := write(dir, e.name, e.build); err != nil {
			fmt.Fprintf(os.Stderr, "gen: %s: %v\n", e.name, err)
			os.Exit(1)
		}
	}
}

func write(dir, name string, build func() (*circuit.Circuit, error)) error {
	c, err := build()
	if err != nil {
		return err
	}
	prog, err := circuit.Compile(c)
	if err != nil {
		return err
	}
	path := filepath.Join(dir, name+".btl.gz")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	zw, err := gzip.NewWriterLevel(f, gzip.BestCompression)
	if err != nil {
		f.Close()
		return err
	}
	if err := c.Marshal(zw); err != nil {
		f.Close()
		return err
	}
	if err := zw.Close(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d gates, %d wires, %d ANDs, depth %d, %d slots, %d bytes gzipped\n",
		path, len(c.Gates), c.Wires, c.NumANDs(), prog.ANDLevels, prog.Slots, st.Size())
	return nil
}
