package circuit_test

import (
	"bytes"
	"compress/gzip"
	"strings"
	"testing"

	"ironman/internal/circuit"
)

// fashionAdder is a 2-bit half-adder-ish circuit in the new "Bristol
// Fashion" dialect: 2 one-bit inputs, sum and carry outputs.
const fashionAdder = `2 4
2 1 1
2 1 1

2 1 0 1 2 XOR
2 1 0 1 3 AND
`

// legacyXor is the legacy "Bristol Format" dialect (header line 2 is
// "inA inB nout", gates start on line 3).
const legacyXor = `2 4
1 1 1

1 1 0 2 INV
2 1 2 1 3 XOR
`

func TestLoadBristolFashion(t *testing.T) {
	c, err := circuit.Load(strings.NewReader(fashionAdder))
	if err != nil {
		t.Fatal(err)
	}
	if got := c.InputBits(); got != 2 {
		t.Fatalf("InputBits = %d, want 2", got)
	}
	if got := c.OutputBits(); got != 2 {
		t.Fatalf("OutputBits = %d, want 2", got)
	}
	out, err := c.EvalPlain([][]bool{{true}, {true}})
	if err != nil {
		t.Fatal(err)
	}
	if out[0][0] != false || out[1][0] != true {
		t.Fatalf("1+1: sum=%v carry=%v", out[0][0], out[1][0])
	}
}

func TestLoadLegacyFormat(t *testing.T) {
	c, err := circuit.Load(strings.NewReader(legacyXor))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Inputs) != 2 || c.Inputs[0] != 1 || c.Inputs[1] != 1 {
		t.Fatalf("Inputs = %v, want [1 1]", c.Inputs)
	}
	// out = NOT(a) XOR b
	for _, tc := range [][3]bool{{false, false, true}, {true, false, false}, {false, true, false}, {true, true, true}} {
		out, err := c.EvalPlain([][]bool{{tc[0]}, {tc[1]}})
		if err != nil {
			t.Fatal(err)
		}
		if out[0][0] != tc[2] {
			t.Fatalf("NOT(%v) XOR %v = %v, want %v", tc[0], tc[1], out[0][0], tc[2])
		}
	}
}

func TestLoadMAND(t *testing.T) {
	src := `1 6
2 2 2
1 2

4 2 0 1 2 3 4 5 MAND
`
	c, err := circuit.Load(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if got := c.NumANDs(); got != 2 {
		t.Fatalf("NumANDs = %d, want 2 (MAND counts its width)", got)
	}
	// out_j = in_j AND in_{k+j}: (1,0) MAND (1,1) -> (1, 0)
	out, err := c.EvalPlain([][]bool{{true, false}, {true, true}})
	if err != nil {
		t.Fatal(err)
	}
	if out[0][0] != true || out[0][1] != false {
		t.Fatalf("MAND wrong: %v", out[0])
	}
}

func TestLoadGzip(t *testing.T) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write([]byte(fashionAdder)); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	c, err := circuit.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Gates) != 2 {
		t.Fatalf("gzip round trip lost gates: %d", len(c.Gates))
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	c, err := circuit.Load(strings.NewReader(fashionAdder))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Marshal(&buf); err != nil {
		t.Fatal(err)
	}
	c2, err := circuit.Load(&buf)
	if err != nil {
		t.Fatalf("reloading marshaled circuit: %v", err)
	}
	if len(c2.Gates) != len(c.Gates) || c2.Wires != c.Wires {
		t.Fatalf("round trip mismatch: %d/%d gates, %d/%d wires", len(c2.Gates), len(c.Gates), c2.Wires, c.Wires)
	}
}

// TestLoadErrors exercises the strict validator: every malformed input
// must fail, and structural errors must carry the offending 1-based
// line number.
func TestLoadErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring the error must contain
	}{
		{"empty", "", "empty input"},
		{"bad header fields", "2\n", "line 1"},
		{"bad gate count", "x 4\n2 1 1\n1 2\n", "line 1"},
		{"zero wires", "0 0\n1 1\n1 1\n", "at least one wire"},
		{"io decl too wide", "0 2\n2 1 1\n1 2\n", "exceed"},
		{"value decl mismatch", "2 4\n2 1\n2 1 1\n\n2 1 0 1 2 XOR\n2 1 0 1 3 AND\n", "line 2"},
		{"zero width value", "2 4\n2 1 0\n2 1 1\n\n2 1 0 1 2 XOR\n2 1 0 1 3 AND\n", "zero width"},
		{"unknown op", "1 3\n2 1 1\n1 1\n\n2 1 0 1 2 NAND\n", `unknown gate type "NAND"`},
		{"gate arity", "1 4\n2 1 1\n1 2\n\n3 1 0 1 1 2 XOR\n", "line 5"},
		{"operand count", "1 3\n2 1 1\n1 1\n\n2 1 0 2 XOR\n", "line 5"},
		{"mand arity", "1 5\n2 2 2\n1 1\n\n3 1 0 1 2 4 MAND\n", "MAND"},
		{"eq constant", "1 2\n1 1\n1 1\n\n1 1 2 1 EQ\n", "EQ constant"},
		{"wire out of range", "1 3\n2 1 1\n1 1\n\n2 1 0 9 2 XOR\n", "out of range"},
		{"use before def", "2 4\n2 1 1\n1 1\n\n2 1 0 3 2 XOR\n2 1 0 1 3 AND\n", "before it is defined"},
		{"double definition", "2 4\n2 1 1\n1 1\n\n2 1 0 1 2 XOR\n2 1 0 1 2 AND\n", "defined twice"},
		{"too many gates", "1 4\n2 1 1\n1 1\n\n2 1 0 1 2 XOR\n2 1 0 1 3 AND\n", "more gates than the declared"},
		{"too few gates", "3 5\n2 1 1\n1 1\n\n2 1 0 1 2 XOR\n2 1 0 1 3 AND\n", "declares 3 gates but 2 found"},
		{"dangling wire", "1 4\n2 1 1\n1 1\n\n2 1 0 1 3 XOR\n", "dangling wire 2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := circuit.Load(strings.NewReader(tc.src))
			if err == nil {
				t.Fatalf("malformed input accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestBitHelpers(t *testing.T) {
	if v := circuit.BitsUint64(circuit.Uint64Bits(0xdeadbeef, 64)); v != 0xdeadbeef {
		t.Fatalf("Uint64Bits round trip: %x", v)
	}
	p := []byte{0x01, 0x80, 0xff, 0x00}
	if got := circuit.BitsBytes(circuit.BytesBits(p)); !bytes.Equal(got, p) {
		t.Fatalf("BytesBits round trip: %x", got)
	}
}
