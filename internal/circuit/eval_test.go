package circuit_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"net"
	"testing"

	"ironman/internal/aesprg"
	"ironman/internal/block"
	"ironman/internal/circuit"
	"ironman/internal/cot"
	"ironman/internal/gmw"
	"ironman/internal/ppml"
	"ironman/internal/transport"
)

// tcpPair opens a real TCP loopback link between the two parties —
// the acceptance runs demand real sockets under -race, not just the
// in-process pipe.
func tcpPair(t *testing.T) (transport.Conn, transport.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type accepted struct {
		nc  net.Conn
		err error
	}
	ch := make(chan accepted, 1)
	go func() {
		nc, err := ln.Accept()
		ch <- accepted{nc, err}
	}()
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	acc := <-ch
	if acc.err != nil {
		t.Fatal(acc.err)
	}
	a, b := transport.NewTCP(nc), transport.NewTCP(acc.nc)
	t.Cleanup(func() {
		a.Close()
		b.Close()
	})
	return a, b
}

// newParties assembles two GMW parties over the given link with
// freshly dealt pools of the given per-direction budget.
func newParties(t *testing.T, connA, connB transport.Conn, budget int) (*gmw.Party, *gmw.Party) {
	t.Helper()
	sAB, rAB, err := cot.RandomPools(budget)
	if err != nil {
		t.Fatal(err)
	}
	sBA, rBA, err := cot.RandomPools(budget)
	if err != nil {
		t.Fatal(err)
	}
	type res struct {
		p   *gmw.Party
		err error
	}
	ch := make(chan res, 1)
	go func() {
		p, err := gmw.NewParty(connA, sAB, rBA, true)
		ch <- res{p, err}
	}()
	b, err := gmw.NewParty(connB, sBA, rAB, false)
	if err != nil {
		t.Fatal(err)
	}
	ra := <-ch
	if ra.err != nil {
		t.Fatal(ra.err)
	}
	return ra.p, b
}

// splitPlanes packs each party's input planes for k instances: party A
// owns even-indexed input values, B odd (the peer holds zero shares).
func splitPlanes(t *testing.T, c *circuit.Circuit, insts [][][]bool, partyA bool) []gmw.PackedShare {
	t.Helper()
	k := len(insts)
	planes := make([]gmw.PackedShare, 0, c.InputBits())
	for v, width := range c.Inputs {
		mine := (v%2 == 0) == partyA
		vals := make([][]bool, k)
		if mine {
			for i := range vals {
				vals[i] = insts[i][v]
			}
		}
		ps, err := circuit.SharePlanes(vals, width, mine)
		if err != nil {
			t.Fatal(err)
		}
		planes = append(planes, ps...)
	}
	return planes
}

// secureEval drives both parties through Eval+Reveal and returns A's
// opened instance outputs, plus A's exchange count and endpoint wire
// bytes for the evaluation (reveal excluded).
func secureEval(t *testing.T, prog *circuit.Program, a, b *gmw.Party, connA transport.Conn, inA, inB []gmw.PackedShare) ([][]bool, int, int64) {
	t.Helper()
	base := connA.Stats().TotalBytes()
	preEx := a.Exchanges
	type out struct {
		vals [][]bool
		ex   int
		wire int64
		err  error
	}
	ch := make(chan out, 1)
	go func() {
		var o out
		planes, err := prog.Eval(a, inA, nil)
		if err != nil {
			o.err = err
			ch <- o
			return
		}
		// Snapshot before Reveal: the exchange protocol is fully
		// synchronous at this endpoint once Eval returns.
		o.wire = connA.Stats().TotalBytes() - base
		o.ex = a.Exchanges - preEx
		o.vals, o.err = circuit.Reveal(a, planes)
		ch <- o
	}()
	planesB, err := prog.Eval(b, inB, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := circuit.Reveal(b, planesB); err != nil {
		t.Fatal(err)
	}
	o := <-ch
	if o.err != nil {
		t.Fatal(o.err)
	}
	return o.vals, o.ex, o.wire
}

// flatOutputs flattens EvalPlain's per-value outputs into one bit
// vector for comparison against an instance's opened planes.
func flatOutputs(vals [][]bool) []bool {
	var flat []bool
	for _, v := range vals {
		flat = append(flat, v...)
	}
	return flat
}

// randCircuit generates a random valid circuit: gate outputs are
// assigned sequentially (so the netlist is topological by
// construction) and the declared outputs are the trailing wires.
func randCircuit(rng *rand.Rand) *circuit.Circuit {
	nin := 1 + rng.Intn(3)
	inputs := make([]int, nin)
	total := 0
	for i := range inputs {
		inputs[i] = 1 + rng.Intn(4)
		total += inputs[i]
	}
	next := int32(total)
	pick := func() int32 { return int32(rng.Intn(int(next))) }
	var gates []circuit.Gate
	ngates := 5 + rng.Intn(30)
	for g := 0; g < ngates; g++ {
		switch rng.Intn(6) {
		case 0:
			gates = append(gates, circuit.Gate{Op: circuit.AND, In: []int32{pick(), pick()}, Out: []int32{next}})
			next++
		case 1:
			gates = append(gates, circuit.Gate{Op: circuit.XOR, In: []int32{pick(), pick()}, Out: []int32{next}})
			next++
		case 2:
			gates = append(gates, circuit.Gate{Op: circuit.INV, In: []int32{pick()}, Out: []int32{next}})
			next++
		case 3:
			gates = append(gates, circuit.Gate{Op: circuit.EQ, In: []int32{int32(rng.Intn(2))}, Out: []int32{next}})
			next++
		case 4:
			gates = append(gates, circuit.Gate{Op: circuit.EQW, In: []int32{pick()}, Out: []int32{next}})
			next++
		case 5:
			k := 1 + rng.Intn(3)
			in := make([]int32, 2*k)
			outs := make([]int32, k)
			for i := range in {
				in[i] = pick()
			}
			for i := range outs {
				outs[i] = next
				next++
			}
			gates = append(gates, circuit.Gate{Op: circuit.MAND, In: in, Out: outs})
		}
	}
	return &circuit.Circuit{
		Gates:   gates,
		Wires:   int(next),
		Inputs:  inputs,
		Outputs: []int{1 + rng.Intn(3)},
	}
}

// TestRandomCircuitsSecureVsPlain fuzzes the compiler and evaluator:
// random netlists (all six ops, MAND included) are compiled, run
// SIMD-packed over real TCP, and every instance's outputs are compared
// against the plaintext reference evaluator.
func TestRandomCircuitsSecureVsPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(0x1507))
	for iter := 0; iter < 12; iter++ {
		c := randCircuit(rng)
		prog, err := circuit.Compile(c)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		k := 1 + rng.Intn(5)
		insts := make([][][]bool, k)
		for i := range insts {
			vals := make([][]bool, len(c.Inputs))
			for v, width := range c.Inputs {
				bits := make([]bool, width)
				for j := range bits {
					bits[j] = rng.Intn(2) == 1
				}
				vals[v] = bits
			}
			insts[i] = vals
		}
		connA, connB := tcpPair(t)
		a, b := newParties(t, connA, connB, prog.ANDs*k+1)
		outs, ex, _ := secureEval(t, prog, a, b, connA,
			splitPlanes(t, c, insts, true), splitPlanes(t, c, insts, false))
		if ex != prog.ANDLevels {
			t.Fatalf("iter %d: %d exchanges, want AND depth %d", iter, ex, prog.ANDLevels)
		}
		for i, inst := range insts {
			want, err := c.EvalPlain(inst)
			if err != nil {
				t.Fatal(err)
			}
			flat := flatOutputs(want)
			for j, bit := range outs[i] {
				if bit != flat[j] {
					t.Fatalf("iter %d instance %d: output bit %d = %v, want %v", iter, i, j, bit, flat[j])
				}
			}
		}
	}
}

// buildAdder32 is the SIMD workhorse circuit for the packing tests: a
// 32-bit adder from the Builder (Sklansky prefix network).
func buildAdder32(t *testing.T) (*circuit.Circuit, *circuit.Program) {
	t.Helper()
	b := circuit.NewBuilder()
	x := b.Input(32)
	y := b.Input(32)
	c, err := b.Finish(b.Add(x, y))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := circuit.Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	return c, prog
}

// TestSIMDPackedVsSerial runs K instances packed across the word lanes
// and the same K instances serially (one lane each), byte-comparing
// the outputs. The packed run must finish in the circuit's AND depth
// worth of exchanges — 1/K of the serial total.
func TestSIMDPackedVsSerial(t *testing.T) {
	const k = 64
	c, prog := buildAdder32(t)
	rng := rand.New(rand.NewSource(0xadd32))
	insts := make([][][]bool, k)
	wantSum := make([]uint32, k)
	for i := range insts {
		x, y := rng.Uint32(), rng.Uint32()
		wantSum[i] = x + y
		insts[i] = [][]bool{
			circuit.Uint64Bits(uint64(x), 32),
			circuit.Uint64Bits(uint64(y), 32),
		}
	}

	connA, connB := tcpPair(t)
	a, b := newParties(t, connA, connB, prog.ANDs*k)
	packed, ex, _ := secureEval(t, prog, a, b, connA,
		splitPlanes(t, c, insts, true), splitPlanes(t, c, insts, false))
	if ex != prog.ANDLevels {
		t.Fatalf("packed run: %d exchanges, want AND depth %d", ex, prog.ANDLevels)
	}

	serialEx := 0
	for i := 0; i < k; i++ {
		one := insts[i : i+1]
		connA, connB := tcpPair(t)
		a, b := newParties(t, connA, connB, prog.ANDs)
		out, ex, _ := secureEval(t, prog, a, b, connA,
			splitPlanes(t, c, one, true), splitPlanes(t, c, one, false))
		serialEx += ex
		if got, want := circuit.BitsBytes(out[0]), circuit.BitsBytes(packed[i]); !bytes.Equal(got, want) {
			t.Fatalf("instance %d: serial output %x, packed output %x", i, got, want)
		}
		if got := uint32(circuit.BitsUint64(out[0])); got != wantSum[i] {
			t.Fatalf("instance %d: sum %d, want %d", i, got, wantSum[i])
		}
	}
	if serialEx != k*prog.ANDLevels {
		t.Fatalf("serial runs took %d exchanges, want %d", serialEx, k*prog.ANDLevels)
	}
}

// recordingConn captures every frame one endpoint sends, so two runs
// can be compared transcript-for-transcript.
type recordingConn struct {
	transport.Conn
	log bytes.Buffer
}

func (c *recordingConn) Send(p []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(p)))
	c.log.Write(hdr[:])
	c.log.Write(p)
	return c.Conn.Send(p)
}

// transcriptRun executes one fully deterministic packed evaluation —
// seeded parties, stream-dealt pools — and returns the opened outputs
// with both endpoints' wire transcripts.
func transcriptRun(t *testing.T, c *circuit.Circuit, prog *circuit.Program, insts [][][]bool) ([][]bool, []byte, []byte) {
	t.Helper()
	k := len(insts)
	connA, connB := tcpPair(t)
	recA := &recordingConn{Conn: connA}
	recB := &recordingConn{Conn: connB}
	sAB, rAB, err := cot.PoolsFromStream(aesprg.NewStream(block.New(0xa1, 0xa2)), block.New(0xd1, 0xd2), prog.ANDs*k)
	if err != nil {
		t.Fatal(err)
	}
	sBA, rBA, err := cot.PoolsFromStream(aesprg.NewStream(block.New(0xb1, 0xb2)), block.New(0xd3, 0xd4), prog.ANDs*k)
	if err != nil {
		t.Fatal(err)
	}
	type res struct {
		p   *gmw.Party
		err error
	}
	ch := make(chan res, 1)
	go func() {
		p, err := gmw.NewSeededParty(recA, sAB, rBA, true, block.New(0x51, 0x52))
		ch <- res{p, err}
	}()
	b, err := gmw.NewSeededParty(recB, sBA, rAB, false, block.New(0x53, 0x54))
	if err != nil {
		t.Fatal(err)
	}
	ra := <-ch
	if ra.err != nil {
		t.Fatal(ra.err)
	}
	outs, _, _ := secureEval(t, prog, ra.p, b, recA,
		splitPlanes(t, c, insts, true), splitPlanes(t, c, insts, false))
	return outs, recA.log.Bytes(), recB.log.Bytes()
}

// TestTranscriptDeterminism pins the whole stack: two identical seeded
// packed runs must produce byte-identical wire transcripts in both
// directions (and identical outputs). Any nondeterminism in the
// compiler's schedule, the packing layout, or the engine's wire format
// shows up here as a transcript diff.
func TestTranscriptDeterminism(t *testing.T) {
	c, prog := buildAdder32(t)
	rng := rand.New(rand.NewSource(0x7ea))
	const k = 8
	insts := make([][][]bool, k)
	for i := range insts {
		insts[i] = [][]bool{
			circuit.Uint64Bits(uint64(rng.Uint32()), 32),
			circuit.Uint64Bits(uint64(rng.Uint32()), 32),
		}
	}
	out1, wireA1, wireB1 := transcriptRun(t, c, prog, insts)
	out2, wireA2, wireB2 := transcriptRun(t, c, prog, insts)
	if len(wireA1) == 0 || len(wireB1) == 0 {
		t.Fatal("no traffic recorded")
	}
	if !bytes.Equal(wireA1, wireA2) {
		t.Fatalf("party A transcripts differ: %d vs %d bytes", len(wireA1), len(wireA2))
	}
	if !bytes.Equal(wireB1, wireB2) {
		t.Fatalf("party B transcripts differ: %d vs %d bytes", len(wireB1), len(wireB2))
	}
	for i := range out1 {
		if !bytes.Equal(circuit.BitsBytes(out1[i]), circuit.BitsBytes(out2[i])) {
			t.Fatalf("instance %d outputs differ across identical runs", i)
		}
	}
}

// TestPreflightBudget verifies the loud-failure contract: a pool one
// correlation short of the schedule's budget must fail before the
// first flight, with cot.ErrExhausted in the chain and zero bytes on
// the wire.
func TestPreflightBudget(t *testing.T) {
	c, prog := buildAdder32(t)
	const k = 4
	insts := make([][][]bool, k)
	for i := range insts {
		insts[i] = [][]bool{
			circuit.Uint64Bits(uint64(3*i+1), 32),
			circuit.Uint64Bits(uint64(5*i+2), 32),
		}
	}
	connA, connB := tcpPair(t)
	a, b := newParties(t, connA, connB, prog.ANDs*k-1)
	baseA := connA.Stats().TotalBytes()
	baseB := connB.Stats().TotalBytes()
	// Preflight fails locally on both sides: no goroutines needed, no
	// flights to deadlock on.
	if _, err := prog.Eval(a, splitPlanes(t, c, insts, true), nil); !errors.Is(err, cot.ErrExhausted) {
		t.Fatalf("party A: err = %v, want cot.ErrExhausted", err)
	}
	if _, err := prog.Eval(b, splitPlanes(t, c, insts, false), nil); !errors.Is(err, cot.ErrExhausted) {
		t.Fatalf("party B: err = %v, want cot.ErrExhausted", err)
	}
	if got := connA.Stats().TotalBytes(); got != baseA {
		t.Fatalf("party A moved %d bytes after failed preflight", got-baseA)
	}
	if got := connB.Stats().TotalBytes(); got != baseB {
		t.Fatalf("party B moved %d bytes after failed preflight", got-baseB)
	}
}

// TestCircuitCostExact cross-checks ppml.CircuitCost against the
// measured gmw.Party counters and the transport byte delta: the model
// must match to the byte. K=5 leaves most level batches at a non-
// multiple of 8 bits, exercising the per-level ceiling.
func TestCircuitCostExact(t *testing.T) {
	c, prog := buildAdder32(t)
	const k = 5
	cost := ppml.CircuitCost(prog, k)
	if cost.Exchanges != prog.ANDLevels {
		t.Fatalf("model exchanges %d, want AND depth %d", cost.Exchanges, prog.ANDLevels)
	}
	if cost.ANDGates != int64(prog.ANDs)*k {
		t.Fatalf("model ANDs %d, want %d", cost.ANDGates, prog.ANDs*k)
	}

	rng := rand.New(rand.NewSource(0xc057))
	insts := make([][][]bool, k)
	for i := range insts {
		insts[i] = [][]bool{
			circuit.Uint64Bits(uint64(rng.Uint32()), 32),
			circuit.Uint64Bits(uint64(rng.Uint32()), 32),
		}
	}
	connA, connB := tcpPair(t)
	a, b := newParties(t, connA, connB, prog.ANDs*k)
	preANDs := a.ANDGates
	_, ex, wire := secureEval(t, prog, a, b, connA,
		splitPlanes(t, c, insts, true), splitPlanes(t, c, insts, false))
	if ex != cost.Exchanges {
		t.Fatalf("measured %d exchanges, model says %d", ex, cost.Exchanges)
	}
	if wire != cost.WireBytes {
		t.Fatalf("measured %d wire bytes, model says %d", wire, cost.WireBytes)
	}
	if got := int64(a.ANDGates - preANDs); got != cost.ANDGates {
		t.Fatalf("party counted %d AND gates, model says %d", got, cost.ANDGates)
	}
}
