package circuit

import "fmt"

// Builder is a small netlist DSL for constructing Bristol circuits
// programmatically — the source of the embedded reference circuits.
// Wires are int32 handles; Input declares input values (before any
// gate), the gate methods emit gates, and Finish relabels the chosen
// output wires into the trailing positions Bristol requires.
//
// Gate-level methods (Xor, And, Not, Const) cost what they say on the
// tin under GMW: only And consumes OTs. The word-level helpers build
// depth-optimized arithmetic: Add/Sub are Sklansky parallel-prefix
// adders (O(log n) AND depth), SumMany reduces k addends through a
// carry-save tree (1 AND level per CSA) before a single prefix add.
type Builder struct {
	gates  []Gate
	inputs []int
	nwires int32
	consts [2]int32 // cached EQ wires; -1 until first use
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{consts: [2]int32{-1, -1}}
}

// Input declares the next input value and returns its wires. All
// inputs must be declared before the first gate (Bristol numbers input
// wires first).
func (b *Builder) Input(width int) []int32 {
	if len(b.gates) > 0 {
		panic("circuit: Builder.Input after first gate")
	}
	if width <= 0 {
		panic("circuit: Builder.Input needs positive width")
	}
	b.inputs = append(b.inputs, width)
	w := make([]int32, width)
	for i := range w {
		w[i] = b.wire()
	}
	return w
}

func (b *Builder) wire() int32 {
	w := b.nwires
	b.nwires++
	return w
}

func (b *Builder) emit(op Op, in []int32, nout int) []int32 {
	out := make([]int32, nout)
	for i := range out {
		out[i] = b.wire()
	}
	b.gates = append(b.gates, Gate{Op: op, In: in, Out: out})
	return out
}

// Xor emits x XOR y.
func (b *Builder) Xor(x, y int32) int32 { return b.emit(XOR, []int32{x, y}, 1)[0] }

// And emits x AND y.
func (b *Builder) And(x, y int32) int32 { return b.emit(AND, []int32{x, y}, 1)[0] }

// Not emits NOT x.
func (b *Builder) Not(x int32) int32 { return b.emit(INV, []int32{x}, 1)[0] }

// Const returns a wire carrying the constant bit (cached per value).
func (b *Builder) Const(bit int) int32 {
	if bit != 0 && bit != 1 {
		panic("circuit: Builder.Const needs 0 or 1")
	}
	if b.consts[bit] < 0 {
		b.consts[bit] = b.emit(EQ, []int32{int32(bit)}, 1)[0]
	}
	return b.consts[bit]
}

// Or emits x OR y (one AND: x|y = (x^y)^(x&y)).
func (b *Builder) Or(x, y int32) int32 {
	return b.Xor(b.Xor(x, y), b.And(x, y))
}

// Mux emits sel ? x : y per bit vector (one AND per bit).
func (b *Builder) Mux(sel int32, x, y []int32) []int32 {
	out := make([]int32, len(x))
	for i := range x {
		out[i] = b.Xor(y[i], b.And(sel, b.Xor(x[i], y[i])))
	}
	return out
}

// XorVec emits the per-bit XOR of equal-width vectors.
func (b *Builder) XorVec(x, y []int32) []int32 {
	out := make([]int32, len(x))
	for i := range x {
		out[i] = b.Xor(x[i], y[i])
	}
	return out
}

// NotVec emits the per-bit NOT of a vector.
func (b *Builder) NotVec(x []int32) []int32 {
	out := make([]int32, len(x))
	for i := range x {
		out[i] = b.Not(x[i])
	}
	return out
}

// XorConst flips the bits of x selected by the constant c (free:
// NOT gates on set bits).
func (b *Builder) XorConst(x []int32, c uint64) []int32 {
	out := make([]int32, len(x))
	for i := range x {
		if c>>uint(i)&1 == 1 {
			out[i] = b.Not(x[i])
		} else {
			out[i] = x[i]
		}
	}
	return out
}

// ConstVec returns width wires carrying the constant value (LSB-first).
func (b *Builder) ConstVec(v uint64, width int) []int32 {
	out := make([]int32, width)
	for i := range out {
		out[i] = b.Const(int(v >> uint(i) & 1))
	}
	return out
}

// Add emits x + y mod 2^n via a Sklansky parallel-prefix adder:
// n + n/2*log2(n) ANDs and change, log2(n)+1 AND levels.
func (b *Builder) Add(x, y []int32) []int32 {
	s, _ := b.AddCarry(x, y, false, false)
	return s
}

// Sub emits x - y mod 2^n plus a no-borrow flag (1 iff x >= y),
// computed as x + ^y + 1 with the carry-in folded into bit 0.
func (b *Builder) Sub(x, y []int32) (diff []int32, noBorrow int32) {
	return b.AddCarry(x, y, true, true)
}

// AddCarry is the general prefix adder: sum = x + (invertY ? ^y : y)
// + cin mod 2^n, plus the carry out of the top bit. The NOT gates and
// the folded carry-in are free; only the generate/propagate network
// costs ANDs.
func (b *Builder) AddCarry(x, y []int32, invertY, cin bool) (sum []int32, carry int32) {
	n := len(x)
	if n == 0 || len(y) != n {
		panic(fmt.Sprintf("circuit: Builder.AddCarry width mismatch %d vs %d", n, len(y)))
	}
	yy := y
	if invertY {
		yy = b.NotVec(y)
	}
	// Generate/propagate per bit, with the carry-in folded into slot 0:
	// G0' = x0|y0 = G0^P0 when cin=1.
	p := make([]int32, n)
	g := make([]int32, n)
	for i := 0; i < n; i++ {
		p[i] = b.Xor(x[i], yy[i])
		g[i] = b.And(x[i], yy[i])
	}
	sum = make([]int32, n)
	if cin {
		sum[0] = b.Not(p[0])
		g[0] = b.Xor(g[0], p[0])
	} else {
		sum[0] = p[0]
	}
	// Sklansky prefix: after level lvl, every node whose highest set
	// bit is <= lvl holds the complete prefix [0..i]. The P update is
	// skipped once no later level reads the node (i < 2^(lvl+1)).
	origP := append([]int32(nil), p...)
	for lvl := 0; 1<<uint(lvl) < n; lvl++ {
		for i := 0; i < n; i++ {
			if i>>uint(lvl)&1 == 1 {
				j := int32(i)>>uint(lvl)<<uint(lvl) - 1
				g[i] = b.Xor(g[i], b.And(p[i], g[j]))
				if i>>uint(lvl+1) != 0 {
					p[i] = b.And(p[i], p[j])
				}
			}
		}
	}
	for i := 1; i < n; i++ {
		sum[i] = b.Xor(origP[i], g[i-1])
	}
	return sum, g[n-1]
}

// SumMany adds k equal-width addends mod 2^n: a carry-save tree (each
// 3->2 step is one AND level) reduces to two addends, then one prefix
// add finishes. Depth is O(log k + log n) instead of k prefix adds.
func (b *Builder) SumMany(vs ...[]int32) []int32 {
	switch len(vs) {
	case 0:
		panic("circuit: Builder.SumMany needs at least one addend")
	case 1:
		return vs[0]
	}
	pend := append([][]int32(nil), vs...)
	for len(pend) > 2 {
		var next [][]int32
		for len(pend) >= 3 {
			s, c := b.csa(pend[0], pend[1], pend[2])
			pend = pend[3:]
			next = append(next, s, c)
		}
		pend = append(next, pend...)
	}
	return b.Add(pend[0], pend[1])
}

// csa is a carry-save adder: sum_i = a^b^c (free), carry_{i+1} =
// maj(a,b,c)_i (one AND per bit), with the shifted-out top carry
// dropped (mod 2^n arithmetic).
func (b *Builder) csa(x, y, z []int32) (sum, carry []int32) {
	n := len(x)
	sum = make([]int32, n)
	carry = make([]int32, n)
	carry[0] = b.Const(0)
	for i := 0; i < n; i++ {
		xy := b.Xor(x[i], y[i])
		sum[i] = b.Xor(xy, z[i])
		if i+1 < n {
			// maj(a,b,c) = b ^ ((a^b) & (c^b))
			carry[i+1] = b.Xor(y[i], b.And(xy, b.Xor(z[i], y[i])))
		}
	}
	return sum, carry
}

// Finish closes the builder: each value in outs becomes one declared
// output, relabeled (via free EQW copies) into the trailing wire
// positions Bristol requires. The builder must not be reused after.
func (b *Builder) Finish(outs ...[]int32) (*Circuit, error) {
	if len(b.inputs) == 0 {
		return nil, fmt.Errorf("circuit: Builder.Finish: no inputs declared")
	}
	if len(outs) == 0 {
		return nil, fmt.Errorf("circuit: Builder.Finish: no outputs")
	}
	c := &Circuit{Inputs: append([]int(nil), b.inputs...)}
	for _, o := range outs {
		if len(o) == 0 {
			return nil, fmt.Errorf("circuit: Builder.Finish: empty output value")
		}
		c.Outputs = append(c.Outputs, len(o))
		for _, w := range o {
			if w < 0 || w >= b.nwires {
				return nil, fmt.Errorf("circuit: Builder.Finish: output wire %d out of range", w)
			}
			b.emit(EQW, []int32{w}, 1)
		}
	}
	c.Gates = b.gates
	c.Wires = int(b.nwires)
	b.gates = nil
	return c, nil
}
