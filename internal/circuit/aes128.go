package circuit

import (
	"bytes"
	"crypto/aes"
	"fmt"
)

// BuildAES128 constructs the AES-128 encryption circuit: inputs
// (plaintext 128 bits, key 128 bits), output (ciphertext 128 bits),
// all in BytesBits layout (bit j of byte i at wire 8i+j). The key
// schedule runs in-circuit, so the key may itself be secret-shared —
// the threshold-AES setting of examples/private-aes.
//
// The S-box is computed algebraically: GF(2^8) inversion as the x^254
// addition chain x2 -> x3 -> x12 -> x15 -> x240 -> x252 -> x254 (four
// schoolbook multiplications of 64 ANDs each; squarings are linear and
// free), then the free affine map. ShiftRows, MixColumns and
// AddRoundKey are XOR-only. 200 S-boxes (160 state + 40 key schedule)
// give 51200 ANDs at AND depth 40 — four multiplication levels per
// round, with the key schedule's S-boxes riding the same levels.
//
// The circuit is self-checked against crypto/aes before it is
// returned.
func BuildAES128() (*Circuit, error) {
	b := NewBuilder()
	ptBits := b.Input(128)
	keyBits := b.Input(128)

	pt := toBytes(ptBits)
	key := toBytes(keyBits)

	// Key expansion (FIPS-197 5.2): w[i] is a 4-byte word; round key r
	// is w[4r..4r+3], one word per state column.
	rcon := [10]uint64{0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36}
	w := make([][4][]int32, 44)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			w[i][j] = key[4*i+j]
		}
	}
	for i := 4; i < 44; i++ {
		t := w[i-1]
		if i%4 == 0 {
			rot := [4][]int32{t[1], t[2], t[3], t[0]}
			for j := 0; j < 4; j++ {
				rot[j] = sbox(b, rot[j])
			}
			rot[0] = b.XorConst(rot[0], rcon[i/4-1])
			t = rot
		}
		for j := 0; j < 4; j++ {
			w[i][j] = b.XorVec(w[i-4][j], t[j])
		}
	}

	// State bytes in input order: s[r][c] lives at index r+4c.
	state := addRoundKey(b, pt, w[0:4])
	for round := 1; round <= 10; round++ {
		for i := range state {
			state[i] = sbox(b, state[i])
		}
		state = shiftRows(state)
		if round < 10 {
			state = mixColumns(b, state)
		}
		state = addRoundKey(b, state, w[4*round:4*round+4])
	}

	out := make([]int32, 0, 128)
	for i := range state {
		out = append(out, state[i]...)
	}
	c, err := b.Finish(out)
	if err != nil {
		return nil, err
	}
	if err := checkAES128(c); err != nil {
		return nil, err
	}
	return c, nil
}

// toBytes slices a BytesBits wire vector into LSB-first byte groups.
func toBytes(bits []int32) [][]int32 {
	out := make([][]int32, len(bits)/8)
	for i := range out {
		out[i] = bits[8*i : 8*i+8]
	}
	return out
}

func addRoundKey(b *Builder, state [][]int32, rk [][4][]int32) [][]int32 {
	out := make([][]int32, 16)
	for c := 0; c < 4; c++ {
		for r := 0; r < 4; r++ {
			out[4*c+r] = b.XorVec(state[4*c+r], rk[c][r])
		}
	}
	return out
}

// shiftRows rotates row r left by r columns: s'[r][c] = s[r][(c+r)%4].
func shiftRows(state [][]int32) [][]int32 {
	out := make([][]int32, 16)
	for c := 0; c < 4; c++ {
		for r := 0; r < 4; r++ {
			out[4*c+r] = state[4*((c+r)%4)+r]
		}
	}
	return out
}

func mixColumns(b *Builder, state [][]int32) [][]int32 {
	out := make([][]int32, 16)
	for c := 0; c < 4; c++ {
		var a, d, t [4][]int32
		for r := 0; r < 4; r++ {
			a[r] = state[4*c+r]
			d[r] = xtime(b, a[r])       // 2*a
			t[r] = b.XorVec(d[r], a[r]) // 3*a
		}
		out[4*c+0] = b.XorVec(b.XorVec(d[0], t[1]), b.XorVec(a[2], a[3]))
		out[4*c+1] = b.XorVec(b.XorVec(a[0], d[1]), b.XorVec(t[2], a[3]))
		out[4*c+2] = b.XorVec(b.XorVec(a[0], a[1]), b.XorVec(d[2], t[3]))
		out[4*c+3] = b.XorVec(b.XorVec(t[0], a[1]), b.XorVec(a[2], d[3]))
	}
	return out
}

// xtime multiplies by x in GF(2^8) mod 0x11B: shift left, folding the
// top bit into positions 0, 1, 3, 4 (the 0x1B taps). Free.
func xtime(b *Builder, a []int32) []int32 {
	return []int32{
		a[7],
		b.Xor(a[0], a[7]),
		a[1],
		b.Xor(a[2], a[7]),
		b.Xor(a[3], a[7]),
		a[4],
		a[5],
		a[6],
	}
}

// sbox is SubBytes on one byte: GF(2^8) inversion then the affine map.
func sbox(b *Builder, x []int32) []int32 {
	x2 := gfSq(b, x)
	x3 := gfMul(b, x2, x)
	x12 := gfSq(b, gfSq(b, x3))
	x15 := gfMul(b, x12, x3)
	x240 := gfSq(b, gfSq(b, gfSq(b, gfSq(b, x15))))
	x252 := gfMul(b, x240, x12)
	inv := gfMul(b, x252, x2) // x^254 = x^{-1} (and 0 -> 0)
	// Affine: out_i = inv_i ^ inv_{i+4} ^ inv_{i+5} ^ inv_{i+6} ^
	// inv_{i+7} (indices mod 8), then ^ 0x63.
	out := make([]int32, 8)
	for i := 0; i < 8; i++ {
		v := inv[i]
		for _, d := range [4]int{4, 5, 6, 7} {
			v = b.Xor(v, inv[(i+d)%8])
		}
		out[i] = v
	}
	return b.XorConst(out, 0x63)
}

// gfMul is schoolbook GF(2^8) multiplication mod 0x11B: 64 ANDs (all
// on one level) and a free reduction.
func gfMul(b *Builder, x, y []int32) []int32 {
	var t [15]int32
	for k := range t {
		t[k] = -1
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			t[i+j] = xorAcc(b, t[i+j], b.And(x[i], y[j]))
		}
	}
	return gfReduce(b, &t)
}

// gfSq squares in GF(2^8): squaring is linear over GF(2), so this is
// a wire permutation plus the reduction — no ANDs.
func gfSq(b *Builder, x []int32) []int32 {
	var t [15]int32
	for k := range t {
		t[k] = -1
	}
	for i := 0; i < 8; i++ {
		t[2*i] = x[i]
	}
	return gfReduce(b, &t)
}

// gfReduce folds degree-8..14 terms through x^8 = x^4+x^3+x+1,
// descending so cascaded folds (e.g. x^14 -> x^10 -> x^6) resolve.
// Slot -1 means the zero polynomial term.
func gfReduce(b *Builder, t *[15]int32) []int32 {
	for k := 14; k >= 8; k-- {
		if t[k] < 0 {
			continue
		}
		for _, d := range [4]int{k - 4, k - 5, k - 7, k - 8} {
			t[d] = xorAcc(b, t[d], t[k])
		}
		t[k] = -1
	}
	out := make([]int32, 8)
	for i := range out {
		if t[i] < 0 {
			out[i] = b.Const(0)
		} else {
			out[i] = t[i]
		}
	}
	return out
}

func xorAcc(b *Builder, acc, w int32) int32 {
	if acc < 0 {
		return w
	}
	return b.Xor(acc, w)
}

// checkAES128 cross-checks the netlist against crypto/aes on the
// FIPS-197 appendix C vector plus deterministic derived vectors.
func checkAES128(c *Circuit) error {
	var key, pt [16]byte
	for i := range key {
		key[i] = byte(i)
		pt[i] = byte(0x11 * i)
	}
	vecs := [][2][16]byte{{pt, key}}
	for v := 1; v < 4; v++ {
		for i := range key {
			key[i] = byte(31*v + 7*i + 3)
			pt[i] = byte(77*v + 13*i + 1)
		}
		vecs = append(vecs, [2][16]byte{pt, key})
	}
	for _, v := range vecs {
		blk, err := aes.NewCipher(v[1][:])
		if err != nil {
			return err
		}
		var want [16]byte
		blk.Encrypt(want[:], v[0][:])
		got, err := c.EvalPlain([][]bool{BytesBits(v[0][:]), BytesBits(v[1][:])})
		if err != nil {
			return fmt.Errorf("aes128 self-check: %w", err)
		}
		if !bytes.Equal(BitsBytes(got[0]), want[:]) {
			return fmt.Errorf("aes128 self-check: circuit disagrees with crypto/aes on key %x", v[1])
		}
	}
	return nil
}
