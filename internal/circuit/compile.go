package circuit

import (
	"fmt"
	"math"

	"ironman/internal/gmw"
)

// LocalOp is a free (non-interactive) gate in the compiled schedule,
// operating on register slots instead of wires. For EQ, A is the
// constant bit (0 or 1) rather than a slot.
type LocalOp struct {
	Op Op
	A  int32 // first operand slot (or EQ constant)
	B  int32 // second operand slot (XOR only)
	D  int32 // destination slot
}

// Level is one rung of the compiled schedule: the local gates that
// become ready after the previous exchange, followed by one batched
// AND exchange. AndA/AndB/AndD are parallel slot arrays — pair i is
// AndA[i] AND AndB[i] -> AndD[i] — and the whole batch ships as ONE
// gmw.AndPackedMany call. The final level of every program has an
// empty batch (the locals that follow the last exchange).
type Level struct {
	Pre  []LocalOp
	AndA []int32
	AndB []int32
	AndD []int32
}

// Program is a compiled circuit: a level schedule over a recycled
// register file. Slots is the register count — the maximum number of
// simultaneously live wires, not the total wire count — so evaluating
// a multi-hundred-thousand-wire circuit holds only the live frontier
// in memory.
type Program struct {
	Circ *Circuit
	// Levels is the schedule; len(Levels) == ANDLevels+1.
	Levels []Level
	// Slots is the register-file size (max live wires).
	Slots int
	// ANDs is the total AND gate count per instance.
	ANDs int
	// ANDLevels is the AND depth: the number of batched exchanges one
	// evaluation issues, regardless of instance count.
	ANDLevels int
	// InputSlots maps each input wire (in wire order) to its register,
	// or -1 if the circuit never reads that input.
	InputSlots []int32
	// OutputSlots maps each output wire (in wire order) to the
	// register holding it after the last level.
	OutputSlots []int32
}

// LevelANDs returns the AND gate count of each exchange level — the
// per-level batch widths (one instance; multiply by K for the packed
// exchange size).
func (p *Program) LevelANDs() []int {
	w := make([]int, 0, p.ANDLevels)
	for i := range p.Levels {
		if n := len(p.Levels[i].AndA); n > 0 {
			w = append(w, n)
		}
	}
	return w
}

// Budget returns the gmw pool budget one evaluation of instances
// packed instances consumes — the preflight handed to
// gmw.Party.Preflight before the first flight.
func (p *Program) Budget(instances int) gmw.Budget {
	return gmw.Budget{ANDGates: p.ANDs * instances, Exchanges: p.ANDLevels}
}

// lastReadNever marks a wire no instruction ever reads.
const lastReadNever = -1

// Compile levels the gate DAG and allocates wire slots.
//
// Leveling: every wire gets the AND depth at which it becomes
// available — inputs and constants at 0, XOR/INV/EQW outputs at the
// max of their operands, AND outputs one deeper. All AND gates whose
// output lands at depth L+1 read only wires of depth <= L, so they are
// independent and batch into one exchange; the schedule interleaves
// each batch with the local gates that become computable before it.
//
// Slot allocation: instructions execute in schedule order, and a
// liveness pass records each wire's last read (circuit outputs are
// read at infinity). A wire's register returns to the free list at its
// last read, so peak register count is the maximum live-wire frontier.
// Within an AND batch all operands are read before any output is
// written (gmw.AndPackedMany concatenates its operand bits before
// computing), so a register freed by a batch's read can be reassigned
// to one of the same batch's outputs.
func Compile(c *Circuit) (*Program, error) {
	if c.Wires <= 0 || len(c.Inputs) == 0 {
		return nil, fmt.Errorf("circuit: Compile: circuit has no inputs")
	}
	inBits := c.InputBits()

	// Pass 1: wire levels and the AND depth.
	level := make([]int32, c.Wires)
	gateLevel := make([]int32, len(c.Gates)) // AND/MAND: exchange level; locals: availability level
	depth := int32(0)
	for gi := range c.Gates {
		g := &c.Gates[gi]
		switch g.Op {
		case EQ:
			level[g.Out[0]] = 0
		case XOR:
			l := max32(level[g.In[0]], level[g.In[1]])
			level[g.Out[0]] = l
			gateLevel[gi] = l
		case INV, EQW:
			l := level[g.In[0]]
			level[g.Out[0]] = l
			gateLevel[gi] = l
		case AND:
			l := max32(level[g.In[0]], level[g.In[1]]) + 1
			level[g.Out[0]] = l
			gateLevel[gi] = l
			depth = max32(depth, l)
		case MAND:
			// Each constituent AND levels independently; the gate's
			// outputs may land at different depths.
			k := len(g.Out)
			for j := 0; j < k; j++ {
				l := max32(level[g.In[j]], level[g.In[k+j]]) + 1
				level[g.Out[j]] = l
				depth = max32(depth, l)
			}
		default:
			return nil, fmt.Errorf("circuit: Compile: unknown op %v", g.Op)
		}
	}

	// Pass 2: schedule gates into levels. Locals keep their relative
	// file order inside a level (the parser's topological order makes
	// that dependency-safe); AND gates batch by output depth.
	type andRef struct{ a, b, out int32 }
	locals := make([][]int, depth+1)     // gate indices, by availability level
	batches := make([][]andRef, depth+1) // batches[L] produces the depth-L wires
	for gi := range c.Gates {
		g := &c.Gates[gi]
		switch g.Op {
		case AND:
			l := level[g.Out[0]]
			batches[l] = append(batches[l], andRef{g.In[0], g.In[1], g.Out[0]})
		case MAND:
			k := len(g.Out)
			for j := 0; j < k; j++ {
				l := level[g.Out[j]]
				batches[l] = append(batches[l], andRef{g.In[j], g.In[int32(k+j)], g.Out[j]})
			}
		default:
			locals[gateLevel[gi]] = append(locals[gateLevel[gi]], gi)
		}
	}

	// Pass 3: liveness. Positions: 0 = input placement, then each
	// local op and each AND batch takes one position in schedule order.
	lastRead := make([]int, c.Wires)
	for i := range lastRead {
		lastRead[i] = lastReadNever
	}
	pos := 0
	walk := func(visit func(l int32, gi int, batchPos bool, p int)) {
		pos = 0
		for l := int32(0); l <= depth; l++ {
			if l > 0 {
				pos++
				visit(l, -1, true, pos) // batch producing depth l runs before depth-l locals
			}
			for _, gi := range locals[l] {
				pos++
				visit(l, gi, false, pos)
			}
		}
	}
	walk(func(l int32, gi int, batch bool, p int) {
		if batch {
			for _, ar := range batches[l] {
				lastRead[ar.a] = p
				lastRead[ar.b] = p
			}
			return
		}
		g := &c.Gates[gi]
		if g.Op == EQ {
			return
		}
		for _, in := range g.In {
			lastRead[in] = p
		}
	})
	base := c.outputBase()
	for w := base; w < c.Wires; w++ {
		lastRead[w] = math.MaxInt
	}

	// Pass 4: allocation + emission.
	slotOf := make([]int32, c.Wires)
	for i := range slotOf {
		slotOf[i] = -1
	}
	var free []int32
	next := int32(0)
	alloc := func() int32 {
		if n := len(free); n > 0 {
			s := free[n-1]
			free = free[:n-1]
			return s
		}
		next++
		return next - 1
	}
	// release frees wire w's slot if position p was its last read.
	release := func(w int32, p int) {
		if lastRead[w] == p && slotOf[w] >= 0 {
			free = append(free, slotOf[w])
			slotOf[w] = -1
		}
	}

	prog := &Program{
		Circ:        c,
		ANDs:        c.NumANDs(),
		ANDLevels:   int(depth),
		Levels:      make([]Level, depth+1),
		InputSlots:  make([]int32, inBits),
		OutputSlots: make([]int32, c.OutputBits()),
	}
	for w := 0; w < inBits; w++ {
		if lastRead[w] == lastReadNever {
			prog.InputSlots[w] = -1
			continue
		}
		slotOf[w] = alloc()
		prog.InputSlots[w] = slotOf[w]
	}

	walk(func(l int32, gi int, batch bool, p int) {
		if batch {
			// The batch producing depth-l wires closes Levels[l-1]: the
			// evaluator runs a level's locals first, then its exchange,
			// and depth-l locals may read these outputs.
			lv := &prog.Levels[l-1]
			refs := batches[l]
			lv.AndA = make([]int32, len(refs))
			lv.AndB = make([]int32, len(refs))
			lv.AndD = make([]int32, len(refs))
			for i, ar := range refs {
				lv.AndA[i] = slotOf[ar.a]
				lv.AndB[i] = slotOf[ar.b]
			}
			for _, ar := range refs {
				release(ar.a, p)
				release(ar.b, p)
			}
			for i, ar := range refs {
				slotOf[ar.out] = alloc()
				lv.AndD[i] = slotOf[ar.out]
			}
			return
		}
		g := &c.Gates[gi]
		op := LocalOp{Op: g.Op}
		switch g.Op {
		case XOR:
			op.A, op.B = slotOf[g.In[0]], slotOf[g.In[1]]
			release(g.In[0], p)
			release(g.In[1], p)
		case INV, EQW:
			op.A = slotOf[g.In[0]]
			release(g.In[0], p)
		case EQ:
			op.A = g.In[0]
		}
		slotOf[g.Out[0]] = alloc()
		op.D = slotOf[g.Out[0]]
		prog.Levels[l].Pre = append(prog.Levels[l].Pre, op)
	})

	for i := range prog.OutputSlots {
		prog.OutputSlots[i] = slotOf[base+i]
	}
	prog.Slots = int(next)
	return prog, nil
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}
