package circuit

import (
	"fmt"

	"ironman/internal/gmw"
	"ironman/internal/obs"
)

// EvalOpts tunes one secure evaluation. The zero value (or a nil
// pointer) disables all instrumentation.
type EvalOpts struct {
	// Trace, when non-nil, records one "circuit.level" span per
	// schedule level (local gates + the batched exchange), with the
	// level index and AND count in the span args.
	Trace *obs.Tracer
	// TID is the tracer thread lane; 0 defaults to lane 1.
	TID int
}

// PackInstances lays K instances of plaintext bits out as per-wire
// planes: instances[k] is instance k's LSB-first bit vector, and plane
// i carries bit i of every instance (bit k of plane i = instance k's
// wire i). The result is the inputs layout Eval consumes — one K-bit
// plane per wire.
func PackInstances(instances [][]bool) ([]gmw.PackedShare, error) {
	if len(instances) == 0 {
		return nil, fmt.Errorf("circuit: PackInstances needs at least one instance")
	}
	n := len(instances[0])
	k := len(instances)
	planes := make([]gmw.PackedShare, n)
	col := make([]bool, k)
	for i := 0; i < n; i++ {
		for j, inst := range instances {
			if len(inst) != n {
				return nil, fmt.Errorf("circuit: PackInstances instance %d has %d bits, want %d", j, len(inst), n)
			}
			col[j] = inst[i]
		}
		planes[i] = gmw.PackBools(col)
	}
	return planes, nil
}

// UnpackInstances inverts PackInstances: per-wire K-bit planes back to
// K per-instance bit vectors.
func UnpackInstances(planes []gmw.PackedShare) [][]bool {
	if len(planes) == 0 {
		return nil
	}
	k := planes[0].Len()
	out := make([][]bool, k)
	for j := range out {
		out[j] = make([]bool, len(planes))
	}
	for i := range planes {
		for j := 0; j < k; j++ {
			out[j][i] = planes[i].Bit(j)
		}
	}
	return out
}

// SharePlanes XOR-shares K instances of an input value: the owner
// passes its plaintext instance bits, the peer passes mine=false to
// hold the all-zero share. For threshold inputs (a value neither party
// knows, e.g. an XOR-split AES key) both parties pass their local
// share bits with mine=true — the shared value is the XOR.
func SharePlanes(instances [][]bool, bits int, mine bool) ([]gmw.PackedShare, error) {
	if !mine {
		if len(instances) == 0 {
			return nil, fmt.Errorf("circuit: SharePlanes needs the instance count on the non-owning side")
		}
		planes := make([]gmw.PackedShare, bits)
		for i := range planes {
			planes[i] = gmw.NewPacked(len(instances))
		}
		return planes, nil
	}
	for j, inst := range instances {
		if len(inst) != bits {
			return nil, fmt.Errorf("circuit: SharePlanes instance %d has %d bits, want %d", j, len(inst), bits)
		}
	}
	return PackInstances(instances)
}

// Eval runs the compiled schedule over the GMW engine: inputs is one
// K-bit plane per circuit input wire (every plane the same length K =
// the SIMD instance count), and the result is one K-bit plane per
// output wire. Each AND level of the schedule is one
// gmw.AndPackedMany exchange carrying levelANDs x K gates, so the
// exchange count equals the circuit's AND depth regardless of K.
//
// The whole budget (ANDs x K correlations, per direction) is
// preflighted against the party's pools before the first flight: an
// under-provisioned pool fails loudly up front on both sides instead
// of desyncing the peers mid-circuit.
func (prog *Program) Eval(p *gmw.Party, inputs []gmw.PackedShare, opts *EvalOpts) ([]gmw.PackedShare, error) {
	c := prog.Circ
	if len(inputs) != c.InputBits() {
		return nil, fmt.Errorf("circuit: Eval needs %d input planes, got %d", c.InputBits(), len(inputs))
	}
	k := 0
	if len(inputs) > 0 {
		k = inputs[0].Len()
	}
	if k == 0 {
		return nil, fmt.Errorf("circuit: Eval needs at least one packed instance")
	}
	for i := range inputs {
		if inputs[i].Len() != k {
			return nil, fmt.Errorf("circuit: Eval input plane %d has %d instances, want %d", i, inputs[i].Len(), k)
		}
	}
	if err := p.Preflight(prog.Budget(k)); err != nil {
		return nil, fmt.Errorf("circuit: %w", err)
	}

	var tr *obs.Tracer
	tid := 1
	if opts != nil {
		tr = opts.Trace
		if opts.TID != 0 {
			tid = opts.TID
		}
	}

	// Constant planes: EQ gates share the two values.
	ones := make([]bool, k)
	for i := range ones {
		ones[i] = true
	}
	constPlane := [2]gmw.PackedShare{gmw.NewPacked(k), p.NewPublicPacked(ones)}

	regs := make([]gmw.PackedShare, prog.Slots)
	for i, s := range prog.InputSlots {
		if s >= 0 {
			regs[s] = inputs[i]
		}
	}

	var pairs [][2]gmw.PackedShare
	for li := range prog.Levels {
		lv := &prog.Levels[li]
		sp := tr.Span("circuit.level", "circuit", tid)
		for i := range lv.Pre {
			op := &lv.Pre[i]
			switch op.Op {
			case XOR:
				x, err := gmw.XorPacked(regs[op.A], regs[op.B])
				if err != nil {
					return nil, fmt.Errorf("circuit: level %d: %w", li, err)
				}
				regs[op.D] = x
			case INV:
				regs[op.D] = p.NotPacked(regs[op.A])
			case EQW:
				regs[op.D] = regs[op.A]
			case EQ:
				regs[op.D] = constPlane[op.A]
			}
		}
		if len(lv.AndA) > 0 {
			pairs = pairs[:0]
			for i := range lv.AndA {
				pairs = append(pairs, [2]gmw.PackedShare{regs[lv.AndA[i]], regs[lv.AndB[i]]})
			}
			outs, err := p.AndPackedMany(pairs)
			if err != nil {
				return nil, fmt.Errorf("circuit: level %d exchange: %w", li, err)
			}
			for i := range outs {
				regs[lv.AndD[i]] = outs[i]
			}
		}
		if sp.Live() {
			sp.EndArgs(map[string]any{
				"level":     li,
				"ands":      len(lv.AndA) * k,
				"local_ops": len(lv.Pre),
			})
		}
	}

	out := make([]gmw.PackedShare, len(prog.OutputSlots))
	for i, s := range prog.OutputSlots {
		out[i] = regs[s]
	}
	return out, nil
}

// Reveal opens output planes to both parties and unpacks them into K
// per-instance output bit vectors — the convenience tail of a
// Load/Compile/Eval pipeline. One exchange opens all planes.
func Reveal(p *gmw.Party, planes []gmw.PackedShare) ([][]bool, error) {
	if len(planes) == 0 {
		return nil, nil
	}
	vals, err := p.RevealPlanes(planes)
	if err != nil {
		return nil, err
	}
	return UnpackInstances(vals), nil
}
