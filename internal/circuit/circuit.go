// Package circuit is the standard-circuit frontend of the GMW engine:
// it loads Bristol-fashion Boolean circuits (the interchange format
// AES, SHA-2 and integer arithmetic netlists are published in),
// levels the gate DAG so every AND level becomes ONE batched OT
// exchange, and evaluates K independent instances of the same circuit
// SIMD-packed across the word lanes of the engine's bitsliced shares.
//
// The pipeline is Load -> Compile -> Eval:
//
//	c, _ := circuit.LoadFile("aes128.btl.gz")
//	prog, _ := circuit.Compile(c)
//	out, _ := prog.Eval(party, inputs, nil) // inputs: one K-bit plane per input wire
//
// XOR/INV/EQ/EQW gates are local (free); AND and MAND gates consume
// chosen OTs through gmw.AndPackedMany, with all AND gates of equal
// circuit depth batched into a single two-flight exchange. Evaluating
// K instances at once multiplies every exchange's payload by K but
// leaves the exchange (network round) count unchanged — the
// amortization that makes OT-hungry Boolean workloads (the nonlinear
// layers of the Ironman paper's PPML scenarios) cheap per instance.
package circuit

import (
	"fmt"
	"io"
	"strings"
)

// Op is a Bristol gate type.
type Op uint8

const (
	// XOR is the free 2-input XOR gate.
	XOR Op = iota
	// AND is the 2-input AND gate (2 chosen OTs under GMW).
	AND
	// INV is the 1-input NOT gate (free; NOT is accepted as an alias).
	INV
	// EQ assigns a constant bit: its "input" operand is the literal 0
	// or 1, not a wire.
	EQ
	// EQW copies a wire (free).
	EQW
	// MAND is the multi-AND extension gate: 2k inputs a_1..a_k
	// b_1..b_k produce k outputs c_i = a_i AND b_i.
	MAND
)

// String returns the Bristol keyword of the op.
func (op Op) String() string {
	switch op {
	case XOR:
		return "XOR"
	case AND:
		return "AND"
	case INV:
		return "INV"
	case EQ:
		return "EQ"
	case EQW:
		return "EQW"
	case MAND:
		return "MAND"
	}
	return fmt.Sprintf("Op(%d)", uint8(op))
}

// Gate is one Bristol gate. In holds input wire indices, except for
// EQ, where In[0] is the constant bit value (0 or 1).
type Gate struct {
	Op  Op
	In  []int32
	Out []int32
}

// Circuit is a parsed Bristol circuit. Wires are numbered 0..Wires-1:
// the first sum(Inputs) wires are the circuit inputs in declaration
// order, the last sum(Outputs) wires are the outputs, and Gates is in
// topological order (the parser rejects use-before-definition).
type Circuit struct {
	Gates   []Gate
	Wires   int
	Inputs  []int // bits per input value, in wire order
	Outputs []int // bits per output value, in wire order
}

// InputBits returns the total input wire count.
func (c *Circuit) InputBits() int { return sum(c.Inputs) }

// OutputBits returns the total output wire count.
func (c *Circuit) OutputBits() int { return sum(c.Outputs) }

func sum(v []int) int {
	t := 0
	for _, x := range v {
		t += x
	}
	return t
}

// NumANDs counts the AND gates (MAND counts its full width) — the
// circuit's total OT-consuming gate count per evaluated instance.
func (c *Circuit) NumANDs() int {
	n := 0
	for i := range c.Gates {
		switch c.Gates[i].Op {
		case AND:
			n++
		case MAND:
			n += len(c.Gates[i].Out)
		}
	}
	return n
}

// outputBase returns the wire index of the first output wire.
func (c *Circuit) outputBase() int { return c.Wires - c.OutputBits() }

// EvalPlain evaluates the circuit in the clear: inputs holds one
// LSB-first bit vector per declared input value, and the result is one
// bit vector per declared output value. This is the reference
// implementation the secure evaluator is cross-checked against.
func (c *Circuit) EvalPlain(inputs [][]bool) ([][]bool, error) {
	if len(inputs) != len(c.Inputs) {
		return nil, fmt.Errorf("circuit: EvalPlain needs %d input values, got %d", len(c.Inputs), len(inputs))
	}
	wires := make([]bool, c.Wires)
	w := 0
	for i, in := range inputs {
		if len(in) != c.Inputs[i] {
			return nil, fmt.Errorf("circuit: EvalPlain input %d needs %d bits, got %d", i, c.Inputs[i], len(in))
		}
		copy(wires[w:], in)
		w += len(in)
	}
	for gi := range c.Gates {
		g := &c.Gates[gi]
		switch g.Op {
		case XOR:
			wires[g.Out[0]] = wires[g.In[0]] != wires[g.In[1]]
		case AND:
			wires[g.Out[0]] = wires[g.In[0]] && wires[g.In[1]]
		case INV:
			wires[g.Out[0]] = !wires[g.In[0]]
		case EQ:
			wires[g.Out[0]] = g.In[0] == 1
		case EQW:
			wires[g.Out[0]] = wires[g.In[0]]
		case MAND:
			k := len(g.Out)
			for j := 0; j < k; j++ {
				wires[g.Out[j]] = wires[g.In[j]] && wires[g.In[k+j]]
			}
		default:
			return nil, fmt.Errorf("circuit: EvalPlain: unknown op %v", g.Op)
		}
	}
	out := make([][]bool, len(c.Outputs))
	w = c.outputBase()
	for i, n := range c.Outputs {
		out[i] = make([]bool, n)
		copy(out[i], wires[w:w+n])
		w += n
	}
	return out, nil
}

// Marshal serializes the circuit in Bristol Fashion text form — the
// inverse of Load for circuits built programmatically.
func (c *Circuit) Marshal(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "%d %d\n", len(c.Gates), c.Wires)
	fmt.Fprintf(&b, "%d", len(c.Inputs))
	for _, n := range c.Inputs {
		fmt.Fprintf(&b, " %d", n)
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%d", len(c.Outputs))
	for _, n := range c.Outputs {
		fmt.Fprintf(&b, " %d", n)
	}
	b.WriteString("\n\n")
	if _, err := io.WriteString(w, b.String()); err != nil {
		return err
	}
	// Gates stream through a reused builder so marshaling a
	// multi-hundred-thousand-gate circuit does not hold two copies of
	// the text in memory.
	for gi := range c.Gates {
		b.Reset()
		g := &c.Gates[gi]
		fmt.Fprintf(&b, "%d %d", len(g.In), len(g.Out))
		for _, x := range g.In {
			fmt.Fprintf(&b, " %d", x)
		}
		for _, x := range g.Out {
			fmt.Fprintf(&b, " %d", x)
		}
		b.WriteByte(' ')
		b.WriteString(g.Op.String())
		b.WriteByte('\n')
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// Uint64Bits returns the LSB-first width-bit decomposition of v — the
// bit layout circuit inputs use.
func Uint64Bits(v uint64, width int) []bool {
	bits := make([]bool, width)
	for i := range bits {
		bits[i] = v>>uint(i)&1 == 1
	}
	return bits
}

// BitsUint64 recomposes LSB-first bits into a value.
func BitsUint64(bits []bool) uint64 {
	var v uint64
	for i, b := range bits {
		if b {
			v |= 1 << uint(i)
		}
	}
	return v
}

// BytesBits returns the LSB-first-per-byte bit decomposition of a byte
// string: bit j of byte i lands at index 8i+j. This is the layout the
// embedded AES-128 circuit uses for plaintext, key, and ciphertext.
func BytesBits(p []byte) []bool {
	bits := make([]bool, 8*len(p))
	for i, by := range p {
		for j := 0; j < 8; j++ {
			bits[8*i+j] = by>>uint(j)&1 == 1
		}
	}
	return bits
}

// BitsBytes recomposes BytesBits output into a byte string.
func BitsBytes(bits []bool) []byte {
	p := make([]byte, len(bits)/8)
	for i := range p {
		for j := 0; j < 8; j++ {
			if bits[8*i+j] {
				p[i] |= 1 << uint(j)
			}
		}
	}
	return p
}
