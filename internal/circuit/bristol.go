package circuit

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Load parses a Bristol circuit from r. Both header dialects are
// accepted:
//
//	"Bristol Fashion" (new):        "Bristol Format" (legacy):
//	  ngates nwires                   ngates nwires
//	  niv s_1 ... s_niv               inA inB nout
//	  nov t_1 ... t_nov               <gates>
//	  <blank>
//	  <gates>
//
// Gate lines are "nin nout in... out... OP" with OP one of XOR, AND,
// INV (NOT accepted as an alias), EQ, EQW, MAND. Gzip-compressed input
// is detected by magic bytes and decompressed transparently.
//
// Validation is strict and every error carries the 1-based line
// number: wires must be in range, defined exactly once, and defined
// before use (so Gates is topologically ordered on return); the gate
// count must match the header; and every wire — in particular every
// output wire — must be driven by an input or a gate (no dangling
// wires).
func Load(r io.Reader) (*Circuit, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	if magic, err := br.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("circuit: gzip header: %w", err)
		}
		defer zr.Close()
		return load(bufio.NewReaderSize(zr, 1<<16))
	}
	return load(br)
}

// LoadFile is Load over a file path.
func LoadFile(path string) (*Circuit, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	c, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return c, nil
}

// lineScanner yields non-blank lines with their 1-based line numbers.
type lineScanner struct {
	sc   *bufio.Scanner
	line int
}

func (s *lineScanner) next() (fields []string, line int, ok bool) {
	for s.sc.Scan() {
		s.line++
		f := strings.Fields(s.sc.Text())
		if len(f) > 0 {
			return f, s.line, true
		}
	}
	return nil, s.line, false
}

func parseCount(tok, what string, line int) (int, error) {
	v, err := strconv.Atoi(tok)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("circuit: line %d: bad %s %q", line, what, tok)
	}
	return v, nil
}

func load(r io.Reader) (*Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	ls := &lineScanner{sc: sc}

	// Header line 1: gate and wire counts.
	f1, l1, ok := ls.next()
	if !ok {
		return nil, fmt.Errorf("circuit: line %d: empty input", ls.line+1)
	}
	if len(f1) != 2 {
		return nil, fmt.Errorf("circuit: line %d: header needs \"ngates nwires\", got %d fields", l1, len(f1))
	}
	ngates, err := parseCount(f1[0], "gate count", l1)
	if err != nil {
		return nil, err
	}
	nwires, err := parseCount(f1[1], "wire count", l1)
	if err != nil {
		return nil, err
	}
	if nwires == 0 {
		return nil, fmt.Errorf("circuit: line %d: circuit must have at least one wire", l1)
	}

	f2, l2, ok := ls.next()
	if !ok {
		return nil, fmt.Errorf("circuit: line %d: missing input declaration", ls.line+1)
	}
	f3, l3, ok := ls.next()
	if !ok {
		return nil, fmt.Errorf("circuit: line %d: missing output declaration", ls.line+1)
	}

	c := &Circuit{Wires: nwires}
	var gateFields []string
	var gateLine int
	haveGate := false

	// Dialect split: in the legacy format the third non-blank line is
	// already a gate (its last field is an op keyword); in Bristol
	// Fashion it is the output declaration (all integers).
	if isOpKeyword(f3[len(f3)-1]) {
		// Legacy "Bristol Format": line 2 is "inA inB nout".
		if len(f2) != 3 {
			return nil, fmt.Errorf("circuit: line %d: legacy header needs \"inA inB nout\", got %d fields", l2, len(f2))
		}
		inA, err := parseCount(f2[0], "input-A width", l2)
		if err != nil {
			return nil, err
		}
		inB, err := parseCount(f2[1], "input-B width", l2)
		if err != nil {
			return nil, err
		}
		nout, err := parseCount(f2[2], "output width", l2)
		if err != nil {
			return nil, err
		}
		c.Inputs = []int{inA, inB}
		if inB == 0 {
			c.Inputs = []int{inA}
		}
		c.Outputs = []int{nout}
		gateFields, gateLine, haveGate = f3, l3, true
	} else {
		// Bristol Fashion: lines 2 and 3 declare the input and output
		// value widths.
		c.Inputs, err = parseValueDecl(f2, "input", l2)
		if err != nil {
			return nil, err
		}
		c.Outputs, err = parseValueDecl(f3, "output", l3)
		if err != nil {
			return nil, err
		}
	}

	inBits := c.InputBits()
	outBits := c.OutputBits()
	if inBits+outBits > nwires {
		return nil, fmt.Errorf("circuit: line %d: %d input + %d output wires exceed %d total wires", l2, inBits, outBits, nwires)
	}

	// defined[w] tracks single assignment and definition-before-use.
	defined := make([]bool, nwires)
	for w := 0; w < inBits; w++ {
		defined[w] = true
	}

	c.Gates = make([]Gate, 0, ngates)
	for {
		if !haveGate {
			gateFields, gateLine, haveGate = ls.next()
			if !haveGate {
				break
			}
		}
		g, err := parseGate(gateFields, gateLine, nwires, defined)
		if err != nil {
			return nil, err
		}
		c.Gates = append(c.Gates, g)
		haveGate = false
		if len(c.Gates) > ngates {
			return nil, fmt.Errorf("circuit: line %d: more gates than the declared %d", gateLine, ngates)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("circuit: read: %w", err)
	}
	if len(c.Gates) != ngates {
		return nil, fmt.Errorf("circuit: line %d: header declares %d gates but %d found", ls.line, ngates, len(c.Gates))
	}
	for w, def := range defined {
		if !def {
			return nil, fmt.Errorf("circuit: dangling wire %d: never driven by an input or gate output", w)
		}
	}
	return c, nil
}

func parseValueDecl(f []string, what string, line int) ([]int, error) {
	n, err := parseCount(f[0], what+" value count", line)
	if err != nil {
		return nil, err
	}
	if len(f) != n+1 {
		return nil, fmt.Errorf("circuit: line %d: %s declaration names %d values but has %d widths", line, what, n, len(f)-1)
	}
	if n == 0 {
		return nil, fmt.Errorf("circuit: line %d: circuit needs at least one %s value", line, what)
	}
	sizes := make([]int, n)
	for i := 0; i < n; i++ {
		w, err := parseCount(f[i+1], what+" width", line)
		if err != nil {
			return nil, err
		}
		if w == 0 {
			return nil, fmt.Errorf("circuit: line %d: %s value %d has zero width", line, what, i)
		}
		sizes[i] = w
	}
	return sizes, nil
}

func isOpKeyword(tok string) bool {
	switch tok {
	case "XOR", "AND", "INV", "NOT", "EQ", "EQW", "MAND":
		return true
	}
	return false
}

// gateShape returns the op and its required input arity for a fixed-
// arity gate; MAND (variable arity) is handled by the caller.
func opFor(tok string) (Op, bool) {
	switch tok {
	case "XOR":
		return XOR, true
	case "AND":
		return AND, true
	case "INV", "NOT":
		return INV, true
	case "EQ":
		return EQ, true
	case "EQW":
		return EQW, true
	case "MAND":
		return MAND, true
	}
	return 0, false
}

func parseGate(f []string, line, nwires int, defined []bool) (Gate, error) {
	opTok := f[len(f)-1]
	op, ok := opFor(opTok)
	if !ok {
		return Gate{}, fmt.Errorf("circuit: line %d: unknown gate type %q", line, opTok)
	}
	if len(f) < 3 {
		return Gate{}, fmt.Errorf("circuit: line %d: truncated gate line", line)
	}
	nin, err := parseCount(f[0], "gate input count", line)
	if err != nil {
		return Gate{}, err
	}
	nout, err := parseCount(f[1], "gate output count", line)
	if err != nil {
		return Gate{}, err
	}
	if len(f) != 2+nin+nout+1 {
		return Gate{}, fmt.Errorf("circuit: line %d: %s gate declares %d inputs and %d outputs but line has %d operands",
			line, opTok, nin, nout, len(f)-3)
	}
	switch op {
	case XOR, AND:
		if nin != 2 || nout != 1 {
			return Gate{}, fmt.Errorf("circuit: line %d: %s gate needs 2 inputs and 1 output, got %d/%d", line, opTok, nin, nout)
		}
	case INV, EQ, EQW:
		if nin != 1 || nout != 1 {
			return Gate{}, fmt.Errorf("circuit: line %d: %s gate needs 1 input and 1 output, got %d/%d", line, opTok, nin, nout)
		}
	case MAND:
		if nout == 0 || nin != 2*nout {
			return Gate{}, fmt.Errorf("circuit: line %d: MAND gate needs 2k inputs and k>0 outputs, got %d/%d", line, nin, nout)
		}
	}
	g := Gate{Op: op, In: make([]int32, nin), Out: make([]int32, nout)}
	for i := 0; i < nin; i++ {
		v, err := strconv.Atoi(f[2+i])
		if err != nil {
			return Gate{}, fmt.Errorf("circuit: line %d: bad input operand %q", line, f[2+i])
		}
		if op == EQ {
			if v != 0 && v != 1 {
				return Gate{}, fmt.Errorf("circuit: line %d: EQ constant must be 0 or 1, got %d", line, v)
			}
		} else {
			if v < 0 || v >= nwires {
				return Gate{}, fmt.Errorf("circuit: line %d: input wire %d out of range [0,%d)", line, v, nwires)
			}
			if !defined[v] {
				return Gate{}, fmt.Errorf("circuit: line %d: wire %d used before it is defined (gates out of order?)", line, v)
			}
		}
		g.In[i] = int32(v)
	}
	for i := 0; i < nout; i++ {
		v, err := strconv.Atoi(f[2+nin+i])
		if err != nil {
			return Gate{}, fmt.Errorf("circuit: line %d: bad output operand %q", line, f[2+nin+i])
		}
		if v < 0 || v >= nwires {
			return Gate{}, fmt.Errorf("circuit: line %d: output wire %d out of range [0,%d)", line, v, nwires)
		}
		if defined[v] {
			return Gate{}, fmt.Errorf("circuit: line %d: wire %d defined twice", line, v)
		}
		defined[v] = true
		g.Out[i] = int32(v)
	}
	return g, nil
}
