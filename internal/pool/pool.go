// Package pool provides asynchronous, double-buffered correlation
// pools: background workers run protocol iterations (ferret.Extend)
// pipelined ahead of demand, so drawing correlations almost never
// blocks on an interactive protocol round trip.
//
// A pool wraps a source function that produces one batch of
// correlations per call. With Config.Depth == 0 the pool is a plain
// synchronous buffer — the drawing goroutine runs the source inline,
// exactly the seed code path. With Depth > 0 a worker goroutine keeps
// up to Depth batches ready, refilling whenever the ready count falls
// below the low-water mark (classic double-buffer hysteresis: dip
// below low water, fill back up to high water).
//
// Because the source is usually an interactive two-party protocol,
// asynchronous refills put protocol traffic on the pool's conn from a
// background goroutine. The conn must therefore be dedicated to
// correlation generation while a Depth > 0 pool is open; multiplex
// application traffic onto a second conn. Dealt keeps both endpoints
// of an in-process pair in lockstep under one worker, which is what
// the otserv dispenser builds sessions from.
//
// The ready buffer is compacted as it drains: unlike the seed's
// `buf = buf[n:]` pattern, a consumed prefix never pins the backing
// array once it dominates the buffer.
//
// Refill parallelism lives inside the source, not the pool: a source
// built from a ferret endpoint with Options.Workers > 1 shards each
// Extend's local phases across cores, so one background refill
// goroutine is enough to saturate the host — the pool never runs two
// refills of one stream concurrently (protocol iterations are
// inherently sequential on a conn).
package pool

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"ironman/internal/block"
)

// ErrClosed is returned by draws on a closed pool.
var ErrClosed = errors.New("pool: closed")

// ErrRetained is returned by a Dealt draw that cannot be satisfied
// because the paired half has hit its retention cap: generating more
// would grow the undrawn half without bound. Drain the other half or
// close the pool.
var ErrRetained = errors.New("pool: paired half at retention cap")

// ErrDry is the typed shed for a blocked draw that ran into the pool's
// backpressure bounds: generation is behind demand and either the draw
// waited Config.MaxWait without being satisfied or Config.MaxWaiters
// draws were already queued. The draw consumed nothing; the caller can
// retry, back off, or surface the shed (the otserv dispenser maps it
// to its typed pool-dry protocol status). Never returned when both
// bounds are disabled.
var ErrDry = errors.New("pool: dry")

// compactMin is the consumed-prefix size (in correlations) below which
// compaction is not worth the copy.
const compactMin = 1024

// Config tunes a pool.
type Config struct {
	// Depth is the number of source batches kept generated ahead of
	// demand (the high-water mark, in batches). 0 disables the
	// background worker: draws run the source inline on the calling
	// goroutine, which is the synchronous seed behaviour.
	Depth int
	// LowWater is the ready-correlation count that triggers a
	// background refill. 0 selects half the high-water mark. Ignored
	// when Depth == 0.
	LowWater int
	// MaxBuffered caps how many ready correlations either half of a
	// Dealt pool may retain (correlations are pairwise, so a consumer
	// that drains only one half grows the other with every refill).
	// When the cap blocks generation, draws on the starved half fail
	// with ErrRetained instead of exhausting memory. 0 selects
	// (Depth+8) batches; negative disables the cap. Ignored by Sender
	// and Receiver pools, whose single buffer is bounded by demand.
	MaxBuffered int
	// MaxWait bounds how long one blocked draw waits for generation
	// before shedding with ErrDry; 0 waits forever. A serving layer
	// sets this so a draw storm degrades into typed rejections instead
	// of an unbounded convoy. Ignored when Depth == 0 (the draw runs
	// the source inline and is bounded by the source itself).
	MaxWait time.Duration
	// MaxWaiters bounds how many draws may be blocked on generation at
	// once; a draw that would become waiter MaxWaiters+1 sheds
	// immediately with ErrDry. 0 disables the bound.
	MaxWaiters int
	// Obs mirrors this pool's counters into a metrics registry (for a
	// Dealt pool: the sender half). nil disables mirroring.
	Obs *Observer
	// ObsReceiver is the receiver half's observer of a Dealt pool;
	// ignored by Sender and Receiver pools.
	ObsReceiver *Observer
}

// Stats are one pool's lifetime counters. All counts are correlations
// unless noted.
type Stats struct {
	Generated    uint64        // produced by the source
	Dispensed    uint64        // handed to callers
	Refills      uint64        // source invocations
	Draws        uint64        // draw calls
	BlockedDraws uint64        // draws that had to wait for generation
	BlockedTime  time.Duration // total time draws spent waiting
	Buffered     int           // ready correlations right now
}

// core holds the state shared by all pool flavours. Methods are called
// with mu held unless noted.
type core struct {
	mu      sync.Mutex
	cond    *sync.Cond
	cfg     Config
	batch   int // observed source batch size; 0 until the first refill
	filling bool
	demand  int // largest unsatisfied draw, 0 when none waits
	waiters int // draws currently blocked on generation
	err     error
	closed  bool
	wg      sync.WaitGroup
}

func (c *core) init(cfg Config) {
	c.cfg = cfg
	c.cond = sync.NewCond(&c.mu)
	c.filling = true // prefetch to high water right away
}

// needRefill decides whether the worker should run the source, given
// the current ready count (of the most-depleted buffer).
func (c *core) needRefill(ready int) bool {
	if c.closed || c.err != nil {
		return false
	}
	if c.demand > ready {
		return true
	}
	if c.batch == 0 {
		return true // bootstrap: no batch size known yet
	}
	hw := c.cfg.Depth * c.batch
	lw := c.cfg.LowWater
	if lw <= 0 {
		lw = hw / 2
	}
	if lw > hw {
		lw = hw
	}
	if c.filling {
		if ready < hw {
			return true
		}
		c.filling = false
		return false
	}
	if ready < lw {
		c.filling = true
		return true
	}
	return false
}

// noteBatch records a completed refill of n correlations.
func (c *core) noteBatch(n int) error {
	if c.batch == 0 {
		if n == 0 {
			return errors.New("pool: source produced an empty batch")
		}
		c.batch = n
	}
	return nil
}

// runWorker is the background refill loop. ready and refill are
// supplied by the concrete pool; refill runs the (interactive) source
// outside the lock and appends under it.
func (c *core) runWorker(ready func() int, refill func() error) {
	defer c.wg.Done()
	for {
		c.mu.Lock()
		for !c.closed && c.err == nil && !c.needRefill(ready()) {
			c.cond.Wait()
		}
		stop := c.closed || c.err != nil
		c.mu.Unlock()
		if stop {
			return
		}
		err := refill()
		c.mu.Lock()
		if err != nil {
			c.err = err
		}
		c.cond.Broadcast()
		c.mu.Unlock()
		if err != nil {
			return
		}
	}
}

// await blocks until ready() >= n, the pool closes, the source fails,
// stalled (optional) reports that generation cannot proceed, or the
// backpressure bounds (Config.MaxWait / MaxWaiters) shed the draw with
// ErrDry. Returns with mu held. stats is the half being drawn from;
// pending (optional) mirrors the unmet demand for that half so cap
// accounting can discount correlations a waiting draw is about to
// consume. Waiters re-assert demand every iteration, so clearing it on
// exit is safe with other draws still queued.
func (c *core) await(n int, ready func() int, stats *Stats, o *Observer, stalled func() error, pending *int) error {
	blocked := false
	var begin, deadline time.Time
	var timer *time.Timer
	defer func() {
		if blocked {
			d := time.Since(begin)
			stats.BlockedTime += d
			o.noteBlockedTime(d)
			c.waiters--
			if timer != nil {
				timer.Stop()
			}
		}
		c.demand = 0
		if pending != nil {
			*pending = 0
		}
	}()
	for ready() < n {
		if c.closed {
			return ErrClosed
		}
		if c.err != nil {
			return c.err
		}
		if n > c.demand {
			c.demand = n
		}
		if pending != nil && n > *pending {
			*pending = n
		}
		if stalled != nil {
			if err := stalled(); err != nil {
				o.noteStalled()
				return err
			}
		}
		if !blocked {
			if c.cfg.MaxWaiters > 0 && c.waiters >= c.cfg.MaxWaiters {
				o.noteStalled()
				return fmt.Errorf("%w: %d draws already waiting on generation", ErrDry, c.waiters)
			}
			blocked = true
			c.waiters++
			stats.BlockedDraws++
			o.noteBlockedDraw()
			begin = time.Now()
			if c.cfg.MaxWait > 0 {
				deadline = begin.Add(c.cfg.MaxWait)
				// The timer only wakes the wait loop; the deadline
				// check below decides. Broadcast under the lock so
				// the wakeup cannot slip between the check and Wait.
				timer = time.AfterFunc(c.cfg.MaxWait, func() {
					c.mu.Lock()
					c.cond.Broadcast()
					c.mu.Unlock()
				})
			}
		} else if !deadline.IsZero() && !time.Now().Before(deadline) {
			o.noteStalled()
			return fmt.Errorf("%w: draw of %d waited %v for generation", ErrDry, n, c.cfg.MaxWait)
		}
		c.cond.Broadcast() // wake the worker
		c.cond.Wait()
	}
	return nil
}

// close marks the pool closed and waits for the worker to exit. If the
// worker is mid-iteration inside an interactive source, close blocks
// until that iteration completes; interrupt a wedged iteration by
// closing the underlying conn first.
func (c *core) close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
	c.wg.Wait()
}

// blockBuf is a draining block buffer with prefix compaction.
type blockBuf struct {
	buf  []block.Block
	head int
}

func (b *blockBuf) ready() int { return len(b.buf) - b.head }

func (b *blockBuf) push(z []block.Block) { b.buf = append(b.buf, z...) }

// pop copies out n correlations and compacts the buffer once the
// consumed prefix dominates, so dispensed correlations never pin the
// pool's backing array.
func (b *blockBuf) pop(n int) []block.Block {
	out := make([]block.Block, n)
	copy(out, b.buf[b.head:b.head+n])
	b.head += n
	if b.head >= compactMin && b.head*2 >= len(b.buf) {
		rest := copy(b.buf, b.buf[b.head:])
		b.buf = b.buf[:rest]
		b.head = 0
	}
	return out
}

// bitBuf is the receiver-half twin: choice bits plus r_b blocks.
type bitBuf struct {
	bits   []bool
	blocks []block.Block
	head   int
}

func (b *bitBuf) ready() int { return len(b.bits) - b.head }

func (b *bitBuf) push(bits []bool, blocks []block.Block) {
	b.bits = append(b.bits, bits...)
	b.blocks = append(b.blocks, blocks...)
}

func (b *bitBuf) pop(n int) ([]bool, []block.Block) {
	bits := make([]bool, n)
	blocks := make([]block.Block, n)
	copy(bits, b.bits[b.head:b.head+n])
	copy(blocks, b.blocks[b.head:b.head+n])
	b.head += n
	if b.head >= compactMin && b.head*2 >= len(b.bits) {
		rest := copy(b.bits, b.bits[b.head:])
		copy(b.blocks, b.blocks[b.head:])
		b.bits = b.bits[:rest]
		b.blocks = b.blocks[:rest]
		b.head = 0
	}
	return bits, blocks
}

// SenderRefill produces one batch of sender-half correlations
// (r0 blocks under the pool owner's Δ). ferret.(*Sender).Extend fits.
type SenderRefill func() ([]block.Block, error)

// Sender buffers the sender half of a correlation stream.
type Sender struct {
	core
	src   SenderRefill
	buf   blockBuf
	stats Stats
}

// NewSender builds a pool over src. With cfg.Depth > 0 a background
// worker starts prefetching immediately.
func NewSender(src SenderRefill, cfg Config) *Sender {
	p := &Sender{src: src}
	p.init(cfg)
	if cfg.Depth > 0 {
		p.wg.Add(1)
		go p.runWorker(p.buf.ready, p.refill)
	}
	return p
}

// ingest appends one source batch; called with mu held. dur is how
// long the source ran (observability only).
func (p *Sender) ingest(z []block.Block, dur time.Duration) error {
	if err := p.noteBatch(len(z)); err != nil {
		return err
	}
	p.buf.push(z)
	p.stats.Refills++
	p.stats.Generated += uint64(len(z))
	p.cfg.Obs.noteRefill(len(z), p.buf.ready(), dur)
	return nil
}

// refill runs one source batch; called by the worker outside the lock.
func (p *Sender) refill() error {
	begin := time.Now()
	z, err := p.src()
	if err != nil {
		return err
	}
	dur := time.Since(begin)
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ingest(z, dur)
}

// COTs draws n correlations, waiting for (or, when Depth == 0,
// running) generation as needed. The returned slice is owned by the
// caller.
func (p *Sender) COTs(n int) ([]block.Block, error) {
	if n < 0 {
		return nil, fmt.Errorf("pool: negative draw %d", n)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Draws++
	p.cfg.Obs.noteDraw()
	if p.cfg.Depth <= 0 {
		for p.buf.ready() < n {
			if p.closed {
				return nil, ErrClosed
			}
			if p.err != nil {
				return nil, p.err
			}
			begin := time.Now()
			z, err := p.src()
			if err == nil {
				err = p.ingest(z, time.Since(begin))
			}
			if err != nil {
				p.err = err
				return nil, err
			}
		}
	} else if err := p.await(n, p.buf.ready, &p.stats, p.cfg.Obs, nil, nil); err != nil {
		return nil, err
	}
	out := p.buf.pop(n)
	p.stats.Dispensed += uint64(n)
	p.cfg.Obs.noteDispensed(n, p.buf.ready())
	p.cond.Broadcast() // the draw may have crossed the low-water mark
	return out, nil
}

// Stats snapshots the counters.
func (p *Sender) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.Buffered = p.buf.ready()
	return s
}

// Close stops the worker and fails subsequent draws. See core.close
// for the in-flight-iteration caveat.
func (p *Sender) Close() error {
	p.close()
	return nil
}

// ReceiverRefill produces one batch of receiver-half correlations
// (choice bits and r_b blocks).
type ReceiverRefill func() ([]bool, []block.Block, error)

// Receiver buffers the receiver half of a correlation stream.
type Receiver struct {
	core
	src   ReceiverRefill
	buf   bitBuf
	stats Stats
}

// NewReceiver builds a pool over src; see NewSender.
func NewReceiver(src ReceiverRefill, cfg Config) *Receiver {
	p := &Receiver{src: src}
	p.init(cfg)
	if cfg.Depth > 0 {
		p.wg.Add(1)
		go p.runWorker(p.buf.ready, p.refill)
	}
	return p
}

// ingest appends one source batch; called with mu held.
func (p *Receiver) ingest(bits []bool, blocks []block.Block, dur time.Duration) error {
	if len(bits) != len(blocks) {
		return fmt.Errorf("pool: source bits/blocks mismatch %d/%d", len(bits), len(blocks))
	}
	if err := p.noteBatch(len(bits)); err != nil {
		return err
	}
	p.buf.push(bits, blocks)
	p.stats.Refills++
	p.stats.Generated += uint64(len(bits))
	p.cfg.Obs.noteRefill(len(bits), p.buf.ready(), dur)
	return nil
}

func (p *Receiver) refill() error {
	begin := time.Now()
	bits, blocks, err := p.src()
	if err != nil {
		return err
	}
	dur := time.Since(begin)
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ingest(bits, blocks, dur)
}

// COTs draws n correlations: choice bits and matching r_b blocks.
func (p *Receiver) COTs(n int) ([]bool, []block.Block, error) {
	if n < 0 {
		return nil, nil, fmt.Errorf("pool: negative draw %d", n)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Draws++
	p.cfg.Obs.noteDraw()
	if p.cfg.Depth <= 0 {
		for p.buf.ready() < n {
			if p.closed {
				return nil, nil, ErrClosed
			}
			if p.err != nil {
				return nil, nil, p.err
			}
			begin := time.Now()
			bits, blocks, err := p.src()
			if err == nil {
				err = p.ingest(bits, blocks, time.Since(begin))
			}
			if err != nil {
				p.err = err
				return nil, nil, err
			}
		}
	} else if err := p.await(n, p.buf.ready, &p.stats, p.cfg.Obs, nil, nil); err != nil {
		return nil, nil, err
	}
	bits, blocks := p.buf.pop(n)
	p.stats.Dispensed += uint64(n)
	p.cfg.Obs.noteDispensed(n, p.buf.ready())
	p.cond.Broadcast()
	return bits, blocks, nil
}

// Stats snapshots the counters.
func (p *Receiver) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.Buffered = p.buf.ready()
	return s
}

// Close stops the worker and fails subsequent draws.
func (p *Receiver) Close() error {
	p.close()
	return nil
}

// DealtRefill runs one lockstep iteration of both endpoints of an
// in-process pair and returns the sender half (z) and the receiver
// half (bits, y) of the fresh batch.
type DealtRefill func() (z []block.Block, bits []bool, y []block.Block, err error)

// Dealt buffers both halves of an in-process dealt correlation stream
// under a single worker, so sender-half and receiver-half draws can
// proceed at independent rates without desynchronizing the two
// protocol endpoints. Refills trigger on the more depleted half.
// Correlations are pairwise, so an undrawn half retains every refill;
// Config.MaxBuffered bounds that growth, failing draws on the starved
// half with ErrRetained once the cap blocks generation (see
// DESIGN.md).
type Dealt struct {
	core
	src    DealtRefill
	sbuf   blockBuf
	rbuf   bitBuf
	sstats Stats
	rstats Stats
	// Unmet draw demand per half (mu held); capBlocked discounts it so
	// correlations a waiting draw will immediately consume don't count
	// as retained.
	demandS int
	demandR int
}

// NewDealt builds the two-halves pool; see NewSender for Depth
// semantics.
func NewDealt(src DealtRefill, cfg Config) *Dealt {
	p := &Dealt{src: src}
	p.init(cfg)
	if cfg.Depth > 0 {
		p.wg.Add(1)
		go p.runWorker(p.workerReady, p.refill)
	}
	return p
}

func (p *Dealt) minReady() int {
	s, r := p.sbuf.ready(), p.rbuf.ready()
	if r < s {
		return r
	}
	return s
}

// retentionCap resolves Config.MaxBuffered (mu held): the per-half
// correlation limit, or -1 while unlimited/unknown.
func (p *Dealt) retentionCap() int {
	if p.cfg.MaxBuffered < 0 || p.batch == 0 {
		return -1
	}
	if p.cfg.MaxBuffered > 0 {
		return p.cfg.MaxBuffered
	}
	return (p.cfg.Depth + 8) * p.batch
}

// capBlocked reports (mu held) whether another refill would push the
// fuller half past the retention cap. Pending draw demand is
// discounted: a half that a blocked draw is about to drain is not
// "retained", so a large lockstep draw on both halves never trips the
// cap.
func (p *Dealt) capBlocked() bool {
	limit := p.retentionCap()
	if limit < 0 {
		return false
	}
	max := p.sbuf.ready() - p.demandS
	if r := p.rbuf.ready() - p.demandR; r > max {
		max = r
	}
	return max+p.batch > limit
}

// workerReady is the worker's view of the ready count: while the
// retention cap blocks generation it reports "plenty", parking the
// worker regardless of demand on the starved half (draws there fail
// with ErrRetained instead).
func (p *Dealt) workerReady() int {
	if p.capBlocked() {
		return int(^uint(0) >> 1)
	}
	return p.minReady()
}

// stalled is the await hook: a draw that still needs correlations
// while the cap blocks generation can never be satisfied.
func (p *Dealt) stalled() error {
	if p.capBlocked() {
		return fmt.Errorf("%w (max %d buffered)", ErrRetained, p.retentionCap())
	}
	return nil
}

func (p *Dealt) refill() error {
	begin := time.Now()
	z, bits, y, err := p.src()
	if err != nil {
		return err
	}
	dur := time.Since(begin)
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ingest(z, bits, y, dur)
}

// ingest appends one lockstep batch to both halves; called with mu
// held.
func (p *Dealt) ingest(z []block.Block, bits []bool, y []block.Block, dur time.Duration) error {
	if len(z) != len(bits) || len(z) != len(y) {
		return fmt.Errorf("pool: dealt source length mismatch %d/%d/%d", len(z), len(bits), len(y))
	}
	if err := p.noteBatch(len(z)); err != nil {
		return err
	}
	p.sbuf.push(z)
	p.rbuf.push(bits, y)
	p.sstats.Refills++
	p.rstats.Refills++
	p.sstats.Generated += uint64(len(z))
	p.rstats.Generated += uint64(len(z))
	p.cfg.Obs.noteRefill(len(z), p.sbuf.ready(), dur)
	p.cfg.ObsReceiver.noteRefill(len(z), p.rbuf.ready(), dur)
	return nil
}

func (p *Dealt) syncFill(need func() int, o *Observer) error {
	for need() < 0 {
		if p.closed {
			return ErrClosed
		}
		if p.err != nil {
			return p.err
		}
		if err := p.stalled(); err != nil {
			o.noteStalled()
			return err
		}
		begin := time.Now()
		z, bits, y, err := p.src()
		if err == nil {
			err = p.ingest(z, bits, y, time.Since(begin))
		}
		if err != nil {
			p.err = err
			return err
		}
	}
	return nil
}

// SenderCOTs draws n sender-half correlations (r0 blocks).
func (p *Dealt) SenderCOTs(n int) ([]block.Block, error) {
	if n < 0 {
		return nil, fmt.Errorf("pool: negative draw %d", n)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.sstats.Draws++
	p.cfg.Obs.noteDraw()
	if p.cfg.Depth <= 0 {
		p.demandS = n
		err := p.syncFill(func() int { return p.sbuf.ready() - n }, p.cfg.Obs)
		p.demandS = 0
		if err != nil {
			return nil, err
		}
	} else if err := p.await(n, p.sbuf.ready, &p.sstats, p.cfg.Obs, p.stalled, &p.demandS); err != nil {
		return nil, err
	}
	out := p.sbuf.pop(n)
	p.sstats.Dispensed += uint64(n)
	p.cfg.Obs.noteDispensed(n, p.sbuf.ready())
	p.cond.Broadcast()
	return out, nil
}

// ReceiverCOTs draws n receiver-half correlations (bits, r_b blocks).
func (p *Dealt) ReceiverCOTs(n int) ([]bool, []block.Block, error) {
	if n < 0 {
		return nil, nil, fmt.Errorf("pool: negative draw %d", n)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rstats.Draws++
	p.cfg.ObsReceiver.noteDraw()
	if p.cfg.Depth <= 0 {
		p.demandR = n
		err := p.syncFill(func() int { return p.rbuf.ready() - n }, p.cfg.ObsReceiver)
		p.demandR = 0
		if err != nil {
			return nil, nil, err
		}
	} else if err := p.await(n, p.rbuf.ready, &p.rstats, p.cfg.ObsReceiver, p.stalled, &p.demandR); err != nil {
		return nil, nil, err
	}
	bits, blocks := p.rbuf.pop(n)
	p.rstats.Dispensed += uint64(n)
	p.cfg.ObsReceiver.noteDispensed(n, p.rbuf.ready())
	p.cond.Broadcast()
	return bits, blocks, nil
}

// Stats snapshots both halves' counters.
func (p *Dealt) Stats() (sender, receiver Stats) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s, r := p.sstats, p.rstats
	s.Buffered = p.sbuf.ready()
	r.Buffered = p.rbuf.ready()
	return s, r
}

// Close stops the worker and fails subsequent draws.
func (p *Dealt) Close() error {
	p.close()
	return nil
}

// SenderSource is the exported drawer contract for the sender half of
// a correlation stream: anything that dispenses r0 blocks under one Δ.
// The prefetching Sender pool, a Dealt pair's SenderHalf, and the
// otserv remote dispenser client all satisfy it, so consumers (the
// ironman endpoints, serving layers) program against one shape
// regardless of where correlations come from.
type SenderSource interface {
	// COTs draws n correlations' r0 blocks (r1 = r0 ⊕ Δ implied).
	COTs(n int) ([]block.Block, error)
	// Stats snapshots this drawer's pool counters.
	Stats() Stats
	// Close releases the drawer (stops workers / closes sessions);
	// draws after Close fail.
	Close() error
}

// ReceiverSource is the receiver-half drawer contract: choice bits and
// the matching r_b blocks. Same implementations as SenderSource.
type ReceiverSource interface {
	COTs(n int) ([]bool, []block.Block, error)
	Stats() Stats
	Close() error
}

// The prefetching pools satisfy the drawer contracts directly.
var (
	_ SenderSource   = (*Sender)(nil)
	_ ReceiverSource = (*Receiver)(nil)
)

// senderHalf / receiverHalf adapt one shared Dealt to the drawer
// contracts. Close on either half closes the shared pool (idempotent),
// since a dealt pair's generator serves both directions.
type senderHalf struct{ d *Dealt }

func (h senderHalf) COTs(n int) ([]block.Block, error) { return h.d.SenderCOTs(n) }
func (h senderHalf) Stats() Stats                      { s, _ := h.d.Stats(); return s }
func (h senderHalf) Close() error                      { return h.d.Close() }

type receiverHalf struct{ d *Dealt }

func (h receiverHalf) COTs(n int) ([]bool, []block.Block, error) { return h.d.ReceiverCOTs(n) }
func (h receiverHalf) Stats() Stats                              { _, r := h.d.Stats(); return r }
func (h receiverHalf) Close() error                              { return h.d.Close() }

// SenderHalf views the dealt pair's sender direction as a standalone
// drawer; Close closes the SHARED generator, stopping both halves.
func (p *Dealt) SenderHalf() SenderSource { return senderHalf{p} }

// ReceiverHalf is the receiver-direction view; the same shared-Close
// caveat applies.
func (p *Dealt) ReceiverHalf() ReceiverSource { return receiverHalf{p} }
