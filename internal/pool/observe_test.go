package pool

import (
	"sync"
	"testing"
	"time"

	"ironman/internal/block"
	"ironman/internal/obs"
)

// dealtSlowSource yields lockstep batches of `batch` correlations
// after sleeping d per refill (simulated protocol latency).
func dealtSlowSource(batch int, d time.Duration) DealtRefill {
	return func() ([]block.Block, []bool, []block.Block, error) {
		if d > 0 {
			time.Sleep(d)
		}
		return make([]block.Block, batch), make([]bool, batch), make([]block.Block, batch), nil
	}
}

// TestObserverMatchesStats is the registry/Stats consistency contract
// under a concurrent draw storm: once every draw returns, the
// registry-backed Observer.Snapshot must equal the pool's own Stats for
// both halves — same counters, same blocked-time total, same buffered
// count.
func TestObserverMatchesStats(t *testing.T) {
	reg := obs.NewRegistry()
	obsS := NewObserver(reg, obs.Labels("half", "sender"))
	obsR := NewObserver(reg, obs.Labels("half", "receiver"))
	p := NewDealt(dealtSlowSource(256, 200*time.Microsecond), Config{
		Depth: 2, Obs: obsS, ObsReceiver: obsR,
	})
	defer p.Close()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := p.SenderCOTs(100); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, _, err := p.ReceiverCOTs(100); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	s, r := p.Stats()
	if got := obsS.Snapshot(); got != s {
		t.Errorf("sender half: registry snapshot %+v != pool stats %+v", got, s)
	}
	if got := obsR.Snapshot(); got != r {
		t.Errorf("receiver half: registry snapshot %+v != pool stats %+v", got, r)
	}
	if s.Draws != 160 || s.Dispensed != 16000 {
		t.Fatalf("draw storm accounting off: %+v", s)
	}
}

// TestObserverNil: a nil observer must be inert on every hook.
func TestObserverNil(t *testing.T) {
	var o *Observer
	o.noteDraw()
	o.noteDispensed(1, 2)
	o.noteRefill(3, 4, time.Millisecond)
	o.noteBlockedDraw()
	o.noteBlockedTime(time.Second)
	o.noteStalled()
	if o.Snapshot() != (Stats{}) {
		t.Fatal("nil observer snapshot must be zero")
	}
	if NewObserver(nil, "") != nil {
		t.Fatal("nil registry must yield nil observer")
	}
}
