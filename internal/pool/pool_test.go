package pool

import (
	"errors"
	"sync"
	"testing"
	"time"

	"ironman/internal/block"
	"ironman/internal/ferret"
	"ironman/internal/transport"
)

// seqSource returns a SenderRefill yielding batches of `batch` blocks
// whose Lo fields form the global sequence 0,1,2,..., after sleeping
// for d (simulating interactive protocol latency).
func seqSource(batch int, d time.Duration) SenderRefill {
	var next uint64
	return func() ([]block.Block, error) {
		if d > 0 {
			time.Sleep(d)
		}
		out := make([]block.Block, batch)
		for i := range out {
			out[i] = block.Block{Lo: next}
			next++
		}
		return out, nil
	}
}

func wantSeq(t *testing.T, got []block.Block, from uint64) {
	t.Helper()
	for i, b := range got {
		if b.Lo != from+uint64(i) {
			t.Fatalf("block %d: got %d, want %d", i, b.Lo, from+uint64(i))
		}
	}
}

func TestSenderSyncDraws(t *testing.T) {
	p := NewSender(seqSource(64, 0), Config{})
	defer p.Close()
	a, err := p.COTs(100) // spans two batches
	if err != nil {
		t.Fatal(err)
	}
	wantSeq(t, a, 0)
	b, err := p.COTs(28) // served from the leftover
	if err != nil {
		t.Fatal(err)
	}
	wantSeq(t, b, 100)
	st := p.Stats()
	if st.Refills != 2 || st.Generated != 128 || st.Dispensed != 128 || st.Buffered != 0 {
		t.Fatalf("stats: %+v", st)
	}
	if st.BlockedDraws != 0 {
		t.Fatalf("sync draws must not count as blocked: %+v", st)
	}
}

func TestSenderPrefetchDraws(t *testing.T) {
	p := NewSender(seqSource(64, 0), Config{Depth: 4})
	defer p.Close()
	var off uint64
	for i := 0; i < 20; i++ {
		z, err := p.COTs(50)
		if err != nil {
			t.Fatal(err)
		}
		wantSeq(t, z, off)
		off += 50
	}
	st := p.Stats()
	if st.Dispensed != 1000 {
		t.Fatalf("dispensed = %d", st.Dispensed)
	}
	if st.Generated < 1000 || st.Generated > 1000+4*64+64 {
		t.Fatalf("generated = %d, want ~demand+prefetch", st.Generated)
	}
}

func TestReceiverPool(t *testing.T) {
	var next uint64
	src := func() ([]bool, []block.Block, error) {
		bits := make([]bool, 32)
		blocks := make([]block.Block, 32)
		for i := range bits {
			bits[i] = next%3 == 0
			blocks[i] = block.Block{Lo: next}
			next++
		}
		return bits, blocks, nil
	}
	for _, depth := range []int{0, 2} {
		p := NewReceiver(src, Config{Depth: depth})
		bits, blocks, err := p.COTs(48)
		if err != nil {
			t.Fatal(err)
		}
		for i := range bits {
			if bits[i] != (blocks[i].Lo%3 == 0) {
				t.Fatalf("depth %d: bits/blocks misaligned at %d", depth, i)
			}
		}
		p.Close()
		next = 0
	}
}

func TestDrawLargerThanPrefetch(t *testing.T) {
	p := NewSender(seqSource(16, 0), Config{Depth: 2})
	defer p.Close()
	// 10 batches' worth in one draw: demand must override the water marks.
	z, err := p.COTs(160)
	if err != nil {
		t.Fatal(err)
	}
	wantSeq(t, z, 0)
}

func TestSourceErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	src := func() ([]block.Block, error) {
		calls++
		if calls > 2 {
			return nil, boom
		}
		return make([]block.Block, 8), nil
	}
	p := NewSender(src, Config{Depth: 1})
	defer p.Close()
	if _, err := p.COTs(64); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

func TestCloseUnblocksDraw(t *testing.T) {
	// A source that delivers one batch and then parks until closed.
	release := make(chan struct{})
	calls := 0
	src := func() ([]block.Block, error) {
		calls++
		if calls > 1 {
			<-release
			return nil, errors.New("released")
		}
		return make([]block.Block, 8), nil
	}
	p := NewSender(src, Config{Depth: 1})
	got := make(chan error, 1)
	go func() {
		_, err := p.COTs(1000) // more than the source will deliver
		got <- err
	}()
	// Wait for the draw to be registered as blocked.
	for {
		if st := p.Stats(); st.BlockedDraws == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	if err := <-got; !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	close(release) // let the parked worker finish so Close can reap it
	p.Close()
}

func TestDrawAfterClose(t *testing.T) {
	p := NewSender(seqSource(8, 0), Config{})
	p.Close()
	if _, err := p.COTs(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestCompactionBoundsBuffer(t *testing.T) {
	const batch = 2048
	p := NewSender(seqSource(batch, 0), Config{})
	defer p.Close()
	var off uint64
	for i := 0; i < 64; i++ {
		z, err := p.COTs(batch / 2)
		if err != nil {
			t.Fatal(err)
		}
		wantSeq(t, z, off)
		off += batch / 2
	}
	p.mu.Lock()
	bufLen, head := len(p.buf.buf), p.buf.head
	p.mu.Unlock()
	// Without compaction the buffer would have accumulated 64*1024
	// consumed entries; with it, the live window stays within a few
	// batches.
	if bufLen > 3*batch {
		t.Fatalf("buffer grew to %d (head %d): consumed prefix retained", bufLen, head)
	}
}

func TestConcurrentDraws(t *testing.T) {
	p := NewSender(seqSource(256, 0), Config{Depth: 3})
	defer p.Close()
	var wg sync.WaitGroup
	seen := make([]uint64, 0, 4*1000)
	var mu sync.Mutex
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				z, err := p.COTs(100)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				for _, b := range z {
					seen = append(seen, b.Lo)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != 4000 {
		t.Fatalf("drew %d", len(seen))
	}
	// Every correlation is dispensed exactly once.
	uniq := make(map[uint64]bool, len(seen))
	for _, v := range seen {
		if uniq[v] {
			t.Fatalf("correlation %d dispensed twice", v)
		}
		uniq[v] = true
	}
}

// ferretDealtSource builds a lockstep Dealt source over an in-process
// ferret pair — the same shape otserv sessions use.
func ferretDealtSource(tb testing.TB, params ferret.Params) (DealtRefill, block.Block) {
	tb.Helper()
	a, b := transport.Pipe()
	delta := block.New(0x1234, 0x5678)
	fs, fr, err := ferret.DealPools(a, b, delta, params, ferret.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	return func() ([]block.Block, []bool, []block.Block, error) {
		var z []block.Block
		var serr error
		done := make(chan struct{})
		go func() {
			z, serr = fs.Extend()
			close(done)
		}()
		out, rerr := fr.Extend()
		<-done
		if serr != nil {
			return nil, nil, nil, serr
		}
		if rerr != nil {
			return nil, nil, nil, rerr
		}
		return z, out.Bits, out.Blocks, nil
	}, delta
}

func smallParams() ferret.Params { return ferret.TestParams(600, 32, 128, 8) }

func TestDealtLockstepVerifies(t *testing.T) {
	src, delta := ferretDealtSource(t, smallParams())
	p := NewDealt(src, Config{Depth: 2})
	defer p.Close()
	// Asymmetric draw rates: the sender half drains twice as fast; the
	// receiver half must stay aligned with it instance-for-instance.
	var zs []block.Block
	var bits []bool
	var ys []block.Block
	for i := 0; i < 4; i++ {
		z, err := p.SenderCOTs(200)
		if err != nil {
			t.Fatal(err)
		}
		zs = append(zs, z...)
	}
	for i := 0; i < 2; i++ {
		bs, y, err := p.ReceiverCOTs(400)
		if err != nil {
			t.Fatal(err)
		}
		bits = append(bits, bs...)
		ys = append(ys, y...)
	}
	if err := ferret.Check(delta, zs, &ferret.ReceiverOutput{Bits: bits, Blocks: ys}); err != nil {
		t.Fatal(err)
	}
	ss, rs := p.Stats()
	if ss.Dispensed != 800 || rs.Dispensed != 800 {
		t.Fatalf("dispensed %d/%d", ss.Dispensed, rs.Dispensed)
	}
	if ss.Refills != rs.Refills {
		t.Fatalf("halves desynchronized: %d vs %d refills", ss.Refills, rs.Refills)
	}
}

func TestDealtSyncMode(t *testing.T) {
	src, delta := ferretDealtSource(t, smallParams())
	p := NewDealt(src, Config{})
	defer p.Close()
	z, err := p.SenderCOTs(100)
	if err != nil {
		t.Fatal(err)
	}
	bits, y, err := p.ReceiverCOTs(100)
	if err != nil {
		t.Fatal(err)
	}
	if err := ferret.Check(delta, z, &ferret.ReceiverOutput{Bits: bits, Blocks: y}); err != nil {
		t.Fatal(err)
	}
}

// dealtSeqSource yields aligned synthetic batches for cap tests.
func dealtSeqSource(batch int) DealtRefill {
	var next uint64
	return func() ([]block.Block, []bool, []block.Block, error) {
		z := make([]block.Block, batch)
		bits := make([]bool, batch)
		y := make([]block.Block, batch)
		for i := range z {
			z[i] = block.Block{Lo: next}
			y[i] = z[i]
			next++
		}
		return z, bits, y, nil
	}
}

func TestDealtRetentionCap(t *testing.T) {
	const batch = 100
	for _, depth := range []int{0, 1} {
		p := NewDealt(dealtSeqSource(batch), Config{Depth: depth, MaxBuffered: 3 * batch})
		// Drain only the sender half: the receiver half retains every
		// refill until the cap stops generation and the starved draw
		// fails instead of growing memory without bound.
		var err error
		draws := 0
		for ; draws < 50; draws++ {
			if _, err = p.SenderCOTs(batch); err != nil {
				break
			}
		}
		if !errors.Is(err, ErrRetained) {
			t.Fatalf("depth %d: err = %v after %d draws, want ErrRetained", depth, err, draws)
		}
		if draws < 2 {
			t.Fatalf("depth %d: cap tripped after only %d draws", depth, draws)
		}
		p.mu.Lock()
		retained := p.rbuf.ready()
		p.mu.Unlock()
		if retained > 3*batch {
			t.Fatalf("depth %d: receiver half retained %d > cap", depth, retained)
		}
		// Draining the fat half unblocks generation.
		if _, _, err := p.ReceiverCOTs(retained); err != nil {
			t.Fatalf("depth %d: draining receiver half: %v", depth, err)
		}
		if _, err := p.SenderCOTs(batch); err != nil {
			t.Fatalf("depth %d: draw after drain: %v", depth, err)
		}
		p.Close()
	}
}

// benchParams is a mid-size set: one Extend yields 17760 correlations.
func benchParams() ferret.Params { return ferret.TestParams(20000, 64, 2048, 32) }

// TestPrewarmedDrawLatency is the acceptance check for the pool: a
// full-batch draw from a pre-warmed pool must be at least 5x faster
// than the synchronous seed path, which runs the Extend iteration
// inline. The observed gap is orders of magnitude (memcpy vs an
// interactive protocol iteration), so the 5x bound has wide margin.
func TestPrewarmedDrawLatency(t *testing.T) {
	params := benchParams()
	n := params.Usable()

	// Synchronous seed path: every draw of a full batch runs Extend.
	syncSrc, _ := ferretDealtSource(t, params)
	syncPool := NewDealt(syncSrc, Config{})
	defer syncPool.Close()
	const rounds = 3
	syncTime := time.Duration(0)
	for i := 0; i < rounds; i++ {
		start := time.Now()
		if _, err := syncPool.SenderCOTs(n); err != nil {
			t.Fatal(err)
		}
		syncTime += time.Since(start)
		// Keep the receiver half from accumulating unboundedly.
		if _, _, err := syncPool.ReceiverCOTs(n); err != nil {
			t.Fatal(err)
		}
	}

	// Pre-warmed pool: prefetch rounds+1 batches, wait for the buffer,
	// then time the same draws.
	warmSrc, _ := ferretDealtSource(t, params)
	warmPool := NewDealt(warmSrc, Config{Depth: rounds + 1})
	defer warmPool.Close()
	warmTime := time.Duration(0)
	for i := 0; i < rounds; i++ {
		// Wait until the batch is ready AND the worker has parked, so
		// the timed draw measures pure dispensing latency without lock
		// contention from a concurrent refill append.
		for {
			warmPool.mu.Lock()
			ready := warmPool.sbuf.ready() >= n && !warmPool.filling
			warmPool.mu.Unlock()
			if ready {
				break
			}
			time.Sleep(time.Millisecond)
		}
		start := time.Now()
		if _, err := warmPool.SenderCOTs(n); err != nil {
			t.Fatal(err)
		}
		warmTime += time.Since(start)
		if _, _, err := warmPool.ReceiverCOTs(n); err != nil {
			t.Fatal(err)
		}
	}

	t.Logf("sync %v, warm %v (%.1fx)", syncTime/rounds, warmTime/rounds,
		float64(syncTime)/float64(warmTime))
	if warmTime*5 > syncTime {
		t.Fatalf("pre-warmed draw %v not 5x faster than synchronous %v",
			warmTime/rounds, syncTime/rounds)
	}
	ss, _ := warmPool.Stats()
	if ss.BlockedDraws != 0 {
		t.Fatalf("warm draws blocked: %+v", ss)
	}
}

// BenchmarkDrawSync measures the seed path: a full-batch COTs draw
// that runs one protocol iteration inline.
func BenchmarkDrawSync(b *testing.B) {
	params := benchParams()
	src, _ := ferretDealtSource(b, params)
	p := NewDealt(src, Config{})
	defer p.Close()
	n := params.Usable()
	b.SetBytes(int64(n) * block.Size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.SenderCOTs(n); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if _, _, err := p.ReceiverCOTs(n); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// BenchmarkDrawPrewarmed measures the same full-batch draw against a
// warm pool; refill time is excluded (it runs ahead of demand on the
// worker), so this is the steady-state latency a bursty consumer sees.
func BenchmarkDrawPrewarmed(b *testing.B) {
	params := benchParams()
	src, _ := ferretDealtSource(b, params)
	p := NewDealt(src, Config{Depth: 3})
	defer p.Close()
	n := params.Usable()
	b.SetBytes(int64(n) * block.Size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// Wait for a full batch AND a parked worker so the timed draw
		// measures dispensing latency, not refill lock contention.
		for {
			p.mu.Lock()
			ready := p.sbuf.ready() >= n && !p.filling
			p.mu.Unlock()
			if ready {
				break
			}
			time.Sleep(50 * time.Microsecond)
		}
		b.StartTimer()
		if _, err := p.SenderCOTs(n); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if _, _, err := p.ReceiverCOTs(n); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}
