package pool

import (
	"errors"
	"sync"
	"testing"
	"time"

	"ironman/internal/block"
)

// slowDealtSource produces tiny batches with an artificial delay, so
// draws larger than the buffered stock reliably block on generation.
func slowDealtSource(batch int, delay time.Duration) DealtRefill {
	var ctr uint64
	return func() ([]block.Block, []bool, []block.Block, error) {
		time.Sleep(delay)
		z := make([]block.Block, batch)
		bits := make([]bool, batch)
		y := make([]block.Block, batch)
		for i := range z {
			ctr++
			z[i] = block.Block{Lo: ctr}
			y[i] = block.Block{Lo: ctr}
		}
		return z, bits, y, nil
	}
}

// TestMaxWaitShedsWithErrDry: a draw that generation cannot satisfy
// within MaxWait fails typed instead of waiting forever, and the pool
// stays usable for draws generation can keep up with.
func TestMaxWaitShedsWithErrDry(t *testing.T) {
	p := NewDealt(slowDealtSource(8, 20*time.Millisecond), Config{
		Depth: 1, MaxWait: 60 * time.Millisecond, MaxBuffered: -1,
	})
	defer p.Close()
	// 10 batches' worth cannot materialize in three batch times.
	if _, err := p.SenderCOTs(8 * 10); !errors.Is(err, ErrDry) {
		t.Fatalf("oversized draw err = %v, want ErrDry", err)
	}
	// A batch-sized draw succeeds afterwards: the shed consumed nothing.
	z, err := p.SenderCOTs(8)
	if err != nil {
		t.Fatalf("post-shed draw: %v", err)
	}
	if len(z) != 8 {
		t.Fatalf("post-shed draw yielded %d", len(z))
	}
}

// TestMaxWaitersShedsExcessDraws: with MaxWaiters = 1, a second
// concurrently blocked draw sheds immediately with ErrDry while the
// first eventually completes.
func TestMaxWaitersShedsExcessDraws(t *testing.T) {
	p := NewDealt(slowDealtSource(4, 30*time.Millisecond), Config{
		Depth: 1, MaxWaiters: 1, MaxBuffered: -1,
	})
	defer p.Close()

	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Each draw wants several batches, so most of them block.
			_, errs[i] = p.SenderCOTs(4 * 3)
		}(i)
	}
	wg.Wait()
	shed, served := 0, 0
	for _, err := range errs {
		switch {
		case err == nil:
			served++
		case errors.Is(err, ErrDry):
			shed++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if shed == 0 {
		t.Fatal("MaxWaiters=1 never shed a concurrent draw")
	}
	if served == 0 {
		t.Fatal("every draw shed; at least the admitted waiter must be served")
	}
}

// TestUnboundedWaitStillBlocks: without MaxWait/MaxWaiters the old
// semantics hold — a blocked draw waits for generation and succeeds.
func TestUnboundedWaitStillBlocks(t *testing.T) {
	p := NewDealt(slowDealtSource(16, time.Millisecond), Config{Depth: 1, MaxBuffered: -1})
	defer p.Close()
	z, err := p.SenderCOTs(16 * 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(z) != 16*6 {
		t.Fatalf("drew %d", len(z))
	}
}
