package pool

import (
	"time"

	"ironman/internal/obs"
)

// Observer mirrors one pool half's Stats counters into a metrics
// registry, at the same mutex-held update points the internal counters
// use — so once draws quiesce, the registry-served totals and Stats()
// agree exactly (the otserv STATS endpoint relies on this). It also
// feeds two latency histograms the plain counters cannot express:
// draw-wait time and source-refill time.
//
// A nil *Observer is a no-op on every method, so un-observed pools pay
// one nil check per event.
type Observer struct {
	draws        *obs.Counter // ironman_pool_draws_total
	blockedDraws *obs.Counter // ironman_pool_blocked_draws_total
	stalledDraws *obs.Counter // ironman_pool_stalled_draws_total
	refills      *obs.Counter // ironman_pool_refills_total
	generated    *obs.Counter // ironman_pool_generated_total
	dispensed    *obs.Counter // ironman_pool_dispensed_total
	blockedNS    *obs.Counter // ironman_pool_blocked_ns_total
	buffered     *obs.Gauge   // ironman_pool_buffered
	drawWait     *obs.Histogram
	refillDur    *obs.Histogram
}

// NewObserver registers one pool half's instrument set under the given
// label set (obs.Labels format; typically session and half). A nil
// registry yields a nil Observer.
func NewObserver(reg *obs.Registry, labels string) *Observer {
	if reg == nil {
		return nil
	}
	return &Observer{
		draws:        reg.Counter(obs.Name("ironman_pool_draws_total", labels)),
		blockedDraws: reg.Counter(obs.Name("ironman_pool_blocked_draws_total", labels)),
		stalledDraws: reg.Counter(obs.Name("ironman_pool_stalled_draws_total", labels)),
		refills:      reg.Counter(obs.Name("ironman_pool_refills_total", labels)),
		generated:    reg.Counter(obs.Name("ironman_pool_generated_total", labels)),
		dispensed:    reg.Counter(obs.Name("ironman_pool_dispensed_total", labels)),
		blockedNS:    reg.Counter(obs.Name("ironman_pool_blocked_ns_total", labels)),
		buffered:     reg.Gauge(obs.Name("ironman_pool_buffered", labels)),
		drawWait:     reg.Histogram(obs.Name("ironman_pool_draw_wait_seconds", labels)),
		refillDur:    reg.Histogram(obs.Name("ironman_pool_refill_seconds", labels)),
	}
}

func (o *Observer) noteDraw() {
	if o == nil {
		return
	}
	o.draws.Inc()
}

func (o *Observer) noteDispensed(n, buffered int) {
	if o == nil {
		return
	}
	o.dispensed.Add(uint64(n))
	o.buffered.Set(int64(buffered))
}

func (o *Observer) noteRefill(n, buffered int, dur time.Duration) {
	if o == nil {
		return
	}
	o.refills.Inc()
	o.generated.Add(uint64(n))
	o.buffered.Set(int64(buffered))
	o.refillDur.Observe(dur.Seconds())
}

func (o *Observer) noteBlockedDraw() {
	if o == nil {
		return
	}
	o.blockedDraws.Inc()
}

func (o *Observer) noteBlockedTime(d time.Duration) {
	if o == nil {
		return
	}
	o.blockedNS.Add(uint64(d.Nanoseconds()))
	o.drawWait.Observe(d.Seconds())
}

func (o *Observer) noteStalled() {
	if o == nil {
		return
	}
	o.stalledDraws.Inc()
}

// Snapshot reads the registry-backed totals back in Stats shape; the
// contract with the internal counters (see the type comment) makes the
// two views identical once concurrent draws quiesce.
func (o *Observer) Snapshot() Stats {
	if o == nil {
		return Stats{}
	}
	return Stats{
		Generated:    o.generated.Value(),
		Dispensed:    o.dispensed.Value(),
		Refills:      o.refills.Value(),
		Draws:        o.draws.Value(),
		BlockedDraws: o.blockedDraws.Value(),
		BlockedTime:  time.Duration(o.blockedNS.Value()),
		Buffered:     int(o.buffered.Value()),
	}
}
