package prg

import (
	"testing"
	"testing/quick"

	"ironman/internal/block"
)

func allPRGs() []PRG {
	return []PRG{
		New(AES, 2), New(AES, 3), New(AES, 4),
		New(ChaCha8, 2), New(ChaCha8, 4), New(ChaCha8, 8),
		New(ChaCha8, 16), New(ChaCha8, 32),
	}
}

func TestExpandDeterministicAllKinds(t *testing.T) {
	for _, p := range allPRGs() {
		a := make([]block.Block, p.Arity())
		b := make([]block.Block, p.Arity())
		parent := block.New(0x1234, 0x5678)
		p.Expand(parent, a)
		p.Expand(parent, b)
		if !block.Equal(a, b) {
			t.Fatalf("%s: not deterministic", p.Name())
		}
		seen := make(map[block.Block]bool)
		for _, c := range a {
			if seen[c] {
				t.Fatalf("%s: duplicate children", p.Name())
			}
			seen[c] = true
		}
	}
}

func TestChaChaPrefixConsistency(t *testing.T) {
	// The first 4 children of a wide ChaCha expansion come from core
	// call 0, exactly like the 4-ary expansion of the same seed. This is
	// the hardware property that lets one ChaCha unit serve all arities.
	parent := block.New(99, 100)
	c4 := make([]block.Block, 4)
	New(ChaCha8, 4).Expand(parent, c4)
	c32 := make([]block.Block, 32)
	New(ChaCha8, 32).Expand(parent, c32)
	if !block.Equal(c4, c32[:4]) {
		t.Fatal("4-ary expansion should be a prefix of the 32-ary expansion")
	}
	c2 := make([]block.Block, 2)
	New(ChaCha8, 2).Expand(parent, c2)
	if !block.Equal(c2, c32[:2]) {
		t.Fatal("2-ary expansion should be a prefix of the 32-ary expansion")
	}
}

func TestSeedSensitivity(t *testing.T) {
	for _, p := range allPRGs() {
		p := p
		f := func(a, b, c, d uint64) bool {
			p1, p2 := block.New(a, b), block.New(c, d)
			x := make([]block.Block, p.Arity())
			y := make([]block.Block, p.Arity())
			p.Expand(p1, x)
			p.Expand(p2, y)
			if p1 == p2 {
				return block.Equal(x, y)
			}
			return x[0] != y[0]
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
	}
}

func TestOpsPerExpand(t *testing.T) {
	cases := []struct {
		kind  Kind
		arity int
		want  int
	}{
		{AES, 2, 2}, {AES, 4, 4},
		{ChaCha8, 2, 1}, {ChaCha8, 4, 1},
		{ChaCha8, 8, 2}, {ChaCha8, 16, 4}, {ChaCha8, 32, 8},
	}
	for _, c := range cases {
		got := New(c.kind, c.arity).OpsPerExpand()
		if got != c.want {
			t.Errorf("%v x%d: OpsPerExpand = %d, want %d", c.kind, c.arity, got, c.want)
		}
	}
}

func TestPartialExpandIsPrefix(t *testing.T) {
	// Producing n < Arity children must yield a prefix of the full
	// expansion — required by mixed-radix GGM levels.
	for _, p := range allPRGs() {
		full := make([]block.Block, p.Arity())
		parent := block.New(5, 6)
		p.Expand(parent, full)
		for n := 1; n < p.Arity(); n++ {
			part := make([]block.Block, n)
			p.Expand(parent, part)
			if !block.Equal(part, full[:n]) {
				t.Fatalf("%s: partial expand of %d children is not a prefix", p.Name(), n)
			}
		}
	}
}

func TestOpsFor(t *testing.T) {
	p4 := New(ChaCha8, 4)
	if p4.OpsFor(2) != 1 || p4.OpsFor(4) != 1 {
		t.Fatal("ChaCha8 ops for <=4 children must be 1 core call")
	}
	p32 := New(ChaCha8, 32)
	if p32.OpsFor(5) != 2 || p32.OpsFor(32) != 8 {
		t.Fatal("ChaCha8x32 OpsFor wrong")
	}
	a4 := New(AES, 4)
	if a4.OpsFor(2) != 2 || a4.OpsFor(4) != 4 {
		t.Fatal("AES OpsFor must be one call per child")
	}
}

func TestNewPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(ChaCha8, 3) },
		func() { New(ChaCha8, 64) },
		func() { New(Kind(99), 2) },
		func() { New(AES, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestKindString(t *testing.T) {
	if AES.String() != "AES" || ChaCha8.String() != "ChaCha8" {
		t.Fatal("Kind.String broken")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Fatal("unknown Kind.String broken")
	}
}

func BenchmarkExpand(b *testing.B) {
	for _, p := range []PRG{New(AES, 2), New(AES, 4), New(ChaCha8, 2), New(ChaCha8, 4)} {
		p := p
		b.Run(p.Name(), func(b *testing.B) {
			children := make([]block.Block, p.Arity())
			parent := block.New(1, 2)
			b.SetBytes(int64(16 * p.Arity()))
			for i := 0; i < b.N; i++ {
				p.Expand(parent, children)
			}
		})
	}
}
