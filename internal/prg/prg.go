// Package prg defines the pseudo-random-generator design space that
// Ironman's SPCOT optimization explores (Figure 6 of the paper):
//
//	(a) 2-ary tree with AES      — 2 AES ops per expansion (baseline)
//	(b) 4-ary tree with AES      — 4 AES ops per expansion
//	(c) 2-ary tree with ChaCha8  — 1 ChaCha op (half the output wasted)
//	(d) 4-ary tree with ChaCha8  — 1 ChaCha op (full 512-bit output used)
//
// A PRG expands one 128-bit parent block into Arity() child blocks, and
// reports how many primitive operations (AES calls or ChaCha core calls)
// the expansion costs, so software, the op-count analysis of Fig 7(a)
// and the hardware pipeline model all agree on one number.
package prg

import (
	"fmt"

	"ironman/internal/aesprg"
	"ironman/internal/block"
	"ironman/internal/chacha"
)

// Kind selects the primitive the PRG is built from.
type Kind int

const (
	// AES builds the PRG from fixed-key AES-128 (one op per child).
	AES Kind = iota
	// ChaCha8 builds the PRG from the 8-round ChaCha core
	// (one op per up-to-4 children).
	ChaCha8
)

func (k Kind) String() string {
	switch k {
	case AES:
		return "AES"
	case ChaCha8:
		return "ChaCha8"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// PRG is a length-m-tupling pseudorandom generator.
type PRG interface {
	// Arity is the maximum number of children produced per expansion
	// (the m in m-ary tree expansion).
	Arity() int
	// Expand writes the first len(children) children of parent into
	// children; 1 <= len(children) <= Arity(). Producing fewer children
	// than Arity yields a prefix of the full expansion, which is what a
	// mixed-radix GGM level (e.g. a final binary level under a 4-ary
	// PRG) consumes.
	Expand(parent block.Block, children []block.Block)
	// OpsPerExpand is the number of primitive core invocations a full
	// expansion costs (AES calls or ChaCha core calls).
	OpsPerExpand() int
	// OpsFor is the number of primitive core invocations needed to
	// produce the first n children, 1 <= n <= Arity().
	OpsFor(n int) int
	// Name identifies the construction, e.g. "ChaCha8x4".
	Name() string
}

// New constructs a PRG of the given kind and arity. AES supports arity
// 2..4 (one AES call per child). ChaCha8 supports arity 2, 4, 8, 16 and
// 32: one 512-bit core output holds 4 blocks, so an m-ary expansion
// costs ceil(m/4) core calls — which is why the reduction rate of m-ary
// expansion saturates around 4x and the paper picks m=4 (§4.1).
func New(kind Kind, arity int) PRG {
	switch kind {
	case AES:
		return &aesPRG{d: aesprg.NewDoubler(arity)}
	case ChaCha8:
		switch arity {
		case 2, 4, 8, 16, 32:
			return &chachaPRG{arity: arity}
		default:
			panic("prg: ChaCha8 arity must be one of 2,4,8,16,32")
		}
	default:
		panic("prg: unknown kind")
	}
}

type aesPRG struct {
	d *aesprg.Doubler
}

func (p *aesPRG) Arity() int        { return p.d.Arity() }
func (p *aesPRG) OpsPerExpand() int { return p.d.Arity() }
func (p *aesPRG) OpsFor(n int) int  { return n }
func (p *aesPRG) Name() string      { return fmt.Sprintf("AESx%d", p.d.Arity()) }
func (p *aesPRG) Expand(parent block.Block, children []block.Block) {
	p.d.Expand(parent, children)
}

// chachaPRG keys the ChaCha8 core with the parent seed repeated into the
// 256-bit key slot (standard 128-bit-security keying) and takes the
// first arity*16 bytes of the 512-bit core output as the children.
type chachaPRG struct {
	arity int
}

func (p *chachaPRG) Arity() int        { return p.arity }
func (p *chachaPRG) OpsPerExpand() int { return (p.arity + 3) / 4 }
func (p *chachaPRG) OpsFor(n int) int  { return (n + 3) / 4 }
func (p *chachaPRG) Name() string      { return fmt.Sprintf("ChaCha8x%d", p.arity) }

func (p *chachaPRG) Expand(parent block.Block, children []block.Block) {
	if len(children) < 1 || len(children) > p.arity {
		panic("prg: children slice has wrong length")
	}
	// Build the 16-word ChaCha state directly: constants, key = seed||seed,
	// nonce 0, counter = core-call index. One Core call == one hardware
	// pipeline pass producing 4 children.
	var in [16]uint32
	in[0], in[1], in[2], in[3] = 0x61707865, 0x3320646e, 0x79622d32, 0x6b206574
	lo, hi := parent.Lo, parent.Hi
	in[4], in[5] = uint32(lo), uint32(lo>>32)
	in[6], in[7] = uint32(hi), uint32(hi>>32)
	in[8], in[9], in[10], in[11] = in[4], in[5], in[6], in[7]
	var out [chacha.BlockSize]byte
	for call := 0; call < p.OpsFor(len(children)); call++ {
		in[12] = uint32(call)
		chacha.Core(&out, &in, chacha.Rounds8)
		for i := 0; i < 4 && call*4+i < len(children); i++ {
			children[call*4+i] = block.FromBytes(out[i*16:])
		}
	}
}
