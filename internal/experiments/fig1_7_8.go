package experiments

import (
	"fmt"
	"strings"

	"ironman/internal/aesprg"
	"ironman/internal/cot"
	"ironman/internal/ferret"
	"ironman/internal/ggm"
	"ironman/internal/prg"
	"ironman/internal/sim/area"
	"ironman/internal/sim/cpu"
	"ironman/internal/sim/roofline"
	"ironman/internal/simnet"
	"ironman/internal/spcot"
	"ironman/internal/transport"
)

func areaSRAM(bytes int) float64 { return area.SRAMAreaMM2(bytes) }

// ---------------------------------------------------------------------
// Figure 1(b): CPU OTE latency vs #OTs with Init/SPCOT/LPN breakdown.
// ---------------------------------------------------------------------

// Fig1bRow is one parameter set's single-execution CPU latency.
type Fig1bRow struct {
	ParamSet string
	Init     float64
	SPCOT    float64
	LPN      float64
}

// Figure1b prices one single-threaded protocol execution per set.
func Figure1b() []Fig1bRow {
	var rows []Fig1bRow
	for _, p := range ferret.Table4 {
		b := cpu.Xeon5220R.OTELatency(p, prg.AES, 2, 1, true)
		rows = append(rows, Fig1bRow{ParamSet: p.Name, Init: b.Init, SPCOT: b.SPCOT, LPN: b.LPN})
	}
	return rows
}

// RenderFig1b prints the stacked-bar data.
func RenderFig1b(rows []Fig1bRow) string {
	var b strings.Builder
	b.WriteString("Figure 1(b): CPU OTE latency per protocol execution (single thread)\n")
	fmt.Fprintf(&b, "%-6s %8s %8s %8s %8s\n", "set", "init(s)", "spcot(s)", "lpn(s)", "total")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %8.3f %8.3f %8.3f %8.3f\n", r.ParamSet, r.Init, r.SPCOT, r.LPN, r.Init+r.SPCOT+r.LPN)
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Figure 1(c): roofline.
// ---------------------------------------------------------------------

// Figure1c returns the roofline points.
func Figure1c() []roofline.Point { return roofline.Figure1c(roofline.Xeon5220R) }

// RenderFig1c prints the points.
func RenderFig1c(pts []roofline.Point) string {
	var b strings.Builder
	m := roofline.Xeon5220R
	fmt.Fprintf(&b, "Figure 1(c): roofline (peak %.2f G AES/s, BW %.0f GB/s, ridge %.3f AES/B)\n",
		m.PeakAESPerSec/1e9, m.MemBandwidth/1e9, m.RidgeIntensity())
	for _, p := range pts {
		bound := "memory-bound"
		if p.ComputeBound {
			bound = "compute-bound"
		}
		fmt.Fprintf(&b, "  %-12s intensity=%8.4f AES/B  attainable=%8.3f G AES/s  %s\n",
			p.Name, p.Intensity, p.Attainable/1e9, bound)
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Figure 7: m-ary tree ops / communication / latency.
// ---------------------------------------------------------------------

// Fig7Row is one arity design point for ℓ=4096, t=480 trees.
type Fig7Row struct {
	M          int
	Ops        int     // PRG core calls for the whole batch (Fig 7a)
	CommBytes  int64   // measured SPCOT traffic for the batch (Fig 7b)
	WANSeconds float64 // Fig 7c
	LANSeconds float64
}

// Figure7 measures the real SPCOT protocol traffic at each arity and
// prices it on the two networks (plus the NMP compute time).
func Figure7(o Options) []Fig7Row {
	const leaves = 4096
	trees := 480
	if o.Quick {
		trees = 48
	}
	var rows []Fig7Row
	for _, m := range []int{2, 4, 8, 16, 32} {
		p := prg.New(prg.ChaCha8, m)
		ops := trees * ggm.OpsForTree(p, leaves)

		// Run one real SPCOT to measure per-tree traffic and flights.
		sp, rp, err := cot.RandomPools(spcot.COTBudget(leaves))
		if err != nil {
			panic(err)
		}
		h := aesprg.NewHash()
		a, b := transport.Pipe()
		done := make(chan error, 1)
		go func() {
			_, err := spcot.Send(a, sp, h, p, leaves)
			done <- err
		}()
		if _, err := spcot.Receive(b, rp, h, p, leaves, 1); err != nil {
			panic(err)
		}
		if err := <-done; err != nil {
			panic(err)
		}
		st := a.Stats()
		batchBytes := st.TotalBytes() * int64(trees)
		// Deployed implementations batch the per-level OT messages of
		// all t trees into one flight (Ferret processes trees level-
		// synchronously), so round count does not scale with t.
		batchFlights := st.Flights

		// Latency: network + compute (compute at the software AES-equiv
		// rate so the trend matches Fig 7c's protocol-latency curves).
		compute := float64(ops) * 58 / 2.2e9
		rows = append(rows, Fig7Row{
			M:          m,
			Ops:        ops,
			CommBytes:  batchBytes,
			WANSeconds: simnet.WAN.Latency(batchBytes, batchFlights) + compute,
			LANSeconds: simnet.LAN.Latency(batchBytes, batchFlights) + compute,
		})
	}
	return rows
}

// RenderFig7 prints the three panels.
func RenderFig7(rows []Fig7Row) string {
	var b strings.Builder
	b.WriteString("Figure 7: m-ary tree expansion (ℓ=4096, batch of trees)\n")
	fmt.Fprintf(&b, "%-4s %12s %12s %10s %10s\n", "m", "ops", "comm(MB)", "WAN(s)", "LAN(s)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-4d %12d %12.2f %10.3f %10.3f\n",
			r.M, r.Ops, float64(r.CommBytes)/1e6, r.WANSeconds, r.LANSeconds)
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Figure 8: GGM expansion schedules.
// ---------------------------------------------------------------------

// Fig8Row is one schedule's pipeline statistics.
type Fig8Row struct {
	Schedule string
	Trees    int
	ggm.PipelineStats
}

// Figure8 compares the three schedules on a batch of 4-ary trees.
func Figure8() []Fig8Row {
	arities := ggm.LevelArities(4096, 4)
	var rows []Fig8Row
	for _, trees := range []int{1, 4, 16} {
		for _, s := range []ggm.Schedule{ggm.DepthFirst, ggm.BreadthFirst, ggm.Hybrid} {
			st := ggm.SimulateSchedule(ggm.PipelineConfig{Stages: 8, Arities: arities, Trees: trees}, s)
			rows = append(rows, Fig8Row{Schedule: s.String(), Trees: trees, PipelineStats: st})
		}
	}
	return rows
}

// RenderFig8 prints the comparison.
func RenderFig8(rows []Fig8Row) string {
	var b strings.Builder
	b.WriteString("Figure 8: GGM expansion schedules (8-stage ChaCha pipeline, 4-ary ℓ=4096)\n")
	fmt.Fprintf(&b, "%-14s %6s %8s %8s %8s %6s %10s\n", "schedule", "trees", "ops", "cycles", "bubbles", "util", "peak buf")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %6d %8d %8d %8d %5.1f%% %10d\n",
			r.Schedule, r.Trees, r.Ops, r.Cycles, r.Bubbles, r.Utilization*100, r.PeakBuffer)
	}
	return b.String()
}
