package experiments

import (
	"fmt"
	"strings"
	"time"

	"ironman/internal/circuit"
	"ironman/internal/gmw"
	"ironman/internal/ppml"
)

// CircuitResult is one embedded-circuit datapoint: K SIMD-packed
// instances of a Bristol circuit evaluated through the compiled level
// schedule over the real GMW engine, with the measured exchange and
// wire counters cross-checked against the exact ppml.CircuitCost
// model (a mismatch fails the run).
type CircuitResult struct {
	Name        string  `json:"name"`
	Instances   int     `json:"instances"`
	Gates       int     `json:"gates"`
	ANDGates    int64   `json:"and_gates"` // circuit ANDs x instances
	Depth       int     `json:"and_depth"` // exchanges per evaluation, any K
	Slots       int     `json:"slots"`     // register file size (max live wires)
	Exchanges   int     `json:"exchanges"` // measured; == and_depth
	WireBytes   int64   `json:"wire_bytes"`
	BytesPerAND float64 `json:"bytes_per_and"`
	Seconds     float64 `json:"seconds"`
	GatesPerSec float64 `json:"and_gates_per_sec"`
}

// CircuitBench evaluates the embedded reference circuits end to end:
// quick runs AES-128 at K=4 and the 64-bit divider at K=2; the full
// run adds SHA-256 and widens the instance batches. Every output bit
// of every instance is verified against the plaintext evaluator.
func CircuitBench(o Options) []CircuitResult {
	type run struct {
		name string
		c    *circuit.Circuit
		k    int
	}
	runs := []run{
		{"aes128", circuit.AES128(), 16},
		{"sha256", circuit.SHA256(), 4},
		{"div64", circuit.Divide64(), 8},
	}
	if o.Quick {
		runs = []run{
			{"aes128", circuit.AES128(), 4},
			{"div64", circuit.Divide64(), 2},
		}
	}
	out := make([]CircuitResult, 0, len(runs))
	for _, r := range runs {
		out = append(out, circuitRun(r.name, r.c, r.k, o))
	}
	return out
}

// circuitInputs derives deterministic per-instance input bits: one
// LSB-first vector per declared input value per instance.
func circuitInputs(c *circuit.Circuit, k int, seed uint64) [][][]bool {
	insts := make([][][]bool, k)
	for i := range insts {
		vals := make([][]bool, len(c.Inputs))
		for v, width := range c.Inputs {
			bits := make([]bool, width)
			for j := range bits {
				seed = seed*6364136223846793005 + 1442695040888963407
				bits[j] = seed>>63 == 1
			}
			vals[v] = bits
		}
		insts[i] = vals
	}
	return insts
}

// circuitPlanes packs each party's share of the input planes: the
// party owning a value packs its plaintext bits, the peer holds zero
// planes. Party A owns even-indexed input values, B odd.
func circuitPlanes(c *circuit.Circuit, insts [][][]bool, partyA bool) []gmw.PackedShare {
	k := len(insts)
	planes := make([]gmw.PackedShare, 0, c.InputBits())
	for v, width := range c.Inputs {
		mine := (v%2 == 0) == partyA
		var vals [][]bool
		if mine {
			vals = make([][]bool, k)
			for i := range vals {
				vals[i] = insts[i][v]
			}
		} else {
			vals = make([][]bool, k) // length carries the instance count
		}
		ps, err := circuit.SharePlanes(vals, width, mine)
		if err != nil {
			panic(err)
		}
		planes = append(planes, ps...)
	}
	return planes
}

func circuitRun(name string, c *circuit.Circuit, k int, o Options) CircuitResult {
	prog, err := circuit.Compile(c)
	if err != nil {
		panic(err)
	}
	cost := ppml.CircuitCost(prog, k)
	insts := circuitInputs(c, k, 0x9E3779B97F4A7C15^uint64(len(c.Gates)))

	a, b, connA := gmwParties(prog.ANDs * k)
	inputsA := circuitPlanes(c, insts, true)
	inputsB := circuitPlanes(c, insts, false)

	base := connA.Stats().TotalBytes()
	preEx := a.Exchanges
	type evalOut struct {
		outs [][]bool
		wire int64
		ex   int
		err  error
	}
	start := time.Now()
	ch := make(chan evalOut, 1)
	go func() {
		var eo evalOut
		planes, err := prog.Eval(a, inputsA, &circuit.EvalOpts{Trace: o.Trace, TID: 1})
		if err != nil {
			eo.err = err
			ch <- eo
			return
		}
		// Snapshot before Reveal: the cost model prices the evaluation
		// only, and the exchange protocol is fully synchronous at this
		// endpoint by the time Eval returns.
		eo.wire = connA.Stats().TotalBytes() - base
		eo.ex = a.Exchanges - preEx
		eo.outs, eo.err = circuit.Reveal(a, planes)
		ch <- eo
	}()
	planesB, err := prog.Eval(b, inputsB, &circuit.EvalOpts{Trace: o.Trace, TID: 2})
	if err != nil {
		panic(err)
	}
	if _, err := circuit.Reveal(b, planesB); err != nil {
		panic(err)
	}
	eo := <-ch
	if eo.err != nil {
		panic(eo.err)
	}
	elapsed := time.Since(start).Seconds()

	// Correctness: every instance against the plaintext evaluator.
	for i, inst := range insts {
		want, err := c.EvalPlain(inst)
		if err != nil {
			panic(err)
		}
		flat := make([]bool, 0, c.OutputBits())
		for _, w := range want {
			flat = append(flat, w...)
		}
		for j, bit := range eo.outs[i] {
			if bit != flat[j] {
				panic(fmt.Sprintf("experiments: %s instance %d output bit %d wrong", name, i, j))
			}
		}
	}
	// The acceptance cross-checks: measured exchanges equal the AND
	// depth, measured wire bytes equal the exact model.
	if eo.ex != cost.Exchanges {
		panic(fmt.Sprintf("experiments: %s: measured %d exchanges, model says %d", name, eo.ex, cost.Exchanges))
	}
	if eo.wire != cost.WireBytes {
		panic(fmt.Sprintf("experiments: %s: measured %d wire bytes, model says %d", name, eo.wire, cost.WireBytes))
	}

	return CircuitResult{
		Name:        name,
		Instances:   k,
		Gates:       len(c.Gates),
		ANDGates:    cost.ANDGates,
		Depth:       prog.ANDLevels,
		Slots:       prog.Slots,
		Exchanges:   eo.ex,
		WireBytes:   eo.wire,
		BytesPerAND: cost.BytesPerAND(),
		Seconds:     elapsed,
		GatesPerSec: float64(cost.ANDGates) / elapsed,
	}
}

// RenderCircuit prints the embedded-circuit datapoints.
func RenderCircuit(rs []CircuitResult) string {
	var sb strings.Builder
	sb.WriteString("Bristol circuit frontend: SIMD-packed evaluation over the GMW engine\n")
	for _, r := range rs {
		fmt.Fprintf(&sb, "  %-7s x%-3d %8d ANDs in %4d exchanges (%d gates, %d slots)\n"+
			"          wire %d B (%.3f B/AND, model exact), %.1f ms, %.2f M AND/s\n",
			r.Name, r.Instances, r.ANDGates, r.Exchanges, r.Gates, r.Slots,
			r.WireBytes, r.BytesPerAND, r.Seconds*1e3, r.GatesPerSec/1e6)
	}
	return sb.String()
}
