package experiments

import (
	"fmt"
	"strings"

	"ironman/internal/ferret"
	"ironman/internal/ppml"
	"ironman/internal/sim/area"
	"ironman/internal/simnet"
	"ironman/internal/spcot"
)

// ---------------------------------------------------------------------
// Figure 1(a): execution-time breakdown across frameworks and models.
// ---------------------------------------------------------------------

// Fig1aRow is one (framework, model) breakdown.
type Fig1aRow struct {
	Framework string
	Model     string
	Lat       ppml.Latency
}

// Figure1a reproduces the breakdown study on the LAN with the CPU OT
// backend (the configuration whose OTE share motivates the paper).
func Figure1a() []Fig1aRow {
	base := ppml.DefaultCPUBaseline()
	var rows []Fig1aRow
	add := func(f ppml.Framework, models ...ppml.Model) {
		for _, m := range models {
			rows = append(rows, Fig1aRow{
				Framework: f.Name, Model: m.Name,
				Lat: ppml.EndToEnd(f, m, simnet.LAN, base),
			})
		}
	}
	add(ppml.Cheetah, ppml.SqueezeNet, ppml.ResNet50, ppml.DenseNet121)
	add(ppml.CrypTFlow2, ppml.SqueezeNet, ppml.ResNet50, ppml.DenseNet121)
	add(ppml.Bolt, ppml.BERTBase, ppml.BERTLarge, ppml.GPT2Large)
	return rows
}

// RenderFig1a prints the percentage stack.
func RenderFig1a(rows []Fig1aRow) string {
	var b strings.Builder
	b.WriteString("Figure 1(a): execution-time breakdown (LAN, CPU OT backend)\n")
	fmt.Fprintf(&b, "%-11s %-12s %8s %8s %8s %8s %8s\n",
		"framework", "model", "OTE%", "linear%", "comm%", "other%", "total(s)")
	for _, r := range rows {
		t := r.Lat.Total()
		fmt.Fprintf(&b, "%-11s %-12s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %8.1f\n",
			r.Framework, r.Model,
			100*r.Lat.OTE/t, 100*r.Lat.Linear/t, 100*r.Lat.OnlineComm/t, 100*r.Lat.Other/t, t)
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Figure 15: nonlinear-operator microbenchmarks.
// ---------------------------------------------------------------------

// Fig15Row is one (framework, op) pair.
type Fig15Row struct {
	Framework string
	Op        string
	BaseSec   float64
	IronSec   float64
	Speedup   float64
}

// Figure15 benches LayerNorm/GELU/Softmax/ReLU batches under
// EzPC-SiRNN and Bolt, CPU vs Ironman OT backends.
func Figure15(o Options) []Fig15Row {
	const elems = 1 << 20
	base := ppml.DefaultCPUBaseline()
	iron := ppml.DefaultIronman()
	iron.Cfg.SampleRows = o.sampleRows()
	var rows []Fig15Row
	bench := func(f ppml.Framework, ops []ppml.Op) {
		for _, op := range ops {
			b := ppml.OperatorBench(f, op, elems, simnet.LAN, base)
			ir := ppml.OperatorBench(f, op, elems, simnet.LAN, iron)
			rows = append(rows, Fig15Row{
				Framework: f.Name, Op: op.String(),
				BaseSec: b.Total(), IronSec: ir.Total(),
				Speedup: b.Total() / ir.Total(),
			})
		}
	}
	bench(ppml.SiRNN, []ppml.Op{ppml.LayerNorm, ppml.GELU, ppml.Softmax, ppml.ReLU})
	bench(ppml.Bolt, []ppml.Op{ppml.LayerNorm, ppml.GELU, ppml.Softmax})
	return rows
}

// RenderFig15 prints the operator table.
func RenderFig15(rows []Fig15Row) string {
	var b strings.Builder
	b.WriteString("Figure 15: nonlinear operators, 2^20 elements (LAN)\n")
	fmt.Fprintf(&b, "%-11s %-10s %10s %10s %8s\n", "framework", "op", "base(s)", "ironman(s)", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s %-10s %10.2f %10.2f %7.2fx\n", r.Framework, r.Op, r.BaseSec, r.IronSec, r.Speedup)
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Figure 16: unified-architecture MatMul.
// ---------------------------------------------------------------------

// Fig16Row is one matrix dimension.
type Fig16Row struct {
	Dims     string
	CommBase int64
	CommUni  int64
	LatBase  float64
	LatUni   float64
}

// Figure16 runs the three §6.4 dimensions on the LAN.
func Figure16() []Fig16Row {
	var rows []Fig16Row
	for _, d := range []ppml.MatMul{{M: 64, K: 768, N: 768}, {M: 64, K: 768, N: 64}, {M: 64, K: 4096, N: 64}} {
		rows = append(rows, Fig16Row{
			Dims:     fmt.Sprintf("(%d,%d,%d)", d.M, d.K, d.N),
			CommBase: d.CommBytes(false),
			CommUni:  d.CommBytes(true),
			LatBase:  d.Latency(simnet.LAN, false),
			LatUni:   d.Latency(simnet.LAN, true),
		})
	}
	return rows
}

// RenderFig16 prints the comparison.
func RenderFig16(rows []Fig16Row) string {
	var b strings.Builder
	b.WriteString("Figure 16: MatMul with/without unified architecture (LAN)\n")
	fmt.Fprintf(&b, "%-16s %12s %12s %8s %10s %10s %8s\n",
		"dims", "comm w/o(MB)", "comm w/(MB)", "ratio", "lat w/o(ms)", "lat w/(ms)", "ratio")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %12.2f %12.2f %7.2fx %10.2f %10.2f %7.2fx\n",
			r.Dims, float64(r.CommBase)/1e6, float64(r.CommUni)/1e6,
			float64(r.CommBase)/float64(r.CommUni),
			r.LatBase*1e3, r.LatUni*1e3, r.LatBase/r.LatUni)
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Table 5: end-to-end PPML latency.
// ---------------------------------------------------------------------

// Table5Row is one (framework, model, network) comparison.
type Table5Row struct {
	Framework string
	Model     string
	Network   string
	BaseSec   float64
	IronSec   float64
	Speedup   float64
}

// Table5 generates the full table.
func Table5(o Options) []Table5Row {
	base := ppml.DefaultCPUBaseline()
	iron := ppml.DefaultIronman()
	iron.Cfg.SampleRows = o.sampleRows()
	var rows []Table5Row
	for _, e := range ppml.Table5Frameworks() {
		for _, m := range e.Models {
			for _, net := range []simnet.Network{simnet.WAN, simnet.LAN} {
				b, ir, sp := ppml.Speedup(e.FW, m, net, base, iron)
				rows = append(rows, Table5Row{
					Framework: e.FW.Name, Model: m.Name, Network: net.Name,
					BaseSec: b.Total(), IronSec: ir.Total(), Speedup: sp,
				})
			}
		}
	}
	return rows
}

// RenderTable5 prints the table.
func RenderTable5(rows []Table5Row) string {
	var b strings.Builder
	b.WriteString("Table 5: end-to-end PPML latency (seconds)\n")
	fmt.Fprintf(&b, "%-11s %-12s %-20s %10s %10s %8s\n", "framework", "model", "network", "base", "ironman", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s %-12s %-20s %10.1f %10.1f %7.2fx\n",
			r.Framework, r.Model, r.Network, r.BaseSec, r.IronSec, r.Speedup)
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Tables 2, 4, 6.
// ---------------------------------------------------------------------

// Table2Data returns the PRG cores Table 2 compares (for the JSON
// emitter; RenderTable2 is the human view).
func Table2Data() []area.PRGCore { return []area.PRGCore{area.AES128, area.ChaCha8} }

// Table4Data returns the Table 4 parameter sets.
func Table4Data() []ferret.Params { return ferret.Table4 }

// Table6Data returns the two Table 6 design points.
func Table6Data() []area.Ironman { return []area.Ironman{area.Default256K, area.Default1M} }

// RenderTable2 prints the PRG comparison.
func RenderTable2() string {
	var b strings.Builder
	b.WriteString("Table 2: PRG comparison (45nm)\n")
	for _, c := range Table2Data() {
		fmt.Fprintf(&b, "  %-8s out=%3db area=%.3fmm2 perf/area=%.3fx power=%.2fmW power/block=%.3fx\n",
			c.Name, c.OutputBits, c.AreaMM2, area.PerfPerAreaRatio(c), c.PowerMW, area.PowerPerBlockRatio(c))
	}
	return b.String()
}

// RenderTable4 prints the parameter sets with derived budgets.
func RenderTable4() string {
	var b strings.Builder
	b.WriteString("Table 4: PCG-style OT-extension parameter sets\n")
	fmt.Fprintf(&b, "%-6s %10s %6s %8s %6s %8s %10s %8s\n", "set", "n", "l", "k", "t", "bitsec", "usable", "reserve")
	for _, p := range Table4Data() {
		fmt.Fprintf(&b, "%-6s %10d %6d %8d %6d %8.1f %10d %8d\n",
			p.Name, p.N, p.L, p.K, p.T, p.BitSec, p.Usable(), p.Reserve())
	}
	fmt.Fprintf(&b, "  (COT budget per tree: log2(l); e.g. l=4096 -> %d)\n", spcot.COTBudget(4096))
	return b.String()
}

// RenderTable6 prints the design overheads.
func RenderTable6() string {
	var b strings.Builder
	b.WriteString("Table 6: Ironman-NMP design overhead\n")
	for _, ir := range Table6Data() {
		fmt.Fprintf(&b, "  %s\n", ir.Report())
	}
	fmt.Fprintf(&b, "  ChaCha8 core: %.3f mm2, %.2f mW\n", area.ChaCha8.AreaMM2, area.ChaCha8.PowerMW)
	return b.String()
}
