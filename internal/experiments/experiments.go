// Package experiments regenerates every table and figure of the
// paper's evaluation. Each Figure/Table function returns a structured
// result with a Render method that prints the same rows/series the
// paper reports; cmd/ironman-bench and the top-level benchmark harness
// are thin wrappers around this package. EXPERIMENTS.md records the
// paper-reported values next to the regenerated ones.
package experiments

import (
	"fmt"
	"strings"

	"ironman/internal/extension"
	"ironman/internal/ferret"
	"ironman/internal/obs"

	"ironman/internal/prg"
	"ironman/internal/sim/cpu"
	"ironman/internal/sim/gpu"
	"ironman/internal/sim/nmp"
)

// Quick toggles reduced sample sizes for CI-speed runs. Trace, when
// non-nil, collects phase spans from the protocol-backed benches
// (currently ExtendBench) for chrome://tracing / Perfetto. Backends
// selects the extension backends ExtendBench compares (nil runs the
// default backend only).
type Options struct {
	Quick    bool
	Trace    *obs.Tracer
	Backends []string
}

// backends resolves the backend selection for the protocol benches.
func (o Options) backends() []string {
	if len(o.Backends) == 0 {
		return []string{extension.Default}
	}
	return o.Backends
}

func (o Options) sampleRows() int {
	if o.Quick {
		// Sampling distorts access density slightly (fewer rows over
		// the same k columns); quick mode trades that for speed.
		return 60_000
	}
	return 0 // exact per-rank workload
}

// ---------------------------------------------------------------------
// Figure 12: OTE latency on CPU, GPU and Ironman across memory
// configurations and parameter sets, generating 2^25 OTs.
// ---------------------------------------------------------------------

// Fig12Row is one (cache, ranks, paramSet) design point.
type Fig12Row struct {
	CacheKB    int
	Ranks      int
	ParamSet   string
	CPUSec     float64
	GPUSec     float64
	NMPSec     float64
	SpeedupCPU float64
	HitRate    float64
}

// Figure12 sweeps rank counts x cache sizes x Table 4 sets.
func Figure12(o Options) []Fig12Row {
	const totalOTs = 1 << 25
	var rows []Fig12Row
	host := cpu.Xeon5220R
	for _, cacheKB := range []int{256, 1024} {
		for _, ranks := range []int{2, 4, 8, 16} {
			for _, params := range ferret.Table4 {
				cfg := nmp.DefaultConfig(ranks, cacheKB<<10)
				cfg.SampleRows = o.sampleRows()
				res, err := nmp.SimulateOTE(cfg, params, prg.New(prg.ChaCha8, 4), nmp.SortFor(cfg), totalOTs)
				if err != nil {
					panic(err)
				}
				cpuSec := host.TotalOTsLatency(params, totalOTs)
				rows = append(rows, Fig12Row{
					CacheKB:    cacheKB,
					Ranks:      ranks,
					ParamSet:   params.Name,
					CPUSec:     cpuSec,
					GPUSec:     cpuSec / gpu.A6000.SpeedupOverCPU,
					NMPSec:     res.TotalSeconds,
					SpeedupCPU: cpuSec / res.TotalSeconds,
					HitRate:    res.LPN.CacheHitRate,
				})
			}
		}
	}
	return rows
}

// RenderFig12 prints the sweep as a table.
func RenderFig12(rows []Fig12Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 12: OTE latency for 2^25 OTs (normalized to CPU)\n")
	fmt.Fprintf(&b, "%-6s %-6s %-6s %10s %10s %10s %9s %7s\n",
		"cache", "ranks", "set", "CPU(ms)", "GPU(ms)", "NMP(ms)", "speedup", "hit%")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6d %-6d %-6s %10.1f %10.1f %10.2f %8.1fx %6.1f%%\n",
			r.CacheKB, r.Ranks, r.ParamSet, r.CPUSec*1e3, r.GPUSec*1e3, r.NMPSec*1e3,
			r.SpeedupCPU, r.HitRate*100)
	}
	return b.String()
}

// SpeedupRange scans Fig12 rows for the min/max speedup of a cache size
// at the given rank count (the headline 39.2-237.4x band).
func SpeedupRange(rows []Fig12Row, cacheKB, ranks int) (lo, hi float64) {
	lo, hi = -1, -1
	for _, r := range rows {
		if r.CacheKB != cacheKB || r.Ranks != ranks {
			continue
		}
		if lo < 0 || r.SpeedupCPU < lo {
			lo = r.SpeedupCPU
		}
		if r.SpeedupCPU > hi {
			hi = r.SpeedupCPU
		}
	}
	return
}

// ---------------------------------------------------------------------
// Figure 13(a): SPCOT ablation; 13(b): SPCOT vs LPN latency by ranks.
// ---------------------------------------------------------------------

// Fig13aRow is one tree-construction design point.
type Fig13aRow struct {
	Design  string
	Ops     int
	Seconds float64
	Speedup float64 // vs 2-ary AES
}

// Figure13a runs the four §6.2 design points on the 2^20 set.
func Figure13a(o Options) []Fig13aRow {
	params := ferret.Table4[0]
	cfg := nmp.DefaultConfig(16, 256<<10)
	cfg.SampleRows = o.sampleRows()
	designs := []struct {
		name  string
		kind  prg.Kind
		arity int
	}{
		{"2-ary tree with AES", prg.AES, 2},
		{"4-ary tree with AES", prg.AES, 4},
		{"2-ary tree with ChaCha", prg.ChaCha8, 2},
		{"4-ary tree with ChaCha", prg.ChaCha8, 4},
	}
	var rows []Fig13aRow
	var base float64
	for i, d := range designs {
		st, err := nmp.SimulateSPCOT(cfg, prg.New(d.kind, d.arity), params.L, params.T)
		if err != nil {
			panic(err)
		}
		if i == 0 {
			base = st.Seconds
		}
		rows = append(rows, Fig13aRow{Design: d.name, Ops: st.Ops, Seconds: st.Seconds, Speedup: base / st.Seconds})
	}
	return rows
}

// Fig13bRow compares phase latencies at one rank count.
type Fig13bRow struct {
	Ranks    int
	SPCOTSec map[string]float64 // per design
	LPNSec   float64
}

// Figure13b sweeps ranks, comparing SPCOT designs against LPN.
func Figure13b(o Options) []Fig13bRow {
	params := ferret.Table4[0]
	var rows []Fig13bRow
	for _, ranks := range []int{2, 4, 8, 16} {
		cfg := nmp.DefaultConfig(ranks, 256<<10)
		cfg.SampleRows = o.sampleRows()
		lp, err := nmp.SimulateLPN(cfg, params, nmp.SortFor(cfg), ferret.DefaultCodeSeed)
		if err != nil {
			panic(err)
		}
		row := Fig13bRow{Ranks: ranks, LPNSec: lp.Seconds, SPCOTSec: map[string]float64{}}
		for _, d := range []struct {
			name  string
			kind  prg.Kind
			arity int
		}{
			{"AESx2", prg.AES, 2}, {"ChaChax2", prg.ChaCha8, 2}, {"AESx4", prg.AES, 4}, {"ChaChax4", prg.ChaCha8, 4},
		} {
			st, err := nmp.SimulateSPCOT(cfg, prg.New(d.kind, d.arity), params.L, params.T)
			if err != nil {
				panic(err)
			}
			row.SPCOTSec[d.name] = st.Seconds
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderFig13 prints both panels.
func RenderFig13(a []Fig13aRow, b []Fig13bRow) string {
	var sb strings.Builder
	sb.WriteString("Figure 13(a): SPCOT ablation (2^20 set, 16 ranks)\n")
	for _, r := range a {
		fmt.Fprintf(&sb, "  %-24s ops=%-9d %8.3f ms  %5.2fx\n", r.Design, r.Ops, r.Seconds*1e3, r.Speedup)
	}
	sb.WriteString("Figure 13(b): SPCOT vs LPN latency by active ranks\n")
	for _, r := range b {
		fmt.Fprintf(&sb, "  %2d ranks: LPN %8.3f ms | SPCOT AESx2 %8.3f  ChaChax4 %8.3f ms\n",
			r.Ranks, r.LPNSec*1e3, r.SPCOTSec["AESx2"]*1e3, r.SPCOTSec["ChaChax4"]*1e3)
	}
	return sb.String()
}

// ---------------------------------------------------------------------
// Figure 14: memory-side cache sweep.
// ---------------------------------------------------------------------

// Fig14Row is one (cache size, param set) measurement.
type Fig14Row struct {
	CacheKB  int
	ParamSet string
	HitRate  float64
	LPNSec   float64
	SRAMArea float64
}

// Figure14 sweeps cache capacity 32KB..2MB over the Table 4 sets.
func Figure14(o Options) []Fig14Row {
	var rows []Fig14Row
	sets := ferret.Table4[:4] // the paper plots 2^20..2^23
	for _, kb := range []int{32, 64, 128, 256, 512, 1024, 2048} {
		for _, params := range sets {
			cfg := nmp.DefaultConfig(16, kb<<10)
			cfg.SampleRows = o.sampleRows()
			lp, err := nmp.SimulateLPN(cfg, params, nmp.SortFor(cfg), ferret.DefaultCodeSeed)
			if err != nil {
				panic(err)
			}
			rows = append(rows, Fig14Row{
				CacheKB:  kb,
				ParamSet: params.Name,
				HitRate:  lp.CacheHitRate,
				LPNSec:   lp.Seconds,
				SRAMArea: sramArea(kb),
			})
		}
	}
	return rows
}

func sramArea(kb int) float64 {
	// internal/sim/area owns the law; duplicated import avoided by a
	// tiny closure over its exported helper.
	return areaSRAM(kb << 10)
}

// RenderFig14 prints hit rate and latency per cache size.
func RenderFig14(rows []Fig14Row) string {
	var b strings.Builder
	b.WriteString("Figure 14: memory-side cache sweep (16 ranks)\n")
	fmt.Fprintf(&b, "%-8s %-6s %8s %12s %10s\n", "cache", "set", "hit%", "LPN(ms)", "SRAM(mm2)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8d %-6s %7.1f%% %12.3f %10.3f\n",
			r.CacheKB, r.ParamSet, r.HitRate*100, r.LPNSec*1e3, r.SRAMArea)
	}
	return b.String()
}
