package experiments

import (
	"math"
	"testing"
)

// TestArithBench pins the arithmetic layer's acceptance numbers: 128
// COTs per Beaver triple, measured wire within a framing margin of the
// operator model, and a plaintext-matching fixed-point matmul.
func TestArithBench(t *testing.T) {
	r := ArithBench(Options{Quick: true})
	if r.Triples < 1024 {
		t.Fatalf("unexpected triple count %d", r.Triples)
	}
	if r.COTsPerTriple != 128 {
		t.Fatalf("COTs/triple %v, want 128 (64 per direction)", r.COTsPerTriple)
	}
	// The model excludes transport framing; measured must sit within a
	// few percent above it.
	if r.BytesPerTriple < r.ModelBytesPerTriple ||
		r.BytesPerTriple > 1.05*r.ModelBytesPerTriple {
		t.Fatalf("bytes/triple %.1f vs model %.1f: outside the framing margin",
			r.BytesPerTriple, r.ModelBytesPerTriple)
	}
	if r.TriplesPerSec <= 0 || r.MatMulGFLOPs <= 0 {
		t.Fatal("throughput metrics must be positive")
	}
	// Truncation keeps the matmul within the documented error bound.
	if tol := 4.0 / math.Exp2(16); r.MaxAbsErr > tol {
		t.Fatalf("matmul max error %g above bound %g", r.MaxAbsErr, tol)
	}
	if RenderArith(r) == "" {
		t.Fatal("render empty")
	}
}
