package experiments

import (
	"fmt"
	"net"
	"strings"
	"time"

	"ironman/internal/ferret"
	"ironman/internal/otserv"
	"ironman/internal/otserv/loadgen"
	"ironman/internal/otserv/router"
)

// FleetResult is the dispenser-fleet load benchmark: a 3-shard otd
// fleet behind the consistent-hash router, driven over real loopback
// TCP by the otload generator. It is the serving-layer counterpart of
// the protocol benches — what a tenant actually observes when the
// dispenser is a shared multi-tenant service rather than a library.
type FleetResult struct {
	Shards int             `json:"shards"`
	Report *loadgen.Report `json:"report"`
}

// fleetResolve serves the CI-scale parameter sets the fleet bench
// opens hundreds of sessions against.
func fleetResolve(name string) (ferret.Params, error) {
	switch name {
	case "tiny":
		return ferret.TestParams(600, 32, 128, 8), nil
	case "small":
		return ferret.TestParams(3000, 32, 512, 16), nil
	}
	return ferret.ParamsByName(name)
}

// FleetBench boots a 3-shard fleet plus router in-process (each shard
// a full otserv.Server on its own TCP listener) and measures it with
// the load generator: 1024 concurrent sessions over 64 connections
// (Quick: 96 over 12), alternating sender/receiver draws.
func FleetBench(o Options) FleetResult {
	const shards = 3
	var (
		servers []*otserv.Server
		addrs   []string
	)
	for i := 0; i < shards; i++ {
		srv := otserv.NewServer(otserv.Config{
			Resolve:       fleetResolve,
			DefaultParams: "tiny",
			MaxSessions:   2048,
			ShardID:       uint64(i + 1),
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			panic(fmt.Sprintf("fleet bench: shard listen: %v", err))
		}
		go func() { _ = srv.Serve(ln) }()
		servers = append(servers, srv)
		addrs = append(addrs, ln.Addr().String())
	}
	rt := router.New(router.Config{Shards: addrs})
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(fmt.Sprintf("fleet bench: router listen: %v", err))
	}
	go func() { _ = rt.Serve(rln) }()
	defer func() {
		_ = rt.Close()
		for _, srv := range servers {
			_ = srv.Close()
		}
	}()

	cfg := loadgen.Config{
		Addr:            rln.Addr().String(),
		Sessions:        1024,
		Conns:           64,
		DrawsPerSession: 8,
		DrawN:           128,
		Depth:           128,
		Tenants:         8,
		Timeout:         5 * time.Minute,
	}
	if o.Quick {
		cfg.Sessions, cfg.Conns, cfg.DrawsPerSession = 96, 12, 4
	}
	rep, err := loadgen.Run(cfg)
	if err != nil {
		panic(fmt.Sprintf("fleet bench: %v", err))
	}
	return FleetResult{Shards: shards, Report: rep}
}

// RenderFleet formats the fleet benchmark for terminal output.
func RenderFleet(res FleetResult) string {
	var b strings.Builder
	r := res.Report
	fmt.Fprintf(&b, "Dispenser fleet: %d shards, %d sessions over %d conns (%d draws x %d COTs each)\n",
		res.Shards, r.Sessions, r.Conns, r.DrawsPerSession, r.DrawN)
	fmt.Fprintf(&b, "  opened %d  failed %d  draws %d  (%.0f draws/s, %d ms total)\n",
		r.SessionsOpened, r.SessionsFailed, r.Draws, r.DrawsPerSec, r.DurationMS)
	fmt.Fprintf(&b, "  draw latency  p50 %s  p95 %s  p99 %s  max %s\n",
		us(r.DrawLatency.P50), us(r.DrawLatency.P95), us(r.DrawLatency.P99), us(r.DrawLatency.Max))
	fmt.Fprintf(&b, "  hello latency p50 %s  p95 %s  p99 %s\n",
		us(r.HelloLatency.P50), us(r.HelloLatency.P95), us(r.HelloLatency.P99))
	fmt.Fprintf(&b, "  sheds: quota %d  dry %d  lease %d  other %d\n",
		r.QuotaSheds, r.DrySheds, r.LeaseErrors, r.OtherErrors)
	for _, s := range r.PerShard {
		fmt.Fprintf(&b, "  shard %d: %4d sessions  %5d draws\n", s.Shard, s.Sessions, s.Draws)
	}
	fmt.Fprintf(&b, "  balance max/even = %.3f (fleet bar: <= 2)\n", r.BalanceMaxOverEven)
	return b.String()
}

func us(v int64) string {
	return time.Duration(v * int64(time.Microsecond)).Round(10 * time.Microsecond).String()
}
