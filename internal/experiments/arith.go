package experiments

import (
	"fmt"
	"math"
	"time"

	"ironman/internal/arith"
	"ironman/internal/cot"
	"ironman/internal/ppml"
	"ironman/internal/transport"
)

// ArithResult is the arithmetic-layer engine datapoint: COT-backed
// Beaver-triple generation throughput (the preprocessing PPML linear
// layers burn most of their OT budget on) and a fixed-point secure
// matmul cross-checked against plaintext, run with the real engine
// over an in-process pipe.
type ArithResult struct {
	Triples             int     `json:"triples"`
	TripleSeconds       float64 `json:"triple_seconds"`
	TriplesPerSec       float64 `json:"triples_per_sec"`
	TripleWireBytes     int64   `json:"triple_wire_bytes"`
	BytesPerTriple      float64 `json:"bytes_per_triple"`
	ModelBytesPerTriple float64 `json:"model_bytes_per_triple"`
	COTsPerTriple       float64 `json:"cots_per_triple"`

	MatM          int     `json:"mat_m"`
	MatK          int     `json:"mat_k"`
	MatN          int     `json:"mat_n"`
	MatMulSeconds float64 `json:"matmul_seconds"`
	MatMulGFLOPs  float64 `json:"matmul_gflops"` // GFLOP-equivalent incl. triple gen
	MaxAbsErr     float64 `json:"max_abs_err"`   // vs plaintext fixed-point reference

	Exchanges int `json:"exchanges"`
}

// arithParties deals COT pools in both directions and assembles two
// arith parties over a fresh pipe.
func arithParties(budget int) (*arith.Party, *arith.Party, transport.Conn) {
	connA, connB := transport.Pipe()
	sAB, rAB, err := cot.RandomPools(budget)
	if err != nil {
		panic(err)
	}
	sBA, rBA, err := cot.RandomPools(budget)
	if err != nil {
		panic(err)
	}
	type res struct {
		p   *arith.Party
		err error
	}
	ch := make(chan res, 1)
	go func() {
		p, err := arith.NewParty(connA, sAB, rBA, true)
		ch <- res{p, err}
	}()
	b, err := arith.NewParty(connB, sBA, rAB, false)
	if err != nil {
		panic(err)
	}
	ra := <-ch
	if ra.err != nil {
		panic(ra.err)
	}
	return ra.p, b, connA
}

// ArithBench measures Beaver-triple generation (Gilboa over word OTs)
// and a fixed-point secure matrix product. Quick runs 1024 triples and
// a 8x32 · 32x8 matmul; the full run 4096 triples and 16x64 · 64x16.
func ArithBench(o Options) ArithResult {
	nt := 4096
	m, k, n := 16, 64, 16
	if o.Quick {
		nt = 1024
		m, k, n = 8, 32, 8
	}
	budget := 64 * (nt + m*k*n)

	a, b, connA := arithParties(budget)
	r := ArithResult{Triples: nt, MatM: m, MatK: k, MatN: n}

	// Phase 1: raw triple throughput, spot-checked by opening a few.
	base := connA.Stats()
	start := time.Now()
	done := make(chan error, 1)
	var trA *arith.Triples
	go func() {
		tr, err := a.NewTriples(nt)
		trA = tr
		done <- err
	}()
	trB, err := b.NewTriples(nt)
	if err != nil {
		panic(err)
	}
	if err := <-done; err != nil {
		panic(err)
	}
	r.TripleSeconds = time.Since(start).Seconds()
	stats := connA.Stats()
	r.TripleWireBytes = stats.TotalBytes() - base.TotalBytes()
	r.TriplesPerSec = float64(nt) / r.TripleSeconds
	r.BytesPerTriple = float64(r.TripleWireBytes) / float64(nt)
	r.ModelBytesPerTriple = ppml.ArithTripleCost(int64(nt)).BytesPerTriple()
	r.COTsPerTriple = float64(ppml.ArithTripleCost(1).COTs)
	checkTriples(a, b, trA, trB, 8)

	// Phase 2: fixed-point matmul (triple gen + Beaver online +
	// truncation), cross-checked against the plaintext product.
	f := arith.Fixed{Frac: 16}
	xs := make([]float64, m*k)
	ys := make([]float64, k*n)
	seed := uint64(0x2545F4914F6CDD1D)
	for i := range xs {
		seed = seed*6364136223846793005 + 1442695040888963407
		xs[i] = float64(int64(seed)>>40) / float64(int64(1)<<23)
	}
	for i := range ys {
		seed = seed*6364136223846793005 + 1442695040888963407
		ys[i] = float64(int64(seed)>>40) / float64(int64(1)<<23)
	}
	start = time.Now()
	type mres struct {
		vals []float64
		err  error
	}
	mch := make(chan mres, 1)
	eval := func(p *arith.Party, mineX bool) mres {
		tr, err := p.NewMatTriple(m, k, n)
		if err != nil {
			return mres{err: err}
		}
		x := p.NewPrivate(f.EncodeVec(xs), mineX)
		y := p.NewPrivate(f.EncodeVec(ys), !mineX)
		z, err := p.MatMul(x, y, tr)
		if err != nil {
			return mres{err: err}
		}
		z = p.TruncVec(z, f.Frac)
		open, err := p.Reveal(z)
		if err != nil {
			return mres{err: err}
		}
		return mres{vals: f.DecodeVec(open)}
	}
	go func() { mch <- eval(a, true) }()
	rb := eval(b, false)
	if rb.err != nil {
		panic(rb.err)
	}
	ra := <-mch
	if ra.err != nil {
		panic(ra.err)
	}
	r.MatMulSeconds = time.Since(start).Seconds()
	r.MatMulGFLOPs = 2 * float64(m) * float64(k) * float64(n) / r.MatMulSeconds / 1e9

	// Plaintext reference on the quantized inputs.
	qx, qy := f.DecodeVec(f.EncodeVec(xs)), f.DecodeVec(f.EncodeVec(ys))
	tol := 4.0 / float64(int64(1)<<f.Frac)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			want := 0.0
			for l := 0; l < k; l++ {
				want += qx[i*k+l] * qy[l*n+j]
			}
			got := ra.vals[i*n+j]
			if err := math.Abs(got - want); err > r.MaxAbsErr {
				r.MaxAbsErr = err
			}
			if math.Abs(got-want) > tol {
				panic(fmt.Sprintf("experiments: arith matmul wrong at (%d,%d): %g want %g", i, j, got, want))
			}
		}
	}
	r.Exchanges = a.Exchanges
	return r
}

// checkTriples opens the first cnt triples on both sides and asserts
// c = a·b — a correctness spot check, run outside the timed window.
func checkTriples(a, b *arith.Party, trA, trB *arith.Triples, cnt int) {
	open := func(p *arith.Party, tr *arith.Triples) ([]uint64, []uint64, []uint64, error) {
		av, err := p.Reveal(tr.A[:cnt])
		if err != nil {
			return nil, nil, nil, err
		}
		bv, err := p.Reveal(tr.B[:cnt])
		if err != nil {
			return nil, nil, nil, err
		}
		cv, err := p.Reveal(tr.C[:cnt])
		return av, bv, cv, err
	}
	type res struct {
		a, b, c []uint64
		err     error
	}
	ch := make(chan res, 1)
	go func() {
		av, bv, cv, err := open(a, trA)
		ch <- res{av, bv, cv, err}
	}()
	if _, _, _, err := open(b, trB); err != nil {
		panic(err)
	}
	ra := <-ch
	if ra.err != nil {
		panic(ra.err)
	}
	for i := 0; i < cnt; i++ {
		if ra.c[i] != ra.a[i]*ra.b[i] {
			panic(fmt.Sprintf("experiments: Beaver triple %d broken: %x·%x != %x", i, ra.a[i], ra.b[i], ra.c[i]))
		}
	}
}

// RenderArith prints the arithmetic-layer datapoint.
func RenderArith(r ArithResult) string {
	return fmt.Sprintf(`Arith engine: COT-backed Beaver triples + fixed-point matmul
  %d triples in %.1f ms: %.0f triples/s, %.0f COTs/triple
  online wire: %.1f B/triple measured (model %.1f B/triple)
  %dx%d · %dx%d fixed-point matmul: %.1f ms, %.3f GFLOP-equiv/s, max |err| %.2e
`,
		r.Triples, r.TripleSeconds*1e3, r.TriplesPerSec, r.COTsPerTriple,
		r.BytesPerTriple, r.ModelBytesPerTriple,
		r.MatM, r.MatK, r.MatK, r.MatN, r.MatMulSeconds*1e3, r.MatMulGFLOPs, r.MaxAbsErr)
}
