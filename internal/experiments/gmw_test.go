package experiments

import "testing"

// TestGMWBench pins the acceptance numbers of the bitsliced engine: a
// 64-bit batched comparison must finish in a logarithmic number of OT
// exchanges and move >= 10x fewer wire bytes per AND gate than the
// seed's block-payload path.
func TestGMWBench(t *testing.T) {
	r := GMWBench(Options{Quick: true})
	if r.Width != 64 || r.Elems < 1024 {
		t.Fatalf("unexpected shape: %dx%d", r.Width, r.Elems)
	}
	if want := (3*r.Width - 2) * r.Elems; r.ANDGates != want {
		t.Fatalf("AND gates %d, want %d", r.ANDGates, want)
	}
	// 1 generate layer + ceil(log2 64) prefix rounds.
	if r.Exchanges != 7 {
		t.Fatalf("%d exchanges, want 7 (O(log w))", r.Exchanges)
	}
	// Two flights per exchange plus the reveal: far below the O(w*n)
	// flights of sequential per-bit ANDs.
	if r.Flights > 4*r.Exchanges+4 {
		t.Fatalf("%d flights for %d exchanges", r.Flights, r.Exchanges)
	}
	if r.WireReduction < 10 {
		t.Fatalf("wire reduction %.1fx < 10x (%.3f vs %.3f B/AND)",
			r.WireReduction, r.LegacyBytesPerAND, r.BytesPerAND)
	}
	if r.GatesPerSec <= 0 || r.BytesPerAND <= 0 {
		t.Fatal("throughput metrics must be positive")
	}
	if RenderGMW(r) == "" {
		t.Fatal("render empty")
	}
}
