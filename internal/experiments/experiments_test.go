package experiments

import (
	"strings"
	"testing"
)

var quick = Options{Quick: true}

func TestFigure1bMonotone(t *testing.T) {
	rows := Figure1b()
	if len(rows) != 5 {
		t.Fatalf("want 5 rows, got %d", len(rows))
	}
	prev := 0.0
	for _, r := range rows {
		total := r.Init + r.SPCOT + r.LPN
		if total <= prev {
			t.Fatalf("%s: latency %f not increasing", r.ParamSet, total)
		}
		prev = total
	}
	if !strings.Contains(RenderFig1b(rows), "2^24") {
		t.Fatal("render missing rows")
	}
}

func TestFigure1cRenders(t *testing.T) {
	out := RenderFig1c(Figure1c())
	if !strings.Contains(out, "compute-bound") || !strings.Contains(out, "memory-bound") {
		t.Fatal("roofline must show both regimes")
	}
}

func TestFigure7Trends(t *testing.T) {
	rows := Figure7(quick)
	if len(rows) != 5 {
		t.Fatalf("want 5 arities")
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Ops >= rows[i-1].Ops && rows[i].M <= 4 {
			t.Fatalf("ops should fall from m=%d to m=%d", rows[i-1].M, rows[i].M)
		}
		if rows[i].CommBytes <= rows[i-1].CommBytes {
			t.Fatalf("comm should rise with m")
		}
	}
	// 4-ary is the sweet spot: big op cut, small comm growth (§4.1).
	if f := float64(rows[0].Ops) / float64(rows[1].Ops); f < 2.8 || f > 3.2 {
		t.Fatalf("m=4 op reduction %.2f, want ~3", f)
	}
	_ = RenderFig7(rows)
}

func TestFigure8Renders(t *testing.T) {
	rows := Figure8()
	out := RenderFig8(rows)
	for _, s := range []string{"depth-first", "breadth-first", "hybrid"} {
		if !strings.Contains(out, s) {
			t.Fatalf("missing schedule %s", s)
		}
	}
	// With 16 trees the hybrid schedule must reach full utilization.
	var ok bool
	for _, r := range rows {
		if r.Schedule == "hybrid" && r.Trees == 16 && r.Utilization == 1 {
			ok = true
		}
	}
	if !ok {
		t.Fatal("hybrid at 16 trees should hit 100% utilization")
	}
}

func TestFigure12Shape(t *testing.T) {
	rows := Figure12(quick)
	if len(rows) != 2*4*5 {
		t.Fatalf("want 40 rows, got %d", len(rows))
	}
	// Rank scaling: at fixed cache+set, more ranks -> faster NMP.
	for _, cache := range []int{256, 1024} {
		var prev float64
		for _, ranks := range []int{2, 4, 8, 16} {
			for _, r := range rows {
				if r.CacheKB == cache && r.Ranks == ranks && r.ParamSet == "2^20" {
					if prev > 0 && r.NMPSec >= prev {
						t.Fatalf("%dKB: %d ranks not faster", cache, ranks)
					}
					prev = r.NMPSec
				}
			}
		}
	}
	// Cache scaling: 1MB beats 256KB at 16 ranks for the small sets.
	lo256, _ := SpeedupRange(rows, 256, 16)
	lo1024, hi1024 := SpeedupRange(rows, 1024, 16)
	if lo1024 <= lo256 {
		t.Fatalf("1MB speedups (%.1f) should dominate 256KB (%.1f)", lo1024, lo256)
	}
	if hi1024 < 5 {
		t.Fatalf("peak speedup %.1f implausibly low", hi1024)
	}
	_ = RenderFig12(rows)
}

func TestFigure13(t *testing.T) {
	a := Figure13a(quick)
	if len(a) != 4 {
		t.Fatal("want 4 ablation points")
	}
	if a[3].Speedup < 5.5 || a[3].Speedup > 6.5 {
		t.Fatalf("combined ablation speedup %.2f, want ~6", a[3].Speedup)
	}
	b := Figure13b(quick)
	for i, r := range b {
		// The optimized design hides under LPN at every rank count (the
		// §6.2 conclusion), and the op ablation holds at every point.
		if r.SPCOTSec["ChaChax4"] >= r.LPNSec {
			t.Fatalf("%d ranks: ChaChax4 SPCOT should hide under LPN", r.Ranks)
		}
		if ratio := r.SPCOTSec["AESx2"] / r.SPCOTSec["ChaChax4"]; ratio < 5.5 || ratio > 6.5 {
			t.Fatalf("%d ranks: AES/ChaCha ratio %.2f, want ~6", r.Ranks, ratio)
		}
		// SPCOT is a fixed-engine cost while LPN parallelizes across
		// ranks, so the AES baseline's share of the overlap budget grows
		// with rank count — the §6.2 argument for optimizing SPCOT.
		// (Our conservative LPN model keeps the crossover beyond 16
		// ranks; EXPERIMENTS.md discusses the gap to the paper's plot.)
		if i > 0 && r.SPCOTSec["AESx2"]/r.LPNSec <= b[i-1].SPCOTSec["AESx2"]/b[i-1].LPNSec {
			t.Fatalf("AESx2/LPN ratio should grow with ranks")
		}
	}
	_ = RenderFig13(a, b)
}

func TestFigure14Shape(t *testing.T) {
	rows := Figure14(quick)
	// Bigger cache -> hit rate never falls for a given set.
	bySet := map[string][]Fig14Row{}
	for _, r := range rows {
		bySet[r.ParamSet] = append(bySet[r.ParamSet], r)
	}
	for set, rs := range bySet {
		for i := 1; i < len(rs); i++ {
			if rs[i].HitRate < rs[i-1].HitRate-0.02 {
				t.Fatalf("%s: hit rate dropped from %dKB to %dKB", set, rs[i-1].CacheKB, rs[i].CacheKB)
			}
		}
	}
	_ = RenderFig14(rows)
}

func TestFigure15Band(t *testing.T) {
	rows := Figure15(quick)
	for _, r := range rows {
		if r.Speedup < 1.5 {
			t.Fatalf("%s/%s: operator speedup %.2f too low", r.Framework, r.Op, r.Speedup)
		}
	}
	_ = RenderFig15(rows)
}

func TestFigure16Ratios(t *testing.T) {
	rows := Figure16()
	for _, r := range rows {
		if float64(r.CommBase)/float64(r.CommUni) != 2 {
			t.Fatal("comm ratio must be 2")
		}
		lr := r.LatBase / r.LatUni
		if lr < 1.3 || lr > 1.5 {
			t.Fatalf("latency ratio %.2f, want ~1.4", lr)
		}
	}
	_ = RenderFig16(rows)
}

func TestTable5Structure(t *testing.T) {
	rows := Table5(quick)
	if len(rows) != (6+6+4)*2 {
		t.Fatalf("want 32 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Speedup <= 1 {
			t.Errorf("%s/%s/%s: speedup %.2f should exceed 1", r.Framework, r.Model, r.Network, r.Speedup)
		}
	}
	_ = RenderTable5(rows)
}

func TestStaticTablesRender(t *testing.T) {
	if !strings.Contains(RenderTable2(), "ChaCha8") {
		t.Fatal("table 2 render")
	}
	if !strings.Contains(RenderTable4(), "2^24") {
		t.Fatal("table 4 render")
	}
	if !strings.Contains(RenderTable6(), "cache=1024KB") {
		t.Fatal("table 6 render")
	}
}
