package experiments

import (
	"fmt"
	"strings"
	"time"

	"ironman/internal/block"
	"ironman/internal/extension"
	"ironman/internal/ferret"
	"ironman/internal/lpn"
	"ironman/internal/transport"
)

// ExtendPoint is one worker count's measurement of the real Extend
// pipeline (both parties in-process over a pipe).
type ExtendPoint struct {
	Workers     int     `json:"workers"`
	Seconds     float64 `json:"seconds"`
	COTsPerSec  float64 `json:"cots_per_sec"`
	WireBytes   int64   `json:"wire_bytes"`
	BytesPerCOT float64 `json:"bytes_per_cot"`
	Speedup     float64 `json:"speedup"` // vs workers=1
}

// ExtendCurve is one extension backend's worker-scaling curve, paired
// with the backend's own Cost model so archived runs record the
// model-vs-measured agreement.
type ExtendCurve struct {
	Backend string         `json:"backend"`
	Batch   int            `json:"batch"` // COTs per Extend
	Cost    extension.Cost `json:"cost"`
	Points  []ExtendPoint  `json:"points"`
}

// ExtendResult is the worker-scaling comparison of the registered
// extension backends: COT/s and wire bytes per COT at workers=1,2,4,8,
// per backend on the same parameter set. Two invariants are enforced
// (by panic, so a broken backend cannot post a number): the wire
// transcript is byte-count-identical across worker counts, and it
// equals the backend's Cost().ExtendBytes model exactly.
type ExtendResult struct {
	ParamSet   string        `json:"param_set"`
	Iterations int           `json:"iterations"`
	Curves     []ExtendCurve `json:"curves"`
}

// extendBenchSeed makes every worker count replay the identical
// protocol instance (same dealt reserve, tree seeds, noise positions).
var extendBenchSeed = block.New(0x657874656e64, 0x62656e6368)

// ExtendBench measures Extend throughput across worker counts on the
// paper's 2^22 parameter set (Quick: 2^20, one iteration) — the
// software analog of the paper's rank-parallelism ablation, run once
// per requested extension backend (Options.Backends) so the curves are
// directly comparable.
func ExtendBench(o Options) ExtendResult {
	name, iters := "2^22", 2
	if o.Quick {
		name, iters = "2^20", 1
	}
	params, err := ferret.ParamsByName(name)
	if err != nil {
		panic(err)
	}
	// Share one derived LPN code across all ferret runs: the index
	// matrix is identical (public seed) and dominates setup time.
	// Backends without an LPN stage ignore it.
	code := lpn.New(ferret.DefaultCodeSeed, params.N, params.K, params.D)
	delta := block.New(0xdead, 0xbeef)

	res := ExtendResult{ParamSet: name, Iterations: iters}
	for _, backendName := range o.backends() {
		backend, err := extension.ByName(backendName)
		if err != nil {
			panic(err)
		}
		curve := ExtendCurve{Backend: backend.Name(), Batch: backend.Batch(params)}
		for _, workers := range []int{1, 2, 4, 8} {
			connS, connR := transport.Pipe()
			// One shared tracer across worker counts: runs are
			// sequential, so the lanes interleave in time, not in tid
			// space. The wire invariance check below doubles as proof
			// that tracing never perturbs the transcript.
			opts := extension.Options{Workers: workers, Seed: extendBenchSeed, Code: code, Trace: o.Trace}
			if curve.Cost == (extension.Cost{}) {
				curve.Cost = backend.Cost(params, opts)
			}
			s, r, err := backend.DealPair(connS, connR, delta, params, opts)
			if err != nil {
				panic(err)
			}
			start := time.Now()
			for it := 0; it < iters; it++ {
				z, bits, y, err := extension.ExtendLockstep(s, r)
				if err != nil {
					panic(err)
				}
				// Spot-check the correlation on the first/last outputs
				// so a broken parallel path cannot post a fast number.
				for _, i := range []int{0, len(z) - 1} {
					want := y[i]
					if bits[i] {
						want = want.Xor(delta)
					}
					if z[i] != want {
						panic(fmt.Sprintf("experiments: %s output %d violates the COT correlation", backend.Name(), i))
					}
				}
			}
			elapsed := time.Since(start).Seconds()
			wire := connS.Stats().TotalBytes()
			cots := float64(curve.Batch) * float64(iters)
			curve.Points = append(curve.Points, ExtendPoint{
				Workers:     workers,
				Seconds:     elapsed,
				COTsPerSec:  cots / elapsed,
				WireBytes:   wire,
				BytesPerCOT: float64(wire) / cots,
			})
			_ = connS.Close()
			_ = connR.Close()
		}
		base := curve.Points[0]
		for i := range curve.Points {
			curve.Points[i].Speedup = base.Seconds / curve.Points[i].Seconds
			if curve.Points[i].WireBytes != base.WireBytes {
				panic(fmt.Sprintf("experiments: %s workers=%d moved %d wire bytes, workers=1 moved %d — parallel Extend must not touch the transcript",
					curve.Backend, curve.Points[i].Workers, curve.Points[i].WireBytes, base.WireBytes))
			}
			if modeled := int64(iters) * curve.Cost.ExtendBytes; curve.Points[i].WireBytes != modeled {
				panic(fmt.Sprintf("experiments: %s workers=%d moved %d wire bytes over %d iterations, Cost models %d — the backend's wire model must be exact",
					curve.Backend, curve.Points[i].Workers, curve.Points[i].WireBytes, iters, modeled))
			}
		}
		res.Curves = append(res.Curves, curve)
	}
	return res
}

// RenderExtend prints the per-backend worker-scaling curves.
func RenderExtend(r ExtendResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extend worker scaling: %s set, %d iteration(s)\n", r.ParamSet, r.Iterations)
	for _, c := range r.Curves {
		fmt.Fprintf(&b, "backend %s: %d COTs/Extend, model %.4f B/COT, %d round(s), %d base OTs\n",
			c.Backend, c.Batch, c.Cost.BytesPerCOT, c.Cost.Rounds, c.Cost.BaseOTs)
		fmt.Fprintf(&b, "%-8s %10s %12s %12s %8s\n", "workers", "time(ms)", "COT/s", "B/COT", "speedup")
		for _, p := range c.Points {
			fmt.Fprintf(&b, "%-8d %10.1f %12.0f %12.4f %7.2fx\n",
				p.Workers, p.Seconds*1e3, p.COTsPerSec, p.BytesPerCOT, p.Speedup)
		}
	}
	return b.String()
}
