package experiments

import (
	"fmt"
	"strings"
	"time"

	"ironman/internal/block"
	"ironman/internal/ferret"
	"ironman/internal/lpn"
	"ironman/internal/transport"
)

// ExtendPoint is one worker count's measurement of the real Extend
// pipeline (both parties in-process over a pipe).
type ExtendPoint struct {
	Workers     int     `json:"workers"`
	Seconds     float64 `json:"seconds"`
	COTsPerSec  float64 `json:"cots_per_sec"`
	WireBytes   int64   `json:"wire_bytes"`
	BytesPerCOT float64 `json:"bytes_per_cot"`
	Speedup     float64 `json:"speedup"` // vs workers=1
}

// ExtendResult is the worker-scaling curve of the multicore Extend
// pipeline: COT/s and wire bytes per COT at workers=1,2,4,8. The wire
// transcript is asserted byte-count-identical across worker counts
// (the parallel phases are local-only), so BytesPerCOT is constant and
// Speedup isolates the compute scaling.
type ExtendResult struct {
	ParamSet   string        `json:"param_set"`
	Iterations int           `json:"iterations"`
	Usable     int           `json:"usable"`
	Points     []ExtendPoint `json:"points"`
}

// extendBenchSeed makes every worker count replay the identical
// protocol instance (same dealt reserve, tree seeds, noise positions).
var extendBenchSeed = block.New(0x657874656e64, 0x62656e6368)

// ExtendBench measures Extend throughput across worker counts on the
// paper's 2^22 parameter set (Quick: 2^20, one iteration) — the
// software analog of the paper's rank-parallelism ablation.
func ExtendBench(o Options) ExtendResult {
	name, iters := "2^22", 2
	if o.Quick {
		name, iters = "2^20", 1
	}
	params, err := ferret.ParamsByName(name)
	if err != nil {
		panic(err)
	}
	// Share one derived LPN code across all worker counts: the index
	// matrix is identical (public seed) and dominates setup time.
	code := lpn.New(ferret.DefaultCodeSeed, params.N, params.K, params.D)
	delta := block.New(0xdead, 0xbeef)

	res := ExtendResult{ParamSet: name, Iterations: iters, Usable: params.Usable()}
	for _, workers := range []int{1, 2, 4, 8} {
		connS, connR := transport.Pipe()
		// One shared tracer across worker counts: runs are sequential,
		// so the lanes interleave in time, not in tid space. The wire
		// invariance check below doubles as proof that tracing never
		// perturbs the transcript.
		opts := ferret.Options{Workers: workers, Seed: extendBenchSeed, Code: code, Trace: o.Trace}
		s, r, err := ferret.DealPools(connS, connR, delta, params, opts)
		if err != nil {
			panic(err)
		}
		start := time.Now()
		for it := 0; it < iters; it++ {
			z, out, err := ferret.ExtendLockstep(s, r)
			if err != nil {
				panic(err)
			}
			// Spot-check the correlation on the first/last outputs so a
			// broken parallel path cannot post a fast number.
			if err := ferret.Check(delta, z[:1], &ferret.ReceiverOutput{Bits: out.Bits[:1], Blocks: out.Blocks[:1]}); err != nil {
				panic(err)
			}
			last := len(z) - 1
			if err := ferret.Check(delta, z[last:], &ferret.ReceiverOutput{Bits: out.Bits[last:], Blocks: out.Blocks[last:]}); err != nil {
				panic(err)
			}
		}
		elapsed := time.Since(start).Seconds()
		wire := connS.Stats().TotalBytes()
		cots := float64(params.Usable()) * float64(iters)
		res.Points = append(res.Points, ExtendPoint{
			Workers:     workers,
			Seconds:     elapsed,
			COTsPerSec:  cots / elapsed,
			WireBytes:   wire,
			BytesPerCOT: float64(wire) / cots,
		})
		_ = connS.Close()
		_ = connR.Close()
	}
	base := res.Points[0]
	for i := range res.Points {
		res.Points[i].Speedup = base.Seconds / res.Points[i].Seconds
		if res.Points[i].WireBytes != base.WireBytes {
			panic(fmt.Sprintf("experiments: workers=%d moved %d wire bytes, workers=1 moved %d — parallel Extend must not touch the transcript",
				res.Points[i].Workers, res.Points[i].WireBytes, base.WireBytes))
		}
	}
	return res
}

// RenderExtend prints the worker-scaling curve.
func RenderExtend(r ExtendResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extend worker scaling: %s set, %d iteration(s), %d usable COTs each\n",
		r.ParamSet, r.Iterations, r.Usable)
	fmt.Fprintf(&b, "%-8s %10s %12s %12s %8s\n", "workers", "time(ms)", "COT/s", "B/COT", "speedup")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-8d %10.1f %12.0f %12.4f %7.2fx\n",
			p.Workers, p.Seconds*1e3, p.COTsPerSec, p.BytesPerCOT, p.Speedup)
	}
	return b.String()
}
