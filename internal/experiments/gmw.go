package experiments

import (
	"fmt"
	"time"

	"ironman/internal/cot"
	"ironman/internal/gmw"
	"ironman/internal/transport"
)

// GMWResult is the engine-level datapoint behind the protocol layer:
// a batched width-bit greater-than over a vector of elements, run with
// the real bitsliced GMW engine over an in-process pipe, plus the
// wire-format comparison against the seed's block-payload AND path.
type GMWResult struct {
	Elems             int     `json:"elems"`
	Width             int     `json:"width"`
	ANDGates          int     `json:"and_gates"`
	Exchanges         int     `json:"exchanges"` // batched OT exchanges (O(log w))
	Flights           int     `json:"flights"`   // observed message flights at one endpoint
	WireBytes         int64   `json:"wire_bytes"`
	BytesPerAND       float64 `json:"bytes_per_and"`
	Seconds           float64 `json:"seconds"`
	GatesPerSec       float64 `json:"and_gates_per_sec"`
	LegacyBytesPerAND float64 `json:"legacy_bytes_per_and"`
	WireReduction     float64 `json:"wire_reduction"` // legacy / packed bytes per AND
}

// gmwParties deals COT pools in both directions and assembles two GMW
// parties over a fresh pipe.
func gmwParties(budget int) (*gmw.Party, *gmw.Party, transport.Conn) {
	connA, connB := transport.Pipe()
	sAB, rAB, err := cot.RandomPools(budget)
	if err != nil {
		panic(err)
	}
	sBA, rBA, err := cot.RandomPools(budget)
	if err != nil {
		panic(err)
	}
	type res struct {
		p   *gmw.Party
		err error
	}
	ch := make(chan res, 1)
	go func() {
		p, err := gmw.NewParty(connA, sAB, rBA, true)
		ch <- res{p, err}
	}()
	b, err := gmw.NewParty(connB, sBA, rAB, false)
	if err != nil {
		panic(err)
	}
	ra := <-ch
	if ra.err != nil {
		panic(ra.err)
	}
	return ra.p, b, connA
}

// GMWBench runs the batched comparison benchmark: Quick compares 1024
// elements, the full run 4096, both at 64-bit width.
func GMWBench(o Options) GMWResult {
	elems := 4096
	if o.Quick {
		elems = 1024
	}
	const width = 64
	budget := (3*width - 2) * elems

	xs := make([]uint64, elems)
	ys := make([]uint64, elems)
	seed := uint64(0x9E3779B97F4A7C15)
	for i := range xs {
		seed = seed*6364136223846793005 + 1442695040888963407
		xs[i] = seed
		seed = seed*6364136223846793005 + 1442695040888963407
		ys[i] = seed
	}

	a, b, connA := gmwParties(budget)
	base := connA.Stats()
	start := time.Now()
	done := make(chan error, 1)
	var open []bool
	go func() {
		gt, err := a.GreaterThanVec(a.NewPrivateVec(xs, width, true), a.NewPrivateVec(make([]uint64, elems), width, false))
		if err != nil {
			done <- err
			return
		}
		open, err = a.RevealPacked(gt)
		done <- err
	}()
	gt, err := b.GreaterThanVec(b.NewPrivateVec(make([]uint64, elems), width, false), b.NewPrivateVec(ys, width, true))
	if err != nil {
		panic(err)
	}
	if _, err := b.RevealPacked(gt); err != nil {
		panic(err)
	}
	if err := <-done; err != nil {
		panic(err)
	}
	elapsed := time.Since(start).Seconds()
	for i := range xs {
		if open[i] != (xs[i] > ys[i]) {
			panic(fmt.Sprintf("experiments: GMW comparison wrong at element %d", i))
		}
	}
	stats := connA.Stats()
	wire := stats.TotalBytes() - base.TotalBytes()

	r := GMWResult{
		Elems:             elems,
		Width:             width,
		ANDGates:          a.ANDGates,
		Exchanges:         a.Exchanges,
		Flights:           stats.Flights - base.Flights,
		WireBytes:         wire,
		BytesPerAND:       float64(wire) / float64(a.ANDGates),
		Seconds:           elapsed,
		GatesPerSec:       float64(a.ANDGates) / elapsed,
		LegacyBytesPerAND: legacyBytesPerAND(elems),
	}
	r.WireReduction = r.LegacyBytesPerAND / r.BytesPerAND
	return r
}

// legacyBytesPerAND measures the seed bitBlock path: one element-wise
// And layer of n gates through full 128-bit OT payloads.
func legacyBytesPerAND(n int) float64 {
	a, b, connA := gmwParties(n)
	base := connA.Stats().TotalBytes()
	done := make(chan error, 1)
	go func() {
		_, err := a.And(make(gmw.Share, n), make(gmw.Share, n))
		done <- err
	}()
	if _, err := b.And(make(gmw.Share, n), make(gmw.Share, n)); err != nil {
		panic(err)
	}
	if err := <-done; err != nil {
		panic(err)
	}
	return float64(connA.Stats().TotalBytes()-base) / float64(n)
}

// RenderGMW prints the engine datapoint.
func RenderGMW(r GMWResult) string {
	return fmt.Sprintf(`GMW bitsliced engine: %d-bit x %d-element batched comparison
  %d AND gates in %d batched OT exchanges (%d flights observed)
  online wire: %d B total, %.3f B/AND (seed block path: %.2f B/AND, %.1fx reduction)
  throughput: %.1f M AND gates/s (%.1f ms)
`,
		r.Width, r.Elems, r.ANDGates, r.Exchanges, r.Flights,
		r.WireBytes, r.BytesPerAND, r.LegacyBytesPerAND, r.WireReduction,
		r.GatesPerSec/1e6, r.Seconds*1e3)
}
