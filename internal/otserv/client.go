package otserv

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"ironman/internal/block"
	"ironman/internal/otserv/wire"
	"ironman/internal/pool"
	"ironman/internal/transport"
)

// Client is one connection to a dispenser (a standalone daemon, one
// fleet shard, or the fleet router — the wire protocol is identical).
// It is safe for concurrent use; requests on one connection serialize
// (open one client per high-throughput consumer if that matters).
type Client struct {
	mu   sync.Mutex
	conn transport.Conn
}

// Dial connects to a dispenser daemon or fleet router.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(transport.NewTCP(nc)), nil
}

// NewClient wraps an established conn (any transport.Conn, so tests
// can run a dispenser over an in-process pipe).
func NewClient(conn transport.Conn) *Client {
	return &Client{conn: conn}
}

// Close disconnects. The server orphans this connection's sessions:
// their lease clocks start, and they are resumable with
// AttachToken until the lease expires. Use Session.Close for an
// immediate teardown.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

// roundTrip sends one request and decodes the status byte. Typed
// failures (quota, lease, dry, draining, version, backend) come back
// as errors matching the wire sentinels under errors.Is.
func (c *Client) roundTrip(req []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	//ironman:allow(locknet) c.mu is the connection serializer: request/response framing needs exclusive conn access, and concurrent draws use separate clients
	if err := c.conn.Send(req); err != nil {
		return nil, err
	}
	//ironman:allow(locknet) same framing invariant as the Send above — the reply must be read before the next request goes out
	resp, err := c.conn.Recv()
	if err != nil {
		return nil, err
	}
	if len(resp) < 1 {
		return nil, errors.New("otserv: empty response")
	}
	if resp[0] == wire.StatusOK {
		return resp[1:], nil
	}
	return nil, wire.FromStatus(resp[0], string(resp[1:]))
}

func (c *Client) roundTripJSON(op byte, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	out, err := c.roundTrip(append([]byte{op}, body...))
	if err != nil {
		return err
	}
	return json.Unmarshal(out, resp)
}

// SessionConfig shapes a NewSession handshake.
type SessionConfig struct {
	// Params names a parameter set known to the server ("" = server
	// default).
	Params string
	// Backend names the extension backend the session should run on
	// ("" = server default). Unsupported names fail NewSession with an
	// ErrBackendUnsupported-wrapping error before the server creates
	// any session state.
	Backend string
	// BinaryAES selects the classic 2-ary AES GGM construction for
	// this session instead of the Ironman 4-ary ChaCha8 one.
	BinaryAES bool
	// Depth requests a prefetch depth in batches (0 = server default;
	// the server caps it).
	Depth int
	// LowWater overrides the session pool's refill trigger.
	LowWater int
	// Workers requests an Extend worker-goroutine cap for the session's
	// refills (0 = server default; the server clamps to its own cap).
	Workers int
	// Tenant names the accounting principal the session draws under
	// ("" = the anonymous default tenant). Quotas key off it.
	Tenant string
	// Lease requests how long the session survives a dropped
	// connection before the server reclaims it (0 = server default;
	// the server clamps to its own cap).
	Lease time.Duration
}

// Session is a handle on one dispenser session.
type Session struct {
	c        *Client
	id       uint64
	token    string // fleet routing token (reconnect handle)
	params   string
	backend  string
	batch    int
	lease    time.Duration
	role     Role
	tokenS   string
	tokenR   string
	delta    block.Block
	hasDelta bool
}

// NewSession opens a fresh session (fresh Δ, dedicated pool) on the
// dispenser. The creator learns Δ, holds both draw roles, and
// receives the two attach tokens; hand one token to the consumer of
// each half (a party holding both tokens can reconstruct Δ).
func (c *Client) NewSession(cfg SessionConfig) (*Session, error) {
	req := wire.HelloReq{
		V:         wire.ProtoVersion,
		Params:    cfg.Params,
		Backend:   cfg.Backend,
		BinaryAES: cfg.BinaryAES,
		Depth:     cfg.Depth,
		LowWater:  cfg.LowWater,
		Workers:   cfg.Workers,
		Tenant:    cfg.Tenant,
		LeaseMS:   cfg.Lease.Milliseconds(),
	}
	// HELLO carries the v2 framing (version byte before the JSON), so
	// it cannot go through roundTripJSON.
	body, err := wire.HelloBody(req)
	if err != nil {
		return nil, err
	}
	out, err := c.roundTrip(append([]byte{wire.OpHello}, body...))
	if err != nil {
		return nil, err
	}
	var resp wire.HelloResp
	if err := json.Unmarshal(out, &resp); err != nil {
		return nil, err
	}
	return &Session{
		c:        c,
		id:       resp.Session,
		token:    resp.SessionToken,
		params:   resp.Params,
		backend:  resp.Backend,
		batch:    resp.Batch,
		lease:    time.Duration(resp.LeaseMS) * time.Millisecond,
		role:     RoleBoth,
		tokenS:   resp.SenderToken,
		tokenR:   resp.ReceiverToken,
		delta:    block.Block{Lo: resp.DeltaLo, Hi: resp.DeltaHi},
		hasDelta: true,
	}, nil
}

// Attach joins an existing session with one of its tokens, to consume
// the half the token authorizes. Attached handles do not learn Δ.
func (c *Client) Attach(id uint64, token string) (*Session, error) {
	return c.attach(wire.AttachReq{Session: id, Token: token})
}

// AttachToken joins a session by its fleet-wide routing token — the
// reconnect path. A client whose connection died re-dials (the router
// lands it on the owning shard), presents the session token plus its
// capability token, and resumes drawing at the exact pool position it
// left, as long as the lease has not expired (then: ErrLeaseExpired).
func (c *Client) AttachToken(sessionToken, token string) (*Session, error) {
	return c.attach(wire.AttachReq{SessionToken: sessionToken, Token: token})
}

func (c *Client) attach(req wire.AttachReq) (*Session, error) {
	var resp wire.AttachResp
	if err := c.roundTripJSON(wire.OpAttach, req, &resp); err != nil {
		return nil, err
	}
	return &Session{
		c:       c,
		id:      resp.Session,
		token:   req.SessionToken,
		params:  resp.Params,
		backend: resp.Backend,
		batch:   resp.Batch,
		lease:   time.Duration(resp.LeaseMS) * time.Millisecond,
		role:    resp.Role,
	}, nil
}

// ServerStats fetches the server-wide counters (per-shard when
// connected to a shard; merged when connected to the router).
func (c *Client) ServerStats() (*StatsDump, error) {
	out, err := c.roundTrip(wire.SessionReq(wire.OpStats, 0))
	if err != nil {
		return nil, err
	}
	var dump StatsDump
	if err := json.Unmarshal(out, &dump); err != nil {
		return nil, err
	}
	return &dump, nil
}

// ID is the server-assigned session id (share it for Attach; in fleet
// mode the shard id is in the top bits, wire.ShardOf).
func (s *Session) ID() uint64 { return s.id }

// Token is the session's fleet-wide routing token: the handle for
// AttachToken reconnects. It routes but does not authorize.
func (s *Session) Token() string { return s.token }

// Params names the session's parameter set.
func (s *Session) Params() string { return s.params }

// Backend names the session's negotiated extension backend.
func (s *Session) Backend() string { return s.backend }

// Batch is the session's per-Extend correlation yield.
func (s *Session) Batch() int { return s.batch }

// Lease is the session's orphan grace window: how long it survives a
// dropped connection before the server reclaims it.
func (s *Session) Lease() time.Duration { return s.lease }

// Delta returns the session's global correlation. ok is false on
// attached handles, which are not told Δ.
func (s *Session) Delta() (delta block.Block, ok bool) { return s.delta, s.hasDelta }

// Role reports which halves this handle may draw.
func (s *Session) Role() Role { return s.role }

// SenderToken is the attach capability for the sender half (empty on
// attached handles).
func (s *Session) SenderToken() string { return s.tokenS }

// ReceiverToken is the attach capability for the receiver half (empty
// on attached handles).
func (s *Session) ReceiverToken() string { return s.tokenR }

// Stats fetches the session's pool counters.
func (s *Session) Stats() (*SessionStats, error) {
	out, err := s.c.roundTrip(wire.SessionReq(wire.OpStats, s.id))
	if err != nil {
		return nil, err
	}
	var st SessionStats
	if err := json.Unmarshal(out, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Close drops this handle's reference; the server tears the session
// down once no client holds it (immediately — an explicit CLOSE waives
// the lease window).
func (s *Session) Close() error {
	_, err := s.c.roundTrip(wire.SessionReq(wire.OpClose, s.id))
	return err
}

// SenderCOTs draws n sender-half correlations (r0 blocks; r1 = r0 ⊕ Δ
// implied). Draws larger than the protocol's single-response cap are
// chunked transparently.
func (s *Session) SenderCOTs(n int) ([]block.Block, error) {
	if n < 0 {
		return nil, fmt.Errorf("otserv: negative draw %d", n)
	}
	out := make([]block.Block, 0, n)
	for n > 0 {
		chunk := n
		if chunk > MaxDraw {
			chunk = MaxDraw
		}
		body, err := s.c.roundTrip(wire.DrawReq(wire.OpDrawS, s.id, chunk))
		if err != nil {
			return nil, err
		}
		if len(body) != chunk*block.Size {
			return nil, fmt.Errorf("otserv: DRAW_S response is %d bytes, want %d", len(body), chunk*block.Size)
		}
		out = append(out, block.SliceFromBytes(body)...)
		n -= chunk
	}
	return out, nil
}

// ReceiverCOTs draws n receiver-half correlations: choice bits and the
// matching r_b blocks.
func (s *Session) ReceiverCOTs(n int) ([]bool, []block.Block, error) {
	if n < 0 {
		return nil, nil, fmt.Errorf("otserv: negative draw %d", n)
	}
	bits := make([]bool, 0, n)
	blocks := make([]block.Block, 0, n)
	for n > 0 {
		chunk := n
		if chunk > MaxDraw {
			chunk = MaxDraw
		}
		body, err := s.c.roundTrip(wire.DrawReq(wire.OpDrawR, s.id, chunk))
		if err != nil {
			return nil, nil, err
		}
		bs, blks, err := wire.ParseDrawRResp(body, chunk)
		if err != nil {
			return nil, nil, err
		}
		bits = append(bits, bs...)
		blocks = append(blocks, blks...)
		n -= chunk
	}
	return bits, blocks, nil
}

// poolStats converts a STATS half back to the pool.Stats shape, so
// remote drawers report through the same type as local pools.
func poolStats(h HalfStats) pool.Stats {
	return pool.Stats{
		Generated:    h.Generated,
		Dispensed:    h.Dispensed,
		Refills:      h.Refills,
		Draws:        h.Draws,
		BlockedDraws: h.BlockedDraws,
		BlockedTime:  time.Duration(h.BlockedNS),
		Buffered:     h.Buffered,
	}
}

// The remote drawers satisfy the pool source contracts, so a dispenser
// session slots in anywhere a local pool or dealt half does.
var (
	_ pool.SenderSource   = (*RemoteSender)(nil)
	_ pool.ReceiverSource = (*RemoteReceiver)(nil)
)

// RemoteSender adapts a session to the draw API of ironman.Sender and
// the pool.SenderSource contract, so code written against either can
// consume from a dispenser unchanged.
type RemoteSender struct{ s *Session }

// Sender returns the sender-half draw adapter.
func (s *Session) Sender() *RemoteSender { return &RemoteSender{s} }

// COTs draws n sender-half correlations.
func (r *RemoteSender) COTs(n int) ([]block.Block, error) { return r.s.SenderCOTs(n) }

// Stats reports the session's server-side sender-half pool counters
// (zero value if the STATS round trip fails — the drawer contract has
// no error channel for stats).
func (r *RemoteSender) Stats() pool.Stats {
	st, err := r.s.Stats()
	if err != nil {
		return pool.Stats{}
	}
	return poolStats(st.Sender)
}

// Close drops the underlying session handle's reference.
func (r *RemoteSender) Close() error { return r.s.Close() }

// RemoteReceiver adapts a session to the draw API of ironman.Receiver
// and the pool.ReceiverSource contract.
type RemoteReceiver struct{ s *Session }

// Receiver returns the receiver-half draw adapter.
func (s *Session) Receiver() *RemoteReceiver { return &RemoteReceiver{s} }

// COTs draws n receiver-half correlations.
func (r *RemoteReceiver) COTs(n int) ([]bool, []block.Block, error) { return r.s.ReceiverCOTs(n) }

// Stats reports the session's server-side receiver-half pool counters
// (zero value if the STATS round trip fails).
func (r *RemoteReceiver) Stats() pool.Stats {
	st, err := r.s.Stats()
	if err != nil {
		return pool.Stats{}
	}
	return poolStats(st.Receiver)
}

// Close drops the underlying session handle's reference.
func (r *RemoteReceiver) Close() error { return r.s.Close() }
