package otserv

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"ironman"
	"ironman/internal/block"
	"ironman/internal/extension"
	"ironman/internal/ferret"
	"ironman/internal/otserv/wire"
	"ironman/internal/pool"
)

// testResolve serves small parameter sets so sessions are cheap.
func testResolve(name string) (ferret.Params, error) {
	switch name {
	case "small":
		return ferret.TestParams(600, 32, 128, 8), nil
	case "mid":
		return ferret.TestParams(3000, 32, 512, 16), nil
	default:
		return ferret.Params{}, fmt.Errorf("test resolve: unknown set %q", name)
	}
}

func startServer(t *testing.T, cfg Config) (addr string, srv *Server) {
	t.Helper()
	if cfg.Resolve == nil {
		cfg.Resolve = testResolve
		cfg.DefaultParams = "small"
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv = NewServer(cfg)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return ln.Addr().String(), srv
}

func dial(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// verify checks a drawn batch under its session's Δ with the public
// API's VerifyCOTs.
func verify(t *testing.T, delta block.Block, z []block.Block, bits []bool, y []block.Block) {
	t.Helper()
	if err := ironman.VerifyCOTs(delta, z, bits, y); err != nil {
		t.Error(err)
	}
}

// TestConcurrentSessions is the acceptance check for the dispenser:
// six sessions (over four clients' worth of concurrency and then some)
// draw COT batches from one server at once, and every batch verifies
// under its own session's fresh Δ.
func TestConcurrentSessions(t *testing.T) {
	addr, _ := startServer(t, Config{})
	const sessions = 6
	const draws = 3
	deltas := make([]block.Block, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := dial(t, addr)
			sess, err := c.NewSession(SessionConfig{Params: "small", Depth: 2})
			if err != nil {
				t.Error(err)
				return
			}
			delta, ok := sess.Delta()
			if !ok {
				t.Error("creator must learn delta")
				return
			}
			deltas[i] = delta
			// Uneven draw sizes exercise batch-boundary buffering.
			for d := 0; d < draws; d++ {
				n := 150 + 97*d + 13*i
				z, err := sess.Sender().COTs(n)
				if err != nil {
					t.Error(err)
					return
				}
				bits, y, err := sess.Receiver().COTs(n)
				if err != nil {
					t.Error(err)
					return
				}
				verify(t, delta, z, bits, y)
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < sessions; i++ {
		for j := i + 1; j < sessions; j++ {
			if deltas[i] == deltas[j] {
				t.Fatalf("sessions %d and %d share a delta", i, j)
			}
		}
	}
}

// TestWorkersClampAndSession: a multi-worker session's correlations
// verify like a sequential one (the clamp itself is unit-tested in the
// session package).
func TestWorkersClampAndSession(t *testing.T) {
	addr, _ := startServer(t, Config{Workers: 2})
	c := dial(t, addr)
	sess, err := c.NewSession(SessionConfig{Params: "small", Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	z, err := sess.SenderCOTs(200)
	if err != nil {
		t.Fatal(err)
	}
	bits, y, err := sess.ReceiverCOTs(200)
	if err != nil {
		t.Fatal(err)
	}
	delta, ok := sess.Delta()
	if !ok {
		t.Fatal("creator session must know delta")
	}
	verify(t, delta, z, bits, y)
}

func TestAttachSplitsHalves(t *testing.T) {
	addr, _ := startServer(t, Config{})
	creator := dial(t, addr)
	sess, err := creator.NewSession(SessionConfig{Params: "small"})
	if err != nil {
		t.Fatal(err)
	}
	delta, _ := sess.Delta()

	other := dial(t, addr)
	attached, err := other.Attach(sess.ID(), sess.ReceiverToken())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := attached.Delta(); ok {
		t.Fatal("attached handle must not learn delta")
	}
	if attached.Role() != RoleReceiver {
		t.Fatalf("role = %q, want receiver", attached.Role())
	}
	if attached.Batch() != sess.Batch() || attached.Params() != sess.Params() {
		t.Fatalf("attach metadata mismatch: %d/%s vs %d/%s",
			attached.Batch(), attached.Params(), sess.Batch(), sess.Params())
	}
	// The receiver token must not authorize sender-half draws — with
	// both halves, an attacher could reconstruct Δ.
	if _, err := attached.SenderCOTs(10); err == nil ||
		!strings.Contains(err.Error(), "no sender role") {
		t.Fatalf("err = %v, want role rejection", err)
	}

	// Two parties consume the two halves of the same stream.
	const n = 500
	var z []block.Block
	var serr error
	done := make(chan struct{})
	go func() {
		z, serr = sess.SenderCOTs(n)
		close(done)
	}()
	bits, y, err := attached.ReceiverCOTs(n)
	<-done
	if serr != nil {
		t.Fatal(serr)
	}
	if err != nil {
		t.Fatal(err)
	}
	verify(t, delta, z, bits, y)
}

func TestDrawChunking(t *testing.T) {
	// A draw above MaxDraw must transparently split. Shrink the sizes
	// by driving the request loop with small chunks instead: draw in a
	// few uneven calls crossing many Extend batches.
	addr, _ := startServer(t, Config{})
	c := dial(t, addr)
	sess, err := c.NewSession(SessionConfig{Params: "small", Depth: 3})
	if err != nil {
		t.Fatal(err)
	}
	delta, _ := sess.Delta()
	// 5 batches' worth in one call (batch = 432 for the small set).
	n := 5 * sess.Batch()
	z, err := sess.SenderCOTs(n)
	if err != nil {
		t.Fatal(err)
	}
	bits, y, err := sess.ReceiverCOTs(n)
	if err != nil {
		t.Fatal(err)
	}
	verify(t, delta, z, bits, y)
}

func TestSessionLimit(t *testing.T) {
	addr, _ := startServer(t, Config{MaxSessions: 2})
	c := dial(t, addr)
	for i := 0; i < 2; i++ {
		if _, err := c.NewSession(SessionConfig{Params: "small"}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.NewSession(SessionConfig{Params: "small"}); err == nil ||
		!strings.Contains(err.Error(), "session limit") {
		t.Fatalf("err = %v, want session limit", err)
	}
}

func TestDrawRequiresAttachment(t *testing.T) {
	addr, _ := startServer(t, Config{})
	creator := dial(t, addr)
	sess, err := creator.NewSession(SessionConfig{Params: "small"})
	if err != nil {
		t.Fatal(err)
	}
	stranger := dial(t, addr)
	forged := &Session{c: stranger, id: sess.ID(), batch: sess.Batch()}
	if _, err := forged.SenderCOTs(10); err == nil ||
		!strings.Contains(err.Error(), "not attached") {
		t.Fatalf("err = %v, want attachment error", err)
	}
	// A guessed session id without a token gets nothing.
	if _, err := stranger.Attach(sess.ID(), "deadbeef"); err == nil {
		t.Fatal("attach without the right token must fail")
	}
}

func TestDuplicateHandlesCountReferences(t *testing.T) {
	// Two handles on one conn (create + attach) must hold two
	// references: closing one may not tear the session from the other.
	addr, _ := startServer(t, Config{})
	c := dial(t, addr)
	s1, err := c.NewSession(SessionConfig{Params: "small"})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.Attach(s1.ID(), s1.ReceiverToken())
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s2.ReceiverCOTs(50); err != nil {
		t.Fatalf("second handle lost the session: %v", err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	dump, err := c.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if dump.Sessions != 0 {
		t.Fatalf("session survived both closes: %+v", dump)
	}
}

func TestBadHandshakes(t *testing.T) {
	addr, _ := startServer(t, Config{})
	c := dial(t, addr)
	if _, err := c.NewSession(SessionConfig{Params: "nope"}); err == nil {
		t.Fatal("unknown params must fail")
	}
	if _, err := c.Attach(9999, "deadbeef"); err == nil {
		t.Fatal("attach to missing session must fail")
	}
	// Wrong protocol version.
	if err := c.roundTripJSON(wire.OpHello, wire.HelloReq{V: 99, Params: "small"}, &wire.HelloResp{}); err == nil ||
		!strings.Contains(err.Error(), "version") {
		t.Fatalf("err = %v, want version error", err)
	}
}

func TestStatsAndTeardown(t *testing.T) {
	// Short lease + fast sweep: a dropped client's session is reclaimed
	// quickly instead of riding out the default 15 s orphan window.
	addr, _ := startServer(t, Config{Lease: 50 * time.Millisecond, Sweep: 10 * time.Millisecond})
	watcher := dial(t, addr)

	c := dial(t, addr)
	sess, err := c.NewSession(SessionConfig{Params: "small", Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.SenderCOTs(100); err != nil {
		t.Fatal(err)
	}

	st, err := sess.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Sender.Dispensed != 100 || st.Refs != 1 || st.Params != "small" {
		t.Fatalf("session stats: %+v", st)
	}
	if st.Sender.Generated < 100 || st.Sender.Refills == 0 {
		t.Fatalf("prefetch not visible in stats: %+v", st)
	}

	dump, err := watcher.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if dump.Sessions != 1 || dump.SessionsOpened != 1 || len(dump.PerSession) != 1 {
		t.Fatalf("server stats: %+v", dump)
	}
	// Per-session stats require an attachment on the querying conn.
	if _, err := watcher.roundTrip(wire.SessionReq(wire.OpStats, sess.ID())); err == nil ||
		!strings.Contains(err.Error(), "not attached") {
		t.Fatalf("err = %v, want attachment requirement", err)
	}

	// Dropping the only client orphans the session; the janitor tears
	// it down once the lease runs out.
	c.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		dump, err = watcher.ServerStats()
		if err != nil {
			t.Fatal(err)
		}
		if dump.Sessions == 0 && dump.SessionsClosed == 1 && dump.SessionsExpired == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("session not torn down: %+v", dump)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestExplicitClose(t *testing.T) {
	addr, _ := startServer(t, Config{})
	c := dial(t, addr)
	sess, err := c.NewSession(SessionConfig{Params: "small"})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.SenderCOTs(1); err == nil {
		t.Fatal("draw after close must fail")
	}
	dump, err := c.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if dump.Sessions != 0 {
		t.Fatalf("session survived close: %+v", dump)
	}
}

func TestSharedClientConcurrentSessions(t *testing.T) {
	// One connection multiplexing several sessions from several
	// goroutines: requests serialize but must not corrupt.
	addr, _ := startServer(t, Config{})
	c := dial(t, addr)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess, err := c.NewSession(SessionConfig{Params: "small"})
			if err != nil {
				t.Error(err)
				return
			}
			delta, _ := sess.Delta()
			z, err := sess.SenderCOTs(321)
			if err != nil {
				t.Error(err)
				return
			}
			bits, y, err := sess.ReceiverCOTs(321)
			if err != nil {
				t.Error(err)
				return
			}
			verify(t, delta, z, bits, y)
		}()
	}
	wg.Wait()
}

// TestBackendNegotiation: HELLO negotiates the extension backend, the
// session handle and STATS report it, and draws verify on every
// advertised backend.
func TestBackendNegotiation(t *testing.T) {
	addr, _ := startServer(t, Config{})
	c := dial(t, addr)
	dump, err := c.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	want := extension.Names()
	if len(dump.Backends) != len(want) {
		t.Fatalf("advertised backends %v, want %v", dump.Backends, want)
	}
	for i, name := range want {
		if dump.Backends[i] != name {
			t.Fatalf("advertised backends %v, want %v", dump.Backends, want)
		}
	}
	for _, name := range want {
		sess, err := c.NewSession(SessionConfig{Params: "small", Backend: name})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sess.Backend() != name {
			t.Fatalf("session backend = %q, want %q", sess.Backend(), name)
		}
		delta, _ := sess.Delta()
		z, err := sess.SenderCOTs(100)
		if err != nil {
			t.Fatal(err)
		}
		bits, y, err := sess.ReceiverCOTs(100)
		if err != nil {
			t.Fatal(err)
		}
		verify(t, delta, z, bits, y)
		st, err := sess.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st.Backend != name {
			t.Fatalf("session stats backend = %q, want %q", st.Backend, name)
		}
		attached, err := c.Attach(sess.ID(), sess.ReceiverToken())
		if err != nil {
			t.Fatal(err)
		}
		if attached.Backend() != name {
			t.Fatalf("attached backend = %q, want %q", attached.Backend(), name)
		}
	}
	// An empty request gets the default backend.
	sess, err := c.NewSession(SessionConfig{Params: "small"})
	if err != nil {
		t.Fatal(err)
	}
	if sess.Backend() != extension.Default {
		t.Fatalf("default backend = %q, want %q", sess.Backend(), extension.Default)
	}
}

// TestBackendRejection: an unsupported backend fails the handshake with
// the typed sentinel on the client, and the server refuses before any
// session state (visible as zero sessions opened) exists.
func TestBackendRejection(t *testing.T) {
	addr, _ := startServer(t, Config{Backends: []string{"ferret"}})
	c := dial(t, addr)
	if _, err := c.NewSession(SessionConfig{Params: "small", Backend: "softspoken"}); !errors.Is(err, ErrBackendUnsupported) {
		t.Fatalf("err = %v, want ErrBackendUnsupported", err)
	}
	if _, err := c.NewSession(SessionConfig{Params: "small", Backend: "iknp-classic"}); !errors.Is(err, ErrBackendUnsupported) {
		t.Fatalf("err = %v, want ErrBackendUnsupported", err)
	}
	dump, err := c.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if dump.SessionsOpened != 0 || dump.Sessions != 0 {
		t.Fatalf("rejected HELLOs left session state: %+v", dump)
	}
	if len(dump.Backends) != 1 || dump.Backends[0] != "ferret" {
		t.Fatalf("advertised backends %v, want [ferret]", dump.Backends)
	}
	// The allowlisted backend still works.
	if _, err := c.NewSession(SessionConfig{Params: "small", Backend: "ferret"}); err != nil {
		t.Fatal(err)
	}
}

// TestHelloVersioning: future versions AND the retired legacy v1
// bare-JSON HELLO are refused with the typed sentinel, and a rejected
// handshake leaves zero session state behind.
func TestHelloVersioning(t *testing.T) {
	addr, _ := startServer(t, Config{})
	c := dial(t, addr)

	// A v3 client (version byte the server does not speak).
	body, err := json.Marshal(wire.HelloReq{V: 3, Params: "small"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.roundTrip(append([]byte{wire.OpHello, 3}, body...)); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("err = %v, want ErrVersionMismatch", err)
	}
	// A frame/body version disagreement.
	if _, err := c.roundTrip(append([]byte{wire.OpHello, ProtoVersion}, body...)); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("err = %v, want ErrVersionMismatch", err)
	}
	// An empty HELLO body.
	if _, err := c.roundTrip([]byte{wire.OpHello}); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("err = %v, want ErrVersionMismatch", err)
	}
	// Legacy v1 (bare JSON body, no version byte): the one-release
	// compatibility window is over; it must be refused, not served.
	legacy, err := json.Marshal(wire.HelloReq{V: 1, Params: "small"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.roundTrip(append([]byte{wire.OpHello}, legacy...)); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("legacy v1 HELLO: err = %v, want ErrVersionMismatch", err)
	}
	dump, err := c.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if dump.SessionsOpened != 0 || dump.Sessions != 0 {
		t.Fatalf("rejected HELLOs left session state: %+v", dump)
	}
}

// TestRemoteDrawersAreSources: the remote drawer adapters satisfy the
// pool source contracts end to end — stats round-trip through the
// server and Close releases the session.
func TestRemoteDrawersAreSources(t *testing.T) {
	addr, _ := startServer(t, Config{})
	c := dial(t, addr)
	sess, err := c.NewSession(SessionConfig{Params: "small"})
	if err != nil {
		t.Fatal(err)
	}
	var src pool.SenderSource = sess.Sender()
	if _, err := src.COTs(80); err != nil {
		t.Fatal(err)
	}
	var rsrc pool.ReceiverSource = sess.Receiver()
	if _, _, err := rsrc.COTs(80); err != nil {
		t.Fatal(err)
	}
	if st := src.Stats(); st.Dispensed != 80 || st.Generated < 80 {
		t.Fatalf("sender source stats: %+v", st)
	}
	if st := rsrc.Stats(); st.Dispensed != 80 {
		t.Fatalf("receiver source stats: %+v", st)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	dump, err := c.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if dump.Sessions != 0 {
		t.Fatalf("source Close did not release the session: %+v", dump)
	}
}
