package otserv

import (
	"crypto/rand"
	"crypto/subtle"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"

	"ironman/internal/block"
	"ironman/internal/extension"
	"ironman/internal/ferret"
	"ironman/internal/obs"
	"ironman/internal/parallel"
	"ironman/internal/pool"
	"ironman/internal/transport"
)

// Config tunes the dispenser server. The zero value is usable: Table 4
// parameter lookup, "2^20" default set, depth-2 prefetch, 64 sessions.
type Config struct {
	// Resolve maps a handshake params name to a parameter set; nil
	// selects ferret.ParamsByName (Table 4).
	Resolve func(name string) (ferret.Params, error)
	// DefaultParams is used when a HELLO names no set. Default "2^20".
	DefaultParams string
	// Depth is the per-session prefetch depth (batches) when a HELLO
	// requests none. Default 2.
	Depth int
	// MaxDepth caps client-requested prefetch depths. Default 8.
	MaxDepth int
	// MaxSessions bounds concurrently open sessions. Default 64.
	MaxSessions int
	// Backends is the extension-backend allowlist this server serves
	// (advertised in StatsDump.Backends; HELLOs naming anything else
	// are rejected with statusErrBackend before any session state is
	// created). nil serves every registered backend (extension.Names).
	Backends []string
	// Workers is the per-session Extend worker cap (the multicore
	// pipeline knob, see ferret.Options.Workers) applied when a HELLO
	// requests none, and the clamp for HELLOs that request more. 0
	// selects runtime.GOMAXPROCS — refills of a single busy session
	// then use the whole host, which is the right default for a
	// dispenser whose sessions are usually drained one at a time.
	Workers int
	// Registry receives the server's metrics: session lifecycle
	// counters plus one ironman_pool_* instrument set per session half,
	// labeled {session, half, params}. nil — the default — makes the
	// server create its own (Registry() exposes it either way; the
	// STATS protocol and the admin endpoint are registry-backed).
	Registry *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Resolve == nil {
		c.Resolve = ferret.ParamsByName
	}
	if c.DefaultParams == "" {
		c.DefaultParams = "2^20"
	}
	if c.Depth <= 0 {
		c.Depth = 2
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 8
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if len(c.Backends) == 0 {
		c.Backends = extension.Names()
	} else {
		c.Backends = append([]string(nil), c.Backends...)
		sort.Strings(c.Backends)
	}
	return c
}

// backend resolves a HELLO's backend request against the server's
// allowlist. Failures wrap ErrBackendUnsupported and happen before any
// session state exists.
func (c Config) backend(name string) (extension.Backend, error) {
	if name == "" {
		name = extension.Default
	}
	for _, allowed := range c.Backends {
		if name == allowed {
			b, err := extension.ByName(name)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBackendUnsupported, err)
			}
			return b, nil
		}
	}
	return nil, fmt.Errorf("%w: %q (this server serves: %s)",
		ErrBackendUnsupported, name, strings.Join(c.Backends, " "))
}

// session is one dealt correlation stream and its prefetching pool.
type session struct {
	id         uint64
	paramsName string
	backend    string // negotiated extension backend
	batch      int
	delta      block.Block
	tokenS     string // attach capability for the sender half
	tokenR     string // attach capability for the receiver half
	pool       *pool.Dealt
	connA      transport.Conn // in-process pipe endpoints backing the
	connB      transport.Conn // session's ferret pair
	refs       int            // attachments across all client conns
	// obsS/obsR mirror the pool halves into the server registry; the
	// STATS protocol serves from these (pool.Stats agrees by the
	// Observer contract). labels is the shared per-session label set,
	// the teardown Drop predicate's match key.
	obsS, obsR *pool.Observer
	labels     string
}

// attachment is one conn's view of a session: which halves it may
// draw and how many references (HELLO/ATTACH minus CLOSE) it holds.
type attachment struct {
	sess     *session
	sender   bool
	receiver bool
	count    int
}

// Server is the multi-session OT dispenser.
type Server struct {
	cfg Config
	reg *obs.Registry

	// Lifecycle metrics (registry-backed; mirror the mu-held counters).
	mSessions *obs.Gauge   // ironman_otserv_sessions
	mOpened   *obs.Counter // ironman_otserv_sessions_opened_total
	mClosed   *obs.Counter // ironman_otserv_sessions_closed_total

	mu       sync.Mutex
	ln       net.Listener
	conns    map[transport.Conn]struct{}
	sessions map[uint64]*session
	nextID   uint64
	opened   uint64
	torn     uint64
	closed   bool
	wg       sync.WaitGroup
}

// NewServer builds a dispenser with the given config.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Server{
		cfg:       cfg,
		reg:       reg,
		mSessions: reg.Gauge("ironman_otserv_sessions"),
		mOpened:   reg.Counter("ironman_otserv_sessions_opened_total"),
		mClosed:   reg.Counter("ironman_otserv_sessions_closed_total"),
		conns:     make(map[transport.Conn]struct{}),
		sessions:  make(map[uint64]*session),
	}
}

// Registry exposes the server's metrics registry (scraped by the admin
// endpoint's /metrics; callers may add their own series).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Serve accepts dispenser clients on ln until the listener fails or
// the server is closed. It blocks; run it on its own goroutine when
// the caller needs to keep working.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("otserv: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		conn := transport.NewTCP(nc)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handleConn(conn)
	}
}

// Close shuts the server down: stops accepting, disconnects clients,
// and tears down every session.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	// Conn teardown derefs the sessions each conn held; any session
	// that somehow kept references (there are none after wg.Wait, but
	// be defensive) is torn down here.
	s.mu.Lock()
	rest := make([]*session, 0, len(s.sessions))
	for id, sess := range s.sessions {
		delete(s.sessions, id)
		rest = append(rest, sess)
	}
	s.mu.Unlock()
	for _, sess := range rest {
		s.teardown(sess)
	}
	return nil
}

// handleConn serves one client connection: a sequential request loop.
// Draws run outside the server lock, so a slow draw on one conn never
// stalls other clients.
func (s *Server) handleConn(conn transport.Conn) {
	defer s.wg.Done()
	owned := make(map[uint64]*attachment)
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		ids := make([]uint64, 0, len(owned))
		for id := range owned {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			for i := 0; i < owned[id].count; i++ {
				s.deref(id)
			}
		}
	}()
	for {
		msg, err := conn.Recv()
		if err != nil {
			return
		}
		if err := conn.Send(s.dispatch(msg, owned)); err != nil {
			return
		}
	}
}

func respOK(body []byte) []byte { return append([]byte{statusOK}, body...) }

// respErr picks the response status from the error's type so clients
// can rebuild the typed sentinel with errors.Is.
func respErr(err error) []byte {
	status := statusErr
	switch {
	case errors.Is(err, ErrVersionMismatch):
		status = statusErrVersion
	case errors.Is(err, ErrBackendUnsupported):
		status = statusErrBackend
	}
	return append([]byte{status}, err.Error()...)
}
func respJSON(v any) []byte {
	body, err := json.Marshal(v)
	if err != nil {
		return respErr(err)
	}
	return respOK(body)
}

func (s *Server) dispatch(msg []byte, owned map[uint64]*attachment) []byte {
	if len(msg) < 1 {
		return respErr(errors.New("otserv: empty request"))
	}
	op, body := msg[0], msg[1:]
	switch op {
	case opHello:
		return s.handleHello(body, owned)
	case opAttach:
		return s.handleAttach(body, owned)
	case opDrawS, opDrawR:
		return s.handleDraw(op, body, owned)
	case opStats:
		return s.handleStats(body, owned)
	case opClose:
		id, err := parseSession(body)
		if err != nil {
			return respErr(err)
		}
		at, ok := owned[id]
		if !ok {
			return respErr(fmt.Errorf("otserv: session %d not attached on this conn", id))
		}
		at.count--
		if at.count <= 0 {
			delete(owned, id)
		}
		s.deref(id)
		return respOK(nil)
	default:
		return respErr(fmt.Errorf("otserv: unknown op 0x%02x", op))
	}
}

// newToken samples an attach capability (128-bit, hex).
func newToken() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return hex.EncodeToString(b[:]), nil
}

func (s *Server) handleHello(body []byte, owned map[uint64]*attachment) []byte {
	req, err := parseHello(body)
	if err != nil {
		return respErr(err)
	}
	// Backend negotiation happens before params resolution and session
	// construction: an unsupported backend must be refused while zero
	// session state (and zero draw traffic) exists.
	backend, err := s.cfg.backend(req.Backend)
	if err != nil {
		return respErr(err)
	}
	name := req.Params
	if name == "" {
		name = s.cfg.DefaultParams
	}
	params, err := s.cfg.Resolve(name)
	if err != nil {
		return respErr(err)
	}
	depth := req.Depth
	if depth <= 0 {
		depth = s.cfg.Depth
	}
	if depth > s.cfg.MaxDepth {
		depth = s.cfg.MaxDepth
	}
	sess, err := s.openSession(name, params, backend, req, depth)
	if err != nil {
		return respErr(err)
	}
	owned[sess.id] = &attachment{sess: sess, sender: true, receiver: true, count: 1}
	return respJSON(helloResp{
		Session:       sess.id,
		Params:        name,
		Backend:       sess.backend,
		Batch:         sess.batch,
		DeltaLo:       sess.delta.Lo,
		DeltaHi:       sess.delta.Hi,
		SenderToken:   sess.tokenS,
		ReceiverToken: sess.tokenR,
	})
}

// sessionWorkers resolves a HELLO's Extend worker request against the
// server cap: 0 inherits the cap, larger requests clamp to it.
func (s *Server) sessionWorkers(requested int) int {
	cap := parallel.Workers(s.cfg.Workers)
	if requested <= 0 || requested > cap {
		return cap
	}
	return requested
}

// openSession builds the in-process dealt extension pair and its pool
// on the negotiated backend.
func (s *Server) openSession(name string, params ferret.Params, backend extension.Backend, req helloReq, depth int) (*session, error) {
	var deltaBytes [block.Size]byte
	if _, err := rand.Read(deltaBytes[:]); err != nil {
		return nil, err
	}
	delta := block.FromBytes(deltaBytes[:])
	tokenS, err := newToken()
	if err != nil {
		return nil, err
	}
	tokenR, err := newToken()
	if err != nil {
		return nil, err
	}

	eo := extension.Options{
		Workers:   s.sessionWorkers(req.Workers),
		BinaryAES: req.BinaryAES,
	}
	connA, connB := transport.Pipe()
	es, er, err := backend.DealPair(connA, connB, delta, params, eo)
	if err != nil {
		_ = connA.Close()
		_ = connB.Close()
		return nil, err
	}
	src := func() ([]block.Block, []bool, []block.Block, error) {
		return extension.ExtendLockstep(es, er)
	}

	sess := &session{
		paramsName: name,
		backend:    backend.Name(),
		batch:      backend.Batch(params),
		delta:      delta,
		tokenS:     tokenS,
		tokenR:     tokenR,
		connA:      connA,
		connB:      connB,
		refs:       1,
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = connA.Close()
		_ = connB.Close()
		return nil, errors.New("otserv: server closed")
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		s.mu.Unlock()
		_ = connA.Close()
		_ = connB.Close()
		return nil, fmt.Errorf("otserv: session limit %d reached", s.cfg.MaxSessions)
	}
	s.nextID++
	sess.id = s.nextID
	sess.labels = obs.Labels("session", fmt.Sprint(sess.id))
	sess.obsS = pool.NewObserver(s.reg, obs.Labels(
		"session", fmt.Sprint(sess.id), "half", "sender", "params", name))
	sess.obsR = pool.NewObserver(s.reg, obs.Labels(
		"session", fmt.Sprint(sess.id), "half", "receiver", "params", name))
	// Start prefetching only once the session is registered.
	sess.pool = pool.NewDealt(src, pool.Config{
		Depth: depth, LowWater: req.LowWater,
		Obs: sess.obsS, ObsReceiver: sess.obsR,
	})
	s.sessions[sess.id] = sess
	s.opened++
	s.mSessions.Set(int64(len(s.sessions)))
	s.mOpened.Inc()
	s.mu.Unlock()
	return sess, nil
}

func (s *Server) handleAttach(body []byte, owned map[uint64]*attachment) []byte {
	var req attachReq
	if err := json.Unmarshal(body, &req); err != nil {
		return respErr(fmt.Errorf("otserv: bad ATTACH: %w", err))
	}
	s.mu.Lock()
	sess, ok := s.sessions[req.Session]
	var role Role
	if ok {
		// The token is the capability: it selects the half this
		// attachment may draw, and without one of the session's two
		// tokens there is no access at all. Constant-time compare
		// keeps the 128-bit secrets unguessable in practice.
		switch {
		case subtle.ConstantTimeCompare([]byte(req.Token), []byte(sess.tokenS)) == 1:
			role = RoleSender
		case subtle.ConstantTimeCompare([]byte(req.Token), []byte(sess.tokenR)) == 1:
			role = RoleReceiver
		default:
			ok = false
		}
	}
	if ok {
		sess.refs++
	}
	s.mu.Unlock()
	if !ok {
		// One error for a missing session and a bad token alike, so
		// probing cannot distinguish the two.
		return respErr(fmt.Errorf("otserv: no session %d for that token", req.Session))
	}
	at := owned[req.Session]
	if at == nil {
		at = &attachment{sess: sess}
		owned[req.Session] = at
	}
	at.count++
	at.sender = at.sender || role == RoleSender
	at.receiver = at.receiver || role == RoleReceiver
	return respJSON(attachResp{Params: sess.paramsName, Backend: sess.backend, Batch: sess.batch, Role: role})
}

func (s *Server) handleDraw(op byte, body []byte, owned map[uint64]*attachment) []byte {
	id, n, err := parseSessionN(body)
	if err != nil {
		return respErr(err)
	}
	at, ok := owned[id]
	if !ok {
		return respErr(fmt.Errorf("otserv: session %d not attached on this conn", id))
	}
	if n < 0 || n > MaxDraw {
		return respErr(fmt.Errorf("otserv: draw of %d outside [0, %d]", n, MaxDraw))
	}
	if op == opDrawS {
		if !at.sender {
			return respErr(fmt.Errorf("otserv: attachment to session %d has no sender role", id))
		}
		z, err := at.sess.pool.SenderCOTs(n)
		if err != nil {
			return respErr(err)
		}
		return respOK(block.ToBytes(z))
	}
	if !at.receiver {
		return respErr(fmt.Errorf("otserv: attachment to session %d has no receiver role", id))
	}
	bits, blocks, err := at.sess.pool.ReceiverCOTs(n)
	if err != nil {
		return respErr(err)
	}
	return respOK(drawRResp(bits, blocks))
}

func halfStats(st pool.Stats) HalfStats {
	return HalfStats{
		Generated:    st.Generated,
		Dispensed:    st.Dispensed,
		Refills:      st.Refills,
		Draws:        st.Draws,
		BlockedDraws: st.BlockedDraws,
		BlockedNS:    st.BlockedTime.Nanoseconds(),
		Buffered:     st.Buffered,
	}
}

// stats serves the session's counters from the registry-backed
// observers (NOT pool.Stats() — the Observer contract keeps the two
// views identical once draws quiesce, and serving from the registry
// guarantees STATS and the admin /metrics page can never disagree).
func (sess *session) stats(refs int) SessionStats {
	return SessionStats{
		ID:       sess.id,
		Params:   sess.paramsName,
		Backend:  sess.backend,
		Refs:     refs,
		Sender:   halfStats(sess.obsS.Snapshot()),
		Receiver: halfStats(sess.obsR.Snapshot()),
	}
}

// handleStats serves counters. Per-session stats require an
// attachment on this conn, so an unprivileged peer cannot probe
// individual session liveness; the server-wide dump is deliberately
// public operator telemetry (ids and counters are not capabilities —
// attach tokens are).
func (s *Server) handleStats(body []byte, owned map[uint64]*attachment) []byte {
	id, err := parseSession(body)
	if err != nil {
		return respErr(err)
	}
	if id != 0 {
		at, ok := owned[id]
		if !ok {
			return respErr(fmt.Errorf("otserv: session %d not attached on this conn", id))
		}
		s.mu.Lock()
		refs := at.sess.refs
		s.mu.Unlock()
		return respJSON(at.sess.stats(refs))
	}
	return respJSON(s.statsDump())
}

// statsDump assembles the server-wide STATS view (also served as JSON
// by the admin endpoint's /sessions route).
func (s *Server) statsDump() StatsDump {
	s.mu.Lock()
	dump := StatsDump{
		Sessions:       len(s.sessions),
		SessionsOpened: s.opened,
		SessionsClosed: s.torn,
		MaxSessions:    s.cfg.MaxSessions,
		Backends:       s.cfg.Backends,
	}
	type entry struct {
		sess *session
		refs int
	}
	entries := make([]entry, 0, len(s.sessions))
	for _, sess := range s.sessions {
		entries = append(entries, entry{sess, sess.refs})
	}
	s.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].sess.id < entries[j].sess.id })
	for _, e := range entries {
		dump.PerSession = append(dump.PerSession, e.sess.stats(e.refs))
	}
	return dump
}

// deref drops one reference to a session, tearing it down at zero.
func (s *Server) deref(id uint64) {
	s.mu.Lock()
	sess, ok := s.sessions[id]
	if !ok {
		s.mu.Unlock()
		return
	}
	sess.refs--
	if sess.refs > 0 {
		s.mu.Unlock()
		return
	}
	delete(s.sessions, id)
	s.torn++
	s.mSessions.Set(int64(len(s.sessions)))
	s.mClosed.Inc()
	s.mu.Unlock()
	s.teardown(sess)
}

// teardown stops a session's prefetch worker, closes its pipes, and
// retires the session's metric series so registry cardinality stays
// bounded by live sessions, not lifetime session count.
// pool.Close completes the in-flight lockstep iteration first (the
// worker drives both pipe endpoints, so it cannot wedge).
func (s *Server) teardown(sess *session) {
	_ = sess.pool.Close()
	_ = sess.connA.Close()
	_ = sess.connB.Close()
	key := "{" + sess.labels + ","
	s.reg.Drop(func(name string) bool { return strings.Contains(name, key) })
}
