// Package otserv is the OT dispenser's transport layer: it frames the
// wire protocol (package wire) over transport.Conn connections and
// delegates everything stateful — sessions, leases, quotas, pools — to
// the session layer (package session). The split is load-bearing for
// fleet mode: a shard is exactly this server around a shard-scoped
// session.Registry, and the router (package router) proxies the same
// wire protocol across many shards without understanding sessions at
// all.
package otserv

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"ironman/internal/block"
	"ironman/internal/obs"
	"ironman/internal/otserv/session"
	"ironman/internal/otserv/wire"
	"ironman/internal/transport"
)

// Config tunes the dispenser; it is the session layer's Config (the
// transport layer adds no knobs of its own).
type Config = session.Config

// Aliases for the wire protocol's client-visible types, so dispenser
// consumers import only otserv.
type (
	// Role names which half an attachment may draw.
	Role = wire.Role
	// HalfStats is one pool half's counters as served by STATS.
	HalfStats = wire.HalfStats
	// SessionStats is one session's STATS view.
	SessionStats = wire.SessionStats
	// StatsDump is the shard-wide STATS view.
	StatsDump = wire.StatsDump
)

const (
	// RoleSender may draw r0 blocks.
	RoleSender = wire.RoleSender
	// RoleReceiver may draw choice bits and r_b blocks.
	RoleReceiver = wire.RoleReceiver
	// RoleBoth is the session creator's view.
	RoleBoth = wire.RoleBoth
	// MaxDraw is the per-request draw cap (clients chunk above it).
	MaxDraw = wire.MaxDraw
	// ProtoVersion is the wire protocol version.
	ProtoVersion = wire.ProtoVersion
)

// Typed failures clients can match with errors.Is.
var (
	ErrVersionMismatch    = wire.ErrVersionMismatch
	ErrBackendUnsupported = wire.ErrBackendUnsupported
	ErrQuotaExceeded      = wire.ErrQuotaExceeded
	ErrLeaseExpired       = wire.ErrLeaseExpired
	ErrPoolDry            = wire.ErrPoolDry
	ErrDraining           = wire.ErrDraining
)

// attachment is one conn's view of a session: which halves it may
// draw and how many references (HELLO/ATTACH minus CLOSE) it holds.
type attachment struct {
	sess     *session.Session
	sender   bool
	receiver bool
	count    int
}

// Server is the dispenser's transport layer: one accept loop, one
// request loop per connection, all state in the session registry.
type Server struct {
	sessions *session.Registry
	reg      *obs.Registry

	mu     sync.Mutex
	ln     net.Listener
	conns  map[transport.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer builds a dispenser (one fleet shard, or the whole daemon
// in standalone mode) with the given config.
func NewServer(cfg Config) *Server {
	reg := session.NewRegistry(cfg)
	return &Server{
		sessions: reg,
		reg:      reg.Obs(),
		conns:    make(map[transport.Conn]struct{}),
	}
}

// Registry exposes the server's metrics registry (scraped by the admin
// endpoint's /metrics; callers may add their own series).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Sessions exposes the session layer (tests and embedders drive leases
// and drain directly; the wire protocol covers everything clients need).
func (s *Server) Sessions() *session.Registry { return s.sessions }

// Drain flips the server into lame-duck mode: HELLOs are refused with
// ErrDraining while existing sessions keep serving to CLOSE or lease
// expiry. The router takes a draining shard out of placement and
// re-HELLOs elsewhere.
func (s *Server) Drain() { s.sessions.Drain() }

// Serve accepts dispenser clients on ln until the listener fails or
// the server is closed. It blocks; run it on its own goroutine when
// the caller needs to keep working.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("otserv: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		conn := transport.NewTCP(nc)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handleConn(conn)
	}
}

// Close shuts the server down immediately: stops accepting,
// disconnects clients, and tears down every session (no lease grace).
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.sessions.Close()
		return nil
	}
	s.closed = true
	ln := s.ln
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	s.wg.Wait()
	// Registry close tears down every remaining session in id order
	// (conn teardown orphans rather than closes, so "remaining" is
	// usually all of them).
	s.sessions.Close()
	return nil
}

// Shutdown drains the server for a clean exit (the SIGTERM path):
// stop accepting, refuse new sessions, give in-flight connections up
// to timeout to finish their request loops, then disconnect whoever
// remains and tear down every session in id order. The session
// registry retires all metric series as part of teardown, so the obs
// registry is left holding only process-lifetime counters.
func (s *Server) Shutdown(timeout time.Duration) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.sessions.Close()
		return nil
	}
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	s.sessions.Drain()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-done:
	case <-timer.C:
		s.mu.Lock()
		for conn := range s.conns {
			_ = conn.Close()
		}
		s.mu.Unlock()
		<-done
	}
	s.sessions.Close()
	return nil
}

// handleConn serves one client connection: a sequential request loop.
// Draws run outside the server lock, so a slow draw on one conn never
// stalls other clients. A dying connection orphans its sessions (the
// lease clock starts) instead of closing them — reconnect-with-token
// resumes them; only an explicit CLOSE (or lease expiry) tears down.
func (s *Server) handleConn(conn transport.Conn) {
	defer s.wg.Done()
	owned := make(map[uint64]*attachment)
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		ids := make([]uint64, 0, len(owned))
		for id := range owned {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			for i := 0; i < owned[id].count; i++ {
				s.sessions.Detach(id, true)
			}
		}
	}()
	for {
		msg, err := conn.Recv()
		if err != nil {
			return
		}
		if err := conn.Send(s.dispatch(msg, owned)); err != nil {
			return
		}
	}
}

func respJSON(v any) []byte {
	body, err := json.Marshal(v)
	if err != nil {
		return wire.ErrResponse(err)
	}
	return wire.OKResponse(body)
}

func (s *Server) dispatch(msg []byte, owned map[uint64]*attachment) []byte {
	if len(msg) < 1 {
		return wire.ErrResponse(errors.New("otserv: empty request"))
	}
	op, body := msg[0], msg[1:]
	switch op {
	case wire.OpHello:
		return s.handleHello(body, owned)
	case wire.OpAttach:
		return s.handleAttach(body, owned)
	case wire.OpDrawS, wire.OpDrawR:
		return s.handleDraw(op, body, owned)
	case wire.OpStats:
		return s.handleStats(body, owned)
	case wire.OpClose:
		id, err := wire.ParseSession(body)
		if err != nil {
			return wire.ErrResponse(err)
		}
		at, ok := owned[id]
		if !ok {
			return wire.ErrResponse(fmt.Errorf("otserv: session %d not attached on this conn", id))
		}
		at.count--
		if at.count <= 0 {
			delete(owned, id)
		}
		s.sessions.Detach(id, false)
		return wire.OKResponse(nil)
	default:
		return wire.ErrResponse(fmt.Errorf("otserv: unknown op 0x%02x", op))
	}
}

func (s *Server) handleHello(body []byte, owned map[uint64]*attachment) []byte {
	req, err := wire.ParseHello(body)
	if err != nil {
		return wire.ErrResponse(err)
	}
	sess, err := s.sessions.Open(session.OpenRequest{
		Params:    req.Params,
		Backend:   req.Backend,
		BinaryAES: req.BinaryAES,
		Depth:     req.Depth,
		LowWater:  req.LowWater,
		Workers:   req.Workers,
		Tenant:    req.Tenant,
		Lease:     time.Duration(req.LeaseMS) * time.Millisecond,
		Token:     req.SessionToken,
	})
	if err != nil {
		return wire.ErrResponse(err)
	}
	owned[sess.ID()] = &attachment{sess: sess, sender: true, receiver: true, count: 1}
	delta := sess.Delta()
	return respJSON(wire.HelloResp{
		Session:       sess.ID(),
		Shard:         wire.ShardOf(sess.ID()),
		Params:        sess.Params(),
		Backend:       sess.Backend(),
		Batch:         sess.Batch(),
		DeltaLo:       delta.Lo,
		DeltaHi:       delta.Hi,
		SessionToken:  sess.Token(),
		LeaseMS:       sess.Lease().Milliseconds(),
		SenderToken:   sess.SenderToken(),
		ReceiverToken: sess.ReceiverToken(),
	})
}

func (s *Server) handleAttach(body []byte, owned map[uint64]*attachment) []byte {
	var req wire.AttachReq
	if err := json.Unmarshal(body, &req); err != nil {
		return wire.ErrResponse(fmt.Errorf("otserv: bad ATTACH: %w", err))
	}
	var (
		sess *session.Session
		role wire.Role
		err  error
	)
	if req.SessionToken != "" {
		// The reconnect path: the routing token names the session
		// fleet-wide, so a client that lost its conn (and maybe its
		// numeric id) can resume inside the lease window.
		sess, role, err = s.sessions.AttachByToken(req.SessionToken, req.Token)
	} else {
		sess, role, err = s.sessions.AttachByID(req.Session, req.Token)
	}
	if err != nil {
		return wire.ErrResponse(err)
	}
	at := owned[sess.ID()]
	if at == nil {
		at = &attachment{sess: sess}
		owned[sess.ID()] = at
	}
	at.count++
	at.sender = at.sender || role == wire.RoleSender
	at.receiver = at.receiver || role == wire.RoleReceiver
	return respJSON(wire.AttachResp{
		Session: sess.ID(),
		Shard:   wire.ShardOf(sess.ID()),
		Params:  sess.Params(),
		Backend: sess.Backend(),
		Batch:   sess.Batch(),
		Role:    role,
		LeaseMS: sess.Lease().Milliseconds(),
	})
}

func (s *Server) handleDraw(op byte, body []byte, owned map[uint64]*attachment) []byte {
	id, n, err := wire.ParseSessionN(body)
	if err != nil {
		return wire.ErrResponse(err)
	}
	at, ok := owned[id]
	if !ok {
		return wire.ErrResponse(fmt.Errorf("otserv: session %d not attached on this conn", id))
	}
	if n < 0 || n > wire.MaxDraw {
		return wire.ErrResponse(fmt.Errorf("otserv: draw of %d outside [0, %d]", n, wire.MaxDraw))
	}
	if op == wire.OpDrawS {
		if !at.sender {
			return wire.ErrResponse(fmt.Errorf("otserv: attachment to session %d has no sender role", id))
		}
		z, err := at.sess.DrawSender(n)
		if err != nil {
			return wire.ErrResponse(err)
		}
		return wire.OKResponse(block.ToBytes(z))
	}
	if !at.receiver {
		return wire.ErrResponse(fmt.Errorf("otserv: attachment to session %d has no receiver role", id))
	}
	bits, blocks, err := at.sess.DrawReceiver(n)
	if err != nil {
		return wire.ErrResponse(err)
	}
	return wire.OKResponse(wire.DrawRResp(bits, blocks))
}

// handleStats serves counters. Per-session stats require an
// attachment on this conn, so an unprivileged peer cannot probe
// individual session liveness; the server-wide dump is deliberately
// public operator telemetry (ids and counters are not capabilities —
// attach tokens are).
func (s *Server) handleStats(body []byte, owned map[uint64]*attachment) []byte {
	id, err := wire.ParseSession(body)
	if err != nil {
		return wire.ErrResponse(err)
	}
	if id != 0 {
		if _, ok := owned[id]; !ok {
			return wire.ErrResponse(fmt.Errorf("otserv: session %d not attached on this conn", id))
		}
		st, err := s.sessions.Stats(id)
		if err != nil {
			return wire.ErrResponse(err)
		}
		return respJSON(st)
	}
	return respJSON(s.sessions.Dump())
}
