package wire

import (
	"encoding/json"
	"errors"
	"testing"

	"ironman/internal/block"
)

func TestParseHelloRoundTrip(t *testing.T) {
	req := HelloReq{
		V: ProtoVersion, Params: "2^20", Backend: "ferret",
		Tenant: "acme", LeaseMS: 1500, SessionToken: "aabbcc",
		Depth: 3, Workers: 2,
	}
	body, err := HelloBody(req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseHello(body)
	if err != nil {
		t.Fatal(err)
	}
	if got != req {
		t.Fatalf("round trip: got %+v, want %+v", got, req)
	}
}

// TestParseHelloRejectsLegacyV1: the bare-JSON v1 framing's one-release
// compatibility window is over — it must now fail with the typed
// version sentinel, not open a session.
func TestParseHelloRejectsLegacyV1(t *testing.T) {
	legacy, err := json.Marshal(HelloReq{V: 1, Params: "small"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseHello(legacy); !errors.Is(err, ErrVersionMismatch) {
		t.Fatalf("legacy v1 HELLO: err = %v, want ErrVersionMismatch", err)
	}
}

func TestParseHelloVersionRejections(t *testing.T) {
	body, err := json.Marshal(HelloReq{V: 3, Params: "small"})
	if err != nil {
		t.Fatal(err)
	}
	for name, frame := range map[string][]byte{
		"future version byte":   append([]byte{3}, body...),
		"frame/body mismatch":   append([]byte{ProtoVersion}, body...),
		"empty body":            {},
		"unversioned zero byte": {0},
	} {
		if _, err := ParseHello(frame); !errors.Is(err, ErrVersionMismatch) {
			t.Errorf("%s: err = %v, want ErrVersionMismatch", name, err)
		}
	}
}

// TestStatusErrorMapping: every typed sentinel survives the
// status-byte round trip (server StatusOf -> client FromStatus) as an
// errors.Is match, and unknown errors stay free-form.
func TestStatusErrorMapping(t *testing.T) {
	for _, sentinel := range []error{
		ErrVersionMismatch, ErrBackendUnsupported, ErrQuotaExceeded,
		ErrLeaseExpired, ErrPoolDry, ErrDraining,
	} {
		status := StatusOf(sentinel)
		if status == StatusErr || status == StatusOK {
			t.Fatalf("%v mapped to untyped status %d", sentinel, status)
		}
		back := FromStatus(status, "details")
		if !errors.Is(back, sentinel) {
			t.Fatalf("FromStatus(%d) = %v, want wrap of %v", status, back, sentinel)
		}
	}
	if got := StatusOf(errors.New("whatever")); got != StatusErr {
		t.Fatalf("untyped error mapped to status %d", got)
	}
	if err := FromStatus(StatusErr, "boom"); err == nil {
		t.Fatal("StatusErr must still be an error")
	}
}

func TestErrResponseStatusByte(t *testing.T) {
	resp := ErrResponse(ErrQuotaExceeded)
	if resp[0] != StatusErrQuota {
		t.Fatalf("status byte = %d, want %d", resp[0], StatusErrQuota)
	}
	resp = OKResponse([]byte("x"))
	if resp[0] != StatusOK || string(resp[1:]) != "x" {
		t.Fatalf("OK response mis-framed: %v", resp)
	}
}

func TestShardScopedIDs(t *testing.T) {
	for _, tc := range []struct{ shard, seq uint64 }{
		{0, 1}, {1, 1}, {3, 1 << 20}, {MaxShardID, 42},
	} {
		id := SessionID(tc.shard, tc.seq)
		if ShardOf(id) != tc.shard {
			t.Fatalf("ShardOf(SessionID(%d, %d)) = %d", tc.shard, tc.seq, ShardOf(id))
		}
		if id&(1<<ShardShift-1) != tc.seq {
			t.Fatalf("seq bits of SessionID(%d, %d) = %d", tc.shard, tc.seq, id&(1<<ShardShift-1))
		}
	}
}

func TestDrawFraming(t *testing.T) {
	req := DrawReq(OpDrawS, SessionID(2, 7), 4096)
	if req[0] != OpDrawS {
		t.Fatalf("op byte = %d", req[0])
	}
	id, n, err := ParseSessionN(req[1:])
	if err != nil || id != SessionID(2, 7) || n != 4096 {
		t.Fatalf("ParseSessionN = (%d, %d, %v)", id, n, err)
	}
	if _, _, err := ParseSessionN(req); err == nil {
		t.Fatal("13-byte body must fail")
	}
	sreq := SessionReq(OpClose, 9)
	id, err = ParseSession(sreq[1:])
	if err != nil || id != 9 {
		t.Fatalf("ParseSession = (%d, %v)", id, err)
	}
}

func TestDrawRRespRoundTrip(t *testing.T) {
	bits := []bool{true, false, true, true, false}
	blocks := []block.Block{{Lo: 1, Hi: 2}, {Lo: 3, Hi: 4}, {Lo: 5, Hi: 6}, {Lo: 7, Hi: 8}, {Lo: 9, Hi: 10}}
	body := DrawRResp(bits, blocks)
	gb, gz, err := ParseDrawRResp(body, len(bits))
	if err != nil {
		t.Fatal(err)
	}
	for i := range bits {
		if gb[i] != bits[i] || gz[i] != blocks[i] {
			t.Fatalf("index %d: (%v, %v) != (%v, %v)", i, gb[i], gz[i], bits[i], blocks[i])
		}
	}
	if _, _, err := ParseDrawRResp(body[:len(body)-1], len(bits)); err == nil {
		t.Fatal("truncated body must fail")
	}
}
