// Package wire is the OT-dispenser protocol contract: the framing of
// the HELLO/ATTACH/DRAW/STATS/CLOSE request/response cycle, the typed
// errors a dispenser may answer with, and the shard-scoped session-id
// arithmetic the fleet router relies on. It holds no session state and
// opens no connections — internal/otserv/session owns state,
// internal/otserv carries frames between the two, and
// internal/otserv/router forwards frames it only partially parses.
//
// Wire protocol (one framed transport message per request/response):
//
//	request  = op:1 body
//	response = status:1 body        status 0 = ok, body per op
//	                                status 1 = error string
//	                                status 2 = version mismatch
//	                                status 3 = backend unsupported
//	                                status 4 = tenant quota exceeded
//	                                status 5 = session lease expired/lost
//	                                status 6 = pool dry (generation behind)
//	                                status 7 = draining (no new sessions)
//
//	HELLO  op=1 body=ver:1 JSON HelloReq -> JSON HelloResp (Δ + tokens)
//	ATTACH op=2 body=JSON AttachReq  -> JSON AttachResp (role, no Δ)
//	DRAW_S op=3 session:8 n:4        -> n*16 bytes of r0 blocks
//	DRAW_R op=4 session:8 n:4        -> ceil(n/8) choice-bit bytes
//	                                    followed by n*16 r_b blocks
//	STATS  op=5 session:8 (0=server) -> JSON StatsDump / SessionStats
//	CLOSE  op=6 session:8            -> empty (drops one attachment)
//
// The HELLO body leads with one protocol-version byte (ProtoVersion,
// currently 2) so version negotiation happens before the server parses
// anything else. The legacy v1 bare-JSON HELLO body (no version byte)
// was accepted for one release window after v2 landed; that window is
// over and v1 HELLOs are now rejected with ErrVersionMismatch.
//
// Session identity is two-level. The numeric session id names a
// session on one shard, and its top bits carry the shard id
// (ShardOf/SessionID), so a fleet router can route a DRAW from the id
// alone. The session token — a fleet-unique random string minted at
// HELLO (by the router in fleet mode, by the shard standalone) — names
// the session across the fleet: it is the router's consistent-hash key
// and the handle a disconnected client re-ATTACHes with. The session
// token routes; only the two capability tokens (sender/receiver)
// authorize.
//
// All integers are little-endian.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"

	"ironman/internal/block"
	"ironman/internal/transport"
)

// ProtoVersion is bumped on incompatible wire changes. Version 2 added
// the HELLO leading version byte and backend negotiation; the fleet
// fields (tenant, lease, session token) are additive within v2.
const ProtoVersion = 2

// Request opcodes.
const (
	OpHello  byte = 0x01
	OpAttach byte = 0x02
	OpDrawS  byte = 0x03
	OpDrawR  byte = 0x04
	OpStats  byte = 0x05
	OpClose  byte = 0x06
)

// Response status bytes. Every non-OK status except StatusErr maps to
// one typed sentinel error so both sides can match with errors.Is;
// StatusOf and FromStatus are the two directions of that mapping.
const (
	StatusOK byte = 0
	// StatusErr carries a free-form error string.
	StatusErr byte = 1
	// StatusErrVersion rejects a HELLO whose protocol version the
	// server does not speak.
	StatusErrVersion byte = 2
	// StatusErrBackend rejects a HELLO naming an extension backend the
	// server does not serve. Sent before any session state exists.
	StatusErrBackend byte = 3
	// StatusErrQuota sheds a request the tenant's draw quota cannot
	// admit within its bounded wait.
	StatusErrQuota byte = 4
	// StatusErrLease rejects an operation on a session whose lease
	// expired (or whose shard is gone, in fleet mode).
	StatusErrLease byte = 5
	// StatusErrDry sheds a draw the session's pool cannot satisfy
	// within its bounded wait — generation is behind demand.
	StatusErrDry byte = 6
	// StatusErrDraining rejects a HELLO on a draining server: existing
	// leases are served to expiry, new sessions go elsewhere.
	StatusErrDraining byte = 7
)

// ErrVersionMismatch is the typed rejection for a HELLO whose protocol
// version the peer does not speak; match with errors.Is on both the
// server's handshake path and the client's NewSession error.
var ErrVersionMismatch = errors.New("otserv: protocol version mismatch")

// ErrBackendUnsupported is the typed rejection for a HELLO naming an
// extension backend the server does not serve. The server refuses
// before creating any session state, so no draw traffic ever flows for
// a misnegotiated backend; match with errors.Is.
var ErrBackendUnsupported = errors.New("otserv: backend unsupported")

// ErrQuotaExceeded is the typed shed for a request the tenant's draw
// quota cannot admit: the token bucket is empty and the bounded wait
// queue is full (or the wait would exceed its cap). The request did
// not consume correlations; retry with backoff.
var ErrQuotaExceeded = errors.New("otserv: tenant quota exceeded")

// ErrLeaseExpired is the typed rejection for operations on a session
// whose lease ran out — a disconnected client that stayed away past
// the lease window, or (through the router) a session whose shard
// died. The session's pool position is gone; open a fresh session.
var ErrLeaseExpired = errors.New("otserv: session lease expired")

// ErrPoolDry is the typed shed for a draw the session pool cannot
// satisfy within its bounded wait: correlation generation is behind
// demand. Nothing was consumed; retry with backoff or draw less.
var ErrPoolDry = errors.New("otserv: pool dry")

// ErrDraining is the typed rejection for a HELLO on a draining server:
// it serves existing leases to expiry but accepts no new sessions.
var ErrDraining = errors.New("otserv: server draining")

// statusErrs orders the typed sentinels by their status byte; index 0
// and 1 (OK, free-form) have no sentinel.
var statusErrs = []error{
	StatusErrVersion:  ErrVersionMismatch,
	StatusErrBackend:  ErrBackendUnsupported,
	StatusErrQuota:    ErrQuotaExceeded,
	StatusErrLease:    ErrLeaseExpired,
	StatusErrDry:      ErrPoolDry,
	StatusErrDraining: ErrDraining,
}

// StatusOf picks the response status byte for err, so clients can
// rebuild the typed sentinel with errors.Is. Unrecognized errors map
// to the free-form StatusErr.
func StatusOf(err error) byte {
	for status := StatusErrVersion; int(status) < len(statusErrs); status++ {
		if errors.Is(err, statusErrs[status]) {
			return status
		}
	}
	return StatusErr
}

// FromStatus rebuilds the client-side error for a non-OK response:
// typed statuses wrap their sentinel around the server's message.
func FromStatus(status byte, msg string) error {
	if int(status) < len(statusErrs) && statusErrs[status] != nil {
		return fmt.Errorf("%w (server: %s)", statusErrs[status], msg)
	}
	return fmt.Errorf("otserv: server: %s", msg)
}

// ErrResponse frames an error response: the status byte chosen by
// StatusOf followed by the error text.
func ErrResponse(err error) []byte {
	return append([]byte{StatusOf(err)}, err.Error()...)
}

// OKResponse frames a success response around body.
func OKResponse(body []byte) []byte { return append([]byte{StatusOK}, body...) }

// ShardShift positions the shard id in a session id's top bits: a
// session id is SessionID(shard, seq) and any fleet component can
// recover the owning shard from the id alone with ShardOf. Shard 0 is
// the standalone (unsharded) dispenser.
const ShardShift = 40

// MaxShardID is the largest shard id the session-id layout can carry.
const MaxShardID = (1 << (64 - ShardShift)) - 1

// SessionID composes a shard-scoped session id.
func SessionID(shard, seq uint64) uint64 { return shard<<ShardShift | seq&(1<<ShardShift-1) }

// ShardOf extracts the shard id a session id belongs to.
func ShardOf(id uint64) uint64 { return id >> ShardShift }

// MaxDraw caps a single DRAW request so the response stays well under
// transport.MaxMessage (2^21 blocks = 32 MiB + choice bits).
const MaxDraw = 1 << 21

// HelloReq is the JSON body of a HELLO (after the version byte).
type HelloReq struct {
	V      int    `json:"v"`
	Params string `json:"params,omitempty"` // "" selects the server default
	// Backend names the extension backend the session should run on
	// ("" = the server's default, extension.Default). The server
	// advertises what it serves in StatsDump.Backends and rejects
	// unsupported names with StatusErrBackend before opening anything.
	Backend   string `json:"backend,omitempty"`
	BinaryAES bool   `json:"binary_aes,omitempty"`
	Depth     int    `json:"depth,omitempty"` // prefetch batches; 0 = server default
	LowWater  int    `json:"low_water,omitempty"`
	// Workers is the session's Extend worker-goroutine cap; 0 selects
	// the server default. Requests are clamped to the server's cap so
	// one greedy session cannot oversubscribe the host.
	Workers int `json:"workers,omitempty"`
	// Tenant names the accounting principal the session draws under;
	// "" is the anonymous default tenant. Quotas and the per-tenant
	// metric series key off it.
	Tenant string `json:"tenant,omitempty"`
	// LeaseMS requests how long the session survives with no attached
	// client (milliseconds); 0 selects the server default, larger
	// requests clamp to the server cap.
	LeaseMS int64 `json:"lease_ms,omitempty"`
	// SessionToken pins the session's fleet-wide routing token. The
	// router injects it after consistent-hash placement; direct
	// clients leave it empty and the shard mints one.
	SessionToken string `json:"session_token,omitempty"`
}

// HelloResp describes the opened session.
type HelloResp struct {
	Session uint64 `json:"session"`
	Shard   uint64 `json:"shard"`
	Params  string `json:"params"`
	Backend string `json:"backend"` // negotiated extension backend
	Batch   int    `json:"batch"`   // correlations per Extend batch
	DeltaLo uint64 `json:"delta_lo"`
	DeltaHi uint64 `json:"delta_hi"`
	// SessionToken is the fleet-wide routing handle: hash key for the
	// router, re-ATTACH handle for a disconnected client. It routes
	// but does not authorize.
	SessionToken string `json:"session_token"`
	LeaseMS      int64  `json:"lease_ms"`
	// Attach tokens: capability secrets the creator hands to the
	// consumer of each half.
	SenderToken   string `json:"sender_token"`
	ReceiverToken string `json:"receiver_token"`
}

// AttachReq joins an existing session. Exactly one of Session (the
// shard-scoped numeric id) or SessionToken (the fleet-wide routing
// token — the reconnect path) names the session; Token is the
// capability that authorizes a half.
type AttachReq struct {
	Session      uint64 `json:"session,omitempty"`
	SessionToken string `json:"session_token,omitempty"`
	Token        string `json:"token"`
}

// Role names which half a connection's attachment may draw.
type Role string

const (
	// RoleSender may draw r0 blocks (DRAW_S).
	RoleSender Role = "sender"
	// RoleReceiver may draw choice bits and r_b blocks (DRAW_R).
	RoleReceiver Role = "receiver"
	// RoleBoth is the session creator's view (it knows Δ anyway).
	RoleBoth Role = "both"
)

// AttachResp echoes the session an ATTACH landed on. Session carries
// the numeric id so token-routed reconnects learn where their draws go.
type AttachResp struct {
	Session uint64 `json:"session"`
	Shard   uint64 `json:"shard"`
	Params  string `json:"params"`
	Backend string `json:"backend"`
	Batch   int    `json:"batch"`
	Role    Role   `json:"role"`
	LeaseMS int64  `json:"lease_ms"`
}

// HalfStats is one pool half's counters as served by STATS.
type HalfStats struct {
	Generated    uint64 `json:"generated"`
	Dispensed    uint64 `json:"dispensed"`
	Refills      uint64 `json:"refills"`
	Draws        uint64 `json:"draws"`
	BlockedDraws uint64 `json:"blocked_draws"`
	BlockedNS    int64  `json:"blocked_ns"`
	Buffered     int    `json:"buffered"`
}

// SessionStats is one session's STATS view.
type SessionStats struct {
	ID      uint64 `json:"id"`
	Shard   uint64 `json:"shard"`
	Params  string `json:"params"`
	Backend string `json:"backend"`
	Tenant  string `json:"tenant,omitempty"`
	Refs    int    `json:"refs"`
	// Orphaned is true while no client holds the session and the lease
	// clock is running; ExpiresInMS is the remaining window then.
	Orphaned    bool      `json:"orphaned,omitempty"`
	ExpiresInMS int64     `json:"expires_in_ms,omitempty"`
	Sender      HalfStats `json:"sender"`
	Receiver    HalfStats `json:"receiver"`
}

// StatsDump is the server-wide STATS view. In fleet mode the router
// merges one per shard into a fleet-wide dump.
type StatsDump struct {
	Shard          uint64 `json:"shard"`
	Sessions       int    `json:"sessions"`
	SessionsOpened uint64 `json:"sessions_opened"`
	SessionsClosed uint64 `json:"sessions_closed"`
	// SessionsExpired counts teardowns by lease expiry (a subset of
	// SessionsClosed).
	SessionsExpired uint64 `json:"sessions_expired"`
	// QuotaSheds / DrySheds count typed rejections served.
	QuotaSheds  uint64 `json:"quota_sheds"`
	DrySheds    uint64 `json:"dry_sheds"`
	MaxSessions int    `json:"max_sessions"`
	Draining    bool   `json:"draining,omitempty"`
	// Backends is the server's advertised extension-backend allowlist.
	Backends   []string       `json:"backends"`
	PerSession []SessionStats `json:"per_session,omitempty"`
}

// HelloBody frames a HELLO request body: the protocol version byte
// followed by the JSON HelloReq.
func HelloBody(req HelloReq) ([]byte, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	return append([]byte{ProtoVersion}, body...), nil
}

// ParseHello decodes a HELLO body: the version byte, then the JSON
// request. Anything else — including the legacy v1 bare-JSON framing,
// whose one-release compatibility window is over — is an
// ErrVersionMismatch-wrapping rejection.
func ParseHello(body []byte) (HelloReq, error) {
	var req HelloReq
	if len(body) == 0 {
		return req, fmt.Errorf("%w: empty HELLO body", ErrVersionMismatch)
	}
	if body[0] == '{' {
		// Legacy v1 framing: bare JSON, no version byte. The compat
		// window closed; name the failure precisely.
		return req, fmt.Errorf("%w: legacy v1 bare-JSON HELLO no longer accepted, server speaks v%d", ErrVersionMismatch, ProtoVersion)
	}
	if body[0] != ProtoVersion {
		return req, fmt.Errorf("%w: client speaks v%d, server speaks v%d", ErrVersionMismatch, body[0], ProtoVersion)
	}
	if err := json.Unmarshal(body[1:], &req); err != nil {
		return req, fmt.Errorf("otserv: bad HELLO: %w", err)
	}
	if req.V != ProtoVersion {
		return req, fmt.Errorf("%w: frame says v%d, body says v%d", ErrVersionMismatch, ProtoVersion, req.V)
	}
	return req, nil
}

// DrawReq encodes a DRAW_S/DRAW_R request.
func DrawReq(op byte, session uint64, n int) []byte {
	req := make([]byte, 13)
	req[0] = op
	binary.LittleEndian.PutUint64(req[1:], session)
	binary.LittleEndian.PutUint32(req[9:], uint32(n))
	return req
}

// ParseSessionN decodes the fixed body of a DRAW request.
func ParseSessionN(body []byte) (uint64, int, error) {
	if len(body) != 12 {
		return 0, 0, fmt.Errorf("otserv: draw request body is %d bytes, want 12", len(body))
	}
	session := binary.LittleEndian.Uint64(body)
	n := int(binary.LittleEndian.Uint32(body[8:]))
	return session, n, nil
}

// SessionReq encodes a STATS/CLOSE request.
func SessionReq(op byte, session uint64) []byte {
	req := make([]byte, 9)
	req[0] = op
	binary.LittleEndian.PutUint64(req[1:], session)
	return req
}

// ParseSession decodes a STATS/CLOSE body.
func ParseSession(body []byte) (uint64, error) {
	if len(body) != 8 {
		return 0, fmt.Errorf("otserv: request body is %d bytes, want 8", len(body))
	}
	return binary.LittleEndian.Uint64(body), nil
}

// DrawRResp lays out a DRAW_R payload: packed choice bits (the
// transport.PackBits layout) then blocks.
func DrawRResp(bits []bool, blocks []block.Block) []byte {
	bb := transport.PackBits(bits)
	out := make([]byte, 0, len(bb)+len(blocks)*block.Size)
	out = append(out, bb...)
	return append(out, block.ToBytes(blocks)...)
}

// ParseDrawRResp splits a DRAW_R payload back into bits and blocks.
func ParseDrawRResp(body []byte, n int) ([]bool, []block.Block, error) {
	bitBytes := (n + 7) / 8
	if len(body) != bitBytes+n*block.Size {
		return nil, nil, fmt.Errorf("otserv: DRAW_R response is %d bytes, want %d", len(body), bitBytes+n*block.Size)
	}
	return transport.UnpackBits(body[:bitBytes], n), block.SliceFromBytes(body[bitBytes:]), nil
}
