// Package otserv is a multi-session OT-dispenser service: a daemon
// that generates correlated OTs ahead of demand (internal/pool) and
// dispenses them to many concurrent client sessions over the
// length-prefixed TCP framing of internal/transport.
//
// Each session is an independent dealt Ferret pair under a fresh
// per-session Δ, run in-process on the server; clients draw the
// sender half (r0 blocks) and/or the receiver half (choice bits, r_b
// blocks) of the same correlation stream. The creating client learns
// Δ plus two attach tokens in the handshake and holds both roles.
// Other clients join with ATTACH, presenting one of the tokens; the
// token determines which half the connection may draw and Δ is not
// disclosed, so a deployment can hand the two halves to two
// different consumers by distributing one token to each (whoever
// holds both tokens of a session can reconstruct Δ from the two
// halves). The dealer itself still knows every secret it dealt — see
// DESIGN.md for why this is a trusted-dealer architecture, not a
// drop-in replacement for running the two-party protocol end to end.
//
// Wire protocol (one framed transport message per request/response):
//
//	request  = op:1 body
//	response = status:1 body        status 0 = ok, body per op
//	                                status 1 = error string
//	                                status 2 = version mismatch (string)
//	                                status 3 = backend unsupported (string)
//
//	HELLO  op=1 body=ver:1 JSON helloReq -> JSON helloResp (Δ + tokens)
//	ATTACH op=2 body=JSON attachReq  -> JSON attachResp (role, no Δ)
//	DRAW_S op=3 session:8 n:4        -> n*16 bytes of r0 blocks
//	DRAW_R op=4 session:8 n:4        -> ceil(n/8) choice-bit bytes
//	                                    followed by n*16 r_b blocks
//	STATS  op=5 session:8 (0=server) -> JSON StatsDump / SessionStats
//	CLOSE  op=6 session:8            -> empty (drops one attachment)
//
// The HELLO body leads with one protocol-version byte (ProtoVersion,
// currently 2) so version negotiation happens before the server parses
// anything else; version 2 of the handshake also negotiates the
// session's extension backend (helloReq.Backend, echoed in every
// response that describes the session). Legacy v1 clients sent a bare
// JSON body — the server still accepts it for one release, keyed on
// the first byte being '{' (0x7b, which no version byte will ever be),
// and gives such sessions the default backend.
//
// All integers are little-endian.
package otserv

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"

	"ironman/internal/block"
	"ironman/internal/transport"
)

// ProtoVersion is bumped on incompatible wire changes. Version 2 added
// the HELLO leading version byte and backend negotiation.
const ProtoVersion = 2

const (
	opHello  byte = 0x01
	opAttach byte = 0x02
	opDrawS  byte = 0x03
	opDrawR  byte = 0x04
	opStats  byte = 0x05
	opClose  byte = 0x06
)

const (
	statusOK byte = 0
	// statusErr carries a free-form error string.
	statusErr byte = 1
	// statusErrVersion rejects a HELLO whose protocol version the
	// server does not speak; clients surface it as ErrVersionMismatch.
	statusErrVersion byte = 2
	// statusErrBackend rejects a HELLO naming an extension backend the
	// server does not serve; clients surface it as
	// ErrBackendUnsupported. Sent before any session state exists.
	statusErrBackend byte = 3
)

// ErrVersionMismatch is the typed rejection for a HELLO whose protocol
// version the peer does not speak; match with errors.Is on both the
// server's handshake path and the client's NewSession error.
var ErrVersionMismatch = errors.New("otserv: protocol version mismatch")

// ErrBackendUnsupported is the typed rejection for a HELLO naming an
// extension backend the server does not serve. The server refuses
// before creating any session state, so no draw traffic ever flows for
// a misnegotiated backend; match with errors.Is.
var ErrBackendUnsupported = errors.New("otserv: backend unsupported")

// MaxDraw caps a single DRAW request so the response stays well under
// transport.MaxMessage (2^21 blocks = 32 MiB + choice bits).
const MaxDraw = 1 << 21

type helloReq struct {
	V      int    `json:"v"`
	Params string `json:"params,omitempty"` // "" selects the server default
	// Backend names the extension backend the session should run on
	// ("" = the server's default, extension.Default). The server
	// advertises what it serves in StatsDump.Backends and rejects
	// unsupported names with statusErrBackend before opening anything.
	Backend   string `json:"backend,omitempty"`
	BinaryAES bool   `json:"binary_aes,omitempty"`
	Depth     int    `json:"depth,omitempty"` // prefetch batches; 0 = server default
	LowWater  int    `json:"low_water,omitempty"`
	// Workers is the session's Extend worker-goroutine cap; 0 selects
	// the server default (Config.Workers). Requests are clamped to the
	// server's cap so one greedy session cannot oversubscribe the host.
	Workers int `json:"workers,omitempty"`
}

type helloResp struct {
	Session uint64 `json:"session"`
	Params  string `json:"params"`
	Backend string `json:"backend"` // negotiated extension backend
	Batch   int    `json:"batch"`   // correlations per Extend batch
	DeltaLo uint64 `json:"delta_lo"`
	DeltaHi uint64 `json:"delta_hi"`
	// Attach tokens: capability secrets the creator hands to the
	// consumer of each half.
	SenderToken   string `json:"sender_token"`
	ReceiverToken string `json:"receiver_token"`
}

type attachReq struct {
	Session uint64 `json:"session"`
	Token   string `json:"token"`
}

// Role names which half a connection's attachment may draw.
type Role string

const (
	// RoleSender may draw r0 blocks (DRAW_S).
	RoleSender Role = "sender"
	// RoleReceiver may draw choice bits and r_b blocks (DRAW_R).
	RoleReceiver Role = "receiver"
	// RoleBoth is the session creator's view (it knows Δ anyway).
	RoleBoth Role = "both"
)

type attachResp struct {
	Params  string `json:"params"`
	Backend string `json:"backend"`
	Batch   int    `json:"batch"`
	Role    Role   `json:"role"`
}

// HalfStats is one pool half's counters as served by STATS.
type HalfStats struct {
	Generated    uint64 `json:"generated"`
	Dispensed    uint64 `json:"dispensed"`
	Refills      uint64 `json:"refills"`
	Draws        uint64 `json:"draws"`
	BlockedDraws uint64 `json:"blocked_draws"`
	BlockedNS    int64  `json:"blocked_ns"`
	Buffered     int    `json:"buffered"`
}

// SessionStats is one session's STATS view.
type SessionStats struct {
	ID       uint64    `json:"id"`
	Params   string    `json:"params"`
	Backend  string    `json:"backend"`
	Refs     int       `json:"refs"`
	Sender   HalfStats `json:"sender"`
	Receiver HalfStats `json:"receiver"`
}

// StatsDump is the server-wide STATS view.
type StatsDump struct {
	Sessions       int    `json:"sessions"`
	SessionsOpened uint64 `json:"sessions_opened"`
	SessionsClosed uint64 `json:"sessions_closed"`
	MaxSessions    int    `json:"max_sessions"`
	// Backends is the server's advertised extension-backend allowlist.
	Backends   []string       `json:"backends"`
	PerSession []SessionStats `json:"per_session,omitempty"`
}

// helloBody frames a v2 HELLO request body: the protocol version byte
// followed by the JSON helloReq.
func helloBody(req helloReq) ([]byte, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	return append([]byte{ProtoVersion}, body...), nil
}

// parseHello decodes a HELLO body of either framing generation: v2
// leads with the version byte, legacy v1 was a bare JSON object (first
// byte '{', which no version byte can collide with). Anything else is
// an ErrVersionMismatch-wrapping rejection.
func parseHello(body []byte) (helloReq, error) {
	var req helloReq
	if len(body) == 0 {
		return req, fmt.Errorf("%w: empty HELLO body", ErrVersionMismatch)
	}
	switch {
	case body[0] == ProtoVersion:
		if err := json.Unmarshal(body[1:], &req); err != nil {
			return req, fmt.Errorf("otserv: bad HELLO: %w", err)
		}
		if req.V != ProtoVersion {
			return req, fmt.Errorf("%w: frame says v%d, body says v%d", ErrVersionMismatch, ProtoVersion, req.V)
		}
		return req, nil
	case body[0] == '{':
		// Legacy v1 compatibility window: bare JSON, no version byte,
		// no backend field. Removed one release after v2.
		if err := json.Unmarshal(body, &req); err != nil {
			return req, fmt.Errorf("otserv: bad HELLO: %w", err)
		}
		if req.V != 1 {
			return req, fmt.Errorf("%w: client speaks v%d, server speaks v%d", ErrVersionMismatch, req.V, ProtoVersion)
		}
		return req, nil
	default:
		return req, fmt.Errorf("%w: client speaks v%d, server speaks v%d", ErrVersionMismatch, body[0], ProtoVersion)
	}
}

// drawReq encodes a DRAW_S/DRAW_R request.
func drawReq(op byte, session uint64, n int) []byte {
	req := make([]byte, 13)
	req[0] = op
	binary.LittleEndian.PutUint64(req[1:], session)
	binary.LittleEndian.PutUint32(req[9:], uint32(n))
	return req
}

// parseSessionN decodes the fixed body of a DRAW request.
func parseSessionN(body []byte) (uint64, int, error) {
	if len(body) != 12 {
		return 0, 0, fmt.Errorf("otserv: draw request body is %d bytes, want 12", len(body))
	}
	session := binary.LittleEndian.Uint64(body)
	n := int(binary.LittleEndian.Uint32(body[8:]))
	return session, n, nil
}

// sessionReq encodes a STATS/CLOSE request.
func sessionReq(op byte, session uint64) []byte {
	req := make([]byte, 9)
	req[0] = op
	binary.LittleEndian.PutUint64(req[1:], session)
	return req
}

func parseSession(body []byte) (uint64, error) {
	if len(body) != 8 {
		return 0, fmt.Errorf("otserv: request body is %d bytes, want 8", len(body))
	}
	return binary.LittleEndian.Uint64(body), nil
}

// drawRResp lays out a DRAW_R payload: packed choice bits (the
// transport.PackBits layout) then blocks.
func drawRResp(bits []bool, blocks []block.Block) []byte {
	bb := transport.PackBits(bits)
	out := make([]byte, 0, len(bb)+len(blocks)*block.Size)
	out = append(out, bb...)
	return append(out, block.ToBytes(blocks)...)
}

func parseDrawRResp(body []byte, n int) ([]bool, []block.Block, error) {
	bitBytes := (n + 7) / 8
	if len(body) != bitBytes+n*block.Size {
		return nil, nil, fmt.Errorf("otserv: DRAW_R response is %d bytes, want %d", len(body), bitBytes+n*block.Size)
	}
	return transport.UnpackBits(body[:bitBytes], n), block.SliceFromBytes(body[bitBytes:]), nil
}
