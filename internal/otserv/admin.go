package otserv

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// AdminHandler returns the operator-facing HTTP surface for a running
// dispenser server. It is intentionally separate from the binary OT
// protocol listener: the admin port carries no capabilities (attach
// tokens never transit it) and is meant for loopback or an internal
// scrape network.
//
// Routes:
//
//	/metrics       Prometheus text exposition (0.0.4) of the registry
//	/healthz       200 "ok" liveness probe; 503 "draining" in lame-duck
//	/sessions      JSON StatsDump, same shape as the STATS protocol op
//	/drain         POST: enter lame-duck mode (shard drains for removal)
//	/debug/pprof/  standard net/http/pprof profiles
func (s *Server) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := s.reg.WritePrometheus(w); err != nil {
			// Headers are gone; all we can do is drop the conn.
			return
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.sessions.Draining() {
			// Lame-duck is visible to probes (the router also learns it
			// in-band from ErrDraining HELLO rejections).
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte("draining\n"))
			return
		}
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/sessions", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.sessions.Dump())
	})
	mux.HandleFunc("/drain", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		s.Drain()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"shard":    s.sessions.ShardID(),
			"draining": true,
			"sessions": s.sessions.Len(),
		})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
