package otserv

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"ironman/internal/pool"
)

func adminGet(t *testing.T, ts *httptest.Server, path string) (int, string, string) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b strings.Builder
	if _, err := copyBody(&b, resp); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), b.String()
}

func copyBody(b *strings.Builder, resp *http.Response) (int64, error) {
	buf := make([]byte, 4096)
	var n int64
	for {
		k, err := resp.Body.Read(buf)
		b.Write(buf[:k])
		n += int64(k)
		if err != nil {
			if err.Error() == "EOF" {
				return n, nil
			}
			return n, err
		}
	}
}

// TestAdminHandler drives the HTTP admin surface against a live
// dispenser: /healthz answers, /metrics exposes server and per-session
// pool series in Prometheus text format, /sessions mirrors the STATS
// dump, and tearing the session down retires its series.
func TestAdminHandler(t *testing.T) {
	addr, srv := startServer(t, Config{})
	ts := httptest.NewServer(srv.AdminHandler())
	defer ts.Close()

	code, _, body := adminGet(t, ts, "/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz: %d %q", code, body)
	}

	c := dial(t, addr)
	sess, err := c.NewSession(SessionConfig{Params: "small", Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.SenderCOTs(100); err != nil {
		t.Fatal(err)
	}

	code, ctype, body := adminGet(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	if !strings.Contains(ctype, "version=0.0.4") {
		t.Fatalf("/metrics content type %q, want 0.0.4 exposition", ctype)
	}
	for _, want := range []string{
		"ironman_otserv_sessions 1",
		"ironman_otserv_sessions_opened_total 1",
		`ironman_pool_draws_total{session="1",half="sender",params="small"}`,
		`ironman_pool_dispensed_total{session="1",half="sender",params="small"} 100`,
		"ironman_pool_draw_wait_seconds_bucket",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, ctype, body = adminGet(t, ts, "/sessions")
	if code != http.StatusOK || !strings.Contains(ctype, "application/json") {
		t.Fatalf("/sessions: %d %q", code, ctype)
	}
	var dump StatsDump
	if err := json.Unmarshal([]byte(body), &dump); err != nil {
		t.Fatalf("/sessions JSON: %v", err)
	}
	if dump.Sessions != 1 || len(dump.PerSession) != 1 ||
		dump.PerSession[0].Sender.Dispensed != 100 {
		t.Fatalf("/sessions dump: %+v", dump)
	}

	code, _, body = adminGet(t, ts, "/debug/pprof/cmdline")
	if code != http.StatusOK || body == "" {
		t.Fatalf("/debug/pprof/cmdline: %d %q", code, body)
	}

	// Teardown must retire the session's metric series so registry
	// cardinality tracks live sessions.
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	_, _, body = adminGet(t, ts, "/metrics")
	if strings.Contains(body, `session="1"`) {
		t.Fatal("per-session series survived teardown")
	}
	if !strings.Contains(body, "ironman_otserv_sessions_closed_total 1") {
		t.Fatal("closed counter missing after teardown")
	}
}

// TestStatsDrawStormConsistency is the STATS-staleness regression
// test: after a concurrent draw storm over the wire protocol, the
// registry-served STATS totals must equal the pool's own Stats() for
// both halves — exactly, not approximately.
func TestStatsDrawStormConsistency(t *testing.T) {
	addr, srv := startServer(t, Config{})
	c := dial(t, addr)
	sess, err := c.NewSession(SessionConfig{Params: "small", Depth: 2})
	if err != nil {
		t.Fatal(err)
	}

	const (
		pairs = 6
		draws = 15
		n     = 64
	)
	var wg sync.WaitGroup
	for g := 0; g < pairs; g++ {
		wg.Add(2)
		// Each drawer gets its own protocol conn so draws truly race
		// inside the server, not in a client-side mutex.
		snd, err := dial(t, addr).Attach(sess.ID(), sess.SenderToken())
		if err != nil {
			t.Fatal(err)
		}
		rcv, err := dial(t, addr).Attach(sess.ID(), sess.ReceiverToken())
		if err != nil {
			t.Fatal(err)
		}
		go func() {
			defer wg.Done()
			for i := 0; i < draws; i++ {
				if _, err := snd.SenderCOTs(n); err != nil {
					t.Error(err)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < draws; i++ {
				if _, _, err := rcv.ReceiverCOTs(n); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	st, err := sess.Stats()
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(pairs * draws * n)
	if st.Sender.Dispensed != want || st.Receiver.Dispensed != want {
		t.Fatalf("dispensed %d/%d, want %d each", st.Sender.Dispensed, st.Receiver.Dispensed, want)
	}

	// Pull the live session out of the session layer and compare the
	// registry-backed view STATS serves against pool.Stats().
	live, ok := srv.Sessions().Get(sess.ID())
	if !ok {
		t.Fatal("session vanished")
	}
	ps, pr := live.PoolStats()
	served, err := srv.Sessions().Stats(sess.ID())
	if err != nil {
		t.Fatal(err)
	}
	if served.Sender != asHalfStats(ps) {
		t.Errorf("sender half: STATS %+v != pool %+v", served.Sender, asHalfStats(ps))
	}
	if served.Receiver != asHalfStats(pr) {
		t.Errorf("receiver half: STATS %+v != pool %+v", served.Receiver, asHalfStats(pr))
	}
}

// asHalfStats mirrors the session layer's pool.Stats -> wire.HalfStats
// conversion for the consistency check.
func asHalfStats(st pool.Stats) HalfStats {
	return HalfStats{
		Generated:    st.Generated,
		Dispensed:    st.Dispensed,
		Refills:      st.Refills,
		Draws:        st.Draws,
		BlockedDraws: st.BlockedDraws,
		BlockedNS:    st.BlockedTime.Nanoseconds(),
		Buffered:     st.Buffered,
	}
}
