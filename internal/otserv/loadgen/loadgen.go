// Package loadgen drives a dispenser fleet the way a large MPC
// deployment would: thousands of concurrent sessions spread over a
// bounded set of client connections, each drawing correlated OTs in a
// steady rhythm while the generator samples per-draw latency and
// watches the shard spread. It speaks only the public client API, so
// whatever it measures is what a real consumer gets.
package loadgen

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"ironman/internal/otserv"
	"ironman/internal/otserv/wire"
)

// Config shapes one load run.
type Config struct {
	// Addr is the fleet front (router) or a single dispenser.
	Addr string
	// Sessions is the number of concurrent sessions to sustain.
	Sessions int
	// Conns is the number of client connections the sessions share
	// (sessions serialize per connection, so this bounds parallelism
	// on the wire without burning a file descriptor per session).
	Conns int
	// DrawsPerSession is how many draws each session performs; the
	// halves alternate sender/receiver so the dealt pool drains evenly.
	DrawsPerSession int
	// DrawN is the number of correlated OTs per draw.
	DrawN int
	// Params names the parameter set for every session.
	Params string
	// Depth is the requested prefetch depth per session.
	Depth int
	// Tenants is the number of distinct tenant principals to spread
	// sessions across (0 = all anonymous).
	Tenants int
	// Lease is the per-session lease to request (0 = server default).
	Lease time.Duration
	// Timeout bounds the whole run; exceeding it fails the run with
	// ErrStalled instead of hanging (the fleet's no-deadlock bar).
	Timeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Sessions <= 0 {
		c.Sessions = 1024
	}
	if c.Conns <= 0 {
		c.Conns = 64
	}
	if c.Conns > c.Sessions {
		c.Conns = c.Sessions
	}
	if c.DrawsPerSession <= 0 {
		c.DrawsPerSession = 8
	}
	if c.DrawN <= 0 {
		c.DrawN = 128
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Minute
	}
	return c
}

// ErrStalled reports that the run exceeded its deadline — some draw or
// handshake never completed, which the fleet contract forbids.
var ErrStalled = errors.New("loadgen: run exceeded its deadline (possible deadlock)")

// Percentiles summarizes a latency distribution in microseconds.
type Percentiles struct {
	P50 int64 `json:"p50_us"`
	P95 int64 `json:"p95_us"`
	P99 int64 `json:"p99_us"`
	Max int64 `json:"max_us"`
}

// ShardLoad is the per-shard slice of the run.
type ShardLoad struct {
	Shard    uint64 `json:"shard"`
	Sessions int    `json:"sessions"`
	Draws    uint64 `json:"draws"`
}

// Report is the committed artifact of a load run.
type Report struct {
	Addr            string      `json:"addr"`
	Sessions        int         `json:"sessions"`
	Conns           int         `json:"conns"`
	DrawsPerSession int         `json:"draws_per_session"`
	DrawN           int         `json:"draw_n"`
	Params          string      `json:"params"`
	Tenants         int         `json:"tenants"`
	DurationMS      int64       `json:"duration_ms"`
	SessionsOpened  int         `json:"sessions_opened"`
	SessionsFailed  int         `json:"sessions_failed"`
	Draws           uint64      `json:"draws"`
	Blocks          uint64      `json:"blocks"`
	QuotaSheds      uint64      `json:"quota_sheds"`
	DrySheds        uint64      `json:"dry_sheds"`
	LeaseErrors     uint64      `json:"lease_errors"`
	OtherErrors     uint64      `json:"other_errors"`
	DrawLatency     Percentiles `json:"draw_latency"`
	HelloLatency    Percentiles `json:"hello_latency"`
	PerShard        []ShardLoad `json:"per_shard"`
	// BalanceMaxOverEven is the most loaded shard's session count over
	// the even share (sessions / shards); the fleet bar is <= 2.
	BalanceMaxOverEven float64 `json:"balance_max_over_even"`
	DrawsPerSec        float64 `json:"draws_per_sec"`
}

// tally accumulates worker results under one lock.
type tally struct {
	mu           sync.Mutex
	drawLat      []time.Duration
	helloLat     []time.Duration
	opened       int
	failed       int
	draws        uint64
	blocks       uint64
	quota        uint64
	dry          uint64
	lease        uint64
	other        uint64
	shardSess    map[uint64]int
	shardDraws   map[uint64]uint64
	sampleStride int
}

func (t *tally) countErr(err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch {
	case errors.Is(err, otserv.ErrQuotaExceeded):
		t.quota++
	case errors.Is(err, otserv.ErrPoolDry):
		t.dry++
	case errors.Is(err, otserv.ErrLeaseExpired):
		t.lease++
	default:
		t.other++
	}
}

// Run executes the configured load and reports. Session open failures
// are tolerated (counted and classified); a run that cannot finish
// before cfg.Timeout fails with ErrStalled.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	clients := make([]*otserv.Client, cfg.Conns)
	for i := range clients {
		c, err := otserv.Dial(cfg.Addr)
		if err != nil {
			return nil, fmt.Errorf("loadgen: dial %d: %w", i, err)
		}
		defer func() { _ = c.Close() }()
		clients[i] = c
	}

	t := &tally{
		shardSess:  make(map[uint64]int),
		shardDraws: make(map[uint64]uint64),
	}
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.Sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			runSession(cfg, clients[i%cfg.Conns], i, t)
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(cfg.Timeout):
		return nil, ErrStalled
	}
	elapsed := time.Since(start)

	rep := &Report{
		Addr:            cfg.Addr,
		Sessions:        cfg.Sessions,
		Conns:           cfg.Conns,
		DrawsPerSession: cfg.DrawsPerSession,
		DrawN:           cfg.DrawN,
		Params:          cfg.Params,
		Tenants:         cfg.Tenants,
		DurationMS:      elapsed.Milliseconds(),
		SessionsOpened:  t.opened,
		SessionsFailed:  t.failed,
		Draws:           t.draws,
		Blocks:          t.blocks,
		QuotaSheds:      t.quota,
		DrySheds:        t.dry,
		LeaseErrors:     t.lease,
		OtherErrors:     t.other,
		DrawLatency:     percentiles(t.drawLat),
		HelloLatency:    percentiles(t.helloLat),
	}
	var shards []uint64
	for id := range t.shardSess {
		shards = append(shards, id)
	}
	sort.Slice(shards, func(i, j int) bool { return shards[i] < shards[j] })
	maxSess := 0
	for _, id := range shards {
		rep.PerShard = append(rep.PerShard, ShardLoad{Shard: id, Sessions: t.shardSess[id], Draws: t.shardDraws[id]})
		if t.shardSess[id] > maxSess {
			maxSess = t.shardSess[id]
		}
	}
	if len(shards) > 0 && t.opened > 0 {
		even := float64(t.opened) / float64(len(shards))
		rep.BalanceMaxOverEven = float64(maxSess) / even
	}
	if secs := elapsed.Seconds(); secs > 0 {
		rep.DrawsPerSec = float64(t.draws) / secs
	}
	return rep, nil
}

// runSession is one session's life: open, alternate sender/receiver
// draws, close.
func runSession(cfg Config, c *otserv.Client, i int, t *tally) {
	scfg := otserv.SessionConfig{
		Params: cfg.Params,
		Depth:  cfg.Depth,
		Lease:  cfg.Lease,
	}
	if cfg.Tenants > 0 {
		scfg.Tenant = fmt.Sprintf("tenant-%02d", i%cfg.Tenants)
	}
	t0 := time.Now()
	sess, err := c.NewSession(scfg)
	helloDur := time.Since(t0)
	if err != nil {
		t.countErr(err)
		t.mu.Lock()
		t.failed++
		t.mu.Unlock()
		return
	}
	shard := wire.ShardOf(sess.ID())
	t.mu.Lock()
	t.opened++
	t.shardSess[shard]++
	t.helloLat = append(t.helloLat, helloDur)
	t.mu.Unlock()

	var localLat []time.Duration
	var localDraws, localBlocks uint64
	for d := 0; d < cfg.DrawsPerSession; d++ {
		d0 := time.Now()
		if d%2 == 0 {
			_, err = sess.SenderCOTs(cfg.DrawN)
		} else {
			_, _, err = sess.ReceiverCOTs(cfg.DrawN)
		}
		if err != nil {
			t.countErr(err)
			continue
		}
		localLat = append(localLat, time.Since(d0))
		localDraws++
		localBlocks += uint64(cfg.DrawN)
	}
	_ = sess.Close()

	t.mu.Lock()
	t.drawLat = append(t.drawLat, localLat...)
	t.draws += localDraws
	t.blocks += localBlocks
	t.shardDraws[shard] += localDraws
	t.mu.Unlock()
}

// percentiles computes exact rank percentiles over the sample set.
func percentiles(lat []time.Duration) Percentiles {
	if len(lat) == 0 {
		return Percentiles{}
	}
	sorted := append([]time.Duration{}, lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(p float64) int64 {
		i := int(p * float64(len(sorted)-1))
		return sorted[i].Microseconds()
	}
	return Percentiles{
		P50: at(0.50),
		P95: at(0.95),
		P99: at(0.99),
		Max: sorted[len(sorted)-1].Microseconds(),
	}
}
