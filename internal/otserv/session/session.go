// Package session is the backend-agnostic state layer of the OT
// dispenser: it owns every per-session fact — the fleet-wide routing
// token, the Δ-scoped prefetching pool, the lease that keeps a
// disconnected client's pool position alive, the per-half capability
// tokens and draw roles, the tenant, and the refcount — and none of
// the wire framing or connection handling. Transports (the otserv
// server, the fleet router's shards) attach and detach freely; the
// state they share lives here, shard-local, and every externally
// visible view of it (wire.SessionStats / wire.StatsDump) is a plain
// serializable value.
//
// Lifecycle: Open mints a session (refcount 1). Attach presents a
// capability token and bumps the refcount. Detach drops one reference;
// an explicit protocol CLOSE tears the session down at refcount zero,
// while a connection loss instead *orphans* it — the lease clock
// starts, and a client that re-Attaches with the session token inside
// the window resumes its draws byte-identically at the same pool
// position. The registry's janitor expires orphans whose lease ran
// out, leaving a tombstone so a late reconnect gets the typed
// wire.ErrLeaseExpired instead of a generic miss.
//
// Backpressure is two-layered and typed, never a deadlock: per-tenant
// token-bucket draw quotas admit or shed requests up front
// (wire.ErrQuotaExceeded), and admitted draws that outrun correlation
// generation shed on the pool's bounded wait (wire.ErrPoolDry).
package session

import (
	"crypto/rand"
	"crypto/subtle"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"time"

	"ironman/internal/block"
	"ironman/internal/extension"
	"ironman/internal/ferret"
	"ironman/internal/obs"
	"ironman/internal/otserv/wire"
	"ironman/internal/parallel"
	"ironman/internal/pool"
	"ironman/internal/transport"
)

// Config tunes the session registry. The zero value is usable: Table 4
// parameter lookup, "2^20" default set, depth-2 prefetch, 64 sessions,
// 15 s leases.
type Config struct {
	// Resolve maps a handshake params name to a parameter set; nil
	// selects ferret.ParamsByName (Table 4).
	Resolve func(name string) (ferret.Params, error)
	// DefaultParams is used when an open names no set. Default "2^20".
	DefaultParams string
	// Depth is the per-session prefetch depth (batches) when a session
	// requests none. Default 2.
	Depth int
	// MaxDepth caps client-requested prefetch depths. Default 8.
	MaxDepth int
	// MaxSessions bounds concurrently open sessions on this shard.
	// Default 64.
	MaxSessions int
	// Backends is the extension-backend allowlist this registry serves;
	// opens naming anything else are rejected with
	// wire.ErrBackendUnsupported before any session state is created.
	// nil serves every registered backend (extension.Names).
	Backends []string
	// Workers is the per-session Extend worker cap applied when an open
	// requests none, and the clamp for opens that request more. 0
	// selects runtime.GOMAXPROCS.
	Workers int
	// ShardID scopes this registry's session ids: ids are
	// wire.SessionID(ShardID, seq), so a fleet router can route a draw
	// from the id alone. 0 is the standalone dispenser.
	ShardID uint64
	// Lease is how long an orphaned session (refcount zero by
	// connection loss, not CLOSE) keeps its pool position before the
	// janitor expires it. Default 15 s.
	Lease time.Duration
	// MaxLease clamps client-requested leases. Default 2 m.
	MaxLease time.Duration
	// DrawWait bounds how long one draw may block on correlation
	// generation before shedding with wire.ErrPoolDry. Default 30 s;
	// negative disables the bound.
	DrawWait time.Duration
	// DrawWaiters bounds how many draws may be blocked on one session's
	// generation at once; excess sheds with wire.ErrPoolDry. Default
	// 256; negative disables the bound.
	DrawWaiters int
	// Sweep is the janitor's lease-expiry scan interval. Default 500 ms.
	Sweep time.Duration
	// Quota shapes the per-tenant admission control; the zero value is
	// unlimited.
	Quota QuotaConfig
	// Registry receives the metrics: session lifecycle counters plus
	// one ironman_pool_* instrument set per session half. nil makes the
	// registry create its own.
	Registry *obs.Registry

	// now overrides the clock in tests (in-package only).
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Resolve == nil {
		c.Resolve = ferret.ParamsByName
	}
	if c.DefaultParams == "" {
		c.DefaultParams = "2^20"
	}
	if c.Depth <= 0 {
		c.Depth = 2
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 8
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if len(c.Backends) == 0 {
		c.Backends = extension.Names()
	} else {
		c.Backends = append([]string(nil), c.Backends...)
		sort.Strings(c.Backends)
	}
	if c.Lease <= 0 {
		c.Lease = 15 * time.Second
	}
	if c.MaxLease <= 0 {
		c.MaxLease = 2 * time.Minute
	}
	switch {
	case c.DrawWait == 0:
		c.DrawWait = 30 * time.Second
	case c.DrawWait < 0:
		c.DrawWait = 0
	}
	switch {
	case c.DrawWaiters == 0:
		c.DrawWaiters = 256
	case c.DrawWaiters < 0:
		c.DrawWaiters = 0
	}
	if c.Sweep <= 0 {
		c.Sweep = 500 * time.Millisecond
	}
	if c.ShardID > wire.MaxShardID {
		c.ShardID = wire.MaxShardID
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// backend resolves an open's backend request against the allowlist.
// Failures wrap wire.ErrBackendUnsupported and happen before any
// session state exists.
func (c Config) backend(name string) (extension.Backend, error) {
	if name == "" {
		name = extension.Default
	}
	for _, allowed := range c.Backends {
		if name == allowed {
			b, err := extension.ByName(name)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", wire.ErrBackendUnsupported, err)
			}
			return b, nil
		}
	}
	return nil, fmt.Errorf("%w: %q (this server serves: %s)",
		wire.ErrBackendUnsupported, name, strings.Join(c.Backends, " "))
}

// workers resolves an open's Extend worker request against the
// registry cap: 0 inherits the cap, larger requests clamp to it.
func (c Config) workers(requested int) int {
	cap := parallel.Workers(c.Workers)
	if requested <= 0 || requested > cap {
		return cap
	}
	return requested
}

// OpenRequest shapes one session open (a transport's parsed HELLO).
type OpenRequest struct {
	Params    string
	Backend   string
	BinaryAES bool
	Depth     int
	LowWater  int
	Workers   int
	// Tenant names the accounting principal; "" is the anonymous
	// default tenant.
	Tenant string
	// Lease requests the orphan grace window (0 = registry default;
	// clamped to Config.MaxLease).
	Lease time.Duration
	// Token pins the fleet-wide routing token (the router injects the
	// consistent-hash key here); "" mints a fresh one.
	Token string
}

// Session is one dealt correlation stream and every fact about it that
// must survive a transport detach: identity, capabilities, lease,
// tenant, and the Δ-scoped prefetching pool. All mutable fields are
// guarded by the owning Registry's mutex.
type Session struct {
	id          uint64
	token       string // fleet routing token (routes, does not authorize)
	paramsName  string
	backendName string
	tenant      string
	batch       int
	lease       time.Duration
	delta       block.Block
	tokenS      string // attach capability for the sender half
	tokenR      string // attach capability for the receiver half
	pool        *pool.Dealt
	connA       transport.Conn // in-process pipe endpoints backing the
	connB       transport.Conn // session's dealt extension pair
	bucket      *bucket        // tenant quota admission
	reg         *Registry
	// obsS/obsR mirror the pool halves into the metrics registry; the
	// STATS protocol serves from these (pool.Stats agrees by the
	// Observer contract). labels is the shared per-session label set,
	// the teardown Drop predicate's match key.
	obsS, obsR *pool.Observer
	labels     string

	// Guarded by reg.mu.
	refs      int
	expiresAt time.Time // nonzero while orphaned (refs == 0 via detach)
}

// ID is the shard-scoped numeric session id.
func (s *Session) ID() uint64 { return s.id }

// Token is the fleet-wide routing token (consistent-hash key and
// reconnect handle; not a capability).
func (s *Session) Token() string { return s.token }

// Params names the session's parameter set.
func (s *Session) Params() string { return s.paramsName }

// Backend names the session's negotiated extension backend.
func (s *Session) Backend() string { return s.backendName }

// Tenant names the session's accounting principal.
func (s *Session) Tenant() string { return s.tenant }

// Batch is the per-Extend correlation yield.
func (s *Session) Batch() int { return s.batch }

// Lease is the session's orphan grace window.
func (s *Session) Lease() time.Duration { return s.lease }

// Delta is the session's correlation Δ (the creator's secret).
func (s *Session) Delta() block.Block { return s.delta }

// SenderToken is the attach capability for the sender half.
func (s *Session) SenderToken() string { return s.tokenS }

// ReceiverToken is the attach capability for the receiver half.
func (s *Session) ReceiverToken() string { return s.tokenR }

// role matches a presented capability token against the session's two
// halves in constant time; ok is false for anything else.
func (s *Session) role(capability string) (wire.Role, bool) {
	switch {
	case subtle.ConstantTimeCompare([]byte(capability), []byte(s.tokenS)) == 1:
		return wire.RoleSender, true
	case subtle.ConstantTimeCompare([]byte(capability), []byte(s.tokenR)) == 1:
		return wire.RoleReceiver, true
	}
	return "", false
}

// DrawSender draws n sender-half correlations (r0 blocks) through the
// tenant quota: shed requests fail typed (wire.ErrQuotaExceeded before
// any correlations move, wire.ErrPoolDry when generation is behind)
// and consume nothing.
func (s *Session) DrawSender(n int) ([]block.Block, error) {
	if err := s.admit(n); err != nil {
		return nil, err
	}
	z, err := s.pool.SenderCOTs(n)
	if err != nil {
		return nil, s.reg.mapDrawErr(err)
	}
	return z, nil
}

// DrawReceiver draws n receiver-half correlations (choice bits and r_b
// blocks); same quota and shed semantics as DrawSender.
func (s *Session) DrawReceiver(n int) ([]bool, []block.Block, error) {
	if err := s.admit(n); err != nil {
		return nil, nil, err
	}
	bits, blocks, err := s.pool.ReceiverCOTs(n)
	if err != nil {
		return nil, nil, s.reg.mapDrawErr(err)
	}
	return bits, blocks, nil
}

func (s *Session) admit(n int) error {
	if err := s.bucket.acquire(n); err != nil {
		s.reg.noteQuotaShed()
		return err
	}
	return nil
}

// Stats assembles the serializable per-session view from the
// registry-backed observers (NOT pool.Stats() — the Observer contract
// keeps the two views identical once draws quiesce, and serving from
// the registry guarantees STATS and the admin /metrics page can never
// disagree). refs/orphan state is passed in by the registry, which
// holds the lock.
func (s *Session) stats(refs int, expiresIn time.Duration) wire.SessionStats {
	st := wire.SessionStats{
		ID:       s.id,
		Shard:    wire.ShardOf(s.id),
		Params:   s.paramsName,
		Backend:  s.backendName,
		Tenant:   s.tenant,
		Refs:     refs,
		Sender:   halfStats(s.obsS.Snapshot()),
		Receiver: halfStats(s.obsR.Snapshot()),
	}
	if refs == 0 {
		st.Orphaned = true
		st.ExpiresInMS = expiresIn.Milliseconds()
	}
	return st
}

// PoolStats returns the raw pool counters for both halves — the
// ground truth the registry-backed STATS view must agree with
// (diagnostic/test hook).
func (s *Session) PoolStats() (sender, receiver pool.Stats) {
	return s.pool.Stats()
}

func halfStats(st pool.Stats) wire.HalfStats {
	return wire.HalfStats{
		Generated:    st.Generated,
		Dispensed:    st.Dispensed,
		Refills:      st.Refills,
		Draws:        st.Draws,
		BlockedDraws: st.BlockedDraws,
		BlockedNS:    st.BlockedTime.Nanoseconds(),
		Buffered:     st.Buffered,
	}
}

// newToken samples a capability/routing token (128-bit, hex).
func newToken() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return hex.EncodeToString(b[:]), nil
}

// openSession constructs the in-process dealt extension pair for a resolved
// open request and returns the unregistered session plus its refill
// source. Called without the registry lock (pair construction runs
// base OTs); the registry assigns the id, observers, and pool when it
// registers the session.
func openSession(cfg Config, name string, backend extension.Backend, params ferret.Params, req OpenRequest) (*Session, pool.DealtRefill, error) {
	var deltaBytes [block.Size]byte
	if _, err := rand.Read(deltaBytes[:]); err != nil {
		return nil, nil, err
	}
	delta := block.FromBytes(deltaBytes[:])
	tokenS, err := newToken()
	if err != nil {
		return nil, nil, err
	}
	tokenR, err := newToken()
	if err != nil {
		return nil, nil, err
	}
	routeToken := req.Token
	if routeToken == "" {
		if routeToken, err = newToken(); err != nil {
			return nil, nil, err
		}
	}

	eo := extension.Options{
		Workers:   cfg.workers(req.Workers),
		BinaryAES: req.BinaryAES,
	}
	connA, connB := transport.Pipe()
	es, er, err := backend.DealPair(connA, connB, delta, params, eo)
	if err != nil {
		_ = connA.Close()
		_ = connB.Close()
		return nil, nil, err
	}
	src := func() ([]block.Block, []bool, []block.Block, error) {
		return extension.ExtendLockstep(es, er)
	}

	lease := req.Lease
	if lease <= 0 {
		lease = cfg.Lease
	}
	if lease > cfg.MaxLease {
		lease = cfg.MaxLease
	}

	sess := &Session{
		token:       routeToken,
		paramsName:  name,
		backendName: backend.Name(),
		tenant:      req.Tenant,
		batch:       backend.Batch(params),
		lease:       lease,
		delta:       delta,
		tokenS:      tokenS,
		tokenR:      tokenR,
		connA:       connA,
		connB:       connB,
		refs:        1,
	}
	return sess, src, nil
}
