package session

import (
	"errors"
	"sync"
	"testing"
	"time"

	"ironman/internal/block"
	"ironman/internal/ferret"
	"ironman/internal/otserv/wire"
)

// tinyResolve serves parameter sets cheap enough to open many sessions
// in a unit test.
func tinyResolve(name string) (ferret.Params, error) {
	switch name {
	case "tiny":
		return ferret.TestParams(600, 32, 128, 8), nil
	}
	return ferret.ParamsByName(name)
}

func testConfig() Config {
	return Config{
		Resolve:       tinyResolve,
		DefaultParams: "tiny",
		MaxSessions:   32,
		Sweep:         time.Hour, // tests drive Expire by hand
	}
}

func newTestRegistry(t *testing.T, cfg Config) *Registry {
	t.Helper()
	r := NewRegistry(cfg)
	t.Cleanup(r.Close)
	return r
}

// verifyCOTs checks the dealt correlation invariant z = y ⊕ b·Δ.
func verifyCOTs(t *testing.T, delta block.Block, z []block.Block, bits []bool, y []block.Block) {
	t.Helper()
	if len(z) != len(bits) || len(z) != len(y) {
		t.Fatalf("length mismatch: %d z, %d bits, %d y", len(z), len(bits), len(y))
	}
	for i := range z {
		want := y[i]
		if bits[i] {
			want = want.Xor(delta)
		}
		if z[i] != want {
			t.Fatalf("correlation broken at %d", i)
		}
	}
}

func TestOpenStampsShardScopedIDs(t *testing.T) {
	cfg := testConfig()
	cfg.ShardID = 3
	r := newTestRegistry(t, cfg)
	sess, err := r.Open(OpenRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if wire.ShardOf(sess.ID()) != 3 {
		t.Fatalf("ShardOf(%d) = %d, want 3", sess.ID(), wire.ShardOf(sess.ID()))
	}
	if sess.Token() == "" || sess.SenderToken() == "" || sess.ReceiverToken() == "" {
		t.Fatal("tokens must be minted")
	}
	if sess.Token() == sess.SenderToken() || sess.Token() == sess.ReceiverToken() {
		t.Fatal("routing token must differ from the capabilities")
	}
}

// TestLeaseExpiryTypedError: an orphaned session past its lease is
// torn down by Expire, a late reconnect-with-token fails with the
// typed wire.ErrLeaseExpired, and an in-flight draw handle fails typed
// too — never a hang, never a generic miss.
func TestLeaseExpiryTypedError(t *testing.T) {
	now := time.Unix(1000, 0)
	cfg := testConfig()
	cfg.now = func() time.Time { return now }
	r := newTestRegistry(t, cfg)

	sess, err := r.Open(OpenRequest{Lease: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	token, capS := sess.Token(), sess.SenderToken()
	r.Detach(sess.ID(), true) // connection loss, not CLOSE

	if n := r.Expire(now.Add(40 * time.Millisecond)); n != 0 {
		t.Fatalf("expired %d sessions inside the lease window", n)
	}
	if n := r.Expire(now.Add(60 * time.Millisecond)); n != 1 {
		t.Fatalf("expired %d sessions past the lease, want 1", n)
	}
	if _, _, err := r.AttachByToken(token, capS); !errors.Is(err, wire.ErrLeaseExpired) {
		t.Fatalf("reconnect after expiry: err = %v, want ErrLeaseExpired", err)
	}
	if _, _, err := r.AttachByID(sess.ID(), capS); err == nil {
		t.Fatal("attach by id after expiry must fail")
	}
	if _, err := sess.DrawSender(8); !errors.Is(err, wire.ErrLeaseExpired) {
		t.Fatalf("draw on expired session: err = %v, want ErrLeaseExpired", err)
	}
	if _, _, err := r.AttachByToken("no-such-token", capS); !errors.Is(err, wire.ErrLeaseExpired) {
		t.Fatalf("unknown token: err = %v, want ErrLeaseExpired", err)
	}
	if dump := r.Dump(); dump.SessionsExpired != 1 {
		t.Fatalf("SessionsExpired = %d, want 1", dump.SessionsExpired)
	}
}

// TestReconnectResumesPoolPosition: draws before an orphan/reconnect
// cycle and after it stitch into one contiguous correlation stream —
// the reconnect resumed the exact pool position, byte-identically.
func TestReconnectResumesPoolPosition(t *testing.T) {
	now := time.Unix(1000, 0)
	cfg := testConfig()
	cfg.now = func() time.Time { return now }
	r := newTestRegistry(t, cfg)

	sess, err := r.Open(OpenRequest{Lease: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	const n1, n2 = 96, 160
	z1, err := sess.DrawSender(n1)
	if err != nil {
		t.Fatal(err)
	}
	r.Detach(sess.ID(), true) // drop the creator's conn

	st, err := r.Stats(sess.ID())
	if err != nil {
		t.Fatal(err)
	}
	if !st.Orphaned {
		t.Fatal("session must report orphaned while the lease clock runs")
	}

	got, role, err := r.AttachByToken(sess.Token(), sess.SenderToken())
	if err != nil {
		t.Fatalf("reconnect inside the lease window: %v", err)
	}
	if got != sess || role != wire.RoleSender {
		t.Fatalf("reconnect landed on session %d role %q", got.ID(), role)
	}
	z2, err := got.DrawSender(n2)
	if err != nil {
		t.Fatal(err)
	}
	// The receiver half never detached conceptually; drawing the whole
	// n1+n2 stretch must pair exactly with z1 ++ z2.
	bits, y, err := sess.DrawReceiver(n1 + n2)
	if err != nil {
		t.Fatal(err)
	}
	verifyCOTs(t, sess.Delta(), append(append([]block.Block{}, z1...), z2...), bits, y)

	st, err = r.Stats(sess.ID())
	if err != nil {
		t.Fatal(err)
	}
	if st.Orphaned || st.Refs != 1 {
		t.Fatalf("after reconnect: orphaned=%v refs=%d", st.Orphaned, st.Refs)
	}
}

// TestCloseIsImmediate: an explicit CLOSE (orphan=false) tears the
// session down with no lease window.
func TestCloseIsImmediate(t *testing.T) {
	r := newTestRegistry(t, testConfig())
	sess, err := r.Open(OpenRequest{})
	if err != nil {
		t.Fatal(err)
	}
	r.Detach(sess.ID(), false)
	if r.Len() != 0 {
		t.Fatalf("%d sessions live after CLOSE", r.Len())
	}
	if _, _, err := r.AttachByToken(sess.Token(), sess.SenderToken()); !errors.Is(err, wire.ErrLeaseExpired) {
		t.Fatalf("reattach after CLOSE: err = %v, want ErrLeaseExpired", err)
	}
}

// TestTenantSessionCap: the per-tenant session quota sheds typed and
// frees up when a session closes; other tenants are unaffected.
func TestTenantSessionCap(t *testing.T) {
	cfg := testConfig()
	cfg.Quota.SessionsPerTenant = 2
	r := newTestRegistry(t, cfg)

	a1, err := r.Open(OpenRequest{Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Open(OpenRequest{Tenant: "acme"}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Open(OpenRequest{Tenant: "acme"}); !errors.Is(err, wire.ErrQuotaExceeded) {
		t.Fatalf("third acme session: err = %v, want ErrQuotaExceeded", err)
	}
	if _, err := r.Open(OpenRequest{Tenant: "globex"}); err != nil {
		t.Fatalf("other tenant blocked by acme's quota: %v", err)
	}
	r.Detach(a1.ID(), false)
	if _, err := r.Open(OpenRequest{Tenant: "acme"}); err != nil {
		t.Fatalf("quota slot not reclaimed on close: %v", err)
	}
	if dump := r.Dump(); dump.QuotaSheds == 0 {
		t.Fatal("quota shed not counted")
	}
}

// TestDrawRateQuotaSheds: a draw whose token-bucket reservation would
// mature past MaxWait sheds with wire.ErrQuotaExceeded up front and
// consumes nothing; in-budget draws keep working.
func TestDrawRateQuotaSheds(t *testing.T) {
	cfg := testConfig()
	cfg.Quota.DrawPerSec = 1000
	cfg.Quota.Burst = 128
	cfg.Quota.MaxWait = 10 * time.Millisecond
	r := newTestRegistry(t, cfg)

	sess, err := r.Open(OpenRequest{Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.DrawSender(64); err != nil {
		t.Fatalf("in-burst draw: %v", err)
	}
	// 4096 over a ~64-token balance needs ~4 s of budget at 1000/s.
	if _, err := sess.DrawSender(4096); !errors.Is(err, wire.ErrQuotaExceeded) {
		t.Fatalf("over-rate draw: err = %v, want ErrQuotaExceeded", err)
	}
	if _, err := sess.DrawSender(16); err != nil {
		t.Fatalf("draw after shed: %v", err)
	}
	if dump := r.Dump(); dump.QuotaSheds == 0 {
		t.Fatal("rate shed not counted")
	}
}

// TestDrainRefusesOpens: a draining shard sheds HELLOs typed while
// existing sessions keep drawing.
func TestDrainRefusesOpens(t *testing.T) {
	r := newTestRegistry(t, testConfig())
	sess, err := r.Open(OpenRequest{})
	if err != nil {
		t.Fatal(err)
	}
	r.Drain()
	if _, err := r.Open(OpenRequest{}); !errors.Is(err, wire.ErrDraining) {
		t.Fatalf("open on draining shard: err = %v, want ErrDraining", err)
	}
	if _, err := sess.DrawSender(32); err != nil {
		t.Fatalf("existing session must keep serving through drain: %v", err)
	}
	if r.Idle() {
		t.Fatal("shard with a live session is not idle")
	}
	r.Detach(sess.ID(), false)
	if !r.Idle() {
		t.Fatal("drained shard with zero sessions must report idle")
	}
}

// TestConcurrentExpiryVsDraw: goroutines hammer draws while the
// janitor expires the session under them. Run under -race: every draw
// either succeeds or fails with a typed sentinel — no hang, no panic,
// no data race.
func TestConcurrentExpiryVsDraw(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1000, 0)
	cfg := testConfig()
	cfg.now = func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	r := newTestRegistry(t, cfg)

	sess, err := r.Open(OpenRequest{Lease: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	r.Detach(sess.ID(), true) // orphaned; lease clock running

	var wg sync.WaitGroup
	stopDraw := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(recv bool) {
			defer wg.Done()
			for {
				select {
				case <-stopDraw:
					return
				default:
				}
				var err error
				if recv {
					_, _, err = sess.DrawReceiver(16)
				} else {
					_, err = sess.DrawSender(16)
				}
				if err != nil {
					if !errors.Is(err, wire.ErrLeaseExpired) && !errors.Is(err, wire.ErrPoolDry) {
						t.Errorf("draw failed untyped: %v", err)
					}
					return
				}
			}
		}(i%2 == 0)
	}
	mu.Lock()
	now = now.Add(20 * time.Millisecond)
	mu.Unlock()
	for r.Expire(cfg.now()) == 0 {
		time.Sleep(time.Millisecond)
		mu.Lock()
		now = now.Add(time.Millisecond)
		mu.Unlock()
	}
	close(stopDraw)
	wg.Wait()
	if r.Len() != 0 {
		t.Fatalf("%d sessions live after expiry", r.Len())
	}
}

// TestWorkerClamp: worker requests clamp to the registry cap.
func TestWorkerClamp(t *testing.T) {
	cfg := Config{Workers: 2}.withDefaults()
	if got := cfg.workers(0); got != 2 {
		t.Fatalf("default workers = %d, want cap 2", got)
	}
	if got := cfg.workers(1); got != 1 {
		t.Fatalf("requested 1 worker, got %d", got)
	}
	if got := cfg.workers(64); got != 2 {
		t.Fatalf("oversized request = %d, want clamp to 2", got)
	}
}

// TestBackendAllowlist: opens naming a backend outside the registry's
// allowlist shed typed before any session state exists.
func TestBackendAllowlist(t *testing.T) {
	cfg := testConfig()
	cfg.Backends = []string{"ferret"}
	r := newTestRegistry(t, cfg)
	if _, err := r.Open(OpenRequest{Backend: "no-such-backend"}); !errors.Is(err, wire.ErrBackendUnsupported) {
		t.Fatalf("err = %v, want ErrBackendUnsupported", err)
	}
	if r.Len() != 0 {
		t.Fatal("refused open leaked session state")
	}
}
