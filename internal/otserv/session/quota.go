package session

import (
	"fmt"
	"sync"
	"time"

	"ironman/internal/otserv/wire"
)

// QuotaConfig shapes per-tenant admission control. The zero value is
// unlimited: no session cap, no draw rate, no shedding.
type QuotaConfig struct {
	// SessionsPerTenant caps concurrently open sessions per tenant;
	// opens past the cap shed with wire.ErrQuotaExceeded. 0 = unlimited.
	SessionsPerTenant int
	// DrawPerSec is the sustained per-tenant draw rate (correlations
	// per second, summed across the tenant's sessions). 0 = unlimited.
	DrawPerSec float64
	// Burst is the token-bucket depth (correlations a quiescent tenant
	// may draw instantly). 0 selects one second of DrawPerSec.
	Burst int
	// MaxWait bounds how long one over-rate draw may queue for tokens
	// before shedding with wire.ErrQuotaExceeded; 0 selects 1 s.
	MaxWait time.Duration
	// MaxWaiters bounds how many draws may queue on one tenant's bucket
	// at once; excess sheds immediately. 0 selects 64.
	MaxWaiters int
}

func (q QuotaConfig) withDefaults() QuotaConfig {
	if q.DrawPerSec > 0 && q.Burst <= 0 {
		q.Burst = int(q.DrawPerSec)
		if q.Burst < 1 {
			q.Burst = 1
		}
	}
	if q.MaxWait <= 0 {
		q.MaxWait = time.Second
	}
	if q.MaxWaiters <= 0 {
		q.MaxWaiters = 64
	}
	return q
}

// bucket is a reservation-based token bucket: an admitted draw deducts
// its cost immediately (the balance may go negative) and sleeps until
// its reservation matures, so concurrent draws serialize by arithmetic
// instead of by queue wakeups and can never deadlock. Draws whose
// reservation would mature beyond MaxWait — and draws arriving while
// MaxWaiters reservations are already queued — shed up front with
// wire.ErrQuotaExceeded, consuming no tokens.
type bucket struct {
	cfg QuotaConfig
	now func() time.Time

	mu      sync.Mutex
	tokens  float64
	stamp   time.Time // last refill instant
	waiters int
}

func newBucket(cfg QuotaConfig, now func() time.Time) *bucket {
	cfg = cfg.withDefaults()
	return &bucket{cfg: cfg, now: now, tokens: float64(cfg.Burst), stamp: now()}
}

// acquire admits a draw of n correlations, sleeping out its
// reservation when the tenant is over rate. A nil return means the
// draw is admitted; errors wrap wire.ErrQuotaExceeded.
func (b *bucket) acquire(n int) error {
	if b == nil || b.cfg.DrawPerSec <= 0 {
		return nil
	}
	b.mu.Lock()
	t := b.now()
	b.tokens += t.Sub(b.stamp).Seconds() * b.cfg.DrawPerSec
	b.stamp = t
	if max := float64(b.cfg.Burst); b.tokens > max {
		b.tokens = max
	}
	after := b.tokens - float64(n)
	if after >= 0 {
		b.tokens = after
		b.mu.Unlock()
		return nil
	}
	wait := time.Duration(-after / b.cfg.DrawPerSec * float64(time.Second))
	if wait > b.cfg.MaxWait {
		b.mu.Unlock()
		return fmt.Errorf("%w: draw of %d needs %v of budget (rate %g/s, max wait %v)",
			wire.ErrQuotaExceeded, n, wait.Round(time.Millisecond),
			b.cfg.DrawPerSec, b.cfg.MaxWait)
	}
	if b.waiters >= b.cfg.MaxWaiters {
		b.mu.Unlock()
		return fmt.Errorf("%w: %d draws already queued on tenant budget",
			wire.ErrQuotaExceeded, b.cfg.MaxWaiters)
	}
	// Reserve: deduct now, sleep outside the lock until the reservation
	// matures. Later arrivals see the negative balance and queue behind
	// (or shed over) this one purely arithmetically.
	b.tokens = after
	b.waiters++
	b.mu.Unlock()

	time.Sleep(wait)

	b.mu.Lock()
	b.waiters--
	b.mu.Unlock()
	return nil
}
