package session

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"ironman/internal/obs"
	"ironman/internal/otserv/wire"
	"ironman/internal/pool"
)

// tombTTL is how long an expired session's token is remembered so a
// late reconnect gets the typed lease error instead of a generic miss.
const tombTTL = 5 * time.Minute

// maxTombs bounds the tombstone map; beyond it arbitrary entries are
// evicted (a reconnect evicted early degrades to the same typed error
// with less detail, never to a hang).
const maxTombs = 4096

// tenant is one accounting principal's shard-local state: its open
// session count (sessions-per-tenant cap) and its draw-rate bucket,
// shared across the tenant's sessions.
type tenant struct {
	open   int
	bucket *bucket
}

// Registry owns every session on one shard. It is the session layer's
// root object: transports call Open/Attach*/Detach/Close around their
// connection lifecycles and draw through the *Session they get back;
// the registry runs the lease janitor, enforces per-tenant quotas, and
// serves serializable stats snapshots.
type Registry struct {
	cfg Config
	reg *obs.Registry

	mu       sync.Mutex
	sessions map[uint64]*Session
	byToken  map[string]*Session
	tombs    map[string]time.Time // routing token -> teardown instant
	tenants  map[string]*tenant
	seq      uint64
	pending  int // Opens past reservation, not yet registered
	opened   uint64
	closed   uint64
	expired  uint64
	quota    uint64 // quota sheds served
	dry      uint64 // pool-dry sheds served
	draining bool
	shut     bool

	stop chan struct{} // closes to stop the janitor
	done chan struct{} // janitor exit

	mSessions *obs.Gauge   // ironman_otserv_sessions
	mOpened   *obs.Counter // ironman_otserv_sessions_opened_total
	mClosed   *obs.Counter // ironman_otserv_sessions_closed_total
	mExpired  *obs.Counter // ironman_otserv_sessions_expired_total
	mQuota    *obs.Counter // ironman_otserv_quota_sheds_total
	mDry      *obs.Counter // ironman_otserv_dry_sheds_total
}

// NewRegistry builds a session registry and starts its lease janitor.
// Close stops the janitor and tears down every session.
func NewRegistry(cfg Config) *Registry {
	cfg = cfg.withDefaults()
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	r := &Registry{
		cfg:       cfg,
		reg:       reg,
		sessions:  make(map[uint64]*Session),
		byToken:   make(map[string]*Session),
		tombs:     make(map[string]time.Time),
		tenants:   make(map[string]*tenant),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		mSessions: reg.Gauge("ironman_otserv_sessions"),
		mOpened:   reg.Counter("ironman_otserv_sessions_opened_total"),
		mClosed:   reg.Counter("ironman_otserv_sessions_closed_total"),
		mExpired:  reg.Counter("ironman_otserv_sessions_expired_total"),
		mQuota:    reg.Counter("ironman_otserv_quota_sheds_total"),
		mDry:      reg.Counter("ironman_otserv_dry_sheds_total"),
	}
	go r.janitor()
	return r
}

// ShardID is the id prefix this registry stamps on its sessions.
func (r *Registry) ShardID() uint64 { return r.cfg.ShardID }

// Obs is the metrics registry the sessions report into.
func (r *Registry) Obs() *obs.Registry { return r.reg }

// Backends is the extension-backend allowlist this registry serves.
func (r *Registry) Backends() []string { return r.cfg.Backends }

func (r *Registry) janitor() {
	defer close(r.done)
	tick := time.NewTicker(r.cfg.Sweep)
	defer tick.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-tick.C:
			r.Expire(r.cfg.now())
		}
	}
}

// tenantLocked returns (creating if needed) a tenant's state; callers
// hold r.mu.
func (r *Registry) tenantLocked(name string) *tenant {
	tn := r.tenants[name]
	if tn == nil {
		tn = &tenant{bucket: newBucket(r.cfg.Quota, r.cfg.now)}
		r.tenants[name] = tn
	}
	return tn
}

// Open mints a session: backend negotiation and tenant admission first
// (zero state exists when they refuse), then the dealt extension pair,
// then registration under a shard-scoped id. The caller holds the
// creator reference (refcount 1).
func (r *Registry) Open(req OpenRequest) (*Session, error) {
	backend, err := r.cfg.backend(req.Backend)
	if err != nil {
		return nil, err
	}
	name := req.Params
	if name == "" {
		name = r.cfg.DefaultParams
	}
	params, err := r.cfg.Resolve(name)
	if err != nil {
		return nil, err
	}
	depth := req.Depth
	if depth <= 0 {
		depth = r.cfg.Depth
	}
	if depth > r.cfg.MaxDepth {
		depth = r.cfg.MaxDepth
	}

	// Reserve a slot: capacity and tenant admission are charged before
	// the expensive pair construction so a rejected open is cheap, and
	// concurrent opens cannot oversubscribe MaxSessions.
	r.mu.Lock()
	if r.shut {
		r.mu.Unlock()
		return nil, errors.New("session: registry closed")
	}
	if r.draining {
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: shard %d is draining", wire.ErrDraining, r.cfg.ShardID)
	}
	if len(r.sessions)+r.pending >= r.cfg.MaxSessions {
		r.mu.Unlock()
		return nil, fmt.Errorf("session: session limit %d reached", r.cfg.MaxSessions)
	}
	tn := r.tenantLocked(req.Tenant)
	if cap := r.cfg.Quota.SessionsPerTenant; cap > 0 && tn.open >= cap {
		r.quota++
		r.mQuota.Inc()
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: tenant session limit %d reached", wire.ErrQuotaExceeded, cap)
	}
	if req.Token != "" {
		if _, dup := r.byToken[req.Token]; dup {
			r.mu.Unlock()
			return nil, errors.New("session: routing token already in use")
		}
	}
	tn.open++
	r.pending++
	r.mu.Unlock()

	sess, src, err := openSession(r.cfg, name, backend, params, req)
	if err != nil {
		r.mu.Lock()
		tn.open--
		r.pending--
		r.mu.Unlock()
		return nil, err
	}
	sess.bucket = tn.bucket
	sess.reg = r

	r.mu.Lock()
	r.pending--
	if r.shut || r.draining {
		tn.open--
		drain := r.draining
		r.mu.Unlock()
		_ = sess.connA.Close()
		_ = sess.connB.Close()
		if drain {
			return nil, fmt.Errorf("%w: shard %d is draining", wire.ErrDraining, r.cfg.ShardID)
		}
		return nil, errors.New("session: registry closed")
	}
	r.seq++
	sess.id = wire.SessionID(r.cfg.ShardID, r.seq)
	sess.labels = obs.Labels("session", fmt.Sprint(sess.id))
	sess.obsS = pool.NewObserver(r.reg, obs.Labels(
		"session", fmt.Sprint(sess.id), "half", "sender", "params", name))
	sess.obsR = pool.NewObserver(r.reg, obs.Labels(
		"session", fmt.Sprint(sess.id), "half", "receiver", "params", name))
	// Start prefetching only once the session is registered.
	sess.pool = pool.NewDealt(src, pool.Config{
		Depth: depth, LowWater: req.LowWater,
		MaxWait: r.cfg.DrawWait, MaxWaiters: r.cfg.DrawWaiters,
		Obs: sess.obsS, ObsReceiver: sess.obsR,
	})
	r.sessions[sess.id] = sess
	r.byToken[sess.token] = sess
	r.opened++
	r.mSessions.Set(int64(len(r.sessions)))
	r.mOpened.Inc()
	r.mu.Unlock()
	return sess, nil
}

// AttachByID joins a session by its shard-scoped numeric id. A missing
// session and a bad capability produce one indistinguishable error, so
// probing cannot map live session ids.
func (r *Registry) AttachByID(id uint64, capability string) (*Session, wire.Role, error) {
	r.mu.Lock()
	sess := r.sessions[id]
	var role wire.Role
	ok := sess != nil
	if ok {
		role, ok = sess.role(capability)
	}
	if !ok {
		r.mu.Unlock()
		return nil, "", fmt.Errorf("session: no session %d for that token", id)
	}
	sess.refs++
	sess.expiresAt = time.Time{}
	r.mu.Unlock()
	return sess, role, nil
}

// AttachByToken joins a session by its fleet-wide routing token — the
// reconnect path. An expired (or simply unknown) token fails with the
// typed wire.ErrLeaseExpired so a client of a dead or restarted shard
// always gets a actionable rejection, never a hang or a generic miss.
func (r *Registry) AttachByToken(token, capability string) (*Session, wire.Role, error) {
	r.mu.Lock()
	sess := r.byToken[token]
	if sess == nil {
		_, tombed := r.tombs[token]
		r.mu.Unlock()
		if tombed {
			return nil, "", fmt.Errorf("%w: session lease expired; open a new session", wire.ErrLeaseExpired)
		}
		return nil, "", fmt.Errorf("%w: unknown session token on shard %d", wire.ErrLeaseExpired, r.cfg.ShardID)
	}
	role, ok := sess.role(capability)
	if !ok {
		r.mu.Unlock()
		return nil, "", errors.New("session: bad capability token")
	}
	sess.refs++
	sess.expiresAt = time.Time{}
	r.mu.Unlock()
	return sess, role, nil
}

// Detach drops one reference. At refcount zero the session either
// tears down immediately (orphan=false: the client said CLOSE) or
// starts its lease clock (orphan=true: the connection just died and
// the client may reconnect-with-token inside the window).
func (r *Registry) Detach(id uint64, orphan bool) {
	r.mu.Lock()
	sess := r.sessions[id]
	if sess == nil {
		r.mu.Unlock()
		return
	}
	sess.refs--
	if sess.refs > 0 {
		r.mu.Unlock()
		return
	}
	if orphan {
		sess.expiresAt = r.cfg.now().Add(sess.lease)
		r.mu.Unlock()
		return
	}
	r.unregisterLocked(sess, false)
	r.mu.Unlock()
	teardown(sess)
	r.dropSeries(sess)
}

// Expire tears down every orphan whose lease ran out as of now,
// leaving tombstones. The janitor calls this each sweep; tests call it
// directly with a pinned clock.
func (r *Registry) Expire(now time.Time) int {
	r.mu.Lock()
	var doomed []*Session
	for _, sess := range r.sessions {
		if sess.refs == 0 && !sess.expiresAt.IsZero() && !now.Before(sess.expiresAt) {
			doomed = append(doomed, sess)
		}
	}
	sort.Slice(doomed, func(i, j int) bool { return doomed[i].id < doomed[j].id })
	for _, sess := range doomed {
		r.unregisterLocked(sess, true)
	}
	for token, at := range r.tombs {
		if now.Sub(at) > tombTTL {
			delete(r.tombs, token)
		}
	}
	r.mu.Unlock()
	for _, sess := range doomed {
		teardown(sess)
		r.dropSeries(sess)
	}
	return len(doomed)
}

// unregisterLocked removes a session from the maps and records the
// tombstone and counters; the caller holds r.mu and must run teardown
// + dropSeries after unlocking (pool.Close waits on the worker).
func (r *Registry) unregisterLocked(sess *Session, expired bool) {
	delete(r.sessions, sess.id)
	delete(r.byToken, sess.token)
	if len(r.tombs) >= maxTombs {
		for t := range r.tombs {
			delete(r.tombs, t)
			break
		}
	}
	r.tombs[sess.token] = r.cfg.now()
	r.closed++
	r.mClosed.Inc()
	if expired {
		r.expired++
		r.mExpired.Inc()
	}
	if tn := r.tenants[sess.tenant]; tn != nil {
		tn.open--
	}
	r.mSessions.Set(int64(len(r.sessions)))
}

// teardown stops a session's prefetch worker and closes its pipes.
// pool.Close completes the in-flight lockstep iteration first (the
// worker drives both pipe endpoints, so it cannot wedge).
func teardown(sess *Session) {
	_ = sess.pool.Close()
	_ = sess.connA.Close()
	_ = sess.connB.Close()
}

// dropSeries retires the session's metric series so registry
// cardinality stays bounded by live sessions, not lifetime count.
func (r *Registry) dropSeries(sess *Session) {
	key := "{" + sess.labels + ","
	r.reg.Drop(func(name string) bool { return strings.Contains(name, key) })
}

// Drain flips the shard into lame-duck mode: new opens are refused
// with wire.ErrDraining while existing sessions keep serving draws to
// lease expiry or CLOSE. Attach stays allowed — reconnects to live
// sessions are part of serving them out.
func (r *Registry) Drain() {
	r.mu.Lock()
	r.draining = true
	r.mu.Unlock()
}

// Draining reports lame-duck mode.
func (r *Registry) Draining() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.draining
}

// Get looks up a live session by id (diagnostic/test hook; transports
// go through Open/Attach*).
func (r *Registry) Get(id uint64) (*Session, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	sess, ok := r.sessions[id]
	return sess, ok
}

// Len is the live session count.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sessions)
}

// Idle reports whether the shard has fully served out: draining with
// zero live sessions.
func (r *Registry) Idle() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.draining && len(r.sessions) == 0
}

// Close stops the janitor and tears down every session in id order.
// Safe to call more than once.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.shut {
		r.mu.Unlock()
		<-r.done
		return
	}
	r.shut = true
	doomed := make([]*Session, 0, len(r.sessions))
	for _, sess := range r.sessions {
		doomed = append(doomed, sess)
	}
	sort.Slice(doomed, func(i, j int) bool { return doomed[i].id < doomed[j].id })
	for _, sess := range doomed {
		r.unregisterLocked(sess, false)
	}
	r.mu.Unlock()
	close(r.stop)
	for _, sess := range doomed {
		teardown(sess)
		r.dropSeries(sess)
	}
	<-r.done
}

// Stats serves one session's serializable view, or an error if the id
// is no longer live.
func (r *Registry) Stats(id uint64) (wire.SessionStats, error) {
	r.mu.Lock()
	sess := r.sessions[id]
	if sess == nil {
		r.mu.Unlock()
		return wire.SessionStats{}, fmt.Errorf("session: no session %d", id)
	}
	refs := sess.refs
	expiresIn := r.expiresInLocked(sess)
	r.mu.Unlock()
	return sess.stats(refs, expiresIn), nil
}

func (r *Registry) expiresInLocked(sess *Session) time.Duration {
	if sess.refs != 0 || sess.expiresAt.IsZero() {
		return 0
	}
	d := sess.expiresAt.Sub(r.cfg.now())
	if d < 0 {
		d = 0
	}
	return d
}

// Dump assembles the shard-wide serializable stats view.
func (r *Registry) Dump() wire.StatsDump {
	r.mu.Lock()
	dump := wire.StatsDump{
		Shard:           r.cfg.ShardID,
		Sessions:        len(r.sessions),
		SessionsOpened:  r.opened,
		SessionsClosed:  r.closed,
		SessionsExpired: r.expired,
		QuotaSheds:      r.quota,
		DrySheds:        r.dry,
		MaxSessions:     r.cfg.MaxSessions,
		Draining:        r.draining,
		Backends:        r.cfg.Backends,
	}
	type entry struct {
		sess      *Session
		refs      int
		expiresIn time.Duration
	}
	entries := make([]entry, 0, len(r.sessions))
	for _, sess := range r.sessions {
		entries = append(entries, entry{sess, sess.refs, r.expiresInLocked(sess)})
	}
	r.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].sess.id < entries[j].sess.id })
	for _, e := range entries {
		dump.PerSession = append(dump.PerSession, e.sess.stats(e.refs, e.expiresIn))
	}
	return dump
}

// noteQuotaShed records one typed quota rejection served.
func (r *Registry) noteQuotaShed() {
	r.mu.Lock()
	r.quota++
	r.mu.Unlock()
	r.mQuota.Inc()
}

// mapDrawErr turns pool-layer failures into the wire protocol's typed
// sentinels: bounded-wait sheds become wire.ErrPoolDry, draws on a
// torn-down (expired or closed) session become wire.ErrLeaseExpired.
func (r *Registry) mapDrawErr(err error) error {
	switch {
	case errors.Is(err, pool.ErrDry):
		r.mu.Lock()
		r.dry++
		r.mu.Unlock()
		r.mDry.Inc()
		return fmt.Errorf("%w: %v", wire.ErrPoolDry, err)
	case errors.Is(err, pool.ErrClosed):
		return fmt.Errorf("%w: session torn down mid-draw", wire.ErrLeaseExpired)
	}
	return err
}
