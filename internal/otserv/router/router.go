package router

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"ironman/internal/obs"
	"ironman/internal/otserv/wire"
	"ironman/internal/transport"
)

// shardState tracks one shard's availability for placement and
// routing.
type shardState int

const (
	// shardLive accepts placements and routed requests.
	shardLive shardState = iota
	// shardDraining serves routed requests for its existing sessions
	// but takes no new placements; it leaves the fleet at lease expiry.
	shardDraining
	// shardDead failed a request or probe; the health loop re-probes it
	// and revives it (a restarted shard rejoins with empty state).
	shardDead
)

func (s shardState) String() string {
	switch s {
	case shardLive:
		return "live"
	case shardDraining:
		return "draining"
	default:
		return "dead"
	}
}

// shard is the router's view of one dispenser process.
type shard struct {
	addr  string
	id    uint64
	known bool // id learned from a probe or response
	state shardState
}

// Config tunes the fleet router.
type Config struct {
	// Shards is the initial membership (dispenser listen addresses).
	// Unreachable shards start dead and join when the health loop
	// reaches them.
	Shards []string
	// VNodes is the virtual-node count per shard on the hash ring.
	// Default 256.
	VNodes int
	// Probe is the health loop's re-probe interval for dead shards and
	// drain detection. Default 1 s.
	Probe time.Duration
	// DialTimeout bounds upstream connection attempts. Default 2 s.
	DialTimeout time.Duration
	// MaxTokens bounds the token-placement cache. Default 1<<16.
	MaxTokens int
	// Registry receives the router's metrics. nil creates one.
	Registry *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = 256
	}
	if c.Probe <= 0 {
		c.Probe = time.Second
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.MaxTokens <= 0 {
		c.MaxTokens = 1 << 16
	}
	return c
}

// Router fronts a dispenser fleet: it speaks the same wire protocol as
// a shard, places HELLOs by consistent hash of the session's routing
// token, and proxies everything else to the owning shard (statelessly,
// from the id's shard bits). Clients cannot tell a router from a
// standalone dispenser except by the shard spread of their session ids.
type Router struct {
	cfg Config
	reg *obs.Registry

	mu     sync.Mutex
	shards map[string]*shard
	byID   map[uint64]*shard
	ring   ring
	tokens map[string]string // routing token -> owning shard addr
	ln     net.Listener
	conns  map[transport.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	stop chan struct{}
	done chan struct{}

	mShardsLive *obs.Gauge   // ironman_router_shards_live
	mPlacements *obs.Counter // ironman_router_placements_total
	mRetries    *obs.Counter // ironman_router_placement_retries_total
	mDeadMarks  *obs.Counter // ironman_router_dead_marks_total
	mLeaseErrs  *obs.Counter // ironman_router_lease_errors_total
}

// New builds a router over the configured shards and starts its
// health loop. Shards that answer a probe join the ring immediately;
// the rest start dead and join when they come up.
func New(cfg Config) *Router {
	cfg = cfg.withDefaults()
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	r := &Router{
		cfg:         cfg,
		reg:         reg,
		shards:      make(map[string]*shard),
		byID:        make(map[uint64]*shard),
		tokens:      make(map[string]string),
		conns:       make(map[transport.Conn]struct{}),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
		mShardsLive: reg.Gauge("ironman_router_shards_live"),
		mPlacements: reg.Counter("ironman_router_placements_total"),
		mRetries:    reg.Counter("ironman_router_placement_retries_total"),
		mDeadMarks:  reg.Counter("ironman_router_dead_marks_total"),
		mLeaseErrs:  reg.Counter("ironman_router_lease_errors_total"),
	}
	for _, addr := range cfg.Shards {
		r.AddShard(addr)
	}
	go r.health()
	return r
}

// Registry exposes the router's metrics registry.
func (r *Router) Registry() *obs.Registry { return r.reg }

// AddShard joins a shard into the fleet (live add). The shard is
// probed immediately; if unreachable it starts dead and the health
// loop keeps trying.
func (r *Router) AddShard(addr string) {
	r.mu.Lock()
	if _, ok := r.shards[addr]; ok {
		r.mu.Unlock()
		return
	}
	r.shards[addr] = &shard{addr: addr, state: shardDead}
	r.mu.Unlock()
	r.probe(addr)
}

// DrainShard takes a shard out of placement at the router and asks for
// nothing else: routed requests for its existing sessions keep
// flowing until the leases run out. Pair it with the shard's own admin
// /drain so direct HELLOs are refused too.
func (r *Router) DrainShard(addr string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	sh, ok := r.shards[addr]
	if !ok {
		return false
	}
	if sh.state == shardLive {
		sh.state = shardDraining
		r.rebuildLocked()
	}
	return true
}

// ShardView is one shard's externally visible routing state.
type ShardView struct {
	Addr  string `json:"addr"`
	Shard uint64 `json:"shard"`
	State string `json:"state"`
}

// Shards reports the fleet membership in address order.
func (r *Router) Shards() []ShardView {
	r.mu.Lock()
	views := make([]ShardView, 0, len(r.shards))
	for _, sh := range r.shards {
		views = append(views, ShardView{Addr: sh.addr, Shard: sh.id, State: sh.state.String()})
	}
	r.mu.Unlock()
	sort.Slice(views, func(i, j int) bool { return views[i].Addr < views[j].Addr })
	return views
}

// rebuildLocked recomputes the placement ring from live shards and the
// live-shard gauge; the caller holds r.mu.
func (r *Router) rebuildLocked() {
	var all []*shard
	for _, sh := range r.shards {
		all = append(all, sh)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].addr < all[j].addr })
	var live []string
	for _, sh := range all {
		if sh.state == shardLive {
			live = append(live, sh.addr)
		}
	}
	r.ring = buildRing(live, r.cfg.VNodes)
	r.mShardsLive.Set(int64(len(live)))
}

// probe health-checks one shard over a fresh connection: a STATS(0)
// round trip teaches the router the shard's id and drain state.
func (r *Router) probe(addr string) {
	nc, err := net.DialTimeout("tcp", addr, r.cfg.DialTimeout)
	if err != nil {
		r.setState(addr, shardDead, 0, false)
		return
	}
	conn := transport.NewTCP(nc)
	defer func() { _ = conn.Close() }()
	dump, err := statsRoundTrip(conn)
	if err != nil {
		r.setState(addr, shardDead, 0, false)
		return
	}
	if dump.Draining {
		r.setState(addr, shardDraining, dump.Shard, true)
		return
	}
	r.setState(addr, shardLive, dump.Shard, true)
}

// statsRoundTrip fetches a shard's StatsDump over conn.
func statsRoundTrip(conn transport.Conn) (wire.StatsDump, error) {
	var dump wire.StatsDump
	if err := conn.Send(wire.SessionReq(wire.OpStats, 0)); err != nil {
		return dump, err
	}
	resp, err := conn.Recv()
	if err != nil {
		return dump, err
	}
	if len(resp) < 1 || resp[0] != wire.StatusOK {
		return dump, errors.New("router: shard STATS failed")
	}
	return dump, unmarshalDump(resp[1:], &dump)
}

// setState records a shard's probed state and rebuilds the ring on
// transitions.
func (r *Router) setState(addr string, st shardState, id uint64, known bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	sh, ok := r.shards[addr]
	if !ok {
		return
	}
	if known {
		if sh.known && sh.id != id {
			// The process at this address came back as a different
			// shard id (operator remapped it); rehome the id index.
			delete(r.byID, sh.id)
		}
		sh.id = id
		sh.known = true
		r.byID[id] = sh
	}
	if sh.state != st {
		sh.state = st
		r.rebuildLocked()
	}
}

// markDead records an upstream failure: the shard leaves the ring now
// and the health loop owns bringing it back.
func (r *Router) markDead(addr string) {
	r.mDeadMarks.Inc()
	r.setState(addr, shardDead, 0, false)
}

// deadShards lists shards the health loop should re-probe, in address
// order.
func (r *Router) deadShards() []string {
	r.mu.Lock()
	var addrs []string
	for _, sh := range r.shards {
		if sh.state != shardLive {
			addrs = append(addrs, sh.addr)
		}
	}
	r.mu.Unlock()
	sort.Strings(addrs)
	return addrs
}

func (r *Router) health() {
	defer close(r.done)
	tick := time.NewTicker(r.cfg.Probe)
	defer tick.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-tick.C:
			for _, addr := range r.deadShards() {
				r.probe(addr)
			}
		}
	}
}

// placement returns the candidate shards for a new session with the
// given routing token: the ring owner first, then the other live
// shards in circle order (the retry path when the owner drains or
// dies mid-placement).
func (r *Router) placement(token string) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ring.sequence(token)
}

// addrForShard resolves a shard id to its address; ok is false when
// the shard is unknown or dead (routed requests then fail typed, so
// clients of a killed shard never hang).
func (r *Router) addrForShard(id uint64) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	sh, ok := r.byID[id]
	if !ok || sh.state == shardDead {
		return "", false
	}
	return sh.addr, true
}

// recordToken caches a session token's placement for reconnect
// routing. The cache is bounded; when full it is dropped wholesale —
// forgotten tokens degrade to the try-all-shards reconnect path, not
// to an error.
func (r *Router) recordToken(token, addr string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.tokens) >= r.cfg.MaxTokens {
		r.tokens = make(map[string]string)
	}
	r.tokens[token] = addr
}

// dropToken forgets a cached placement (the shard said the lease is
// gone).
func (r *Router) dropToken(token string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.tokens, token)
}

// reattachCandidates orders the shards to try for a token reconnect:
// the cached placement first, then every routable shard (live or
// draining — a draining shard still serves its leases) in address
// order.
func (r *Router) reattachCandidates(token string) []string {
	r.mu.Lock()
	cached, hasCached := r.tokens[token]
	var all []*shard
	for _, sh := range r.shards {
		all = append(all, sh)
	}
	if hasCached {
		if sh, ok := r.shards[cached]; !ok || sh.state == shardDead {
			hasCached = false
		}
	}
	r.mu.Unlock()
	sort.Slice(all, func(i, j int) bool { return all[i].addr < all[j].addr })
	var rest []string
	for _, sh := range all {
		if sh.state != shardDead && sh.addr != cached {
			rest = append(rest, sh.addr)
		}
	}
	if hasCached {
		return append([]string{cached}, rest...)
	}
	return rest
}

// newRouteToken samples a fresh fleet-wide routing token for a HELLO
// that pinned none.
func newRouteToken() (string, error) {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", err
	}
	return hex.EncodeToString(b[:]), nil
}

// Serve accepts dispenser clients on ln until the listener fails or
// the router is closed. It blocks; run it on its own goroutine when
// the caller needs to keep working.
func (r *Router) Serve(ln net.Listener) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return errors.New("router: closed")
	}
	r.ln = ln
	r.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			r.mu.Lock()
			closed := r.closed
			r.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		conn := transport.NewTCP(nc)
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			_ = conn.Close()
			return nil
		}
		r.conns[conn] = struct{}{}
		r.wg.Add(1)
		r.mu.Unlock()
		go r.handleConn(conn)
	}
}

// Close stops the router: the health loop, the listener, and every
// client connection (whose upstream conns close with them — shards
// then orphan the affected sessions into their lease windows).
func (r *Router) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		<-r.done
		return nil
	}
	r.closed = true
	ln := r.ln
	for conn := range r.conns {
		_ = conn.Close()
	}
	r.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	close(r.stop)
	r.wg.Wait()
	<-r.done
	return nil
}

// noShards is the typed placement failure when every shard refused or
// died: ErrDraining, so clients back off and retry rather than treat
// it as fatal.
func noShards() []byte {
	return wire.ErrResponse(fmt.Errorf("%w: no shard accepted the session", wire.ErrDraining))
}
