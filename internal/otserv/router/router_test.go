package router

import (
	"errors"
	"net"
	"testing"
	"time"

	"ironman/internal/block"
	"ironman/internal/ferret"
	"ironman/internal/otserv"
	"ironman/internal/otserv/wire"
)

// tinyResolve serves parameter sets cheap enough to open dozens of
// sessions per test.
func tinyResolve(name string) (ferret.Params, error) {
	switch name {
	case "tiny":
		return ferret.TestParams(600, 32, 128, 8), nil
	}
	return ferret.ParamsByName(name)
}

type testShard struct {
	srv  *otserv.Server
	ln   net.Listener
	addr string
}

func startShard(t *testing.T, shardID uint64) *testShard {
	t.Helper()
	srv := otserv.NewServer(otserv.Config{
		Resolve:       tinyResolve,
		DefaultParams: "tiny",
		MaxSessions:   4096,
		ShardID:       shardID,
		Lease:         5 * time.Second,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go srv.Serve(ln)
	sh := &testShard{srv: srv, ln: ln, addr: ln.Addr().String()}
	t.Cleanup(func() { sh.stop() })
	return sh
}

func (sh *testShard) stop() {
	if sh.srv != nil {
		sh.srv.Close()
		sh.srv = nil
	}
}

func startRouter(t *testing.T, shards ...*testShard) (*Router, string) {
	t.Helper()
	addrs := make([]string, len(shards))
	for i, sh := range shards {
		addrs[i] = sh.addr
	}
	r := New(Config{Shards: addrs, Probe: 50 * time.Millisecond})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("router listen: %v", err)
	}
	go r.Serve(ln)
	t.Cleanup(func() { r.Close() })
	return r, ln.Addr().String()
}

func dialRouter(t *testing.T, addr string) *otserv.Client {
	t.Helper()
	c, err := otserv.Dial(addr)
	if err != nil {
		t.Fatalf("dial router: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestPlacementBalanceAcrossShards(t *testing.T) {
	shards := []*testShard{startShard(t, 1), startShard(t, 2), startShard(t, 3)}
	_, addr := startRouter(t, shards...)
	c := dialRouter(t, addr)

	const n = 60
	perShard := map[uint64]int{}
	for i := 0; i < n; i++ {
		sess, err := c.NewSession(otserv.SessionConfig{Params: "tiny", Depth: 256})
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		perShard[wire.ShardOf(sess.ID())]++
	}
	if len(perShard) != 3 {
		t.Fatalf("placements landed on %d shards, want 3: %v", len(perShard), perShard)
	}
	// Acceptance bar: per-shard balance within 2x of even.
	even := n / 3
	for id, got := range perShard {
		if got > 2*even || got < even/2 {
			t.Fatalf("shard %d holds %d of %d sessions (balance beyond 2x of even %d): %v",
				id, got, n, even, perShard)
		}
	}
}

func TestDrawsProxyToOwningShard(t *testing.T) {
	shards := []*testShard{startShard(t, 1), startShard(t, 2)}
	_, addr := startRouter(t, shards...)
	c := dialRouter(t, addr)

	sess, err := c.NewSession(otserv.SessionConfig{Params: "tiny", Depth: 512})
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	delta, ok := sess.Delta()
	if !ok {
		t.Fatal("opener should learn delta")
	}
	z, err := sess.SenderCOTs(96)
	if err != nil {
		t.Fatalf("sender draw via router: %v", err)
	}
	bits, y, err := sess.ReceiverCOTs(96)
	if err != nil {
		t.Fatalf("receiver draw via router: %v", err)
	}
	for i := range z {
		want := y[i]
		if bits[i] {
			want = want.Xor(delta)
		}
		if z[i] != want {
			t.Fatalf("correlation broken at %d through router", i)
		}
	}
	if err := sess.Close(); err != nil {
		t.Fatalf("close via router: %v", err)
	}
}

func TestReconnectWithTokenThroughRouter(t *testing.T) {
	shards := []*testShard{startShard(t, 1), startShard(t, 2), startShard(t, 3)}
	_, addr := startRouter(t, shards...)

	c1 := dialRouter(t, addr)
	sess, err := c1.NewSession(otserv.SessionConfig{Params: "tiny", Depth: 512})
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	token := sess.Token()
	senderTok := sess.SenderToken()
	receiverTok := sess.ReceiverToken()
	delta, _ := sess.Delta()
	z1, err := sess.SenderCOTs(64)
	if err != nil {
		t.Fatalf("first draw: %v", err)
	}
	// Drop the client abruptly: the shard orphans the session into its
	// lease window.
	c1.Close()

	c2 := dialRouter(t, addr)
	var re *otserv.Session
	for i := 0; ; i++ {
		re, err = c2.AttachToken(token, senderTok)
		if err == nil {
			break
		}
		// The shard may not have processed the dropped conn yet.
		if i > 100 {
			t.Fatalf("reattach via router: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if re.ID() != sess.ID() {
		t.Fatalf("reattach routed to a different session: %d vs %d", re.ID(), sess.ID())
	}
	z2, err := re.SenderCOTs(64)
	if err != nil {
		t.Fatalf("post-reconnect draw: %v", err)
	}
	// Resume must advance the same pool, not restart it: attach the
	// receiver capability, drain its side across the full 128, and
	// check the correlation holds for the concatenated sender stream.
	rx, err := c2.AttachToken(token, receiverTok)
	if err != nil {
		t.Fatalf("receiver reattach: %v", err)
	}
	bits, y, err := rx.ReceiverCOTs(128)
	if err != nil {
		t.Fatalf("receiver draw: %v", err)
	}
	z := append(append([]block.Block{}, z1...), z2...)
	for i := range z {
		want := y[i]
		if bits[i] {
			want = want.Xor(delta)
		}
		if z[i] != want {
			t.Fatalf("resumed stream broke correlation at %d", i)
		}
	}
}

func TestKilledShardYieldsTypedLeaseErrorNeverHangs(t *testing.T) {
	shards := []*testShard{startShard(t, 1), startShard(t, 2), startShard(t, 3)}
	r, addr := startRouter(t, shards...)
	c := dialRouter(t, addr)

	// Open sessions until we hold one per shard.
	byShard := map[uint64]*otserv.Session{}
	for i := 0; len(byShard) < 3 && i < 200; i++ {
		sess, err := c.NewSession(otserv.SessionConfig{Params: "tiny", Depth: 256})
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		sid := wire.ShardOf(sess.ID())
		if _, ok := byShard[sid]; !ok {
			byShard[sid] = sess
		}
	}
	if len(byShard) != 3 {
		t.Fatalf("could not reach all 3 shards: %v", byShard)
	}

	// Kill shard 2 mid-run.
	shards[1].stop()

	victim := byShard[2]
	done := make(chan error, 1)
	go func() {
		_, err := victim.SenderCOTs(32)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, otserv.ErrLeaseExpired) {
			t.Fatalf("draw on killed shard: got %v, want ErrLeaseExpired", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("draw on killed shard hung")
	}

	// Survivor shards are unaffected; the same client conn keeps
	// drawing from them.
	for _, sid := range []uint64{1, 3} {
		if _, err := byShard[sid].SenderCOTs(32); err != nil {
			t.Fatalf("draw on surviving shard %d: %v", sid, err)
		}
	}

	// New placements skip the dead shard.
	for i := 0; i < 6; i++ {
		sess, err := c.NewSession(otserv.SessionConfig{Params: "tiny", Depth: 256})
		if err != nil {
			t.Fatalf("post-kill session %d: %v", i, err)
		}
		if wire.ShardOf(sess.ID()) == 2 {
			t.Fatal("placement landed on the dead shard")
		}
	}

	// A reconnect-with-token for a session the dead shard held fails
	// with the typed lease error (no shard holds it), never hangs.
	_, err := c.AttachToken(victim.Token(), victim.SenderToken())
	if !errors.Is(err, otserv.ErrLeaseExpired) {
		t.Fatalf("reattach to killed shard's session: got %v, want ErrLeaseExpired", err)
	}

	// Restart the shard at the same address (empty state). The health
	// loop revives it; placements reach it again, and the old session's
	// token still fails typed — a restarted shard cannot resurrect
	// leases it never had.
	srv2 := otserv.NewServer(otserv.Config{
		Resolve:       tinyResolve,
		DefaultParams: "tiny",
		MaxSessions:   4096,
		ShardID:       2,
	})
	ln2, err := net.Listen("tcp", shards[1].addr)
	if err != nil {
		t.Fatalf("restart shard 2: %v", err)
	}
	go srv2.Serve(ln2)
	t.Cleanup(func() { srv2.Close() })
	deadline := time.Now().Add(10 * time.Second)
	revived := false
	for time.Now().Before(deadline) {
		for _, view := range r.Shards() {
			if view.Addr == shards[1].addr && view.State == "live" {
				revived = true
			}
		}
		if revived {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !revived {
		t.Fatal("router never revived the restarted shard")
	}
	landed := false
	for i := 0; i < 100 && !landed; i++ {
		sess, err := c.NewSession(otserv.SessionConfig{Params: "tiny", Depth: 256})
		if err != nil {
			t.Fatalf("post-restart session %d: %v", i, err)
		}
		landed = wire.ShardOf(sess.ID()) == 2
	}
	if !landed {
		t.Fatal("no placement reached the restarted shard")
	}
	_, err = c.AttachToken(victim.Token(), victim.SenderToken())
	if !errors.Is(err, otserv.ErrLeaseExpired) {
		t.Fatalf("reattach after shard restart: got %v, want ErrLeaseExpired", err)
	}
}

func TestDrainShardStopsPlacementServesLeases(t *testing.T) {
	shards := []*testShard{startShard(t, 1), startShard(t, 2)}
	r, addr := startRouter(t, shards...)
	c := dialRouter(t, addr)

	// Land one session on each shard first.
	byShard := map[uint64]*otserv.Session{}
	for i := 0; len(byShard) < 2 && i < 200; i++ {
		sess, err := c.NewSession(otserv.SessionConfig{Params: "tiny", Depth: 256})
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		sid := wire.ShardOf(sess.ID())
		if _, ok := byShard[sid]; !ok {
			byShard[sid] = sess
		}
	}

	// Drain shard 1 at both layers: the shard refuses direct HELLOs,
	// the router stops placing there.
	shards[0].srv.Drain()
	if !r.DrainShard(shards[0].addr) {
		t.Fatal("router does not know shard 1")
	}

	for i := 0; i < 8; i++ {
		sess, err := c.NewSession(otserv.SessionConfig{Params: "tiny", Depth: 256})
		if err != nil {
			t.Fatalf("post-drain session %d: %v", i, err)
		}
		if wire.ShardOf(sess.ID()) == 1 {
			t.Fatal("placement landed on the draining shard")
		}
	}

	// The draining shard still serves its existing lease.
	if _, err := byShard[1].SenderCOTs(32); err != nil {
		t.Fatalf("draw on draining shard: %v", err)
	}
}

func TestMergedStatsSpansShards(t *testing.T) {
	shards := []*testShard{startShard(t, 1), startShard(t, 2)}
	_, addr := startRouter(t, shards...)
	c := dialRouter(t, addr)

	var opened []*otserv.Session
	for len(opened) < 6 {
		sess, err := c.NewSession(otserv.SessionConfig{Params: "tiny", Depth: 256})
		if err != nil {
			t.Fatalf("session: %v", err)
		}
		opened = append(opened, sess)
	}
	dump, err := c.ServerStats()
	if err != nil {
		t.Fatalf("merged stats: %v", err)
	}
	if dump.Sessions != 6 || len(dump.PerSession) != 6 {
		t.Fatalf("merged dump shows %d sessions (%d detailed), want 6", dump.Sessions, len(dump.PerSession))
	}
	if dump.SessionsOpened != 6 {
		t.Fatalf("merged opened %d, want 6", dump.SessionsOpened)
	}
}

func TestRouterAllShardsDownTypedError(t *testing.T) {
	sh := startShard(t, 1)
	_, addr := startRouter(t, sh)
	sh.stop()

	c := dialRouter(t, addr)
	_, err := c.NewSession(otserv.SessionConfig{Params: "tiny", Depth: 256})
	if err == nil {
		t.Fatal("HELLO with no live shards should fail")
	}
	if !errors.Is(err, otserv.ErrDraining) && !errors.Is(err, otserv.ErrLeaseExpired) {
		t.Fatalf("no-shard HELLO error is untyped: %v", err)
	}
}
