package router

import (
	"encoding/json"
	"fmt"
	"net"

	"ironman/internal/otserv/wire"
	"ironman/internal/transport"
)

// proxyConn is the per-client proxy state: one upstream connection per
// shard the client has touched, dialed lazily. When the client drops,
// its upstreams close with it, so the shards orphan the client's
// sessions into their lease windows — the router itself never tracks
// which sessions a client owns.
type proxyConn struct {
	r         *Router
	client    transport.Conn
	upstreams map[string]transport.Conn
}

func (r *Router) handleConn(client transport.Conn) {
	pc := &proxyConn{r: r, client: client, upstreams: make(map[string]transport.Conn)}
	defer func() {
		pc.closeUpstreams()
		_ = client.Close()
		r.mu.Lock()
		delete(r.conns, client)
		r.mu.Unlock()
		r.wg.Done()
	}()
	for {
		msg, err := client.Recv()
		if err != nil {
			return
		}
		if err := client.Send(pc.route(msg)); err != nil {
			return
		}
	}
}

func (pc *proxyConn) closeUpstreams() {
	var ups []transport.Conn
	for _, up := range pc.upstreams {
		ups = append(ups, up)
	}
	for _, up := range ups {
		_ = up.Close()
	}
}

// upstream returns the cached connection to addr, dialing on first
// use.
func (pc *proxyConn) upstream(addr string) (transport.Conn, error) {
	if up, ok := pc.upstreams[addr]; ok {
		return up, nil
	}
	nc, err := net.DialTimeout("tcp", addr, pc.r.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	up := transport.NewTCP(nc)
	pc.upstreams[addr] = up
	return up, nil
}

// roundTrip forwards msg to the shard at addr and returns its
// response. Any IO failure poisons the cached upstream (a fresh dial
// happens on the next attempt) and marks the shard dead.
func (pc *proxyConn) roundTrip(addr string, msg []byte) ([]byte, error) {
	up, err := pc.upstream(addr)
	if err != nil {
		pc.r.markDead(addr)
		return nil, err
	}
	if err := up.Send(msg); err != nil {
		pc.dropUpstream(addr)
		return nil, err
	}
	resp, err := up.Recv()
	if err != nil {
		pc.dropUpstream(addr)
		return nil, err
	}
	return resp, nil
}

func (pc *proxyConn) dropUpstream(addr string) {
	if up, ok := pc.upstreams[addr]; ok {
		_ = up.Close()
		delete(pc.upstreams, addr)
	}
	pc.r.markDead(addr)
}

// route dispatches one framed request. Every path returns a framed
// response — the router never leaves a client request unanswered, so
// a killed shard surfaces as a typed error, not a hang.
func (pc *proxyConn) route(msg []byte) []byte {
	if len(msg) < 1 {
		return wire.ErrResponse(fmt.Errorf("router: empty request"))
	}
	op, body := msg[0], msg[1:]
	switch op {
	case wire.OpHello:
		return pc.routeHello(body)
	case wire.OpAttach:
		return pc.routeAttach(msg, body)
	case wire.OpStats:
		id, err := wire.ParseSession(body)
		if err != nil {
			return wire.ErrResponse(err)
		}
		if id == 0 {
			return pc.mergedStats()
		}
		return pc.routeByID(id, msg)
	case wire.OpDrawS, wire.OpDrawR:
		id, _, err := wire.ParseSessionN(body)
		if err != nil {
			return wire.ErrResponse(err)
		}
		return pc.routeByID(id, msg)
	case wire.OpClose:
		id, err := wire.ParseSession(body)
		if err != nil {
			return wire.ErrResponse(err)
		}
		return pc.routeByID(id, msg)
	default:
		return wire.ErrResponse(fmt.Errorf("router: unknown op 0x%02x", op))
	}
}

// routeHello places a new session: hash the routing token onto the
// ring, walk the candidate sequence past draining or dead shards, and
// cache the winning placement for reconnects.
func (pc *proxyConn) routeHello(body []byte) []byte {
	req, err := wire.ParseHello(body)
	if err != nil {
		return wire.ErrResponse(err)
	}
	if req.SessionToken == "" {
		tok, err := newRouteToken()
		if err != nil {
			return wire.ErrResponse(err)
		}
		req.SessionToken = tok
	}
	frame, err := wire.HelloBody(req)
	if err != nil {
		return wire.ErrResponse(err)
	}
	fwd := append([]byte{wire.OpHello}, frame...)
	first := true
	for _, addr := range pc.r.placement(req.SessionToken) {
		if !first {
			pc.r.mRetries.Inc()
		}
		first = false
		resp, err := pc.roundTrip(addr, fwd)
		if err != nil {
			continue
		}
		if len(resp) >= 1 && resp[0] == wire.StatusErrDraining {
			// The shard drained between our last probe and now; keep it
			// routable for its existing leases but stop placing there.
			pc.r.setState(addr, shardDraining, 0, false)
			continue
		}
		if len(resp) >= 1 && resp[0] == wire.StatusOK {
			pc.r.recordToken(req.SessionToken, addr)
			pc.r.mPlacements.Inc()
		}
		return resp
	}
	return noShards()
}

// routeAttach forwards an ATTACH. With a session token it is a
// reconnect: try the cached placement, then every routable shard —
// the session lives on exactly one, and a restarted shard answers
// with a typed lease error rather than silence. Without a token it is
// a same-fleet second party joining by id.
func (pc *proxyConn) routeAttach(msg, body []byte) []byte {
	var req wire.AttachReq
	if err := json.Unmarshal(body, &req); err != nil {
		return wire.ErrResponse(fmt.Errorf("router: bad attach: %w", err))
	}
	if req.SessionToken == "" {
		return pc.routeByID(req.Session, msg)
	}
	var lastLease []byte
	for _, addr := range pc.r.reattachCandidates(req.SessionToken) {
		resp, err := pc.roundTrip(addr, msg)
		if err != nil {
			continue
		}
		if len(resp) >= 1 && resp[0] == wire.StatusErrLease {
			lastLease = resp
			continue
		}
		if len(resp) >= 1 && resp[0] == wire.StatusOK {
			pc.r.recordToken(req.SessionToken, addr)
		}
		return resp
	}
	pc.r.dropToken(req.SessionToken)
	pc.r.mLeaseErrs.Inc()
	if lastLease != nil {
		return lastLease
	}
	return wire.ErrResponse(fmt.Errorf("%w: no shard holds that session", wire.ErrLeaseExpired))
}

// routeByID forwards an id-scoped request to the shard encoded in the
// id's high bits. A dead or unknown shard yields a typed lease error
// immediately.
func (pc *proxyConn) routeByID(id uint64, msg []byte) []byte {
	shardID := wire.ShardOf(id)
	addr, ok := pc.r.addrForShard(shardID)
	if !ok {
		pc.r.mLeaseErrs.Inc()
		return wire.ErrResponse(fmt.Errorf("%w: shard %d is gone", wire.ErrLeaseExpired, shardID))
	}
	resp, err := pc.roundTrip(addr, msg)
	if err != nil {
		pc.r.mLeaseErrs.Inc()
		return wire.ErrResponse(fmt.Errorf("%w: shard %d went away mid-request", wire.ErrLeaseExpired, shardID))
	}
	return resp
}

// mergedStats fans a STATS(0) out to every routable shard and merges
// the dumps into one fleet-wide view (Shard 0, Backends from the
// first responder, counters summed, sessions concatenated).
func (pc *proxyConn) mergedStats() []byte {
	var merged wire.StatsDump
	gotAny := false
	for _, view := range pc.r.Shards() {
		if view.State == "dead" {
			continue
		}
		resp, err := pc.roundTrip(view.Addr, wire.SessionReq(wire.OpStats, 0))
		if err != nil {
			continue
		}
		if len(resp) < 1 || resp[0] != wire.StatusOK {
			continue
		}
		var dump wire.StatsDump
		if err := unmarshalDump(resp[1:], &dump); err != nil {
			continue
		}
		if !gotAny {
			merged.Backends = dump.Backends
			gotAny = true
		}
		merged.Sessions += dump.Sessions
		merged.SessionsOpened += dump.SessionsOpened
		merged.SessionsClosed += dump.SessionsClosed
		merged.SessionsExpired += dump.SessionsExpired
		merged.QuotaSheds += dump.QuotaSheds
		merged.DrySheds += dump.DrySheds
		merged.MaxSessions += dump.MaxSessions
		merged.PerSession = append(merged.PerSession, dump.PerSession...)
	}
	if !gotAny {
		return noShards()
	}
	body, err := json.Marshal(merged)
	if err != nil {
		return wire.ErrResponse(err)
	}
	return wire.OKResponse(body)
}

func unmarshalDump(body []byte, dump *wire.StatsDump) error {
	return json.Unmarshal(body, dump)
}
