package router

import (
	"encoding/json"
	"net/http"
)

// AdminHandler returns the operator-facing HTTP surface for a running
// fleet router. Like the shard admin port it carries no capabilities;
// bind it to loopback or an internal scrape network.
//
// Routes:
//
//	/metrics       Prometheus text exposition of the router registry
//	/healthz       200 "ok" when any shard is live; 503 otherwise
//	/shards        JSON fleet membership with per-shard routing state
//	/shards/add    POST ?addr=host:port — live-add a shard to the fleet
//	/shards/drain  POST ?addr=host:port — stop placing on a shard
func (r *Router) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.reg.WritePrometheus(w); err != nil {
			return
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if r.mShardsLive.Value() == 0 {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte("no live shards\n"))
			return
		}
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/shards", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Shards())
	})
	mux.HandleFunc("/shards/add", func(w http.ResponseWriter, req *http.Request) {
		addr, ok := shardAddr(w, req)
		if !ok {
			return
		}
		r.AddShard(addr)
		writeShardJSON(w, r, addr)
	})
	mux.HandleFunc("/shards/drain", func(w http.ResponseWriter, req *http.Request) {
		addr, ok := shardAddr(w, req)
		if !ok {
			return
		}
		if !r.DrainShard(addr) {
			http.Error(w, "unknown shard", http.StatusNotFound)
			return
		}
		writeShardJSON(w, r, addr)
	})
	return mux
}

func shardAddr(w http.ResponseWriter, req *http.Request) (string, bool) {
	if req.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return "", false
	}
	addr := req.URL.Query().Get("addr")
	if addr == "" {
		http.Error(w, "missing addr", http.StatusBadRequest)
		return "", false
	}
	return addr, true
}

func writeShardJSON(w http.ResponseWriter, r *Router, addr string) {
	w.Header().Set("Content-Type", "application/json")
	for _, view := range r.Shards() {
		if view.Addr == addr {
			json.NewEncoder(w).Encode(view)
			return
		}
	}
	json.NewEncoder(w).Encode(ShardView{Addr: addr, State: "dead"})
}
