// Package router is the dispenser fleet's front: a consistent-hash
// router that places new sessions (HELLOs) onto shard processes by
// their fleet-wide routing token and proxies every subsequent request
// to the owning shard, derived statelessly from the shard-scoped
// session id (wire.ShardOf). The router holds no session state — a
// shard is exactly a standalone otserv.Server — so it can restart
// without losing anything but its token-placement cache, which
// rebuilds lazily from reconnects.
package router

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ringEntry is one virtual node: a point on the hash circle owned by a
// shard address.
type ringEntry struct {
	hash uint64
	addr string
}

// ring is a consistent-hash circle over shard addresses. Virtual nodes
// smooth placement so the per-shard session balance stays within a
// small factor of even; removing one shard moves only that shard's
// arcs, so drain/add churn does not reshuffle the fleet.
type ring struct {
	entries []ringEntry
}

func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer. Raw FNV of short similar strings
// (addr#0, addr#1, ...) clusters on the circle badly enough to skew a
// 3-shard fleet past 2x; the finalizer spreads the virtual nodes to
// near-uniform arc lengths.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// buildRing places vnodes virtual nodes per address on the circle.
func buildRing(addrs []string, vnodes int) ring {
	if vnodes <= 0 {
		vnodes = 256
	}
	entries := make([]ringEntry, 0, len(addrs)*vnodes)
	for _, addr := range addrs {
		for i := 0; i < vnodes; i++ {
			entries = append(entries, ringEntry{hash: hashKey(addr + "#" + strconv.Itoa(i)), addr: addr})
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].hash != entries[j].hash {
			return entries[i].hash < entries[j].hash
		}
		return entries[i].addr < entries[j].addr
	})
	return ring{entries: entries}
}

// lookup returns the address owning key, or "" on an empty ring.
func (rg ring) lookup(key string) string {
	if len(rg.entries) == 0 {
		return ""
	}
	h := hashKey(key)
	i := sort.Search(len(rg.entries), func(i int) bool { return rg.entries[i].hash >= h })
	if i == len(rg.entries) {
		i = 0
	}
	return rg.entries[i].addr
}

// sequence returns the owner of key followed by every other distinct
// address in circle order — the retry order for placement when the
// owner is draining or dead.
func (rg ring) sequence(key string) []string {
	if len(rg.entries) == 0 {
		return nil
	}
	h := hashKey(key)
	start := sort.Search(len(rg.entries), func(i int) bool { return rg.entries[i].hash >= h })
	if start == len(rg.entries) {
		start = 0
	}
	seen := make(map[string]bool)
	var out []string
	for i := 0; i < len(rg.entries); i++ {
		addr := rg.entries[(start+i)%len(rg.entries)].addr
		if !seen[addr] {
			seen[addr] = true
			out = append(out, addr)
		}
	}
	return out
}
