// Package mpcot builds t-point correlated OT from t single-point
// executions using the regular-index construction of Ferret: the output
// range [0, n) is split into t consecutive buckets, each covered by one
// GGM tree of ℓ leaves, and the receiver punctures one secret position
// per bucket. The sparse vector u across all buckets is the "noise" the
// LPN encoding compresses (Figure 3(a), step 1).
package mpcot

import (
	"crypto/rand"
	"fmt"
	"math/big"

	"ironman/internal/aesprg"
	"ironman/internal/block"
	"ironman/internal/cot"
	"ironman/internal/prg"
	"ironman/internal/spcot"
	"ironman/internal/transport"
)

// Config describes one MPCOT execution.
type Config struct {
	N      int // output length
	Leaves int // GGM tree size ℓ (power of two)
	T      int // number of trees / noise positions
}

// Validate checks the basic shape of the configuration. t·ℓ may be
// smaller than n (two of the paper's Table 4 rows have this): positions
// beyond t·ℓ then carry no noise — u, w and v are zero there, which
// only shortens the effective noise support, never breaks the output
// correlation.
func (c Config) Validate() error {
	if c.N < 1 || c.Leaves < 2 || c.T < 1 {
		return fmt.Errorf("mpcot: bad config %+v", c)
	}
	return nil
}

// Covered returns how many of the n output positions can carry noise.
func (c Config) Covered() int {
	if c.T*c.Leaves < c.N {
		return c.T * c.Leaves
	}
	return c.N
}

// COTBudget is the number of COT correlations one execution consumes.
func (c Config) COTBudget() int { return c.T * spcot.COTBudget(c.Leaves) }

// bucketSpan returns the half-open output range [lo, hi) of bucket i,
// clamped to [0, N): buckets at or beyond N come back empty (their
// trees still run for protocol symmetry but contribute no output).
func (c Config) bucketSpan(i int) (lo, hi int) {
	lo = i * c.Leaves
	hi = lo + c.Leaves
	if hi > c.N {
		hi = c.N
	}
	if lo > c.N {
		lo = c.N
	}
	return lo, hi
}

// RandomAlphas draws one uniformly random punctured position per bucket
// (within the part of the bucket that lies inside [0, N)).
func (c Config) RandomAlphas() ([]int, error) {
	alphas := make([]int, c.T)
	for i := range alphas {
		lo, hi := c.bucketSpan(i)
		if hi <= lo {
			// Bucket entirely beyond N: the tree is still expanded for
			// protocol symmetry; puncture anywhere.
			lo, hi = i*c.Leaves, i*c.Leaves+c.Leaves
		}
		v, err := rand.Int(rand.Reader, big.NewInt(int64(hi-lo)))
		if err != nil {
			return nil, err
		}
		alphas[i] = lo + int(v.Int64())
	}
	return alphas, nil
}

// Send runs the sender side: t SPCOT executions whose leaves are
// concatenated and truncated to n blocks (the vector w).
func Send(conn transport.Conn, pool *cot.SenderPool, h *aesprg.Hash, p prg.PRG, cfg Config) ([]block.Block, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := make([]block.Block, cfg.N)
	for i := 0; i < cfg.T; i++ {
		leaves, err := spcot.Send(conn, pool, h, p, cfg.Leaves)
		if err != nil {
			return nil, fmt.Errorf("mpcot tree %d: %w", i, err)
		}
		lo, hi := cfg.bucketSpan(i)
		if hi > lo {
			copy(w[lo:hi], leaves[:hi-lo])
		}
	}
	return w, nil
}

// Receive runs the receiver side with one punctured position per
// bucket. It returns v (length n); together with the one-hot positions
// alphas the outputs satisfy w = v ⊕ u·Δ with u = Σ e_{alpha_i}.
// Alphas beyond N are allowed (their tree output is discarded) but each
// alphas[i] must fall inside bucket i.
func Receive(conn transport.Conn, pool *cot.ReceiverPool, h *aesprg.Hash, p prg.PRG, cfg Config, alphas []int) ([]block.Block, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(alphas) != cfg.T {
		return nil, fmt.Errorf("mpcot: need %d alphas, got %d", cfg.T, len(alphas))
	}
	// Validate all positions before any traffic, so a bad input fails
	// cleanly rather than desynchronizing the two parties.
	for i, a := range alphas {
		lo := i * cfg.Leaves
		if a < lo || a >= lo+cfg.Leaves {
			return nil, fmt.Errorf("mpcot: alpha %d outside bucket %d", a, i)
		}
	}
	v := make([]block.Block, cfg.N)
	for i := 0; i < cfg.T; i++ {
		lo := i * cfg.Leaves
		leaves, err := spcot.Receive(conn, pool, h, p, cfg.Leaves, alphas[i]-lo)
		if err != nil {
			return nil, fmt.Errorf("mpcot tree %d: %w", i, err)
		}
		_, hi := cfg.bucketSpan(i)
		if hi > lo {
			copy(v[lo:hi], leaves)
		}
	}
	return v, nil
}
