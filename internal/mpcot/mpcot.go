// Package mpcot builds t-point correlated OT from t single-point
// executions using the regular-index construction of Ferret: the output
// range [0, n) is split into t consecutive buckets, each covered by one
// GGM tree of ℓ leaves, and the receiver punctures one secret position
// per bucket. The sparse vector u across all buckets is the "noise" the
// LPN encoding compresses (Figure 3(a), step 1).
package mpcot

import (
	"crypto/rand"
	"fmt"
	"math/big"

	"ironman/internal/aesprg"
	"ironman/internal/block"
	"ironman/internal/cot"
	"ironman/internal/obs"
	"ironman/internal/parallel"
	"ironman/internal/prg"
	"ironman/internal/spcot"
	"ironman/internal/transport"
)

// Config describes one MPCOT execution.
type Config struct {
	N      int // output length
	Leaves int // GGM tree size ℓ (power of two)
	T      int // number of trees / noise positions

	// Trace, when non-nil, records phase spans: "spcot.expand" /
	// "spcot.reconstruct" per worker (threads TID+1+shard) and the
	// sequential "spcot.flights" wire phase on thread TID. Tracing
	// observes local compute only — the wire transcript is untouched
	// (guarded by the ferret determinism tests).
	Trace *obs.Tracer
	// TID is the trace thread id of the endpoint driving this
	// execution (its workers get TID+1+shard).
	TID int
}

// Validate checks the basic shape of the configuration. t·ℓ may be
// smaller than n (two of the paper's Table 4 rows have this): positions
// beyond t·ℓ then carry no noise — u, w and v are zero there, which
// only shortens the effective noise support, never breaks the output
// correlation.
func (c Config) Validate() error {
	if c.N < 1 || c.Leaves < 2 || c.T < 1 {
		return fmt.Errorf("mpcot: bad config %+v", c)
	}
	return nil
}

// Covered returns how many of the n output positions can carry noise.
func (c Config) Covered() int {
	if c.T*c.Leaves < c.N {
		return c.T * c.Leaves
	}
	return c.N
}

// COTBudget is the number of COT correlations one execution consumes.
func (c Config) COTBudget() int { return c.T * spcot.COTBudget(c.Leaves) }

// bucketSpan returns the half-open output range [lo, hi) of bucket i,
// clamped to [0, N): buckets at or beyond N come back empty (their
// trees still run for protocol symmetry but contribute no output).
func (c Config) bucketSpan(i int) (lo, hi int) {
	lo = i * c.Leaves
	hi = lo + c.Leaves
	if hi > c.N {
		hi = c.N
	}
	if lo > c.N {
		lo = c.N
	}
	return lo, hi
}

// noiseSpan is the half-open range a bucket's punctured position is
// drawn from: the part of the bucket inside [0, N), or — for a bucket
// entirely beyond N, whose tree still runs for protocol symmetry — the
// whole bucket. Shared by RandomAlphas and AlphasFrom so the two draw
// paths can never drift apart in distribution.
func (c Config) noiseSpan(i int) (lo, hi int) {
	lo, hi = c.bucketSpan(i)
	if hi <= lo {
		lo, hi = i*c.Leaves, i*c.Leaves+c.Leaves
	}
	return lo, hi
}

// RandomAlphas draws one uniformly random punctured position per bucket
// (within the part of the bucket that lies inside [0, N)).
func (c Config) RandomAlphas() ([]int, error) {
	alphas := make([]int, c.T)
	for i := range alphas {
		lo, hi := c.noiseSpan(i)
		//ironman:allow(randsrc) the receiver's punctured positions are its secret noise and must be fresh system entropy; the seeded variant is AlphasFrom
		v, err := rand.Int(rand.Reader, big.NewInt(int64(hi-lo)))
		if err != nil {
			return nil, err
		}
		alphas[i] = lo + int(v.Int64())
	}
	return alphas, nil
}

// AlphasFrom is RandomAlphas with the randomness drawn from a
// deterministic stream instead of crypto/rand — the determinism hook
// behind ferret.Options.Seed (tests and benchmarks only; a punctured
// position derived from a known seed is not secret).
func (c Config) AlphasFrom(s *aesprg.Stream) []int {
	alphas := make([]int, c.T)
	for i := range alphas {
		lo, hi := c.noiseSpan(i)
		alphas[i] = lo + int(s.Uint32n(uint32(hi-lo)))
	}
	return alphas
}

// RandomSeeds draws one fresh GGM root seed per bucket from
// crypto/rand.
func (c Config) RandomSeeds() ([]block.Block, error) {
	buf := make([]byte, c.T*block.Size)
	//ironman:allow(randsrc) fresh GGM root seeds per extend are protocol randomness by design; deterministic runs pass explicit seeds via SendWith/RecvWith
	if _, err := rand.Read(buf); err != nil {
		return nil, err
	}
	return block.SliceFromBytes(buf), nil
}

// Send runs the sender side: t SPCOT executions whose leaves are
// concatenated and truncated to n blocks (the vector w). Sequential
// single-worker variant of SendSeeded with fresh random seeds.
func Send(conn transport.Conn, pool *cot.SenderPool, h *aesprg.Hash, p prg.PRG, cfg Config) ([]block.Block, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	seeds, err := cfg.RandomSeeds()
	if err != nil {
		return nil, err
	}
	return SendSeeded(conn, pool, h, p, cfg, seeds, 1)
}

// SendSeeded is the two-phase sender: phase one expands all t GGM trees
// locally (concurrently across up to `workers` goroutines — the trees
// are independent, which is what makes the paper's 4-ary construction
// embarrassingly parallel across buckets); phase two runs the
// puncturing flights strictly sequentially in bucket order, exactly as
// the sequential path does, so the wire transcript is byte-identical
// for every worker count. seeds supplies one GGM root per bucket
// (deterministic runs pass a derived stream; Send draws fresh ones).
func SendSeeded(conn transport.Conn, pool *cot.SenderPool, h *aesprg.Hash, p prg.PRG, cfg Config, seeds []block.Block, workers int) ([]block.Block, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(seeds) != cfg.T {
		return nil, fmt.Errorf("mpcot: need %d seeds, got %d", cfg.T, len(seeds))
	}
	// Phase 1 (local, parallel): expand every bucket's tree and place
	// its leaves. Buckets write disjoint ranges of w.
	expand := cfg.Trace.Span("spcot.expand", "extend", cfg.TID)
	w := make([]block.Block, cfg.N)
	trees := make([]*spcot.SenderTree, cfg.T)
	parallel.ShardIndexed(workers, cfg.T, func(shard, lo, hi int) {
		sp := cfg.Trace.Span("spcot.expand", "extend.worker", cfg.TID+1+shard)
		for i := lo; i < hi; i++ {
			trees[i] = spcot.ExpandSender(p, cfg.Leaves, seeds[i])
			blo, bhi := cfg.bucketSpan(i)
			if bhi > blo {
				copy(w[blo:bhi], trees[i].Leaves()[:bhi-blo])
			}
			// The flights need only sums/gadget/xor; holding every tree's
			// leaves until phase 2 finishes would double peak memory.
			trees[i].ReleaseLeaves()
		}
		if sp.Live() {
			sp.EndArgs(map[string]any{"trees": hi - lo})
		}
	})
	if expand.Live() {
		expand.EndArgs(map[string]any{"trees": cfg.T, "leaves": cfg.Leaves})
	}
	// Phase 2 (wire, sequential): the puncturing flights consume pool
	// correlations in bucket order — the cursor is part of the
	// transcript, so this phase never reorders.
	flights := cfg.Trace.Span("spcot.flights", "extend", cfg.TID)
	for i := 0; i < cfg.T; i++ {
		if err := trees[i].SendFlights(conn, pool, h); err != nil {
			return nil, fmt.Errorf("mpcot tree %d: %w", i, err)
		}
	}
	if flights.Live() {
		flights.EndArgs(map[string]any{"trees": cfg.T})
	}
	return w, nil
}

// Receive runs the receiver side with one punctured position per
// bucket. It returns v (length n); together with the one-hot positions
// alphas the outputs satisfy w = v ⊕ u·Δ with u = Σ e_{alpha_i}.
// Alphas beyond N are allowed (their tree output is discarded) but each
// alphas[i] must fall inside bucket i.
func Receive(conn transport.Conn, pool *cot.ReceiverPool, h *aesprg.Hash, p prg.PRG, cfg Config, alphas []int) ([]block.Block, error) {
	return ReceiveWorkers(conn, pool, h, p, cfg, alphas, 1)
}

// ReceiveWorkers is the two-phase receiver: phase one runs the
// puncturing flights strictly sequentially in bucket order (matching
// SendSeeded's wire phase); phase two reconstructs the t punctured
// trees locally, concurrently across up to `workers` goroutines. The
// wire transcript is byte-identical for every worker count.
func ReceiveWorkers(conn transport.Conn, pool *cot.ReceiverPool, h *aesprg.Hash, p prg.PRG, cfg Config, alphas []int, workers int) ([]block.Block, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(alphas) != cfg.T {
		return nil, fmt.Errorf("mpcot: need %d alphas, got %d", cfg.T, len(alphas))
	}
	// Validate all positions before any traffic, so a bad input fails
	// cleanly rather than desynchronizing the two parties.
	for i, a := range alphas {
		lo := i * cfg.Leaves
		if a < lo || a >= lo+cfg.Leaves {
			return nil, fmt.Errorf("mpcot: alpha %d outside bucket %d", a, i)
		}
	}
	// Phase 1 (wire, sequential).
	fl := cfg.Trace.Span("spcot.flights", "extend", cfg.TID)
	flights := make([]*spcot.ReceiverFlights, cfg.T)
	for i := 0; i < cfg.T; i++ {
		lo := i * cfg.Leaves
		f, err := spcot.ReceiveFlights(conn, pool, h, p, cfg.Leaves, alphas[i]-lo)
		if err != nil {
			return nil, fmt.Errorf("mpcot tree %d: %w", i, err)
		}
		flights[i] = f
	}
	if fl.Live() {
		fl.EndArgs(map[string]any{"trees": cfg.T})
	}
	// Phase 2 (local, parallel): reconstruct every bucket's punctured
	// tree. Buckets write disjoint ranges of v.
	reco := cfg.Trace.Span("spcot.reconstruct", "extend", cfg.TID)
	v := make([]block.Block, cfg.N)
	parallel.ShardIndexed(workers, cfg.T, func(shard, lo, hi int) {
		sp := cfg.Trace.Span("spcot.reconstruct", "extend.worker", cfg.TID+1+shard)
		for i := lo; i < hi; i++ {
			leaves := flights[i].Reconstruct(p)
			blo, bhi := cfg.bucketSpan(i)
			if bhi > blo {
				copy(v[blo:bhi], leaves[:bhi-blo])
			}
		}
		if sp.Live() {
			sp.EndArgs(map[string]any{"trees": hi - lo})
		}
	})
	if reco.Live() {
		reco.EndArgs(map[string]any{"trees": cfg.T, "leaves": cfg.Leaves})
	}
	return v, nil
}
