package mpcot

import (
	"testing"

	"ironman/internal/aesprg"
	"ironman/internal/block"
	"ironman/internal/cot"
	"ironman/internal/prg"
	"ironman/internal/transport"
)

func run(t *testing.T, cfg Config, alphas []int) (block.Block, []block.Block, []block.Block) {
	t.Helper()
	p := prg.New(prg.ChaCha8, 4)
	sp, rp, err := cot.RandomPools(cfg.COTBudget())
	if err != nil {
		t.Fatal(err)
	}
	h := aesprg.NewHash()
	a, b := transport.Pipe()
	type sres struct {
		w   []block.Block
		err error
	}
	ch := make(chan sres, 1)
	go func() {
		w, err := Send(a, sp, h, p, cfg)
		ch <- sres{w, err}
	}()
	v, err := Receive(b, rp, h, p, cfg, alphas)
	if err != nil {
		t.Fatal(err)
	}
	s := <-ch
	if s.err != nil {
		t.Fatal(s.err)
	}
	return sp.Delta, s.w, v
}

// checkMulti verifies w = v ⊕ u·Δ with u the indicator of alphas.
func checkMulti(t *testing.T, delta block.Block, w, v []block.Block, alphas []int) {
	t.Helper()
	isAlpha := make(map[int]bool, len(alphas))
	for _, a := range alphas {
		isAlpha[a] = true
	}
	for i := range w {
		want := v[i]
		if isAlpha[i] {
			want = want.Xor(delta)
		}
		if w[i] != want {
			t.Fatalf("relation broken at %d", i)
		}
	}
}

func TestExactCover(t *testing.T) {
	cfg := Config{N: 64, Leaves: 16, T: 4}
	alphas := []int{3, 16, 40, 63}
	delta, w, v := run(t, cfg, alphas)
	checkMulti(t, delta, w, v, alphas)
}

// TestWorkersMatchSequential: the two-phase SendSeeded/ReceiveWorkers
// path produces the same w/v as the sequential wrappers for any worker
// count, given identical seeds, alphas, and pool contents.
func TestWorkersMatchSequential(t *testing.T) {
	cfg := Config{N: 100, Leaves: 16, T: 8}
	p := prg.New(prg.ChaCha8, 4)
	h := aesprg.NewHash()
	alphas := []int{3, 16, 40, 63, 64, 86, 96, 112}
	seeds := make([]block.Block, cfg.T)
	for i := range seeds {
		seeds[i] = block.New(uint64(i)+1, 77)
	}
	delta := block.New(5, 9)
	runOnce := func(workers int) ([]block.Block, []block.Block) {
		t.Helper()
		sp, rp, err := cot.PoolsFromStream(aesprg.NewStream(block.New(8, 8)), delta, cfg.COTBudget())
		if err != nil {
			t.Fatal(err)
		}
		a, b := transport.Pipe()
		type sres struct {
			w   []block.Block
			err error
		}
		ch := make(chan sres, 1)
		go func() {
			w, err := SendSeeded(a, sp, h, p, cfg, seeds, workers)
			ch <- sres{w, err}
		}()
		v, err := ReceiveWorkers(b, rp, h, p, cfg, alphas, workers)
		if err != nil {
			t.Fatal(err)
		}
		s := <-ch
		if s.err != nil {
			t.Fatal(s.err)
		}
		return s.w, v
	}
	wantW, wantV := runOnce(1)
	checkMulti(t, delta, wantW, wantV, []int{3, 16, 40, 63, 64, 86, 96})
	for _, workers := range []int{2, 4, 16} {
		gotW, gotV := runOnce(workers)
		if !block.Equal(gotW, wantW) || !block.Equal(gotV, wantV) {
			t.Fatalf("workers=%d: outputs differ from sequential", workers)
		}
	}
}

func TestTruncatedLastBucket(t *testing.T) {
	// n not a multiple of ℓ: the last tree is truncated, and an alpha in
	// the discarded tail is allowed (it contributes no noise inside n).
	cfg := Config{N: 50, Leaves: 16, T: 4}
	alphas := []int{0, 20, 47, 60} // 60 >= 50: outside the output range
	delta, w, v := run(t, cfg, alphas)
	if len(w) != 50 || len(v) != 50 {
		t.Fatalf("outputs must have length n")
	}
	checkMulti(t, delta, w, v, []int{0, 20, 47})
}

func TestBucketsEntirelyBeyondN(t *testing.T) {
	// Regression: the 2^20 Table 4 row has t·ℓ ≈ 1.6x n, so whole
	// buckets fall beyond the output range; Send must not slice past n.
	cfg := Config{N: 40, Leaves: 16, T: 4} // buckets 3,4 beyond 40
	alphas, err := cfg.RandomAlphas()
	if err != nil {
		t.Fatal(err)
	}
	delta, w, v := run(t, cfg, alphas)
	var inRange []int
	for _, a := range alphas {
		if a < cfg.N {
			inRange = append(inRange, a)
		}
	}
	checkMulti(t, delta, w, v, inRange)
}

func TestRandomAlphasInBuckets(t *testing.T) {
	cfg := Config{N: 100, Leaves: 32, T: 4}
	for trial := 0; trial < 20; trial++ {
		alphas, err := cfg.RandomAlphas()
		if err != nil {
			t.Fatal(err)
		}
		for i, a := range alphas {
			if a < i*cfg.Leaves || a >= (i+1)*cfg.Leaves {
				t.Fatalf("alpha %d outside bucket %d", a, i)
			}
			if a >= cfg.N && (i+1)*cfg.Leaves <= cfg.N {
				t.Fatalf("alpha %d beyond n in a fully-covered bucket", a)
			}
		}
	}
}

func TestCOTBudget(t *testing.T) {
	cfg := Config{N: 64, Leaves: 16, T: 4}
	if got := cfg.COTBudget(); got != 16 {
		t.Fatalf("COTBudget = %d, want 4*log2(16)=16", got)
	}
	p := prg.New(prg.ChaCha8, 4)
	sp, rp, _ := cot.RandomPools(cfg.COTBudget())
	h := aesprg.NewHash()
	a, b := transport.Pipe()
	go func() { _, _ = Send(a, sp, h, p, cfg) }()
	if _, err := Receive(b, rp, h, p, cfg, []int{0, 16, 32, 48}); err != nil {
		t.Fatal(err)
	}
	if sp.Used() != cfg.COTBudget() {
		t.Fatalf("consumed %d, want %d", sp.Used(), cfg.COTBudget())
	}
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{N: 0, Leaves: 16, T: 4},
		{N: 16, Leaves: 1, T: 16},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("config %+v should fail validation", cfg)
		}
	}
	// Partial cover is allowed (Table 4 rows 2^23, 2^24).
	part := Config{N: 100, Leaves: 16, T: 4}
	if err := part.Validate(); err != nil {
		t.Fatalf("partial cover should validate: %v", err)
	}
	if part.Covered() != 64 {
		t.Fatalf("Covered = %d, want 64", part.Covered())
	}
	p := prg.New(prg.ChaCha8, 4)
	sp, rp, _ := cot.RandomPools(64)
	h := aesprg.NewHash()
	a, _ := transport.Pipe()
	cfg := Config{N: 64, Leaves: 16, T: 4}
	if _, err := Receive(a, rp, h, p, cfg, []int{0, 0, 32, 48}); err == nil {
		t.Fatal("alpha outside its bucket must be rejected")
	}
	if _, err := Receive(a, rp, h, p, cfg, []int{0}); err == nil {
		t.Fatal("wrong alpha count must be rejected")
	}
	if _, err := Send(a, sp, h, p, Config{N: 0, Leaves: 2, T: 1}); err == nil {
		t.Fatal("bad config must be rejected in Send")
	}
}
