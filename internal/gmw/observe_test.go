package gmw

import (
	"testing"

	"ironman/internal/obs"
)

// TestObserveExchangeMetrics: registry counters must agree with the
// party's own ANDGates/Exchanges totals, wire accounting must be
// positive, and every exchange must leave a span.
func TestObserveExchangeMetrics(t *testing.T) {
	a, b := parties(t, 512)
	reg := obs.NewRegistry()
	tr := obs.NewTracer()
	a.Observe(reg, tr, obs.Labels("party", "a"))
	b.Observe(nil, nil, "") // peer unobserved: hooks must stay optional

	var outA, outB PackedShare
	run2(t, func() error {
		x := a.NewPublicPacked(make([]bool, 100))
		y := a.NewPrivatePacked(make([]bool, 100), true)
		var err error
		outA, err = a.AndPacked(x, y)
		return err
	}, func() error {
		x := b.NewPublicPacked(make([]bool, 100))
		y := b.NewPrivatePacked(make([]bool, 100), false)
		var err error
		outB, err = b.AndPacked(x, y)
		return err
	})
	_ = outA
	_ = outB

	ands := reg.Counter(obs.Name("ironman_gmw_and_gates_total", obs.Labels("party", "a"))).Value()
	exch := reg.Counter(obs.Name("ironman_gmw_exchanges_total", obs.Labels("party", "a"))).Value()
	wire := reg.Counter(obs.Name("ironman_gmw_wire_bytes_total", obs.Labels("party", "a"))).Value()
	if ands != uint64(a.ANDGates) || exch != uint64(a.Exchanges) {
		t.Fatalf("registry (%d ands, %d exch) disagrees with party (%d, %d)",
			ands, exch, a.ANDGates, a.Exchanges)
	}
	if ands != 100 || exch != 1 {
		t.Fatalf("expected 100 ANDs in 1 exchange, got %d in %d", ands, exch)
	}
	if wire == 0 {
		t.Fatal("wire byte counter did not move across an OT exchange")
	}

	spans := 0
	for _, e := range tr.Events() {
		if e.Name == "gmw.exchange" {
			spans++
			if e.Args["ands"] != 100 {
				t.Fatalf("span args wrong: %+v", e.Args)
			}
		}
	}
	if spans != 1 {
		t.Fatalf("got %d gmw.exchange spans, want 1", spans)
	}
}
