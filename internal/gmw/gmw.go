// Package gmw is a minimal two-party GMW engine over XOR-shared bits,
// the protocol layer PPML frameworks build their nonlinear functions on
// (§2.2 of the Ironman paper): comparisons, multiplexers and the other
// Boolean building blocks of ReLU/GELU evaluation all reduce to XOR
// (free) and AND gates, where every AND consumes oblivious transfers.
//
// An AND gate on shares x = x_A ⊕ x_B, y = y_A ⊕ y_B needs the two
// cross terms x_A·y_B and x_B·y_A. Each cross term costs one 1-of-2
// chosen OT — and the two terms need OTs in *opposite directions*,
// which is exactly the role-switching requirement that motivates the
// paper's unified sender/receiver architecture (§5.2): each party runs
// one OT-extension instance as sender and one as receiver.
package gmw

import (
	"crypto/rand"
	"fmt"

	"ironman/internal/aesprg"
	"ironman/internal/block"
	"ironman/internal/cot"
	"ironman/internal/transport"
)

// Party is one side of a GMW evaluation. Each party holds a COT pool
// for each direction: Out (this party is OT sender) and In (receiver).
type Party struct {
	conn transport.Conn
	hash *aesprg.Hash
	// Out: correlations where this party is the OT sender.
	Out *cot.SenderPool
	// In: correlations where this party is the OT receiver.
	In *cot.ReceiverPool
	// first breaks the symmetry of message ordering: exactly one party
	// must have it set.
	first bool

	ANDGates int // consumed AND gates (2 OTs each)
}

// NewParty assembles a GMW party from its two correlation pools.
// Exactly one of the two parties must set first=true (by convention
// the protocol initiator).
func NewParty(conn transport.Conn, out *cot.SenderPool, in *cot.ReceiverPool, first bool) *Party {
	return &Party{conn: conn, hash: aesprg.NewHash(), Out: out, In: in, first: first}
}

// Share is an XOR-shared bit vector: each party holds one of these and
// the logical value is the element-wise XOR.
type Share []bool

// NewPublic builds a share of a public constant: the first party holds
// the value, the other zero.
func (p *Party) NewPublic(bits []bool) Share {
	s := make(Share, len(bits))
	if p.first {
		copy(s, bits)
	}
	return s
}

// NewPrivate builds a share of this party's private input: this party
// holds the bits, the peer's share is zero. Both parties must call it
// in matching order, with owner telling whose input it is.
func (p *Party) NewPrivate(bits []bool, mine bool) Share {
	s := make(Share, len(bits))
	if mine {
		copy(s, bits)
	}
	return s
}

// Xor is a free local gate.
func Xor(a, b Share) Share {
	if len(a) != len(b) {
		panic("gmw: Xor length mismatch")
	}
	out := make(Share, len(a))
	for i := range a {
		out[i] = a[i] != b[i]
	}
	return out
}

// Not flips a shared bit: only the first party flips its share.
func (p *Party) Not(a Share) Share {
	out := make(Share, len(a))
	copy(out, a)
	if p.first {
		for i := range out {
			out[i] = !out[i]
		}
	}
	return out
}

// bitBlock embeds a bit in a block's LSB.
func bitBlock(b bool) block.Block {
	if b {
		return block.New(1, 0)
	}
	return block.Block{}
}

// And evaluates element-wise AND over shares, consuming two chosen OTs
// per element (one in each direction). Both parties call And with
// their share; the engine serializes the two OT passes by the `first`
// flag so the message flights interleave deterministically.
func (p *Party) And(a, b Share) (Share, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("gmw: And length mismatch")
	}
	n := len(a)
	out := make(Share, n)
	// Local term a_i·b_i.
	for i := range out {
		out[i] = a[i] && b[i]
	}

	send := func() error {
		// This party is OT sender for the cross term (my a) x (peer b):
		// messages (s, s ⊕ a_i) under a fresh secret mask s; my share
		// gains s.
		msgs := make([][2]block.Block, n)
		masks := make([]bool, n)
		buf := make([]byte, (n+7)/8)
		if _, err := rand.Read(buf); err != nil {
			return err
		}
		for i := range msgs {
			mbit := buf[i/8]>>uint(i%8)&1 == 1
			masks[i] = mbit
			msgs[i][0] = bitBlock(mbit)
			msgs[i][1] = bitBlock(mbit != a[i])
		}
		if err := cot.SendChosen(p.conn, p.Out, p.hash, msgs); err != nil {
			return err
		}
		for i := range out {
			out[i] = out[i] != masks[i]
		}
		return nil
	}
	recv := func() error {
		// This party is OT receiver with choice bits b: learns s ⊕ a·b.
		got, err := cot.ReceiveChosen(p.conn, p.In, p.hash, b)
		if err != nil {
			return err
		}
		for i := range out {
			out[i] = out[i] != (got[i].Bit(0) == 1)
		}
		return nil
	}

	var err error
	if p.first {
		if err = send(); err == nil {
			err = recv()
		}
	} else {
		if err = recv(); err == nil {
			err = send()
		}
	}
	if err != nil {
		return nil, err
	}
	p.ANDGates += n
	return out, nil
}

// Reveal opens a share to both parties.
func (p *Party) Reveal(a Share) ([]bool, error) {
	if p.first {
		if err := transport.SendBits(p.conn, a); err != nil {
			return nil, err
		}
		peer, err := transport.RecvBits(p.conn, len(a))
		if err != nil {
			return nil, err
		}
		return Xor(a, peer), nil
	}
	peer, err := transport.RecvBits(p.conn, len(a))
	if err != nil {
		return nil, err
	}
	if err := transport.SendBits(p.conn, a); err != nil {
		return nil, err
	}
	return Xor(a, peer), nil
}

// GreaterThan compares two shared unsigned integers given LSB-first bit
// shares, returning a 1-bit share of (x > y). The ripple comparator
// costs 2 AND gates per bit:
//
//	gt_i = (x_i ∧ ¬y_i) ⊕ (¬(x_i⊕y_i) ∧ gt_{i-1})
func (p *Party) GreaterThan(x, y Share) (Share, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("gmw: GreaterThan length mismatch")
	}
	gt := make(Share, 1)
	for i := 0; i < len(x); i++ {
		xi := Share{x[i]}
		yi := Share{y[i]}
		t1, err := p.And(xi, p.Not(yi))
		if err != nil {
			return nil, err
		}
		eq := p.Not(Xor(xi, yi))
		t2, err := p.And(eq, gt)
		if err != nil {
			return nil, err
		}
		gt = Xor(t1, t2)
	}
	return gt, nil
}

// Mux selects bit-wise between two shared vectors by a shared condition
// bit: out = c ? a : b = b ⊕ c·(a⊕b). Costs len(a) AND gates. This is
// the multiplexer CrypTFlow2 builds ReLU from (§5.2 mentions its
// two-directional OT use).
func (p *Party) Mux(c Share, a, b Share) (Share, error) {
	if len(c) != 1 || len(a) != len(b) {
		return nil, fmt.Errorf("gmw: Mux shape mismatch")
	}
	d := Xor(a, b)
	cs := make(Share, len(a))
	for i := range cs {
		cs[i] = c[0]
	}
	t, err := p.And(cs, d)
	if err != nil {
		return nil, err
	}
	return Xor(b, t), nil
}

// Uint64Bits returns the LSB-first bit decomposition of v.
func Uint64Bits(v uint64, width int) []bool {
	bits := make([]bool, width)
	for i := range bits {
		bits[i] = v>>uint(i)&1 == 1
	}
	return bits
}

// BitsUint64 re-composes LSB-first bits.
func BitsUint64(bits []bool) uint64 {
	var v uint64
	for i, b := range bits {
		if b {
			v |= 1 << uint(i)
		}
	}
	return v
}
