// Package gmw is a bitsliced two-party GMW engine over XOR-shared bits,
// the protocol layer PPML frameworks build their nonlinear functions on
// (§2.2 of the Ironman paper): comparisons, multiplexers and the other
// Boolean building blocks of ReLU/GELU evaluation all reduce to XOR
// (free) and AND gates, where every AND consumes oblivious transfers.
//
// An AND gate on shares x = x_A ⊕ x_B, y = y_A ⊕ y_B needs the two
// cross terms x_A·y_B and x_B·y_A. Each cross term costs one 1-of-2
// chosen OT — and the two terms need OTs in *opposite directions*,
// which is exactly the role-switching requirement that motivates the
// paper's unified sender/receiver architecture (§5.2): each party runs
// one OT-extension instance as sender and one as receiver.
//
// # Round model and level batching
//
// The engine is round-batched: every independent AND gate of a circuit
// level should be evaluated in ONE two-flight OT exchange. Shares come
// in two layouts — the legacy bool-vector Share, whose And gates ride
// full 128-bit OT payloads (cot.SendChosen), and the word-packed
// PackedShare, whose AndPacked/AndPackedMany gates ride bit-packed OT
// frames (cot.SendChosenBits, ~3 bits of wire per OT instead of ~33
// bytes). Multi-level circuits like GreaterThanVec are built as
// parallel-prefix networks so depth — and therefore network flights —
// is logarithmic in the operand width.
//
// Both parties must issue protocol calls (AndPacked, AndPackedMany,
// GreaterThanVec, MuxVec, ReLUVec, Reveal*) in matching order with
// matching shapes; the engine serializes each exchange's two OT passes
// by the negotiated first flag so the message flights interleave
// deterministically.
package gmw

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"

	"ironman/internal/aesprg"
	"ironman/internal/block"
	"ironman/internal/cot"
	"ironman/internal/obs"
	"ironman/internal/transport"
)

// ErrRoleConflict is returned by NewParty when the role handshake
// discovers both parties set (or both cleared) the first flag — a
// misconfiguration that would otherwise silently corrupt Not/NewPublic
// results or deadlock the AND-gate message interleaving.
var ErrRoleConflict = errors.New("gmw: role conflict")

// handshakeMagic tags the NewParty negotiation message.
const handshakeMagic = 'G'

// Party is one side of a GMW evaluation. Each party holds a COT pool
// for each direction: Out (this party is OT sender) and In (receiver).
type Party struct {
	conn transport.Conn
	hash *aesprg.Hash
	// prg is the local mask source: seeded once from crypto/rand at
	// construction so the AND hot loop never syscalls.
	prg *aesprg.Stream
	// Out: correlations where this party is the OT sender.
	Out *cot.SenderPool
	// In: correlations where this party is the OT receiver.
	In *cot.ReceiverPool
	// first breaks the symmetry of message ordering: exactly one party
	// has it set (verified by the NewParty handshake).
	first bool

	ANDGates  int // consumed AND gates (2 OTs each)
	Exchanges int // batched AND exchanges (one two-flight OT round each)

	// Observability hooks (Observe); all nil-safe and absent by default.
	trace      *obs.Tracer
	tid        int
	mANDs      *obs.Counter // ironman_gmw_and_gates_total
	mExchanges *obs.Counter // ironman_gmw_exchanges_total
	mWire      *obs.Counter // ironman_gmw_wire_bytes_total
}

// Observe attaches a metrics registry and/or phase tracer to the party.
// Every subsequent AND exchange increments
// ironman_gmw_{and_gates,exchanges,wire_bytes}_total{labels} and records
// one "gmw.exchange" span (thread id 1 for the first party, 2 for the
// peer — the two lanes of a two-party timeline). labels is an
// obs.Labels-formatted set merged into every series; either argument
// may be nil. Call before the first gate; the hooks are not
// synchronized with in-flight exchanges.
func (p *Party) Observe(reg *obs.Registry, tr *obs.Tracer, labels string) {
	p.trace = tr
	p.tid = 2
	if p.first {
		p.tid = 1
	}
	p.mANDs = reg.Counter(obs.Name("ironman_gmw_and_gates_total", labels))
	p.mExchanges = reg.Counter(obs.Name("ironman_gmw_exchanges_total", labels))
	p.mWire = reg.Counter(obs.Name("ironman_gmw_wire_bytes_total", labels))
}

// observing reports whether any per-exchange instrumentation is live
// (the one branch the un-observed hot path pays).
func (p *Party) observing() bool { return p.trace.Enabled() || p.mWire != nil }

// noteExchange records one completed AND exchange of n gates against
// the attached instruments. preBytes is the conn's TotalBytes before
// the exchange; sp the span opened at its start.
func (p *Party) noteExchange(sp obs.Span, n int, preBytes int64) {
	wire := p.conn.Stats().TotalBytes() - preBytes
	p.mANDs.Add(uint64(n))
	p.mExchanges.Inc()
	if wire > 0 {
		p.mWire.Add(uint64(wire))
	}
	if sp.Live() {
		sp.EndArgs(map[string]any{"ands": n, "wire_bytes": wire})
	}
}

// NewParty assembles a GMW party from its two correlation pools and
// runs a one-round role handshake with the peer: exactly one of the
// two parties must set first=true (by convention the protocol
// initiator). If both or neither claim the role, both sides fail with
// ErrRoleConflict instead of silently computing wrong values.
func NewParty(conn transport.Conn, out *cot.SenderPool, in *cot.ReceiverPool, first bool) (*Party, error) {
	var seed [block.Size]byte
	if _, err := rand.Read(seed[:]); err != nil {
		return nil, err
	}
	return NewSeededParty(conn, out, in, first, block.FromBytes(seed[:]))
}

// NewSeededParty is NewParty with a caller-supplied mask-PRG seed
// instead of a crypto/rand draw, making the party's wire transcript a
// deterministic function of (pools, inputs, protocol calls) — the
// replay property transcript-equality tests and debugging rely on.
// The mask stream blinds this party's OT payloads, so production
// callers must never reuse a seed across runs that share correlation
// pools; use NewParty unless determinism is the point.
func NewSeededParty(conn transport.Conn, out *cot.SenderPool, in *cot.ReceiverPool, first bool, maskSeed block.Block) (*Party, error) {
	p := &Party{
		conn:  conn,
		hash:  aesprg.NewHash(),
		prg:   aesprg.NewStream(maskSeed),
		Out:   out,
		In:    in,
		first: first,
	}
	role := byte(0)
	if first {
		role = 1
	}
	if err := conn.Send([]byte{handshakeMagic, role}); err != nil {
		return nil, fmt.Errorf("gmw: handshake send: %w", err)
	}
	msg, err := conn.Recv()
	if err != nil {
		return nil, fmt.Errorf("gmw: handshake recv: %w", err)
	}
	if len(msg) != 2 || msg[0] != handshakeMagic {
		return nil, fmt.Errorf("gmw: handshake: unexpected message %x", msg)
	}
	if (msg[1] == 1) == first {
		return nil, fmt.Errorf("%w: both parties set first=%v", ErrRoleConflict, first)
	}
	return p, nil
}

// Share is an XOR-shared bit vector in the legacy bool layout: each
// party holds one of these and the logical value is the element-wise
// XOR. New code should prefer PackedShare.
type Share []bool

// NewPublic builds a share of a public constant: the first party holds
// the value, the other zero.
func (p *Party) NewPublic(bits []bool) Share {
	s := make(Share, len(bits))
	if p.first {
		copy(s, bits)
	}
	return s
}

// NewPrivate builds a share of this party's private input: this party
// holds the bits, the peer's share is zero. Both parties must call it
// in matching order, with owner telling whose input it is.
func (p *Party) NewPrivate(bits []bool, mine bool) Share {
	s := make(Share, len(bits))
	if mine {
		copy(s, bits)
	}
	return s
}

// NewPublicPacked is NewPublic in the packed layout.
func (p *Party) NewPublicPacked(bits []bool) PackedShare {
	if p.first {
		return PackBools(bits)
	}
	return NewPacked(len(bits))
}

// NewPrivatePacked is NewPrivate in the packed layout.
func (p *Party) NewPrivatePacked(bits []bool, mine bool) PackedShare {
	if mine {
		return PackBools(bits)
	}
	return NewPacked(len(bits))
}

// NewPublicVec shares a public vector of width-bit values as
// bit-planes (see PackVec).
func (p *Party) NewPublicVec(vals []uint64, width int) []PackedShare {
	if p.first {
		return PackVec(vals, width)
	}
	return zeroPlanes(len(vals), width)
}

// NewPrivateVec shares this party's private value vector as bit-planes.
func (p *Party) NewPrivateVec(vals []uint64, width int, mine bool) []PackedShare {
	if mine {
		return PackVec(vals, width)
	}
	return zeroPlanes(len(vals), width)
}

func zeroPlanes(n, width int) []PackedShare {
	planes := make([]PackedShare, width)
	for i := range planes {
		planes[i] = NewPacked(n)
	}
	return planes
}

// Xor is a free local gate. A length mismatch is reported as an
// error, matching the error discipline of the pool-exhaustion paths.
func Xor(a, b Share) (Share, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("gmw: Xor length mismatch: %d vs %d", len(a), len(b))
	}
	return xorShares(a, b), nil
}

// xorShares is Xor for call sites with already-validated lengths.
func xorShares(a, b Share) Share {
	out := make(Share, len(a))
	for i := range a {
		out[i] = a[i] != b[i]
	}
	return out
}

// Not flips a shared bit: only the first party flips its share.
func (p *Party) Not(a Share) Share {
	out := make(Share, len(a))
	copy(out, a)
	if p.first {
		for i := range out {
			out[i] = !out[i]
		}
	}
	return out
}

// bitBlock embeds a bit in a block's LSB.
func bitBlock(b bool) block.Block {
	if b {
		return block.New(1, 0)
	}
	return block.Block{}
}

// checkBudget fails an AND layer before any network traffic when the
// pools cannot cover it. Both parties' pools advance in lockstep, so
// both sides fail locally and loudly instead of deadlocking with one
// party mid-exchange.
func (p *Party) checkBudget(n int) error {
	if p.Out.Remaining() < n || p.In.Remaining() < n {
		return fmt.Errorf("gmw: AND layer of %d gates: %w (out %d, in %d)",
			n, cot.ErrExhausted, p.Out.Remaining(), p.In.Remaining())
	}
	return nil
}

// Budget is the correlation/exchange cost of a whole schedule of
// batched AND layers — what a circuit compiler or layer planner knows
// up front, before the first gate fires.
type Budget struct {
	// ANDGates is the total AND gate count across every layer of the
	// schedule; each gate consumes one COT from each direction pool.
	ANDGates int
	// Exchanges is the number of batched two-flight OT exchanges the
	// schedule will issue (its AND depth). It does not affect pool
	// consumption but sizes round budgets and appears in errors.
	Exchanges int
}

// Preflight verifies both direction pools can cover an entire schedule
// before any of it runs. The per-layer checkBudget guard inside
// And/AndPacked only catches exhaustion at the layer that trips it —
// by then earlier layers have consumed their correlations and the
// computation dies mid-circuit. Preflighting the whole budget makes an
// under-provisioned pool fail loudly before the first flight, on both
// sides (pools advance in lockstep), with nothing consumed and the
// peers still in sync.
func (p *Party) Preflight(b Budget) error {
	if b.ANDGates < 0 {
		return fmt.Errorf("gmw: preflight: negative AND budget %d", b.ANDGates)
	}
	if out, in := p.Out.Remaining(), p.In.Remaining(); out < b.ANDGates || in < b.ANDGates {
		return fmt.Errorf("gmw: preflight: schedule of %d AND gates in %d exchanges: %w (out %d, in %d)",
			b.ANDGates, b.Exchanges, cot.ErrExhausted, out, in)
	}
	return nil
}

// And evaluates element-wise AND over legacy bool shares, consuming
// two chosen OTs per element (one in each direction), each carrying a
// full 128-bit payload. This is the legacy path — AndPacked moves the
// same gates with ~16x less wire traffic.
func (p *Party) And(a, b Share) (Share, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("gmw: And length mismatch")
	}
	n := len(a)
	if err := p.checkBudget(n); err != nil {
		return nil, err
	}
	out := make(Share, n)
	// Local term a_i·b_i.
	for i := range out {
		out[i] = a[i] && b[i]
	}
	if n == 0 {
		return out, nil
	}
	var sp obs.Span
	var preBytes int64
	if p.observing() {
		preBytes = p.conn.Stats().TotalBytes()
		sp = p.trace.Span("gmw.exchange", "gmw", p.tid)
	}

	send := func() error {
		// This party is OT sender for the cross term (my a) x (peer b):
		// messages (s, s ⊕ a_i) under a fresh secret mask s; my share
		// gains s.
		msgs := make([][2]block.Block, n)
		masks := make([]bool, n)
		buf := make([]byte, (n+7)/8)
		p.prg.Fill(buf)
		for i := range msgs {
			mbit := buf[i/8]>>uint(i%8)&1 == 1
			masks[i] = mbit
			msgs[i][0] = bitBlock(mbit)
			msgs[i][1] = bitBlock(mbit != a[i])
		}
		if err := cot.SendChosen(p.conn, p.Out, p.hash, msgs); err != nil {
			return err
		}
		for i := range out {
			out[i] = out[i] != masks[i]
		}
		return nil
	}
	recv := func() error {
		// This party is OT receiver with choice bits b: learns s ⊕ a·b.
		got, err := cot.ReceiveChosen(p.conn, p.In, p.hash, b)
		if err != nil {
			return err
		}
		for i := range out {
			out[i] = out[i] != (got[i].Bit(0) == 1)
		}
		return nil
	}

	var err error
	if p.first {
		if err = send(); err == nil {
			err = recv()
		}
	} else {
		if err = recv(); err == nil {
			err = send()
		}
	}
	if err != nil {
		return nil, err
	}
	if p.observing() {
		p.noteExchange(sp, n, preBytes)
	}
	p.ANDGates += n
	p.Exchanges++
	return out, nil
}

// maskLimbs draws n fresh mask bits from the party's PRG, packed.
func (p *Party) maskLimbs(n int) []uint64 {
	limbs := make([]uint64, transport.PackedLimbs(n))
	buf := make([]byte, 8*len(limbs))
	p.prg.Fill(buf)
	for i := range limbs {
		limbs[i] = binary.LittleEndian.Uint64(buf[8*i:])
	}
	maskTail(limbs, n)
	return limbs
}

// AndPacked evaluates element-wise AND over packed shares in a single
// two-flight OT exchange, consuming two bit-payload chosen OTs per bit
// (one in each direction, ~6 bits of wire per AND gate total).
func (p *Party) AndPacked(a, b PackedShare) (PackedShare, error) {
	if a.n != b.n {
		return PackedShare{}, fmt.Errorf("gmw: AndPacked length mismatch: %d vs %d", a.n, b.n)
	}
	n := a.n
	if err := p.checkBudget(n); err != nil {
		return PackedShare{}, err
	}
	// Local term a_i·b_i.
	out := PackedShare{n: n, limbs: make([]uint64, len(a.limbs))}
	for i := range out.limbs {
		out.limbs[i] = a.limbs[i] & b.limbs[i]
	}
	if n == 0 {
		return out, nil
	}
	var sp obs.Span
	var preBytes int64
	if p.observing() {
		preBytes = p.conn.Stats().TotalBytes()
		sp = p.trace.Span("gmw.exchange", "gmw", p.tid)
	}

	send := func() error {
		masks := p.maskLimbs(n)
		m1 := make([]uint64, len(masks))
		for i := range m1 {
			m1[i] = masks[i] ^ a.limbs[i]
		}
		if err := cot.SendChosenBits(p.conn, p.Out, p.hash, masks, m1, n); err != nil {
			return err
		}
		for i := range out.limbs {
			out.limbs[i] ^= masks[i]
		}
		return nil
	}
	recv := func() error {
		got, err := cot.ReceiveChosenBits(p.conn, p.In, p.hash, b.limbs, n)
		if err != nil {
			return err
		}
		for i := range out.limbs {
			out.limbs[i] ^= got[i]
		}
		return nil
	}

	var err error
	if p.first {
		if err = send(); err == nil {
			err = recv()
		}
	} else {
		if err = recv(); err == nil {
			err = send()
		}
	}
	if err != nil {
		return PackedShare{}, err
	}
	if p.observing() {
		p.noteExchange(sp, n, preBytes)
	}
	p.ANDGates += n
	p.Exchanges++
	return out, nil
}

// AndPackedMany evaluates every (a, b) pair element-wise in ONE OT
// exchange: the level-batching primitive. Callers collect all
// independent AND gates of a circuit level and issue them as a single
// call; the engine bit-concatenates the operands (no alignment
// padding, so a layer consumes exactly as many COTs as it has gates)
// and splits the results back out. Both parties must pass the same
// number of pairs with matching lengths in the same order.
func (p *Party) AndPackedMany(pairs [][2]PackedShare) ([]PackedShare, error) {
	var a, b PackedShare
	for i, pr := range pairs {
		if pr[0].n != pr[1].n {
			return nil, fmt.Errorf("gmw: AndPackedMany pair %d length mismatch: %d vs %d", i, pr[0].n, pr[1].n)
		}
		a.appendBits(pr[0])
		b.appendBits(pr[1])
	}
	z, err := p.AndPacked(a, b)
	if err != nil {
		return nil, err
	}
	out := make([]PackedShare, len(pairs))
	off := 0
	for i, pr := range pairs {
		out[i] = z.sliceBits(off, pr[0].n)
		off += pr[0].n
	}
	return out, nil
}

// Reveal opens a legacy share to both parties.
func (p *Party) Reveal(a Share) ([]bool, error) {
	if p.first {
		if err := transport.SendBits(p.conn, a); err != nil {
			return nil, err
		}
		peer, err := transport.RecvBits(p.conn, len(a))
		if err != nil {
			return nil, err
		}
		return xorShares(a, peer), nil
	}
	peer, err := transport.RecvBits(p.conn, len(a))
	if err != nil {
		return nil, err
	}
	if err := transport.SendBits(p.conn, a); err != nil {
		return nil, err
	}
	return xorShares(a, peer), nil
}

// revealRaw opens a packed share, returning the plaintext still packed.
func (p *Party) revealRaw(a PackedShare) (PackedShare, error) {
	wire := transport.PackedToWire(a.limbs, a.n)
	var peerMsg []byte
	if p.first {
		if err := p.conn.Send(wire); err != nil {
			return PackedShare{}, err
		}
		m, err := p.conn.Recv()
		if err != nil {
			return PackedShare{}, err
		}
		peerMsg = m
	} else {
		m, err := p.conn.Recv()
		if err != nil {
			return PackedShare{}, err
		}
		if err := p.conn.Send(wire); err != nil {
			return PackedShare{}, err
		}
		peerMsg = m
	}
	peer, err := transport.WireToPacked(peerMsg, a.n)
	if err != nil {
		return PackedShare{}, err
	}
	open := PackedShare{n: a.n, limbs: make([]uint64, len(a.limbs))}
	for i := range open.limbs {
		open.limbs[i] = a.limbs[i] ^ peer[i]
	}
	return open, nil
}

// RevealPacked opens a packed share to both parties.
func (p *Party) RevealPacked(a PackedShare) ([]bool, error) {
	open, err := p.revealRaw(a)
	if err != nil {
		return nil, err
	}
	return open.Bools(), nil
}

// RevealPlanes opens a batch of packed shares in a single exchange,
// returning the plaintext still in the packed plane layout. The
// planes may have differing lengths; both parties must pass matching
// shapes in matching order.
func (p *Party) RevealPlanes(planes []PackedShare) ([]PackedShare, error) {
	var all PackedShare
	for _, pl := range planes {
		all.appendBits(pl)
	}
	open, err := p.revealRaw(all)
	if err != nil {
		return nil, err
	}
	opened := make([]PackedShare, len(planes))
	off := 0
	for i, pl := range planes {
		opened[i] = open.sliceBits(off, pl.n)
		off += pl.n
	}
	return opened, nil
}

// RevealVec opens a bit-plane vector in a single exchange, returning
// the plaintext values.
func (p *Party) RevealVec(planes []PackedShare) ([]uint64, error) {
	opened, err := p.RevealPlanes(planes)
	if err != nil {
		return nil, err
	}
	return UnpackVec(opened), nil
}

// GreaterThan compares two shared unsigned integers given LSB-first
// bit shares, returning a 1-bit share of (x > y). It routes through
// the parallel-prefix comparator, so a width-w compare costs
// 1+ceil(log2 w) batched exchanges instead of the 2w sequential
// exchanges of a ripple comparator.
func (p *Party) GreaterThan(x, y Share) (Share, error) {
	if len(x) != len(y) {
		return nil, fmt.Errorf("gmw: GreaterThan length mismatch")
	}
	if len(x) == 0 {
		return make(Share, 1), nil
	}
	xp := make([]PackedShare, len(x))
	yp := make([]PackedShare, len(y))
	for i := range x {
		xp[i] = PackBools(x[i : i+1])
		yp[i] = PackBools(y[i : i+1])
	}
	gt, err := p.GreaterThanVec(xp, yp)
	if err != nil {
		return nil, err
	}
	return Share{gt.Bit(0)}, nil
}

// GreaterThanVec compares n pairs of width-w values held as LSB-first
// bit-planes (see PackVec), returning an n-bit share with bit j set
// iff x_j > y_j (unsigned). The comparator is a parallel-prefix
// network: one batched AND layer computes per-bit generate signals
// g_i = x_i ∧ ¬y_i (the equality signals e_i = ¬(x_i⊕y_i) are free),
// then ceil(log2 w) combine rounds merge adjacent segments
//
//	gt = gt_hi ⊕ (eq_hi ∧ gt_lo)    eq = eq_hi ∧ eq_lo
//
// (gt_hi and eq_hi∧gt_lo are mutually exclusive, so XOR is OR). Every
// round is ONE two-flight OT exchange regardless of n and w; the total
// cost is (3w-2)·n AND gates in 1+ceil(log2 w) exchanges.
func (p *Party) GreaterThanVec(x, y []PackedShare) (PackedShare, error) {
	if len(x) != len(y) || len(x) == 0 {
		return PackedShare{}, fmt.Errorf("gmw: GreaterThanVec needs matching nonzero widths, got %d vs %d", len(x), len(y))
	}
	n := x[0].n
	for i := range x {
		if x[i].n != n || y[i].n != n {
			return PackedShare{}, fmt.Errorf("gmw: GreaterThanVec plane %d length mismatch", i)
		}
	}
	w := len(x)
	pairs := make([][2]PackedShare, w)
	for i := range pairs {
		pairs[i] = [2]PackedShare{x[i], p.NotPacked(y[i])}
	}
	g, err := p.AndPackedMany(pairs)
	if err != nil {
		return PackedShare{}, err
	}
	e := make([]PackedShare, w)
	for i := range e {
		e[i] = p.NotPacked(xorPacked(x[i], y[i]))
	}
	for len(g) > 1 {
		m := len(g) / 2
		pairs = pairs[:0]
		for k := 0; k < m; k++ {
			lo, hi := 2*k, 2*k+1
			pairs = append(pairs, [2]PackedShare{e[hi], g[lo]}, [2]PackedShare{e[hi], e[lo]})
		}
		res, err := p.AndPackedMany(pairs)
		if err != nil {
			return PackedShare{}, err
		}
		ng := make([]PackedShare, 0, m+1)
		ne := make([]PackedShare, 0, m+1)
		for k := 0; k < m; k++ {
			ng = append(ng, xorPacked(g[2*k+1], res[2*k]))
			ne = append(ne, res[2*k+1])
		}
		if len(g)%2 == 1 {
			ng = append(ng, g[len(g)-1])
			ne = append(ne, e[len(e)-1])
		}
		g, e = ng, ne
	}
	return g[0], nil
}

// ComparatorExchanges returns the batched OT exchanges a width-w
// GreaterThanVec costs: one generate layer plus a log-depth prefix
// tree. Useful for sizing pools and asserting round budgets.
func ComparatorExchanges(width int) int {
	if width <= 1 {
		return 1
	}
	return 1 + bits.Len(uint(width-1))
}

// Mux selects bit-wise between two legacy shared vectors by a shared
// condition bit: out = c ? a : b = b ⊕ c·(a⊕b). Costs len(a) AND
// gates. This is the multiplexer CrypTFlow2 builds ReLU from (§5.2
// mentions its two-directional OT use).
func (p *Party) Mux(c Share, a, b Share) (Share, error) {
	if len(c) != 1 || len(a) != len(b) {
		return nil, fmt.Errorf("gmw: Mux shape mismatch")
	}
	d := xorShares(a, b)
	cs := make(Share, len(a))
	for i := range cs {
		cs[i] = c[0]
	}
	t, err := p.And(cs, d)
	if err != nil {
		return nil, err
	}
	return xorShares(b, t), nil
}

// MuxVec selects element-wise between two bit-plane vectors by an
// n-bit shared condition vector: out_j = c_j ? a_j : b_j. The whole
// layer — every plane of every element — is one batched exchange of
// n·w AND gates.
func (p *Party) MuxVec(c PackedShare, a, b []PackedShare) ([]PackedShare, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("gmw: MuxVec width mismatch: %d vs %d", len(a), len(b))
	}
	pairs := make([][2]PackedShare, len(a))
	for i := range a {
		if a[i].n != c.n || b[i].n != c.n {
			return nil, fmt.Errorf("gmw: MuxVec plane %d length mismatch", i)
		}
		pairs[i] = [2]PackedShare{c, xorPacked(a[i], b[i])}
	}
	t, err := p.AndPackedMany(pairs)
	if err != nil {
		return nil, err
	}
	out := make([]PackedShare, len(a))
	for i := range out {
		out[i] = xorPacked(b[i], t[i])
	}
	return out, nil
}

// ReLUVec zeroes every two's-complement value whose sign bit (the
// MSB plane) is set and keeps the rest — the GMW half of a ReLU layer
// once Boolean shares of the activations exist. One batched exchange
// of n·w AND gates: out_i = ¬sign ∧ x_i.
func (p *Party) ReLUVec(x []PackedShare) ([]PackedShare, error) {
	if len(x) == 0 {
		return nil, nil
	}
	keep := p.NotPacked(x[len(x)-1])
	pairs := make([][2]PackedShare, len(x))
	for i := range pairs {
		pairs[i] = [2]PackedShare{keep, x[i]}
	}
	return p.AndPackedMany(pairs)
}

// Uint64Bits returns the LSB-first bit decomposition of v.
func Uint64Bits(v uint64, width int) []bool {
	bits := make([]bool, width)
	for i := range bits {
		bits[i] = v>>uint(i)&1 == 1
	}
	return bits
}

// BitsUint64 re-composes LSB-first bits.
func BitsUint64(bits []bool) uint64 {
	var v uint64
	for i, b := range bits {
		if b {
			v |= 1 << uint(i)
		}
	}
	return v
}
