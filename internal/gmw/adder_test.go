package gmw

import (
	"math/rand"
	"testing"
)

func TestAddVec(t *testing.T) {
	for _, tc := range []struct{ n, width int }{
		{1, 1}, {5, 3}, {64, 16}, {100, 64}, {3, 64},
	} {
		rng := rand.New(rand.NewSource(int64(tc.n*100 + tc.width)))
		xs := make([]uint64, tc.n)
		ys := make([]uint64, tc.n)
		mask := uint64(1)<<uint(tc.width) - 1
		if tc.width == 64 {
			mask = ^uint64(0)
		}
		for i := range xs {
			xs[i] = rng.Uint64() & mask
			ys[i] = rng.Uint64() & mask
		}
		budget := AdderANDGates(tc.width)*tc.n + 8
		a, b := parties(t, budget)
		eval := func(p *Party, mineX bool) ([]uint64, error) {
			x := p.NewPrivateVec(xs, tc.width, mineX)
			y := p.NewPrivateVec(ys, tc.width, !mineX)
			sum, err := p.AddVec(x, y)
			if err != nil {
				return nil, err
			}
			return p.RevealVec(sum)
		}
		var openA, openB []uint64
		run2(t, func() error {
			open, err := eval(a, true)
			openA = open
			return err
		}, func() error {
			open, err := eval(b, false)
			openB = open
			return err
		})
		for i := range xs {
			want := (xs[i] + ys[i]) & mask
			if openA[i] != want || openB[i] != want {
				t.Fatalf("AddVec n=%d w=%d wrong at %d: %x/%x want %x",
					tc.n, tc.width, i, openA[i], openB[i], want)
			}
		}
		if tc.width > 1 && a.Exchanges != AdderExchanges(tc.width) {
			t.Fatalf("AddVec w=%d used %d exchanges, want %d",
				tc.width, a.Exchanges, AdderExchanges(tc.width))
		}
		if tc.width > 1 && a.ANDGates != AdderANDGates(tc.width)*tc.n {
			t.Fatalf("AddVec w=%d consumed %d AND gates, want %d",
				tc.width, a.ANDGates, AdderANDGates(tc.width)*tc.n)
		}
	}
}
