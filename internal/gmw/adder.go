package gmw

import (
	"fmt"
	"math/bits"
)

// AddVec adds two bit-plane vectors element-wise modulo 2^w (w =
// len(x) planes), returning the sum in the same layout. This is the
// Boolean adder the A2B share conversion rides: each party enters its
// arithmetic share as a private bit-plane vector and the adder
// recombines them into XOR shares of the sum, final carry discarded.
//
// The carry network is Kogge–Stone over (generate, propagate) pairs:
// one batched AND layer computes g_i = x_i ∧ y_i (p_i = x_i ⊕ y_i is
// free), then ceil(log2 w) doubling rounds merge spans
//
//	g_i' = g_i ⊕ (p_i ∧ g_{i-d})    p_i' = p_i ∧ p_{i-d}    (i >= d)
//
// and the sum planes are s_0 = p_0, s_i = p_i ⊕ g_{i-1}. Every round
// is ONE two-flight OT exchange regardless of n and w; the total cost
// is at most w + 2·sum_d(w-d) AND gates per element (~w·(1+2·log2 w))
// in AdderExchanges(w) exchanges. The last round skips the dead p'
// products, and a width-1 add is entirely XOR (the single carry is
// discarded).
func (p *Party) AddVec(x, y []PackedShare) ([]PackedShare, error) {
	if len(x) != len(y) || len(x) == 0 {
		return nil, fmt.Errorf("gmw: AddVec needs matching nonzero widths, got %d vs %d", len(x), len(y))
	}
	n := x[0].n
	for i := range x {
		if x[i].n != n || y[i].n != n {
			return nil, fmt.Errorf("gmw: AddVec plane %d length mismatch", i)
		}
	}
	w := len(x)
	// Propagate planes (free); kept immutable for the final sum.
	prop := make([]PackedShare, w)
	for i := range prop {
		prop[i] = xorPacked(x[i], y[i])
	}
	if w == 1 {
		return []PackedShare{prop[0]}, nil
	}
	// Generate layer: g_i = x_i ∧ y_i, one batched exchange.
	pairs := make([][2]PackedShare, w)
	for i := range pairs {
		pairs[i] = [2]PackedShare{x[i], y[i]}
	}
	g, err := p.AndPackedMany(pairs)
	if err != nil {
		return nil, err
	}
	// pp is the working propagate chain consumed by the prefix rounds.
	pp := make([]PackedShare, w)
	copy(pp, prop)
	for d := 1; d < w; d <<= 1 {
		last := d<<1 >= w
		pairs = pairs[:0]
		for i := d; i < w; i++ {
			pairs = append(pairs, [2]PackedShare{pp[i], g[i-d]})
			if !last {
				pairs = append(pairs, [2]PackedShare{pp[i], pp[i-d]})
			}
		}
		res, err := p.AndPackedMany(pairs)
		if err != nil {
			return nil, err
		}
		k := 0
		for i := d; i < w; i++ {
			g[i] = xorPacked(g[i], res[k])
			k++
			if !last {
				pp[i] = res[k]
				k++
			}
		}
	}
	// Sum: s_0 = p_0, s_i = p_i ⊕ carry_in_i where carry_in_i = g_{i-1}.
	out := make([]PackedShare, w)
	out[0] = prop[0]
	for i := 1; i < w; i++ {
		out[i] = xorPacked(prop[i], g[i-1])
	}
	return out, nil
}

// AdderExchanges returns the batched OT exchanges a width-w AddVec
// costs: one generate layer plus the Kogge–Stone doubling rounds.
func AdderExchanges(width int) int {
	if width <= 1 {
		return 0
	}
	return 1 + bits.Len(uint(width-1))
}

// AdderANDGates returns the AND gates a width-w AddVec consumes per
// element: w generates plus the per-round merge products (the final
// round skips its dead propagate updates).
func AdderANDGates(width int) int {
	if width <= 1 {
		return 0
	}
	gates := width
	for d := 1; d < width; d <<= 1 {
		if d<<1 >= width {
			gates += width - d
		} else {
			gates += 2 * (width - d)
		}
	}
	return gates
}
