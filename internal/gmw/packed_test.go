package gmw

import (
	"errors"
	"math/rand"
	"testing"

	"ironman/internal/cot"
	"ironman/internal/transport"
)

func TestPackedShareRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 7, 63, 64, 65, 130, 1000} {
		bits := make([]bool, n)
		for i := range bits {
			bits[i] = rng.Intn(2) == 1
		}
		s := PackBools(bits)
		if s.Len() != n {
			t.Fatalf("n=%d: Len %d", n, s.Len())
		}
		got := s.Bools()
		for i := range bits {
			if got[i] != bits[i] || s.Bit(i) != bits[i] {
				t.Fatalf("n=%d: bit %d mismatch", n, i)
			}
		}
	}
}

func TestAppendSliceBits(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		segs := make([][]bool, 1+rng.Intn(5))
		var all PackedShare
		var flat []bool
		for i := range segs {
			seg := make([]bool, rng.Intn(150))
			for j := range seg {
				seg[j] = rng.Intn(2) == 1
			}
			segs[i] = seg
			flat = append(flat, seg...)
			all.appendBits(PackBools(seg))
		}
		if all.Len() != len(flat) {
			t.Fatalf("append length %d, want %d", all.Len(), len(flat))
		}
		off := 0
		for i, seg := range segs {
			got := all.sliceBits(off, len(seg)).Bools()
			for j := range seg {
				if got[j] != seg[j] {
					t.Fatalf("trial %d seg %d bit %d mismatch", trial, i, j)
				}
			}
			off += len(seg)
		}
	}
}

func TestPackUnpackVec(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, w := range []int{1, 5, 32, 64} {
		vals := make([]uint64, 77)
		mask := ^uint64(0)
		if w < 64 {
			mask = 1<<uint(w) - 1
		}
		for i := range vals {
			vals[i] = rng.Uint64() & mask
		}
		planes := PackVec(vals, w)
		got := UnpackVec(planes)
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("w=%d: val %d round trip %x != %x", w, i, got[i], vals[i])
			}
		}
	}
}

// TestRandomCircuitsCrossCheck runs randomized circuits over both the
// packed (bit-OT) and legacy (block-OT) paths, cross-checking every
// wire against a plaintext reference evaluation. The circuit structure
// is public (derived from a shared seed), the inputs private.
func TestRandomCircuitsCrossCheck(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		n := 1 + rng.Intn(200)
		depth := 1 + rng.Intn(6)
		// Plaintext inputs, one vector per party.
		xa := make([]bool, n)
		xb := make([]bool, n)
		for i := range xa {
			xa[i] = rng.Intn(2) == 1
			xb[i] = rng.Intn(2) == 1
		}
		ops := make([]int, depth)
		for i := range ops {
			ops[i] = rng.Intn(3) // 0 XOR, 1 AND, 2 NOT-then-AND
		}
		// Plaintext reference.
		ref := make([]bool, n)
		cur := make([]bool, n)
		copy(cur, xa)
		for _, op := range ops {
			for i := range ref {
				switch op {
				case 0:
					ref[i] = cur[i] != xb[i]
				case 1:
					ref[i] = cur[i] && xb[i]
				case 2:
					ref[i] = !cur[i] && xb[i]
				}
			}
			copy(cur, ref)
		}

		for _, packed := range []bool{false, true} {
			budget := n*depth + 8
			a, b := parties(t, budget)
			eval := func(p *Party, mineA bool) ([]bool, error) {
				if packed {
					x := p.NewPrivatePacked(xa, mineA)
					y := p.NewPrivatePacked(xb, !mineA)
					for _, op := range ops {
						var err error
						switch op {
						case 0:
							x, err = XorPacked(x, y)
						case 1:
							x, err = p.AndPacked(x, y)
						case 2:
							x, err = p.AndPacked(p.NotPacked(x), y)
						}
						if err != nil {
							return nil, err
						}
					}
					return p.RevealPacked(x)
				}
				x := p.NewPrivate(xa, mineA)
				y := p.NewPrivate(xb, !mineA)
				for _, op := range ops {
					var err error
					switch op {
					case 0:
						x, err = Xor(x, y)
					case 1:
						x, err = p.And(x, y)
					case 2:
						x, err = p.And(p.Not(x), y)
					}
					if err != nil {
						return nil, err
					}
				}
				return p.Reveal(x)
			}
			var openA, openB []bool
			run2(t, func() error {
				open, err := eval(a, true)
				openA = open
				return err
			}, func() error {
				open, err := eval(b, false)
				openB = open
				return err
			})
			for i := range ref {
				if openA[i] != ref[i] || openB[i] != ref[i] {
					t.Fatalf("trial %d packed=%v: wire %d = %v/%v, want %v",
						trial, packed, i, openA[i], openB[i], ref[i])
				}
			}
		}
	}
}

// TestGreaterThanVecWidths covers the width-1 and width-64 comparator
// edges plus random widths in between.
func TestGreaterThanVecWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, w := range []int{1, 2, 3, 5, 17, 33, 64} {
		const n = 100
		mask := ^uint64(0)
		if w < 64 {
			mask = 1<<uint(w) - 1
		}
		xs := make([]uint64, n)
		ys := make([]uint64, n)
		for i := range xs {
			xs[i] = rng.Uint64() & mask
			if i%5 == 0 {
				ys[i] = xs[i] // exercise the equality edge
			} else {
				ys[i] = rng.Uint64() & mask
			}
		}
		a, b := parties(t, (3*w-2)*n+8)
		var got []bool
		run2(t, func() error {
			xp := a.NewPrivateVec(xs, w, true)
			yp := a.NewPrivateVec(make([]uint64, n), w, false)
			gt, err := a.GreaterThanVec(xp, yp)
			if err != nil {
				return err
			}
			open, err := a.RevealPacked(gt)
			got = open
			return err
		}, func() error {
			xp := b.NewPrivateVec(make([]uint64, n), w, false)
			yp := b.NewPrivateVec(ys, w, true)
			gt, err := b.GreaterThanVec(xp, yp)
			if err != nil {
				return err
			}
			_, err = b.RevealPacked(gt)
			return err
		})
		for i := range xs {
			if got[i] != (xs[i] > ys[i]) {
				t.Fatalf("w=%d: gt(%d,%d) = %v", w, xs[i], ys[i], got[i])
			}
		}
		if a.ANDGates != (3*w-2)*n {
			t.Fatalf("w=%d: %d ANDs, want %d", w, a.ANDGates, (3*w-2)*n)
		}
		if a.Exchanges != ComparatorExchanges(w) {
			t.Fatalf("w=%d: %d exchanges, want %d", w, a.Exchanges, ComparatorExchanges(w))
		}
	}
}

func TestMuxVecAndReLUVec(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n, w = 130, 16
	av := make([]uint64, n)
	bv := make([]uint64, n)
	cv := make([]bool, n)
	for i := range av {
		av[i] = rng.Uint64() & (1<<w - 1)
		bv[i] = rng.Uint64() & (1<<w - 1)
		cv[i] = rng.Intn(2) == 1
	}
	a, b := parties(t, 3*n*w+8)
	var muxed, relued []uint64
	run2(t, func() error {
		c := a.NewPrivatePacked(cv, true)
		x := a.NewPublicVec(av, w)
		y := a.NewPublicVec(bv, w)
		m, err := a.MuxVec(c, x, y)
		if err != nil {
			return err
		}
		open, err := a.RevealVec(m)
		if err != nil {
			return err
		}
		muxed = open
		r, err := a.ReLUVec(x)
		if err != nil {
			return err
		}
		open, err = a.RevealVec(r)
		relued = open
		return err
	}, func() error {
		c := b.NewPrivatePacked(make([]bool, n), false)
		x := b.NewPublicVec(av, w)
		y := b.NewPublicVec(bv, w)
		m, err := b.MuxVec(c, x, y)
		if err != nil {
			return err
		}
		if _, err := b.RevealVec(m); err != nil {
			return err
		}
		r, err := b.ReLUVec(x)
		if err != nil {
			return err
		}
		_, err = b.RevealVec(r)
		return err
	})
	for i := range av {
		want := bv[i]
		if cv[i] {
			want = av[i]
		}
		if muxed[i] != want {
			t.Fatalf("MuxVec elem %d = %x, want %x", i, muxed[i], want)
		}
		wantR := av[i]
		if av[i]>>(w-1)&1 == 1 { // negative in two's complement
			wantR = 0
		}
		if relued[i] != wantR {
			t.Fatalf("ReLUVec elem %d = %x, want %x", i, relued[i], wantR)
		}
	}
	// MuxVec and ReLUVec are each ONE batched exchange.
	if a.Exchanges != 2 {
		t.Fatalf("MuxVec+ReLUVec took %d exchanges, want 2", a.Exchanges)
	}
}

func TestZeroLengthShares(t *testing.T) {
	a, b := parties(t, 4)
	run2(t, func() error {
		z, err := a.AndPacked(NewPacked(0), NewPacked(0))
		if err != nil || z.Len() != 0 {
			t.Errorf("packed zero-length AND: %v, len %d", err, z.Len())
		}
		zs, err := a.And(Share{}, Share{})
		if err != nil || len(zs) != 0 {
			t.Errorf("legacy zero-length AND: %v, len %d", err, len(zs))
		}
		if _, err := a.Reveal(Share{}); err != nil {
			t.Errorf("zero-length Reveal: %v", err)
		}
		open, err := a.RevealPacked(NewPacked(0))
		if err != nil || len(open) != 0 {
			t.Errorf("zero-length RevealPacked: %v", err)
		}
		return nil
	}, func() error {
		if _, err := b.AndPacked(NewPacked(0), NewPacked(0)); err != nil {
			return err
		}
		if _, err := b.And(Share{}, Share{}); err != nil {
			return err
		}
		if _, err := b.Reveal(Share{}); err != nil {
			return err
		}
		_, err := b.RevealPacked(NewPacked(0))
		return err
	})
	if a.ANDGates != 0 {
		t.Fatalf("zero-length layers consumed %d AND gates", a.ANDGates)
	}
}

// TestPoolExhaustionBatchedLayer drains the pools with a batched AND
// layer larger than the budget: both parties must fail loudly with
// cot.ErrExhausted before any wire traffic, not deadlock.
func TestPoolExhaustionBatchedLayer(t *testing.T) {
	a, b := parties(t, 16)
	planes := func(p *Party) [][2]PackedShare {
		pairs := make([][2]PackedShare, 4)
		for i := range pairs {
			pairs[i] = [2]PackedShare{p.NewPublicPacked(make([]bool, 10)), NewPacked(10)}
		}
		return pairs
	}
	var errA, errB error
	run2(t, func() error {
		_, errA = a.AndPackedMany(planes(a))
		return nil
	}, func() error {
		_, errB = b.AndPackedMany(planes(b))
		return nil
	})
	if !errors.Is(errA, cot.ErrExhausted) || !errors.Is(errB, cot.ErrExhausted) {
		t.Fatalf("want ErrExhausted on both sides, got %v / %v", errA, errB)
	}
}

// TestPackedWireEfficiency checks the headline wire saving: a batched
// packed AND layer must move at least 10x fewer bytes per gate than
// the legacy block-payload path.
func TestPackedWireEfficiency(t *testing.T) {
	const n = 4096
	measure := func(packed bool) float64 {
		connA, connB := transport.Pipe()
		sAB, rAB, _ := cot.RandomPools(n + 8)
		sBA, rBA, _ := cot.RandomPools(n + 8)
		ch := make(chan *Party, 1)
		go func() {
			p, err := NewParty(connA, sAB, rBA, true)
			if err != nil {
				t.Error(err)
			}
			ch <- p
		}()
		b, err := NewParty(connB, sBA, rAB, false)
		if err != nil {
			t.Fatal(err)
		}
		a := <-ch
		base := connA.Stats().TotalBytes() // exclude the handshake
		run2(t, func() error {
			if packed {
				_, err := a.AndPacked(NewPacked(n), NewPacked(n))
				return err
			}
			_, err := a.And(make(Share, n), make(Share, n))
			return err
		}, func() error {
			if packed {
				_, err := b.AndPacked(NewPacked(n), NewPacked(n))
				return err
			}
			_, err := b.And(make(Share, n), make(Share, n))
			return err
		})
		return float64(connA.Stats().TotalBytes()-base) / float64(n)
	}
	legacy := measure(false)
	bitPacked := measure(true)
	if legacy/bitPacked < 10 {
		t.Fatalf("bytes/AND legacy %.2f vs packed %.2f: reduction %.1fx < 10x",
			legacy, bitPacked, legacy/bitPacked)
	}
}
