package gmw

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"ironman/internal/cot"
	"ironman/internal/transport"
)

// parties wires two GMW parties with dealer COT pools in both
// directions. The role handshake is interactive, so the two
// constructors run concurrently.
func parties(t *testing.T, budget int) (*Party, *Party) {
	t.Helper()
	connA, connB := transport.Pipe()
	sAB, rAB, err := cot.RandomPools(budget)
	if err != nil {
		t.Fatal(err)
	}
	sBA, rBA, err := cot.RandomPools(budget)
	if err != nil {
		t.Fatal(err)
	}
	type res struct {
		p   *Party
		err error
	}
	ch := make(chan res, 1)
	go func() {
		p, err := NewParty(connA, sAB, rBA, true)
		ch <- res{p, err}
	}()
	b, err := NewParty(connB, sBA, rAB, false)
	if err != nil {
		t.Fatal(err)
	}
	ra := <-ch
	if ra.err != nil {
		t.Fatal(ra.err)
	}
	return ra.p, b
}

// run2 executes fa and fb concurrently (the two protocol parties).
func run2(t *testing.T, fa, fb func() error) {
	t.Helper()
	var wg sync.WaitGroup
	wg.Add(1)
	var errA error
	go func() {
		defer wg.Done()
		errA = fa()
	}()
	if err := fb(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if errA != nil {
		t.Fatal(errA)
	}
}

func TestRoleHandshakeConflict(t *testing.T) {
	for _, first := range []bool{false, true} {
		connA, connB := transport.Pipe()
		sAB, rAB, err := cot.RandomPools(4)
		if err != nil {
			t.Fatal(err)
		}
		sBA, rBA, err := cot.RandomPools(4)
		if err != nil {
			t.Fatal(err)
		}
		errCh := make(chan error, 1)
		go func() {
			_, err := NewParty(connA, sAB, rBA, first)
			errCh <- err
		}()
		_, errB := NewParty(connB, sBA, rAB, first)
		errA := <-errCh
		if !errors.Is(errA, ErrRoleConflict) || !errors.Is(errB, ErrRoleConflict) {
			t.Fatalf("first=%v: want ErrRoleConflict on both sides, got %v / %v", first, errA, errB)
		}
	}
}

func TestAndTruthTable(t *testing.T) {
	for _, xa := range []bool{false, true} {
		for _, yb := range []bool{false, true} {
			a, b := parties(t, 8)
			var ra, rb Share
			run2(t, func() error {
				xs := a.NewPrivate([]bool{xa}, true)
				ys := a.NewPrivate([]bool{false}, false)
				z, err := a.And(xs, ys)
				if err != nil {
					return err
				}
				open, err := a.Reveal(z)
				ra = open
				return err
			}, func() error {
				xs := b.NewPrivate([]bool{false}, false)
				ys := b.NewPrivate([]bool{yb}, true)
				z, err := b.And(xs, ys)
				if err != nil {
					return err
				}
				open, err := b.Reveal(z)
				rb = open
				return err
			})
			want := xa && yb
			if ra[0] != want || rb[0] != want {
				t.Fatalf("AND(%v,%v) = %v/%v, want %v", xa, yb, ra[0], rb[0], want)
			}
		}
	}
}

func TestXorNotLocal(t *testing.T) {
	a, _ := parties(t, 1)
	x := Share{true, false, true}
	y := Share{true, true, false}
	z, err := Xor(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if z[0] || !z[1] || !z[2] {
		t.Fatal("Xor wrong")
	}
	n := a.Not(Share{false})
	if !n[0] {
		t.Fatal("first party must flip on Not")
	}
}

func TestGreaterThanExhaustive4Bit(t *testing.T) {
	for x := uint64(0); x < 16; x++ {
		for y := uint64(0); y < 16; y++ {
			a, b := parties(t, 64)
			var got bool
			run2(t, func() error {
				xs := a.NewPrivate(Uint64Bits(x, 4), true)
				ys := a.NewPrivate(make([]bool, 4), false)
				gt, err := a.GreaterThan(xs, ys)
				if err != nil {
					return err
				}
				open, err := a.Reveal(gt)
				if err != nil {
					return err
				}
				got = open[0]
				return nil
			}, func() error {
				xs := b.NewPrivate(make([]bool, 4), false)
				ys := b.NewPrivate(Uint64Bits(y, 4), true)
				gt, err := b.GreaterThan(xs, ys)
				if err != nil {
					return err
				}
				_, err = b.Reveal(gt)
				return err
			})
			if got != (x > y) {
				t.Fatalf("GreaterThan(%d,%d) = %v", x, y, got)
			}
		}
	}
}

func TestGreaterThanRandom32Bit(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		x := uint64(rng.Uint32())
		y := uint64(rng.Uint32())
		a, b := parties(t, 3*32+8)
		var got bool
		run2(t, func() error {
			xs := a.NewPrivate(Uint64Bits(x, 32), true)
			ys := a.NewPrivate(make([]bool, 32), false)
			gt, err := a.GreaterThan(xs, ys)
			if err != nil {
				return err
			}
			open, err := a.Reveal(gt)
			got = open[0]
			return err
		}, func() error {
			xs := b.NewPrivate(make([]bool, 32), false)
			ys := b.NewPrivate(Uint64Bits(y, 32), true)
			gt, err := b.GreaterThan(xs, ys)
			if err != nil {
				return err
			}
			_, err = b.Reveal(gt)
			return err
		})
		if got != (x > y) {
			t.Fatalf("GreaterThan(%d,%d) = %v", x, y, got)
		}
		// Parallel-prefix comparator: (3w-2) AND gates in
		// 1+ceil(log2 w) batched exchanges.
		if a.ANDGates != 3*32-2 {
			t.Fatalf("32-bit compare should cost %d ANDs, used %d", 3*32-2, a.ANDGates)
		}
		if a.Exchanges != ComparatorExchanges(32) {
			t.Fatalf("32-bit compare should take %d exchanges, took %d",
				ComparatorExchanges(32), a.Exchanges)
		}
	}
}

func TestMux(t *testing.T) {
	for _, c := range []bool{false, true} {
		a, b := parties(t, 32)
		av := Uint64Bits(0xA5, 8)
		bv := Uint64Bits(0x3C, 8)
		var got uint64
		run2(t, func() error {
			cs := a.NewPrivate([]bool{c}, true)
			x := a.NewPublic(av)
			y := a.NewPublic(bv)
			z, err := a.Mux(cs, x, y)
			if err != nil {
				return err
			}
			open, err := a.Reveal(z)
			got = BitsUint64(open)
			return err
		}, func() error {
			cs := b.NewPrivate([]bool{false}, false)
			x := b.NewPublic(av)
			y := b.NewPublic(bv)
			z, err := b.Mux(cs, x, y)
			if err != nil {
				return err
			}
			_, err = b.Reveal(z)
			return err
		})
		want := uint64(0x3C)
		if c {
			want = 0xA5
		}
		if got != want {
			t.Fatalf("Mux(c=%v) = %#x, want %#x", c, got, want)
		}
	}
}

func TestBitHelpers(t *testing.T) {
	v := uint64(0b1011)
	bits := Uint64Bits(v, 6)
	if !bits[0] || !bits[1] || bits[2] || !bits[3] || bits[4] {
		t.Fatal("Uint64Bits wrong")
	}
	if BitsUint64(bits) != v {
		t.Fatal("BitsUint64 round trip")
	}
}

func TestShapeMismatchErrors(t *testing.T) {
	a, _ := parties(t, 4)
	if _, err := a.And(Share{true}, Share{true, false}); err == nil {
		t.Fatal("And must reject length mismatch")
	}
	if _, err := a.GreaterThan(Share{true}, Share{}); err == nil {
		t.Fatal("GreaterThan must reject length mismatch")
	}
	if _, err := a.Mux(Share{true, false}, Share{true}, Share{true}); err == nil {
		t.Fatal("Mux must reject bad condition shape")
	}
	if _, err := a.AndPacked(PackBools([]bool{true}), NewPacked(2)); err == nil {
		t.Fatal("AndPacked must reject length mismatch")
	}
	if _, err := a.AndPackedMany([][2]PackedShare{{NewPacked(1), NewPacked(2)}}); err == nil {
		t.Fatal("AndPackedMany must reject pair mismatch")
	}
	if _, err := a.GreaterThanVec(zeroPlanes(4, 2), zeroPlanes(4, 3)); err == nil {
		t.Fatal("GreaterThanVec must reject width mismatch")
	}
	if _, err := a.MuxVec(NewPacked(4), zeroPlanes(4, 2), zeroPlanes(3, 2)); err == nil {
		t.Fatal("MuxVec must reject plane mismatch")
	}
	if _, err := a.AddVec(zeroPlanes(4, 2), zeroPlanes(4, 3)); err == nil {
		t.Fatal("AddVec must reject width mismatch")
	}
	if _, err := Xor(Share{true}, Share{}); err == nil {
		t.Fatal("Xor must reject length mismatch")
	}
	if _, err := XorPacked(NewPacked(1), NewPacked(2)); err == nil {
		t.Fatal("XorPacked must reject length mismatch")
	}
}
