package gmw

import (
	"fmt"

	"ironman/internal/transport"
)

// PackedShare is a word-packed XOR-shared bit vector: 64 bits per
// uint64 limb, LSB-first, with the invariant that bits at index >=
// Len() are zero in every limb. It is the bitsliced counterpart of
// Share — XOR and NOT touch 64 gates per word op, and a batched AND
// layer ships the whole vector through one bit-packed OT exchange.
type PackedShare struct {
	n     int
	limbs []uint64
}

// NewPacked returns an all-zero packed share of n bits.
func NewPacked(n int) PackedShare {
	return PackedShare{n: n, limbs: make([]uint64, transport.PackedLimbs(n))}
}

// PackBools packs a bool-vector share.
func PackBools(bits []bool) PackedShare {
	s := NewPacked(len(bits))
	for i, b := range bits {
		if b {
			s.limbs[i/64] |= 1 << (uint(i) % 64)
		}
	}
	return s
}

// Len returns the bit length.
func (s PackedShare) Len() int { return s.n }

// Bit reads bit i.
func (s PackedShare) Bit(i int) bool { return s.limbs[i/64]>>(uint(i)%64)&1 == 1 }

// Bools unpacks to a bool vector (the legacy Share layout).
func (s PackedShare) Bools() []bool {
	out := make([]bool, s.n)
	for i := range out {
		out[i] = s.Bit(i)
	}
	return out
}

// maskTail zeroes bits past n in the last limb, restoring the
// PackedShare invariant after whole-limb operations like NOT.
func maskTail(limbs []uint64, n int) {
	if r := uint(n % 64); r != 0 {
		limbs[len(limbs)-1] &= 1<<r - 1
	}
}

// XorPacked is the free XOR gate over packed shares. A length
// mismatch is reported as an error, matching the error discipline of
// the pool-exhaustion paths.
func XorPacked(a, b PackedShare) (PackedShare, error) {
	if a.n != b.n {
		return PackedShare{}, fmt.Errorf("gmw: XorPacked length mismatch: %d vs %d", a.n, b.n)
	}
	return xorPacked(a, b), nil
}

// xorPacked is XorPacked for call sites whose operand lengths are
// already validated (every internal circuit builder).
func xorPacked(a, b PackedShare) PackedShare {
	out := PackedShare{n: a.n, limbs: make([]uint64, len(a.limbs))}
	for i := range out.limbs {
		out.limbs[i] = a.limbs[i] ^ b.limbs[i]
	}
	return out
}

// NotPacked flips a shared vector: only the first party flips its
// share (the complement of a public constant is free).
func (p *Party) NotPacked(a PackedShare) PackedShare {
	out := PackedShare{n: a.n, limbs: make([]uint64, len(a.limbs))}
	copy(out.limbs, a.limbs)
	if p.first {
		for i := range out.limbs {
			out.limbs[i] = ^out.limbs[i]
		}
		maskTail(out.limbs, out.n)
	}
	return out
}

// appendBits bit-concatenates src onto s (no limb-alignment padding:
// concatenated segments of any length consume exactly their own COTs).
func (s *PackedShare) appendBits(src PackedShare) {
	off := s.n
	s.n += src.n
	for len(s.limbs) < transport.PackedLimbs(s.n) {
		s.limbs = append(s.limbs, 0)
	}
	shift := uint(off % 64)
	base := off / 64
	for i, limb := range src.limbs {
		s.limbs[base+i] |= limb << shift
		if shift != 0 && base+i+1 < len(s.limbs) {
			s.limbs[base+i+1] |= limb >> (64 - shift)
		}
	}
}

// sliceBits extracts the n bits starting at off into a fresh share.
func (s PackedShare) sliceBits(off, n int) PackedShare {
	out := NewPacked(n)
	shift := uint(off % 64)
	base := off / 64
	for i := range out.limbs {
		limb := s.limbs[base+i] >> shift
		if shift != 0 && base+i+1 < len(s.limbs) {
			limb |= s.limbs[base+i+1] << (64 - shift)
		}
		out.limbs[i] = limb
	}
	maskTail(out.limbs, n)
	return out
}

// PackVec lays out n w-bit values as w bit-planes, LSB-first: bit j of
// plane i is bit i of vals[j]. This is the bitsliced layout every
// batched element-wise operation (GreaterThanVec, MuxVec, ReLUVec)
// works in — one plane op touches all elements at once.
func PackVec(vals []uint64, width int) []PackedShare {
	planes := make([]PackedShare, width)
	for i := range planes {
		planes[i] = NewPacked(len(vals))
		for j, v := range vals {
			planes[i].limbs[j/64] |= (v >> uint(i) & 1) << (uint(j) % 64)
		}
	}
	return planes
}

// UnpackVec recomposes bit-planes into values (the inverse of PackVec).
func UnpackVec(planes []PackedShare) []uint64 {
	if len(planes) == 0 {
		return nil
	}
	vals := make([]uint64, planes[0].n)
	for i, pl := range planes {
		for j := range vals {
			vals[j] |= uint64(pl.limbs[j/64]>>(uint(j)%64)&1) << uint(i)
		}
	}
	return vals
}
