// Package transport provides the two-party message channel the OT
// protocols run over, with byte and round accounting. The accounting
// feeds the communication columns of Figure 7(b) and the modeled
// network latencies of Figure 7(c) and Table 5: a protocol's wire time
// is bytes/bandwidth + flights*RTT.
//
// Two implementations are provided: an in-process pipe (used by tests,
// benchmarks and single-binary examples) and a length-prefixed TCP
// framing (used by cmd/otgen to run the protocol between real peers).
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"ironman/internal/block"
)

// Conn is a reliable, ordered, message-oriented duplex channel.
type Conn interface {
	// Send transmits one message. The implementation owns the buffer
	// after Send returns; callers may reuse p.
	Send(p []byte) error
	// Recv blocks until the next message arrives.
	Recv() ([]byte, error)
	// Stats returns the accumulated traffic counters.
	Stats() Stats
	io.Closer
}

// Stats counts traffic through one endpoint.
type Stats struct {
	MsgsSent      int
	BytesSent     int64
	MsgsReceived  int
	BytesReceived int64
	// Flights is the number of direction changes into sending: the
	// round count of the protocol as seen from this endpoint. Two
	// consecutive Sends with no intervening Recv count as one flight.
	Flights int
}

// TotalBytes is all traffic through the endpoint in both directions.
func (s Stats) TotalBytes() int64 { return s.BytesSent + s.BytesReceived }

func (s Stats) String() string {
	return fmt.Sprintf("sent %d msgs/%d B, recv %d msgs/%d B, %d flights",
		s.MsgsSent, s.BytesSent, s.MsgsReceived, s.BytesReceived, s.Flights)
}

// counter implements the shared accounting for all Conn flavours.
type counter struct {
	mu      sync.Mutex
	stats   Stats
	sending bool
}

func (c *counter) noteSend(n int) {
	c.mu.Lock()
	c.stats.MsgsSent++
	c.stats.BytesSent += int64(n)
	if !c.sending {
		c.sending = true
		c.stats.Flights++
	}
	c.mu.Unlock()
}

func (c *counter) noteRecv(n int) {
	c.mu.Lock()
	c.stats.MsgsReceived++
	c.stats.BytesReceived += int64(n)
	c.sending = false
	c.mu.Unlock()
}

func (c *counter) snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// pipeConn is one endpoint of an in-process pipe.
type pipeConn struct {
	counter
	out    chan<- []byte
	in     <-chan []byte
	closed chan struct{}
	once   sync.Once
}

// ErrClosed is returned by operations on a closed pipe.
var ErrClosed = errors.New("transport: connection closed")

// Pipe returns two connected in-process endpoints. Each direction is
// buffered; a protocol that sends bounded batches never deadlocks even
// when both parties run send-then-receive steps.
func Pipe() (Conn, Conn) {
	const depth = 1024
	ab := make(chan []byte, depth)
	ba := make(chan []byte, depth)
	a := &pipeConn{out: ab, in: ba, closed: make(chan struct{})}
	b := &pipeConn{out: ba, in: ab, closed: make(chan struct{})}
	return a, b
}

func (p *pipeConn) Send(msg []byte) error {
	cp := make([]byte, len(msg))
	copy(cp, msg)
	select {
	case <-p.closed:
		return ErrClosed
	case p.out <- cp:
		p.noteSend(len(msg))
		return nil
	}
}

func (p *pipeConn) Recv() ([]byte, error) {
	select {
	case <-p.closed:
		return nil, ErrClosed
	case msg := <-p.in:
		p.noteRecv(len(msg))
		return msg, nil
	}
}

func (p *pipeConn) Stats() Stats { return p.snapshot() }

func (p *pipeConn) Close() error {
	p.once.Do(func() { close(p.closed) })
	return nil
}

// tcpConn frames messages over a net.Conn with a 4-byte length prefix.
type tcpConn struct {
	counter
	nc net.Conn
	mu sync.Mutex // serializes writers
}

// MaxMessage bounds a single framed message (64 MiB), protecting the
// reader from a corrupted length prefix.
const MaxMessage = 64 << 20

// NewTCP wraps an established network connection.
func NewTCP(nc net.Conn) Conn { return &tcpConn{nc: nc} }

func (t *tcpConn) Send(msg []byte) error {
	if len(msg) > MaxMessage {
		return fmt.Errorf("transport: message of %d bytes exceeds limit", len(msg))
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(msg)))
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, err := t.nc.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := t.nc.Write(msg); err != nil {
		return err
	}
	t.noteSend(len(msg))
	return nil
}

func (t *tcpConn) Recv() ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(t.nc, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxMessage {
		return nil, fmt.Errorf("transport: incoming message of %d bytes exceeds limit", n)
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(t.nc, msg); err != nil {
		return nil, err
	}
	t.noteRecv(len(msg))
	return msg, nil
}

func (t *tcpConn) Stats() Stats { return t.snapshot() }
func (t *tcpConn) Close() error { return t.nc.Close() }

// chunkBlocks is the largest block batch one framed message carries.
// Batches beyond it are chunked transparently by SendBlocks/RecvBlocks:
// before this existed, any mid-protocol block message past MaxMessage
// (reachable by a 2^22-instance chosen-OT reply or block open) made
// Send fail AFTER the peer had already committed to its receive,
// leaving the two parties desynced. A var, not a const, so tests can
// exercise the chunking without 64 MiB allocations.
var chunkBlocks = MaxMessage / block.Size

// sendChunked splits [0, n) into the deterministic chunk schedule the
// matching recvChunked expects: n < chunk ships one frame; otherwise
// floor(n/chunk) full frames followed by a strictly shorter terminator
// frame of n%chunk elements (possibly empty). The terminator encodes
// where the batch ends, so ANY disagreement about n between the peers
// fails loudly at the first differing frame — the multi-frame
// equivalent of the single-frame exact-length check (without it, a
// mismatch that is an exact multiple of the chunk size would succeed
// on the receiver and desync the stream). The boundary logic lives
// only here and in recvChunked so the typed helpers can never drift.
func sendChunked(n, chunk int, send func(lo, hi int) error) error {
	if n < chunk {
		return send(0, n)
	}
	lo := 0
	for n-lo >= chunk {
		if err := send(lo, lo+chunk); err != nil {
			return err
		}
		lo += chunk
	}
	return send(lo, n)
}

// recvChunked drives the multi-frame reassembly (n >= chunk): firstMsg
// is the already-received first frame; every frame is validated
// against the schedule above and handed to decode with its element
// offset.
func recvChunked(c Conn, firstMsg []byte, n, chunk, elemSize int, what string, decode func(msg []byte, off, count int)) error {
	msg := firstMsg
	full, tail := n/chunk, n%chunk
	filled := 0
	for frame := 0; ; frame++ {
		want := chunk
		if frame == full {
			want = tail
		}
		if len(msg) != want*elemSize {
			return fmt.Errorf("transport: expected %d %s, got %d bytes", want, what, len(msg))
		}
		if want > 0 {
			decode(msg, filled, want)
			filled += want
		}
		if frame == full {
			return nil
		}
		var err error
		if msg, err = c.Recv(); err != nil {
			return err
		}
	}
}

// chunkBytes is the raw-byte chunk cap of SendBytes/RecvBytes (a var
// for tests, like chunkBlocks).
var chunkBytes = MaxMessage

// SendBytes transmits an arbitrary byte frame as one logical message,
// chunking past MaxMessage. For payloads whose total size both peers
// can compute (the cot word-OT and bit-OT ciphertext frames); the
// receiver calls RecvBytes with that size.
func SendBytes(c Conn, buf []byte) error {
	return sendChunked(len(buf), chunkBytes, func(lo, hi int) error {
		return c.Send(buf[lo:hi])
	})
}

// RecvBytes receives exactly total bytes, reassembling the chunked
// framing of SendBytes.
func RecvBytes(c Conn, total int) ([]byte, error) {
	msg, err := c.Recv()
	if err != nil {
		return nil, err
	}
	if total < chunkBytes {
		if len(msg) != total {
			return nil, fmt.Errorf("transport: expected %d bytes, got %d", total, len(msg))
		}
		return msg, nil
	}
	out := make([]byte, total)
	err = recvChunked(c, msg, total, chunkBytes, 1, "bytes", func(msg []byte, off, count int) {
		copy(out[off:off+count], msg)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// SendBlocks marshals a block slice as one logical message, splitting
// it into MaxMessage-sized frames when needed. Chunk boundaries are a
// deterministic function of the batch size, so RecvBlocks(n) on the
// peer always reassembles the exact frame sequence; consecutive frames
// with no turnaround still count as one flight.
func SendBlocks(c Conn, blocks []block.Block) error {
	return sendChunked(len(blocks), chunkBlocks, func(lo, hi int) error {
		return c.Send(block.ToBytes(blocks[lo:hi]))
	})
}

// RecvBlocks receives exactly n blocks, reassembling the chunked
// framing of SendBlocks (a single frame in the n < chunk common case).
func RecvBlocks(c Conn, n int) ([]block.Block, error) {
	msg, err := c.Recv()
	if err != nil {
		return nil, err
	}
	out := make([]block.Block, n)
	err = recvChunked(c, msg, n, chunkBlocks, block.Size, "blocks", func(msg []byte, off, count int) {
		for i := 0; i < count; i++ {
			out[off+i] = block.FromBytes(msg[i*block.Size:])
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// PackBits packs a bit slice 8 per byte, little-endian within bytes —
// the wire layout of every bit vector in this repo.
func PackBits(bits []bool) []byte {
	buf := make([]byte, (len(bits)+7)/8)
	for i, b := range bits {
		if b {
			buf[i/8] |= 1 << uint(i%8)
		}
	}
	return buf
}

// UnpackBits is the inverse of PackBits for a known bit count.
func UnpackBits(buf []byte, n int) []bool {
	bits := make([]bool, n)
	for i := range bits {
		bits[i] = buf[i/8]>>uint(i%8)&1 == 1
	}
	return bits
}

// PackedLimbs returns the uint64 limb count of an n-bit packed vector.
func PackedLimbs(n int) int { return (n + 63) / 64 }

// PackedToWire serializes the low n bits of a limb-packed vector into
// the PackBits wire layout (8 bits per byte, little-endian within
// bytes and limbs). Bits at index >= n must be zero.
func PackedToWire(limbs []uint64, n int) []byte {
	buf := make([]byte, (n+7)/8)
	for i := range buf {
		buf[i] = byte(limbs[i/8] >> (uint(i%8) * 8))
	}
	return buf
}

// WireToPacked parses an n-bit PackBits wire buffer into uint64 limbs,
// zeroing any trailing bits past n.
func WireToPacked(buf []byte, n int) ([]uint64, error) {
	if len(buf) != (n+7)/8 {
		return nil, fmt.Errorf("transport: expected %d packed bits, got %d bytes", n, len(buf))
	}
	limbs := make([]uint64, PackedLimbs(n))
	for i, b := range buf {
		limbs[i/8] |= uint64(b) << (uint(i%8) * 8)
	}
	if r := uint(n % 64); r != 0 {
		limbs[len(limbs)-1] &= 1<<r - 1
	}
	return limbs, nil
}

// SendBits packs a bit slice as one message.
func SendBits(c Conn, bits []bool) error {
	return c.Send(PackBits(bits))
}

// RecvBits receives exactly n packed bits.
func RecvBits(c Conn, n int) ([]bool, error) {
	msg, err := c.Recv()
	if err != nil {
		return nil, err
	}
	if len(msg) != (n+7)/8 {
		return nil, fmt.Errorf("transport: expected %d bits, got %d bytes", n, len(msg))
	}
	return UnpackBits(msg, n), nil
}

// SendUints marshals a uint32 slice as one message.
func SendUints(c Conn, v []uint32) error {
	buf := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(buf[4*i:], x)
	}
	return c.Send(buf)
}

// RecvUints receives exactly n uint32 values.
func RecvUints(c Conn, n int) ([]uint32, error) {
	msg, err := c.Recv()
	if err != nil {
		return nil, err
	}
	if len(msg) != 4*n {
		return nil, fmt.Errorf("transport: expected %d uints, got %d bytes", n, len(msg))
	}
	v := make([]uint32, n)
	for i := range v {
		v[i] = binary.LittleEndian.Uint32(msg[4*i:])
	}
	return v, nil
}

// chunkWords is the word-helper twin of chunkBlocks: arith reveals and
// Beaver opens ride SendWords, so a >2^23-element open must chunk for
// the same mid-protocol-desync reason block messages do. (SendBits and
// SendUints payloads stay orders of magnitude below MaxMessage on
// every protocol path — bit vectors ship 1 bit per correlation — so
// they keep the single-frame fast path.)
var chunkWords = MaxMessage / 8

// SendWords marshals a uint64 slice as one logical message — the wire
// layout of every Z_2^64 share vector (internal/arith reveals and
// Beaver opens) — chunking past MaxMessage like SendBlocks.
func SendWords(c Conn, v []uint64) error {
	return sendChunked(len(v), chunkWords, func(lo, hi int) error {
		buf := make([]byte, 8*(hi-lo))
		for i, x := range v[lo:hi] {
			binary.LittleEndian.PutUint64(buf[8*i:], x)
		}
		return c.Send(buf)
	})
}

// RecvWords receives exactly n uint64 values, reassembling the chunked
// framing of SendWords.
func RecvWords(c Conn, n int) ([]uint64, error) {
	msg, err := c.Recv()
	if err != nil {
		return nil, err
	}
	v := make([]uint64, n)
	err = recvChunked(c, msg, n, chunkWords, 8, "words", func(msg []byte, off, count int) {
		for i := 0; i < count; i++ {
			v[off+i] = binary.LittleEndian.Uint64(msg[8*i:])
		}
	})
	if err != nil {
		return nil, err
	}
	return v, nil
}
