// Package transport provides the two-party message channel the OT
// protocols run over, with byte and round accounting. The accounting
// feeds the communication columns of Figure 7(b) and the modeled
// network latencies of Figure 7(c) and Table 5: a protocol's wire time
// is bytes/bandwidth + flights*RTT.
//
// Two implementations are provided: an in-process pipe (used by tests,
// benchmarks and single-binary examples) and a length-prefixed TCP
// framing (used by cmd/otgen to run the protocol between real peers).
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"ironman/internal/block"
)

// Conn is a reliable, ordered, message-oriented duplex channel.
type Conn interface {
	// Send transmits one message. The implementation owns the buffer
	// after Send returns; callers may reuse p.
	Send(p []byte) error
	// Recv blocks until the next message arrives.
	Recv() ([]byte, error)
	// Stats returns the accumulated traffic counters.
	Stats() Stats
	io.Closer
}

// Stats counts traffic through one endpoint.
type Stats struct {
	MsgsSent      int
	BytesSent     int64
	MsgsReceived  int
	BytesReceived int64
	// Flights is the number of direction changes into sending: the
	// round count of the protocol as seen from this endpoint. Two
	// consecutive Sends with no intervening Recv count as one flight.
	Flights int
}

// TotalBytes is all traffic through the endpoint in both directions.
func (s Stats) TotalBytes() int64 { return s.BytesSent + s.BytesReceived }

func (s Stats) String() string {
	return fmt.Sprintf("sent %d msgs/%d B, recv %d msgs/%d B, %d flights",
		s.MsgsSent, s.BytesSent, s.MsgsReceived, s.BytesReceived, s.Flights)
}

// counter implements the shared accounting for all Conn flavours.
type counter struct {
	mu      sync.Mutex
	stats   Stats
	sending bool
}

func (c *counter) noteSend(n int) {
	c.mu.Lock()
	c.stats.MsgsSent++
	c.stats.BytesSent += int64(n)
	if !c.sending {
		c.sending = true
		c.stats.Flights++
	}
	c.mu.Unlock()
}

func (c *counter) noteRecv(n int) {
	c.mu.Lock()
	c.stats.MsgsReceived++
	c.stats.BytesReceived += int64(n)
	c.sending = false
	c.mu.Unlock()
}

func (c *counter) snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// pipeConn is one endpoint of an in-process pipe.
type pipeConn struct {
	counter
	out    chan<- []byte
	in     <-chan []byte
	closed chan struct{}
	once   sync.Once
}

// ErrClosed is returned by operations on a closed pipe.
var ErrClosed = errors.New("transport: connection closed")

// Pipe returns two connected in-process endpoints. Each direction is
// buffered; a protocol that sends bounded batches never deadlocks even
// when both parties run send-then-receive steps.
func Pipe() (Conn, Conn) {
	const depth = 1024
	ab := make(chan []byte, depth)
	ba := make(chan []byte, depth)
	a := &pipeConn{out: ab, in: ba, closed: make(chan struct{})}
	b := &pipeConn{out: ba, in: ab, closed: make(chan struct{})}
	return a, b
}

func (p *pipeConn) Send(msg []byte) error {
	cp := make([]byte, len(msg))
	copy(cp, msg)
	select {
	case <-p.closed:
		return ErrClosed
	case p.out <- cp:
		p.noteSend(len(msg))
		return nil
	}
}

func (p *pipeConn) Recv() ([]byte, error) {
	select {
	case <-p.closed:
		return nil, ErrClosed
	case msg := <-p.in:
		p.noteRecv(len(msg))
		return msg, nil
	}
}

func (p *pipeConn) Stats() Stats { return p.snapshot() }

func (p *pipeConn) Close() error {
	p.once.Do(func() { close(p.closed) })
	return nil
}

// tcpConn frames messages over a net.Conn with a 4-byte length prefix.
type tcpConn struct {
	counter
	nc net.Conn
	mu sync.Mutex // serializes writers
}

// MaxMessage bounds a single framed message (64 MiB), protecting the
// reader from a corrupted length prefix.
const MaxMessage = 64 << 20

// NewTCP wraps an established network connection.
func NewTCP(nc net.Conn) Conn { return &tcpConn{nc: nc} }

func (t *tcpConn) Send(msg []byte) error {
	if len(msg) > MaxMessage {
		return fmt.Errorf("transport: message of %d bytes exceeds limit", len(msg))
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(msg)))
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, err := t.nc.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := t.nc.Write(msg); err != nil {
		return err
	}
	t.noteSend(len(msg))
	return nil
}

func (t *tcpConn) Recv() ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(t.nc, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxMessage {
		return nil, fmt.Errorf("transport: incoming message of %d bytes exceeds limit", n)
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(t.nc, msg); err != nil {
		return nil, err
	}
	t.noteRecv(len(msg))
	return msg, nil
}

func (t *tcpConn) Stats() Stats { return t.snapshot() }
func (t *tcpConn) Close() error { return t.nc.Close() }

// SendBlocks marshals a block slice as one message.
func SendBlocks(c Conn, blocks []block.Block) error {
	return c.Send(block.ToBytes(blocks))
}

// RecvBlocks receives a message and parses it as exactly n blocks.
func RecvBlocks(c Conn, n int) ([]block.Block, error) {
	msg, err := c.Recv()
	if err != nil {
		return nil, err
	}
	if len(msg) != n*block.Size {
		return nil, fmt.Errorf("transport: expected %d blocks, got %d bytes", n, len(msg))
	}
	return block.SliceFromBytes(msg), nil
}

// PackBits packs a bit slice 8 per byte, little-endian within bytes —
// the wire layout of every bit vector in this repo.
func PackBits(bits []bool) []byte {
	buf := make([]byte, (len(bits)+7)/8)
	for i, b := range bits {
		if b {
			buf[i/8] |= 1 << uint(i%8)
		}
	}
	return buf
}

// UnpackBits is the inverse of PackBits for a known bit count.
func UnpackBits(buf []byte, n int) []bool {
	bits := make([]bool, n)
	for i := range bits {
		bits[i] = buf[i/8]>>uint(i%8)&1 == 1
	}
	return bits
}

// PackedLimbs returns the uint64 limb count of an n-bit packed vector.
func PackedLimbs(n int) int { return (n + 63) / 64 }

// PackedToWire serializes the low n bits of a limb-packed vector into
// the PackBits wire layout (8 bits per byte, little-endian within
// bytes and limbs). Bits at index >= n must be zero.
func PackedToWire(limbs []uint64, n int) []byte {
	buf := make([]byte, (n+7)/8)
	for i := range buf {
		buf[i] = byte(limbs[i/8] >> (uint(i%8) * 8))
	}
	return buf
}

// WireToPacked parses an n-bit PackBits wire buffer into uint64 limbs,
// zeroing any trailing bits past n.
func WireToPacked(buf []byte, n int) ([]uint64, error) {
	if len(buf) != (n+7)/8 {
		return nil, fmt.Errorf("transport: expected %d packed bits, got %d bytes", n, len(buf))
	}
	limbs := make([]uint64, PackedLimbs(n))
	for i, b := range buf {
		limbs[i/8] |= uint64(b) << (uint(i%8) * 8)
	}
	if r := uint(n % 64); r != 0 {
		limbs[len(limbs)-1] &= 1<<r - 1
	}
	return limbs, nil
}

// SendBits packs a bit slice as one message.
func SendBits(c Conn, bits []bool) error {
	return c.Send(PackBits(bits))
}

// RecvBits receives exactly n packed bits.
func RecvBits(c Conn, n int) ([]bool, error) {
	msg, err := c.Recv()
	if err != nil {
		return nil, err
	}
	if len(msg) != (n+7)/8 {
		return nil, fmt.Errorf("transport: expected %d bits, got %d bytes", n, len(msg))
	}
	return UnpackBits(msg, n), nil
}

// SendUints marshals a uint32 slice as one message.
func SendUints(c Conn, v []uint32) error {
	buf := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(buf[4*i:], x)
	}
	return c.Send(buf)
}

// RecvUints receives exactly n uint32 values.
func RecvUints(c Conn, n int) ([]uint32, error) {
	msg, err := c.Recv()
	if err != nil {
		return nil, err
	}
	if len(msg) != 4*n {
		return nil, fmt.Errorf("transport: expected %d uints, got %d bytes", n, len(msg))
	}
	v := make([]uint32, n)
	for i := range v {
		v[i] = binary.LittleEndian.Uint32(msg[4*i:])
	}
	return v, nil
}

// SendWords marshals a uint64 slice as one message — the wire layout of
// every Z_2^64 share vector (internal/arith reveals and Beaver opens).
func SendWords(c Conn, v []uint64) error {
	buf := make([]byte, 8*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint64(buf[8*i:], x)
	}
	return c.Send(buf)
}

// RecvWords receives exactly n uint64 values.
func RecvWords(c Conn, n int) ([]uint64, error) {
	msg, err := c.Recv()
	if err != nil {
		return nil, err
	}
	if len(msg) != 8*n {
		return nil, fmt.Errorf("transport: expected %d words, got %d bytes", n, len(msg))
	}
	v := make([]uint64, n)
	for i := range v {
		v[i] = binary.LittleEndian.Uint64(msg[8*i:])
	}
	return v, nil
}
