package transport

import (
	"fmt"
	"net"
	"reflect"
	"sync"
	"testing"

	"ironman/internal/block"
)

func TestPipeRoundTrip(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	want := []byte("hello")
	if err := a.Send(want); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("got %q", got)
	}
}

func TestPipeSenderMayReuseBuffer(t *testing.T) {
	a, b := Pipe()
	buf := []byte{1, 2, 3}
	if err := a.Send(buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 99 // mutate after send
	got, _ := b.Recv()
	if got[0] != 1 {
		t.Fatal("pipe must copy the message on send")
	}
}

func TestPipeCloseUnblocks(t *testing.T) {
	a, b := Pipe()
	done := make(chan error, 1)
	go func() {
		_, err := b.Recv()
		done <- err
	}()
	b.Close()
	if err := <-done; err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if err := a.Send([]byte("x")); err != nil {
		t.Fatal("peer close should not break the other endpoint's buffer")
	}
}

func TestStatsAndFlights(t *testing.T) {
	a, b := Pipe()
	_ = a.Send(make([]byte, 10))
	_ = a.Send(make([]byte, 20)) // same flight
	_, _ = b.Recv()
	_, _ = b.Recv()
	_ = b.Send(make([]byte, 5))
	_, _ = a.Recv()
	_ = a.Send(make([]byte, 1)) // new flight after receiving

	sa := a.Stats()
	if sa.MsgsSent != 3 || sa.BytesSent != 31 {
		t.Fatalf("sender stats wrong: %+v", sa)
	}
	if sa.Flights != 2 {
		t.Fatalf("sender flights = %d, want 2", sa.Flights)
	}
	sb := b.Stats()
	if sb.BytesReceived != 30 || sb.Flights != 1 {
		t.Fatalf("receiver stats wrong: %+v", sb)
	}
	if sa.TotalBytes() != 31+5 {
		t.Fatalf("TotalBytes = %d", sa.TotalBytes())
	}
	if sa.String() == "" {
		t.Fatal("Stats.String empty")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan Conn, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			t.Error(err)
			done <- nil
			return
		}
		done <- NewTCP(nc)
	}()
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	client := NewTCP(nc)
	server := <-done
	if server == nil {
		t.Fatal("accept failed")
	}
	defer client.Close()
	defer server.Close()

	msgs := [][]byte{[]byte("one"), {}, make([]byte, 100000)}
	for _, m := range msgs {
		if err := client.Send(m); err != nil {
			t.Fatal(err)
		}
		got, err := server.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(m) {
			t.Fatalf("len = %d, want %d", len(got), len(m))
		}
	}
	if err := server.Send([]byte("reply")); err != nil {
		t.Fatal(err)
	}
	if got, _ := client.Recv(); string(got) != "reply" {
		t.Fatal("reply mismatch")
	}
	if client.Stats().MsgsSent != 3 {
		t.Fatalf("client stats: %+v", client.Stats())
	}
}

// tcpPair builds a connected framed pair over loopback.
func tcpPair(t *testing.T) (client, server Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan Conn, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			t.Error(err)
			accepted <- nil
			return
		}
		accepted <- NewTCP(nc)
	}()
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	client = NewTCP(nc)
	server = <-accepted
	if server == nil {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

func TestTCPZeroLengthMessage(t *testing.T) {
	client, server := tcpPair(t)
	// A zero-length message is a valid frame in both directions and
	// must not be conflated with EOF or with the next frame.
	if err := client.Send(nil); err != nil {
		t.Fatal(err)
	}
	if err := client.Send([]byte("after")); err != nil {
		t.Fatal(err)
	}
	got, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d bytes, want 0", len(got))
	}
	if got, err = server.Recv(); err != nil || string(got) != "after" {
		t.Fatalf("frame after empty one corrupted: %q, %v", got, err)
	}
	if err := server.Send([]byte{}); err != nil {
		t.Fatal(err)
	}
	if got, err = client.Recv(); err != nil || len(got) != 0 {
		t.Fatalf("reverse empty frame: %q, %v", got, err)
	}
	st := client.Stats()
	if st.MsgsSent != 2 || st.MsgsReceived != 1 {
		t.Fatalf("stats must count empty frames: %+v", st)
	}
}

func TestTCPRecvAfterPeerClose(t *testing.T) {
	client, server := tcpPair(t)
	if err := client.Send([]byte("last words")); err != nil {
		t.Fatal(err)
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	// The buffered frame still arrives...
	got, err := server.Recv()
	if err != nil || string(got) != "last words" {
		t.Fatalf("buffered frame: %q, %v", got, err)
	}
	// ...then Recv reports the closed peer, and keeps reporting it.
	if _, err := server.Recv(); err == nil {
		t.Fatal("Recv after peer close must fail")
	}
	if _, err := server.Recv(); err == nil {
		t.Fatal("repeated Recv after peer close must fail")
	}
}

func TestTCPConcurrentSendRecv(t *testing.T) {
	// Multiple writers per endpoint with simultaneous reads in both
	// directions: the write lock must keep frames intact (run under
	// -race via scripts/ci.sh).
	client, server := tcpPair(t)
	const writers = 4
	const msgs = 64
	payload := func(tag, i int) []byte {
		return []byte{byte(tag), byte(i), byte(i >> 8), 7}
	}
	pump := func(c Conn) {
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < msgs; i++ {
					if err := c.Send(payload(w, i)); err != nil {
						t.Error(err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
	}
	drain := func(c Conn, got map[[2]byte]int) error {
		for i := 0; i < writers*msgs; i++ {
			msg, err := c.Recv()
			if err != nil {
				return err
			}
			if len(msg) != 4 || msg[3] != 7 {
				return fmt.Errorf("frame torn: %v", msg)
			}
			got[[2]byte{msg[0], msg[1]}]++
		}
		return nil
	}
	var wg sync.WaitGroup
	results := make([]map[[2]byte]int, 2)
	for i, c := range []Conn{client, server} {
		wg.Add(1)
		go func(i int, c Conn) {
			defer wg.Done()
			pump(c)
		}(i, c)
		wg.Add(1)
		go func(i int, c Conn) {
			defer wg.Done()
			results[i] = make(map[[2]byte]int)
			if err := drain(c, results[i]); err != nil {
				t.Error(err)
			}
		}(i, c)
	}
	wg.Wait()
	for i, got := range results {
		if len(got) != writers*msgs {
			t.Fatalf("endpoint %d: %d distinct frames, want %d", i, len(got), writers*msgs)
		}
	}
}

func TestBlockHelpers(t *testing.T) {
	a, b := Pipe()
	blocks := []block.Block{block.New(1, 2), block.New(3, 4)}
	if err := SendBlocks(a, blocks); err != nil {
		t.Fatal(err)
	}
	got, err := RecvBlocks(b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !block.Equal(got, blocks) {
		t.Fatal("blocks mismatch")
	}
	_ = SendBlocks(a, blocks)
	if _, err := RecvBlocks(b, 3); err == nil {
		t.Fatal("expected length error")
	}
}

// TestBlockChunkingBoundary exercises the chunked block framing around
// the per-message cap: under it (one frame), at and past it (full
// frames plus the strictly-short terminator that makes batch-size
// disagreements detectable). Batches past MaxMessage used to fail
// mid-protocol, desyncing the peer; lowering chunkBlocks lets the
// regression run without 64 MiB allocations.
func TestBlockChunkingBoundary(t *testing.T) {
	saved := chunkBlocks
	chunkBlocks = 8
	defer func() { chunkBlocks = saved }()

	for _, tc := range []struct {
		n    int
		msgs int
	}{
		{0, 1}, {1, 1}, {7, 1}, {8, 2}, {9, 2}, {16, 3}, {17, 3}, {29, 4},
	} {
		a, b := Pipe()
		blocks := make([]block.Block, tc.n)
		for i := range blocks {
			blocks[i] = block.New(uint64(i), uint64(i)*3+1)
		}
		base := a.Stats()
		errCh := make(chan error, 1)
		go func() { errCh <- SendBlocks(a, blocks) }()
		got, err := RecvBlocks(b, tc.n)
		if err != nil {
			t.Fatalf("n=%d: %v", tc.n, err)
		}
		if err := <-errCh; err != nil {
			t.Fatalf("n=%d: send: %v", tc.n, err)
		}
		if !block.Equal(got, blocks) {
			t.Fatalf("n=%d: blocks mismatch", tc.n)
		}
		st := a.Stats()
		if sent := st.MsgsSent - base.MsgsSent; sent != tc.msgs {
			t.Fatalf("n=%d: %d frames, want %d", tc.n, sent, tc.msgs)
		}
		// Chunking must not inflate the round count: consecutive
		// frames in one direction are one flight.
		if flights := st.Flights - base.Flights; flights != 1 {
			t.Fatalf("n=%d: %d flights, want 1", tc.n, flights)
		}
	}
}

// TestBlockChunkingOverTCP round-trips a multi-frame batch through the
// real length-prefixed TCP framing (the layer whose MaxMessage limit
// made oversized batches fail before chunking).
func TestBlockChunkingOverTCP(t *testing.T) {
	saved := chunkBlocks
	chunkBlocks = 1024
	defer func() { chunkBlocks = saved }()

	client, server := tcpPair(t)
	defer client.Close()
	defer server.Close()
	const n = 5*1024 + 37 // 6 frames
	blocks := make([]block.Block, n)
	for i := range blocks {
		blocks[i] = block.New(uint64(i), ^uint64(i))
	}
	errCh := make(chan error, 1)
	go func() { errCh <- SendBlocks(client, blocks) }()
	got, err := RecvBlocks(server, n)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	if !block.Equal(got, blocks) {
		t.Fatal("blocks mismatch over TCP chunked framing")
	}
}

// TestBlockChunkingLengthMismatch: a chunked receive fails loudly when
// the sender's batch size disagrees with the receiver's — including
// disagreements that are an exact multiple of the chunk size, which
// only the terminator frame can expose.
func TestBlockChunkingLengthMismatch(t *testing.T) {
	saved := chunkBlocks
	chunkBlocks = 4
	defer func() { chunkBlocks = saved }()

	for _, tc := range []struct{ sent, expected int }{
		{6, 9},
		{12, 8},  // multiple-of-chunk disagreement: terminator mismatch
		{8, 12},  // receiver expects more full frames than were sent
		{4, 3},   // sender chunked, receiver on the single-frame path
		{3, 4},   // sender single-frame, receiver chunked
		{8, 0x7}, // terminator vs full-frame confusion
	} {
		a, b := Pipe()
		go func() { _ = SendBlocks(a, make([]block.Block, tc.sent)) }()
		if _, err := RecvBlocks(b, tc.expected); err == nil {
			t.Fatalf("sent %d, expected %d: mismatch must error", tc.sent, tc.expected)
		}
	}
}

// TestByteChunkingBoundary: the raw-byte framing behind the cot
// ciphertext frames chunks like the block framing.
func TestByteChunkingBoundary(t *testing.T) {
	saved := chunkBytes
	chunkBytes = 16
	defer func() { chunkBytes = saved }()

	for _, tc := range []struct {
		n    int
		msgs int
	}{
		{0, 1}, {15, 1}, {16, 2}, {17, 2}, {32, 3}, {45, 3},
	} {
		a, b := Pipe()
		buf := make([]byte, tc.n)
		for i := range buf {
			buf[i] = byte(i*7 + 3)
		}
		base := a.Stats()
		errCh := make(chan error, 1)
		go func() { errCh <- SendBytes(a, buf) }()
		got, err := RecvBytes(b, tc.n)
		if err != nil {
			t.Fatalf("n=%d: %v", tc.n, err)
		}
		if err := <-errCh; err != nil {
			t.Fatalf("n=%d: send: %v", tc.n, err)
		}
		if !reflect.DeepEqual(got, buf) {
			t.Fatalf("n=%d: bytes mismatch", tc.n)
		}
		if sent := a.Stats().MsgsSent - base.MsgsSent; sent != tc.msgs {
			t.Fatalf("n=%d: %d frames, want %d", tc.n, sent, tc.msgs)
		}
	}
}

// TestWordChunkingBoundary: the word framing chunks like the block
// framing (arith reveals/Beaver opens are the >MaxMessage users).
func TestWordChunkingBoundary(t *testing.T) {
	saved := chunkWords
	chunkWords = 8
	defer func() { chunkWords = saved }()

	for _, tc := range []struct {
		n    int
		msgs int
	}{
		{0, 1}, {7, 1}, {8, 2}, {9, 2}, {16, 3}, {21, 3},
	} {
		a, b := Pipe()
		words := make([]uint64, tc.n)
		for i := range words {
			words[i] = uint64(i)*0x9e3779b9 + 1
		}
		base := a.Stats()
		errCh := make(chan error, 1)
		go func() { errCh <- SendWords(a, words) }()
		got, err := RecvWords(b, tc.n)
		if err != nil {
			t.Fatalf("n=%d: %v", tc.n, err)
		}
		if err := <-errCh; err != nil {
			t.Fatalf("n=%d: send: %v", tc.n, err)
		}
		if !reflect.DeepEqual(got, words) {
			t.Fatalf("n=%d: words mismatch", tc.n)
		}
		if sent := a.Stats().MsgsSent - base.MsgsSent; sent != tc.msgs {
			t.Fatalf("n=%d: %d frames, want %d", tc.n, sent, tc.msgs)
		}
	}
	// Mismatched batch sizes still fail loudly.
	a, b := Pipe()
	go func() { _ = SendWords(a, make([]uint64, 10)) }()
	if _, err := RecvWords(b, 17); err == nil {
		t.Fatal("expected chunk length error")
	}
}

func TestBitHelpers(t *testing.T) {
	a, b := Pipe()
	bits := []bool{true, false, true, true, false, false, false, true, true}
	if err := SendBits(a, bits); err != nil {
		t.Fatal(err)
	}
	got, err := RecvBits(b, len(bits))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, bits) {
		t.Fatalf("bits = %v, want %v", got, bits)
	}
}

func TestUintHelpers(t *testing.T) {
	a, b := Pipe()
	v := []uint32{0, 1, 1 << 31, 42}
	if err := SendUints(a, v); err != nil {
		t.Fatal(err)
	}
	got, err := RecvUints(b, len(v))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, v) {
		t.Fatal("uints mismatch")
	}
	_ = SendUints(a, v)
	if _, err := RecvUints(b, 5); err == nil {
		t.Fatal("expected length error")
	}
}
