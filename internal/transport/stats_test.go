package transport

import (
	"sync"
	"sync/atomic"
	"testing"

	"ironman/internal/block"
)

// TestStatsSnapshotConsistency hammers one pipe endpoint with
// concurrent chunked sends while a poller snapshots Stats() the whole
// time. Every snapshot must be internally consistent — never torn
// between the byte and message counters:
//
//   - all non-terminator frames are exactly chunkBlocks blocks (the
//     batch size is a chunk multiple), so BytesSent is always a whole
//     number of frames;
//   - a message carries at most one frame, so frames <= MsgsSent;
//   - counters are monotone across polls;
//   - with no Recv on the sending endpoint, Flights pins at 1.
//
// Run under -race this also proves Stats() takes the counter lock: an
// unlocked read would trip the detector against noteSend.
func TestStatsSnapshotConsistency(t *testing.T) {
	saved := chunkBlocks
	chunkBlocks = 8
	defer func() { chunkBlocks = saved }()
	frameBytes := int64(chunkBlocks * block.Size)

	a, b := Pipe()
	defer a.Close()
	defer b.Close()

	const (
		senders = 4
		sends   = 50
		frames  = 3 // full frames per logical send
	)
	// Each logical SendBlocks ships `frames` full chunks plus an empty
	// terminator frame (batch size is an exact chunk multiple).
	totalMsgs := senders * sends * (frames + 1)

	// Drain the peer so the pipe's buffered channels never block.
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for i := 0; i < totalMsgs; i++ {
			if _, err := b.Recv(); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	var done atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var prev Stats
		for !done.Load() {
			s := a.Stats()
			if s.BytesSent%frameBytes != 0 {
				t.Errorf("torn snapshot: %d bytes is not a whole number of %d-byte frames", s.BytesSent, frameBytes)
				return
			}
			if s.BytesSent/frameBytes > int64(s.MsgsSent) {
				t.Errorf("torn snapshot: %d bytes implies more frames than %d messages", s.BytesSent, s.MsgsSent)
				return
			}
			if s.MsgsSent < prev.MsgsSent || s.BytesSent < prev.BytesSent {
				t.Errorf("counters went backwards: %+v after %+v", s, prev)
				return
			}
			if s.MsgsSent > 0 && s.Flights != 1 {
				t.Errorf("flights = %d with no turnaround, want 1", s.Flights)
				return
			}
			prev = s
		}
	}()

	batch := make([]block.Block, frames*chunkBlocks)
	var sendWG sync.WaitGroup
	for g := 0; g < senders; g++ {
		sendWG.Add(1)
		go func() {
			defer sendWG.Done()
			for i := 0; i < sends; i++ {
				if err := SendBlocks(a, batch); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	sendWG.Wait()
	done.Store(true)
	wg.Wait()
	<-drained

	s := a.Stats()
	if s.MsgsSent != totalMsgs || s.BytesSent != int64(senders*sends*frames)*frameBytes {
		t.Fatalf("final stats %+v: want %d msgs, %d bytes",
			s, totalMsgs, int64(senders*sends*frames)*frameBytes)
	}
	if got := b.Stats(); got.MsgsReceived != totalMsgs || got.BytesReceived != s.BytesSent {
		t.Fatalf("receiver stats %+v disagree with sender %+v", got, s)
	}
}
