package iknp

import (
	"math/rand"
	"testing"

	"ironman/internal/block"
	"ironman/internal/transport"
)

// setup establishes an extension pair over an in-process pipe.
func setup(t testing.TB, delta block.Block) (*Sender, *Receiver) {
	t.Helper()
	a, b := transport.Pipe()
	sCh := make(chan *Sender, 1)
	errCh := make(chan error, 1)
	go func() {
		s, err := NewSender(a, delta)
		sCh <- s
		errCh <- err
	}()
	r, err := NewReceiver(b)
	if err != nil {
		t.Fatal(err)
	}
	s := <-sCh
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	return s, r
}

func checkCOT(t *testing.T, delta block.Block, r0, rb []block.Block, choices []bool) {
	t.Helper()
	for j := range r0 {
		want := r0[j]
		if choices[j] {
			want = want.Xor(delta)
		}
		if rb[j] != want {
			t.Fatalf("COT %d: correlation broken", j)
		}
	}
}

func TestExtendCorrelation(t *testing.T) {
	delta := block.New(0x0123456789abcdef, 0xfedcba9876543210)
	s, r := setup(t, delta)

	const n = 1000
	rng := rand.New(rand.NewSource(3))
	choices := make([]bool, n)
	for i := range choices {
		choices[i] = rng.Intn(2) == 1
	}
	r0Ch := make(chan []block.Block, 1)
	errCh := make(chan error, 1)
	go func() {
		r0, err := s.Extend(n)
		r0Ch <- r0
		errCh <- err
	}()
	rb, err := r.Extend(choices)
	if err != nil {
		t.Fatal(err)
	}
	r0 := <-r0Ch
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	checkCOT(t, delta, r0, rb, choices)
}

func TestExtendTwiceIndependent(t *testing.T) {
	delta := block.New(5, 7)
	s, r := setup(t, delta)
	var first []block.Block
	for round := 0; round < 2; round++ {
		const n = 64
		choices := make([]bool, n) // all zero: rb must equal r0
		r0Ch := make(chan []block.Block, 1)
		go func() {
			r0, err := s.Extend(n)
			if err != nil {
				t.Error(err)
			}
			r0Ch <- r0
		}()
		rb, err := r.Extend(choices)
		if err != nil {
			t.Fatal(err)
		}
		r0 := <-r0Ch
		checkCOT(t, delta, r0, rb, choices)
		if round == 0 {
			first = r0
		} else if block.Equal(first, r0) {
			t.Fatal("two Extend calls produced identical correlations")
		}
	}
}

func TestExtendOddSizes(t *testing.T) {
	delta := block.New(1, 2)
	s, r := setup(t, delta)
	for _, n := range []int{1, 7, 129} {
		choices := make([]bool, n)
		for i := range choices {
			choices[i] = i%3 == 0
		}
		r0Ch := make(chan []block.Block, 1)
		go func() {
			r0, err := s.Extend(n)
			if err != nil {
				t.Error(err)
			}
			r0Ch <- r0
		}()
		rb, err := r.Extend(choices)
		if err != nil {
			t.Fatal(err)
		}
		checkCOT(t, delta, <-r0Ch, rb, choices)
	}
}

func TestChoiceBitsAreHidden(t *testing.T) {
	// Structural sanity: the receiver's message u must not equal its
	// choice vector x (it is masked by two PRG expansions). We check
	// that flipping a choice bit changes u in exactly the columns'
	// matching positions rather than leaking x directly.
	delta := block.New(9, 9)
	s, r := setup(t, delta)
	const n = 16
	choices := make([]bool, n)
	choices[3] = true
	go func() { _, _ = s.Extend(n) }()
	if _, err := r.Extend(choices); err != nil {
		t.Fatal(err)
	}
	// If we got here the protocol ran; the hiding argument is the PRG.
}

func TestTranspose(t *testing.T) {
	// 128 columns of 16 bits with a recognizable pattern: column i has
	// bit j set iff i == j. Rows must be unit blocks.
	cols := make([][]byte, kappa)
	for i := range cols {
		cols[i] = make([]byte, 2)
		if i < 16 {
			cols[i][i/8] = 1 << uint(i%8)
		}
	}
	rows := transpose(cols, 16)
	for j := 0; j < 16; j++ {
		var want block.Block
		want = want.SetBit(j, 1)
		if rows[j] != want {
			t.Fatalf("row %d = %v, want unit at %d", j, rows[j], j)
		}
	}
}

func BenchmarkExtend(b *testing.B) {
	delta := block.New(1, 2)
	s, r := setup(b, delta)
	const n = 1 << 14
	choices := make([]bool, n)
	b.SetBytes(int64(n * block.Size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := make(chan struct{})
		go func() {
			_, _ = s.Extend(n)
			close(done)
		}()
		if _, err := r.Extend(choices); err != nil {
			b.Fatal(err)
		}
		<-done
	}
}
