// Package iknp implements the IKNP03 OT extension in its correlated-OT
// form. It is both one of the three OTE families the paper surveys
// (§2.3) and the initializer of the PCG-style protocol: Ferret's first
// iteration needs k + t·log2(ℓ) COT correlations, which IKNP produces
// from 128 public-key base OTs at one column of communication per
// extended COT.
//
// Construction (semi-honest): the extension sender's global Δ doubles
// as its base-OT choice vector s. The extension receiver plays base-OT
// sender with random key pairs (k_i^0, k_i^1); for n extended COTs it
// sends u_i = PRG(k_i^0) ⊕ PRG(k_i^1) ⊕ x (x = its choice bits), and
// the sender computes q_i = PRG(k_i^{s_i}) ⊕ s_i·u_i. Row j of the
// transposed matrix satisfies q_j = t_j ⊕ x_j·s — a COT with Δ = s.
package iknp

import (
	"fmt"

	"ironman/internal/aesprg"
	"ironman/internal/baseot"
	"ironman/internal/block"
	"ironman/internal/transport"
)

const kappa = 128 // computational security parameter / matrix width

// Sender is the OT-extension sender (holder of Δ).
type Sender struct {
	conn  transport.Conn
	Delta block.Block
	keys  []block.Block // k_i^{s_i}
	ctr   uint64        // PRG stream position, advanced per Extend
}

// Receiver is the OT-extension receiver.
type Receiver struct {
	conn  transport.Conn
	keys0 []block.Block
	keys1 []block.Block
	ctr   uint64
}

// NewSender establishes the extension sender: it runs kappa base OTs as
// the base-OT *receiver*, choosing with the bits of delta.
func NewSender(conn transport.Conn, delta block.Block) (*Sender, error) {
	choices := make([]bool, kappa)
	for i := range choices {
		choices[i] = delta.Bit(i) == 1
	}
	keys, err := baseot.Receive(conn, choices)
	if err != nil {
		return nil, fmt.Errorf("iknp: base OT: %w", err)
	}
	return &Sender{conn: conn, Delta: delta, keys: keys}, nil
}

// NewReceiver establishes the extension receiver: it runs kappa base
// OTs as the base-OT *sender*.
func NewReceiver(conn transport.Conn) (*Receiver, error) {
	pairs, err := baseot.Send(conn, kappa)
	if err != nil {
		return nil, fmt.Errorf("iknp: base OT: %w", err)
	}
	r := &Receiver{conn: conn, keys0: make([]block.Block, kappa), keys1: make([]block.Block, kappa)}
	for i, p := range pairs {
		r.keys0[i] = p[0]
		r.keys1[i] = p[1]
	}
	return r, nil
}

// stream returns an AES-CTR PRG positioned at offset ctr (in bytes) of
// the keystream for key. Both parties advance ctr identically across
// Extend calls so extensions are independent.
func stream(key block.Block, ctr uint64) *aesprg.Stream {
	s := aesprg.NewStream(key)
	skip := make([]byte, 4096)
	for ctr > 0 {
		n := uint64(len(skip))
		if ctr < n {
			n = ctr
		}
		s.Fill(skip[:n])
		ctr -= n
	}
	return s
}

// Extend produces n more COT correlations: the returned blocks are the
// sender's r0 values (r1 = r0 ⊕ Δ implied).
func (s *Sender) Extend(n int) ([]block.Block, error) {
	nb := (n + 7) / 8
	u, err := s.conn.Recv()
	if err != nil {
		return nil, err
	}
	if len(u) != kappa*nb {
		return nil, fmt.Errorf("iknp: expected %d matrix bytes, got %d", kappa*nb, len(u))
	}
	q := make([][]byte, kappa)
	for i := 0; i < kappa; i++ {
		col := make([]byte, nb)
		stream(s.keys[i], s.ctr).Fill(col)
		if s.Delta.Bit(i) == 1 {
			ui := u[i*nb : (i+1)*nb]
			for j := range col {
				col[j] ^= ui[j]
			}
		}
		q[i] = col
	}
	s.ctr += uint64(nb)
	return transpose(q, n), nil
}

// Extend produces the receiver's side for the given choice bits: the
// returned blocks satisfy r_b[j] = r0[j] ⊕ choices[j]·Δ.
func (r *Receiver) Extend(choices []bool) ([]block.Block, error) {
	n := len(choices)
	nb := (n + 7) / 8
	x := make([]byte, nb)
	for j, c := range choices {
		if c {
			x[j/8] |= 1 << uint(j%8)
		}
	}
	t := make([][]byte, kappa)
	u := make([]byte, kappa*nb)
	for i := 0; i < kappa; i++ {
		t0 := make([]byte, nb)
		stream(r.keys0[i], r.ctr).Fill(t0)
		t1 := make([]byte, nb)
		stream(r.keys1[i], r.ctr).Fill(t1)
		ui := u[i*nb : (i+1)*nb]
		for j := 0; j < nb; j++ {
			ui[j] = t0[j] ^ t1[j] ^ x[j]
		}
		t[i] = t0
	}
	r.ctr += uint64(nb)
	if err := r.conn.Send(u); err != nil {
		return nil, err
	}
	return transpose(t, n), nil
}

// transpose converts kappa column bit-vectors into n row blocks: row j
// has bit i equal to bit j of column i.
func transpose(cols [][]byte, n int) []block.Block {
	rows := make([]block.Block, n)
	// Process 8 rows at a time: byte j8 of column i contributes one bit
	// to each of rows 8j8..8j8+7.
	for i := 0; i < kappa; i++ {
		col := cols[i]
		for j := 0; j < n; j++ {
			if col[j/8]>>uint(j%8)&1 == 1 {
				rows[j] = rows[j].SetBit(i, 1)
			}
		}
	}
	return rows
}
