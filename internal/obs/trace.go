package obs

import (
	"encoding/json"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// Tracer collects phase spans and renders them as Chrome trace-event
// JSON: load the output in chrome://tracing or https://ui.perfetto.dev
// to see the per-phase, per-worker breakdown of a run the way the
// paper's profiling figures slice OT extension. A nil *Tracer is
// disabled: Span returns an inert Span and the hot path pays one nil
// check (no time.Now call).
//
// Span taxonomy (see DESIGN.md "Observability"): names are
// dot-separated phase identifiers ("spcot.expand", "lpn.encode"), the
// category groups them ("extend" for main-thread phase spans,
// "extend.worker" for per-worker shards, "gmw"/"arith"/"pool" for the
// engines). Thread ids (tids) separate concurrent actors: protocol
// endpoints get a base tid (NameThread labels it) and their workers
// base+1+shard.
type Tracer struct {
	mu      sync.Mutex
	base    time.Time
	events  []TraceEvent
	threads map[int]string
}

// TraceEvent is one Chrome trace-event object. Complete spans use
// Ph "X" with microsecond Ts/Dur; thread-name metadata uses Ph "M".
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // µs since tracer start
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// NewTracer starts an enabled tracer; its clock zero is now.
func NewTracer() *Tracer {
	return &Tracer{base: time.Now(), threads: make(map[int]string)}
}

// Enabled reports whether spans will be recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// NameThread labels a tid in the rendered trace (Perfetto shows the
// name on the thread track).
func (t *Tracer) NameThread(tid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.threads[tid] = name
	t.mu.Unlock()
}

// Span opens a span on thread tid. End (or EndArgs) closes it. The
// returned value is inert when the tracer is nil.
func (t *Tracer) Span(name, cat string, tid int) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, cat: cat, tid: tid, begin: time.Now()}
}

// Span is one in-flight phase measurement. The zero Span is inert.
type Span struct {
	t     *Tracer
	name  string
	cat   string
	tid   int
	begin time.Time
}

// End closes the span and records it.
func (s Span) End() { s.EndArgs(nil) }

// EndArgs closes the span with key/value annotations (rendered in the
// trace viewer's args pane). Allocate the map only when the span is
// live: callers should guard with Live() or build args inline.
func (s Span) EndArgs(args map[string]any) {
	if s.t == nil {
		return
	}
	end := time.Now()
	ev := TraceEvent{
		Name: s.name,
		Cat:  s.cat,
		Ph:   "X",
		Ts:   float64(s.begin.Sub(s.t.base)) / float64(time.Microsecond),
		Dur:  float64(end.Sub(s.begin)) / float64(time.Microsecond),
		Tid:  s.tid,
		Args: args,
	}
	s.t.mu.Lock()
	s.t.events = append(s.t.events, ev)
	s.t.mu.Unlock()
}

// Live reports whether the span records anything — guard allocations
// for EndArgs with it.
func (s Span) Live() bool { return s.t != nil }

// Events returns a copy of the recorded spans (metadata events are
// synthesized at write time, not included here), sorted by start
// time.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]TraceEvent, len(t.events))
	copy(out, t.events)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Ts < out[j].Ts })
	return out
}

// traceFile is the JSON object format of the trace-event spec.
type traceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteJSON renders the trace in the Chrome trace-event JSON object
// format.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	events := make([]TraceEvent, 0, len(t.threads)+len(t.events))
	tids := make([]int, 0, len(t.threads))
	for tid := range t.threads {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		events = append(events, TraceEvent{
			Name: "thread_name", Ph: "M", Tid: tid,
			Args: map[string]any{"name": t.threads[tid]},
		})
	}
	events = append(events, t.events...)
	t.mu.Unlock()
	sort.SliceStable(events[len(tids):], func(i, j int) bool {
		return events[len(tids)+i].Ts < events[len(tids)+j].Ts
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// WriteFile writes the trace JSON to path.
func (t *Tracer) WriteFile(path string) error {
	if t == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
