package obs

import (
	"testing"
	"time"
)

// disabledBudget is the per-call ceiling for instrumentation on a hot
// path when observability is off. The real cost is one nil check
// (sub-nanosecond); the budget is two orders of magnitude looser so a
// loaded CI host never flakes, while still catching an accidental
// time.Now, map allocation or lock slipping into the disabled path
// (each of those costs ≥ tens of ns).
const disabledBudget = 200 * time.Nanosecond

// TestDisabledOverheadBudget asserts the overhead contract the
// instrumented hot paths (ferret Extend phases, gmw exchanges, pool
// draws) rely on: with a nil tracer/registry, instrument calls are
// near-free.
func TestDisabledOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing assertion")
	}
	cases := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"nil-span", func(b *testing.B) {
			var tr *Tracer
			for i := 0; i < b.N; i++ {
				tr.Span("x", "y", 0).End()
			}
		}},
		{"nil-counter", func(b *testing.B) {
			var c *Counter
			for i := 0; i < b.N; i++ {
				c.Add(1)
			}
		}},
		{"nil-histogram", func(b *testing.B) {
			var h *Histogram
			for i := 0; i < b.N; i++ {
				h.Observe(1)
			}
		}},
		{"nil-gauge", func(b *testing.B) {
			var g *Gauge
			for i := 0; i < b.N; i++ {
				g.Set(int64(i))
			}
		}},
	}
	for _, tc := range cases {
		res := testing.Benchmark(tc.fn)
		perOp := time.Duration(res.NsPerOp())
		if perOp > disabledBudget {
			t.Errorf("%s: %v/op exceeds disabled-instrumentation budget %v", tc.name, perOp, disabledBudget)
		}
		if res.AllocsPerOp() > 0 {
			t.Errorf("%s: %d allocs/op on the disabled path", tc.name, res.AllocsPerOp())
		}
	}
}

// BenchmarkEnabledSpan documents the cost of a live span (time.Now x2
// + one mutex append) for the overhead table in DESIGN.md.
func BenchmarkEnabledSpan(b *testing.B) {
	tr := NewTracer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Span("x", "y", 0).End()
	}
}

// BenchmarkEnabledCounter documents the cost of a live counter add.
func BenchmarkEnabledCounter(b *testing.B) {
	var c Counter
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}
