// Package obs is the unified observability layer: a concurrent
// metrics registry (counters, gauges, bounded-bucket latency
// histograms) and span-based phase tracing that emits Chrome
// trace-event JSON (trace.go). It exists to reproduce, from measured
// software, the phase-breakdown methodology the paper starts from —
// profile OT extension into its phases (base OT, GGM/SPCOT expansion,
// LPN encoding, hashing) to locate the memory-bound bottleneck before
// accelerating it — and to give the dispenser fleet a scrape surface.
//
// Design constraints (see DESIGN.md "Observability"):
//
//   - Zero external dependencies: the standard library only.
//   - Nil-safe everywhere: every method works on a nil receiver as a
//     no-op, so instrumented hot paths cost one nil check when
//     observability is disabled (the overhead budget is asserted by
//     TestDisabledOverheadBudget).
//   - No wire perturbation: instrumentation only observes local
//     compute and byte counters; protocol transcripts are guarded by
//     the ferret transcript-determinism tests run with tracing on.
//
// Metric naming follows the Prometheus convention
// ironman_<subsystem>_<what>_<unit> with labels appended via Name /
// Labels, e.g. ironman_pool_draws_total{session="3",half="sender"}.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric. The zero value
// is ready to use; a nil *Counter is a no-op sink.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous int64 metric. A nil *Gauge is a no-op
// sink.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefLatencyBuckets are the default histogram bounds, in seconds:
// exponential (x4) from 1 µs to 16 s — wide enough for a sub-µs warm
// pool draw and a multi-second cold 2^24 Extend refill in one
// histogram, bounded at 14 buckets so a registry of many series stays
// small.
var DefLatencyBuckets = []float64{
	1e-6, 4e-6, 16e-6, 64e-6, 256e-6,
	1e-3, 4e-3, 16e-3, 64e-3, 256e-3,
	1, 4, 16,
}

// Histogram is a bounded-bucket histogram with cumulative-bucket
// quantile estimation. Observations above the last bound land in an
// implicit +Inf bucket. A nil *Histogram is a no-op sink.
type Histogram struct {
	mu      sync.Mutex
	bounds  []float64 // upper bounds, ascending
	buckets []uint64  // len(bounds)+1; last is +Inf
	count   uint64
	sum     float64
}

// NewHistogram builds a histogram over the given ascending upper
// bounds (nil selects DefLatencyBuckets).
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	return &Histogram{bounds: bounds, buckets: make([]uint64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.buckets[i]++
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// HistSnapshot is one histogram's point-in-time view, with the
// quantiles the paper-style phase breakdowns and SLO reporting want.
type HistSnapshot struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Snapshot returns counts, sum and interpolated p50/p95/p99.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistSnapshot{
		Count: h.count,
		Sum:   h.sum,
		P50:   h.quantileLocked(0.50),
		P95:   h.quantileLocked(0.95),
		P99:   h.quantileLocked(0.99),
	}
}

// Quantile estimates the q-quantile (0 < q < 1) by linear
// interpolation within the covering bucket; samples in the +Inf bucket
// report the last finite bound (a floor, clearly marked by saturating
// there).
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := q * float64(h.count)
	cum := uint64(0)
	for i, c := range h.buckets {
		prev := cum
		cum += c
		if float64(cum) < rank || c == 0 {
			continue
		}
		if i >= len(h.bounds) { // +Inf bucket: saturate at last bound
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		frac := (rank - float64(prev)) / float64(c)
		if frac < 0 {
			frac = 0
		} else if frac > 1 {
			frac = 1
		}
		return lo + (hi-lo)*frac
	}
	return h.bounds[len(h.bounds)-1]
}

// snapshotBuckets returns (bounds, cumulative counts, count, sum) for
// the Prometheus exposition.
func (h *Histogram) snapshotBuckets() ([]float64, []uint64, uint64, float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := make([]uint64, len(h.buckets))
	running := uint64(0)
	for i, c := range h.buckets {
		running += c
		cum[i] = running
	}
	return h.bounds, cum, h.count, h.sum
}

// Labels formats alternating key/value pairs into the Prometheus
// label-set syntax (without braces): Labels("session", "3", "half",
// "sender") == `session="3",half="sender"`. Keys are emitted in the
// given order; %q escaping covers the format's \, " and \n rules.
func Labels(kv ...string) string {
	var b strings.Builder
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	return b.String()
}

// Name joins a metric family with an optional label set:
// Name("ironman_pool_draws_total", `session="3"`) ==
// `ironman_pool_draws_total{session="3"}`.
func Name(family, labels string) string {
	if labels == "" {
		return family
	}
	return family + "{" + labels + "}"
}

// splitName separates a (possibly labeled) series name into family and
// label set.
func splitName(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], strings.TrimSuffix(name[i+1:], "}")
	}
	return name, ""
}

// Registry is a concurrent get-or-create store of named metrics. A nil
// *Registry hands out nil instruments, so a code path instrumented
// against a registry that was never configured stays a chain of no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on
// first use. Nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// with DefLatencyBuckets on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(nil)
		r.hists[name] = h
	}
	return h
}

// Drop removes every series whose full name matches pred and reports
// how many were removed. Serving layers use it to retire per-session
// series at teardown, so a long-lived registry's cardinality is
// bounded by live sessions, not lifetime sessions.
func (r *Registry) Drop(pred func(name string) bool) int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for name := range r.counters {
		if pred(name) {
			delete(r.counters, name)
			n++
		}
	}
	for name := range r.gauges {
		if pred(name) {
			delete(r.gauges, name)
			n++
		}
	}
	for name := range r.hists {
		if pred(name) {
			delete(r.hists, name)
			n++
		}
	}
	return n
}

// Metric is one series in a registry snapshot (the JSON view the
// admin /sessions-style dumps and examples print).
type Metric struct {
	Name  string        `json:"name"`
	Type  string        `json:"type"` // "counter" | "gauge" | "histogram"
	Value float64       `json:"value,omitempty"`
	Hist  *HistSnapshot `json:"histogram,omitempty"`
}

// Snapshot returns every registered series, sorted by name.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	type hentry struct {
		name string
		h    *Histogram
	}
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	hists := make([]hentry, 0, len(r.hists))
	for name, c := range r.counters {
		out = append(out, Metric{Name: name, Type: "counter", Value: float64(c.Value())})
	}
	for name, g := range r.gauges {
		out = append(out, Metric{Name: name, Type: "gauge", Value: float64(g.Value())})
	}
	for name, h := range r.hists {
		hists = append(hists, hentry{name, h})
	}
	r.mu.Unlock()
	// Histogram snapshots take the histogram mutex; do it outside the
	// registry lock.
	for _, e := range hists {
		s := e.h.Snapshot()
		out = append(out, Metric{Name: e.name, Type: "histogram", Hist: &s})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
