package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered series in the Prometheus
// text exposition format (version 0.0.4): one # TYPE line per metric
// family, then the family's series sorted by label set. Histograms
// expose the standard cumulative _bucket/_sum/_count series with the
// le label merged into any series labels.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	type series struct {
		labels string
		lines  func(family, labels string, w io.Writer) error
	}
	// family -> type -> sorted series
	fams := make(map[string]string) // family -> "counter"|"gauge"|"histogram"
	byFam := make(map[string][]series)

	r.mu.Lock()
	for name, c := range r.counters {
		fam, labels := splitName(name)
		v := c.Value()
		fams[fam] = "counter"
		byFam[fam] = append(byFam[fam], series{labels, func(fam, labels string, w io.Writer) error {
			_, err := fmt.Fprintf(w, "%s %d\n", Name(fam, labels), v)
			return err
		}})
	}
	for name, g := range r.gauges {
		fam, labels := splitName(name)
		v := g.Value()
		fams[fam] = "gauge"
		byFam[fam] = append(byFam[fam], series{labels, func(fam, labels string, w io.Writer) error {
			_, err := fmt.Fprintf(w, "%s %d\n", Name(fam, labels), v)
			return err
		}})
	}
	type hset struct {
		name string
		h    *Histogram
	}
	var hists []hset
	for name, h := range r.hists {
		hists = append(hists, hset{name, h})
	}
	r.mu.Unlock()

	for _, e := range hists {
		fam, labels := splitName(e.name)
		bounds, cum, count, sum := e.h.snapshotBuckets()
		fams[fam] = "histogram"
		byFam[fam] = append(byFam[fam], series{labels, func(fam, labels string, w io.Writer) error {
			for i, b := range bounds {
				le := Labels("le", formatBound(b))
				all := le
				if labels != "" {
					all = labels + "," + le
				}
				if _, err := fmt.Fprintf(w, "%s %d\n", Name(fam+"_bucket", all), cum[i]); err != nil {
					return err
				}
			}
			inf := `le="+Inf"`
			if labels != "" {
				inf = labels + "," + inf
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", Name(fam+"_bucket", inf), cum[len(cum)-1]); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s %s\n", Name(fam+"_sum", labels), formatFloat(sum)); err != nil {
				return err
			}
			_, err := fmt.Fprintf(w, "%s %d\n", Name(fam+"_count", labels), count)
			return err
		}})
	}

	names := make([]string, 0, len(byFam))
	for fam := range byFam {
		names = append(names, fam)
	}
	sort.Strings(names)
	for _, fam := range names {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, fams[fam]); err != nil {
			return err
		}
		ss := byFam[fam]
		sort.Slice(ss, func(i, j int) bool { return ss[i].labels < ss[j].labels })
		for _, s := range ss {
			if err := s.lines(fam, s.labels, w); err != nil {
				return err
			}
		}
	}
	return nil
}

// formatBound renders a bucket upper bound the way Prometheus expects
// (shortest float form, no exponent surprises for common values).
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	s := strconv.FormatFloat(v, 'g', -1, 64)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0" // keep floats recognizably floats
	}
	return s
}
