package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total")
	c.Add(3)
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if r.Counter("x_total") != c {
		t.Fatal("Counter not idempotent per name")
	}
	g := r.Gauge("x")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("a")
	c.Add(1)
	if c.Value() != 0 {
		t.Fatal("nil counter must stay 0")
	}
	r.Gauge("b").Set(2)
	r.Histogram("c").Observe(1)
	if got := r.Histogram("c").Snapshot(); got.Count != 0 {
		t.Fatal("nil histogram must stay empty")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
	if err := r.WritePrometheus(nil); err != nil {
		t.Fatal(err)
	}
	if n := r.Drop(func(string) bool { return true }); n != 0 {
		t.Fatal("nil registry drop must be 0")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	// 100 samples uniform in bucket (1,2].
	for i := 0; i < 100; i++ {
		h.Observe(1.5)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.P50 < 1 || s.P50 > 2 {
		t.Fatalf("p50 = %v, want within (1,2]", s.P50)
	}
	if s.P99 < 1 || s.P99 > 2 {
		t.Fatalf("p99 = %v, want within (1,2]", s.P99)
	}
	// Overflow samples saturate at the last bound.
	h2 := NewHistogram([]float64{1, 2})
	h2.Observe(100)
	if got := h2.Quantile(0.5); got != 2 {
		t.Fatalf("overflow quantile = %v, want saturation at 2", got)
	}
	// Split population: half at 0.5, half at 3 → p50 in first bucket,
	// p95 in the (2,∞) overflow.
	h3 := NewHistogram([]float64{1, 2})
	for i := 0; i < 50; i++ {
		h3.Observe(0.5)
		h3.Observe(3)
	}
	if got := h3.Quantile(0.25); got > 1 {
		t.Fatalf("p25 = %v, want <= 1", got)
	}
	if got := h3.Quantile(0.95); got != 2 {
		t.Fatalf("p95 = %v, want overflow saturation 2", got)
	}
}

func TestLabelsAndName(t *testing.T) {
	l := Labels("session", "3", "half", "sender")
	if l != `session="3",half="sender"` {
		t.Fatalf("labels = %s", l)
	}
	n := Name("pool_draws_total", l)
	if n != `pool_draws_total{session="3",half="sender"}` {
		t.Fatalf("name = %s", n)
	}
	if Name("x", "") != "x" {
		t.Fatal("empty labels must not add braces")
	}
	fam, lab := splitName(n)
	if fam != "pool_draws_total" || lab != `session="3",half="sender"` {
		t.Fatalf("splitName = %q / %q", fam, lab)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter(Name("ironman_pool_draws_total", Labels("half", "sender"))).Add(5)
	r.Counter(Name("ironman_pool_draws_total", Labels("half", "receiver"))).Add(7)
	r.Gauge("ironman_otserv_sessions").Set(2)
	h := r.Histogram(Name("ironman_pool_draw_wait_seconds", Labels("half", "sender")))
	h.Observe(0.002)
	h.Observe(0.5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE ironman_pool_draws_total counter",
		`ironman_pool_draws_total{half="receiver"} 7`,
		`ironman_pool_draws_total{half="sender"} 5`,
		"# TYPE ironman_otserv_sessions gauge",
		"ironman_otserv_sessions 2",
		"# TYPE ironman_pool_draw_wait_seconds histogram",
		`ironman_pool_draw_wait_seconds_bucket{half="sender",le="0.004"} 1`,
		`ironman_pool_draw_wait_seconds_bucket{half="sender",le="+Inf"} 2`,
		`ironman_pool_draw_wait_seconds_count{half="sender"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// TYPE lines must precede their series and appear exactly once.
	if strings.Count(out, "# TYPE ironman_pool_draws_total") != 1 {
		t.Fatalf("family TYPE line repeated:\n%s", out)
	}
}

func TestRegistryDrop(t *testing.T) {
	r := NewRegistry()
	r.Counter(`a_total{session="1"}`).Add(1)
	r.Counter(`a_total{session="2"}`).Add(1)
	r.Histogram(`b_seconds{session="1"}`).Observe(1)
	n := r.Drop(func(name string) bool { return strings.Contains(name, `session="1"`) })
	if n != 2 {
		t.Fatalf("dropped %d series, want 2", n)
	}
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Name != `a_total{session="2"}` {
		t.Fatalf("unexpected survivors: %+v", snap)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c_total").Inc()
				r.Histogram("h_seconds").Observe(0.001)
				r.Gauge("g").Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h_seconds").Snapshot().Count; got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}
