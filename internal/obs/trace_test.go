package obs

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestTracerSpans(t *testing.T) {
	tr := NewTracer()
	tr.NameThread(1, "sender")
	sp := tr.Span("lpn.encode", "extend", 1)
	time.Sleep(2 * time.Millisecond)
	sp.EndArgs(map[string]any{"rows": 100})
	tr.Span("spcot.expand", "extend.worker", 2).End()

	events := tr.Events()
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	var encode *TraceEvent
	for i := range events {
		if events[i].Name == "lpn.encode" {
			encode = &events[i]
		}
	}
	if encode == nil {
		t.Fatal("lpn.encode span missing")
	}
	if encode.Ph != "X" || encode.Tid != 1 || encode.Cat != "extend" {
		t.Fatalf("bad span shape: %+v", encode)
	}
	if encode.Dur < 1000 { // µs
		t.Fatalf("span duration %v µs, slept 2ms", encode.Dur)
	}
	if encode.Args["rows"] != 100 {
		t.Fatalf("args lost: %+v", encode.Args)
	}
}

// TestTracerJSONValid: the emitted document must parse as the Chrome
// trace-event object format with thread metadata first.
func TestTracerJSONValid(t *testing.T) {
	tr := NewTracer()
	tr.NameThread(1, "ferret.sender")
	tr.Span("extend", "extend", 1).End()

	var b bytes.Buffer
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d events, want metadata + span", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0].Ph != "M" || doc.TraceEvents[0].Args["name"] != "ferret.sender" {
		t.Fatalf("metadata event malformed: %+v", doc.TraceEvents[0])
	}
	if doc.TraceEvents[1].Name != "extend" || doc.TraceEvents[1].Ph != "X" {
		t.Fatalf("span event malformed: %+v", doc.TraceEvents[1])
	}
}

func TestTracerNil(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer must be disabled")
	}
	sp := tr.Span("x", "y", 0)
	if sp.Live() {
		t.Fatal("nil tracer span must be inert")
	}
	sp.End()
	sp.EndArgs(map[string]any{"a": 1})
	tr.NameThread(1, "x")
	if tr.Events() != nil {
		t.Fatal("nil tracer events must be nil")
	}
	if err := tr.WriteJSON(nil); err != nil {
		t.Fatal(err)
	}
}

// TestTracerConcurrent exercises concurrent span recording from
// worker goroutines (the per-worker expand/encode spans do exactly
// this).
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Span("work", "test", w).End()
			}
		}(w)
	}
	wg.Wait()
	if got := len(tr.Events()); got != 800 {
		t.Fatalf("got %d events, want 800", got)
	}
}
