// Index sorting for the memory-side cache (§5.3, Figures 5 and 11).
//
// LPN's accesses into the length-k input vector are uniformly random, so
// a small cache in front of DRAM thrashes. Because the matrix A is fixed
// across all protocol executions, Ironman reorders it once at compile
// time:
//
//   - Column Swapping relabels the input positions in first-use order,
//     turning scattered indices into mostly-ascending ones so consecutive
//     accesses share cache lines (spatial locality);
//   - Row Look-ahead reorders row processing within a window, greedily
//     picking the pending row with the most indices already resident in a
//     simulated copy of the memory-side cache (temporal locality). The
//     Rowidx array remembers each row's true output slot.
//
// Both transforms preserve the encoded output exactly: column swapping
// is compensated by permuting the input vector (legitimate under the
// LPN assumption — the input is uniformly random either way, and both
// parties permute consistently), and row look-ahead only changes the
// order in which independent output rows are produced.
package lpn

import "ironman/internal/block"

// Sorted is a compile-time-sorted view of a Code.
type Sorted struct {
	code *Code
	// ColPerm maps original column -> permuted position. The permuted
	// input vector is rPerm[ColPerm[j]] = r[j].
	ColPerm []uint32
	// idx holds permuted column indices in processing order:
	// processing step i uses idx[i*D:(i+1)*D].
	idx []uint32
	// Rowidx[i] is the true output row of processing step i.
	Rowidx []uint32
}

// SortOptions tunes the sorting pass.
type SortOptions struct {
	// ColumnSwap enables first-use relabeling of columns.
	ColumnSwap bool
	// LookaheadWindow is the number of pending rows the row scheduler
	// examines; 0 disables row look-ahead (rows stay in natural order).
	LookaheadWindow int
	// CacheLines and LineWords describe the simulated memory-side cache
	// used to score pending rows: capacity in lines and 16-byte input
	// elements per line (a 64 B line holds 4 elements). Only used when
	// LookaheadWindow > 0.
	CacheLines int
	LineWords  int
}

// DefaultSort is the configuration the Ironman design point uses: both
// transforms on, a 16-row window, scored against a 256 KB cache with
// 64-byte lines.
func DefaultSort() SortOptions {
	return SortOptions{
		ColumnSwap:      true,
		LookaheadWindow: 16,
		CacheLines:      256 * 1024 / 64,
		LineWords:       4,
	}
}

// Sort produces the sorted view. The pass is deterministic, so the two
// protocol parties derive identical views from the shared code.
func (c *Code) Sort(opts SortOptions) *Sorted {
	s := &Sorted{code: c}

	// Column swapping: relabel columns in first-use order.
	s.ColPerm = make([]uint32, c.K)
	if opts.ColumnSwap {
		const unset = ^uint32(0)
		for j := range s.ColPerm {
			s.ColPerm[j] = unset
		}
		next := uint32(0)
		for _, j := range c.idx {
			if s.ColPerm[j] == unset {
				s.ColPerm[j] = next
				next++
			}
		}
		// Columns never referenced keep stable positions at the end.
		for j := range s.ColPerm {
			if s.ColPerm[j] == unset {
				s.ColPerm[j] = next
				next++
			}
		}
	} else {
		for j := range s.ColPerm {
			s.ColPerm[j] = uint32(j)
		}
	}

	// Apply the relabeling to a private copy of the index matrix.
	permIdx := make([]uint32, len(c.idx))
	for i, j := range c.idx {
		permIdx[i] = s.ColPerm[j]
	}

	// Row look-ahead: greedy cache-aware ordering.
	s.Rowidx = make([]uint32, c.N)
	if opts.LookaheadWindow <= 1 {
		for i := range s.Rowidx {
			s.Rowidx[i] = uint32(i)
		}
	} else {
		s.Rowidx = lookaheadOrder(permIdx, c.N, c.D, opts)
	}

	// Materialize processing-order indices.
	s.idx = make([]uint32, len(c.idx))
	for i, row := range s.Rowidx {
		copy(s.idx[i*c.D:(i+1)*c.D], permIdx[int(row)*c.D:(int(row)+1)*c.D])
	}
	return s
}

// lookaheadOrder simulates the memory-side cache and, at every step,
// issues the pending row (within the window) whose indices hit the most
// resident lines.
func lookaheadOrder(permIdx []uint32, n, d int, opts SortOptions) []uint32 {
	order := make([]uint32, 0, n)
	cache := newClockCache(opts.CacheLines)
	lw := uint32(opts.LineWords)
	if lw == 0 {
		lw = 4
	}
	window := opts.LookaheadWindow

	// pending rows kept as a sliding window over natural order.
	nextRow := 0
	pend := make([]uint32, 0, window)
	for len(pend) < window && nextRow < n {
		pend = append(pend, uint32(nextRow))
		nextRow++
	}
	for len(pend) > 0 {
		best, bestScore := 0, -1
		for pi, row := range pend {
			score := 0
			for _, col := range permIdx[int(row)*d : (int(row)+1)*d] {
				if cache.contains(col / lw) {
					score++
				}
			}
			if score > bestScore {
				best, bestScore = pi, score
			}
		}
		row := pend[best]
		order = append(order, row)
		for _, col := range permIdx[int(row)*d : (int(row)+1)*d] {
			cache.touch(col / lw)
		}
		// Refill the window.
		pend[best] = pend[len(pend)-1]
		pend = pend[:len(pend)-1]
		if nextRow < n {
			pend = append(pend, uint32(nextRow))
			nextRow++
		}
	}
	return order
}

// clockCache is a cheap fully-associative line set with CLOCK eviction,
// good enough for scheduling decisions (the precise simulator lives in
// internal/sim/cache).
type clockCache struct {
	cap   int
	lines map[uint32]bool
	ring  []uint32
	hand  int
}

func newClockCache(capacity int) *clockCache {
	if capacity < 1 {
		capacity = 1
	}
	return &clockCache{cap: capacity, lines: make(map[uint32]bool, capacity)}
}

func (c *clockCache) contains(line uint32) bool { return c.lines[line] }

func (c *clockCache) touch(line uint32) {
	if c.lines[line] {
		return
	}
	if len(c.ring) < c.cap {
		c.ring = append(c.ring, line)
		c.lines[line] = true
		return
	}
	victim := c.ring[c.hand]
	delete(c.lines, victim)
	c.ring[c.hand] = line
	c.lines[line] = true
	c.hand = (c.hand + 1) % c.cap
}

// PermuteInput produces the column-swapped copy of an input vector:
// out[ColPerm[j]] = in[j]. Both parties apply this to their LPN inputs
// before running the sorted encoder.
func (s *Sorted) PermuteInput(in []block.Block) []block.Block {
	out := make([]block.Block, len(in))
	for j, v := range in {
		out[s.ColPerm[j]] = v
	}
	return out
}

// PermuteInputBits is PermuteInput for the receiver's bit vector e.
func (s *Sorted) PermuteInputBits(in []bool) []bool {
	out := make([]bool, len(in))
	for j, v := range in {
		out[s.ColPerm[j]] = v
	}
	return out
}

// EncodeBlocks runs the encoder over the sorted layout: rows are
// processed in look-ahead order against the permuted input, and Rowidx
// routes each result to its true output slot. The result is bit-for-bit
// identical to Code.EncodeBlocks on the unsorted layout.
func (s *Sorted) EncodeBlocks(out, rPerm, w []block.Block) {
	c := s.code
	if len(out) != c.N || len(rPerm) != c.K {
		panic("lpn: Sorted.EncodeBlocks dimension mismatch")
	}
	for i := 0; i < c.N; i++ {
		var acc block.Block
		for _, j := range s.idx[i*c.D : (i+1)*c.D] {
			acc.Lo ^= rPerm[j].Lo
			acc.Hi ^= rPerm[j].Hi
		}
		row := s.Rowidx[i]
		if w != nil {
			acc = acc.Xor(w[row])
		}
		out[row] = acc
	}
}

// AccessTrace invokes f for every permuted input access in processing
// order — the exact address stream the Rank-NMP module issues.
func (s *Sorted) AccessTrace(f func(col uint32)) {
	for _, j := range s.idx {
		f(j)
	}
}
