// Package lpn implements the local linear code used by PCG-style OT
// extension (§2.3.2 of the paper): a d-regular sparse binary matrix A
// (k columns, n rows when viewed output-major) fixed once per parameter
// set. Encoding is the memory-bound half of the protocol:
//
//	sender:    z = r·A ⊕ w            (blocks)
//	receiver:  x = e·A ⊕ u            (bits)
//	           y = s·A ⊕ v            (blocks)
//
// where every output row XORs d=10 randomly indexed entries of the
// length-k input — the irregular access pattern the Ironman NMP
// architecture attacks with rank parallelism, a memory-side cache and
// compile-time index sorting (implemented in sort.go).
package lpn

import (
	"fmt"

	"ironman/internal/aesprg"
	"ironman/internal/block"
	"ironman/internal/obs"
	"ironman/internal/parallel"
)

// DefaultD is the row weight of the baseline parameter sets (each
// output depends on exactly 10 input positions).
const DefaultD = 10

// Code is a fixed d-regular sparse matrix in the compressed form the
// paper calls CSR-with-implicit-values: only the column indices are
// stored (all values are 1, all rows have exactly D entries, so Rowptr
// is implicit).
type Code struct {
	N, K, D int
	// idx holds the column indices row-major: row i uses
	// idx[i*D : (i+1)*D].
	idx []uint32
}

// New derives the code for (n, k, d) from seed. The derivation is a
// deterministic AES-CTR stream, mirroring how both parties of the real
// protocol regenerate the same fixed matrix A from a public seed. The d
// indices within a row are distinct (regular code).
func New(seed block.Block, n, k, d int) *Code {
	if n < 1 || k < d || d < 1 {
		panic(fmt.Sprintf("lpn: bad dimensions n=%d k=%d d=%d", n, k, d))
	}
	s := aesprg.NewStream(seed)
	c := &Code{N: n, K: k, D: d, idx: make([]uint32, n*d)}
	for i := 0; i < n; i++ {
		row := c.idx[i*d : (i+1)*d]
		for j := 0; j < d; j++ {
		draw:
			v := s.Uint32n(uint32(k))
			for jj := 0; jj < j; jj++ {
				if row[jj] == v {
					goto draw
				}
			}
			row[j] = v
		}
	}
	return c
}

// Row returns the column indices of row i (shared storage, do not
// modify).
func (c *Code) Row(i int) []uint32 { return c.idx[i*c.D : (i+1)*c.D] }

// EncodeBlocks computes out[i] = w[i] ⊕ XOR_j r[A_i,j] for every row.
// w may be nil, in which case the pure syndrome r·A is produced.
// out must have length N and r length K.
func (c *Code) EncodeBlocks(out, r, w []block.Block) {
	c.EncodeBlocksParallel(out, r, w, 1)
}

// EncodeBlocksParallel is EncodeBlocks sharded across up to `workers`
// goroutines by contiguous row ranges — the software analog of the
// paper's rank-parallel encode. Rows are independent (each writes only
// out[i] and reads the shared r/w), so the output is identical to the
// sequential encode for any worker count; workers <= 0 selects
// runtime.GOMAXPROCS, 1 is the sequential path.
func (c *Code) EncodeBlocksParallel(out, r, w []block.Block, workers int) {
	c.EncodeBlocksSpans(out, r, w, workers, nil, 0)
}

// EncodeBlocksSpans is EncodeBlocksParallel with per-worker tracing:
// each shard records an "lpn.encode" span on thread tidBase+1+shard
// with its row range, making the rank-parallel encode — the
// memory-bound phase the paper's NMP design accelerates — visible in
// the trace viewer one worker lane at a time. tr == nil is exactly
// EncodeBlocksParallel.
func (c *Code) EncodeBlocksSpans(out, r, w []block.Block, workers int, tr *obs.Tracer, tidBase int) {
	if len(out) != c.N || len(r) != c.K {
		panic("lpn: EncodeBlocks dimension mismatch")
	}
	if w != nil && len(w) != c.N {
		panic("lpn: EncodeBlocks w dimension mismatch")
	}
	parallel.ShardIndexed(workers, c.N, func(shard, lo, hi int) {
		sp := tr.Span("lpn.encode", "extend.worker", tidBase+1+shard)
		for i := lo; i < hi; i++ {
			var acc block.Block
			for _, j := range c.idx[i*c.D : (i+1)*c.D] {
				acc.Lo ^= r[j].Lo
				acc.Hi ^= r[j].Hi
			}
			if w != nil {
				acc = acc.Xor(w[i])
			}
			out[i] = acc
		}
		if sp.Live() {
			sp.EndArgs(map[string]any{"rows": hi - lo, "lo": lo})
		}
	})
}

// EncodeBits computes out[i] = u[i] ⊕ XOR_j e[A_i,j] over GF(2).
// u is given as a sparse set of positions (the MPCOT noise positions);
// every position must lie in [0, N) — an out-of-range point means the
// caller's noise vector does not match this code, which would silently
// break the output correlation, so it is reported as an error instead.
func (c *Code) EncodeBits(out, e []bool, points []int) error {
	return c.EncodeBitsParallel(out, e, points, 1)
}

// EncodeBitsParallel is EncodeBits sharded across up to `workers`
// goroutines by contiguous row ranges. The sparse noise points are
// validated up front and applied after the dense phase completes, so
// the result is identical for any worker count.
func (c *Code) EncodeBitsParallel(out, e []bool, points []int, workers int) error {
	return c.EncodeBitsSpans(out, e, points, workers, nil, 0)
}

// EncodeBitsSpans is EncodeBitsParallel with per-worker "lpn.noise"
// spans on threads tidBase+1+shard (see EncodeBlocksSpans).
func (c *Code) EncodeBitsSpans(out, e []bool, points []int, workers int, tr *obs.Tracer, tidBase int) error {
	if len(out) != c.N || len(e) != c.K {
		panic("lpn: EncodeBits dimension mismatch")
	}
	for _, p := range points {
		if p < 0 || p >= c.N {
			return fmt.Errorf("lpn: noise point %d outside [0,%d)", p, c.N)
		}
	}
	parallel.ShardIndexed(workers, c.N, func(shard, lo, hi int) {
		sp := tr.Span("lpn.noise", "extend.worker", tidBase+1+shard)
		for i := lo; i < hi; i++ {
			acc := false
			for _, j := range c.idx[i*c.D : (i+1)*c.D] {
				acc = acc != e[j]
			}
			out[i] = acc
		}
		if sp.Live() {
			sp.EndArgs(map[string]any{"rows": hi - lo, "lo": lo})
		}
	})
	for _, p := range points {
		out[p] = !out[p]
	}
	return nil
}

// AccessTrace invokes f for every input-vector access the encoder makes
// in natural row order. Used by the cache and DRAM simulators; the
// element addresses are indices into the length-K input vector.
func (c *Code) AccessTrace(f func(col uint32)) {
	for _, j := range c.idx {
		f(j)
	}
}

// FootprintBytes returns the resident size of the input vector plus the
// index matrix, the quantity §3.2 compares against CPU caches (>900 MB
// at 2^24 outputs).
func (c *Code) FootprintBytes() int64 {
	return int64(c.K)*block.Size + int64(len(c.idx))*4
}
