package lpn

import (
	"math/rand"
	"testing"

	"ironman/internal/block"
)

// TestSortedEncodePreservesOutput is the correctness half of §5.3: the
// sorted layout (column swap + row look-ahead + Rowidx routing) must
// produce bit-for-bit the same output as the natural layout.
func TestSortedEncodePreservesOutput(t *testing.T) {
	const n, k = 300, 100
	c := testCode(n, k)
	rng := rand.New(rand.NewSource(6))
	r := make([]block.Block, k)
	for i := range r {
		r[i] = block.New(rng.Uint64(), rng.Uint64())
	}
	w := make([]block.Block, n)
	for i := range w {
		w[i] = block.New(rng.Uint64(), rng.Uint64())
	}
	want := make([]block.Block, n)
	c.EncodeBlocks(want, r, w)

	for _, opts := range []SortOptions{
		{ColumnSwap: true},
		{ColumnSwap: false, LookaheadWindow: 8, CacheLines: 16, LineWords: 4},
		DefaultSort(),
	} {
		s := c.Sort(opts)
		got := make([]block.Block, n)
		s.EncodeBlocks(got, s.PermuteInput(r), w)
		if !block.Equal(got, want) {
			t.Fatalf("opts %+v: sorted encode differs from natural encode", opts)
		}
	}
}

func TestColPermIsPermutation(t *testing.T) {
	c := testCode(200, 80)
	s := c.Sort(SortOptions{ColumnSwap: true})
	seen := make([]bool, 80)
	for _, p := range s.ColPerm {
		if p >= 80 || seen[p] {
			t.Fatal("ColPerm is not a permutation")
		}
		seen[p] = true
	}
}

func TestRowidxIsPermutation(t *testing.T) {
	c := testCode(150, 60)
	s := c.Sort(DefaultSort())
	seen := make([]bool, 150)
	for _, r := range s.Rowidx {
		if int(r) >= 150 || seen[r] {
			t.Fatal("Rowidx is not a permutation")
		}
		seen[r] = true
	}
}

func TestSortDeterministic(t *testing.T) {
	// Both protocol parties must derive the identical sorted view.
	c1 := New(block.New(9, 9), 120, 50, 6)
	c2 := New(block.New(9, 9), 120, 50, 6)
	s1 := c1.Sort(DefaultSort())
	s2 := c2.Sort(DefaultSort())
	for i := range s1.Rowidx {
		if s1.Rowidx[i] != s2.Rowidx[i] {
			t.Fatal("Rowidx differs between parties")
		}
	}
	for i := range s1.ColPerm {
		if s1.ColPerm[i] != s2.ColPerm[i] {
			t.Fatal("ColPerm differs between parties")
		}
	}
}

// TestColumnSwapImprovesSpatialLocality: under first-use relabeling the
// very first accesses are strictly sequential (0,1,2,...), so the mean
// distance between consecutive accesses early in the trace must shrink.
func TestColumnSwapImprovesSpatialLocality(t *testing.T) {
	c := New(block.New(3, 3), 2000, 1500, DefaultD)
	meanStride := func(trace func(func(uint32))) float64 {
		var prev uint32
		first := true
		var total, count float64
		trace(func(col uint32) {
			if !first {
				d := int64(col) - int64(prev)
				if d < 0 {
					d = -d
				}
				total += float64(d)
				count++
			}
			prev = col
			first = false
		})
		return total / count
	}
	base := meanStride(c.AccessTrace)
	s := c.Sort(SortOptions{ColumnSwap: true})
	swapped := meanStride(s.AccessTrace)
	if swapped >= base {
		t.Fatalf("column swap should reduce mean stride: base %.1f, swapped %.1f", base, swapped)
	}
}

// TestLookaheadImprovesCacheHits runs a simple LRU-line simulation over
// the trace and requires the fully sorted layout to beat the natural
// order, the behavioural claim of Figure 11.
func TestLookaheadImprovesCacheHits(t *testing.T) {
	const n, k = 4000, 3000
	c := New(block.New(8, 1), n, k, DefaultD)
	hitRate := func(trace func(func(uint32))) float64 {
		cache := newClockCache(64) // tiny cache: 64 lines
		hits, total := 0, 0
		trace(func(col uint32) {
			line := col / 4
			if cache.contains(line) {
				hits++
			}
			cache.touch(line)
			total++
		})
		return float64(hits) / float64(total)
	}
	base := hitRate(c.AccessTrace)
	sorted := c.Sort(SortOptions{ColumnSwap: true, LookaheadWindow: 32, CacheLines: 64, LineWords: 4})
	opt := hitRate(sorted.AccessTrace)
	if opt <= base {
		t.Fatalf("sorting should raise hit rate: base %.3f, sorted %.3f", base, opt)
	}
}

func TestPermuteInputBits(t *testing.T) {
	c := testCode(50, 20)
	s := c.Sort(SortOptions{ColumnSwap: true})
	in := make([]bool, 20)
	in[3] = true
	in[19] = true
	out := s.PermuteInputBits(in)
	count := 0
	for _, b := range out {
		if b {
			count++
		}
	}
	if count != 2 {
		t.Fatal("permutation must preserve weight")
	}
	if !out[s.ColPerm[3]] || !out[s.ColPerm[19]] {
		t.Fatal("bits landed in wrong positions")
	}
}

func TestNoSortIsIdentity(t *testing.T) {
	c := testCode(40, 30)
	s := c.Sort(SortOptions{})
	for i, p := range s.ColPerm {
		if p != uint32(i) {
			t.Fatal("ColPerm should be identity when swapping disabled")
		}
	}
	for i, r := range s.Rowidx {
		if r != uint32(i) {
			t.Fatal("Rowidx should be identity when look-ahead disabled")
		}
	}
}

func BenchmarkSort(b *testing.B) {
	c := New(block.New(1, 1), 1<<14, 1<<12, DefaultD)
	opts := DefaultSort()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Sort(opts)
	}
}

func BenchmarkSortedEncode(b *testing.B) {
	const n, k = 1 << 16, 1 << 14
	c := testCode(n, k)
	s := c.Sort(DefaultSort())
	r := make([]block.Block, k)
	rp := s.PermuteInput(r)
	out := make([]block.Block, n)
	b.SetBytes(int64(n * DefaultD * block.Size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.EncodeBlocks(out, rp, nil)
	}
}
