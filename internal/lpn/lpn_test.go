package lpn

import (
	"fmt"
	"math/rand"
	"testing"

	"ironman/internal/block"
)

func testCode(n, k int) *Code { return New(block.New(1, 2), n, k, DefaultD) }

func TestNewCodeRegular(t *testing.T) {
	c := testCode(500, 200)
	if len(c.idx) != 500*DefaultD {
		t.Fatal("index storage wrong size")
	}
	for i := 0; i < c.N; i++ {
		row := c.Row(i)
		seen := make(map[uint32]bool, len(row))
		for _, j := range row {
			if j >= uint32(c.K) {
				t.Fatalf("row %d index %d out of range", i, j)
			}
			if seen[j] {
				t.Fatalf("row %d has duplicate index %d", i, j)
			}
			seen[j] = true
		}
	}
}

func TestNewDeterministic(t *testing.T) {
	a := New(block.New(5, 6), 100, 50, 4)
	b := New(block.New(5, 6), 100, 50, 4)
	for i := range a.idx {
		if a.idx[i] != b.idx[i] {
			t.Fatal("same seed must give same code")
		}
	}
	c := New(block.New(5, 7), 100, 50, 4)
	same := true
	for i := range a.idx {
		if a.idx[i] != c.idx[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should give different codes")
	}
}

// TestEncodeLinearity: encoding is linear over GF(2)^128, so
// E(r1 ⊕ r2, w1 ⊕ w2) = E(r1, w1) ⊕ E(r2, w2).
func TestEncodeLinearity(t *testing.T) {
	c := testCode(64, 32)
	rng := rand.New(rand.NewSource(4))
	randBlocks := func(n int) []block.Block {
		s := make([]block.Block, n)
		for i := range s {
			s[i] = block.New(rng.Uint64(), rng.Uint64())
		}
		return s
	}
	r1, r2 := randBlocks(32), randBlocks(32)
	w1, w2 := randBlocks(64), randBlocks(64)
	out1 := make([]block.Block, 64)
	out2 := make([]block.Block, 64)
	c.EncodeBlocks(out1, r1, w1)
	c.EncodeBlocks(out2, r2, w2)

	r12 := make([]block.Block, 32)
	w12 := make([]block.Block, 64)
	block.XorSlices(r12, r1, r2)
	block.XorSlices(w12, w1, w2)
	out12 := make([]block.Block, 64)
	c.EncodeBlocks(out12, r12, w12)
	for i := range out12 {
		if out12[i] != out1[i].Xor(out2[i]) {
			t.Fatalf("linearity broken at %d", i)
		}
	}
}

// TestCOTPreservation is the protocol-level property §2.3.2 relies on:
// if the inputs are correlated (r = s ⊕ e·Δ element-wise, w = v ⊕ u·Δ)
// then the outputs satisfy z = y ⊕ x·Δ.
func TestCOTPreservation(t *testing.T) {
	const n, k = 128, 48
	c := testCode(n, k)
	rng := rand.New(rand.NewSource(5))
	delta := block.New(rng.Uint64(), rng.Uint64())

	s := make([]block.Block, k)
	e := make([]bool, k)
	r := make([]block.Block, k)
	for i := range s {
		s[i] = block.New(rng.Uint64(), rng.Uint64())
		e[i] = rng.Intn(2) == 1
		r[i] = s[i]
		if e[i] {
			r[i] = r[i].Xor(delta)
		}
	}
	points := []int{3, 77, 101}
	v := make([]block.Block, n)
	w := make([]block.Block, n)
	isPoint := make(map[int]bool)
	for _, p := range points {
		isPoint[p] = true
	}
	for i := range v {
		v[i] = block.New(rng.Uint64(), rng.Uint64())
		w[i] = v[i]
		if isPoint[i] {
			w[i] = w[i].Xor(delta)
		}
	}

	z := make([]block.Block, n)
	y := make([]block.Block, n)
	x := make([]bool, n)
	c.EncodeBlocks(z, r, w)
	c.EncodeBlocks(y, s, v)
	if err := c.EncodeBits(x, e, points); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := y[i]
		if x[i] {
			want = want.Xor(delta)
		}
		if z[i] != want {
			t.Fatalf("output correlation broken at %d", i)
		}
	}
}

func TestEncodeBitsSparsePoints(t *testing.T) {
	c := testCode(32, 16)
	e := make([]bool, 16) // all zero
	out := make([]bool, 32)
	if err := c.EncodeBits(out, e, []int{5, 31}); err != nil {
		t.Fatal(err)
	}
	for i, b := range out {
		want := i == 5 || i == 31
		if b != want {
			t.Fatalf("bit %d = %v, want %v", i, b, want)
		}
	}
}

// TestEncodeBitsRejectsBadPoints: out-of-range noise positions used to
// be dropped silently (and negative ones crashed with an index panic),
// producing a wrong correlation with no signal. They must fail loudly.
func TestEncodeBitsRejectsBadPoints(t *testing.T) {
	c := testCode(32, 16)
	e := make([]bool, 16)
	out := make([]bool, 32)
	for _, points := range [][]int{{40}, {32}, {-1}, {5, 31, 32}} {
		if err := c.EncodeBits(out, e, points); err == nil {
			t.Fatalf("points %v: expected error", points)
		}
	}
	// A failed call must not have flipped any valid point it validated.
	if err := c.EncodeBits(out, e, nil); err != nil {
		t.Fatal(err)
	}
	for i, b := range out {
		if b {
			t.Fatalf("bit %d set after rejected encode", i)
		}
	}
}

// TestEncodeParallelDeterminism: sharded encodes must be bit-identical
// to the sequential path for every worker count, including counts that
// exceed the row count.
func TestEncodeParallelDeterminism(t *testing.T) {
	const n, k = 257, 64 // odd n exercises uneven shard boundaries
	c := testCode(n, k)
	rng := rand.New(rand.NewSource(9))
	r := make([]block.Block, k)
	e := make([]bool, k)
	for i := range r {
		r[i] = block.New(rng.Uint64(), rng.Uint64())
		e[i] = rng.Intn(2) == 1
	}
	w := make([]block.Block, n)
	for i := range w {
		w[i] = block.New(rng.Uint64(), rng.Uint64())
	}
	points := []int{0, 100, n - 1}

	wantB := make([]block.Block, n)
	c.EncodeBlocks(wantB, r, w)
	wantX := make([]bool, n)
	if err := c.EncodeBits(wantX, e, points); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, n + 5} {
		gotB := make([]block.Block, n)
		c.EncodeBlocksParallel(gotB, r, w, workers)
		gotX := make([]bool, n)
		if err := c.EncodeBitsParallel(gotX, e, points, workers); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if gotB[i] != wantB[i] || gotX[i] != wantX[i] {
				t.Fatalf("workers=%d: row %d differs from sequential encode", workers, i)
			}
		}
	}
}

func TestAccessTraceLength(t *testing.T) {
	c := testCode(100, 40)
	count := 0
	c.AccessTrace(func(col uint32) {
		if col >= 40 {
			t.Fatalf("trace column %d out of range", col)
		}
		count++
	})
	if count != 100*DefaultD {
		t.Fatalf("trace length = %d, want %d", count, 100*DefaultD)
	}
}

func TestFootprint(t *testing.T) {
	c := testCode(1000, 400)
	want := int64(400*16 + 1000*DefaultD*4)
	if got := c.FootprintBytes(); got != want {
		t.Fatalf("FootprintBytes = %d, want %d", got, want)
	}
}

func TestPanicsOnBadDims(t *testing.T) {
	for _, f := range []func(){
		func() { New(block.Zero, 0, 10, 4) },
		func() { New(block.Zero, 10, 3, 4) },
		func() { testCode(10, 40).EncodeBlocks(make([]block.Block, 9), make([]block.Block, 40), nil) },
		func() { testCode(10, 40).EncodeBits(make([]bool, 10), make([]bool, 39), nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func BenchmarkEncodeBlocks(b *testing.B) {
	const n, k = 1 << 16, 1 << 14
	c := testCode(n, k)
	r := make([]block.Block, k)
	out := make([]block.Block, n)
	b.SetBytes(int64(n * DefaultD * block.Size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.EncodeBlocks(out, r, nil)
	}
}

func BenchmarkEncodeBlocksParallel(b *testing.B) {
	const n, k = 1 << 18, 1 << 15
	c := testCode(n, k)
	r := make([]block.Block, k)
	out := make([]block.Block, n)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(int64(n * DefaultD * block.Size))
			for i := 0; i < b.N; i++ {
				c.EncodeBlocksParallel(out, r, nil, workers)
			}
		})
	}
}
