// Package parallel provides the worker-sharding primitives behind the
// multicore Extend pipeline: contiguous-range sharding for row-parallel
// kernels (the software analog of the paper's rank-parallel LPN encode)
// and per-item fan-out for independent tree expansions.
//
// Both helpers run the unit of work inline when a single worker (or a
// single item) makes goroutine fan-out pure overhead, so a Workers=1
// pipeline is exactly the sequential code path.
package parallel

import (
	"runtime"
	"sync"
)

// Workers resolves a worker-count knob: values <= 0 select
// runtime.GOMAXPROCS, anything else is returned unchanged.
func Workers(requested int) int {
	if requested <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// Shard splits [0, n) into at most `workers` contiguous half-open
// ranges and runs f(lo, hi) on each, one goroutine per range, waiting
// for all of them. Ranges differ in size by at most one element, so
// regular workloads (LPN rows, hash batches) stay balanced. With
// workers <= 1 or n <= 1 the single range runs inline on the caller.
func Shard(workers, n int, f func(lo, hi int)) {
	ShardIndexed(workers, n, func(_, lo, hi int) { f(lo, hi) })
}

// ShardIndexed is Shard with the shard index (a stable 0-based worker
// id) passed to f — the hook per-worker observability spans hang off:
// the index is a deterministic function of (workers, n), never of
// goroutine scheduling, so a trace's worker lanes line up across
// iterations.
func ShardIndexed(workers, n int, f func(shard, lo, hi int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		f(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	chunk, rem := n/w, n%w
	lo := 0
	for i := 0; i < w; i++ {
		hi := lo + chunk
		if i < rem {
			hi++
		}
		go func(i, lo, hi int) {
			defer wg.Done()
			f(i, lo, hi)
		}(i, lo, hi)
		lo = hi
	}
	wg.Wait()
}

// Each runs f(i) for every i in [0, n) across at most `workers`
// goroutines, assigning items to workers in contiguous ranges (worker
// goroutines never contend on a shared index). Used for the t
// independent GGM tree expansions of one MPCOT execution.
func Each(workers, n int, f func(i int)) {
	Shard(workers, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			f(i)
		}
	})
}
