package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d", got)
	}
}

// TestShardCoversExactly: every index is visited exactly once, for
// worker counts below, at, and above n, including the inline path.
func TestShardCoversExactly(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 64} {
		for _, n := range []int{0, 1, 2, 6, 7, 8, 63, 64, 65} {
			seen := make([]int32, n)
			Shard(workers, n, func(lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Errorf("workers=%d n=%d: bad range [%d,%d)", workers, n, lo, hi)
					return
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

// TestShardBalance: range sizes differ by at most one.
func TestShardBalance(t *testing.T) {
	var min, max atomic.Int64
	min.Store(1 << 30)
	Shard(4, 103, func(lo, hi int) {
		size := int64(hi - lo)
		for {
			m := min.Load()
			if size >= m || min.CompareAndSwap(m, size) {
				break
			}
		}
		for {
			m := max.Load()
			if size <= m || max.CompareAndSwap(m, size) {
				break
			}
		}
	})
	if max.Load()-min.Load() > 1 {
		t.Fatalf("shard sizes range %d..%d, want spread <= 1", min.Load(), max.Load())
	}
}

func TestEachVisitsAll(t *testing.T) {
	const n = 37
	seen := make([]int32, n)
	Each(5, n, func(i int) { atomic.AddInt32(&seen[i], 1) })
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}
