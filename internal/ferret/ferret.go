// Package ferret implements the PCG-style OT extension protocol the
// paper profiles and accelerates (Ferret, Yang et al. CCS'20; §2.3).
//
// One protocol instance works in iterations. Initialization runs 128
// public-key base OTs and one IKNP extension to obtain the first
// Reserve() = k + t·log2(ℓ) COT correlations. Every Extend() then:
//
//  1. runs the interactive MPCOT step — t GGM trees of ℓ leaves,
//     punctured through (m-1)-out-of-m OTs (§4) — producing the sparse
//     correlation (w; u, v) of length n;
//  2. consumes k carried-over COTs (r; e, s) as the LPN input;
//  3. locally encodes z = r·A ⊕ w (sender) and x = e·A ⊕ u,
//     y = s·A ⊕ v (receiver), yielding n fresh COTs z = y ⊕ x·Δ;
//  4. reserves the last Reserve() outputs to feed the next iteration
//     and hands the caller the remaining Usable() correlations.
//
// Security model: semi-honest, 128-bit computational security; the
// malicious-consistency check of the original paper is out of scope
// (DESIGN.md).
package ferret

import (
	"crypto/rand"
	"fmt"

	"ironman/internal/aesprg"
	"ironman/internal/block"
	"ironman/internal/cot"
	"ironman/internal/iknp"
	"ironman/internal/lpn"
	"ironman/internal/mpcot"
	"ironman/internal/obs"
	"ironman/internal/prg"
	"ironman/internal/transport"
)

// Trace thread-id layout: each endpoint owns a lane for its sequential
// phases and a contiguous block of worker lanes directly after it.
// Keeping the two endpoints 100 apart leaves room for any realistic
// worker count while staying deterministic across runs.
const (
	// SenderTID is the trace lane of the sender's sequential phases;
	// its phase workers occupy SenderTID+1+shard.
	SenderTID = 1
	// ReceiverTID is the trace lane of the receiver's sequential
	// phases; its workers occupy ReceiverTID+1+shard.
	ReceiverTID = 101
)

// Domain-separation constants for the deterministic Options.Seed
// streams: each endpoint role derives its private randomness from an
// independent stream so the two halves never consume the same bytes.
var (
	seedDomainSender   = block.New(0x73656e646572, 1)
	seedDomainReceiver = block.New(0x7265636569766572, 2)
	seedDomainDealer   = block.New(0x6465616c6572, 3)
)

// DefaultCodeSeed is the public seed both parties use to derive the
// fixed LPN matrix A. Fixing it in the package mirrors the fixed public
// code of real deployments.
var DefaultCodeSeed = block.New(0x69726f6e6d616e21, 0x6c706e2d636f6465)

// Options configures a protocol instance.
type Options struct {
	// PRG is the GGM expansion PRG; nil selects the Ironman design
	// point, the 4-ary ChaCha8 construction.
	PRG prg.PRG
	// CodeSeed overrides the public LPN code seed.
	CodeSeed block.Block
	// Workers caps the goroutines Extend's local phases use (the
	// rank-parallel LPN encode, the concurrent GGM tree
	// expansion/reconstruction). 0 — the default — selects
	// runtime.GOMAXPROCS; 1 is the strictly sequential seed path. The
	// wire transcript is byte-identical for every value: only local
	// compute is sharded.
	Workers int
	// Code overrides the LPN code derived from CodeSeed. The matrix
	// must match the endpoint's params; callers that open many
	// endpoints on one parameter set share one derivation this way
	// (the 2^24 index matrix alone is ~690 MB).
	Code *lpn.Code
	// Seed, when non-zero, derives every endpoint-local random draw —
	// the dealt first reserve (DealPools), per-iteration GGM tree
	// seeds, and the receiver's noise positions — from deterministic
	// AES-CTR streams instead of crypto/rand, making a dealt run a
	// pure function of (delta, params, options). NOT secure; the
	// parallel-vs-sequential determinism cross-checks and the
	// benchmark harness use it.
	Seed block.Block
	// Trace, when non-nil, records one span per Extend phase into the
	// Chrome trace-event timeline: "extend" wrapping the iteration,
	// "spcot.expand"/"spcot.flights"/"spcot.reconstruct" and
	// "lpn.encode"/"lpn.noise" inside it, plus per-worker lanes for
	// the sharded phases. Tracing observes local compute only; the
	// wire transcript is byte-identical with and without it (the
	// determinism tests pin this).
	Trace *obs.Tracer
}

func (o *Options) fill() {
	if o.PRG == nil {
		o.PRG = prg.New(prg.ChaCha8, 4)
	}
	if o.CodeSeed == (block.Block{}) {
		o.CodeSeed = DefaultCodeSeed
	}
}

// code resolves the LPN code: the injected override (whose shape must
// match params — a mismatch would otherwise panic mid-protocol, on the
// background refill goroutine under Prefetch) or a fresh derivation.
func (o *Options) code(params Params) (*lpn.Code, error) {
	if o.Code != nil {
		if o.Code.N != params.N || o.Code.K != params.K || o.Code.D != params.D {
			return nil, fmt.Errorf("ferret: Options.Code is (n=%d,k=%d,d=%d), params %s need (n=%d,k=%d,d=%d)",
				o.Code.N, o.Code.K, o.Code.D, params.Name, params.N, params.K, params.D)
		}
		return o.Code, nil
	}
	return lpn.New(o.CodeSeed, params.N, params.K, params.D), nil
}

// stream returns the domain-separated deterministic stream for one
// endpoint role, or nil when Seed is unset (crypto/rand randomness).
func (o *Options) stream(domain block.Block) *aesprg.Stream {
	if o.Seed == (block.Block{}) {
		return nil
	}
	return aesprg.NewStream(o.Seed.Xor(domain))
}

// trace labels this endpoint's sequential lane in the trace viewer and
// returns the (possibly nil) tracer for the endpoint struct.
func (o *Options) traceFor(tid int, name string) *obs.Tracer {
	if o.Trace != nil {
		o.Trace.NameThread(tid, name)
	}
	return o.Trace
}

// Sender is the OTE sender (holder of the global Δ).
type Sender struct {
	conn    transport.Conn
	params  Params
	prg     prg.PRG
	hash    *aesprg.Hash
	code    *lpn.Code
	pool    *cot.SenderPool
	workers int
	rng     *aesprg.Stream // deterministic tree seeds; nil = crypto/rand
	trace   *obs.Tracer
	Delta   block.Block
	// Iterations counts completed Extend calls.
	Iterations int
}

// Receiver is the OTE receiver.
type Receiver struct {
	conn       transport.Conn
	params     Params
	prg        prg.PRG
	hash       *aesprg.Hash
	code       *lpn.Code
	pool       *cot.ReceiverPool
	workers    int
	rng        *aesprg.Stream // deterministic noise positions; nil = crypto/rand
	trace      *obs.Tracer
	Iterations int
}

// NewSender initializes the sender: base OTs + one IKNP extension for
// the first reserve of correlations.
func NewSender(conn transport.Conn, delta block.Block, params Params, opts Options) (*Sender, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	opts.fill()
	// Resolve (and shape-check) the code before any wire traffic.
	code, err := opts.code(params)
	if err != nil {
		return nil, err
	}
	ik, err := iknp.NewSender(conn, delta)
	if err != nil {
		return nil, fmt.Errorf("ferret init: %w", err)
	}
	r0, err := ik.Extend(params.Reserve())
	if err != nil {
		return nil, fmt.Errorf("ferret init extend: %w", err)
	}
	return &Sender{
		conn:    conn,
		params:  params,
		prg:     opts.PRG,
		hash:    aesprg.NewHash(),
		code:    code,
		pool:    cot.NewSenderPool(delta, r0),
		workers: opts.Workers,
		rng:     opts.stream(seedDomainSender),
		trace:   opts.traceFor(SenderTID, "ferret.sender"),
		Delta:   delta,
	}, nil
}

// NewReceiver initializes the receiver half.
func NewReceiver(conn transport.Conn, params Params, opts Options) (*Receiver, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	opts.fill()
	code, err := opts.code(params)
	if err != nil {
		return nil, err
	}
	ik, err := iknp.NewReceiver(conn)
	if err != nil {
		return nil, fmt.Errorf("ferret init: %w", err)
	}
	choices := make([]bool, params.Reserve())
	buf := make([]byte, (len(choices)+7)/8)
	if _, err := rand.Read(buf); err != nil {
		return nil, err
	}
	for i := range choices {
		choices[i] = buf[i/8]>>uint(i%8)&1 == 1
	}
	rb, err := ik.Extend(choices)
	if err != nil {
		return nil, fmt.Errorf("ferret init extend: %w", err)
	}
	pool, err := cot.NewReceiverPool(choices, rb)
	if err != nil {
		return nil, err
	}
	return &Receiver{
		conn:    conn,
		params:  params,
		prg:     opts.PRG,
		hash:    aesprg.NewHash(),
		code:    code,
		pool:    pool,
		workers: opts.Workers,
		rng:     opts.stream(seedDomainReceiver),
		trace:   opts.traceFor(ReceiverTID, "ferret.receiver"),
	}, nil
}

func (s *Sender) mpcotConfig() mpcot.Config {
	return mpcot.Config{N: s.params.N, Leaves: s.params.L, T: s.params.T,
		Trace: s.trace, TID: SenderTID}
}

func (r *Receiver) mpcotConfig() mpcot.Config {
	return mpcot.Config{N: r.params.N, Leaves: r.params.L, T: r.params.T,
		Trace: r.trace, TID: ReceiverTID}
}

// Extend runs one protocol iteration and returns Usable() fresh r0
// blocks (r1 = r0 ⊕ Δ implied). Local phases (GGM expansion, the LPN
// encode) shard across Options.Workers goroutines; the wire transcript
// does not depend on the worker count.
func (s *Sender) Extend() ([]block.Block, error) {
	ext := s.trace.Span("extend", "ferret", SenderTID)
	cfg := s.mpcotConfig()
	// Step 1: interactive SPCOT phase — parallel tree expansion, then
	// sequential puncturing flights.
	seeds, err := s.treeSeeds(cfg)
	if err != nil {
		return nil, err
	}
	w, err := mpcot.SendSeeded(s.conn, s.pool, s.hash, s.prg, cfg, seeds, s.workers)
	if err != nil {
		return nil, fmt.Errorf("ferret extend (spcot): %w", err)
	}
	// Step 2: LPN input from the carried-over reserve.
	r, err := s.pool.TakeBlocks(s.params.K)
	if err != nil {
		return nil, fmt.Errorf("ferret extend (lpn input): %w", err)
	}
	// Step 3: local LPN encoding, z = r·A ⊕ w (rank-parallel).
	enc := s.trace.Span("lpn.encode", "extend", SenderTID)
	z := make([]block.Block, s.params.N)
	s.code.EncodeBlocksSpans(z, r, w, s.workers, s.trace, SenderTID)
	if enc.Live() {
		enc.EndArgs(map[string]any{"rows": s.params.N, "k": s.params.K})
	}
	// Step 4: bootstrap the next iteration from the tail.
	usable := s.params.Usable()
	s.pool = cot.NewSenderPool(s.Delta, z[usable:])
	s.Iterations++
	if ext.Live() {
		ext.EndArgs(map[string]any{"iteration": s.Iterations, "n": s.params.N})
	}
	return z[:usable], nil
}

// treeSeeds draws one GGM root per bucket: from the deterministic
// stream when Options.Seed is set, from crypto/rand otherwise.
func (s *Sender) treeSeeds(cfg mpcot.Config) ([]block.Block, error) {
	if s.rng == nil {
		return cfg.RandomSeeds()
	}
	seeds := make([]block.Block, cfg.T)
	s.rng.Blocks(seeds)
	return seeds, nil
}

// ReceiverOutput is one iteration's receiver-side yield: choice bits
// and the matching r_b blocks.
type ReceiverOutput struct {
	Bits   []bool
	Blocks []block.Block
}

// Extend runs one protocol iteration on the receiver side. As on the
// sender, local phases shard across Options.Workers goroutines without
// touching the wire transcript.
func (r *Receiver) Extend() (*ReceiverOutput, error) {
	ext := r.trace.Span("extend", "ferret", ReceiverTID)
	cfg := r.mpcotConfig()
	var alphas []int
	if r.rng != nil {
		alphas = cfg.AlphasFrom(r.rng)
	} else {
		var err error
		alphas, err = cfg.RandomAlphas()
		if err != nil {
			return nil, err
		}
	}
	v, err := mpcot.ReceiveWorkers(r.conn, r.pool, r.hash, r.prg, cfg, alphas, r.workers)
	if err != nil {
		return nil, fmt.Errorf("ferret extend (spcot): %w", err)
	}
	e, sBlocks, err := r.pool.Take(r.params.K)
	if err != nil {
		return nil, fmt.Errorf("ferret extend (lpn input): %w", err)
	}
	enc := r.trace.Span("lpn.encode", "extend", ReceiverTID)
	y := make([]block.Block, r.params.N)
	r.code.EncodeBlocksSpans(y, sBlocks, v, r.workers, r.trace, ReceiverTID)
	if enc.Live() {
		enc.EndArgs(map[string]any{"rows": r.params.N, "k": r.params.K})
	}
	// Noise positions in [N, t·ℓ) sit in the truncated tail of the
	// output range: their tree output was discarded by MPCOT, so they
	// carry no noise and are dropped here ON PURPOSE — EncodeBits
	// itself rejects out-of-range points as caller bugs.
	points := make([]int, 0, len(alphas))
	for _, a := range alphas {
		if a < r.params.N {
			points = append(points, a)
		}
	}
	noise := r.trace.Span("lpn.noise", "extend", ReceiverTID)
	x := make([]bool, r.params.N)
	if err := r.code.EncodeBitsSpans(x, e, points, r.workers, r.trace, ReceiverTID); err != nil {
		return nil, fmt.Errorf("ferret extend (lpn noise): %w", err)
	}
	if noise.Live() {
		noise.EndArgs(map[string]any{"rows": r.params.N, "points": len(points)})
	}

	usable := r.params.Usable()
	pool, err := cot.NewReceiverPool(x[usable:], y[usable:])
	if err != nil {
		return nil, err
	}
	r.pool = pool
	r.Iterations++
	if ext.Live() {
		ext.EndArgs(map[string]any{"iteration": r.Iterations, "n": r.params.N})
	}
	return &ReceiverOutput{Bits: x[:usable], Blocks: y[:usable]}, nil
}

// DealPools is the trusted-dealer shortcut: it returns an initialized
// Sender/Receiver pair over conn whose first reserve comes from local
// randomness instead of base OT + IKNP. Tests and benchmarks that study
// post-init behaviour (which is what the paper accelerates) use this to
// skip the one-time init cost.
func DealPools(connS, connR transport.Conn, delta block.Block, params Params, opts Options) (*Sender, *Receiver, error) {
	if err := params.Validate(); err != nil {
		return nil, nil, err
	}
	opts.fill()
	var sp *cot.SenderPool
	var rp *cot.ReceiverPool
	var err error
	if dealer := opts.stream(seedDomainDealer); dealer != nil {
		sp, rp, err = cot.PoolsFromStream(dealer, delta, params.Reserve())
	} else {
		sp, rp, err = cot.RandomPoolsWithDelta(delta, params.Reserve())
	}
	if err != nil {
		return nil, nil, err
	}
	code, err := opts.code(params)
	if err != nil {
		return nil, nil, err
	}
	s := &Sender{
		conn: connS, params: params, prg: opts.PRG, hash: aesprg.NewHash(),
		code: code, pool: sp, Delta: delta,
		workers: opts.Workers, rng: opts.stream(seedDomainSender),
		trace: opts.traceFor(SenderTID, "ferret.sender"),
	}
	r := &Receiver{
		conn: connR, params: params, prg: opts.PRG, hash: aesprg.NewHash(),
		code: code, pool: rp,
		workers: opts.Workers, rng: opts.stream(seedDomainReceiver),
		trace: opts.traceFor(ReceiverTID, "ferret.receiver"),
	}
	return s, r, nil
}

// ExtendLockstep runs one iteration of both endpoints of an
// in-process pair concurrently and joins the results. Serving layers
// (pool.Dealt sources) use it to keep a dealt pair's iteration counts
// aligned under a single driver.
func ExtendLockstep(s *Sender, r *Receiver) ([]block.Block, *ReceiverOutput, error) {
	var z []block.Block
	var serr error
	done := make(chan struct{})
	go func() {
		z, serr = s.Extend()
		close(done)
	}()
	out, rerr := r.Extend()
	<-done
	if serr != nil {
		return nil, nil, serr
	}
	if rerr != nil {
		return nil, nil, rerr
	}
	return z, out, nil
}

// Params returns the active parameter set.
func (s *Sender) Params() Params   { return s.params }
func (r *Receiver) Params() Params { return r.params }

// Check verifies a batch of correlations against Δ: z[i] must equal
// y[i] ⊕ x[i]·Δ. Only tests and the examples use it (a real receiver
// never sees Δ).
func Check(delta block.Block, z []block.Block, out *ReceiverOutput) error {
	if len(z) != len(out.Bits) || len(z) != len(out.Blocks) {
		return fmt.Errorf("ferret: length mismatch %d/%d/%d", len(z), len(out.Bits), len(out.Blocks))
	}
	for i := range z {
		want := out.Blocks[i]
		if out.Bits[i] {
			want = want.Xor(delta)
		}
		if z[i] != want {
			return fmt.Errorf("ferret: correlation broken at %d", i)
		}
	}
	return nil
}
