//go:build race

package ferret

// raceDetector trims the determinism cross-check to the smaller Table 4
// rows under -race: instrumentation slows the 2^22 row's 45M-access LPN
// encode into minutes. IRONMAN_FULL_TABLE4=1 still forces all five.
const raceDetector = true
