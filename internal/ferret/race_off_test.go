//go:build !race

package ferret

const raceDetector = false
