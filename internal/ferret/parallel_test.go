package ferret

import (
	"bytes"
	"encoding/binary"
	"os"
	"testing"

	"ironman/internal/block"
	"ironman/internal/lpn"
	"ironman/internal/transport"
)

// recordingConn captures every message one endpoint sends (with frame
// boundaries), so two protocol runs can be compared transcript-for-
// transcript. Each endpoint is driven by a single goroutine, so the
// log needs no lock.
type recordingConn struct {
	transport.Conn
	log bytes.Buffer
}

func (c *recordingConn) Send(p []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(p)))
	c.log.Write(hdr[:])
	c.log.Write(p)
	return c.Conn.Send(p)
}

// extendRun is everything observable about one deterministic dealt run:
// both parties' outputs and both directions' wire transcripts.
type extendRun struct {
	z      [][]block.Block
	bits   [][]bool
	blocks [][]block.Block
	wireS  []byte
	wireR  []byte
}

var determinismSeed = block.New(0x7061722d646574, 0x636865636b)

// runExtends executes `iters` lockstep Extends with all randomness
// pinned by Options.Seed, at the given worker count.
func runExtends(t *testing.T, params Params, code *lpn.Code, workers, iters int) extendRun {
	t.Helper()
	connS, connR := transport.Pipe()
	defer connS.Close()
	defer connR.Close()
	recS := &recordingConn{Conn: connS}
	recR := &recordingConn{Conn: connR}
	delta := block.New(11, 22)
	opts := Options{Workers: workers, Seed: determinismSeed, Code: code}
	s, r, err := DealPools(recS, recR, delta, params, opts)
	if err != nil {
		t.Fatal(err)
	}
	var run extendRun
	for i := 0; i < iters; i++ {
		z, out, err := ExtendLockstep(s, r)
		if err != nil {
			t.Fatal(err)
		}
		if err := Check(delta, z, out); err != nil {
			t.Fatalf("workers=%d iteration %d: %v", workers, i, err)
		}
		run.z = append(run.z, z)
		run.bits = append(run.bits, out.Bits)
		run.blocks = append(run.blocks, out.Blocks)
	}
	run.wireS = recS.log.Bytes()
	run.wireR = recR.log.Bytes()
	return run
}

func compareRuns(t *testing.T, want, got extendRun, workers int) {
	t.Helper()
	if !bytes.Equal(want.wireS, got.wireS) {
		t.Fatalf("workers=%d: sender wire transcript differs from workers=1 (%d vs %d bytes)",
			workers, len(got.wireS), len(want.wireS))
	}
	if !bytes.Equal(want.wireR, got.wireR) {
		t.Fatalf("workers=%d: receiver wire transcript differs from workers=1 (%d vs %d bytes)",
			workers, len(got.wireR), len(want.wireR))
	}
	for it := range want.z {
		if !block.Equal(want.z[it], got.z[it]) {
			t.Fatalf("workers=%d iteration %d: sender output differs", workers, it)
		}
		if !block.Equal(want.blocks[it], got.blocks[it]) {
			t.Fatalf("workers=%d iteration %d: receiver blocks differ", workers, it)
		}
		for i := range want.bits[it] {
			if want.bits[it][i] != got.bits[it][i] {
				t.Fatalf("workers=%d iteration %d: choice bit %d differs", workers, it, i)
			}
		}
	}
}

// TestOptionsCodeShapeChecked: an injected code whose dimensions do
// not match the params must fail at construction, not panic on the
// first (possibly background) Extend.
func TestOptionsCodeShapeChecked(t *testing.T) {
	p1 := TestParams(600, 32, 128, 8)
	p2 := TestParams(3000, 32, 512, 16)
	code := lpn.New(DefaultCodeSeed, p1.N, p1.K, p1.D)
	a, b := transport.Pipe()
	defer a.Close()
	defer b.Close()
	if _, _, err := DealPools(a, b, block.New(1, 2), p2, Options{Code: code}); err == nil {
		t.Fatal("mismatched Options.Code must be rejected")
	}
	if _, _, err := DealPools(a, b, block.New(1, 2), p1, Options{Code: code}); err != nil {
		t.Fatalf("matching Options.Code rejected: %v", err)
	}
}

// TestExtendParallelDeterminismSmall cross-checks Workers=8 (and an
// oversubscribed count) against Workers=1 on small shapes that hit the
// structural corner cases quickly, including a parameter set whose
// last buckets lie beyond N (noise positions in the truncated tail).
func TestExtendParallelDeterminismSmall(t *testing.T) {
	for _, tc := range []struct {
		name   string
		params Params
	}{
		{"basic", TestParams(600, 32, 128, 8)},
		// t*l = 128 > n = 60: bucket 2 and 3 sit fully/partly beyond N,
		// so some alphas exceed N and must be filtered, deterministically.
		{"truncated-tail", TestParams(60, 32, 30, 4)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			code := lpn.New(DefaultCodeSeed, tc.params.N, tc.params.K, tc.params.D)
			ref := runExtends(t, tc.params, code, 1, 3)
			for _, workers := range []int{2, 8, 64} {
				compareRuns(t, ref, runExtends(t, tc.params, code, workers, 3), workers)
			}
		})
	}
}

// TestExtendParallelDeterminismTable4 is the full-scale cross-check on
// the paper's parameter sets: Workers=8 must produce byte-identical
// outputs and wire transcripts to Workers=1. The default run covers
// the first three rows (the 2^23/2^24 rows cost gigabytes of index
// matrix); under -race the 2^22 row is also dropped (its instrumented
// LPN encode alone takes minutes). IRONMAN_FULL_TABLE4=1 forces all
// five rows in any mode; -short keeps just the smallest.
func TestExtendParallelDeterminismTable4(t *testing.T) {
	sets := []string{"2^20", "2^21", "2^22"}
	if raceDetector {
		sets = sets[:2]
	}
	if testing.Short() {
		sets = sets[:1]
	}
	if os.Getenv("IRONMAN_FULL_TABLE4") != "" {
		sets = []string{"2^20", "2^21", "2^22", "2^23", "2^24"}
	}
	for _, name := range sets {
		t.Run(name, func(t *testing.T) {
			params, err := ParamsByName(name)
			if err != nil {
				t.Fatal(err)
			}
			code := lpn.New(DefaultCodeSeed, params.N, params.K, params.D)
			ref := runExtends(t, params, code, 1, 1)
			compareRuns(t, ref, runExtends(t, params, code, 8, 1), 8)
		})
	}
}
