package ferret

import (
	"bytes"
	"encoding/json"
	"testing"

	"ironman/internal/block"
	"ironman/internal/lpn"
	"ironman/internal/obs"
	"ironman/internal/transport"
)

// runExtendsTraced is runExtends with a live tracer attached — the
// instrumented twin of the determinism reference runs.
func runExtendsTraced(t *testing.T, params Params, code *lpn.Code, workers, iters int, tr *obs.Tracer) extendRun {
	t.Helper()
	connS, connR := transport.Pipe()
	defer connS.Close()
	defer connR.Close()
	recS := &recordingConn{Conn: connS}
	recR := &recordingConn{Conn: connR}
	delta := block.New(11, 22)
	opts := Options{Workers: workers, Seed: determinismSeed, Code: code, Trace: tr}
	s, r, err := DealPools(recS, recR, delta, params, opts)
	if err != nil {
		t.Fatal(err)
	}
	var run extendRun
	for i := 0; i < iters; i++ {
		z, out, err := ExtendLockstep(s, r)
		if err != nil {
			t.Fatal(err)
		}
		if err := Check(delta, z, out); err != nil {
			t.Fatalf("traced workers=%d iteration %d: %v", workers, i, err)
		}
		run.z = append(run.z, z)
		run.bits = append(run.bits, out.Bits)
		run.blocks = append(run.blocks, out.Blocks)
	}
	run.wireS = recS.log.Bytes()
	run.wireR = recR.log.Bytes()
	return run
}

// TestExtendTraceTranscriptInvariant: attaching a tracer must not
// change a single wire byte or output block relative to the untraced
// run — tracing observes, it never participates.
func TestExtendTraceTranscriptInvariant(t *testing.T) {
	params := TestParams(600, 32, 128, 8)
	code := lpn.New(DefaultCodeSeed, params.N, params.K, params.D)
	ref := runExtends(t, params, code, 1, 3)
	for _, workers := range []int{1, 8} {
		tr := obs.NewTracer()
		got := runExtendsTraced(t, params, code, workers, 3, tr)
		compareRuns(t, ref, got, workers)
		if len(tr.Events()) == 0 {
			t.Fatalf("workers=%d: tracer attached but no spans recorded", workers)
		}
	}
}

// mainTIDPhases sums the durations of the sequential phase spans on one
// endpoint lane and returns them keyed by name, plus the enclosing
// "extend" spans' total duration.
func mainTIDPhases(events []obs.TraceEvent, tid int) (phases map[string]float64, extendDur float64) {
	phases = make(map[string]float64)
	for _, e := range events {
		if e.Ph != "X" || e.Tid != tid {
			continue
		}
		if e.Name == "extend" {
			extendDur += e.Dur
			continue
		}
		phases[e.Name] += e.Dur
	}
	return phases, extendDur
}

// TestExtendTracePhaseCoverage pins the span taxonomy acceptance bar:
// every documented phase shows up on its endpoint's lane, and the
// sequential phase spans account for (nearly) the whole enclosing
// "extend" span — the trace explains where the iteration's wall time
// went rather than leaving gaps.
func TestExtendTracePhaseCoverage(t *testing.T) {
	params := TestParams(6000, 64, 256, 16)
	code := lpn.New(DefaultCodeSeed, params.N, params.K, params.D)
	tr := obs.NewTracer()
	runExtendsTraced(t, params, code, 4, 2, tr)

	events := tr.Events()
	wantPhases := map[int][]string{
		SenderTID:   {"spcot.expand", "spcot.flights", "lpn.encode"},
		ReceiverTID: {"spcot.flights", "spcot.reconstruct", "lpn.encode", "lpn.noise"},
	}
	for tid, names := range wantPhases {
		phases, extendDur := mainTIDPhases(events, tid)
		if extendDur <= 0 {
			t.Fatalf("tid %d: no enclosing extend span", tid)
		}
		var covered float64
		for _, name := range names {
			d, ok := phases[name]
			if !ok {
				t.Errorf("tid %d: phase span %q missing (have %v)", tid, name, phases)
				continue
			}
			covered += d
		}
		// The phases must explain the bulk of the iteration. The slack
		// covers the genuinely un-spanned work between phases (drawing
		// seeds, pool Take, pool rebuild) plus timer granularity.
		if covered < 0.85*extendDur {
			t.Errorf("tid %d: phase spans cover %.0fµs of %.0fµs extend (< 85%%)", tid, covered, extendDur)
		}
		if covered > extendDur*1.01 {
			t.Errorf("tid %d: phase spans overlap: %.0fµs inside %.0fµs extend", tid, covered, extendDur)
		}
	}

	// Worker lanes: the sharded phases must have recorded per-worker
	// spans above each endpoint lane.
	workerSpans := 0
	for _, e := range events {
		if e.Cat == "extend.worker" {
			workerSpans++
			if e.Tid <= SenderTID || e.Tid == ReceiverTID {
				t.Fatalf("worker span on endpoint lane: %+v", e)
			}
		}
	}
	if workerSpans == 0 {
		t.Fatal("no per-worker spans recorded")
	}

	// The document must serialize as valid Chrome trace-event JSON with
	// both endpoint lanes named.
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []obs.TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON invalid: %v", err)
	}
	named := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" {
			if n, ok := e.Args["name"].(string); ok {
				named[n] = true
			}
		}
	}
	if !named["ferret.sender"] || !named["ferret.receiver"] {
		t.Fatalf("endpoint lanes unnamed: %v", named)
	}
}
