package ferret

import (
	"fmt"

	"ironman/internal/lpn"
	"ironman/internal/spcot"
)

// Params is one PCG-style OTE parameter set (Table 4 of the paper).
type Params struct {
	Name   string
	NumOTs int     // nominal usable COTs per protocol execution
	N      int     // LPN code length / outputs per execution
	L      int     // GGM tree output length ℓ
	K      int     // LPN input length / pre-generated COTs consumed
	T      int     // number of GGM trees per execution
	D      int     // LPN row weight (10 in all paper sets)
	BitSec float64 // LPN bit security reported by the paper
}

// Table4 reproduces the paper's parameter table. The LPN hardness
// figures come from the paper (they cite Liu et al., EUROCRYPT'24).
var Table4 = []Params{
	{Name: "2^20", NumOTs: 1 << 20, N: 1221516, L: 4096, K: 168000, T: 480, D: lpn.DefaultD, BitSec: 139.8},
	{Name: "2^21", NumOTs: 1 << 21, N: 2365652, L: 4096, K: 262000, T: 600, D: lpn.DefaultD, BitSec: 141.8},
	{Name: "2^22", NumOTs: 1 << 22, N: 4531924, L: 8192, K: 328000, T: 740, D: lpn.DefaultD, BitSec: 132.3},
	{Name: "2^23", NumOTs: 1 << 23, N: 8866608, L: 8192, K: 452000, T: 1024, D: lpn.DefaultD, BitSec: 130.2},
	{Name: "2^24", NumOTs: 1 << 24, N: 17262496, L: 8192, K: 480000, T: 2100, D: lpn.DefaultD, BitSec: 135.4},
}

// ParamsByName finds a Table 4 row.
func ParamsByName(name string) (Params, error) {
	for _, p := range Table4 {
		if p.Name == name {
			return p, nil
		}
	}
	return Params{}, fmt.Errorf("ferret: unknown parameter set %q", name)
}

// Reserve is the number of COT correlations one Extend consumes and
// must therefore carry over between iterations: K for the LPN input
// plus log2(ℓ) per GGM tree for SPCOT puncturing.
func (p Params) Reserve() int { return p.K + p.T*spcot.COTBudget(p.L) }

// Usable is the COT yield of one Extend after self-sustaining the next
// iteration. For the 2^24 row this is ~0.13% below the nominal NumOTs
// (the paper's accounting is slightly more generous); EXPERIMENTS.md
// discusses the gap.
func (p Params) Usable() int { return p.N - p.Reserve() }

// SPCOTOutputs is the total GGM leaf count of one execution, t·ℓ.
func (p Params) SPCOTOutputs() int { return p.T * p.L }

// Validate performs structural sanity checks.
func (p Params) Validate() error {
	if p.N < 1 || p.L < 2 || p.K < 1 || p.T < 1 || p.D < 1 {
		return fmt.Errorf("ferret: bad params %+v", p)
	}
	if p.Usable() <= 0 {
		return fmt.Errorf("ferret: params %s cannot self-sustain (usable %d)", p.Name, p.Usable())
	}
	if p.K < p.D {
		return fmt.Errorf("ferret: k=%d below row weight d=%d", p.K, p.D)
	}
	return nil
}

// TestParams returns a small self-consistent parameter set for tests:
// n outputs from t trees of ℓ leaves over a k-dimensional code.
func TestParams(n, l, k, t int) Params {
	return Params{
		Name: fmt.Sprintf("test-n%d", n), NumOTs: 0,
		N: n, L: l, K: k, T: t, D: 4,
	}
}
