package ferret

import (
	"strings"
	"testing"

	"ironman/internal/block"
	"ironman/internal/prg"
	"ironman/internal/transport"
)

// smallParams is a fast self-sustaining set: n=600 outputs, 8 trees of
// 32 leaves (256 noise support), k=128 input COTs.
func smallParams() Params { return TestParams(600, 32, 128, 8) }

func runIterations(t *testing.T, params Params, opts Options, iters int) {
	t.Helper()
	a, b := transport.Pipe()
	delta := block.New(0xaaaa, 0x5555)
	s, r, err := DealPools(a, b, delta, params, opts)
	if err != nil {
		t.Fatal(err)
	}
	for it := 0; it < iters; it++ {
		type sres struct {
			z   []block.Block
			err error
		}
		ch := make(chan sres, 1)
		go func() {
			z, err := s.Extend()
			ch <- sres{z, err}
		}()
		out, err := r.Extend()
		if err != nil {
			t.Fatalf("iter %d receiver: %v", it, err)
		}
		sr := <-ch
		if sr.err != nil {
			t.Fatalf("iter %d sender: %v", it, sr.err)
		}
		if len(sr.z) != params.Usable() {
			t.Fatalf("iter %d: got %d outputs, want %d", it, len(sr.z), params.Usable())
		}
		if err := Check(delta, sr.z, out); err != nil {
			t.Fatalf("iter %d: %v", it, err)
		}
		// The receiver's choice bits should be roughly balanced.
		ones := 0
		for _, bit := range out.Bits {
			if bit {
				ones++
			}
		}
		frac := float64(ones) / float64(len(out.Bits))
		if frac < 0.3 || frac > 0.7 {
			t.Fatalf("iter %d: choice bits badly unbalanced (%f)", it, frac)
		}
	}
	if s.Iterations != iters || r.Iterations != iters {
		t.Fatal("iteration counters wrong")
	}
}

func TestExtendWithDealerSmall(t *testing.T) {
	runIterations(t, smallParams(), Options{}, 3)
}

func TestExtendBinaryAESMatchesProtocol(t *testing.T) {
	// The classic Ferret configuration: binary trees, AES PRG.
	runIterations(t, smallParams(), Options{PRG: prg.New(prg.AES, 2)}, 2)
}

func TestExtendPartialCover(t *testing.T) {
	// t·ℓ < n, as in the paper's 2^23/2^24 rows: tail carries no noise
	// but correlations must still verify.
	p := TestParams(300, 32, 96, 8) // 8*32=256 < 300
	runIterations(t, p, Options{}, 2)
}

func TestFullInitViaIKNP(t *testing.T) {
	// End-to-end init: base OT + IKNP + one extension iteration.
	params := smallParams()
	a, b := transport.Pipe()
	delta := block.New(0x1234, 0x4321)
	type sres struct {
		s   *Sender
		err error
	}
	ch := make(chan sres, 1)
	go func() {
		s, err := NewSender(a, delta, params, Options{})
		ch <- sres{s, err}
	}()
	r, err := NewReceiver(b, params, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sr := <-ch
	if sr.err != nil {
		t.Fatal(sr.err)
	}
	s := sr.s

	zCh := make(chan []block.Block, 1)
	go func() {
		z, err := s.Extend()
		if err != nil {
			t.Error(err)
		}
		zCh <- z
	}()
	out, err := r.Extend()
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(delta, <-zCh, out); err != nil {
		t.Fatal(err)
	}
}

func TestTable4Parameters(t *testing.T) {
	if len(Table4) != 5 {
		t.Fatalf("Table4 has %d rows, want 5", len(Table4))
	}
	for _, p := range Table4 {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		// Every set must deliver (almost) its nominal OT count. The
		// paper's table counts usable = n - k; our stricter accounting
		// also reserves the t·log2(ℓ) puncture COTs, costing < 0.2%.
		if p.N-p.K < p.NumOTs {
			t.Errorf("%s: n-k = %d below nominal %d", p.Name, p.N-p.K, p.NumOTs)
		}
		if float64(p.Usable()) < 0.998*float64(p.NumOTs) {
			t.Errorf("%s: usable %d far below nominal %d", p.Name, p.Usable(), p.NumOTs)
		}
		if p.BitSec < 128 {
			t.Errorf("%s: bit security %f below target", p.Name, p.BitSec)
		}
		// SPCOT support covers all but a small tail of the code length.
		if float64(p.SPCOTOutputs()) < 0.94*float64(p.N) {
			t.Errorf("%s: SPCOT covers only %d of %d", p.Name, p.SPCOTOutputs(), p.N)
		}
	}
}

func TestParamsByName(t *testing.T) {
	p, err := ParamsByName("2^22")
	if err != nil || p.N != 4531924 {
		t.Fatalf("lookup failed: %v %+v", err, p)
	}
	if _, err := ParamsByName("nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	bad := []Params{
		{Name: "zero"},
		{Name: "nosustain", N: 10, L: 32, K: 100, T: 8, D: 4},
		{Name: "lowk", N: 600, L: 32, K: 2, T: 8, D: 4},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%s should fail validation", p.Name)
		}
	}
}

func TestReserveAccounting(t *testing.T) {
	p := smallParams()
	// 8 trees of 32 leaves: 8*5 = 40 puncture COTs + 128 LPN inputs.
	if p.Reserve() != 168 {
		t.Fatalf("Reserve = %d, want 168", p.Reserve())
	}
	if p.Usable() != 600-168 {
		t.Fatalf("Usable = %d", p.Usable())
	}
}

func TestCheckDetectsCorruption(t *testing.T) {
	delta := block.New(1, 2)
	z := []block.Block{block.New(3, 4)}
	out := &ReceiverOutput{Bits: []bool{false}, Blocks: []block.Block{block.New(3, 4)}}
	if err := Check(delta, z, out); err != nil {
		t.Fatal(err)
	}
	out.Bits[0] = true
	if err := Check(delta, z, out); err == nil {
		t.Fatal("corrupted bit must fail the check")
	}
	if err := Check(delta, z, &ReceiverOutput{Bits: []bool{false}}); err == nil {
		t.Fatal("length mismatch must fail")
	}
}

func TestCommunicationIsSublinear(t *testing.T) {
	// PCG-style OTE's selling point (§2.3): the per-iteration traffic is
	// far below 16 bytes per produced COT (the trivial transfer size).
	params := smallParams()
	a, b := transport.Pipe()
	delta := block.New(1, 9)
	s, r, err := DealPools(a, b, delta, params, Options{})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		if _, err := s.Extend(); err != nil && !strings.Contains(err.Error(), "closed") {
			t.Error(err)
		}
	}()
	if _, err := r.Extend(); err != nil {
		t.Fatal(err)
	}
	total := a.Stats().TotalBytes()
	naive := int64(params.Usable()) * 16
	if total >= naive/2 {
		t.Fatalf("traffic %d B not sublinear vs naive %d B", total, naive)
	}
}

func benchExtend(b *testing.B, params Params, opts Options) {
	a, c := transport.Pipe()
	delta := block.New(1, 2)
	s, r, err := DealPools(a, c, delta, params, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(params.Usable()) * block.Size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := make(chan struct{})
		go func() {
			if _, err := s.Extend(); err != nil {
				b.Error(err)
			}
			close(done)
		}()
		if _, err := r.Extend(); err != nil {
			b.Fatal(err)
		}
		<-done
	}
}

// BenchmarkExtend2to20 measures the real Go protocol on the smallest
// Table 4 row — the software baseline datapoint of Figure 1(b).
func BenchmarkExtend2to20(b *testing.B) {
	benchExtend(b, Table4[0], Options{})
}

func BenchmarkExtend2to20BinaryAES(b *testing.B) {
	benchExtend(b, Table4[0], Options{PRG: prg.New(prg.AES, 2)})
}
