// Package chacha implements the ChaCha stream-cipher core (Bernstein)
// with a configurable round count. Ironman uses ChaCha8 as the GGM-tree
// PRG because a fully pipelined ChaCha8 core produces 512 bits per call
// versus AES-128's 128 bits at comparable area (Table 2 of the paper),
// which is exactly what the 4-ary tree expansion needs.
//
// Only the block function is required by the PRG construction; the
// package nonetheless exposes a full XORKeyStream so it can stand in for
// a generic stream cipher in tests and tools.
package chacha

import (
	"encoding/binary"
	"math/bits"
)

// BlockSize is the output size of one core invocation, in bytes.
const BlockSize = 64

// KeySize is the ChaCha key size in bytes.
const KeySize = 32

// NonceSize is the IETF nonce size in bytes.
const NonceSize = 12

const (
	c0 = 0x61707865 // "expa"
	c1 = 0x3320646e // "nd 3"
	c2 = 0x79622d32 // "2-by"
	c3 = 0x6b206574 // "te k"
)

// Rounds variants supported by the package. ChaCha8 is Ironman's choice:
// Aumasson's analysis gives 7-round ChaCha ~2^248 attack cost, so 8
// rounds comfortably clears the 128-bit target (§3.1 of the paper).
const (
	Rounds8  = 8
	Rounds12 = 12
	Rounds20 = 20
)

// Cipher is a ChaCha instance with a fixed key, nonce and round count.
type Cipher struct {
	state   [16]uint32
	rounds  int
	counter uint32
}

// New builds a cipher from a 32-byte key and a 12-byte nonce.
// rounds must be one of Rounds8, Rounds12, Rounds20.
func New(key, nonce []byte, rounds int) *Cipher {
	if len(key) != KeySize {
		panic("chacha: bad key size")
	}
	if len(nonce) != NonceSize {
		panic("chacha: bad nonce size")
	}
	checkRounds(rounds)
	c := &Cipher{rounds: rounds}
	c.state[0], c.state[1], c.state[2], c.state[3] = c0, c1, c2, c3
	for i := 0; i < 8; i++ {
		c.state[4+i] = binary.LittleEndian.Uint32(key[4*i:])
	}
	// state[12] is the counter, starts at 0.
	c.state[13] = binary.LittleEndian.Uint32(nonce[0:])
	c.state[14] = binary.LittleEndian.Uint32(nonce[4:])
	c.state[15] = binary.LittleEndian.Uint32(nonce[8:])
	return c
}

func checkRounds(rounds int) {
	switch rounds {
	case Rounds8, Rounds12, Rounds20:
	default:
		panic("chacha: unsupported round count")
	}
}

func quarter(a, b, c, d uint32) (uint32, uint32, uint32, uint32) {
	a += b
	d = bits.RotateLeft32(d^a, 16)
	c += d
	b = bits.RotateLeft32(b^c, 12)
	a += b
	d = bits.RotateLeft32(d^a, 8)
	c += d
	b = bits.RotateLeft32(b^c, 7)
	return a, b, c, d
}

// Core runs the ChaCha permutation over in and writes the 64-byte
// keystream block (permutation output + feed-forward) into out.
func Core(out *[BlockSize]byte, in *[16]uint32, rounds int) {
	checkRounds(rounds)
	x0, x1, x2, x3 := in[0], in[1], in[2], in[3]
	x4, x5, x6, x7 := in[4], in[5], in[6], in[7]
	x8, x9, x10, x11 := in[8], in[9], in[10], in[11]
	x12, x13, x14, x15 := in[12], in[13], in[14], in[15]

	for i := 0; i < rounds; i += 2 {
		// Column round.
		x0, x4, x8, x12 = quarter(x0, x4, x8, x12)
		x1, x5, x9, x13 = quarter(x1, x5, x9, x13)
		x2, x6, x10, x14 = quarter(x2, x6, x10, x14)
		x3, x7, x11, x15 = quarter(x3, x7, x11, x15)
		// Diagonal round.
		x0, x5, x10, x15 = quarter(x0, x5, x10, x15)
		x1, x6, x11, x12 = quarter(x1, x6, x11, x12)
		x2, x7, x8, x13 = quarter(x2, x7, x8, x13)
		x3, x4, x9, x14 = quarter(x3, x4, x9, x14)
	}

	binary.LittleEndian.PutUint32(out[0:], x0+in[0])
	binary.LittleEndian.PutUint32(out[4:], x1+in[1])
	binary.LittleEndian.PutUint32(out[8:], x2+in[2])
	binary.LittleEndian.PutUint32(out[12:], x3+in[3])
	binary.LittleEndian.PutUint32(out[16:], x4+in[4])
	binary.LittleEndian.PutUint32(out[20:], x5+in[5])
	binary.LittleEndian.PutUint32(out[24:], x6+in[6])
	binary.LittleEndian.PutUint32(out[28:], x7+in[7])
	binary.LittleEndian.PutUint32(out[32:], x8+in[8])
	binary.LittleEndian.PutUint32(out[36:], x9+in[9])
	binary.LittleEndian.PutUint32(out[40:], x10+in[10])
	binary.LittleEndian.PutUint32(out[44:], x11+in[11])
	binary.LittleEndian.PutUint32(out[48:], x12+in[12])
	binary.LittleEndian.PutUint32(out[52:], x13+in[13])
	binary.LittleEndian.PutUint32(out[56:], x14+in[14])
	binary.LittleEndian.PutUint32(out[60:], x15+in[15])
}

// KeystreamBlock writes the keystream block for the given counter value
// without advancing the cipher's own counter.
func (c *Cipher) KeystreamBlock(out *[BlockSize]byte, counter uint32) {
	st := c.state
	st[12] = counter
	Core(out, &st, c.rounds)
}

// XORKeyStream XORs the keystream into src, writing to dst. dst and src
// must have the same length; dst may alias src. The cipher's internal
// block counter advances; a Cipher must not be reused across streams.
func (c *Cipher) XORKeyStream(dst, src []byte) {
	if len(dst) != len(src) {
		panic("chacha: dst/src length mismatch")
	}
	var ks [BlockSize]byte
	for len(src) > 0 {
		c.KeystreamBlock(&ks, c.counter)
		c.counter++
		n := len(src)
		if n > BlockSize {
			n = BlockSize
		}
		for i := 0; i < n; i++ {
			dst[i] = src[i] ^ ks[i]
		}
		dst, src = dst[n:], src[n:]
	}
}
