package chacha

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"testing"
	"testing/quick"
)

// RFC 8439 §2.3.2 test vector for the ChaCha20 block function.
func TestRFC8439BlockVector(t *testing.T) {
	key, _ := hex.DecodeString("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
	nonce, _ := hex.DecodeString("000000090000004a00000000")
	c := New(key, nonce, Rounds20)
	var out [BlockSize]byte
	c.KeystreamBlock(&out, 1)
	want, _ := hex.DecodeString(
		"10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e" +
			"d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e")
	if !bytes.Equal(out[:], want) {
		t.Fatalf("block mismatch:\n got %x\nwant %x", out, want)
	}
}

// RFC 8439 §2.4.2 keystream encryption vector.
func TestRFC8439Encrypt(t *testing.T) {
	key, _ := hex.DecodeString("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
	nonce, _ := hex.DecodeString("000000000000004a00000000")
	plain := []byte("Ladies and Gentlemen of the class of '99: If I could offer you " +
		"only one tip for the future, sunscreen would be it.")
	c := New(key, nonce, Rounds20)
	// RFC uses initial counter 1: burn block 0.
	var burn [BlockSize]byte
	c.KeystreamBlock(&burn, 0)
	c.counter = 1
	got := make([]byte, len(plain))
	c.XORKeyStream(got, plain)
	want, _ := hex.DecodeString(
		"6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b" +
			"f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8" +
			"07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736" +
			"5af90bbf74a35be6b40b8eedf2785e42874d")
	if !bytes.Equal(got, want) {
		t.Fatalf("ciphertext mismatch:\n got %x\nwant %x", got, want)
	}
}

func TestRoundVariantsDiffer(t *testing.T) {
	key := make([]byte, KeySize)
	nonce := make([]byte, NonceSize)
	var o8, o12, o20 [BlockSize]byte
	New(key, nonce, Rounds8).KeystreamBlock(&o8, 0)
	New(key, nonce, Rounds12).KeystreamBlock(&o12, 0)
	New(key, nonce, Rounds20).KeystreamBlock(&o20, 0)
	if bytes.Equal(o8[:], o12[:]) || bytes.Equal(o12[:], o20[:]) || bytes.Equal(o8[:], o20[:]) {
		t.Fatal("round variants should produce distinct keystreams")
	}
}

func TestXORKeyStreamInvolution(t *testing.T) {
	f := func(keySeed, nonceSeed uint64, msg []byte) bool {
		key := make([]byte, KeySize)
		nonce := make([]byte, NonceSize)
		binary.LittleEndian.PutUint64(key, keySeed)
		binary.LittleEndian.PutUint64(nonce, nonceSeed)
		ct := make([]byte, len(msg))
		New(key, nonce, Rounds8).XORKeyStream(ct, msg)
		pt := make([]byte, len(ct))
		New(key, nonce, Rounds8).XORKeyStream(pt, ct)
		return bytes.Equal(pt, msg)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeystreamBlockDeterministic(t *testing.T) {
	key := make([]byte, KeySize)
	key[0] = 0xaa
	nonce := make([]byte, NonceSize)
	c := New(key, nonce, Rounds8)
	var a, b [BlockSize]byte
	c.KeystreamBlock(&a, 7)
	c.KeystreamBlock(&b, 7)
	if !bytes.Equal(a[:], b[:]) {
		t.Fatal("KeystreamBlock must be a pure function of the counter")
	}
	c.KeystreamBlock(&b, 8)
	if bytes.Equal(a[:], b[:]) {
		t.Fatal("different counters must give different blocks")
	}
}

func TestKeySensitivity(t *testing.T) {
	nonce := make([]byte, NonceSize)
	var prev [BlockSize]byte
	for i := 0; i < 8; i++ {
		key := make([]byte, KeySize)
		key[i] = 1
		var out [BlockSize]byte
		New(key, nonce, Rounds8).KeystreamBlock(&out, 0)
		if bytes.Equal(out[:], prev[:]) {
			t.Fatalf("key bit %d did not change the output", i)
		}
		prev = out
	}
}

func TestBadArgsPanic(t *testing.T) {
	for _, tc := range []func(){
		func() { New(make([]byte, 31), make([]byte, NonceSize), Rounds8) },
		func() { New(make([]byte, KeySize), make([]byte, 11), Rounds8) },
		func() { New(make([]byte, KeySize), make([]byte, NonceSize), 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			tc()
		}()
	}
}

func benchRounds(b *testing.B, rounds int) {
	key := make([]byte, KeySize)
	nonce := make([]byte, NonceSize)
	c := New(key, nonce, rounds)
	var out [BlockSize]byte
	b.SetBytes(BlockSize)
	for i := 0; i < b.N; i++ {
		c.KeystreamBlock(&out, uint32(i))
	}
}

func BenchmarkChaCha8Block(b *testing.B)  { benchRounds(b, Rounds8) }
func BenchmarkChaCha20Block(b *testing.B) { benchRounds(b, Rounds20) }
