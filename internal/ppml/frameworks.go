package ppml

import "fmt"

// OpCost prices one activation element of an op under a framework.
type OpCost struct {
	// OTs is the number of COT correlations the preprocessing phase
	// must generate per element.
	OTs float64
	// OnlineBytes is the online (post-preprocessing) traffic per
	// element.
	OnlineBytes float64
}

// Framework is a hybrid HE/MPC private-inference system.
type Framework struct {
	Name string
	// ForTransformers tells which model family the framework targets.
	ForTransformers bool

	// Costs maps each nonlinear op to its per-element price. The
	// constants approximate the protocols' published complexities:
	// CrypTFlow2's DReLU millionaire (λ=128, ℓ=37) consumes on the
	// order of a hundred COTs and a few hundred online bytes per
	// element; Cheetah's silent-OT variants roughly halve that; the
	// SiRNN/Bolt math protocols (GELU/Softmax/LayerNorm via lookup
	// tables, comparisons and extension/truncation chains) cost a few
	// hundred COTs per element. They are calibrated jointly with the
	// CPU model so that OT extension accounts for 51-69% of baseline
	// end-to-end time (Figure 1(a)).
	Costs map[Op]OpCost

	// LinearSecPerMAC prices the (GPU-accelerated) HE linear layers.
	LinearSecPerMAC float64
	// LinearBytesPerMAC prices linear-layer ciphertext traffic.
	LinearBytesPerMAC float64
	// RoundsPerLayer is protocol rounds per nonlinear layer.
	RoundsPerLayer int
	// OtherFrac adds framework overhead (share of compute time).
	OtherFrac float64
}

// The three end-to-end frameworks of Table 5 plus EzPC-SiRNN used in
// the Figure 15 operator study.
var (
	CrypTFlow2 = Framework{
		Name: "CrypTFlow2",
		Costs: map[Op]OpCost{
			ReLU: {OTs: 190, OnlineBytes: 1400},
		},
		LinearSecPerMAC:   4.5e-9,
		LinearBytesPerMAC: 0.9,
		RoundsPerLayer:    12,
		OtherFrac:         0.15,
	}
	Cheetah = Framework{
		Name: "Cheetah",
		Costs: map[Op]OpCost{
			ReLU: {OTs: 85, OnlineBytes: 800},
		},
		LinearSecPerMAC:   2.5e-9,
		LinearBytesPerMAC: 0.25,
		RoundsPerLayer:    7,
		OtherFrac:         0.15,
	}
	Bolt = Framework{
		Name:            "Bolt",
		ForTransformers: true,
		Costs: map[Op]OpCost{
			GELU:      {OTs: 260, OnlineBytes: 700},
			Softmax:   {OTs: 340, OnlineBytes: 950},
			LayerNorm: {OTs: 120, OnlineBytes: 360},
		},
		LinearSecPerMAC:   1.6e-9,
		LinearBytesPerMAC: 0.45,
		RoundsPerLayer:    40,
		OtherFrac:         0.12,
	}
	SiRNN = Framework{
		Name:            "EzPC-SiRNN",
		ForTransformers: true,
		Costs: map[Op]OpCost{
			ReLU:      {OTs: 160, OnlineBytes: 520},
			GELU:      {OTs: 420, OnlineBytes: 1250},
			Softmax:   {OTs: 520, OnlineBytes: 1500},
			LayerNorm: {OTs: 230, OnlineBytes: 700},
		},
		LinearSecPerMAC:   4.0e-9,
		LinearBytesPerMAC: 0.8,
		RoundsPerLayer:    30,
		OtherFrac:         0.12,
	}
)

// Table5Frameworks lists the end-to-end frameworks with their model
// families as evaluated in Table 5.
func Table5Frameworks() []struct {
	FW     Framework
	Models []Model
} {
	return []struct {
		FW     Framework
		Models []Model
	}{
		{CrypTFlow2, CNNs},
		{Cheetah, CNNs},
		{Bolt, Transformers},
	}
}

// OTCount returns the COT correlations a model's nonlinear layers need
// under the framework.
func (f Framework) OTCount(m Model) int64 {
	var t float64
	for op, c := range f.Costs {
		t += float64(m.Elems[op]) * c.OTs
	}
	return int64(t)
}

// OnlineBytes returns the online traffic of the nonlinear protocol.
func (f Framework) OnlineBytes(m Model) int64 {
	var t float64
	for op, c := range f.Costs {
		t += float64(m.Elems[op]) * c.OnlineBytes
	}
	return int64(t)
}

// LinearBytes returns linear-layer ciphertext traffic.
func (f Framework) LinearBytes(m Model) int64 {
	return int64(float64(m.MACs) * f.LinearBytesPerMAC)
}

// Rounds returns the protocol round count for one inference.
func (f Framework) Rounds(m Model) int {
	return m.NonlinLayers * f.RoundsPerLayer
}

// Supports reports whether the framework targets the model family.
func (f Framework) Supports(m Model) bool {
	return f.ForTransformers == m.Transformer || f.Name == "EzPC-SiRNN"
}

func (f Framework) String() string { return fmt.Sprintf("Framework(%s)", f.Name) }
