package ppml

import (
	"fmt"

	"ironman/internal/block"
	"ironman/internal/ferret"
	"ironman/internal/prg"
	"ironman/internal/sim/cpu"
	"ironman/internal/sim/gpu"
	"ironman/internal/sim/nmp"
	"ironman/internal/simnet"
	"ironman/internal/spcot"
)

// OTBackend prices the OT-extension preprocessing phase.
type OTBackend interface {
	Name() string
	// Seconds is the latency of generating n COT correlations.
	Seconds(n int64) float64
}

// oteParams is the parameter set all backends amortize over; the 2^22
// row balances per-execution overhead against LPN footprint.
var oteParams = mustParams("2^22")

func mustParams(name string) ferret.Params {
	p, err := ferret.ParamsByName(name)
	if err != nil {
		panic(err)
	}
	return p
}

// PreprocBytesFor models the (sublinear) OTE communication per
// produced correlation under a parameter set: per execution, each of
// the T GGM trees exchanges log2(ℓ) puncture messages — one chosen OT
// each, a correction byte up and two ciphertext blocks down — plus one
// consistency block, amortized over the Usable() yield.
func PreprocBytesFor(p ferret.Params) float64 {
	perTree := spcot.COTBudget(p.L)*(1+2*block.Size) + block.Size
	return float64(p.T) * float64(perTree) / float64(p.Usable())
}

// PreprocBytesPerOT is PreprocBytesFor at the parameter set all
// backends amortize over (oteParams), so the cost models track the
// active parameter set instead of a hardcoded constant.
var PreprocBytesPerOT = PreprocBytesFor(oteParams)

// CPUBackend is the software baseline. Threads reflects how many cores
// the framework dedicates to OT extension alongside its other work.
type CPUBackend struct {
	Model   cpu.Model
	Threads int
}

func (b CPUBackend) Name() string { return fmt.Sprintf("CPU(%d threads)", b.Threads) }

func (b CPUBackend) Seconds(n int64) float64 {
	execs := (n + int64(oteParams.Usable()) - 1) / int64(oteParams.Usable())
	if execs < 1 {
		execs = 1
	}
	per := b.Model.OTELatency(oteParams, prg.AES, 2, b.Threads, false).Total()
	init := b.Model.OTELatency(oteParams, prg.AES, 2, b.Threads, true).Init
	return init + float64(execs)*per
}

// GPUBackend prices OT extension on the A6000 model.
type GPUBackend struct {
	Host cpu.Model
	GPU  gpu.Model
}

func (b GPUBackend) Name() string { return "GPU(A6000)" }

func (b GPUBackend) Seconds(n int64) float64 {
	full := CPUBackend{Model: b.Host, Threads: b.Host.Cores}
	return full.Seconds(n) / b.GPU.SpeedupOverCPU
}

// IronmanBackend prices OT extension on the NMP simulator. Results are
// memoized per configuration (the trace replay is the expensive part).
type IronmanBackend struct {
	Cfg nmp.Config

	perExec float64 // cached seconds per execution
}

func (b *IronmanBackend) Name() string {
	return fmt.Sprintf("Ironman(%dranks,%dKB)", b.Cfg.Ranks, b.Cfg.CacheBytes>>10)
}

func (b *IronmanBackend) Seconds(n int64) float64 {
	if b.perExec == 0 {
		res, err := nmp.SimulateOTE(b.Cfg, oteParams, prg.New(prg.ChaCha8, 4),
			nmp.SortFor(b.Cfg), oteParams.Usable())
		if err != nil {
			panic(err)
		}
		b.perExec = res.ExecSeconds
	}
	execs := (n + int64(oteParams.Usable()) - 1) / int64(oteParams.Usable())
	if execs < 1 {
		execs = 1
	}
	return float64(execs) * b.perExec
}

// DefaultCPUBaseline reflects the frameworks' multithreaded OT workers.
func DefaultCPUBaseline() CPUBackend { return CPUBackend{Model: cpu.Xeon5220R, Threads: 4} }

// DefaultIronman is the 16-rank, 1 MB design point.
func DefaultIronman() *IronmanBackend {
	return &IronmanBackend{Cfg: nmp.DefaultConfig(16, 1<<20)}
}

// Latency is the end-to-end decomposition of one private inference,
// mirroring the Figure 1(a) categories.
type Latency struct {
	Linear     float64 // HE/linear-layer compute
	OTE        float64 // OT-extension preprocessing compute
	OnlineComm float64 // all wire time (linear + nonlinear + preproc)
	Other      float64
}

// Total sums the components.
func (l Latency) Total() float64 { return l.Linear + l.OTE + l.OnlineComm + l.Other }

// OTEFraction is the Figure 1(a) headline number. A zero-cost latency
// (e.g. a zero-element OperatorBench) has no OTE share: the fraction
// is 0, not NaN.
func (l Latency) OTEFraction() float64 {
	t := l.Total()
	if t == 0 {
		return 0
	}
	return l.OTE / t
}

// EndToEnd composes one inference latency.
func EndToEnd(f Framework, m Model, net simnet.Network, ot OTBackend) Latency {
	if !f.Supports(m) {
		panic(fmt.Sprintf("ppml: %s does not evaluate %s", f.Name, m.Name))
	}
	linear := float64(m.MACs) * f.LinearSecPerMAC
	ots := f.OTCount(m)
	ote := ot.Seconds(ots)
	bytes := f.OnlineBytes(m) + f.LinearBytes(m) + int64(float64(ots)*PreprocBytesPerOT)
	comm := net.Latency(bytes, f.Rounds(m))
	other := f.OtherFrac * (linear + comm)
	return Latency{Linear: linear, OTE: ote, OnlineComm: comm, Other: other}
}

// Speedup compares baseline and accelerated OT backends end to end.
func Speedup(f Framework, m Model, net simnet.Network, base, accel OTBackend) (baseLat, accelLat Latency, speedup float64) {
	baseLat = EndToEnd(f, m, net, base)
	accelLat = EndToEnd(f, m, net, accel)
	return baseLat, accelLat, baseLat.Total() / accelLat.Total()
}

// OperatorBench is the Figure 15 microbenchmark: a batch of one
// nonlinear operator evaluated under a framework.
func OperatorBench(f Framework, op Op, elems int64, net simnet.Network, ot OTBackend) Latency {
	c, ok := f.Costs[op]
	if !ok {
		panic(fmt.Sprintf("ppml: %s has no %v protocol", f.Name, op))
	}
	ots := int64(float64(elems) * c.OTs)
	ote := ot.Seconds(ots)
	bytes := int64(float64(elems)*c.OnlineBytes + float64(ots)*PreprocBytesPerOT)
	comm := net.Latency(bytes, f.RoundsPerLayer)
	other := f.OtherFrac * comm
	return Latency{OTE: ote, OnlineComm: comm, Other: other}
}

// MatMul models the Figure 16 study: communication of an OT-based
// secure matrix multiplication (PrivQuant-style) of dims
// (input m, hidden k, output n), with and without the unified
// sender/receiver architecture. Role switching lets every tile run the
// OT in its cheaper direction, halving traffic (§5.2); compute costs
// ~1.5x the unified-case wire time, so halving communication yields
// the paper's ~1.4x latency gain.
type MatMul struct {
	M, K, N int
}

// CommBytes returns modeled traffic.
func (mm MatMul) CommBytes(unified bool) int64 {
	base := int64(mm.M*mm.K+mm.K*mm.N+mm.M*mm.N) * 32
	if unified {
		return base
	}
	return 2 * base
}

// Latency returns modeled wall time on the given network.
func (mm MatMul) Latency(net simnet.Network, unified bool) float64 {
	comm := net.Latency(mm.CommBytes(unified), 4)
	compute := 1.5 * net.Latency(mm.CommBytes(true), 0)
	return comm + compute
}
