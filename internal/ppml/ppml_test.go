package ppml

import (
	"math"
	"testing"

	"ironman/internal/ferret"
	"ironman/internal/gmw"
	"ironman/internal/sim/gpu"
	"ironman/internal/sim/nmp"
	"ironman/internal/simnet"
)

// testIronman uses a sampled NMP sim to keep tests fast.
func testIronman() *IronmanBackend {
	cfg := nmp.DefaultConfig(16, 1<<20)
	cfg.SampleRows = 20000
	return &IronmanBackend{Cfg: cfg}
}

func TestModelZooShapes(t *testing.T) {
	for _, m := range CNNs {
		if m.Transformer {
			t.Errorf("%s mislabeled as transformer", m.Name)
		}
		if m.Elems[ReLU] == 0 || m.Elems[GELU] != 0 {
			t.Errorf("%s: CNN must have ReLUs only", m.Name)
		}
	}
	for _, m := range Transformers {
		if !m.Transformer {
			t.Errorf("%s mislabeled", m.Name)
		}
		if m.Elems[GELU] == 0 || m.Elems[Softmax] == 0 || m.Elems[LayerNorm] == 0 {
			t.Errorf("%s: transformer missing op counts", m.Name)
		}
	}
	// BERT-Base reference shapes: 12x128x3072 GELU.
	if BERTBase.Elems[GELU] != 12*128*3072 {
		t.Fatalf("BERT-Base GELU = %d", BERTBase.Elems[GELU])
	}
	if BERTLarge.TotalNonlinear() <= BERTBase.TotalNonlinear() {
		t.Fatal("BERT-Large must exceed BERT-Base")
	}
}

func TestModelByName(t *testing.T) {
	if m, ok := ModelByName("ResNet50"); !ok || m.Elems[ReLU] != 9_400_000 {
		t.Fatal("ResNet50 lookup broken")
	}
	if _, ok := ModelByName("AlexNet"); ok {
		t.Fatal("unknown model should fail")
	}
}

func TestFrameworkCosts(t *testing.T) {
	// Cheetah is strictly cheaper than CrypTFlow2 per ReLU.
	if Cheetah.Costs[ReLU].OTs >= CrypTFlow2.Costs[ReLU].OTs {
		t.Fatal("Cheetah should consume fewer OTs per ReLU")
	}
	if CrypTFlow2.OTCount(ResNet50) <= CrypTFlow2.OTCount(ResNet18) {
		t.Fatal("more ReLUs must need more OTs")
	}
	if !Bolt.Supports(BERTBase) || Bolt.Supports(ResNet50) {
		t.Fatal("Bolt targets transformers")
	}
	if !CrypTFlow2.Supports(ResNet50) || CrypTFlow2.Supports(BERTBase) {
		t.Fatal("CrypTFlow2 targets CNNs")
	}
	if !SiRNN.Supports(BERTBase) || !SiRNN.Supports(ResNet50) {
		t.Fatal("SiRNN evaluates both families")
	}
}

// TestFig1aOTEFraction: the paper's motivating observation — OT
// extension accounts for roughly half to two-thirds of baseline
// end-to-end time across frameworks and models.
func TestFig1aOTEFraction(t *testing.T) {
	base := DefaultCPUBaseline()
	cases := []struct {
		f Framework
		m Model
	}{
		{Cheetah, SqueezeNet}, {Cheetah, ResNet50}, {Cheetah, DenseNet121},
		{CrypTFlow2, SqueezeNet}, {CrypTFlow2, ResNet50},
		{Bolt, BERTBase}, {Bolt, BERTLarge}, {Bolt, GPT2Large},
	}
	for _, c := range cases {
		lat := EndToEnd(c.f, c.m, simnet.LAN, base)
		frac := lat.OTEFraction()
		if frac < 0.45 || frac > 0.85 {
			t.Errorf("%s/%s: OTE fraction %.2f outside the 0.45-0.85 band",
				c.f.Name, c.m.Name, frac)
		}
	}
}

// TestTable5SpeedupStructure checks the qualitative Table 5 findings:
// Ironman speeds everything up; LAN gains exceed WAN gains (comm
// becomes the bottleneck on slow links); Transformer gains exceed CNN
// gains (heavier nonlinear protocols).
func TestTable5SpeedupStructure(t *testing.T) {
	base := DefaultCPUBaseline()
	iron := testIronman()

	_, _, lanCNN := Speedup(Cheetah, ResNet50, simnet.LAN, base, iron)
	_, _, wanCNN := Speedup(Cheetah, ResNet50, simnet.WAN, base, iron)
	if lanCNN <= 1 || wanCNN <= 1 {
		t.Fatalf("Ironman must win: lan %.2f wan %.2f", lanCNN, wanCNN)
	}
	if lanCNN <= wanCNN {
		t.Fatalf("LAN speedup (%.2f) should exceed WAN (%.2f)", lanCNN, wanCNN)
	}
	_, _, lanTr := Speedup(Bolt, BERTLarge, simnet.LAN, base, iron)
	if lanTr <= lanCNN {
		t.Fatalf("Transformer speedup (%.2f) should exceed CNN (%.2f)", lanTr, lanCNN)
	}
	// Band check against the paper (LAN: 1.95-3.4x): allow slack for
	// our more conservative NMP model but demand the right regime.
	if lanCNN < 1.3 || lanCNN > 6 {
		t.Errorf("CNN LAN speedup %.2f outside plausible band", lanCNN)
	}
	if lanTr < 1.8 || lanTr > 8 {
		t.Errorf("Transformer LAN speedup %.2f outside plausible band", lanTr)
	}
}

// TestFig15OperatorSpeedups: the ~4x operator-level reductions.
func TestFig15OperatorSpeedups(t *testing.T) {
	base := DefaultCPUBaseline()
	iron := testIronman()
	for _, op := range []Op{LayerNorm, GELU, Softmax, ReLU} {
		b := OperatorBench(SiRNN, op, 1<<20, simnet.LAN, base)
		ir := OperatorBench(SiRNN, op, 1<<20, simnet.LAN, iron)
		sp := b.Total() / ir.Total()
		if sp < 2 || sp > 15 {
			t.Errorf("%v: operator speedup %.2f outside band", op, sp)
		}
	}
}

// TestFig16MatMul: role switching halves communication and buys ~1.4x
// latency.
func TestFig16MatMul(t *testing.T) {
	mm := MatMul{M: 64, K: 768, N: 768}
	if r := float64(mm.CommBytes(false)) / float64(mm.CommBytes(true)); r != 2 {
		t.Fatalf("comm ratio %.2f, want 2", r)
	}
	lr := mm.Latency(simnet.LAN, false) / mm.Latency(simnet.LAN, true)
	if lr < 1.3 || lr > 1.5 {
		t.Fatalf("latency ratio %.2f, want ~1.4", lr)
	}
}

func TestBackendsOrdering(t *testing.T) {
	// For a large budget: CPU > GPU > Ironman.
	const n = 1 << 28
	cpuB := DefaultCPUBaseline()
	gpuB := GPUBackend{Host: cpuB.Model, GPU: gpu.A6000}
	iron := testIronman()
	c, g, i := cpuB.Seconds(n), gpuB.Seconds(n), iron.Seconds(n)
	if !(c > g && g > i) {
		t.Fatalf("ordering wrong: cpu %.2f gpu %.2f ironman %.2f", c, g, i)
	}
	if cpuB.Name() == "" || gpuB.Name() == "" || iron.Name() == "" {
		t.Fatal("names empty")
	}
}

func TestUnsupportedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unsupported model")
		}
	}()
	EndToEnd(Bolt, ResNet50, simnet.LAN, DefaultCPUBaseline())
}

// TestOTEFractionZeroTotal: regression — a zero-cost latency (such as
// a zero-element OperatorBench on a free backend) used to yield NaN.
func TestOTEFractionZeroTotal(t *testing.T) {
	var l Latency
	if frac := l.OTEFraction(); frac != 0 {
		t.Fatalf("zero-total OTEFraction = %v, want 0", frac)
	}
	if math.IsNaN((Latency{OTE: 1}).OTEFraction()) {
		t.Fatal("nonzero latency must not be NaN")
	}
}

// TestGMWLayerCosts checks the engine-derived operator plumbing against
// the measured wire format: 2 OTs per AND, 3 bits per OT, log-depth
// comparison rounds.
func TestGMWLayerCosts(t *testing.T) {
	c := GMWComparisonCost(4096, 64)
	if c.ANDGates != 4096*(3*64-2) {
		t.Fatalf("comparison ANDs %d", c.ANDGates)
	}
	if c.OTs != 2*c.ANDGates {
		t.Fatal("2 OTs per AND")
	}
	if c.Exchanges != 7 {
		t.Fatalf("64-bit comparison exchanges %d, want 7", c.Exchanges)
	}
	// 6 bits per AND gate -> 0.75 B/AND, ~86x under the 64.25 B/AND
	// block path and comfortably >= 10x.
	if bpa := c.BytesPerAND(); bpa < 0.7 || bpa > 0.8 {
		t.Fatalf("bytes/AND %.3f outside the bit-packed band", bpa)
	}
	if GMWComparisonCost(1, 1).Exchanges != 1 {
		t.Fatal("width-1 comparison is a single layer")
	}
	m := GMWMuxCost(1000, 16)
	if m.ANDGates != 16000 || m.Exchanges != 1 {
		t.Fatalf("mux cost %+v", m)
	}
	r := GMWReLUCost(1000, 16)
	if r.ANDGates != m.ANDGates+GMWComparisonCost(1000, 16).ANDGates {
		t.Fatal("ReLU = compare + mask")
	}
	if (GMWLayerCost{}).BytesPerAND() != 0 {
		t.Fatal("empty layer has no per-gate cost")
	}
}

func TestOperatorBenchUnknownOpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	OperatorBench(CrypTFlow2, GELU, 100, simnet.LAN, DefaultCPUBaseline())
}

func TestArithCostModels(t *testing.T) {
	tr := ArithTripleCost(1000)
	if tr.COTs != 128_000 || tr.Exchanges != 1 {
		t.Fatalf("triple cost %+v", tr)
	}
	// 528 B per product per direction.
	if got := tr.BytesPerTriple(); got != 1056 {
		t.Fatalf("bytes/triple = %v, want 1056", got)
	}
	mt := ArithMatTripleCost(8, 16, 4)
	if mt.Products != 8*16*4 {
		t.Fatalf("mat triple products %+v", mt)
	}
	on := ArithMatMulOnlineCost(8, 16, 4)
	if on.WireBytes != 2*8*(8*16+16*4) || on.COTs != 0 {
		t.Fatalf("matmul online cost %+v", on)
	}
	b2a := ArithB2ACost(100, 64)
	if b2a.COTs != 100*63 {
		t.Fatalf("b2a cost %+v", b2a)
	}
	a2b := ArithA2BCost(100, 64)
	if a2b.ANDGates != 100*int64(gmw.AdderANDGates(64)) {
		t.Fatalf("a2b cost %+v", a2b)
	}
	if (ArithCost{}).BytesPerTriple() != 0 {
		t.Fatal("empty cost has no per-triple bytes")
	}
}

func TestPreprocBytesDerivation(t *testing.T) {
	// The modeled preprocessing communication must be sublinear (well
	// under a block per correlation) and track the parameter set.
	for _, p := range ferret.Table4 {
		b := PreprocBytesFor(p)
		if b <= 0 || b >= 1 {
			t.Fatalf("%s: preproc bytes/OT %v out of the sublinear range", p.Name, b)
		}
	}
	if PreprocBytesPerOT != PreprocBytesFor(oteParams) {
		t.Fatal("PreprocBytesPerOT must be derived from the active parameter set")
	}
}
