package ppml

import "ironman/internal/circuit"

// GMWCircuitCost prices one SIMD-packed secure evaluation of a
// compiled Bristol circuit (internal/circuit) under the bitsliced GMW
// engine. Unlike the closed-form layer models above, this one is
// exact: it walks the compiled level schedule and applies the engine's
// real wire format, so it matches the measured gmw.Party counters and
// transport byte deltas to the byte (experiments.CircuitBench asserts
// this on every run).
type GMWCircuitCost struct {
	// ANDGates is the total AND gates evaluated: circuit ANDs x
	// instances.
	ANDGates int64
	// OTs is the COT correlations consumed per endpoint, both
	// directions (2 per AND gate).
	OTs int64
	// Levels is the schedule length (AND depth + 1; the final level is
	// local-only).
	Levels int
	// Exchanges is the batched two-flight OT exchanges one evaluation
	// issues — the circuit's AND depth, independent of the instance
	// count. This is the number the SIMD packing amortizes against.
	Exchanges int
	// WireBytes is the exact online traffic at one endpoint, both
	// directions, reveal excluded: each exchange of n packed gate-bits
	// moves one ceil(n/8)-byte correction frame and one 2*ceil(n/8)-
	// byte ciphertext frame per OT direction, 6*ceil(n/8) bytes total.
	WireBytes int64
}

// CircuitCost prices evaluating instances SIMD-packed copies of the
// compiled circuit in one Eval call.
func CircuitCost(prog *circuit.Program, instances int) GMWCircuitCost {
	c := GMWCircuitCost{
		ANDGates:  int64(prog.ANDs) * int64(instances),
		Levels:    len(prog.Levels),
		Exchanges: prog.ANDLevels,
	}
	c.OTs = 2 * c.ANDGates
	for _, w := range prog.LevelANDs() {
		bits := int64(w) * int64(instances)
		c.WireBytes += 6 * ((bits + 7) / 8)
	}
	return c
}

// BytesPerAND is the modeled online wire cost per evaluated AND gate.
func (c GMWCircuitCost) BytesPerAND() float64 {
	if c.ANDGates == 0 {
		return 0
	}
	return float64(c.WireBytes) / float64(c.ANDGates)
}
