// Package ppml models hybrid HE/MPC private-inference frameworks well
// enough to reproduce the paper's application-level results: the
// execution-time breakdowns of Figure 1(a), the nonlinear-operator
// microbenchmarks of Figure 15, the unified-architecture MatMul study
// of Figure 16, and the end-to-end latencies of Table 5.
//
// The models are cost models, not executable networks: each neural
// network is an inventory of nonlinear elements (ReLU/GELU/Softmax/
// LayerNorm activations) and linear-layer MACs; each framework prices
// those elements in OT correlations consumed, online bytes, and rounds
// (constants documented in frameworks.go). The OT-extension
// preprocessing time then comes from a pluggable backend: the CPU
// model, the GPU model, or the Ironman NMP simulator.
package ppml

// Op enumerates the nonlinear operators the paper benchmarks.
type Op int

const (
	ReLU Op = iota
	GELU
	Softmax
	LayerNorm
	numOps
)

func (o Op) String() string {
	switch o {
	case ReLU:
		return "ReLU"
	case GELU:
		return "GELU"
	case Softmax:
		return "Softmax"
	case LayerNorm:
		return "LayerNorm"
	default:
		return "Op?"
	}
}

// Model is a neural network's cost-relevant inventory.
type Model struct {
	Name        string
	Transformer bool
	// Elems counts activation elements per nonlinear op over one
	// inference (ImageNet 224x224 for CNNs; sequence length 128 for
	// language models, 197 patches for ViT).
	Elems map[Op]int64
	// MACs is the multiply-accumulate count of all linear layers.
	MACs int64
	// NonlinLayers is the number of nonlinear layers (each costs
	// protocol rounds).
	NonlinLayers int
}

// The model zoo of §6.5. Element counts are derived from the standard
// layer shapes (sum of activation-map sizes for CNNs; layers x tokens x
// hidden sizes for Transformers) and rounded to 0.1M.
var (
	MobileNetV2 = Model{Name: "MobileNetV2", Elems: counts(6_200_000, 0, 0, 0), MACs: 300e6, NonlinLayers: 35}
	SqueezeNet  = Model{Name: "SqueezeNet", Elems: counts(3_800_000, 0, 0, 0), MACs: 360e6, NonlinLayers: 26}
	ResNet18    = Model{Name: "ResNet18", Elems: counts(2_300_000, 0, 0, 0), MACs: 1.8e9, NonlinLayers: 17}
	ResNet34    = Model{Name: "ResNet34", Elems: counts(3_600_000, 0, 0, 0), MACs: 3.6e9, NonlinLayers: 33}
	ResNet50    = Model{Name: "ResNet50", Elems: counts(9_400_000, 0, 0, 0), MACs: 4.1e9, NonlinLayers: 49}
	DenseNet121 = Model{Name: "DenseNet121", Elems: counts(15_000_000, 0, 0, 0), MACs: 2.9e9, NonlinLayers: 120}

	ViT        = transformer("ViT", 12, 12, 197, 768, 3072)
	BERTBase   = transformer("BERT-Base", 12, 12, 128, 768, 3072)
	BERTLarge  = transformer("BERT-Large", 24, 16, 128, 1024, 4096)
	GPT2Small  = transformer("GPT2-Small", 12, 12, 128, 768, 3072)
	GPT2Medium = transformer("GPT2-Medium", 24, 16, 128, 1024, 4096)
	GPT2Large  = transformer("GPT2-Large", 36, 20, 128, 1280, 5120)
)

// CNNs and Transformers group the zoo by family.
var (
	CNNs         = []Model{MobileNetV2, SqueezeNet, ResNet18, ResNet34, ResNet50, DenseNet121}
	Transformers = []Model{ViT, BERTBase, BERTLarge, GPT2Large}
)

func counts(relu, gelu, softmax, ln int64) map[Op]int64 {
	return map[Op]int64{ReLU: relu, GELU: gelu, Softmax: softmax, LayerNorm: ln}
}

// transformer derives the inventory from architecture shape: per layer,
// GELU over the FFN inner dim, Softmax over heads x seq^2 attention
// scores, LayerNorm twice per layer (plus one final).
func transformer(name string, layers, heads, seq, hidden, ffn int) Model {
	L, S, H, F := int64(layers), int64(seq), int64(hidden), int64(ffn)
	gelu := L * S * F
	softmax := L * int64(heads) * S * S
	ln := (2*L + 1) * S * H
	// MACs: QKV+proj (4*S*H*H) + FFN (2*S*H*F) + attention (2*heads*S*S*(H/heads)).
	macs := L * (4*S*H*H + 2*S*H*F + 2*S*S*H)
	return Model{
		Name:         name,
		Transformer:  true,
		Elems:        counts(0, gelu, softmax, ln),
		MACs:         macs,
		NonlinLayers: layers * 4,
	}
}

// TotalNonlinear returns the total activation elements of a model.
func (m Model) TotalNonlinear() int64 {
	var t int64
	for _, v := range m.Elems {
		t += v
	}
	return t
}

// ModelByName finds a zoo entry.
func ModelByName(name string) (Model, bool) {
	for _, m := range append(append([]Model{}, CNNs...), ViT, BERTBase, BERTLarge, GPT2Small, GPT2Medium, GPT2Large) {
		if m.Name == name {
			return m, true
		}
	}
	return Model{}, false
}
