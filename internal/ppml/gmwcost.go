package ppml

import "ironman/internal/gmw"

// GMWLayerCost prices one batched nonlinear layer under the bitsliced
// GMW engine (internal/gmw): the operator-level plumbing that connects
// the Figure 15 style cost models to the engine's actual wire format.
// Every AND gate costs 2 bit-payload chosen OTs, and every OT moves 3
// bits of online traffic (1 correction bit + 2 ciphertext bits); a
// batched layer is one two-flight exchange regardless of element count.
type GMWLayerCost struct {
	ANDGates  int64
	OTs       int64 // COT correlations consumed (2 per AND)
	WireBytes int64 // online bytes, both directions
	Exchanges int   // batched two-flight OT exchanges (network rounds)
}

// gmwWireBits is the online traffic per bit-payload chosen OT.
const gmwWireBits = 3

func gmwCost(ands int64, exchanges int) GMWLayerCost {
	ots := 2 * ands
	return GMWLayerCost{
		ANDGates:  ands,
		OTs:       ots,
		WireBytes: (gmwWireBits*ots + 7) / 8,
		Exchanges: exchanges,
	}
}

// GMWComparisonCost prices a batched width-bit greater-than layer
// (gmw.GreaterThanVec) over elems values: (3w-2) AND gates per element
// in 1+ceil(log2 w) exchanges — the DReLU/millionaire building block.
func GMWComparisonCost(elems int64, width int) GMWLayerCost {
	return gmwCost(elems*int64(3*width-2), gmw.ComparatorExchanges(width))
}

// GMWMuxCost prices a batched width-bit multiplexer layer
// (gmw.MuxVec): one AND gate per plane bit, one exchange total.
func GMWMuxCost(elems int64, width int) GMWLayerCost {
	return gmwCost(elems*int64(width), 1)
}

// GMWReLUCost prices the Boolean half of a ReLU layer (gmw.ReLUVec
// after the comparison produced sign shares): compare then mask.
func GMWReLUCost(elems int64, width int) GMWLayerCost {
	cmp := GMWComparisonCost(elems, width)
	mask := GMWMuxCost(elems, width)
	return GMWLayerCost{
		ANDGates:  cmp.ANDGates + mask.ANDGates,
		OTs:       cmp.OTs + mask.OTs,
		WireBytes: cmp.WireBytes + mask.WireBytes,
		Exchanges: cmp.Exchanges + mask.Exchanges,
	}
}

// BytesPerAND is the modeled online wire cost per AND gate.
func (c GMWLayerCost) BytesPerAND() float64 {
	if c.ANDGates == 0 {
		return 0
	}
	return float64(c.WireBytes) / float64(c.ANDGates)
}
