package ppml

import "ironman/internal/gmw"

// Arithmetic-layer cost models (arithcost.go): the operator-level
// plumbing that connects the linear-layer cost models to the actual
// wire format of internal/arith, the way GMWLayerCost does for the
// Boolean engine. Constants mirror the implemented protocol exactly:
//
//   - A Gilboa product is 64 word OTs in one direction; instance i
//     ships one correction bit and two ciphertexts of 64-i bits, so a
//     product costs 64 + 2·2080 = 4224 wire bits (528 B).
//   - A Beaver triple is one Gilboa product per direction (128 COTs,
//     1056 B); a matrix triple is m·k·n of them.
//   - B2A ships one word OT per sub-top bit plane per element, plane j
//     at width 64-j-1.
type ArithCost struct {
	Products  int64 // scalar Gilboa products (64 COTs per direction each)
	COTs      int64 // COT correlations consumed, both directions
	WireBytes int64 // online bytes, both directions
	Exchanges int   // batched two-flight exchanges
}

// gilboaProductBits is the wire cost of ONE Gilboa product in one
// direction: 64 correction bits plus 2·sum_{i=0..63}(64-i) ciphertext
// bits.
const gilboaProductBits = 64 + 2*2080

// ArithTripleCost prices generating n Beaver triples (arith.NewTriples).
func ArithTripleCost(n int64) ArithCost {
	return ArithCost{
		Products:  n,
		COTs:      128 * n,
		WireBytes: (2*gilboaProductBits*n + 7) / 8,
		Exchanges: 1,
	}
}

// ArithMatTripleCost prices a Beaver matrix triple of shape
// (m×k)·(k×n) (arith.NewMatTriple): m·k·n scalar products in one
// batched exchange per direction.
func ArithMatTripleCost(m, k, n int) ArithCost {
	return ArithTripleCost(int64(m) * int64(k) * int64(n))
}

// ArithMatMulOnlineCost prices the online half of a Beaver matmul
// (arith.MatMul): both parties open D (m×k) and E (k×n) words in one
// exchange; no OTs.
func ArithMatMulOnlineCost(m, k, n int) ArithCost {
	words := int64(m)*int64(k) + int64(k)*int64(n)
	return ArithCost{WireBytes: 2 * 8 * words, Exchanges: 1}
}

// ArithB2ACost prices converting elems width-bit Boolean vectors to
// arithmetic shares (arith.B2A): per element, one word OT per plane j
// with payload width 64-j-1 (zero-width planes cost nothing), single
// direction.
func ArithB2ACost(elems int64, width int) ArithCost {
	var ots, bits int64
	for j := 0; j < width; j++ {
		if w := 64 - j - 1; w > 0 {
			ots++
			bits += 1 + 2*int64(w)
		}
	}
	return ArithCost{
		COTs:      elems * ots,
		WireBytes: (elems*bits + 7) / 8,
		Exchanges: 1,
	}
}

// ArithA2BCost prices converting elems arithmetic shares to width-bit
// Boolean planes (arith.A2B): a width-w packed parallel-prefix adder,
// priced like any other GMW layer.
func ArithA2BCost(elems int64, width int) GMWLayerCost {
	return gmwCost(elems*int64(gmw.AdderANDGates(width)), gmw.AdderExchanges(width))
}

// BytesPerTriple is the modeled wire cost per scalar triple.
func (c ArithCost) BytesPerTriple() float64 {
	if c.Products == 0 {
		return 0
	}
	return float64(c.WireBytes) / float64(c.Products)
}
