// Package simnet models the network between the two protocol parties.
// The paper evaluates two settings (§6.5, following Cheetah): a LAN
// (3 Gbps, 0.15 ms RTT) and a WAN (400 Mbps, 20 ms RTT). Protocol wire
// time is bytes/bandwidth + flights*RTT, computed from the transport
// statistics of a real run or from a modeled byte count.
package simnet

import "ironman/internal/transport"

// Network is a bandwidth/latency pair.
type Network struct {
	Name         string
	BandwidthBps float64 // bits per second
	RTTSeconds   float64
}

// The two settings of Table 5 / Figure 7(c).
var (
	LAN = Network{Name: "LAN(3Gbps,0.15ms)", BandwidthBps: 3e9, RTTSeconds: 0.15e-3}
	WAN = Network{Name: "WAN(400Mbps,20ms)", BandwidthBps: 400e6, RTTSeconds: 20e-3}
)

// Latency returns the wire time of a protocol that moves the given
// bytes in the given number of flights (direction changes).
func (n Network) Latency(bytes int64, flights int) float64 {
	return float64(bytes)*8/n.BandwidthBps + float64(flights)*n.RTTSeconds
}

// LatencyOf prices a finished protocol run from its transport stats.
func (n Network) LatencyOf(s transport.Stats) float64 {
	return n.Latency(s.TotalBytes(), s.Flights)
}
