package simnet

import (
	"math"
	"testing"

	"ironman/internal/transport"
)

func TestLatencyFormula(t *testing.T) {
	// 3 Gbps, 0.15 ms: 375 MB in one flight = 1 s + 0.15 ms.
	got := LAN.Latency(375_000_000, 1)
	if math.Abs(got-1.00015) > 1e-9 {
		t.Fatalf("LAN latency = %f", got)
	}
	// WAN RTT dominates small chatty protocols.
	chatty := WAN.Latency(1000, 100)
	bulk := WAN.Latency(1000_000, 1)
	if chatty < 100*WAN.RTTSeconds {
		t.Fatal("flights must each pay an RTT")
	}
	if chatty < bulk {
		t.Fatal("100 WAN round trips should beat 1 MB in one flight... inverted")
	}
}

func TestWANSlowerThanLAN(t *testing.T) {
	for _, bytes := range []int64{1000, 1 << 20, 1 << 30} {
		if WAN.Latency(bytes, 3) <= LAN.Latency(bytes, 3) {
			t.Fatalf("WAN should be slower at %d bytes", bytes)
		}
	}
}

func TestLatencyOfStats(t *testing.T) {
	a, b := transport.Pipe()
	defer a.Close()
	defer b.Close()
	_ = a.Send(make([]byte, 1000))
	_, _ = b.Recv()
	_ = b.Send(make([]byte, 500))
	_, _ = a.Recv()
	st := a.Stats()
	want := LAN.Latency(1500, st.Flights)
	if got := LAN.LatencyOf(st); math.Abs(got-want) > 1e-12 {
		t.Fatalf("LatencyOf = %g, want %g", got, want)
	}
}

func TestSettingsMatchPaper(t *testing.T) {
	if LAN.BandwidthBps != 3e9 || LAN.RTTSeconds != 0.15e-3 {
		t.Fatal("LAN setting drifted from §6.5")
	}
	if WAN.BandwidthBps != 400e6 || WAN.RTTSeconds != 20e-3 {
		t.Fatal("WAN setting drifted from §6.5")
	}
}
