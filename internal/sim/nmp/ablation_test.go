package nmp

import (
	"testing"

	"ironman/internal/ferret"
	"ironman/internal/lpn"
	"ironman/internal/prg"
)

// Ablation benches for the design choices DESIGN.md calls out. Each
// reports the modeled LPN or OTE latency as a custom metric so the
// bench harness records the effect size.

func ablCfg() Config {
	c := DefaultConfig(16, 256<<10)
	c.SampleRows = 60000
	return c
}

func ablParams() ferret.Params { p, _ := ferret.ParamsByName("2^20"); return p }

// BenchmarkAblationSortingOff: no compile-time sorting at all.
func BenchmarkAblationSortingOff(b *testing.B) {
	var sec float64
	for i := 0; i < b.N; i++ {
		st, err := SimulateLPN(ablCfg(), ablParams(), lpn.SortOptions{}, ferret.DefaultCodeSeed)
		if err != nil {
			b.Fatal(err)
		}
		sec = st.Seconds
	}
	b.ReportMetric(sec*1e3, "lpn-ms")
}

// BenchmarkAblationColumnSwapOnly: spatial locality only (Fig 11(b)).
func BenchmarkAblationColumnSwapOnly(b *testing.B) {
	var sec float64
	for i := 0; i < b.N; i++ {
		st, err := SimulateLPN(ablCfg(), ablParams(), lpn.SortOptions{ColumnSwap: true}, ferret.DefaultCodeSeed)
		if err != nil {
			b.Fatal(err)
		}
		sec = st.Seconds
	}
	b.ReportMetric(sec*1e3, "lpn-ms")
}

// BenchmarkAblationFullSort: column swap + row look-ahead (Fig 11(c)).
func BenchmarkAblationFullSort(b *testing.B) {
	var sec float64
	cfg := ablCfg()
	for i := 0; i < b.N; i++ {
		st, err := SimulateLPN(cfg, ablParams(), SortFor(cfg), ferret.DefaultCodeSeed)
		if err != nil {
			b.Fatal(err)
		}
		sec = st.Seconds
	}
	b.ReportMetric(sec*1e3, "lpn-ms")
}

// BenchmarkAblationOverlap: SPCOT/LPN decoupling on vs off (§5.1).
func BenchmarkAblationOverlap(b *testing.B) {
	for _, overlap := range []bool{false, true} {
		name := "off"
		if overlap {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			cfg := ablCfg()
			cfg.Overlap = overlap
			var sec float64
			for i := 0; i < b.N; i++ {
				res, err := SimulateOTE(cfg, ablParams(), prg.New(prg.ChaCha8, 4), SortFor(cfg), ablParams().Usable())
				if err != nil {
					b.Fatal(err)
				}
				sec = res.ExecSeconds
			}
			b.ReportMetric(sec*1e3, "exec-ms")
		})
	}
}

// BenchmarkAblationRowWeight sweeps the LPN row weight d around the
// baseline 10: heavier codes cost proportionally more bandwidth.
func BenchmarkAblationRowWeight(b *testing.B) {
	for _, d := range []int{5, 10, 20} {
		b.Run(map[int]string{5: "d5", 10: "d10", 20: "d20"}[d], func(b *testing.B) {
			p := ablParams()
			p.D = d
			cfg := ablCfg()
			var sec float64
			for i := 0; i < b.N; i++ {
				st, err := SimulateLPN(cfg, p, SortFor(cfg), ferret.DefaultCodeSeed)
				if err != nil {
					b.Fatal(err)
				}
				sec = st.Seconds
			}
			b.ReportMetric(sec*1e3, "lpn-ms")
		})
	}
}

// TestAblationOrdering pins the expected effect directions: each
// sorting stage helps, and overlap helps.
func TestAblationOrdering(t *testing.T) {
	cfg := ablCfg()
	p := ablParams()
	none, err := SimulateLPN(cfg, p, lpn.SortOptions{}, ferret.DefaultCodeSeed)
	if err != nil {
		t.Fatal(err)
	}
	swap, err := SimulateLPN(cfg, p, lpn.SortOptions{ColumnSwap: true}, ferret.DefaultCodeSeed)
	if err != nil {
		t.Fatal(err)
	}
	full, err := SimulateLPN(cfg, p, SortFor(cfg), ferret.DefaultCodeSeed)
	if err != nil {
		t.Fatal(err)
	}
	if !(full.CacheHitRate > swap.CacheHitRate && swap.CacheHitRate > none.CacheHitRate) {
		t.Fatalf("hit rates should order none < swap < full: %.3f %.3f %.3f",
			none.CacheHitRate, swap.CacheHitRate, full.CacheHitRate)
	}
	if !(full.Seconds < none.Seconds) {
		t.Fatalf("full sorting should beat no sorting: %.4f vs %.4f", full.Seconds, none.Seconds)
	}
}
