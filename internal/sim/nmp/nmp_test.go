package nmp

import (
	"testing"

	"ironman/internal/block"
	"ironman/internal/ferret"
	"ironman/internal/lpn"
	"ironman/internal/prg"
)

var seed = block.New(1, 2)

// fastCfg keeps simulation samples small for unit tests.
func fastCfg(ranks, cacheBytes int) Config {
	c := DefaultConfig(ranks, cacheBytes)
	c.SampleRows = 20000
	return c
}

func set20() ferret.Params { p, _ := ferret.ParamsByName("2^20"); return p }

func TestLPNMoreRanksFaster(t *testing.T) {
	params := set20()
	var prev float64
	for i, ranks := range []int{2, 4, 8, 16} {
		st, err := SimulateLPN(fastCfg(ranks, 256<<10), params, lpn.DefaultSort(), seed)
		if err != nil {
			t.Fatal(err)
		}
		if st.Seconds <= 0 {
			t.Fatal("non-positive latency")
		}
		if i > 0 && st.Seconds >= prev {
			t.Fatalf("%d ranks (%.4fs) not faster than fewer ranks (%.4fs)", ranks, st.Seconds, prev)
		}
		prev = st.Seconds
	}
}

func TestLPNBiggerCacheFaster(t *testing.T) {
	params := set20()
	small, err := SimulateLPN(fastCfg(16, 64<<10), params, lpn.DefaultSort(), seed)
	if err != nil {
		t.Fatal(err)
	}
	big, err := SimulateLPN(fastCfg(16, 1<<20), params, lpn.DefaultSort(), seed)
	if err != nil {
		t.Fatal(err)
	}
	if big.CacheHitRate <= small.CacheHitRate {
		t.Fatalf("1MB hit rate %.3f should beat 64KB %.3f", big.CacheHitRate, small.CacheHitRate)
	}
	if big.Seconds >= small.Seconds {
		t.Fatalf("1MB latency %.4f should beat 64KB %.4f", big.Seconds, small.Seconds)
	}
}

func TestSortingImprovesLPN(t *testing.T) {
	params := set20()
	cfg := fastCfg(16, 256<<10)
	unsorted, err := SimulateLPN(cfg, params, lpn.SortOptions{}, seed)
	if err != nil {
		t.Fatal(err)
	}
	sorted, err := SimulateLPN(cfg, params, lpn.DefaultSort(), seed)
	if err != nil {
		t.Fatal(err)
	}
	if sorted.CacheHitRate <= unsorted.CacheHitRate {
		t.Fatalf("sorted hit rate %.3f should beat unsorted %.3f",
			sorted.CacheHitRate, unsorted.CacheHitRate)
	}
	if sorted.Seconds >= unsorted.Seconds {
		t.Fatalf("sorted latency %.4f should beat unsorted %.4f",
			sorted.Seconds, unsorted.Seconds)
	}
}

// TestFigure13aOrdering: SPCOT latency ordering of the four design
// points — 4-ary ChaCha < 2-ary ChaCha < 4-ary AES < 2-ary AES, with
// the combined optimization ~6x over the baseline.
func TestFigure13aOrdering(t *testing.T) {
	cfg := fastCfg(16, 256<<10)
	lat := func(kind prg.Kind, arity int) float64 {
		st, err := SimulateSPCOT(cfg, prg.New(kind, arity), 4096, 480)
		if err != nil {
			t.Fatal(err)
		}
		return st.Seconds
	}
	aes2 := lat(prg.AES, 2)
	aes4 := lat(prg.AES, 4)
	cha2 := lat(prg.ChaCha8, 2)
	cha4 := lat(prg.ChaCha8, 4)
	if !(cha4 < cha2 && cha2 < aes4 && aes4 < aes2) {
		t.Fatalf("ordering wrong: aes2=%.5f aes4=%.5f cha2=%.5f cha4=%.5f", aes2, aes4, cha2, cha4)
	}
	if r := aes2 / cha4; r < 5.5 || r > 6.5 {
		t.Fatalf("combined speedup %.2f, want ~6 (Fig 13a)", r)
	}
	if r := aes2 / aes4; r < 1.4 || r > 1.6 {
		t.Fatalf("4-ary AES speedup %.2f, want ~1.5", r)
	}
	if r := aes2 / cha2; r < 1.9 || r > 2.1 {
		t.Fatalf("2-ary ChaCha speedup %.2f, want ~2", r)
	}
}

// TestFigure13bSPCOTBelowLPN: with the full optimization the SPCOT
// latency stays below LPN across rank counts, so LPN bounds the
// overlapped pipeline (§6.2).
func TestFigure13bSPCOTBelowLPN(t *testing.T) {
	params := set20()
	for _, ranks := range []int{2, 4, 8, 16} {
		cfg := fastCfg(ranks, 256<<10)
		sp, err := SimulateSPCOT(cfg, prg.New(prg.ChaCha8, 4), params.L, params.T)
		if err != nil {
			t.Fatal(err)
		}
		lp, err := SimulateLPN(cfg, params, lpn.DefaultSort(), seed)
		if err != nil {
			t.Fatal(err)
		}
		if sp.Seconds >= lp.Seconds {
			t.Fatalf("%d ranks: SPCOT %.5fs should stay below LPN %.5fs", ranks, sp.Seconds, lp.Seconds)
		}
	}
}

func TestOverlapHelps(t *testing.T) {
	params := set20()
	cfg := fastCfg(16, 256<<10)
	p := prg.New(prg.ChaCha8, 4)
	// One full execution's worth of OTs (the nominal 2^20 is a hair
	// above Usable(), which would round up to two executions).
	over, err := SimulateOTE(cfg, params, p, lpn.DefaultSort(), params.Usable())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Overlap = false
	seq, err := SimulateOTE(cfg, params, p, lpn.DefaultSort(), params.Usable())
	if err != nil {
		t.Fatal(err)
	}
	if over.TotalSeconds >= seq.TotalSeconds {
		t.Fatalf("overlap %.4f should beat sequential %.4f", over.TotalSeconds, seq.TotalSeconds)
	}
	if over.Executions != 1 || seq.Executions != 1 {
		t.Fatalf("one execution expected, got %d", over.Executions)
	}
}

func TestExecutionsCount(t *testing.T) {
	params := set20()
	cfg := fastCfg(16, 1<<20)
	res, err := SimulateOTE(cfg, params, prg.New(prg.ChaCha8, 4), lpn.DefaultSort(), 1<<25)
	if err != nil {
		t.Fatal(err)
	}
	if res.Executions != 33 { // ceil(2^25 / 1047756)
		t.Fatalf("executions = %d, want 33", res.Executions)
	}
	if res.TotalSeconds <= res.ExecSeconds {
		t.Fatal("total must accumulate executions")
	}
}

func TestBadConfigRejected(t *testing.T) {
	params := set20()
	if _, err := SimulateLPN(Config{}, params, lpn.DefaultSort(), seed); err == nil {
		t.Fatal("expected config error")
	}
	if _, err := SimulateSPCOT(Config{}, prg.New(prg.AES, 2), 16, 1); err == nil {
		t.Fatal("expected config error")
	}
}

func TestDIMMCount(t *testing.T) {
	if DefaultConfig(16, 1<<20).DIMMs() != 8 {
		t.Fatal("16 ranks should be 8 DIMMs")
	}
	if DefaultConfig(1, 1<<20).DIMMs() != 1 {
		t.Fatal("DIMMs must be at least 1")
	}
}
