// Package nmp models the Ironman-NMP processing unit of §5 (Figure 9):
// per-DIMM buffer-chip logic holding a DIMM module (ChaCha8 cores +
// unified XOR-tree unit, running SPCOT) and two Rank modules (index
// address generator + memory-side cache + XOR tree, running LPN close
// to the DRAM devices).
//
// The LPN half replays the *actual* access trace of the protocol's LPN
// code — optionally sorted by the §5.3 algorithm — through the
// set-associative cache model and the DDR4 rank timing model, so cache
// hit rates and row-buffer behaviour are measured, not assumed. The
// SPCOT half costs the PRG op count of the chosen tree construction on
// the pipelined ChaCha cores under the hybrid schedule of §4.3.
package nmp

import (
	"fmt"

	"ironman/internal/block"
	"ironman/internal/ferret"
	"ironman/internal/ggm"
	"ironman/internal/lpn"
	"ironman/internal/prg"
	"ironman/internal/sim/cache"
	"ironman/internal/sim/dram"
)

// Config describes one Ironman deployment.
type Config struct {
	Ranks        int // active Rank-NMP modules (the Fig 12 x-axis)
	RanksPerDIMM int // 2 in the Table 3 system

	CacheBytes int // memory-side cache per rank module
	CacheWays  int
	LineBytes  int

	ChaChaCores    int // per DIMM module
	PipelineStages int // ChaCha8 core depth
	LogicFreqMHz   int // buffer-chip logic clock

	// ElemsPerCycle is how many 16-byte vector elements the rank XOR
	// tree consumes per cycle on cache hits (a 64 B SRAM port feeds 4).
	ElemsPerCycle int

	// Overlap enables the SPCOT/LPN decoupling of §5.1 (the two phases
	// proceed concurrently; total = max instead of sum).
	Overlap bool

	// SampleRows caps the number of matrix rows replayed per rank; the
	// measured cycles are scaled to the full row count. 0 = exact.
	SampleRows int
}

// DefaultConfig is the paper's preferred design point for the given
// rank count and cache size.
func DefaultConfig(ranks, cacheBytes int) Config {
	return Config{
		Ranks:          ranks,
		RanksPerDIMM:   2,
		CacheBytes:     cacheBytes,
		CacheWays:      8,
		LineBytes:      64,
		ChaChaCores:    1, // Table 6 prices a single ChaCha8 core per PU
		PipelineStages: 8,
		LogicFreqMHz:   1200,
		ElemsPerCycle:  4,
		Overlap:        true,
		SampleRows:     200_000,
	}
}

// SortFor returns the §5.3 sorting configuration matched to this
// design point: the compile-time pass scores candidate rows against a
// simulated copy of the *actual* memory-side cache.
func SortFor(cfg Config) lpn.SortOptions {
	return lpn.SortOptions{
		ColumnSwap:      true,
		LookaheadWindow: 32,
		CacheLines:      cfg.CacheBytes / cfg.LineBytes,
		LineWords:       cfg.LineBytes / block.Size,
	}
}

// DIMMs returns the number of DIMM modules implied by the rank count.
func (c Config) DIMMs() int {
	d := c.Ranks / c.RanksPerDIMM
	if d < 1 {
		d = 1
	}
	return d
}

func (c Config) validate() error {
	if c.Ranks < 1 || c.RanksPerDIMM < 1 || c.CacheBytes < c.LineBytes ||
		c.ChaChaCores < 1 || c.LogicFreqMHz < 1 || c.ElemsPerCycle < 1 {
		return fmt.Errorf("nmp: bad config %+v", c)
	}
	return nil
}

// LPNStats is the outcome of replaying one execution's LPN trace.
type LPNStats struct {
	RowsPerRank   int
	Accesses      int64 // vector-element accesses replayed (per rank)
	CacheHitRate  float64
	RowHitRate    float64 // DRAM row-buffer hit rate of the miss stream
	CyclesPerRank int64   // scaled to the full per-rank row count
	Seconds       float64
}

// SimulateLPN replays the LPN access pattern of params through one rank
// module and scales to the configured rank count (rows are partitioned
// evenly across ranks, §5.1; each rank holds a broadcast copy of the
// input vector).
func SimulateLPN(cfg Config, params ferret.Params, sortOpts lpn.SortOptions, codeSeed block.Block) (LPNStats, error) {
	if err := cfg.validate(); err != nil {
		return LPNStats{}, err
	}
	rowsPerRank := (params.N + cfg.Ranks - 1) / cfg.Ranks
	simRows := rowsPerRank
	if cfg.SampleRows > 0 && simRows > cfg.SampleRows {
		simRows = cfg.SampleRows
	}
	code := lpn.New(codeSeed, simRows, params.K, params.D)
	sorted := code.Sort(sortOpts)

	c := cache.New(cfg.CacheBytes, cfg.LineBytes, cfg.CacheWays)
	rank := dram.NewRank(dram.DDR4_2400, dram.DefaultGeometry)

	// The index arrays (Colidx + Rowidx) stream sequentially from a
	// dedicated region; they bypass the cache (§5.3) and cost one line
	// read per LineBytes of index data.
	idxBytesPerRow := int64(params.D*4 + 4)
	var idxAddr uint64 = 1 << 40
	var idxPending int64

	// Hit-path cycles: ElemsPerCycle elements per cycle through the
	// XOR tree.
	var hitElems int64
	var misses int64

	sorted.AccessTrace(func(col uint32) {
		addr := uint64(col) * block.Size
		if c.Access(addr) {
			hitElems++
		} else {
			misses++
			rank.Read(addr)
		}
	})
	// Stream the index arrays.
	idxPending = int64(simRows) * idxBytesPerRow
	for idxPending > 0 {
		rank.Read(idxAddr)
		idxAddr += uint64(cfg.LineBytes)
		idxPending -= int64(cfg.LineBytes)
	}

	dramCycles := rank.Cycles()
	hitCycles := hitElems / int64(cfg.ElemsPerCycle)
	// The rank module pipelines hit processing against DRAM service;
	// the slower of the two streams bounds throughput.
	cycles := dramCycles
	if hitCycles > cycles {
		cycles = hitCycles
	}

	scale := float64(rowsPerRank) / float64(simRows)
	scaled := int64(float64(cycles) * scale)
	return LPNStats{
		RowsPerRank:   rowsPerRank,
		Accesses:      int64(simRows) * int64(params.D),
		CacheHitRate:  c.HitRate(),
		RowHitRate:    rank.RowHitRate(),
		CyclesPerRank: scaled,
		Seconds:       float64(scaled) / (float64(cfg.LogicFreqMHz) * 1e6),
	}, nil
}

// SPCOTStats is the DIMM-module cost of one execution's tree batch.
type SPCOTStats struct {
	Ops         int // primitive PRG core calls across all trees
	Utilization float64
	Cycles      int64
	Seconds     float64
}

// SimulateSPCOT costs t trees of ℓ leaves expanded with p on the
// ChaCha/AES cores of all DIMM modules under the hybrid schedule.
func SimulateSPCOT(cfg Config, p prg.PRG, leaves, trees int) (SPCOTStats, error) {
	if err := cfg.validate(); err != nil {
		return SPCOTStats{}, err
	}
	opsPerTree := ggm.OpsForTree(p, leaves)
	totalOps := opsPerTree * trees

	// Pipeline utilization from the schedule simulator on a small
	// representative batch (enough trees to fill the pipeline).
	batch := cfg.PipelineStages * 2
	if batch > trees {
		batch = trees
	}
	util := 1.0
	if batch >= 1 {
		st := ggm.SimulateSchedule(ggm.PipelineConfig{
			Stages:  cfg.PipelineStages,
			Arities: ggm.LevelArities(leaves, p.Arity()),
			Trees:   batch,
		}, ggm.Hybrid)
		util = st.Utilization
	}

	// The tree engine lives in the DIMM module's unified unit; tree
	// outputs must reach the rank modules' LPN inputs, so SPCOT runs on
	// the PU's ChaCha cores rather than fanning out across DIMMs
	// (Figure 9: one GGM-tree expansion unit per Ironman-NMP PU).
	units := cfg.ChaChaCores
	cycles := int64(float64(totalOps)/(float64(units)*util)) + int64(cfg.PipelineStages)
	return SPCOTStats{
		Ops:         totalOps,
		Utilization: util,
		Cycles:      cycles,
		Seconds:     float64(cycles) / (float64(cfg.LogicFreqMHz) * 1e6),
	}, nil
}

// Result is the end-to-end OTE latency estimate for a workload.
type Result struct {
	Executions int
	SPCOT      SPCOTStats
	LPN        LPNStats
	// Per-execution and total seconds.
	ExecSeconds  float64
	TotalSeconds float64
}

// SimulateOTE estimates the latency of producing totalOTs correlations
// with the given parameter set: ceil(totalOTs/usable) executions, each
// costing max(SPCOT, LPN) when overlapped (§5.1) or their sum when not.
func SimulateOTE(cfg Config, params ferret.Params, p prg.PRG, sortOpts lpn.SortOptions, totalOTs int) (Result, error) {
	execs := (totalOTs + params.Usable() - 1) / params.Usable()
	if execs < 1 {
		execs = 1
	}
	sp, err := SimulateSPCOT(cfg, p, params.L, params.T)
	if err != nil {
		return Result{}, err
	}
	lp, err := SimulateLPN(cfg, params, sortOpts, ferret.DefaultCodeSeed)
	if err != nil {
		return Result{}, err
	}
	var exec float64
	if cfg.Overlap {
		exec = sp.Seconds
		if lp.Seconds > exec {
			exec = lp.Seconds
		}
	} else {
		exec = sp.Seconds + lp.Seconds
	}
	return Result{
		Executions:   execs,
		SPCOT:        sp,
		LPN:          lp,
		ExecSeconds:  exec,
		TotalSeconds: exec * float64(execs),
	}, nil
}
