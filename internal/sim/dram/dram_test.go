package dram

import (
	"math/rand"
	"testing"
)

func newRank() *Rank { return NewRank(DDR4_2400, DefaultGeometry) }

func TestSequentialRowHits(t *testing.T) {
	r := newRank()
	// 128 sequential lines rotate the four bank groups, so four rows
	// open (one per group) and every later access row-hits.
	for i := 0; i < 128; i++ {
		r.Read(uint64(i * 64))
	}
	reads, rowHits, acts := r.Stats()
	if reads != 128 || rowHits != 124 || acts != 4 {
		t.Fatalf("stats = %d/%d/%d, want 128/124/4", reads, rowHits, acts)
	}
}

func TestSequentialApproachesPeakBandwidth(t *testing.T) {
	r := newRank()
	const lines = 100000
	var done int64
	for i := 0; i < lines; i++ {
		done = r.Read(uint64(i * 64))
	}
	bytes := float64(lines * 64)
	bw := bytes / float64(done) // bytes per cycle
	peak := r.PeakBytesPerCycle()
	if bw < 0.85*peak {
		t.Fatalf("sequential bandwidth %.2f B/cyc, want >= 85%% of peak %.2f", bw, peak)
	}
}

func TestRandomMuchSlowerThanSequential(t *testing.T) {
	seq := newRank()
	var seqDone int64
	const lines = 20000
	for i := 0; i < lines; i++ {
		seqDone = seq.Read(uint64(i * 64))
	}
	rng := rand.New(rand.NewSource(1))
	rnd := newRank()
	var rndDone int64
	for i := 0; i < lines; i++ {
		rndDone = rnd.Read(uint64(rng.Intn(1<<30)) &^ 63)
	}
	// §3.2: random access should lose well over half the bandwidth.
	if rndDone < 3*seqDone {
		t.Fatalf("random (%d cyc) should be >= 3x slower than sequential (%d cyc)", rndDone, seqDone)
	}
	if rnd.RowHitRate() > 0.05 {
		t.Fatalf("random row hit rate %.3f suspiciously high", rnd.RowHitRate())
	}
	if seq.RowHitRate() < 0.95 {
		t.Fatalf("sequential row hit rate %.3f too low", seq.RowHitRate())
	}
}

func TestSameBankRandomRespectsTRC(t *testing.T) {
	r := newRank()
	// Alternate rows within one bank: every read is a row conflict, so
	// consecutive ACTs to the same bank must be >= tRC apart.
	nBanks := uint64(16)
	rowStride := uint64(DefaultGeometry.RowBytes) * nBanks
	var prevDone int64
	for i := 0; i < 100; i++ {
		row := uint64(i % 2) // ping-pong two rows of bank 0
		done := r.Read(row * rowStride)
		if i > 0 {
			gap := done - prevDone
			if gap < int64(DDR4_2400.TRC)-int64(DDR4_2400.TRP) {
				t.Fatalf("read %d completed only %d cycles after previous", i, gap)
			}
		}
		prevDone = done
	}
	if _, rowHits, _ := r.Stats(); rowHits != 0 {
		t.Fatal("ping-pong rows must never row-hit")
	}
}

func TestBankInterleavingHelps(t *testing.T) {
	// Random rows across many banks overlap ACT latencies and beat
	// single-bank row conflicts.
	rowStride := uint64(DefaultGeometry.RowBytes)
	oneBank := newRank()
	var oneDone int64
	for i := 0; i < 1000; i++ {
		oneDone = oneBank.Read(uint64(i) * rowStride * 16) // always bank 0
	}
	spread := newRank()
	var spreadDone int64
	for i := 0; i < 1000; i++ {
		spreadDone = spread.Read(uint64(i) * rowStride) // rotate banks
	}
	if spreadDone >= oneDone {
		t.Fatalf("bank interleaving (%d cyc) should beat single bank (%d cyc)", spreadDone, oneDone)
	}
}

func TestReadLatencyFloor(t *testing.T) {
	r := newRank()
	done := r.Read(0)
	// Cold read: ACT + tRCD + tCL + tBL.
	want := int64(DDR4_2400.TRCD + DDR4_2400.TCL + DDR4_2400.TBL)
	if done != want {
		t.Fatalf("cold read completes at %d, want %d", done, want)
	}
}

func TestCyclesToSeconds(t *testing.T) {
	r := newRank()
	s := r.CyclesToSeconds(1200e6)
	if s < 0.999 || s > 1.001 {
		t.Fatalf("1200M cycles at 1200MHz = %f s, want 1.0", s)
	}
}

func TestCyclesTracksMaxCompletion(t *testing.T) {
	// Individual completions may reorder (a row hit overtakes a pending
	// miss, as under FR-FCFS), but Cycles() must track the maximum.
	r := newRank()
	rng := rand.New(rand.NewSource(7))
	var maxDone int64
	for i := 0; i < 10000; i++ {
		done := r.Read(uint64(rng.Intn(1<<28)) &^ 63)
		if done > maxDone {
			maxDone = done
		}
		if r.Cycles() != maxDone {
			t.Fatalf("Cycles() = %d, want %d at %d", r.Cycles(), maxDone, i)
		}
	}
}

func BenchmarkRead(b *testing.B) {
	r := newRank()
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 1<<16)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1<<30)) &^ 63
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Read(addrs[i&(1<<16-1)])
	}
}
