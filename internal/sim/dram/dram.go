// Package dram is an event-driven DDR4 rank timing model — the
// Ramulator substitute of this reproduction (see DESIGN.md). It tracks
// per-bank row-buffer state and the command-timing constraints of
// Table 3 (tRCD, tCL, tRP, tRC, tRRD_S/L, tFAW, tCCD_S/L, tBL) under an
// open-page policy with in-order issue per rank.
//
// The model captures what the LPN study needs: sequential (sorted)
// access streams ride the row buffer at tCCD pace — the full
// 19.2 GB/s of a DDR4-2400 x64 rank — while random streams pay the
// activate/precharge penalty and collapse to a small fraction of peak,
// which is precisely the §3.2 bandwidth-bound diagnosis.
package dram

// Timing holds DDR4 command timing in memory-clock cycles.
type Timing struct {
	TRCD  int // ACT -> READ
	TCL   int // READ -> data
	TRP   int // PRE -> ACT
	TRC   int // ACT -> ACT, same bank
	TRRDS int // ACT -> ACT, different bank group
	TRRDL int // ACT -> ACT, same bank group
	TFAW  int // four-ACT window per rank
	TCCDS int // READ -> READ, different bank group
	TCCDL int // READ -> READ, same bank group
	TBL   int // burst length in cycles (BL8 at DDR = 4 clock cycles)
}

// DDR4_2400 is the Table 3 configuration.
var DDR4_2400 = Timing{
	TRCD: 16, TCL: 16, TRP: 16, TRC: 55,
	TRRDS: 4, TRRDL: 6, TFAW: 26,
	TCCDS: 4, TCCDL: 6, TBL: 4,
}

// Geometry describes one rank.
type Geometry struct {
	BankGroups  int // DDR4: 4
	BanksPerGrp int // DDR4: 4
	RowBytes    int // row-buffer size per rank (8 KB for x8 DIMM)
	LineBytes   int // transfer granularity (one BL8 burst = 64 B)
	FreqMHz     int // memory clock (1200 for DDR4-2400)
}

// DefaultGeometry matches the Table 3 DIMM.
var DefaultGeometry = Geometry{
	BankGroups:  4,
	BanksPerGrp: 4,
	RowBytes:    8192,
	LineBytes:   64,
	FreqMHz:     1200,
}

type bank struct {
	openRow   int64 // -1 = closed
	readyAt   int64 // earliest next command to this bank
	lastActAt int64
}

// Rank simulates one DRAM rank.
type Rank struct {
	t    Timing
	g    Geometry
	bank []bank

	lastActAt   int64 // most recent ACT on the rank (for tRRD)
	lastActGrp  int
	actWindow   [4]int64 // timestamps of the last four ACTs (tFAW)
	actWindowAt int

	lastReadAt  int64 // most recent READ issue (for tCCD)
	lastReadGrp int

	maxDone int64 // latest data-burst completion

	reads, rowHits, acts uint64
}

// NewRank builds a rank with the given timing and geometry.
func NewRank(t Timing, g Geometry) *Rank {
	n := g.BankGroups * g.BanksPerGrp
	r := &Rank{t: t, g: g, bank: make([]bank, n)}
	for i := range r.bank {
		r.bank[i].openRow = -1
		r.bank[i].lastActAt = -int64(t.TRC)
	}
	r.lastActAt = -int64(t.TFAW)
	for i := range r.actWindow {
		r.actWindow[i] = -int64(t.TFAW)
	}
	r.lastReadAt = -int64(t.TCCDL)
	return r
}

// decode maps a byte address to (bankIdx, bankGroup, row) with the
// standard bank-group-interleaved mapping: consecutive cache lines
// rotate across the four bank groups so sequential streams alternate
// groups and dodge the long tCCD_L, reaching the bus peak — exactly
// how DDR4 controllers lay out physical addresses.
func (r *Rank) decode(addr uint64) (bankIdx, grp int, row int64) {
	lineIdx := addr / uint64(r.g.LineBytes)
	grp = int(lineIdx % uint64(r.g.BankGroups))
	rest := lineIdx / uint64(r.g.BankGroups)
	linesPerRow := uint64(r.g.RowBytes / r.g.LineBytes)
	rowID := rest / linesPerRow
	bankInGrp := int(rowID % uint64(r.g.BanksPerGrp))
	row = int64(rowID / uint64(r.g.BanksPerGrp))
	bankIdx = grp*r.g.BanksPerGrp + bankInGrp
	return
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Read issues one line read at the given byte address and returns the
// cycle at which its data burst completes. Requests are assumed queued
// deeply (FR-FCFS style): a row miss's activate overlaps with reads to
// other banks, so the shared constraints are the data bus (tCCD), the
// activate spacing (tRRD, tFAW) and per-bank state — not a serialized
// ACT→RCD→READ chain across independent banks.
func (r *Rank) Read(addr uint64) int64 {
	bi, grp, row := r.decode(addr)
	b := &r.bank[bi]
	t := &r.t
	issue := b.readyAt

	if b.openRow != row {
		// Row miss: PRE (if open) then ACT, honoring tRC/tRRD/tFAW.
		actAt := issue
		if b.openRow >= 0 {
			actAt = issue + int64(t.TRP)
		}
		actAt = max64(actAt, b.lastActAt+int64(t.TRC))
		trrd := int64(t.TRRDS)
		if grp == r.lastActGrp {
			trrd = int64(t.TRRDL)
		}
		actAt = max64(actAt, r.lastActAt+trrd)
		actAt = max64(actAt, r.actWindow[r.actWindowAt]+int64(t.TFAW))

		b.openRow = row
		b.lastActAt = actAt
		r.lastActAt = actAt
		r.lastActGrp = grp
		r.actWindow[r.actWindowAt] = actAt
		r.actWindowAt = (r.actWindowAt + 1) % len(r.actWindow)
		r.acts++

		issue = actAt + int64(t.TRCD)
	} else {
		r.rowHits++
	}

	// READ command: honor tCCD on the shared data path.
	tccd := int64(t.TCCDS)
	if grp == r.lastReadGrp {
		tccd = int64(t.TCCDL)
	}
	issue = max64(issue, r.lastReadAt+tccd)
	r.lastReadAt = issue
	r.lastReadGrp = grp
	b.readyAt = issue + int64(t.TCCDL)
	r.reads++
	done := issue + int64(t.TCL) + int64(t.TBL)
	if done > r.maxDone {
		r.maxDone = done
	}
	return done
}

// Cycles returns the latest data-burst completion so far.
func (r *Rank) Cycles() int64 { return r.maxDone }

// Stats returns (reads, rowHits, activates).
func (r *Rank) Stats() (reads, rowHits, acts uint64) {
	return r.reads, r.rowHits, r.acts
}

// RowHitRate is the fraction of reads that hit an open row.
func (r *Rank) RowHitRate() float64 {
	if r.reads == 0 {
		return 0
	}
	return float64(r.rowHits) / float64(r.reads)
}

// CyclesToSeconds converts model cycles to wall time at the rank clock.
func (r *Rank) CyclesToSeconds(cycles int64) float64 {
	return float64(cycles) / (float64(r.g.FreqMHz) * 1e6)
}

// PeakBytesPerCycle is the data-bus limit: LineBytes per TCCDS cycles.
func (r *Rank) PeakBytesPerCycle() float64 {
	return float64(r.g.LineBytes) / float64(r.t.TCCDS)
}
