// Package gpu models the NVIDIA A6000 implementation the paper uses as
// a second baseline (§6.1): the GPU delivers a 5.88x throughput gain
// over the full-thread CPU, with the latency split 44.1% SPCOT / 50.2%
// LPN (the big L1/L2 caches feed LPN better than the host's LLC). The
// model anchors on those reported figures rather than re-deriving a
// CUDA performance model — see the substitution table in DESIGN.md.
package gpu

import (
	"ironman/internal/ferret"
	"ironman/internal/sim/cpu"
)

// Model captures the paper's A6000 datapoints.
type Model struct {
	// SpeedupOverCPU is the throughput gain over the 24-thread CPU.
	SpeedupOverCPU float64
	// SPCOTShare and LPNShare split the GPU latency (§6.1); the
	// remainder is kernel launch + transfer overhead.
	SPCOTShare float64
	LPNShare   float64
	// PowerWatts is the board power used in the §6.1 energy comparison
	// (Ironman claims an 84.5x power reduction vs the GPU).
	PowerWatts float64
}

// A6000 is the paper's configuration.
var A6000 = Model{
	SpeedupOverCPU: 5.88,
	SPCOTShare:     0.441,
	LPNShare:       0.502,
	PowerWatts:     120.9, // implied by 84.5x over Ironman's 1.43 W
}

// TotalOTsLatency estimates GPU latency for generating totalOTs
// correlations with the given parameter set.
func (g Model) TotalOTsLatency(host cpu.Model, params ferret.Params, totalOTs int) float64 {
	return host.TotalOTsLatency(params, totalOTs) / g.SpeedupOverCPU
}

// Breakdown splits a total latency into the reported phase shares.
func (g Model) Breakdown(total float64) (spcot, lpn, other float64) {
	spcot = total * g.SPCOTShare
	lpn = total * g.LPNShare
	other = total - spcot - lpn
	return
}
