package gpu

import (
	"math"
	"testing"

	"ironman/internal/ferret"
	"ironman/internal/sim/cpu"
)

func TestGPUFasterThanCPU(t *testing.T) {
	p, _ := ferret.ParamsByName("2^20")
	cpuLat := cpu.Xeon5220R.TotalOTsLatency(p, 1<<25)
	gpuLat := A6000.TotalOTsLatency(cpu.Xeon5220R, p, 1<<25)
	r := cpuLat / gpuLat
	if math.Abs(r-5.88) > 1e-9 {
		t.Fatalf("GPU speedup %.2f, want 5.88 (§6.1)", r)
	}
}

func TestBreakdownShares(t *testing.T) {
	spcot, lpn, other := A6000.Breakdown(1.0)
	if math.Abs(spcot-0.441) > 1e-9 || math.Abs(lpn-0.502) > 1e-9 {
		t.Fatalf("breakdown %f/%f wrong", spcot, lpn)
	}
	if other < 0 || other > 0.1 {
		t.Fatalf("other share %f implausible", other)
	}
	if math.Abs(spcot+lpn+other-1.0) > 1e-9 {
		t.Fatal("shares must sum to the total")
	}
}

func TestPowerGapVsIronman(t *testing.T) {
	// §6.1 reports an 84.5x power reduction for Ironman (1.43 W).
	if r := A6000.PowerWatts / 1.43; math.Abs(r-84.5) > 1 {
		t.Fatalf("power ratio %.1f, want ~84.5", r)
	}
}
