// Package cpu is the analytic model of the software baseline: Ferret
// running on the Table 3 host (24-core Xeon Gold 5220R @ 2.2 GHz with
// AES-NI and DDR4 memory). It replaces the authors' measurements on
// physical hardware (see DESIGN.md, substitution table).
//
// The model prices the two protocol phases separately, mirroring the
// Figure 1(b) breakdown:
//
//   - SPCOT is compute-bound: per AES call we charge an *effective* cycle
//     cost that folds in the tree bookkeeping, level-sum XORs and OT
//     message handling that a software GGM implementation pays around
//     the raw AES-NI instruction.
//   - LPN is memory-bound: each of the n·d random vector accesses pays a
//     latency determined by where the k-element vector lives (L2 / LLC /
//     DRAM), divided by an achievable memory-level-parallelism factor,
//     plus the streaming cost of the index matrix itself (the >900 MB
//     footprint of §3.2 at large n).
//
// The constants are calibrated once, here, against the paper's CPU
// anchor points (Fig 1(b): ~0.5 s at 2^20 to ~2.8 s at 2^24, single
// protocol execution, init included); EXPERIMENTS.md records both.
package cpu

import (
	"ironman/internal/ferret"
	"ironman/internal/ggm"
	"ironman/internal/prg"
)

// Model holds the host parameters.
type Model struct {
	Cores   int
	FreqGHz float64

	// Effective cycles per AES call in the GGM expansion, including
	// surrounding software overhead.
	AESCycles float64
	// Thread-scaling efficiency of the SPCOT phase.
	ThreadEff float64

	// Cache capacities (bytes) for placing the LPN input vector.
	L2Bytes  int64
	LLCBytes int64
	// Random-access latencies (ns) per vector element by residency.
	L2LatencyNs   float64
	LLCLatencyNs  float64
	DRAMLatencyNs float64
	// MLP is the per-thread memory-level parallelism of the gather
	// loop; total outstanding accesses are capped per residency level
	// (an LLC sustains more concurrent lookups than the DRAM
	// controller sustains misses).
	MLP         float64
	LLCConcCap  float64
	DRAMConcCap float64
	// PollutionFactor: once the streamed index matrix exceeds this
	// multiple of the LLC, it evicts the input vector and gathers pay
	// DRAM latency — the >900 MB working-set effect of §3.2.
	PollutionFactor float64
	// Sustainable DRAM streaming bandwidth (bytes/s) for the index
	// matrix and output vectors.
	StreamBW float64

	// One-time initialization: base OTs + IKNP extension (seconds) plus
	// a per-correlation IKNP cost.
	InitBaseSeconds float64
	InitPerCOTNs    float64
}

// Xeon5220R is the Table 3 host, calibrated as described above.
var Xeon5220R = Model{
	Cores:   24,
	FreqGHz: 2.2,

	AESCycles: 58, // effective, incl. tree bookkeeping + OT handling
	ThreadEff: 0.80,

	L2Bytes:         2 << 20, // per-core private slice
	LLCBytes:        71 << 20,
	L2LatencyNs:     6,
	LLCLatencyNs:    22,
	DRAMLatencyNs:   85,
	MLP:             4,
	LLCConcCap:      32,
	DRAMConcCap:     10,
	PollutionFactor: 1.5,
	StreamBW:        60e9, // of the 76.8 GB/s theoretical peak

	InitBaseSeconds: 0.120, // 128 P-256 base OTs + handshake
	InitPerCOTNs:    180,   // IKNP column processing per base COT
}

// Breakdown is a phase-by-phase latency estimate in seconds.
type Breakdown struct {
	Init  float64
	SPCOT float64
	LPN   float64
}

// Total returns the summed latency.
func (b Breakdown) Total() float64 { return b.Init + b.SPCOT + b.LPN }

// gatherResidency classifies where the LPN input vector effectively
// lives: by its own footprint, demoted to DRAM when the streamed index
// matrix pollutes the LLC (§3.2's >900 MB working set).
func (m Model) gatherResidency(params ferret.Params) (latencyNs, concCap float64) {
	vecBytes := int64(params.K) * 16
	codeBytes := int64(params.N) * int64(params.D) * 4
	switch {
	case float64(codeBytes) > m.PollutionFactor*float64(m.LLCBytes):
		// Pollution raises the *latency* of each gather to DRAM but the
		// misses still enjoy the full controller concurrency (they are
		// independent loads across many banks).
		return m.DRAMLatencyNs, m.LLCConcCap
	case vecBytes <= m.L2Bytes:
		return m.L2LatencyNs, m.LLCConcCap
	case vecBytes <= m.LLCBytes:
		return m.LLCLatencyNs, m.LLCConcCap
	default:
		return m.DRAMLatencyNs, m.DRAMConcCap
	}
}

// OTELatency estimates one protocol execution (Extend) of params using
// the given GGM PRG across `threads` cores. includeInit adds the
// one-time initialization (only the first execution pays it).
func (m Model) OTELatency(params ferret.Params, kind prg.Kind, arity int, threads int, includeInit bool) Breakdown {
	if threads < 1 {
		threads = 1
	}
	if threads > m.Cores {
		threads = m.Cores
	}
	p := prg.New(kind, arity)

	// SPCOT: t trees, both local expansion and the per-level OT work.
	ops := float64(params.T * ggm.OpsForTree(p, params.L))
	// A software ChaCha8 512-bit core call costs ~7x an effective
	// AES-NI call (scalar rounds, no hardware assist); this is why CPUs
	// stick to AES (§2.3.1) and the ChaCha choice only pays off in
	// custom hardware, where Table 2 reverses the ratio.
	opCycles := m.AESCycles
	if kind == prg.ChaCha8 {
		opCycles = m.AESCycles * 7
	}
	spcot := ops * opCycles / (m.FreqGHz * 1e9)
	// Amdahl-style thread scaling: the first thread is full speed,
	// extra threads contribute at ThreadEff.
	spcot /= 1 + float64(threads-1)*m.ThreadEff

	// LPN: n·d gathers + streaming the index matrix and output vector.
	// Threads overlap gathers up to the concurrency cap of the level
	// serving the vector.
	gathers := float64(params.N) * float64(params.D)
	lat, concCap := m.gatherResidency(params)
	conc := float64(threads) * m.MLP
	if conc > concCap {
		conc = concCap
	}
	gatherSec := gathers * lat * 1e-9 / conc
	streamBytes := float64(params.N) * (float64(params.D)*4 + 2*16)
	streamSec := streamBytes / m.StreamBW
	lpn := gatherSec + streamSec

	b := Breakdown{SPCOT: spcot, LPN: lpn}
	if includeInit {
		b.Init = m.InitBaseSeconds + float64(params.Reserve())*m.InitPerCOTNs*1e-9
	}
	return b
}

// TotalOTsLatency prices the generation of totalOTs correlations with
// full threads (the Figure 12 baseline): ceil(totalOTs/usable)
// executions, init paid once.
func (m Model) TotalOTsLatency(params ferret.Params, totalOTs int) float64 {
	execs := (totalOTs + params.Usable() - 1) / params.Usable()
	if execs < 1 {
		execs = 1
	}
	first := m.OTELatency(params, prg.AES, 2, m.Cores, true)
	rest := m.OTELatency(params, prg.AES, 2, m.Cores, false)
	return first.Total() + float64(execs-1)*rest.Total()
}
