package cpu

import (
	"testing"

	"ironman/internal/ferret"
	"ironman/internal/prg"
)

func params(name string) ferret.Params {
	p, err := ferret.ParamsByName(name)
	if err != nil {
		panic(err)
	}
	return p
}

// TestFigure1bShape: single-thread execution latency grows with the
// parameter set and sits in the paper's Fig 1(b) band (hundreds of ms
// to a few seconds), with SPCOT+LPN dominating over Init at the large
// end.
func TestFigure1bShape(t *testing.T) {
	m := Xeon5220R
	var prev float64
	for _, name := range []string{"2^20", "2^21", "2^22", "2^23", "2^24"} {
		b := m.OTELatency(params(name), prg.AES, 2, 1, true)
		total := b.Total()
		if total <= prev {
			t.Fatalf("%s: latency %.3f not increasing (prev %.3f)", name, total, prev)
		}
		if total < 0.1 || total > 10 {
			t.Fatalf("%s: latency %.3fs outside the plausible Fig 1(b) band", name, total)
		}
		prev = total
	}
	big := m.OTELatency(params("2^24"), prg.AES, 2, 1, true)
	if big.SPCOT+big.LPN < 3*big.Init {
		t.Fatalf("at 2^24 compute must dominate init: %+v", big)
	}
}

// TestSPCOTAndLPNComparable: on CPU both phases matter (Fig 1(b) shows
// both as major components); neither should be >20x the other.
func TestSPCOTAndLPNComparable(t *testing.T) {
	b := Xeon5220R.OTELatency(params("2^22"), prg.AES, 2, 1, false)
	ratio := b.SPCOT / b.LPN
	if ratio < 0.05 || ratio > 20 {
		t.Fatalf("SPCOT/LPN = %.2f, phases should be comparable", ratio)
	}
}

func TestThreadScaling(t *testing.T) {
	m := Xeon5220R
	p := params("2^20")
	one := m.OTELatency(p, prg.AES, 2, 1, false)
	all := m.OTELatency(p, prg.AES, 2, 24, false)
	if all.SPCOT >= one.SPCOT {
		t.Fatal("threads must speed up SPCOT")
	}
	speedup := one.SPCOT / all.SPCOT
	if speedup < 10 || speedup > 24 {
		t.Fatalf("SPCOT thread speedup %.1f implausible", speedup)
	}
	// Requesting more threads than cores clamps.
	over := m.OTELatency(p, prg.AES, 2, 1000, false)
	if over.SPCOT != all.SPCOT {
		t.Fatal("thread count must clamp to core count")
	}
}

// TestChaChaSlowerOnCPU: §2.3.1 — software sticks to AES-NI; the
// ChaCha-based PRG only wins on custom hardware.
func TestChaChaSlowerOnCPU(t *testing.T) {
	m := Xeon5220R
	p := params("2^20")
	aes := m.OTELatency(p, prg.AES, 2, 24, false)
	chacha := m.OTELatency(p, prg.ChaCha8, 4, 24, false)
	if chacha.SPCOT <= aes.SPCOT {
		t.Fatalf("ChaCha on CPU (%.4f) should not beat AES-NI (%.4f)", chacha.SPCOT, aes.SPCOT)
	}
}

func TestTotalOTsLatencyAccumulates(t *testing.T) {
	m := Xeon5220R
	p := params("2^20")
	one := m.TotalOTsLatency(p, 1<<20)
	many := m.TotalOTsLatency(p, 1<<25)
	if many <= one {
		t.Fatal("more OTs must take longer")
	}
	// 32 extra executions but only one init: the ratio must be below a
	// naive 32x.
	if many/one >= 32 {
		t.Fatalf("init amortization missing: ratio %.1f", many/one)
	}
	// Full-thread 2^25 generation lands in a plausible band around the
	// paper's implied ~0.6-6s (Fig 12 CPU baseline).
	if many < 0.2 || many > 20 {
		t.Fatalf("2^25 full-thread latency %.2fs implausible", many)
	}
}

func TestGatherResidency(t *testing.T) {
	m := Xeon5220R
	// 2^20 set: vector 2.7 MB, index matrix 48 MB — LLC-resident.
	latSmall, concSmall := m.gatherResidency(params("2^20"))
	if latSmall != m.LLCLatencyNs || concSmall != m.LLCConcCap {
		t.Fatalf("2^20 should gather from LLC, got %f/%f", latSmall, concSmall)
	}
	// 2^24 set: index matrix ~690 MB pollutes the LLC — DRAM-latency
	// gathers (concurrency preserved across banks).
	latBig, concBig := m.gatherResidency(params("2^24"))
	if latBig != m.DRAMLatencyNs || concBig != m.LLCConcCap {
		t.Fatalf("2^24 should gather at DRAM latency, got %f/%f", latBig, concBig)
	}
	if !(latSmall < latBig) {
		t.Fatal("pollution must raise gather latency")
	}
}

func TestBreakdownTotal(t *testing.T) {
	b := Breakdown{Init: 1, SPCOT: 2, LPN: 3}
	if b.Total() != 6 {
		t.Fatal("Total broken")
	}
}
