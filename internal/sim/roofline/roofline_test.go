package roofline

import (
	"testing"

	"ironman/internal/ferret"
)

// TestFigure1cClassification is the paper's central motivation: SPCOT
// is compute-bound, LPN is memory-bound, for every parameter set.
func TestFigure1cClassification(t *testing.T) {
	m := Xeon5220R
	for _, params := range ferret.Table4 {
		sp := SPCOTPoint(m, params)
		if !sp.ComputeBound {
			t.Errorf("%s: SPCOT should be compute-bound (intensity %.3f, ridge %.3f)",
				params.Name, sp.Intensity, m.RidgeIntensity())
		}
		lp := LPNPoint(m, params)
		if lp.ComputeBound {
			t.Errorf("%s: LPN should be memory-bound (intensity %.4f)", params.Name, lp.Intensity)
		}
		if lp.Attainable >= sp.Attainable {
			t.Errorf("%s: LPN attainable %.2e should sit below SPCOT %.2e",
				params.Name, lp.Attainable, sp.Attainable)
		}
	}
}

func TestRooflineEnvelope(t *testing.T) {
	m := Xeon5220R
	ridge := m.RidgeIntensity()
	if m.Attainable(ridge/2) >= m.PeakAESPerSec {
		t.Fatal("below the ridge attainable must be bandwidth-limited")
	}
	if m.Attainable(ridge*2) != m.PeakAESPerSec {
		t.Fatal("above the ridge attainable must be the compute peak")
	}
	// Attainable is monotone in intensity.
	if m.Attainable(0.01) >= m.Attainable(0.1) {
		t.Fatal("attainable must grow with intensity below the ridge")
	}
}

func TestFigure1cPointCount(t *testing.T) {
	pts := Figure1c(Xeon5220R)
	if len(pts) != 2*len(ferret.Table4) {
		t.Fatalf("got %d points, want %d", len(pts), 2*len(ferret.Table4))
	}
	for _, p := range pts {
		if p.Intensity <= 0 || p.Attainable <= 0 {
			t.Fatalf("degenerate point %+v", p)
		}
	}
}
