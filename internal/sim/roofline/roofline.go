// Package roofline reproduces the Figure 1(c) analysis: plotting SPCOT
// and LPN against the host roofline in "AES operations per second"
// versus "operational intensity (AES per byte of DRAM traffic)" shows
// SPCOT pinned at the compute peak (compute-bound) and LPN far down the
// bandwidth slope (memory-bound) — the observation that motivates the
// split accelerator design.
package roofline

import (
	"ironman/internal/ferret"
	"ironman/internal/ggm"
	"ironman/internal/prg"
)

// Machine is the roofline envelope of the host.
type Machine struct {
	// PeakAESPerSec is the all-core AES-NI throughput.
	PeakAESPerSec float64
	// MemBandwidth is sustainable DRAM bandwidth in bytes/s.
	MemBandwidth float64
}

// Xeon5220R: AES-128 is 10 AESENC rounds; with the pipelined AES-NI
// unit retiring one AESENC per cycle per core, a core sustains one full
// AES per 10 cycles. 24 cores x 2.2 GHz / 10 = 5.28 G AES/s, against
// ~60 GB/s of sustainable DRAM bandwidth.
var Xeon5220R = Machine{
	PeakAESPerSec: 24 * 2.2e9 / 10,
	MemBandwidth:  60e9,
}

// Point is one kernel on the roofline.
type Point struct {
	Name string
	// Intensity is AES ops per byte of memory traffic.
	Intensity float64
	// Attainable is min(peak, intensity*bandwidth) in AES/s.
	Attainable float64
	// ComputeBound reports which side of the ridge the kernel sits on.
	ComputeBound bool
}

// Attainable computes the roofline value for an intensity.
func (m Machine) Attainable(intensity float64) float64 {
	bw := intensity * m.MemBandwidth
	if bw < m.PeakAESPerSec {
		return bw
	}
	return m.PeakAESPerSec
}

// RidgeIntensity is the intensity at which the roof flattens.
func (m Machine) RidgeIntensity() float64 {
	return m.PeakAESPerSec / m.MemBandwidth
}

// SPCOTPoint places one SPCOT execution on the roofline: the kernel
// performs t·OpsForTree AES calls while writing the t·ℓ leaf blocks
// once (the tree levels live in cache).
func SPCOTPoint(m Machine, params ferret.Params) Point {
	p := prg.New(prg.AES, 2)
	ops := float64(params.T * ggm.OpsForTree(p, params.L))
	bytes := float64(params.T*params.L) * 16 // leaf writeback
	return newPoint(m, "SPCOT/"+params.Name, ops/bytes)
}

// LPNPoint places one LPN encoding on the roofline. The AES-equivalent
// op count follows the paper's convention (index generation counted as
// AES work): one op per d-gather output; traffic is the gathered lines
// (64 B each, mostly missing at protocol-scale k) plus the streamed
// index matrix.
func LPNPoint(m Machine, params ferret.Params) Point {
	ops := float64(params.N)
	bytes := float64(params.N) * (float64(params.D)*64*0.75 + float64(params.D)*4 + 32)
	return newPoint(m, "LPN/"+params.Name, ops/bytes)
}

func newPoint(m Machine, name string, intensity float64) Point {
	return Point{
		Name:         name,
		Intensity:    intensity,
		Attainable:   m.Attainable(intensity),
		ComputeBound: intensity >= m.RidgeIntensity(),
	}
}

// Figure1c returns the roofline points for every Table 4 set.
func Figure1c(m Machine) []Point {
	var pts []Point
	for _, params := range ferret.Table4 {
		pts = append(pts, SPCOTPoint(m, params))
	}
	for _, params := range ferret.Table4 {
		pts = append(pts, LPNPoint(m, params))
	}
	return pts
}
