// Package cache models the memory-side cache each Rank-NMP module
// places in front of DRAM (§5.1.2 and §6.3 of the paper): a
// set-associative, LRU, write-allocate cache with 64-byte lines sized
// between 32 KB and 2 MB. The Figure 14 sweep runs LPN access traces
// through this model to pick the 256 KB / 1 MB design points.
package cache

import "fmt"

// Cache is a set-associative cache simulator.
type Cache struct {
	lineBytes int
	sets      int
	ways      int
	// tags[set*ways+way]; valid implied by tag != invalidTag.
	tags []uint64
	// lru[set*ways+way] holds a per-set logical timestamp.
	lru   []uint64
	clock uint64

	hits, misses uint64
}

const invalidTag = ^uint64(0)

// New builds a cache of the given total capacity. sizeBytes must be a
// multiple of lineBytes*ways.
func New(sizeBytes, lineBytes, ways int) *Cache {
	if sizeBytes <= 0 || lineBytes <= 0 || ways <= 0 {
		panic("cache: bad geometry")
	}
	lines := sizeBytes / lineBytes
	if lines*lineBytes != sizeBytes || lines%ways != 0 {
		panic(fmt.Sprintf("cache: %dB/%dB lines/%d ways does not divide", sizeBytes, lineBytes, ways))
	}
	sets := lines / ways
	c := &Cache{
		lineBytes: lineBytes,
		sets:      sets,
		ways:      ways,
		tags:      make([]uint64, lines),
		lru:       make([]uint64, lines),
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	return c
}

// LineBytes returns the configured line size.
func (c *Cache) LineBytes() int { return c.lineBytes }

// SizeBytes returns the configured capacity.
func (c *Cache) SizeBytes() int { return c.sets * c.ways * c.lineBytes }

// Access simulates one read of the given byte address, returning true
// on a hit. Misses allocate the line (evicting LRU).
func (c *Cache) Access(addr uint64) bool {
	line := addr / uint64(c.lineBytes)
	set := int(line % uint64(c.sets))
	tag := line / uint64(c.sets)
	base := set * c.ways
	c.clock++
	for w := 0; w < c.ways; w++ {
		if c.tags[base+w] == tag {
			c.hits++
			c.lru[base+w] = c.clock
			return true
		}
	}
	c.misses++
	// Evict LRU way.
	victim := base
	for w := 1; w < c.ways; w++ {
		if c.lru[base+w] < c.lru[victim] {
			victim = base + w
		}
	}
	c.tags[victim] = tag
	c.lru[victim] = c.clock
	return false
}

// Stats returns (hits, misses).
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// HitRate returns hits/(hits+misses), 0 when no accesses happened.
func (c *Cache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Reset clears contents and statistics.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = invalidTag
		c.lru[i] = 0
	}
	c.clock, c.hits, c.misses = 0, 0, 0
}
