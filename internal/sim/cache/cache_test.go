package cache

import (
	"math/rand"
	"testing"
)

func TestBasicHitMiss(t *testing.T) {
	c := New(1024, 64, 2) // 16 lines, 8 sets
	if c.Access(0) {
		t.Fatal("cold access must miss")
	}
	if !c.Access(0) {
		t.Fatal("second access must hit")
	}
	if !c.Access(63) {
		t.Fatal("same line must hit")
	}
	if c.Access(64) {
		t.Fatal("next line must miss")
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 2 {
		t.Fatalf("stats = %d/%d, want 2/2", hits, misses)
	}
	if c.HitRate() != 0.5 {
		t.Fatalf("hit rate = %f", c.HitRate())
	}
}

func TestLRUEviction(t *testing.T) {
	// 2 ways, 1 set: capacity 2 lines.
	c := New(128, 64, 2)
	c.Access(0)   // A
	c.Access(64)  // B (set 0 too? sets=1, so yes)
	c.Access(0)   // touch A
	c.Access(128) // C evicts B (LRU)
	if !c.Access(0) {
		t.Fatal("A should still be resident")
	}
	if c.Access(64) {
		t.Fatal("B should have been evicted")
	}
}

func TestAssociativityConflicts(t *testing.T) {
	// Direct-mapped: lines mapping to the same set conflict.
	c := New(512, 64, 1) // 8 sets
	c.Access(0)
	c.Access(512) // same set (line 8 % 8 == 0)
	if c.Access(0) {
		t.Fatal("direct-mapped conflict should evict")
	}
	// 2-way tolerates the pair.
	c2 := New(512, 64, 2)
	c2.Access(0)
	c2.Access(512)
	if !c2.Access(0) {
		t.Fatal("2-way should keep both")
	}
}

func TestWorkingSetCapacity(t *testing.T) {
	// A working set that fits must converge to 100% hits after warmup.
	c := New(64*1024, 64, 8)
	lines := 512 // 32 KB working set in a 64 KB cache
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < lines; i++ {
			c.Access(uint64(i * 64))
		}
	}
	hits, misses := c.Stats()
	if misses != uint64(lines) {
		t.Fatalf("misses = %d, want %d cold misses only", misses, lines)
	}
	if hits != uint64(2*lines) {
		t.Fatalf("hits = %d", hits)
	}
}

func TestRandomVsSequentialHitRate(t *testing.T) {
	// The premise of the memory-side-cache design: random access to a
	// large vector barely hits; sequential access hits ~3/4 of the time
	// (4 elements of 16 B per 64 B line).
	const vectorBytes = 8 << 20
	rng := rand.New(rand.NewSource(1))
	randCache := New(256*1024, 64, 8)
	for i := 0; i < 100000; i++ {
		randCache.Access(uint64(rng.Intn(vectorBytes/16)) * 16)
	}
	seqCache := New(256*1024, 64, 8)
	for i := 0; i < 100000; i++ {
		seqCache.Access(uint64(i * 16))
	}
	if randCache.HitRate() > 0.1 {
		t.Fatalf("random hit rate %.3f too high", randCache.HitRate())
	}
	if seqCache.HitRate() < 0.74 || seqCache.HitRate() > 0.76 {
		t.Fatalf("sequential hit rate %.3f, want ~0.75", seqCache.HitRate())
	}
}

func TestLargerCacheNeverWorse(t *testing.T) {
	// Monotonicity over the Fig 14 sweep on a skewed random trace.
	rng := rand.New(rand.NewSource(2))
	trace := make([]uint64, 200000)
	for i := range trace {
		// Zipf-ish skew: half the accesses go to a hot 10%.
		if rng.Intn(2) == 0 {
			trace[i] = uint64(rng.Intn(40000)) * 16
		} else {
			trace[i] = uint64(rng.Intn(400000)) * 16
		}
	}
	prev := -1.0
	for _, kb := range []int{32, 64, 128, 256, 512, 1024, 2048} {
		c := New(kb*1024, 64, 8)
		for _, a := range trace {
			c.Access(a)
		}
		hr := c.HitRate()
		if hr < prev-0.005 { // allow tiny LRU anomalies
			t.Fatalf("%dKB hit rate %.4f below smaller cache %.4f", kb, hr, prev)
		}
		prev = hr
	}
}

func TestReset(t *testing.T) {
	c := New(1024, 64, 2)
	c.Access(0)
	c.Access(0)
	c.Reset()
	if h, m := c.Stats(); h != 0 || m != 0 {
		t.Fatal("stats not cleared")
	}
	if c.Access(0) {
		t.Fatal("contents not cleared")
	}
}

func TestGeometryAccessors(t *testing.T) {
	c := New(2048, 64, 4)
	if c.LineBytes() != 64 || c.SizeBytes() != 2048 {
		t.Fatal("geometry accessors wrong")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(0, 64, 1) },
		func() { New(100, 64, 1) },
		func() { New(128, 64, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func BenchmarkAccess(b *testing.B) {
	c := New(256*1024, 64, 8)
	rng := rand.New(rand.NewSource(3))
	addrs := make([]uint64, 1<<16)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 24))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&(1<<16-1)])
	}
}
