package area

import (
	"math"
	"strings"
	"testing"
)

func close(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// TestTable2Ratios reproduces the normalized columns of Table 2.
func TestTable2Ratios(t *testing.T) {
	if !close(PerfPerAreaRatio(AES128), 1.0, 1e-9) {
		t.Fatal("AES perf/area must normalize to 1")
	}
	// Pure blocks-per-op/area gives 4.335; the paper's 4.491 likely
	// folds in a small frequency difference between the two syntheses.
	if r := PerfPerAreaRatio(ChaCha8); !close(r, 4.491, 0.2) {
		t.Fatalf("ChaCha8 perf/area ratio %.3f, paper reports ~4.491", r)
	}
	if r := PowerRatio(ChaCha8); !close(r, 1.293, 0.01) {
		t.Fatalf("ChaCha8 raw power ratio %.3f", r)
	}
	// Per produced block ChaCha8 is cheaper than AES.
	if PowerPerBlockRatio(ChaCha8) >= 1 {
		t.Fatal("ChaCha8 must be more power-efficient per block")
	}
}

// TestTable6Anchors: the fitted SRAM law must land on the paper's two
// whole-accelerator datapoints.
func TestTable6Anchors(t *testing.T) {
	if a := Default256K.TotalAreaMM2(); !close(a, 1.482, 0.01) {
		t.Fatalf("256KB area %.3f, want 1.482", a)
	}
	if a := Default1M.TotalAreaMM2(); !close(a, 2.995, 0.01) {
		t.Fatalf("1MB area %.3f, want 2.995", a)
	}
	if p := Default256K.TotalPowerW(); !close(p, 1.301, 0.01) {
		t.Fatalf("256KB power %.3f, want 1.301", p)
	}
	if p := Default1M.TotalPowerW(); !close(p, 1.430, 0.01) {
		t.Fatalf("1MB power %.3f, want 1.430", p)
	}
}

// TestFigure14bShape: doubling 1MB -> 2MB costs ~2.2x SRAM area (§6.3).
func TestFigure14bShape(t *testing.T) {
	oneMB := SRAMAreaMM2(1 << 20)
	twoMB := SRAMAreaMM2(2 << 20)
	r := twoMB / oneMB
	if r < 1.9 || r > 2.3 {
		t.Fatalf("2MB/1MB area ratio %.2f, want ~2.2 (Fig 14b)", r)
	}
	// Monotone over the sweep.
	prev := 0.0
	for _, kb := range []int{32, 64, 128, 256, 512, 1024, 2048} {
		a := SRAMAreaMM2(kb << 10)
		if a <= prev {
			t.Fatalf("SRAM area must grow with capacity")
		}
		prev = a
	}
}

// TestOverheadTiny: the Table 6 punchline — the accelerator is a small
// fraction of a DRAM chip's area and an LRDIMM's power.
func TestOverheadTiny(t *testing.T) {
	if Default1M.TotalAreaMM2() > 0.05*TypicalDRAMChipAreaMM2 {
		t.Fatal("accelerator area should be <5% of a DRAM chip")
	}
	if Default1M.TotalPowerW() > 0.2*LRDIMMPowerW {
		t.Fatal("accelerator power should be <20% of an LRDIMM")
	}
}

func TestReport(t *testing.T) {
	s := Default256K.Report()
	if !strings.Contains(s, "256KB") || !strings.Contains(s, "1.482") {
		t.Fatalf("report malformed: %s", s)
	}
}
