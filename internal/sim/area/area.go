// Package area models silicon cost: the PRG-core figures of Table 2
// (Synopsys DC, 45 nm), the CACTI-style SRAM scaling behind Figure
// 14(b), and the whole-accelerator overheads of Table 6. These numbers
// are design-point inputs, so the package encodes the paper's reported
// constants and a fitted SRAM law instead of re-running EDA tools (see
// DESIGN.md).
package area

import "fmt"

// PRGCore is one fully pipelined PRG implementation.
type PRGCore struct {
	Name        string
	OutputBits  int     // per core call
	AreaMM2     float64 // 45 nm
	PowerMW     float64
	BlocksPerOp int // 128-bit blocks produced per call
}

// Table 2 of the paper.
var (
	AES128  = PRGCore{Name: "AES-128", OutputBits: 128, AreaMM2: 0.233, PowerMW: 35.05, BlocksPerOp: 1}
	ChaCha8 = PRGCore{Name: "ChaCha8", OutputBits: 512, AreaMM2: 0.215, PowerMW: 45.34, BlocksPerOp: 4}
)

// PerfPerAreaRatio returns the core's blocks-per-op/area normalized to
// AES-128 (the 4.49x of Table 2).
func PerfPerAreaRatio(c PRGCore) float64 {
	base := float64(AES128.BlocksPerOp) / AES128.AreaMM2
	return (float64(c.BlocksPerOp) / c.AreaMM2) / base
}

// PowerPerBlockRatio returns power per produced block normalized to
// AES-128 (lower is better; Table 2 reports ChaCha8 at 3.092x power for
// 4x blocks, i.e. 0.77x per block).
func PowerPerBlockRatio(c PRGCore) float64 {
	base := AES128.PowerMW / float64(AES128.BlocksPerOp)
	return (c.PowerMW / float64(c.BlocksPerOp)) / base
}

// PowerRatio is the raw power ratio versus AES-128 (the 3.092x entry of
// Table 2 normalizes per-op power... the table reports the raw ratio).
func PowerRatio(c PRGCore) float64 { return c.PowerMW / AES128.PowerMW }

// SRAM area law fitted to the paper's two whole-accelerator anchors
// (Table 6: 1.482 mm^2 with 2x256 KB caches, 2.995 mm^2 with 2x1 MB)
// assuming area-linear SRAM beyond a fixed logic base:
//
//	total(cache) = logicBase + 2*sramMM2PerMB*cacheMB
//
// which yields sram ~1.009 mm^2/MB and a 0.978 mm^2 logic base — in
// family with CACTI 45 nm SRAM densities.
const (
	logicBaseMM2 = 0.978
	sramMM2PerMB = 1.009
	// Power anchors: 1.301 W (256 KB) and 1.430 W (1 MB).
	logicBaseW = 1.258
	sramWPerMB = 0.086
)

// SRAMAreaMM2 estimates the area of one SRAM macro of the given size.
func SRAMAreaMM2(bytes int) float64 {
	return sramMM2PerMB * float64(bytes) / (1 << 20)
}

// Ironman is one Ironman-NMP processing unit configuration.
type Ironman struct {
	CacheBytes  int // memory-side cache per rank module
	RankModules int // per PU (2 in the paper)
	ChaChaCores int
}

// Default256K and Default1M are the two Table 6 design points.
var (
	Default256K = Ironman{CacheBytes: 256 << 10, RankModules: 2, ChaChaCores: 4}
	Default1M   = Ironman{CacheBytes: 1 << 20, RankModules: 2, ChaChaCores: 4}
)

// TotalAreaMM2 estimates the PU area.
func (ir Ironman) TotalAreaMM2() float64 {
	return logicBaseMM2 + float64(ir.RankModules)*SRAMAreaMM2(ir.CacheBytes)
}

// TotalPowerW estimates the PU power.
func (ir Ironman) TotalPowerW() float64 {
	return logicBaseW + float64(ir.RankModules)*sramWPerMB*float64(ir.CacheBytes)/(1<<20)
}

// Reference envelopes from Table 6 for context.
const (
	TypicalDRAMChipAreaMM2 = 100.0
	LRDIMMPowerW           = 10.0
)

// Report renders the Table 6 row for a configuration.
func (ir Ironman) Report() string {
	return fmt.Sprintf("cache=%dKB area=%.3fmm2 power=%.3fW (DRAM chip %.0fmm2, LRDIMM %.0fW)",
		ir.CacheBytes>>10, ir.TotalAreaMM2(), ir.TotalPowerW(),
		TypicalDRAMChipAreaMM2, LRDIMMPowerW)
}
